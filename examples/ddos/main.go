// DDoS and superspreader detection over sound — the open problem at
// the end of the paper's Section 5, implemented. The switch maps the
// counterpart address of packets touching a watched host onto a
// frequency bank; a worm-like fan-out or a many-source flood sounds
// like many distinct tones per interval.
//
//	go run ./examples/ddos
package main

import (
	"fmt"

	"mdn"
	"mdn/internal/netsim"
)

func main() {
	tb := mdn.NewTestbed(5)
	sw, voice := tb.AddVoicedSwitch("s1", 1.2, 0)

	// Twelve hosts on one switch; hosts[0] is the protected server.
	var hosts []*netsim.Host
	for i := 0; i < 12; i++ {
		h := netsim.NewHost(tb.Sim, fmt.Sprintf("h%d", i),
			netsim.MustAddr(fmt.Sprintf("10.0.2.%d", i+1)))
		netsim.Connect(tb.Sim, h, 1, sw, i+1, 1e9, 0.0001, 0)
		sw.InstallRule(netsim.Rule{Priority: 1, Match: netsim.Match{Dst: h.Addr}, Action: netsim.Output(i + 1)})
		hosts = append(hosts, h)
	}
	victim := hosts[0]

	sd, err := mdn.NewSpreadDetector(tb.Plan, "s1", voice, mdn.ModeDDoSVictim,
		victim.Addr, 24, 5)
	if err != nil {
		panic(err)
	}
	sw.Tap = sd.Tap
	ctrl := tb.NewController(sd.Frequencies())
	sd.Start(ctrl, 0)
	ctrl.Start(0)

	// Phase 1 (0–3 s): one legitimate client.
	client := hosts[1]
	netsim.StartCBR(tb.Sim, client, netsim.FiveTuple{
		Src: client.Addr, Dst: victim.Addr, SrcPort: 40000, DstPort: 443,
		Proto: netsim.ProtoTCP,
	}, 40, 800, 0, 3)

	// Phase 2 (3–7 s): eleven attackers flood the victim.
	for i, atk := range hosts[1:] {
		netsim.StartPoisson(tb.Sim, atk, netsim.FiveTuple{
			Src: atk.Addr, Dst: victim.Addr, SrcPort: 6666, DstPort: 443,
			Proto: netsim.ProtoUDP,
		}, 10, 100, 3, 7, int64(200+i))
	}
	tb.Sim.RunUntil(8)

	fmt.Printf("watched host: %s (DDoS-victim mode, k=%d)\n\n", victim.Addr, sd.K)
	fmt.Println("distinct source buckets heard per 1 s interval:")
	for _, s := range sd.History {
		bar := ""
		for i := 0; i < int(s.Value); i++ {
			bar += "#"
		}
		fmt.Printf("  t=%4.1fs  %2.0f  %s\n", s.Time, s.Value, bar)
	}
	fmt.Println()
	for _, a := range sd.Alerts {
		fmt.Printf("t=%4.1fs  DDOS ALERT: %d distinct sources (> k=%d) contacting %s\n",
			a.Time, a.Distinct, sd.K, victim.Addr)
	}
	if len(sd.Alerts) == 0 {
		fmt.Println("no alerts (unexpected)")
	}
}
