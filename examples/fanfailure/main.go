// Server fan-failure detection (paper Section 7): a microphone 0.3 m
// from a server learns the fan's harmonic signature, then keeps
// checking it inside an ~85 dBA datacenter. When the fan dies at
// t=10 s, the amplitude drop across the blade-pass harmonics raises
// an out-of-band alert — despite the machine-room noise.
//
//	go run ./examples/fanfailure
package main

import (
	"fmt"

	"mdn"
	"mdn/internal/acoustic"
	"mdn/internal/core"
	"mdn/internal/dsp"
)

func main() {
	const failAt = 10.0
	tb := mdn.NewTestbed(3)

	// Foreground server fan 0.3 m from the probe microphone; it
	// stops (fails) at t=10 s.
	fanSrc, fan := core.FanSource(44100, 2.0, 0.3, acoustic.Position{X: 0.3}, 3)
	fanSrc.Until = failAt
	tb.Room.AddNoise(fanSrc)
	// Datacenter ambience: a dozen other fans plus HVAC at ~85 dBA.
	tb.Room.AddNoise(core.DatacenterNoise(44100, 3.0, 4))

	fmt.Printf("monitored fan: %.0f RPM, %d blades -> blade-pass %.0f Hz, harmonics %v\n",
		fan.RPM, fan.Blades, fan.BladePassHz(), fan.HarmonicFrequencies())

	fm := mdn.NewFanMonitor(tb.Mic, fan.HarmonicFrequencies())
	if err := fm.Train(1, 3); err != nil {
		panic(err)
	}
	base := fm.Baseline()
	fmt.Println("\nbaseline harmonic amplitudes (fan healthy):")
	for i, f := range fm.Harmonics {
		fmt.Printf("  %6.0f Hz: %8.5f (%.1f dB)\n", f, base[i], dsp.AmplitudeDB(base[i]))
	}

	fmt.Println("\npolling every 2 s:")
	for t := 4.0; t <= 14; t += 2 {
		failed, score, err := fm.Check(t, t+1.5)
		if err != nil {
			panic(err)
		}
		state := "healthy"
		if failed {
			state = "ALERT: fan failure"
		}
		fmt.Printf("  t=%4.1f..%4.1fs  amplitude-drop score %.3f  -> %s\n", t, t+1.5, score, state)
	}

	fmt.Printf("\nfigure-7 statistic: on-vs-on diff %.3f, on-vs-off diff %.3f\n",
		fm.AmplitudeDiff(1, 3, 4, 6), fm.AmplitudeDiff(1, 3, 11, 13))
}
