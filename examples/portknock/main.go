// Port knocking over sound (paper Section 4): a sender's TCP traffic
// to port 8080 is dropped until the secret three-port knock sequence
// is heard — each knock packet makes the switch play a tone, and the
// MDN controller's finite state machine opens the port with a
// Flow-MOD only on the exact sequence. A wrong-order attempt is shown
// failing first.
//
//	go run ./examples/portknock
package main

import (
	"fmt"

	"mdn"
	"mdn/internal/netsim"
	"mdn/internal/openflow"
)

func main() {
	tb := mdn.NewTestbed(7)
	sw, voice := tb.AddVoicedSwitch("s1", 1.5, 0)

	h1 := netsim.NewHost(tb.Sim, "h1", netsim.MustAddr("10.0.0.1"))
	h2 := netsim.NewHost(tb.Sim, "h2", netsim.MustAddr("10.0.0.2"))
	netsim.Connect(tb.Sim, h1, 1, sw, 1, 1e8, 0.0001, 0)
	netsim.Connect(tb.Sim, h2, 1, sw, 2, 1e8, 0.0001, 0)

	sequence := []uint16{7001, 7002, 7003}
	ch := tb.OpenFlowChannel(sw, 0.005)
	pk, err := mdn.NewPortKnock(tb.Plan, "s1", voice, ch, sequence, openflow.FlowMod{
		Command:  openflow.FlowAdd,
		Priority: 10,
		Match:    netsim.Match{Dst: h2.Addr, DstPort: 8080},
		Action:   netsim.Output(2),
	})
	if err != nil {
		panic(err)
	}
	sw.Tap = pk.Tap

	ctrl := tb.NewController(pk.Frequencies())
	ctrl.SubscribeWindows(pk.HandleWindow)
	ctrl.Start(0)

	knock := func(at float64, port uint16) {
		tb.Sim.Schedule(at, func() {
			fmt.Printf("t=%5.2fs  knock on port %d\n", at, port)
			h1.Send(netsim.FiveTuple{
				Src: h1.Addr, Dst: h2.Addr, SrcPort: 40001, DstPort: port,
				Proto: netsim.ProtoTCP,
			}, 64)
		})
	}
	// Continuous data attempts to the protected port.
	dataFlow := netsim.FiveTuple{
		Src: h1.Addr, Dst: h2.Addr, SrcPort: 40000, DstPort: 8080, Proto: netsim.ProtoTCP,
	}
	netsim.StartCBR(tb.Sim, h1, dataFlow, 20, 1000, 0, 12)

	// Attempt 1: wrong order (7002 before 7001).
	knock(1.0, 7002)
	knock(1.5, 7001)
	knock(2.0, 7003)
	// Attempt 2: the real sequence.
	knock(5.0, 7001)
	knock(5.5, 7002)
	knock(6.0, 7003)

	tb.Sim.Every(1, 1, func(now float64) {
		fmt.Printf("t=%5.2fs  delivered to h2: %6d bytes  (fsm state %s, opened=%v)\n",
			now, h2.RxBytes, pk.State(), pk.Opened)
	})
	tb.Sim.RunUntil(12)

	fmt.Printf("\nport opened at t=%.2fs after the correct sequence; wrong knocks rejected: %d\n",
		pk.OpenedAt, pk.WrongKnocks)
}
