// Quickstart: stand up a minimal Music-Defined Network — one voiced
// switch, one controller — and watch a tone cross the air gap.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"mdn"
)

func main() {
	// A testbed bundles the virtual clock, the acoustic room, the
	// controller microphone, and a frequency plan.
	tb := mdn.NewTestbed(42)

	// A switch 1.5 m from the controller, with a speaker (via a
	// simulated Raspberry Pi speaking the Music Protocol).
	_, voice := tb.AddVoicedSwitch("s1", 1.5, 0)

	// Give the switch three frequencies, 20 Hz-spaced plan slots
	// with guard bands for same-window separability.
	freqs, err := tb.Plan.AllocateSpaced("s1", 3, mdn.DefaultStride)
	if err != nil {
		panic(err)
	}
	fmt.Printf("switch s1 assigned frequencies: %v Hz\n", freqs)

	// The controller polls its microphone in 50 ms windows.
	ctrl := tb.NewController(freqs)
	onset := mdn.NewOnsetFilter()
	ctrl.SubscribeWindows(func(_ float64, dets []mdn.Detection) {
		for _, d := range onset.Step(dets) {
			fmt.Printf("t=%.3fs  controller heard %.0f Hz (amplitude %.4f)\n",
				d.Time, d.Frequency, d.Amplitude)
		}
	})
	ctrl.Start(0)

	// The switch plays its three tones, half a second apart.
	for i, f := range freqs {
		f := f
		tb.Sim.Schedule(0.5+0.5*float64(i), func() {
			fmt.Printf("t=%.3fs  switch s1 plays %.0f Hz\n", tb.Sim.Now(), f)
			voice.Play(f)
		})
	}

	tb.Sim.RunUntil(2.5)
	fmt.Printf("\ncontroller analysed %d windows, %d raw detections\n",
		ctrl.Windows, ctrl.Detections)
}
