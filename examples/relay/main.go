// Multi-hop sound relay (the paper's §8 open question): a switch 10 m
// from the controller, playing quiet 40 dB tones, is inaudible at the
// calibrated controller threshold. A frequency-translating relay
// placed 2 m from the switch hears it and re-emits each confirmed
// tone on a shifted band, extending the controller's reach by one
// acoustic hop at the cost of ~50 ms per hop.
//
//	go run ./examples/relay
package main

import (
	"fmt"

	"mdn"
	"mdn/internal/acoustic"
	"mdn/internal/core"
	"mdn/internal/mp"
)

func main() {
	tb := mdn.NewTestbed(13)

	// The far switch: 10 m away, quiet tones.
	_, farVoice := tb.AddVoicedSwitch("far-switch", 10, 0)
	farVoice.Intensity = 40      // 3.2e-4 at the controller: below its floor
	farVoice.ToneDuration = 0.12 // two full detection windows at the relay

	const inFreq, outFreq = 600.0, 1000.0

	// The relay: microphone at 8 m (2 m from the switch), speaker at
	// 2 m from the controller.
	relayMic := tb.Room.AddMicrophone("relay-mic", acoustic.Position{X: 8}, 0.0001)
	relaySpk := tb.Room.AddSpeaker("relay-spk", acoustic.Position{X: 2})
	relay, err := mdn.NewRelay(tb.Sim, relayMic, mp.NewPi(tb.Sim, relaySpk, 0.002),
		map[float64]float64{inFreq: outFreq})
	if err != nil {
		panic(err)
	}
	relay.Detector().MinAmplitude = 1e-3

	// The controller watches both the original and translated bands,
	// with a floor the direct path cannot reach.
	det := mdn.NewDetector(mdn.MethodGoertzel, []float64{inFreq, outFreq})
	det.MinAmplitude = 1e-3
	ctrl := core.NewController(tb.Sim, tb.Mic, det)
	onset := mdn.NewOnsetFilter()
	var direct, relayed int
	ctrl.SubscribeWindows(func(_ float64, dets []mdn.Detection) {
		for _, d := range onset.Step(dets) {
			switch d.Frequency {
			case inFreq:
				direct++
				fmt.Printf("t=%.2fs  heard the switch DIRECTLY at %.0f Hz\n", d.Time, d.Frequency)
			case outFreq:
				relayed++
				fmt.Printf("t=%.2fs  heard the switch VIA RELAY at %.0f Hz\n", d.Time, d.Frequency)
			}
		}
	})
	relay.Start(0)
	ctrl.Start(0)

	fmt.Printf("switch at 10 m plays %0.f Hz at 40 dB; relay maps %.0f -> %.0f Hz\n\n",
		inFreq, inFreq, outFreq)
	for i := 0; i < 5; i++ {
		at := 0.5 + float64(i)*0.5
		tb.Sim.Schedule(at, func() { farVoice.Play(inFreq) })
	}
	tb.Sim.RunUntil(4)

	fmt.Printf("\ntones played: 5, relayed: %d, heard directly: %d, heard via relay: %d\n",
		relay.Relayed, direct, relayed)
}
