// Music-defined load balancing (paper Section 6, Figure 5a-b): a
// source ramps its rate across the rhombus topology's single upper
// path; the switch sings its queue occupancy every 300 ms (500, 600
// or 700 Hz); when the controller hears the congested tone it
// installs a Flow-MOD splitting traffic over both paths.
//
//	go run ./examples/loadbalance
package main

import (
	"fmt"

	"mdn"
	"mdn/internal/acoustic"
	"mdn/internal/core"
	"mdn/internal/mp"
	"mdn/internal/netsim"
	"mdn/internal/openflow"
)

func main() {
	tb := mdn.NewTestbed(11)
	rh := netsim.NewRhombusLinks(tb.Sim,
		netsim.LinkSpec{RateBps: 1e7, Latency: 0.0001, QueueCap: 400},
		netsim.LinkSpec{RateBps: 1e6, Latency: 0.0001, QueueCap: 400})

	// Voice s1 (the path-choosing switch) through its Pi.
	sp := tb.Room.AddSpeaker("s1", acoustic.Position{X: 1})
	voice := core.NewVoice(tb.Sim, mp.NewSounder(mp.NewPi(tb.Sim, sp, 0.002)))
	qm := core.NewQueueMonitorWithTones(rh.S1, 2, voice, core.DefaultQueueFrequencies)
	lb := core.NewLoadBalancer(qm, tb.OpenFlowChannel(rh.S1, 0.005), openflow.FlowMod{
		Command:  openflow.FlowAdd,
		Priority: 10,
		Match:    netsim.Match{Dst: rh.H2.Addr},
		Action:   netsim.Split(2, 3),
	})
	ctrl := tb.NewController(qm.Frequencies())
	ctrl.SubscribeWindows(qm.HandleWindow)
	ctrl.SubscribeWindows(lb.HandleWindow)
	qm.StartSwitchSide(tb.Sim, 0.05)
	ctrl.Start(0)

	flow := netsim.FiveTuple{Src: rh.H1.Addr, Dst: rh.H2.Addr, SrcPort: 1, DstPort: 2, Proto: netsim.ProtoUDP}
	netsim.StartRamp(tb.Sim, rh.H1, flow, 40, 150, 1500, 0.2, 12)

	tb.Sim.Every(1, 1, func(now float64) {
		fmt.Printf("t=%5.2fs  s1 queue=%3d pkts  upper(s2)=%5d lower(s3)=%5d pkts  split=%v\n",
			now, rh.S1.QueueLen(2), rh.S2.RxPackets, rh.S3.RxPackets, lb.Triggered)
	})
	tb.Sim.RunUntil(12)

	fmt.Printf("\ncongestion tone heard and Flow-MOD sent at t=%.2fs\n", lb.TriggeredAt)
	fmt.Printf("delivered to h2: %d packets (upper %d / lower %d)\n",
		rh.H2.RxPackets, rh.S2.RxPackets, rh.S3.RxPackets)
	fmt.Printf("decoded level sequence: %v (0=low 1=mid 2=high)\n", qm.HeardLevels())
}
