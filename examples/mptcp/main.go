// The Music Protocol over a real transport: the paper's switch→Pi
// hop, run here over TCP loopback with the exact 28-byte wire format.
// A "switch" dials the "Raspberry Pi" server and streams the tones of
// a port-knock melody plus the three queue-level tones; the Pi
// decodes and reports what it would play.
//
//	go run ./examples/mptcp
package main

import (
	"fmt"
	"net"
	"sync"

	"mdn/internal/mp"
)

func main() {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	fmt.Printf("raspberry-pi MP server listening on %s\n", ln.Addr())

	var serveWG sync.WaitGroup
	serveWG.Add(1)
	var mu sync.Mutex
	played := 0
	srv := &mp.Server{Handler: func(m mp.Message) {
		mu.Lock()
		played++
		mu.Unlock()
		fmt.Printf("  pi: play %6.1f Hz for %4.0f ms at %2.0f dB\n",
			m.Frequency, m.Duration*1000, m.Intensity)
	}}
	go func() {
		defer serveWG.Done()
		if err := srv.Serve(ln); err != nil {
			panic(err)
		}
	}()

	client, err := mp.Dial("tcp", ln.Addr().String())
	if err != nil {
		panic(err)
	}
	fmt.Println("switch connected; sending the knock melody:")
	melody := []mp.Message{
		{Frequency: 400, Duration: 0.065, Intensity: 60},
		{Frequency: 480, Duration: 0.065, Intensity: 60},
		{Frequency: 560, Duration: 0.065, Intensity: 60},
	}
	for _, m := range melody {
		if err := client.Send(m); err != nil {
			panic(err)
		}
	}
	fmt.Println("sending the queue-level tones (500/600/700 Hz):")
	for _, f := range []float64{500, 600, 700} {
		if err := client.Send(mp.Message{Frequency: f, Duration: 0.065, Intensity: 55}); err != nil {
			panic(err)
		}
	}
	client.Close()

	// Buggy firmware: a raw connection pushes an invalid message
	// (negative frequency); the Pi's validation must skip it.
	fmt.Println("sending one invalid message (negative frequency) — the pi skips it")
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		panic(err)
	}
	if _, err := raw.Write(mp.Marshal(mp.Message{Frequency: -1, Duration: 1, Intensity: 1})); err != nil {
		panic(err)
	}
	raw.Close()

	srv.Close()
	serveWG.Wait()
	mu.Lock()
	defer mu.Unlock()
	fmt.Printf("\npi accepted %d of 7 messages (1 rejected by validation)\n", played)
}
