// Music-defined telemetry (paper Section 5): one switch runs both
// telemetry applications at once on disjoint frequency sets — the
// heavy-hitter detector hears an elephant flow cross its tone-count
// threshold, and the port-scan detector hears a probe sweep as a
// rising frequency line — while a pop song plays in the room.
//
//	go run ./examples/telemetry
package main

import (
	"fmt"

	"mdn"
	"mdn/internal/core"
	"mdn/internal/netsim"
)

func main() {
	tb := mdn.NewTestbed(99)
	sw, voice := tb.AddVoicedSwitch("s1", 1.2, 0)

	h1 := netsim.NewHost(tb.Sim, "h1", netsim.MustAddr("10.0.0.1"))
	h2 := netsim.NewHost(tb.Sim, "h2", netsim.MustAddr("10.0.0.2"))
	netsim.Connect(tb.Sim, h1, 1, sw, 1, 1e9, 0.0001, 0)
	netsim.Connect(tb.Sim, h2, 1, sw, 2, 1e9, 0.0001, 0)
	sw.InstallRule(netsim.Rule{Priority: 1, Match: netsim.Match{Dst: h2.Addr}, Action: netsim.Output(2)})

	// Both applications share the switch's voice; the plan keeps
	// their frequency sets disjoint (Section 3: multiple MDN apps
	// can coexist on different sets).
	hh, err := mdn.NewHeavyHitter(tb.Plan, "s1", voice, 12)
	if err != nil {
		panic(err)
	}
	ps, err := mdn.NewPortScan(tb.Plan, "s1", voice, 8000, 16)
	if err != nil {
		panic(err)
	}
	sw.Tap = func(pkt *netsim.Packet, inPort int) {
		hh.Tap(pkt, inPort)
		ps.Tap(pkt, inPort)
	}

	watch := append(hh.Frequencies(), ps.Frequencies()...)
	ctrl := tb.NewController(watch)
	// Calibrate the detection floor above the song's partials
	// (~0.003 at the mic) but below the switch tones (~0.026).
	ctrl.Detector.MinAmplitude = 0.008
	// The demo scan probes every 250 ms, so ~8 distinct ports land
	// in each 2 s alert interval.
	ps.Threshold = 7
	hh.Start(ctrl, 0)
	ps.Start(ctrl, 0)
	ctrl.Start(0)

	// Background music, as in Figures 4b/4d.
	tb.Room.AddNoise(core.PopSongNoise(44100, 5, 0.02, 17))

	// Workload: an elephant, three mice, and a port scan.
	elephant := netsim.FiveTuple{Src: h1.Addr, Dst: h2.Addr, SrcPort: 5000, DstPort: 80, Proto: netsim.ProtoTCP}
	netsim.StartCBR(tb.Sim, h1, elephant, 250, 1500, 0.2, 8)
	for i := 0; i < 3; i++ {
		mouse := netsim.FiveTuple{Src: h1.Addr, Dst: h2.Addr, SrcPort: 6000 + uint16(i), DstPort: 80, Proto: netsim.ProtoTCP}
		netsim.StartPoisson(tb.Sim, h1, mouse, 1.0, 300, 0.2, 8, int64(i))
	}
	scanBase := netsim.FiveTuple{Src: netsim.MustAddr("10.0.0.66"), Dst: h2.Addr, SrcPort: 4444, Proto: netsim.ProtoTCP}
	netsim.StartPortScan(tb.Sim, h1, scanBase, 8000, 16, 0.25, 2)

	tb.Sim.RunUntil(8)

	fmt.Printf("heavy hitters: elephant hashes to bucket %d\n", hh.BucketOf(elephant))
	for _, rep := range hh.Reports {
		fmt.Printf("  t=%4.1fs  bucket %2d flagged (%d tone onsets >= threshold %d)\n",
			rep.Time, rep.Bucket, rep.Count, hh.Threshold)
	}
	fmt.Printf("\nport scan: %d probe tones heard, sweep monotone=%v\n",
		len(ps.Sweep), ps.SweepIsMonotone())
	for _, a := range ps.Alerts {
		fmt.Printf("  t=%4.1fs  SCAN ALERT: %d distinct ports probed (threshold %d)\n",
			a.Time, a.DistinctPorts, ps.Threshold)
	}
}
