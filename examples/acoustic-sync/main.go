// Acoustic flow-table sync: a primary controller replicates its flow
// table to a standby switch over the acoustic data channel — the
// rules are marshalled to OpenFlow wire format, framed by the FSK
// modem with Reed-Solomon protection, played through the room as
// tones, demodulated from the standby controller's microphone, and
// installed on the standby switch. A seeded corruptor flips symbols
// in flight; the FEC repairs them, and the frame CRC vouches for the
// reassembled bytes before any rule is applied.
//
//	go run ./examples/acoustic-sync
package main

import (
	"fmt"

	"mdn"
	"mdn/internal/netsim"
	"mdn/internal/openflow"
)

func main() {
	tb := mdn.NewTestbed(99)
	tb.EnableCulling()

	// The primary's switch carries the authoritative flow table; the
	// standby switch, 2 m across the room, starts empty.
	primary, voice := tb.AddVoicedSwitch("primary", 2, 0)
	standby := netsim.NewSwitch(tb.Sim, "standby")

	table := []openflow.FlowMod{
		{Command: openflow.FlowAdd, Priority: 10,
			Match:  netsim.Match{Dst: netsim.MustAddr("10.0.0.2"), Proto: 6},
			Action: netsim.Output(2)},
		{Command: openflow.FlowAdd, Priority: 10,
			Match:  netsim.Match{Dst: netsim.MustAddr("10.0.0.3"), Proto: 6},
			Action: netsim.Output(3)},
		{Command: openflow.FlowAdd, Priority: 5,
			Match:  netsim.Match{DstPort: 80},
			Action: netsim.HashSplit(2, 3), IdleTimeout: 30},
		{Command: openflow.FlowAdd, Priority: 1,
			Match:  netsim.Match{},
			Action: netsim.Drop()},
	}
	for _, m := range table {
		m.Apply(primary)
	}

	// Marshal the table into one modem payload.
	var payload []byte
	for _, m := range table {
		b, err := openflow.Marshal(m)
		if err != nil {
			panic(err)
		}
		payload = append(payload, b...)
	}
	fmt.Printf("primary flow table: %d rules, %d bytes marshalled\n",
		len(table), len(payload))

	// The data channel: Reed-Solomon coded FSK over the primary's
	// speaker, with a 3% symbol corruptor standing in for a noisy room.
	cfg := mdn.DefaultModemConfig()
	fec, err := mdn.ModemFECByName("rs_p48")
	if err != nil {
		panic(err)
	}
	cfg.FEC = fec
	band, err := mdn.NewModemBand(mdn.ModemPlan(cfg), "primary", cfg)
	if err != nil {
		panic(err)
	}
	tx := mdn.NewModemTransmitter(tb.Sim, band, voice)
	tx.Corruptor = mdn.NewModemCorruptor(0.03, 7)

	// The standby side listens on the controller microphone and
	// installs whatever survives the CRC.
	ctrl := tb.NewController(band.Frequencies())
	rx := mdn.NewModemReceiver(band)
	rx.OnFrame(func(fr mdn.ModemFrame) {
		rest := fr.Payload
		installed := 0
		for len(rest) > 0 {
			msg, n, err := openflow.Unmarshal(rest)
			if err != nil {
				fmt.Printf("t=%.3fs  standby: undecodable rule: %v\n", fr.Time, err)
				return
			}
			rest = rest[n:]
			if m, ok := msg.(openflow.FlowMod); ok {
				m.Apply(standby)
				installed++
			}
		}
		fmt.Printf("t=%.3fs  standby installed %d rules from frame seq=%d\n",
			fr.Time, installed, fr.Seq)
	})
	ctrl.SubscribeWindows(rx.HandleWindow)
	ctrl.Start(0)

	end, err := tx.Send(0.5, payload)
	if err != nil {
		panic(err)
	}
	tb.Sim.RunUntil(end + 0.5)

	fmt.Printf("channel: %d symbols sent, %d corrupted in flight, %d repaired by FEC\n",
		tx.SymbolsTx, tx.SymbolsCorrupted, rx.FECCorrected)
	if got, want := len(standby.Rules()), len(primary.Rules()); got == want {
		fmt.Printf("flow table synced over sound: %d of %d rules on standby\n", got, want)
	} else {
		fmt.Printf("sync incomplete: %d of %d rules on standby\n", got, want)
	}
}
