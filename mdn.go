package mdn

import (
	"net/netip"

	"mdn/internal/acoustic"
	"mdn/internal/core"
	"mdn/internal/modem"
	"mdn/internal/mp"
	"mdn/internal/netsim"
	"mdn/internal/openflow"
	"mdn/internal/sketch"
	"mdn/internal/telemetry"
)

// Re-exported core types: the public API of the library.
type (
	// FrequencyPlan hands out non-overlapping tone sets to devices.
	FrequencyPlan = core.FrequencyPlan
	// Detector finds watched frequencies in capture windows.
	Detector = core.Detector
	// Detection is one observed tone.
	Detection = core.Detection
	// Method selects Goertzel or FFT analysis.
	Method = core.Method
	// OnsetFilter confirms tone onsets across windows.
	OnsetFilter = core.OnsetFilter
	// Controller is the MDN controller event loop.
	Controller = core.Controller
	// Voice is a switch's rate-limited tone emitter.
	Voice = core.Voice
	// FSM is the generic state machine of Section 4.
	FSM = core.FSM
	// PortKnock is the Section 4 authentication application.
	PortKnock = core.PortKnock
	// HeavyHitter is the Section 5 monitoring application.
	HeavyHitter = core.HeavyHitter
	// PortScan is the Section 5 security application.
	PortScan = core.PortScan
	// QueueMonitor is the Section 6 congestion monitor.
	QueueMonitor = core.QueueMonitor
	// LoadBalancer is the Section 6 traffic-engineering application.
	LoadBalancer = core.LoadBalancer
	// FanMonitor is the Section 7 passive failure detector.
	FanMonitor = core.FanMonitor
	// SpreadDetector is the Section 5 open problem: k-superspreader
	// and DDoS-victim detection.
	SpreadDetector = core.SpreadDetector
	// SpreadMode selects superspreader or DDoS-victim semantics.
	SpreadMode = core.SpreadMode
	// Relay is the Section 8 multi-hop sound relay.
	Relay = core.Relay
	// CongestionController is tone-driven AIMD rate control.
	CongestionController = core.CongestionController
	// MelodyCodec encodes bytes as tone sequences.
	MelodyCodec = core.MelodyCodec
	// MicArray attributes detections across several microphones.
	MicArray = core.MicArray
	// ArrayDetection is a zone-attributed detection.
	ArrayDetection = core.ArrayDetection
	// Manager assembles a controller and a set of applications.
	Manager = core.Manager
	// App is the controller-side interface of an MDN application.
	App = core.App
	// FanDiagnosis classifies a monitored fan's state.
	FanDiagnosis = core.FanDiagnosis
	// FanState enumerates recognisable fan anomalies.
	FanState = core.FanState
	// Heartbeat is the out-of-band device liveness monitor.
	Heartbeat = core.Heartbeat
	// HeartbeatAlert reports a device gone silent.
	HeartbeatAlert = core.HeartbeatAlert
	// KnockGenerator derives time-rotating knock sequences from a
	// shared secret (TOTP-style).
	KnockGenerator = core.KnockGenerator
	// HealthState is the controller's coarse health verdict.
	HealthState = core.HealthState
	// HealthSnapshot is one observation of controller health.
	HealthSnapshot = core.HealthSnapshot
	// ErrorLog is the bounded application-error history.
	ErrorLog = core.ErrorLog
	// AppError is one recorded application failure.
	AppError = core.AppError
	// SubscriberStatus reports one supervised subscriber.
	SubscriberStatus = core.SubscriberStatus
	// WireCounters aggregates one wire's sent/dropped/corrupted counts.
	WireCounters = core.WireCounters
	// Fleet fans one analysis window over many microphones on a
	// worker pool of detector clones, merging detections
	// deterministically (see Controller.EnableFleet).
	Fleet = core.Fleet
	// StreamController is the incremental low-latency detection path:
	// ring-buffered capture feeding sliding transform kernels, one
	// analysis per hop instead of one per window (see
	// Controller.StartStream).
	StreamController = core.StreamController
	// EdgeDedup collapses per-window tone presence into rising-edge
	// onsets with hysteresis.
	EdgeDedup = core.EdgeDedup
	// DeviceMonitor is the self-healing device layer: it fingerprints
	// microphones and speakers from the windows the controller already
	// analyses, recalibrates drifting noise floors, quarantines deaf
	// microphones, re-keys detuned speakers and mutes dead ones (see
	// Controller.EnableDeviceMonitor).
	DeviceMonitor = core.DeviceMonitor
	// DeviceHealth is one device's row in a health snapshot or chaos
	// report.
	DeviceHealth = core.DeviceHealth
	// DeviceState classifies one monitored device.
	DeviceState = core.DeviceState
	// MicStats is a read-only snapshot of one microphone's effective
	// degradation parameters (see acoustic.Room.Microphone).
	MicStats = acoustic.MicStats
	// ModemConfig parameterises the acoustic data channel: symbol
	// period, lanes, FEC scheme.
	ModemConfig = modem.Config
	// ModemBand is a modem's allocated tone set (sync pilots plus
	// per-bank data tones).
	ModemBand = modem.Band
	// ModemTransmitter frames payload bytes and schedules their tones
	// through a switch voice.
	ModemTransmitter = modem.Transmitter
	// ModemReceiver demodulates controller windows back into
	// CRC-verified frames.
	ModemReceiver = modem.Receiver
	// ModemFrame is one delivered payload with its sequence number and
	// delivery time.
	ModemFrame = modem.Frame
	// ModemCorruptor is a seeded symbol-corruption fault injector for
	// the transmit path.
	ModemCorruptor = modem.Corruptor
	// ModemFEC is a pluggable forward-error-correction scheme for the
	// frame body.
	ModemFEC = modem.FEC
	// ModemFECNone is the identity scheme (CRC detection only).
	ModemFECNone = modem.FECNone
	// ModemFECHamming is interleaved Hamming(7,4) (rate 4/7, corrects
	// burst-confined corruption).
	ModemFECHamming = modem.FECHamming
	// ModemFECRS is Reed-Solomon over GF(256) (corrects Parity/2
	// corrupted bytes per block at any positions).
	ModemFECRS = modem.FECRS
	// CountMin is a count-min sketch with optional conservative
	// update: frequency estimates within epsilon*N at confidence
	// 1-delta in fixed memory.
	CountMin = sketch.CountMin
	// HyperLogLog estimates distinct counts in 2^precision registers.
	HyperLogLog = sketch.HyperLogLog
	// TopK is a space-saving heavy-hitter tracker over k entries.
	TopK = sketch.TopK
	// FlowCounter is the pluggable per-key frequency store behind
	// HeavyHitter (exact map or count-min sketch).
	FlowCounter = core.FlowCounter
	// DistinctCounter is the pluggable distinct-key store behind
	// PortScan and SpreadDetector (exact set or HyperLogLog).
	DistinctCounter = core.DistinctCounter
	// FlowSet paces many synthetic flows from one host through a
	// single scheduler event (see netsim.StartFlowSet).
	FlowSet = netsim.FlowSet
	// FlowSetConfig parameterises a FlowSet: specs, window, seed,
	// CBR-vs-Poisson pacing.
	FlowSetConfig = netsim.FlowSetConfig
	// FlowSpec is one synthetic flow: five-tuple, rate, packet size.
	FlowSpec = netsim.FlowSpec
	// Programmer installs flow rules with retry and idempotency.
	Programmer = openflow.Programmer
	// MetricsRegistry names and aggregates pipeline metrics.
	MetricsRegistry = telemetry.Registry
	// MetricsSnapshot is a point-in-time copy of a registry, with
	// Prometheus-text rendering.
	MetricsSnapshot = telemetry.Snapshot
)

// Controller health states, in degradation order.
const (
	// Healthy: windows flowing, no quarantines, no recent errors.
	Healthy = core.Healthy
	// Degraded: operating with reduced fidelity (see Reasons).
	Degraded = core.Degraded
	// Stalled: the control loop is no longer acting on the network.
	Stalled = core.Stalled
)

// Device states (see DeviceMonitor). Microphones move between
// Healthy, Drifting and Deaf; speakers between Healthy, Detuned and
// Silent.
const (
	DeviceHealthy  = core.DeviceHealthy
	DeviceDrifting = core.DeviceDrifting
	DeviceDeaf     = core.DeviceDeaf
	DeviceDetuned  = core.DeviceDetuned
	DeviceSilent   = core.DeviceSilent
)

// Spread-detection modes.
const (
	// ModeSuperspreader flags a source contacting many destinations.
	ModeSuperspreader = core.ModeSuperspreader
	// ModeDDoSVictim flags a destination contacted by many sources.
	ModeDDoSVictim = core.ModeDDoSVictim
)

// Detection methods.
const (
	// MethodGoertzel checks each watched frequency with a Goertzel
	// filter.
	MethodGoertzel = core.MethodGoertzel
	// MethodFFT reads watched bins from one windowed FFT.
	MethodFFT = core.MethodFFT
)

// Queue levels (Section 6 thresholds).
const (
	// LevelLow is an uncongested queue (<25 packets, 500 Hz).
	LevelLow = core.LevelLow
	// LevelMid is a filling queue (25–75 packets, 600 Hz).
	LevelMid = core.LevelMid
	// LevelHigh is a congested queue (>75 packets, 700 Hz).
	LevelHigh = core.LevelHigh
)

// DefaultSpacing is the paper's ~20 Hz minimum frequency distance.
const DefaultSpacing = core.DefaultSpacing

// DefaultStride is the recommended slot stride for same-window tones.
const DefaultStride = core.DefaultStride

// ErrCompacted reports a capture request for samples older than the
// room's compaction horizon (see Controller.Retention and
// Controller.AnalyseOnce): the emissions that would have sounded there
// have been dropped, so the window is unavailable, not quiet. Test
// with errors.Is.
var ErrCompacted = acoustic.ErrCompacted

// CullAuto, assigned to Room.CullThreshold (see Testbed.EnableCulling),
// turns on audibility culling with each microphone's own noise floor
// as its threshold: emissions received below a microphone's
// SelfNoiseRMS are skipped instead of mixed. Captures stay bit-exact
// for every emission at or above the floor.
const CullAuto = acoustic.CullAuto

// NewFrequencyPlan creates a plan over [minHz, maxHz] with the given
// slot spacing.
func NewFrequencyPlan(minHz, maxHz, spacing float64) *FrequencyPlan {
	return core.NewFrequencyPlan(minHz, maxHz, spacing)
}

// DefaultPlan returns the 400 Hz – 8 kHz plan at 20 Hz spacing.
func DefaultPlan() *FrequencyPlan { return core.DefaultPlan() }

// NewDetector builds a detector watching the given frequencies.
func NewDetector(method Method, watch []float64) *Detector {
	return core.NewDetector(method, watch)
}

// NewOnsetFilter returns a 2-window-confirmation onset filter.
func NewOnsetFilter() *OnsetFilter { return core.NewOnsetFilter() }

// SequenceFSM builds the linear machine accepting exactly the given
// symbol sequence.
func SequenceFSM(symbols []string) *FSM { return core.SequenceFSM(symbols) }

// NewPortKnock builds the Section 4 port-knocking application.
func NewPortKnock(plan *FrequencyPlan, switchName string, voice *Voice, ch *openflow.Channel, sequence []uint16, openRule openflow.FlowMod) (*PortKnock, error) {
	return core.NewPortKnock(plan, switchName, voice, ch, sequence, openRule)
}

// NewHeavyHitter builds the Section 5 heavy-hitter detector with the
// given number of hash buckets.
func NewHeavyHitter(plan *FrequencyPlan, switchName string, voice *Voice, buckets int) (*HeavyHitter, error) {
	return core.NewHeavyHitter(plan, switchName, voice, buckets)
}

// NewPortScan builds the Section 5 port-scan detector monitoring
// numPorts destination ports starting at firstPort.
func NewPortScan(plan *FrequencyPlan, switchName string, voice *Voice, firstPort uint16, numPorts int) (*PortScan, error) {
	return core.NewPortScan(plan, switchName, voice, firstPort, numPorts)
}

// NewQueueMonitor builds the Section 6 queue monitor on a switch
// output port, allocating its level tones from the plan.
func NewQueueMonitor(plan *FrequencyPlan, sw *netsim.Switch, port int, voice *Voice) (*QueueMonitor, error) {
	return core.NewQueueMonitor(plan, sw, port, voice)
}

// NewQueueMonitorWithTones builds a queue monitor with explicit level
// tones, e.g. the paper's 500/600/700 Hz.
func NewQueueMonitorWithTones(sw *netsim.Switch, port int, voice *Voice, tones [3]float64) *QueueMonitor {
	return core.NewQueueMonitorWithTones(sw, port, voice, tones)
}

// NewLoadBalancer builds the Section 6 load balancer reacting to a
// queue monitor's congested tone.
func NewLoadBalancer(qm *QueueMonitor, ch *openflow.Channel, splitRule openflow.FlowMod) *LoadBalancer {
	return core.NewLoadBalancer(qm, ch, splitRule)
}

// NewFanMonitor builds the Section 7 passive fan-failure monitor
// watching the given harmonic frequencies on a microphone.
func NewFanMonitor(mic *acoustic.Microphone, harmonics []float64) *FanMonitor {
	return core.NewFanMonitor(mic, harmonics)
}

// NewSpreadDetector builds a k-superspreader or DDoS-victim detector
// for one watched host.
func NewSpreadDetector(plan *FrequencyPlan, switchName string, voice *Voice, mode SpreadMode, watched netip.Addr, buckets, k int) (*SpreadDetector, error) {
	return core.NewSpreadDetector(plan, switchName, voice, mode, watched, buckets, k)
}

// NewRelay builds a frequency-translating acoustic relay.
func NewRelay(sim *netsim.Sim, mic *acoustic.Microphone, pi *mp.Pi, mapping map[float64]float64) (*Relay, error) {
	return core.NewRelay(sim, mic, pi, mapping)
}

// NewCongestionController wires a paced source to queue tones.
func NewCongestionController(qm *QueueMonitor, source core.RateSetter) *CongestionController {
	return core.NewCongestionController(qm, source)
}

// NewMelodyCodec allocates a 17-tone byte codec under the given name.
func NewMelodyCodec(plan *FrequencyPlan, name string) (*MelodyCodec, error) {
	return core.NewMelodyCodec(plan, name)
}

// NewMicArray builds a microphone array over the given microphones.
func NewMicArray(sim *netsim.Sim, det *Detector, mics ...*acoustic.Microphone) *MicArray {
	return core.NewMicArray(sim, det, mics...)
}

// NewManager builds an application manager around a microphone.
func NewManager(sim *netsim.Sim, mic *acoustic.Microphone, plan *FrequencyPlan) *Manager {
	return core.NewManager(sim, mic, plan)
}

// NewHeartbeat builds the liveness monitor (1 s period, 3-miss
// threshold).
func NewHeartbeat() *Heartbeat { return core.NewHeartbeat() }

// NewKnockGenerator builds a rotating knock-sequence generator over a
// shared secret.
func NewKnockGenerator(secret []byte) *KnockGenerator {
	return core.NewKnockGenerator(secret)
}

// NewProgrammer builds a retrying flow programmer over a control
// channel, with deterministic backoff jitter from the seed.
func NewProgrammer(ch *openflow.Channel, seed int64) *Programmer {
	return openflow.NewProgrammer(ch, seed)
}

// NewFleet builds a many-microphone analysis fleet cloning template
// for each of workers pool slots (workers <= 0 means GOMAXPROCS,
// workers == 1 is serial). The result is identical at any pool size;
// Controller.EnableFleet wires one into a controller's window loop.
func NewFleet(template *Detector, workers int) *Fleet {
	return core.NewFleet(template, workers)
}

// NewEdgeDedup builds an onset dedup over n frequencies with the given
// attack threshold and the default release hysteresis.
func NewEdgeDedup(n int, threshold float64) *EdgeDedup {
	return core.NewEdgeDedup(n, threshold)
}

// NewCountMin builds a seeded count-min sketch with relative error
// eps at confidence 1-delta (set Conservative for tighter estimates).
func NewCountMin(eps, delta float64, seed uint64) (*CountMin, error) {
	return sketch.NewCountMin(eps, delta, seed)
}

// NewHyperLogLog builds a seeded distinct counter with 2^p registers
// (standard error ~1.04/sqrt(2^p)).
func NewHyperLogLog(p uint8, seed uint64) (*HyperLogLog, error) {
	return sketch.NewHyperLogLog(p, seed)
}

// NewTopK builds a space-saving top-k tracker over k entries.
func NewTopK(k int) (*TopK, error) { return sketch.NewTopK(k) }

// NewSketchFlowCounter builds a count-min-backed FlowCounter; install
// it with HeavyHitter.SetFlowCounter to bound analytics state.
func NewSketchFlowCounter(epsilon, delta float64, seed uint64) (FlowCounter, error) {
	return core.NewSketchFlowCounter(epsilon, delta, seed)
}

// NewSketchDistinctCounter builds an HLL-backed DistinctCounter;
// install it with PortScan.SetDistinctCounter or
// SpreadDetector.SetDistinctCounter.
func NewSketchDistinctCounter(precision uint8, seed uint64) (DistinctCounter, error) {
	return core.NewSketchDistinctCounter(precision, seed)
}

// StartFlowSet launches a batched synthetic-traffic source on a host:
// all flows pace through one scheduler event (see also
// Sim.EnablePacketPool for an allocation-free packet path).
func StartFlowSet(sim *netsim.Sim, h *netsim.Host, cfg FlowSetConfig) *FlowSet {
	return netsim.StartFlowSet(sim, h, cfg)
}

// DefaultModemConfig returns the default acoustic-data-channel
// parameters: 50 ms symbols, 4 lanes, no FEC (set Config.FEC to a
// ModemFECRS or ModemFECHamming for protection).
func DefaultModemConfig() ModemConfig { return modem.DefaultConfig() }

// ModemPlan returns a frequency plan wide enough for the modem's tone
// set under the given config — the 400 Hz – 8 kHz DefaultPlan is too
// narrow for the full 130-tone channel.
func ModemPlan(cfg ModemConfig) *FrequencyPlan { return modem.Plan(cfg) }

// NewModemBand allocates the modem's sync and data tones from a plan
// under the given device name.
func NewModemBand(plan *FrequencyPlan, name string, cfg ModemConfig) (*ModemBand, error) {
	return modem.NewBand(plan, name, cfg)
}

// NewModemTransmitter builds a transmitter sending frames through the
// given switch voice.
func NewModemTransmitter(sim *netsim.Sim, band *ModemBand, voice *Voice) *ModemTransmitter {
	return modem.NewTransmitter(sim, band, voice)
}

// NewModemReceiver builds a receiver for the band; subscribe its
// HandleWindow to a controller (batch or streaming) and read Frames
// or register OnFrame.
func NewModemReceiver(band *ModemBand) *ModemReceiver { return modem.NewReceiver(band) }

// NewModemCorruptor builds a seeded fault injector corrupting each
// payload symbol with the given probability; assign it to
// ModemTransmitter.Corruptor.
func NewModemCorruptor(rate float64, seed int64) *ModemCorruptor {
	return modem.NewCorruptor(rate, seed)
}

// ModemFECByName resolves a FEC scheme from its configuration name:
// "none", "hamming7_4", or "rs_pN" for N parity bytes.
func ModemFECByName(name string) (ModemFEC, error) { return modem.FECByName(name) }

// NewMetricsRegistry creates an empty metrics registry. Pass it to
// Controller.Instrument and the applications' Instrument methods,
// then read Snapshot() for a Prometheus-text view of the pipeline.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.New() }

// Testbed assembles the full simulated MDN deployment: a
// discrete-event network, an acoustic room, a frequency plan, and one
// controller microphone at the origin. It is the quickest way to
// stand up an end-to-end scenario; the examples all start here.
type Testbed struct {
	// Sim is the shared virtual clock and network simulator.
	Sim *netsim.Sim
	// Room is the acoustic environment.
	Room *acoustic.Room
	// Mic is the controller's microphone (at the origin).
	Mic *acoustic.Microphone
	// Plan is the testbed-wide frequency plan.
	Plan *FrequencyPlan
}

// NewTestbed creates a testbed at 44.1 kHz with a 0.0005 RMS
// microphone noise floor, seeded for reproducibility.
func NewTestbed(seed int64) *Testbed {
	sim := netsim.NewSim()
	room := acoustic.NewRoom(44100, seed)
	mic := room.AddMicrophone("controller", acoustic.Position{}, 0.0005)
	return &Testbed{Sim: sim, Room: room, Mic: mic, Plan: DefaultPlan()}
}

// EnableCulling switches the testbed room to audibility-culled
// capture: each microphone mixes only the emissions it can actually
// hear above its own noise floor, which is what makes thousand-voice
// fleets affordable per window (see DESIGN.md §5f). Mixing of audible
// emissions is bit-exact with the unculled room; call with no
// arguments for the noise-floor default, or set Room.CullThreshold
// directly for an explicit floor.
func (tb *Testbed) EnableCulling() { tb.Room.CullThreshold = CullAuto }

// AddVoicedSwitch creates a switch whose Music Protocol sounder
// drives a speaker at (x, y) metres from the controller microphone,
// returning the switch and its voice.
func (tb *Testbed) AddVoicedSwitch(name string, x, y float64) (*netsim.Switch, *Voice) {
	sw := netsim.NewSwitch(tb.Sim, name)
	sp := tb.Room.AddSpeaker(name, acoustic.Position{X: x, Y: y})
	pi := mp.NewPi(tb.Sim, sp, 0.002)
	return sw, core.NewVoice(tb.Sim, mp.NewSounder(pi))
}

// NewController builds a controller on the testbed microphone
// watching the given frequencies with the Goertzel method.
func (tb *Testbed) NewController(watch []float64) *Controller {
	return core.NewController(tb.Sim, tb.Mic, NewDetector(MethodGoertzel, watch))
}

// OpenFlowChannel attaches a control channel with the given one-way
// latency to a switch.
func (tb *Testbed) OpenFlowChannel(sw *netsim.Switch, latency float64) *openflow.Channel {
	return openflow.NewChannel(tb.Sim, sw, latency)
}
