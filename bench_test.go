package mdn

// One testing.B benchmark per paper figure/claim (the same runners
// cmd/mdnbench uses), plus ablation benches for the design choices
// DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
import (
	"math"
	"math/bits"
	"runtime"
	"strconv"
	"testing"

	"mdn/internal/acoustic"
	"mdn/internal/audio"
	"mdn/internal/core"
	"mdn/internal/dsp"
	"mdn/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if r := e.Run(); !r.Pass() {
			b.Fatalf("%s failed shape checks", id)
		}
	}
}

func BenchmarkFig2aSwitchIdentification(b *testing.B) { benchExperiment(b, "fig2a") }
func BenchmarkFig2bFFTLatency(b *testing.B)           { benchExperiment(b, "fig2b") }
func BenchmarkFig3PortKnocking(b *testing.B)          { benchExperiment(b, "fig3") }
func BenchmarkFig4aHeavyHitter(b *testing.B)          { benchExperiment(b, "fig4a") }
func BenchmarkFig4bHeavyHitterNoisy(b *testing.B)     { benchExperiment(b, "fig4b") }
func BenchmarkFig4cPortScan(b *testing.B)             { benchExperiment(b, "fig4c") }
func BenchmarkFig4dPortScanNoisy(b *testing.B)        { benchExperiment(b, "fig4d") }
func BenchmarkFig5LoadBalancing(b *testing.B)         { benchExperiment(b, "fig5ab") }
func BenchmarkFig5QueueMonitoring(b *testing.B)       { benchExperiment(b, "fig5cd") }
func BenchmarkFig6FanSpectrograms(b *testing.B)       { benchExperiment(b, "fig6") }
func BenchmarkFig7FanFailureDetection(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkSec3FrequencySpacing(b *testing.B)      { benchExperiment(b, "sec3-spacing") }
func BenchmarkSec3ToneDuration(b *testing.B)          { benchExperiment(b, "sec3-duration") }
func BenchmarkSec5FrequencyCapacity(b *testing.B)     { benchExperiment(b, "sec5-capacity") }
func BenchmarkExtFailover(b *testing.B)               { benchExperiment(b, "ext-failover") }
func BenchmarkExtSuperspreader(b *testing.B)          { benchExperiment(b, "ext-superspreader") }
func BenchmarkExtRelay(b *testing.B)                  { benchExperiment(b, "ext-relay") }
func BenchmarkExtCongestion(b *testing.B)             { benchExperiment(b, "ext-congestion") }
func BenchmarkExtUltrasound(b *testing.B)             { benchExperiment(b, "ext-ultrasound") }
func BenchmarkExtMicArray(b *testing.B)               { benchExperiment(b, "ext-micarray") }
func BenchmarkExtFanAnomaly(b *testing.B)             { benchExperiment(b, "ext-fananomaly") }
func BenchmarkExtFanDistance(b *testing.B)            { benchExperiment(b, "ext-fandistance") }
func BenchmarkExtHeartbeat(b *testing.B)              { benchExperiment(b, "ext-heartbeat") }
func BenchmarkExtControlLatency(b *testing.B)         { benchExperiment(b, "ext-latency") }

// --- Ablation benches -------------------------------------------------

// detectionWindow synthesizes the standard 50 ms capture with three
// active tones for the detector ablations.
func detectionWindow() *audio.Buffer {
	return audio.Chord(44100,
		audio.Tone{Frequency: 520, Duration: 0.05, Amplitude: 0.02},
		audio.Tone{Frequency: 840, Duration: 0.05, Amplitude: 0.02},
		audio.Tone{Frequency: 1160, Duration: 0.05, Amplitude: 0.02},
	)
}

// BenchmarkAblationDetectorMethod compares the Goertzel bank against
// the full FFT across watch-list sizes — the crossover justifies the
// controller's method choice.
func BenchmarkAblationDetectorMethod(b *testing.B) {
	buf := detectionWindow()
	for _, n := range []int{3, 12, 48, 192} {
		watch := make([]float64, n)
		for i := range watch {
			watch[i] = 400 + 20*float64(i)
		}
		for _, m := range []Method{MethodGoertzel, MethodFFT} {
			det := NewDetector(m, watch)
			b.Run(m.String()+"-watch-"+strconv.Itoa(n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					det.Detect(buf, 0)
				}
			})
		}
	}
}

// BenchmarkAblationWindowFunction measures adjacent-tone leakage
// suppression cost: Hann vs rectangular analysis of the same block.
func BenchmarkAblationWindowFunction(b *testing.B) {
	buf := detectionWindow()
	for _, w := range []dsp.Window{dsp.Rectangular, dsp.Hann, dsp.Blackman} {
		b.Run(w.String(), func(b *testing.B) {
			work := make([]float64, buf.Len())
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				copy(work, buf.Samples)
				w.Apply(work)
				spec := dsp.FFTReal(work)
				_ = dsp.Magnitudes(spec)
			}
		})
	}
}

// BenchmarkAblationWindowLength sweeps the controller's analysis
// window: shorter windows cut latency but lose frequency resolution.
func BenchmarkAblationWindowLength(b *testing.B) {
	for _, ms := range []int{25, 50, 100, 200} {
		dur := float64(ms) / 1000
		tone := audio.Tone{Frequency: 700, Duration: dur, Amplitude: 0.02}.Render(44100)
		det := NewDetector(MethodGoertzel, []float64{660, 680, 700, 720, 740})
		b.Run("window-"+strconv.Itoa(ms)+"ms", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				det.Detect(tone, 0)
			}
		})
	}
}

// BenchmarkAcousticCapture measures the cost of rendering one
// controller window from a busy room (10 emitters + noise).
func BenchmarkAcousticCapture(b *testing.B) {
	tb := NewTestbed(99)
	for i := 0; i < 10; i++ {
		_, v := tb.AddVoicedSwitch("s"+strconv.Itoa(i), 1+float64(i)*0.3, 0)
		f := 400 + float64(i)*80
		tb.Sim.Schedule(0.1, func() { v.Play(f) })
	}
	tb.Room.AddNoise(core.PopSongNoise(44100, 2, 0.02, 5))
	tb.Sim.RunUntil(0.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Mic.Capture(0.1, 0.15)
	}
}

// BenchmarkCaptureInto is BenchmarkAcousticCapture on the reused-
// buffer path: the same busy room rendered with Microphone.CaptureInto
// feeding each call's return value into the next. The steady state
// must report 0 allocs/op.
func BenchmarkCaptureInto(b *testing.B) {
	tb := NewTestbed(99)
	for i := 0; i < 10; i++ {
		_, v := tb.AddVoicedSwitch("s"+strconv.Itoa(i), 1+float64(i)*0.3, 0)
		f := 400 + float64(i)*80
		tb.Sim.Schedule(0.1, func() { v.Play(f) })
	}
	tb.Room.AddNoise(core.PopSongNoise(44100, 2, 0.02, 5))
	tb.Sim.RunUntil(0.5)
	buf := tb.Mic.CaptureInto(nil, 0.1, 0.15)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = tb.Mic.CaptureInto(buf, 0.1, 0.15)
	}
}

// BenchmarkCaptureCulled measures audibility culling on the capture
// path: a 256-speaker sparse room (10 m rack-row spacing) where the
// microphone can hear only the handful of emitters above its noise
// floor. The culled and full rows render the identical window; the
// culled row must stay 0 allocs/op, and the gap between them is the
// per-window saving the fleet path multiplies by the microphone
// count.
func BenchmarkCaptureCulled(b *testing.B) {
	for _, mode := range []struct {
		name string
		cull bool
	}{{"culled", true}, {"full", false}} {
		b.Run(mode.name, func(b *testing.B) {
			room := acoustic.NewRoom(44100, 99)
			if mode.cull {
				room.CullThreshold = CullAuto
			}
			mic := room.AddMicrophone("controller", acoustic.Position{}, 0.0005)
			for i := 0; i < 256; i++ {
				sp := room.AddSpeaker("s"+strconv.Itoa(i),
					acoustic.Position{X: 10 * float64(i), Y: 1})
				sp.Play(0, audio.Tone{Frequency: 400 + 20*float64(i),
					Duration: 3600, Amplitude: acoustic.SPLToAmplitude(60)})
			}
			// Window at t=10 s: far enough in that every wavefront
			// (the farthest speaker is 2.55 km ≈ 7.4 s out) overlaps
			// it, so the full row really mixes all 256 emitters.
			buf := mic.CaptureInto(nil, 10.1, 10.15)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = mic.CaptureInto(buf, 10.1, 10.15)
			}
		})
	}
}

// fleetRoom builds the N-voice fleet world: one speaker per switch
// holding a sustained tone, one microphone per switch, and an FFT
// detector watching all N frequencies.
func fleetRoom(n int) ([]*acoustic.Microphone, *Detector) {
	room := acoustic.NewRoom(44100, 7)
	mics := make([]*acoustic.Microphone, n)
	freqs := make([]float64, n)
	for i := 0; i < n; i++ {
		name := "s" + strconv.Itoa(i)
		sp := room.AddSpeaker(name, acoustic.Position{X: 1 + 0.01*float64(i)})
		mics[i] = room.AddMicrophone("mic-"+name,
			acoustic.Position{Y: 0.1 * float64(i)}, 0.0005)
		freqs[i] = 400 + 20*float64(i)
		sp.Play(0, audio.Tone{Frequency: freqs[i], Duration: 3600,
			Amplitude: acoustic.SPLToAmplitude(60)})
	}
	return mics, NewDetector(MethodFFT, freqs)
}

// BenchmarkFleet drives the fleet engine through the facade: one
// 50 ms controller window fanned over N microphones by per-worker
// detector clones, serial versus a GOMAXPROCS pool, with detections
// merged deterministically. Every row must hold 0 allocs/op at
// steady state. The full 1–1024-voice scale suite — culled versus
// nocull on sparse placement — and the worker sweep live in
// internal/core (numbers in BENCH_PR6.json).
func BenchmarkFleet(b *testing.B) {
	for _, n := range []int{1, 8, 64} {
		mics, det := fleetRoom(n)
		for _, w := range []struct {
			name    string
			workers int
		}{{"serial", 1}, {"parallel", runtime.GOMAXPROCS(0)}} {
			b.Run("voices="+strconv.Itoa(n)+"/"+w.name, func(b *testing.B) {
				f := NewFleet(det, w.workers)
				defer f.Close()
				for _, m := range mics {
					f.AddMicrophone(m)
				}
				// Warm up clones, capture buffers and result slots so
				// the timed region measures the steady state.
				f.Analyse(0, 0.050)
				f.Analyse(0.050, 0.100)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					from := float64(2+i%1000) * 0.050
					f.Analyse(from, from+0.050)
				}
			})
		}
	}
}

// BenchmarkGoertzelSingleBin is the detector's hot inner loop.
func BenchmarkGoertzelSingleBin(b *testing.B) {
	buf := detectionWindow()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dsp.Goertzel(buf.Samples, 840, 44100)
	}
}

// BenchmarkMelSpectrogram measures the Figure 6-style analysis path.
func BenchmarkMelSpectrogram(b *testing.B) {
	fan := audio.DefaultFan(0.3, 1).Render(44100, 1)
	bank := dsp.NewMelFilterBank(64, 4096, 44100, 50, 8000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sg := dsp.STFT(fan.Samples, 44100, 4096, 2048, dsp.Hann)
		_ = sg.Mel(bank)
	}
}

// sincosFFT is the pre-plan transform (per-butterfly math.Sincos, no
// cached permutation), kept as the ablation baseline for
// BenchmarkAblationPlannedFFT.
func sincosFFT(x []complex128) {
	n := len(x)
	if n < 2 {
		return
	}
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := -2 * math.Pi / float64(size)
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				s, c := math.Sincos(step * float64(k))
				w := complex(c, s)
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
}

// BenchmarkAblationPlannedFFT compares the planned transform (twiddle
// table + cached bit reversal) with the unplanned per-butterfly
// Sincos baseline it replaced, at the controller's 50 ms window size.
func BenchmarkAblationPlannedFFT(b *testing.B) {
	const n = 4096
	src := detectionWindow().Samples
	work := make([]complex128, n)
	fill := func() {
		for i := range work {
			work[i] = 0
		}
		for i, v := range src {
			work[i] = complex(v, 0)
		}
	}
	b.Run("unplanned-sincos", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fill()
			sincosFFT(work)
		}
	})
	b.Run("planned", func(b *testing.B) {
		p := dsp.PlanFFT(n)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fill()
			p.Transform(work)
		}
	})
}

// BenchmarkAblationPackedReal compares promoting a real block to
// complex and running the full-size transform against the packed
// real-input transform (N/2 butterflies), both on the cached plan.
func BenchmarkAblationPackedReal(b *testing.B) {
	const n = 4096
	src := detectionWindow().Samples // 2205 samples, zero-padded
	p := dsp.PlanFFT(n)
	b.Run("promote-complex", func(b *testing.B) {
		work := make([]complex128, n)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for k := range work {
				work[k] = 0
			}
			for k, v := range src {
				work[k] = complex(v, 0)
			}
			p.Transform(work)
		}
	})
	b.Run("packed-real", func(b *testing.B) {
		var spec []complex128
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			spec = p.RealSpectrumInto(spec, src)
		}
	})
}

// BenchmarkPlannedWindowedSpectrum measures the controller's per-window
// FFT front end on the planned API with a reused destination: the
// steady state must report 0 allocs/op.
func BenchmarkPlannedWindowedSpectrum(b *testing.B) {
	buf := detectionWindow()
	plan := dsp.PlanFFT(dsp.NextPowerOfTwo(buf.Len()))
	var mags []float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mags = plan.WindowedSpectrumInto(mags, buf.Samples, dsp.Hann)
	}
}

// BenchmarkPlannedGoertzelBank measures the planned single-pass bank
// (the Goertzel detector's steady state): 0 allocs/op.
func BenchmarkPlannedGoertzelBank(b *testing.B) {
	buf := detectionWindow()
	for _, n := range []int{3, 12, 48} {
		watch := make([]float64, n)
		for i := range watch {
			watch[i] = 400 + 20*float64(i)
		}
		gp := dsp.NewGoertzelPlan(watch, 44100)
		b.Run("watch-"+strconv.Itoa(n), func(b *testing.B) {
			var mags []float64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mags = gp.MagnitudesInto(mags, buf.Samples)
			}
		})
	}
}

// BenchmarkSTFTFrames streams spectrogram frames through the pooled
// plan scratch — the zero-allocation path under STFT.
func BenchmarkSTFTFrames(b *testing.B) {
	fan := audio.DefaultFan(0.3, 1).Render(44100, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dsp.STFTFrames(fan.Samples, 44100, 4096, 2048, dsp.Hann, func(frame int, start float64, power []float64) {})
	}
}

// BenchmarkAblationSTFTParallel compares the serial planned STFT with
// the goroutine fan-out across worker counts (the Figure 6 mel path).
func BenchmarkAblationSTFTParallel(b *testing.B) {
	fan := audio.DefaultFan(0.3, 1).Render(44100, 2)
	for _, workers := range []int{1, 2, 4, 0} {
		name := "workers-" + strconv.Itoa(workers)
		if workers == 0 {
			name = "workers-gomaxprocs"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = dsp.STFTParallel(fan.Samples, 44100, 4096, 2048, dsp.Hann, workers)
			}
		})
	}
}

// TestFacadeSmoke exercises the public facade end to end: a voiced
// switch plays a tone and the controller hears it.
func TestFacadeSmoke(t *testing.T) {
	tb := NewTestbed(1)
	_, voice := tb.AddVoicedSwitch("s1", 1, 0)
	freqs := tb.Plan.MustAllocate("s1", 1)
	ctrl := tb.NewController(freqs)
	var heard []Detection
	ctrl.Subscribe(func(d Detection) { heard = append(heard, d) })
	ctrl.Start(0)
	tb.Sim.Schedule(0.3, func() { voice.Play(freqs[0]) })
	tb.Sim.RunUntil(1)
	if len(heard) == 0 {
		t.Fatal("facade controller heard nothing")
	}
	if math.Abs(heard[0].Frequency-freqs[0]) > 1e-9 {
		t.Errorf("heard %g, want %g", heard[0].Frequency, freqs[0])
	}
}
