module mdn

go 1.22
