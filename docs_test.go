package mdn

import (
	"os"
	"strings"
	"testing"

	"mdn/internal/experiments"
)

// TestDocsCoverEveryExperiment keeps the documentation honest: every
// registered experiment ID must appear in DESIGN.md's index and (for
// paper figures) in EXPERIMENTS.md, and every bench target named in
// DESIGN.md must exist in bench_test.go.
func TestDocsCoverEveryExperiment(t *testing.T) {
	design := readFile(t, "DESIGN.md")
	expmd := readFile(t, "EXPERIMENTS.md")
	bench := readFile(t, "bench_test.go")

	for _, e := range experiments.All() {
		if !strings.Contains(design, e.ID) {
			t.Errorf("DESIGN.md does not mention experiment %q", e.ID)
		}
		target := expmd
		if strings.HasPrefix(e.ID, "ext-") {
			// Extensions are documented in the extensions section.
			if !strings.Contains(target, e.ID) {
				t.Errorf("EXPERIMENTS.md does not mention extension %q", e.ID)
			}
			continue
		}
		// Paper figures appear by their figure/section name.
		key := strings.TrimPrefix(e.ID, "fig")
		if !strings.Contains(strings.ToLower(target), strings.ToLower(key[:1])) {
			t.Errorf("EXPERIMENTS.md seems to miss %q", e.ID)
		}
	}

	// Every bench target DESIGN.md promises must exist.
	for _, line := range strings.Split(design, "\n") {
		for _, tok := range strings.Fields(line) {
			tok = strings.Trim(tok, "`|")
			if strings.HasPrefix(tok, "Benchmark") && !strings.Contains(tok, "(") {
				if !strings.Contains(bench, "func "+tok+"(") {
					t.Errorf("DESIGN.md names %s but bench_test.go does not define it", tok)
				}
			}
		}
	}
}

// TestReadmeMentionsAllExamples keeps the README example table in
// sync with the examples directory.
func TestReadmeMentionsAllExamples(t *testing.T) {
	readme := readFile(t, "README.md")
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() && !strings.Contains(readme, "examples/"+e.Name()) {
			t.Errorf("README.md does not mention examples/%s", e.Name())
		}
	}
}

func readFile(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
