package mdn

import (
	"testing"

	"mdn/internal/acoustic"
	"mdn/internal/mp"
	"mdn/internal/netsim"
	"mdn/internal/openflow"
)

// TestFacadeConstructors exercises every facade wrapper once, so the
// public API surface stays wired to the implementation.
func TestFacadeConstructors(t *testing.T) {
	tb := NewTestbed(500)
	sw, voice := tb.AddVoicedSwitch("s1", 1, 0)

	if p := NewFrequencyPlan(400, 4000, 20); p.Capacity() != 181 {
		t.Errorf("plan capacity = %d", p.Capacity())
	}
	if DefaultPlan().Capacity() == 0 {
		t.Error("default plan empty")
	}
	det := NewDetector(MethodFFT, []float64{500})
	if det == nil || len(det.Watch()) != 1 {
		t.Error("detector wrapper broken")
	}
	if NewOnsetFilter() == nil {
		t.Error("onset wrapper broken")
	}
	if SequenceFSM([]string{"a"}) == nil {
		t.Error("fsm wrapper broken")
	}

	ch := tb.OpenFlowChannel(sw, 0.001)
	if ch == nil || ch.Switch() != sw {
		t.Error("channel wrapper broken")
	}
	pk, err := NewPortKnock(tb.Plan, "s1", voice, ch, []uint16{1, 2}, openflow.FlowMod{})
	if err != nil || len(pk.Frequencies()) != 2 {
		t.Errorf("portknock wrapper: %v", err)
	}
	hh, err := NewHeavyHitter(tb.Plan, "s2", voice, 4)
	if err != nil || len(hh.Frequencies()) != 4 {
		t.Errorf("heavyhitter wrapper: %v", err)
	}
	ps, err := NewPortScan(tb.Plan, "s3", voice, 100, 4)
	if err != nil || len(ps.Frequencies()) != 4 {
		t.Errorf("portscan wrapper: %v", err)
	}
	qm, err := NewQueueMonitor(tb.Plan, sw, 2, voice)
	if err != nil || len(qm.Frequencies()) != 3 {
		t.Errorf("queuemon wrapper: %v", err)
	}
	qm2 := NewQueueMonitorWithTones(sw, 3, voice, [3]float64{500, 600, 700})
	if qm2.LevelFor(600) != LevelMid {
		t.Error("queuemon tones wrapper broken")
	}
	lb := NewLoadBalancer(qm2, ch, openflow.FlowMod{Command: openflow.FlowAdd, Action: netsim.Drop()})
	if lb == nil || lb.Triggered {
		t.Error("loadbalancer wrapper broken")
	}
	fm := NewFanMonitor(tb.Mic, []float64{1050, 2100})
	if fm == nil || len(fm.Harmonics) != 2 {
		t.Error("fanmonitor wrapper broken")
	}
	sd, err := NewSpreadDetector(tb.Plan, "s4", voice, ModeDDoSVictim, netsim.MustAddr("10.0.0.1"), 4, 2)
	if err != nil || len(sd.Frequencies()) != 4 {
		t.Errorf("spread wrapper: %v", err)
	}
	mc, err := NewMelodyCodec(tb.Plan, "s5")
	if err != nil || len(mc.Frequencies()) != 17 {
		t.Errorf("melody wrapper: %v", err)
	}
	arr := NewMicArray(tb.Sim, det, tb.Mic)
	if arr == nil {
		t.Error("micarray wrapper broken")
	}
	mgr := NewManager(tb.Sim, tb.Mic, tb.Plan)
	if err := mgr.Deploy(hh); err != nil {
		t.Errorf("manager deploy: %v", err)
	}
	hb := NewHeartbeat()
	if _, err := hb.Register(tb.Plan, "s6", voice); err != nil {
		t.Errorf("heartbeat wrapper: %v", err)
	}
	cc := NewCongestionController(qm2, fakeRate{})
	if cc == nil || cc.Beta != 0.5 {
		t.Error("congestion wrapper broken")
	}
	kg := NewKnockGenerator([]byte("secret"))
	if len(kg.SequenceAt(0)) != 3 || !kg.Verify(0, kg.SequenceAt(0)) {
		t.Error("knock generator wrapper broken")
	}
	// Constants re-exported sanely.
	if DefaultSpacing != 20 || DefaultStride != 4 {
		t.Error("constants wrong")
	}
	if MethodGoertzel.String() != "goertzel" {
		t.Error("method constant wrong")
	}
	if DeviceHealthy.String() != "healthy" || DeviceDetuned.String() != "detuned" {
		t.Error("device state constants wrong")
	}
}

// TestFacadeDeviceMonitor exercises the device-health exports: the
// monitor rides a controller, watches a speaker, and both the health
// snapshot and the room's read-only mic stats flow through the facade
// types.
func TestFacadeDeviceMonitor(t *testing.T) {
	tb := NewTestbed(502)
	_, voice := tb.AddVoicedSwitch("s1", 1, 0)
	ctl := tb.NewController([]float64{700})

	var mon *DeviceMonitor = ctl.EnableDeviceMonitor()
	mon.WatchSpeaker("s1", voice, 700)

	ctl.Start(0)
	for ts := 0.1; ts < 1.0; ts += 0.3 {
		tb.Sim.Schedule(ts, func() { voice.Play(700) })
	}
	tb.Sim.RunUntil(1.2)
	ctl.Stop()

	var rows []DeviceHealth = mon.Snapshot()
	if len(rows) != 2 {
		t.Fatalf("device rows = %d, want mic + speaker", len(rows))
	}
	var st DeviceState = DeviceHealthy
	for _, d := range rows {
		if d.State != st.String() {
			t.Errorf("%s %s state = %s, want healthy", d.Kind, d.Name, d.State)
		}
	}
	var ms MicStats = tb.Room.Microphone("controller").StatsAt(1.0)
	if ms.NoiseRMS <= 0 || ms.Sensitivity != 1 {
		t.Errorf("mic stats = %+v", ms)
	}
	if h := ctl.Health(); len(h.Devices) != 2 {
		t.Errorf("health devices = %d, want 2", len(h.Devices))
	}
}

// TestFacadeModem round-trips one frame through the acoustic data
// channel using only facade exports.
func TestFacadeModem(t *testing.T) {
	tb := NewTestbed(503)
	_, voice := tb.AddVoicedSwitch("m1", 1, 0)

	cfg := DefaultModemConfig()
	fec, err := ModemFECByName("rs_p48")
	if err != nil {
		t.Fatal(err)
	}
	cfg.FEC = fec
	band, err := NewModemBand(ModemPlan(cfg), "m1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctl := tb.NewController(band.Frequencies())
	tx := NewModemTransmitter(tb.Sim, band, voice)
	tx.Corruptor = NewModemCorruptor(0.02, 504)
	rx := NewModemReceiver(band)
	ctl.SubscribeWindows(rx.HandleWindow)
	ctl.Start(0)

	payload := []byte("facade modem frame")
	end, err := tx.Send(0.5, payload)
	if err != nil {
		t.Fatal(err)
	}
	tb.Sim.RunUntil(end + 0.5)

	if len(rx.Frames) != 1 {
		t.Fatalf("frames delivered = %d, want 1", len(rx.Frames))
	}
	var fr ModemFrame = rx.Frames[0]
	if string(fr.Payload) != string(payload) {
		t.Errorf("payload = %q, want %q", fr.Payload, payload)
	}
	var _ ModemFEC = ModemFECNone{}
	var _ ModemFEC = ModemFECHamming{}
	var _ ModemFEC = ModemFECRS{}
}

type fakeRate struct{}

func (fakeRate) SetRate(float64) {}
func (fakeRate) Rate() float64   { return 1 }

// TestFacadeRelay exercises the relay wrapper with real plumbing.
func TestFacadeRelay(t *testing.T) {
	tb := NewTestbed(501)
	mic2 := tb.Room.AddMicrophone("relay-mic", acoustic.Position{X: 3}, 0.0001)
	sp := tb.Room.AddSpeaker("relay-out", acoustic.Position{X: 3.5})
	pi := mp.NewPi(tb.Sim, sp, 0.001)
	relay, err := NewRelay(tb.Sim, mic2, pi, map[float64]float64{600: 1200})
	if err != nil {
		t.Fatal(err)
	}
	relay.Start(0)
	tb.Sim.RunUntil(0.2)
	relay.Stop()
}

// TestFacadeSketch exercises the sketch and traffic-engine exports:
// the counters install through the app seams and the flow set drives
// a pooled simulator.
func TestFacadeSketch(t *testing.T) {
	cms, err := NewCountMin(0.01, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	cms.Update(7, 3)
	if cms.Estimate(7) < 3 {
		t.Error("count-min underestimated")
	}
	hll, err := NewHyperLogLog(12, 1)
	if err != nil {
		t.Fatal(err)
	}
	hll.Add(7)
	if hll.Estimate() == 0 {
		t.Error("hll empty after Add")
	}
	tk, err := NewTopK(4)
	if err != nil {
		t.Fatal(err)
	}
	tk.Update(7, 1)
	if len(tk.Items()) != 1 {
		t.Errorf("topk items = %d", len(tk.Items()))
	}

	tb := NewTestbed(502)
	_, voice := tb.AddVoicedSwitch("sk1", 1, 0)
	hh, err := NewHeavyHitter(tb.Plan, "sk1", voice, 16)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := NewSketchFlowCounter(0.01, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	hh.SetFlowCounter(fc)
	ps, err := NewPortScan(tb.Plan, "sk1", voice, 7000, 16)
	if err != nil {
		t.Fatal(err)
	}
	dc, err := NewSketchDistinctCounter(12, 1)
	if err != nil {
		t.Fatal(err)
	}
	ps.SetDistinctCounter(dc)

	sim := netsim.NewSim()
	sim.EnablePacketPool()
	h1 := netsim.NewHost(sim, "h1", netsim.MustAddr("10.0.0.1"))
	h2 := netsim.NewHost(sim, "h2", netsim.MustAddr("10.0.0.2"))
	sw := netsim.NewSwitch(sim, "fs1")
	netsim.Connect(sim, h1, 1, sw, 1, 1e9, 1e-6, 0)
	netsim.Connect(sim, sw, 2, h2, 1, 1e9, 1e-6, 0)
	sw.InstallRule(netsim.Rule{Match: netsim.Match{Dst: h2.Addr}, Action: netsim.Output(2)})
	fs := StartFlowSet(sim, h1, FlowSetConfig{
		Specs: []FlowSpec{{
			Flow: netsim.FiveTuple{Src: h1.Addr, Dst: h2.Addr, SrcPort: 1000, DstPort: 80, Proto: netsim.ProtoUDP},
			PPS:  100,
		}},
		Stop: 0.5, Seed: 1,
	})
	sim.RunUntil(1)
	if fs.Sent == 0 {
		t.Error("flow set sent nothing")
	}
}
