package mdn

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestExamplesSmoke builds and runs every example binary, checking
// each for its headline output line. Skipped with -short (it shells
// out to the go tool).
func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test shells out to go run")
	}
	cases := map[string]string{
		"quickstart":    "controller heard",
		"portknock":     "port opened at",
		"loadbalance":   "congestion tone heard",
		"fanfailure":    "ALERT: fan failure",
		"telemetry":     "SCAN ALERT",
		"ddos":          "DDOS ALERT",
		"mptcp":         "pi accepted 6 of 7",
		"relay":         "heard via relay: 5",
		"acoustic-sync": "flow table synced over sound",
	}
	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range cases {
		name, want := name, want
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+name)
			cmd.Dir = root
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if !strings.Contains(string(out), want) {
				t.Errorf("example %s output missing %q:\n%s", name, want, out)
			}
		})
	}
	// The examples directory must not grow unrun entries.
	entries, err := os.ReadDir(filepath.Join(root, "examples"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			if _, ok := cases[e.Name()]; !ok {
				t.Errorf("example %q has no smoke test entry", e.Name())
			}
		}
	}
}
