// Package mdn is Music-Defined Networking: network management and
// orchestration over an out-of-band sound channel, reproducing Hogan
// and Esposito, "Music-Defined Networking" (HotNets-XVII, 2018).
//
// Network devices emit tones describing their state (active
// applications) or are listened to passively (fan-failure detection);
// an MDN controller decodes tone sequences with the FFT and reacts —
// installing flow rules, raising alerts, balancing load.
//
// The package is a facade over the implementation packages:
//
//   - frequency planning with the paper's 20 Hz spacing
//     (FrequencyPlan, DefaultPlan)
//   - tone detection over captured audio (Detector, OnsetFilter)
//   - the controller event loop (Controller)
//   - the paper's applications: PortKnock, HeavyHitter, PortScan,
//     QueueMonitor, LoadBalancer, FanMonitor
//   - a Testbed builder assembling the simulated network, acoustic
//     room, and Music Protocol plumbing
//
// See the examples directory for runnable end-to-end scenarios and
// cmd/mdnbench for the paper's full evaluation.
package mdn
