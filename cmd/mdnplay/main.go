// Command mdnplay is a small studio for the MDN sound toolchain:
// synthesize tones, songs, fans and ambiences to WAV files, and
// inspect WAV files with the FFT (peaks and a coarse spectrogram).
//
// Usage:
//
//	mdnplay tone -freq 700 -dur 0.5 -o tone.wav
//	mdnplay song -dur 5 -o song.wav
//	mdnplay fan -dur 3 -ambience datacenter -o fan.wav
//	mdnplay analyze -i tone.wav
package main

import (
	"flag"
	"fmt"
	"os"

	"mdn/internal/acoustic"
	"mdn/internal/audio"
	"mdn/internal/dsp"
	"mdn/internal/viz"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "tone":
		err = cmdTone(os.Args[2:])
	case "song":
		err = cmdSong(os.Args[2:])
	case "fan":
		err = cmdFan(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "spectro":
		err = cmdSpectro(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdnplay:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: mdnplay <tone|song|fan|analyze> [flags]
  tone     synthesize a pure tone        (-freq -dur -spl -o)
  song     synthesize the pop-song noise (-dur -seed -o)
  fan      synthesize a server fan       (-dur -ambience -seed -o)
  analyze  FFT-analyze a WAV file        (-i -top)
  spectro  ASCII mel spectrogram of WAV  (-i -bands -rows -max)`)
}

func writeWAV(path string, b *audio.Buffer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := audio.EncodeWAV(f, b); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %.2f s at %.0f Hz, peak %.3f\n",
		path, b.Duration(), b.SampleRate, b.Peak())
	return nil
}

func cmdTone(args []string) error {
	fs := flag.NewFlagSet("tone", flag.ExitOnError)
	freq := fs.Float64("freq", 700, "frequency in Hz")
	dur := fs.Float64("dur", 0.5, "duration in seconds")
	spl := fs.Float64("spl", 60, "intensity in dB SPL at 1 m")
	out := fs.String("o", "tone.wav", "output WAV path")
	fs.Parse(args)
	tone := audio.Tone{Frequency: *freq, Duration: *dur, Amplitude: acoustic.SPLToAmplitude(*spl)}
	return writeWAV(*out, tone.Render(audio.DefaultSampleRate))
}

func cmdSong(args []string) error {
	fs := flag.NewFlagSet("song", flag.ExitOnError)
	dur := fs.Float64("dur", 5, "duration in seconds")
	seed := fs.Int64("seed", 1, "melodic walk seed")
	out := fs.String("o", "song.wav", "output WAV path")
	fs.Parse(args)
	return writeWAV(*out, audio.PopSong(0.5, *seed).Render(audio.DefaultSampleRate, *dur))
}

func cmdFan(args []string) error {
	fs := flag.NewFlagSet("fan", flag.ExitOnError)
	dur := fs.Float64("dur", 3, "duration in seconds")
	amb := fs.String("ambience", "", "background: datacenter, office, or empty")
	seed := fs.Int64("seed", 1, "turbulence seed")
	out := fs.String("o", "fan.wav", "output WAV path")
	fs.Parse(args)
	buf := audio.DefaultFan(0.3, *seed).Render(audio.DefaultSampleRate, *dur)
	switch *amb {
	case "datacenter":
		buf.MixAt(audio.DatacenterAmbience(audio.DefaultSampleRate, *dur, acoustic.SPLToAmplitude(85), *seed+1), 0, 1)
	case "office":
		buf.MixAt(audio.OfficeAmbience(audio.DefaultSampleRate, *dur, acoustic.SPLToAmplitude(50), *seed+1), 0, 1)
	case "":
	default:
		return fmt.Errorf("unknown ambience %q", *amb)
	}
	return writeWAV(*out, buf)
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	in := fs.String("i", "", "input WAV path")
	top := fs.Int("top", 10, "number of peaks to report")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("analyze requires -i <file.wav>")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	buf, err := audio.DecodeWAV(f)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %.2f s at %.0f Hz, RMS %.4f (%.1f dBFS)\n",
		*in, buf.Duration(), buf.SampleRate, buf.RMS(), dsp.AmplitudeDB(buf.RMS()))

	n := buf.Len()
	if n > 1<<18 {
		n = 1 << 18
	}
	work := make([]float64, n)
	copy(work, buf.Samples[:n])
	dsp.Hann.Apply(work)
	spec := dsp.PowerSpectrum(dsp.FFTReal(work))
	fftSize := dsp.NextPowerOfTwo(n)
	peaks := dsp.TopPeaks(spec, fftSize, buf.SampleRate, 0, 20, *top)
	fmt.Println("strongest spectral peaks:")
	for i, p := range peaks {
		fmt.Printf("  %2d. %8.1f Hz  %8.2f dB\n", i+1, p.Frequency, dsp.PowerDB(p.Power))
	}
	return nil
}

func cmdSpectro(args []string) error {
	fs := flag.NewFlagSet("spectro", flag.ExitOnError)
	in := fs.String("i", "", "input WAV path")
	bands := fs.Int("bands", 64, "mel bands (columns)")
	rows := fs.Int("rows", 32, "output rows (time)")
	maxHz := fs.Float64("max", 8000, "top of the mel band in Hz")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("spectro requires -i <file.wav>")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	buf, err := audio.DecodeWAV(f)
	if err != nil {
		return err
	}
	sg := dsp.STFT(buf.Samples, buf.SampleRate, 2048, 1024, dsp.Hann)
	if sg == nil {
		return fmt.Errorf("input too short for a spectrogram")
	}
	bank := dsp.NewMelFilterBank(*bands, sg.FFTSize, buf.SampleRate, 50, *maxHz)
	mel := sg.Mel(bank)
	fmt.Print(viz.SpectrogramView(
		fmt.Sprintf("mel spectrogram of %s (%d frames, %d bands)", *in, sg.NumFrames(), *bands),
		mel, 0, buf.Duration(), 50, *maxHz, *rows, *bands))
	return nil
}
