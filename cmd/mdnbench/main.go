// Command mdnbench regenerates the paper's evaluation: every figure
// (2a–7) and the in-text quantitative claims, printed as
// paper-vs-measured rows with ASCII renditions of each figure's
// series.
//
// Usage:
//
//	mdnbench              # run everything
//	mdnbench -run fig4a   # run one experiment
//	mdnbench -list        # list experiment IDs
//	mdnbench -quiet       # rows only, no charts
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mdn/internal/audio"
	"mdn/internal/experiments"
	"mdn/internal/viz"
)

// writeWAV stores a capture for offline listening/inspection.
func writeWAV(path string, b *audio.Buffer) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return audio.EncodeWAV(f, b)
}

func main() {
	var (
		run      = flag.String("run", "", "run only the experiment with this ID")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		quiet    = flag.Bool("quiet", false, "print summary rows only, no charts")
		jsonOut  = flag.Bool("json", false, "emit results as a JSON array on stdout")
		spectro  = flag.Bool("spectro", false, "render ASCII mel spectrograms of experiment audio")
		markdown = flag.Bool("markdown", false, "emit results as markdown tables on stdout")
		wavDir   = flag.String("wav", "", "write each experiment's controller-mic audio as WAV into this directory")
	)
	flag.Parse()

	all := experiments.All()
	if *list {
		for _, e := range all {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}
	if *run != "" {
		e, ok := experiments.ByID(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "mdnbench: unknown experiment %q (try -list)\n", *run)
			os.Exit(2)
		}
		all = []experiments.Experiment{e}
	}

	if *markdown {
		var results []*experiments.Result
		failures := 0
		for _, e := range all {
			r := e.Run()
			results = append(results, r)
			if !r.Pass() {
				failures++
			}
		}
		fmt.Print(experiments.MarkdownTable(results))
		if failures > 0 {
			os.Exit(1)
		}
		return
	}

	if *jsonOut {
		type jsonResult struct {
			*experiments.Result
			Pass    bool    `json:"pass"`
			Seconds float64 `json:"seconds"`
		}
		var results []jsonResult
		failures := 0
		for _, e := range all {
			start := time.Now()
			r := e.Run()
			results = append(results, jsonResult{
				Result: r, Pass: r.Pass(), Seconds: time.Since(start).Seconds(),
			})
			if !r.Pass() {
				failures++
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, "mdnbench:", err)
			os.Exit(1)
		}
		if failures > 0 {
			os.Exit(1)
		}
		return
	}

	failures := 0
	for _, e := range all {
		start := time.Now()
		r := e.Run()
		elapsed := time.Since(start)
		out := experiments.Render(r)
		if *quiet {
			lines := strings.Split(out, "\n")
			var kept []string
			for _, l := range lines {
				if !strings.HasPrefix(l, "  |") && !strings.HasPrefix(l, "  +") &&
					!strings.HasPrefix(l, "  --") {
					kept = append(kept, l)
				}
			}
			out = strings.Join(kept, "\n")
		}
		fmt.Print(out)
		if *spectro && r.Audio != nil {
			mel := r.MelSpectrogram(64, 8000)
			if mel != nil {
				fmt.Print(viz.SpectrogramView("  mel spectrogram: "+r.AudioLabel,
					mel, 0, r.Audio.Duration(), 50, 8000, 24, 64))
			}
		}
		if *wavDir != "" && r.Audio != nil {
			path := filepath.Join(*wavDir, r.ID+".wav")
			if err := writeWAV(path, r.Audio); err != nil {
				fmt.Fprintln(os.Stderr, "mdnbench:", err)
				failures++
			} else {
				fmt.Printf("  wrote %s (%s)\n", path, r.AudioLabel)
			}
		}
		fmt.Printf("  (%.2fs)\n\n", elapsed.Seconds())
		if !r.Pass() {
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "mdnbench: %d experiment(s) failed shape checks\n", failures)
		os.Exit(1)
	}
}
