package main

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"mdn/internal/scenario"
	"mdn/internal/telemetry"
)

// TestChaosMetricsDumpParses is the -metrics acceptance check: a chaos
// run under packet loss must produce a telemetry dump that parses as
// Prometheus text and carries a nonzero decode-latency histogram and
// nonzero openflow retry counters.
func TestChaosMetricsDumpParses(t *testing.T) {
	rep, err := scenario.RunChaos(scenario.ChaosConfig{
		Seed:      7,
		DropRates: []float64{0.3},
		DurationS: 8,
		Scenarios: []string{"portknock", "loadbalance"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics == nil {
		t.Fatal("chaos report carries no metrics snapshot")
	}
	text := rep.Metrics.Text()
	if err := telemetry.ValidateText(strings.NewReader(text)); err != nil {
		t.Fatalf("metrics dump does not parse: %v\n%s", err, text)
	}
	if v := sampleValue(t, text, `mdn_controller_decode_seconds_count`); v == 0 {
		t.Error("decode-latency histogram recorded no windows")
	}
	if v := sampleValue(t, text, `mdn_flow_retries_total\{switch="s1"\}`); v == 0 {
		t.Error("no flow-programming retries recorded under 30% drop")
	}
	if v := sampleValue(t, text, `mdn_controller_handler_panics_total`); v == 0 {
		t.Error("canary panics missing from the dump")
	}
}

// sampleValue extracts one sample's value from a Prometheus text dump.
// namePattern is a regexp matching the full series name including any
// labels.
func sampleValue(t *testing.T, text, namePattern string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + namePattern + ` (\S+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("series %s missing from dump:\n%s", namePattern, text)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("series %s value %q: %v", namePattern, m[1], err)
	}
	return v
}
