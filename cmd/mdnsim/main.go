// Command mdnsim runs a Music-Defined Networking deployment described
// in a JSON scenario file: topology, applications, traffic, and room
// noise. It prints a run report (text or JSON).
//
// Usage:
//
//	mdnsim -f scenarios/telemetry.json
//	mdnsim -f scenario.json -json
//	cat scenario.json | mdnsim
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"mdn/internal/scenario"
)

func main() {
	var (
		file    = flag.String("f", "", "scenario JSON file (default: stdin)")
		jsonOut = flag.Bool("json", false, "emit the report as JSON")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	cfg, err := scenario.Load(in)
	if err != nil {
		fatal(err)
	}
	rep, err := scenario.Run(cfg)
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
		return
	}
	printReport(rep)
}

func printReport(rep *scenario.Report) {
	fmt.Printf("scenario %q: %.1f s simulated, %d capture windows, %d tone detections\n\n",
		rep.Name, rep.DurationS, rep.WindowsAnalysed, rep.TonesDetected)
	fmt.Println("hosts:")
	for _, h := range rep.Hosts {
		fmt.Printf("  %-8s tx %6d pkts / %9d B    rx %6d pkts / %9d B\n",
			h.Name, h.TxPackets, h.TxBytes, h.RxPackets, h.RxBytes)
	}
	fmt.Println("\napplications:")
	for _, a := range rep.Apps {
		fmt.Printf("  %s on %s: %d event(s)\n", a.Type, a.Switch, len(a.Events))
		const maxShown = 12
		shown := len(a.Events)
		if shown > maxShown {
			shown = maxShown
		}
		for _, e := range a.Events[:shown] {
			fmt.Printf("    %s\n", e)
		}
		if rest := len(a.Events) - shown; rest > 0 {
			fmt.Printf("    ... and %d more\n", rest)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mdnsim:", err)
	os.Exit(1)
}
