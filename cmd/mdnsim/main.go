// Command mdnsim runs a Music-Defined Networking deployment described
// in a JSON scenario file: topology, applications, traffic, and room
// noise. It prints a run report (text or JSON). With -stream the
// controller runs the streaming low-latency detection path — the
// analysis window advances by -hop seconds per step instead of a whole
// 50 ms window — and the report gains sound-to-detection latency
// percentiles. With -chaos it instead
// runs the built-in chaos sweep: the end-to-end pipelines under a
// range of injected control-channel fault rates. With -modem it runs
// the acoustic data channel's FEC × symbol-corruption sweep. With
// With -traffic it runs the exact-vs-sketch analytics sweep over
// flow-count scales on the pooled traffic engine. With
// -metrics the run's telemetry registry is dumped to stdout after the
// report, in Prometheus text exposition format.
//
// Usage:
//
//	mdnsim -f scenarios/telemetry.json
//	mdnsim -f scenario.json -json
//	mdnsim -f scenario.json -stream -hop 0.01
//	cat scenario.json | mdnsim
//	mdnsim -chaos -seed 7
//	mdnsim -chaos -chaos-drops 0,0.3 -chaos-duration 10 -json
//	mdnsim -chaos -workers 4
//	mdnsim -chaos -metrics
//	mdnsim -modem -seed 7
//	mdnsim -modem -modem-rates 0,0.05 -modem-fecs none,rs_p48 -json
//	mdnsim -traffic -seed 7
//	mdnsim -traffic -traffic-flows 10000,100000 -workers 4 -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"mdn/internal/scenario"
	"mdn/internal/telemetry"
)

func main() {
	var (
		file     = flag.String("f", "", "scenario JSON file (default: stdin)")
		jsonOut  = flag.Bool("json", false, "emit the report as JSON")
		chaos    = flag.Bool("chaos", false, "run the chaos sweep instead of a scenario file")
		drops    = flag.String("chaos-drops", "", "comma-separated drop probabilities to sweep (default 0,0.1,0.3,0.5)")
		duration = flag.Float64("chaos-duration", 0, "simulated seconds per chaos point (default 30)")
		seed     = flag.Int64("seed", 1, "chaos sweep seed")
		workers  = flag.Int("workers", 0, "chaos sweep worker pool size (0 = GOMAXPROCS, 1 = serial); the report is identical at any setting")
		metrics  = flag.Bool("metrics", false, "dump the run's telemetry in Prometheus text format after the report")
		stream   = flag.Bool("stream", false, "run the streaming low-latency detection path (scenario, chaos and modem runs)")
		hop      = flag.Float64("hop", 0, "streaming hop in seconds (default 0.01; must subdivide the 50 ms window into whole samples)")
		mdm      = flag.Bool("modem", false, "run the modem FEC × symbol-corruption sweep instead of a scenario file")
		mdmRates = flag.String("modem-rates", "", "comma-separated symbol corruption rates to sweep (default 0,0.02,0.05,0.1)")
		mdmFECs  = flag.String("modem-fecs", "", "comma-separated FEC schemes to sweep (default none,hamming7_4,rs_p48)")
		traffic  = flag.Bool("traffic", false, "run the exact-vs-sketch traffic analytics sweep instead of a scenario file")
		trFlows  = flag.String("traffic-flows", "", "comma-separated flow counts to sweep (default 10000,100000,1000000)")
	)
	flag.Parse()

	if *hop != 0 && !*stream {
		fatal(fmt.Errorf("-hop requires -stream"))
	}
	modes := 0
	for _, m := range []bool{*chaos, *mdm, *traffic} {
		if m {
			modes++
		}
	}
	if modes > 1 {
		fatal(fmt.Errorf("-chaos, -modem and -traffic are mutually exclusive"))
	}
	if *traffic {
		runTrafficSweep(*seed, *trFlows, *workers, *jsonOut, *metrics)
		return
	}
	if *mdm {
		streamHop := 0.0
		if *stream {
			streamHop = *hop
			if streamHop == 0 {
				streamHop = scenario.DefaultHopS
			}
		}
		runModemSweep(*seed, *mdmRates, *mdmFECs, streamHop, *workers, *jsonOut)
		return
	}
	if *chaos {
		streamHop := 0.0
		if *stream {
			streamHop = *hop
			if streamHop == 0 {
				streamHop = scenario.DefaultHopS
			}
		}
		runChaos(*seed, *drops, *duration, streamHop, *workers, *jsonOut, *metrics)
		return
	}

	var in io.Reader = os.Stdin
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	cfg, err := scenario.Load(in)
	if err != nil {
		fatal(err)
	}
	if *stream {
		cfg.Stream = true
		if *hop != 0 {
			cfg.HopS = *hop
		}
		if err := cfg.Validate(); err != nil {
			fatal(err)
		}
	}
	rep, err := scenario.Run(cfg)
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
		printMetrics(rep.Metrics, *metrics)
		return
	}
	printReport(rep)
	printMetrics(rep.Metrics, *metrics)
}

func runChaos(seed int64, drops string, duration, streamHop float64, workers int, jsonOut, metrics bool) {
	cfg := scenario.ChaosConfig{Seed: seed, DurationS: duration, Workers: workers, StreamHop: streamHop}
	if drops != "" {
		for _, s := range strings.Split(drops, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				fatal(fmt.Errorf("parsing -chaos-drops: %w", err))
			}
			cfg.DropRates = append(cfg.DropRates, v)
		}
	}
	rep, err := scenario.RunChaos(cfg)
	if err != nil {
		fatal(err)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
		printMetrics(rep.Metrics, metrics)
		return
	}
	fmt.Print(rep.Table())
	printMetrics(rep.Metrics, metrics)
}

func runModemSweep(seed int64, rates, fecs string, streamHop float64, workers int, jsonOut bool) {
	cfg := scenario.ModemSweepConfig{Seed: seed, Workers: workers, StreamHop: streamHop}
	if rates != "" {
		for _, s := range strings.Split(rates, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				fatal(fmt.Errorf("parsing -modem-rates: %w", err))
			}
			cfg.CorruptRates = append(cfg.CorruptRates, v)
		}
	}
	if fecs != "" {
		for _, s := range strings.Split(fecs, ",") {
			cfg.FECs = append(cfg.FECs, strings.TrimSpace(s))
		}
	}
	rep, err := scenario.RunModemSweep(cfg)
	if err != nil {
		fatal(err)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Print(rep.Table())
}

func runTrafficSweep(seed int64, flows string, workers int, jsonOut, metrics bool) {
	cfg := scenario.TrafficSweepConfig{Seed: seed, Workers: workers}
	if flows != "" {
		for _, s := range strings.Split(flows, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fatal(fmt.Errorf("parsing -traffic-flows: %w", err))
			}
			cfg.FlowCounts = append(cfg.FlowCounts, v)
		}
	}
	reg := telemetry.New()
	rep, err := scenario.RunTrafficSweep(cfg, reg)
	if err != nil {
		fatal(err)
	}
	snap := reg.Snapshot()
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
		printMetrics(&snap, metrics)
		return
	}
	fmt.Print(rep.Table())
	printMetrics(&snap, metrics)
}

// printMetrics dumps the telemetry snapshot in Prometheus text format
// when -metrics is set. A blank line separates it from the report so
// the dump itself stays parseable.
func printMetrics(snap *telemetry.Snapshot, enabled bool) {
	if !enabled || snap == nil {
		return
	}
	fmt.Println()
	if err := snap.WriteText(os.Stdout); err != nil {
		fatal(err)
	}
}

func printReport(rep *scenario.Report) {
	fmt.Printf("scenario %q: %.1f s simulated, %d capture windows, %d tone detections\n\n",
		rep.Name, rep.DurationS, rep.WindowsAnalysed, rep.TonesDetected)
	fmt.Println("hosts:")
	for _, h := range rep.Hosts {
		fmt.Printf("  %-8s tx %6d pkts / %9d B    rx %6d pkts / %9d B\n",
			h.Name, h.TxPackets, h.TxBytes, h.RxPackets, h.RxBytes)
	}
	fmt.Println("\napplications:")
	for _, a := range rep.Apps {
		fmt.Printf("  %s on %s: %d event(s)\n", a.Type, a.Switch, len(a.Events))
		const maxShown = 12
		shown := len(a.Events)
		if shown > maxShown {
			shown = maxShown
		}
		for _, e := range a.Events[:shown] {
			fmt.Printf("    %s\n", e)
		}
		if rest := len(a.Events) - shown; rest > 0 {
			fmt.Printf("    ... and %d more\n", rest)
		}
	}
	if h := rep.Health; h != nil {
		fmt.Printf("\ncontroller health: %s", h.StateName)
		if len(h.Reasons) > 0 {
			fmt.Printf(" (%s)", strings.Join(h.Reasons, "; "))
		}
		fmt.Printf("\n  %d window(s), %d recovered panic(s), %d quarantined, %d error(s) logged\n",
			h.Windows, h.HandlerPanics, len(h.Quarantined), h.ErrorsTotal)
		for _, w := range h.Wire {
			fmt.Printf("  wire %-8s %-8s sent %6d  dropped %5d  corrupted %5d\n",
				w.Kind, w.Name, w.Sent, w.Dropped, w.Corrupted)
		}
	}
	if len(rep.Devices) > 0 {
		fmt.Println("\ndevices:")
		for _, d := range rep.Devices {
			fmt.Printf("  %-8s %-8s %-8s", d.Kind, d.Name, d.State)
			if d.Kind == "mic" {
				fmt.Printf(" noise %.6f", d.NoiseFloor)
				if d.Floor > 0 {
					fmt.Printf(" floor %.6f", d.Floor)
				}
				if d.Quarantined {
					fmt.Print(" QUARANTINED")
				}
			} else {
				if d.DetuneRatio != 0 && d.DetuneRatio != 1 {
					fmt.Printf(" detune ×%.4f", d.DetuneRatio)
				}
				if d.Muted {
					fmt.Print(" MUTED")
				}
			}
			fmt.Printf("  recal %d quarantine %d rejoin %d rekey %d\n",
				d.Recalibrations, d.Quarantines, d.Rejoins, d.Rekeys)
		}
	}
	if s := rep.Stream; s != nil {
		fmt.Printf("\nstreaming path: hop %.0f ms, %d hop(s), %d onset(s), %d capture error(s)\n",
			s.HopS*1000, s.Hops, s.Onsets, s.CaptureErrors)
		fmt.Printf("  sound-to-detection latency: p50 %.1f ms, p99 %.1f ms (sim time)\n",
			s.DetectP50*1000, s.DetectP99*1000)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mdnsim:", err)
	os.Exit(1)
}
