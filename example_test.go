package mdn_test

import (
	"fmt"

	"mdn"
)

// The smallest possible Music-Defined Network: one voiced switch, one
// listening controller, one tone.
func Example() {
	tb := mdn.NewTestbed(42)
	_, voice := tb.AddVoicedSwitch("s1", 1.5, 0)
	freqs := tb.Plan.MustAllocate("s1", 1)

	ctrl := tb.NewController(freqs)
	onset := mdn.NewOnsetFilter()
	ctrl.SubscribeWindows(func(_ float64, dets []mdn.Detection) {
		for _, d := range onset.Step(dets) {
			fmt.Printf("heard %.0f Hz\n", d.Frequency)
		}
	})
	ctrl.Start(0)

	tb.Sim.Schedule(0.5, func() { voice.Play(freqs[0]) })
	tb.Sim.RunUntil(1)
	// Output: heard 400 Hz
}

// Frequency plans give every device a disjoint tone set and map
// observed frequencies back to their owner.
func ExampleFrequencyPlan() {
	plan := mdn.NewFrequencyPlan(400, 4000, 20)
	s1, _ := plan.Allocate("switch-1", 3)
	s2, _ := plan.Allocate("switch-2", 3)
	fmt.Println(s1, s2)

	device, index, ok := plan.Identify(467, plan.DefaultTolerance())
	fmt.Println(device, index, ok)
	// Output:
	// [400 420 440] [460 480 500]
	// switch-2 0 true
}

// SequenceFSM is the paper's Section 4 state machine: it accepts
// exactly one symbol sequence.
func ExampleSequenceFSM() {
	fsm := mdn.SequenceFSM([]string{"knock-a", "knock-b"})
	fsm.OnAccept = func() { fmt.Println("open the port") }
	fsm.Step("knock-b") // wrong first knock
	fsm.Step("knock-a")
	fsm.Step("knock-b")
	fmt.Println("resets:", fsm.Resets)
	// Output:
	// open the port
	// resets: 1
}

// The onset filter turns per-window tone presence into counted tone
// events, rejecting one-window spectral splatter.
func ExampleOnsetFilter() {
	o := mdn.NewOnsetFilter()
	tone := mdn.Detection{Frequency: 700}
	fmt.Println(len(o.Step([]mdn.Detection{tone}))) // first window: unconfirmed
	fmt.Println(len(o.Step([]mdn.Detection{tone}))) // second window: onset
	fmt.Println(len(o.Step([]mdn.Detection{tone}))) // still on: no re-fire
	// Output:
	// 0
	// 1
	// 0
}
