package telemetry

import (
	"fmt"
	"sync"
)

// Registry holds named metrics. Registration is get-or-create: asking
// for an existing name of the same kind returns the existing metric,
// so components set up in a loop (the chaos sweep builds a fresh
// controller per point) naturally share and accumulate into one set
// of series. Asking for an existing name as a different kind panics —
// that is a wiring bug, not a runtime condition.
//
// Names may carry a Prometheus-style label suffix built with Label.
// A nil *Registry is valid and hands out nil metrics, so a component
// instrumented with a nil registry runs unmetered with no further
// checks.
//
// Registration takes a lock; metric updates never do.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
	order   []*entry
}

type entry struct {
	name    string
	kind    string // "counter", "gauge", "func", "histogram"
	counter *Counter
	gauge   *Gauge
	fns     []func() float64
	hist    *Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

func (r *Registry) lookup(name, kind string) *entry {
	e, ok := r.entries[name]
	if !ok {
		e = &entry{name: name, kind: kind}
		r.entries[name] = e
		r.order = append(r.order, e)
		return e
	}
	if e.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s", name, e.kind, kind))
	}
	return e
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.lookup(name, "counter")
	if e.counter == nil {
		e.counter = &Counter{}
	}
	return e.counter
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.lookup(name, "gauge")
	if e.gauge == nil {
		e.gauge = &Gauge{}
	}
	return e.gauge
}

// Func registers a read-on-demand gauge backed by fn — the zero-cost
// way to expose counters a component already maintains. Registering
// the same name again adds another source; the reported value is the
// sum, so per-run re-registrations (chaos points) aggregate instead
// of shadowing each other.
func (r *Registry) Func(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.lookup(name, "func")
	e.fns = append(e.fns, fn)
}

// Histogram returns the named fixed-bucket histogram, creating it on
// first use with the given inclusive upper bounds (a +Inf bucket is
// implicit). Later calls ignore bounds and return the existing
// histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.lookup(name, "histogram")
	if e.hist == nil {
		e.hist = newHistogram(bounds)
	}
	return e.hist
}

// Snapshot captures every metric's current value in registration
// order. Func gauges are evaluated during the call, so take snapshots
// when the producing simulation is idle.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := Snapshot{Metrics: make([]MetricSnapshot, 0, len(r.order))}
	for _, e := range r.order {
		m := MetricSnapshot{Name: e.name, Kind: e.kind}
		switch e.kind {
		case "counter":
			m.Value = float64(e.counter.Value())
		case "gauge":
			m.Value = e.gauge.Value()
		case "func":
			m.Kind = "gauge"
			for _, fn := range e.fns {
				m.Value += fn()
			}
		case "histogram":
			m.Count = e.hist.Count()
			m.Sum = e.hist.Sum()
			var cum uint64
			m.Buckets = make([]BucketCount, len(e.hist.bounds))
			for i, b := range e.hist.bounds {
				cum += e.hist.counts[i].Load()
				m.Buckets[i] = BucketCount{LE: b, Count: cum}
			}
		}
		snap.Metrics = append(snap.Metrics, m)
	}
	return snap
}
