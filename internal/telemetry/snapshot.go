package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Snapshot is a point-in-time copy of a registry, embeddable in JSON
// reports next to the controller's Health snapshot.
type Snapshot struct {
	// Metrics lists every metric in registration order.
	Metrics []MetricSnapshot `json:"metrics"`
}

// MetricSnapshot is one metric's captured state.
type MetricSnapshot struct {
	// Name is the registered name, including any label suffix.
	Name string `json:"name"`
	// Kind is "counter", "gauge" or "histogram".
	Kind string `json:"kind"`
	// Value carries counter and gauge readings.
	Value float64 `json:"value,omitempty"`
	// Count and Sum carry histogram totals; Buckets the cumulative
	// per-bucket counts for the finite bounds (the +Inf bucket is
	// implied by Count).
	Count   uint64        `json:"count,omitempty"`
	Sum     float64       `json:"sum,omitempty"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// BucketCount is one cumulative histogram bucket.
type BucketCount struct {
	// LE is the bucket's inclusive upper bound.
	LE float64 `json:"le"`
	// Count is the cumulative observation count at or below LE.
	Count uint64 `json:"count"`
}

// Find returns the named metric (exact match, including labels) and
// whether it exists.
func (s Snapshot) Find(name string) (MetricSnapshot, bool) {
	for _, m := range s.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return MetricSnapshot{}, false
}

// WriteText renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): one TYPE comment per metric, histograms
// expanded into _bucket/_sum/_count series with le labels merged into
// any existing label set.
func (s Snapshot) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, m := range s.Metrics {
		base, labels := splitName(m.Name)
		switch m.Kind {
		case "histogram":
			fmt.Fprintf(bw, "# TYPE %s histogram\n", base)
			for _, b := range m.Buckets {
				fmt.Fprintf(bw, "%s %d\n", seriesName(base+"_bucket", labels, "le", formatFloat(b.LE)), b.Count)
			}
			fmt.Fprintf(bw, "%s %d\n", seriesName(base+"_bucket", labels, "le", "+Inf"), m.Count)
			fmt.Fprintf(bw, "%s %s\n", seriesName(base+"_sum", labels, "", ""), formatFloat(m.Sum))
			fmt.Fprintf(bw, "%s %d\n", seriesName(base+"_count", labels, "", ""), m.Count)
		default:
			fmt.Fprintf(bw, "# TYPE %s %s\n", base, m.Kind)
			fmt.Fprintf(bw, "%s %s\n", m.Name, formatFloat(m.Value))
		}
	}
	return bw.Flush()
}

// Text renders WriteText to a string.
func (s Snapshot) Text() string {
	var b strings.Builder
	_ = s.WriteText(&b)
	return b.String()
}

// WriteText renders the registry's current state; see
// Snapshot.WriteText.
func (r *Registry) WriteText(w io.Writer) error { return r.Snapshot().WriteText(w) }

// splitName separates "name{a="b"}" into name and `a="b"` (labels
// without braces, empty when absent).
func splitName(full string) (base, labels string) {
	if i := strings.IndexByte(full, '{'); i >= 0 && strings.HasSuffix(full, "}") {
		return full[:i], full[i+1 : len(full)-1]
	}
	return full, ""
}

// seriesName joins a base name, existing labels, and one optional
// extra label into a series name.
func seriesName(base, labels, extraKey, extraVal string) string {
	if extraKey != "" {
		extra := extraKey + `="` + extraVal + `"`
		if labels == "" {
			labels = extra
		} else {
			labels += "," + extra
		}
	}
	if labels == "" {
		return base
	}
	return base + "{" + labels + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ValidateText checks that r is a well-formed Prometheus text dump:
// every line is a comment or a `name[{labels}] value` sample with a
// legal metric name and a parseable value. It is the assertion behind
// the CI metrics-dump smoke check.
func ValidateText(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	samples := 0
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), " \t")
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if err := validateSample(text); err != nil {
			return fmt.Errorf("telemetry: line %d: %w", line, err)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("telemetry: reading dump: %w", err)
	}
	if samples == 0 {
		return fmt.Errorf("telemetry: dump contains no samples")
	}
	return nil
}

func validateSample(text string) error {
	sp := strings.LastIndexByte(text, ' ')
	if sp <= 0 {
		return fmt.Errorf("no value separator in %q", text)
	}
	series, value := text[:sp], text[sp+1:]
	if _, err := strconv.ParseFloat(value, 64); err != nil {
		return fmt.Errorf("bad value %q: %v", value, err)
	}
	name := series
	if i := strings.IndexByte(series, '{'); i >= 0 {
		if !strings.HasSuffix(series, "}") {
			return fmt.Errorf("unterminated label set in %q", series)
		}
		name = series[:i]
	}
	if name == "" {
		return fmt.Errorf("empty metric name in %q", text)
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("bad metric name %q", name)
		}
	}
	return nil
}
