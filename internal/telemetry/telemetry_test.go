package telemetry

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("mdn_test_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("mdn_test_total"); again != c {
		t.Error("re-registration did not return the same counter")
	}
	g := r.Gauge("mdn_test_gauge")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Errorf("gauge = %g, want 1.5", g.Value())
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", DefaultLatencyBuckets)
	r.Func("x", func() float64 { return 1 })
	c.Inc()
	g.Set(1)
	h.Observe(1)
	sp := StartSpan(h, nil)
	if d := sp.End(); d != 0 {
		t.Errorf("inert span returned %g", d)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("nil metrics mutated state")
	}
	if snap := r.Snapshot(); len(snap.Metrics) != 0 {
		t.Error("nil registry produced metrics")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Error("gauge re-registration of a counter name did not panic")
		}
	}()
	r.Gauge("m")
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := New()
	h := r.Histogram("mdn_lat_seconds", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.001, 0.002, 0.05, 0.5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); math.Abs(got-0.5535) > 1e-12 {
		t.Errorf("sum = %g", got)
	}
	snap := r.Snapshot()
	m, ok := snap.Find("mdn_lat_seconds")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	want := []uint64{2, 3, 4} // cumulative; 0.001 is inclusive
	for i, b := range m.Buckets {
		if b.Count != want[i] {
			t.Errorf("bucket %g = %d, want %d", b.LE, b.Count, want[i])
		}
	}
	if q := h.Quantile(0.5); q != 0.01 {
		t.Errorf("p50 = %g, want 0.01", q)
	}
	if q := h.Quantile(1); !math.IsInf(q, 1) {
		t.Errorf("p100 = %g, want +Inf", q)
	}
}

func TestSpanObservesElapsed(t *testing.T) {
	r := New()
	h := r.Histogram("mdn_span_seconds", []float64{1, 10})
	clock := &StepClock{Step: 2} // Now(): 2, 4 -> elapsed 2
	sp := StartSpan(h, clock)
	if d := sp.End(); d != 2 {
		t.Errorf("elapsed = %g, want 2", d)
	}
	if h.Count() != 1 {
		t.Error("span did not observe")
	}
}

func TestFuncGaugesSum(t *testing.T) {
	r := New()
	r.Func("mdn_wire_sent_total", func() float64 { return 3 })
	r.Func("mdn_wire_sent_total", func() float64 { return 4 })
	m, ok := r.Snapshot().Find("mdn_wire_sent_total")
	if !ok || m.Value != 7 {
		t.Errorf("func gauge = %+v, want 7", m)
	}
	if m.Kind != "gauge" {
		t.Errorf("func kind = %q", m.Kind)
	}
}

func TestLabelEscaping(t *testing.T) {
	got := Label("mdn_dispatch_seconds", "subscriber", `*core.HeavyHitter "x"`)
	want := `mdn_dispatch_seconds{subscriber="*core.HeavyHitter \"x\""}`
	if got != want {
		t.Errorf("Label = %s", got)
	}
}

func TestTextDumpValidates(t *testing.T) {
	r := New()
	r.Counter(Label("mdn_flow_retries_total", "switch", "s1")).Add(3)
	r.Gauge("mdn_controller_subscribers").Set(4)
	r.Func("mdn_voice_emitted_total", func() float64 { return 12 })
	h := r.Histogram(Label("mdn_dispatch_seconds", "subscriber", "canary"), []float64{0.001, 0.1})
	h.Observe(0.0004)
	h.Observe(5)

	text := r.Snapshot().Text()
	if err := ValidateText(strings.NewReader(text)); err != nil {
		t.Fatalf("dump does not validate: %v\n%s", err, text)
	}
	for _, want := range []string{
		`mdn_flow_retries_total{switch="s1"} 3`,
		"# TYPE mdn_dispatch_seconds histogram",
		`mdn_dispatch_seconds_bucket{subscriber="canary",le="0.001"} 1`,
		`mdn_dispatch_seconds_bucket{subscriber="canary",le="+Inf"} 2`,
		`mdn_dispatch_seconds_count{subscriber="canary"} 2`,
		"mdn_voice_emitted_total 12",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("dump missing %q:\n%s", want, text)
		}
	}
}

func TestValidateTextRejectsGarbage(t *testing.T) {
	bad := []string{
		"",                  // no samples at all
		"not a metric",      // unparseable value
		"1bad_name 3",       // name starts with a digit
		"name{le=\"x\" 3",   // unterminated labels
		"mdn_ok 1\nbroken",  // good line then bad line
		"mdn_ok one_point2", // non-numeric value
	}
	for _, in := range bad {
		if err := ValidateText(strings.NewReader(in)); err == nil {
			t.Errorf("ValidateText(%q) accepted", in)
		}
	}
	if err := ValidateText(strings.NewReader("# just a comment\nmdn_ok 1")); err != nil {
		t.Errorf("valid dump rejected: %v", err)
	}
}

func TestSnapshotJSONRoundTrips(t *testing.T) {
	r := New()
	r.Counter("mdn_a_total").Inc()
	r.Histogram("mdn_b_seconds", []float64{1}).Observe(0.5)
	blob, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Metrics) != 2 || back.Metrics[1].Count != 1 {
		t.Errorf("round trip = %+v", back)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := New()
	c := r.Counter("mdn_c_total")
	g := r.Gauge("mdn_g")
	h := r.Histogram("mdn_h_seconds", DefaultLatencyBuckets)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || g.Value() != 8000 || h.Count() != 8000 {
		t.Errorf("c=%d g=%g h=%d, want 8000 each", c.Value(), g.Value(), h.Count())
	}
	if math.Abs(h.Sum()-8) > 1e-9 {
		t.Errorf("sum = %g, want 8", h.Sum())
	}
}

func TestDoRunsUnderLabel(t *testing.T) {
	ran := false
	Do("subscriber", "x", func() { ran = true })
	if !ran {
		t.Error("Do did not invoke fn")
	}
}
