package telemetry

import (
	"strings"
	"testing"
)

// TestStreamLatencyBucketsResolveBimodalLoad feeds the streaming
// latency histogram a synthetic bimodal distribution — a fast mode
// (~2 ms, the common case: one hop plus propagation) and a rare slow
// mode (~80 ms, a stalled pipeline) — and requires the log-spaced
// sub-millisecond bucket ladder to keep p50 and p99 in different
// buckets. The coarse DefaultLatencyBuckets would smear both modes
// into neighbouring decades; this is the regression gate on the
// bucket layout itself.
func TestStreamLatencyBucketsResolveBimodalLoad(t *testing.T) {
	r := New()
	h := r.Histogram("mdn_stream_detect_latency_seconds", StreamLatencyBuckets)
	for i := 0; i < 970; i++ {
		h.Observe(0.0017) // fast mode
	}
	for i := 0; i < 30; i++ {
		h.Observe(0.080) // slow tail
	}
	p50, p99 := h.Quantile(0.5), h.Quantile(0.99)
	if p50 > 0.002 {
		t.Errorf("p50 = %gs, want <= 2ms (fast-mode bucket)", p50)
	}
	if p99 < 0.05 || p99 > 0.2 {
		t.Errorf("p99 = %gs, want in the slow mode's bucket (0.05, 0.2]", p99)
	}
	if p50 >= p99 {
		t.Errorf("p50 %g >= p99 %g: buckets cannot separate the modes", p50, p99)
	}

	// The dump with the new bucket ladder must stay valid Prometheus
	// text exposition.
	text := r.Snapshot().Text()
	if err := ValidateText(strings.NewReader(text)); err != nil {
		t.Fatalf("stream-bucket dump does not validate: %v\n%s", err, text)
	}
	for _, want := range []string{
		`mdn_stream_detect_latency_seconds_bucket{le="0.002"} 970`,
		`mdn_stream_detect_latency_seconds_bucket{le="0.1"} 1000`,
		"mdn_stream_detect_latency_seconds_count 1000",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("dump missing %q:\n%s", want, text)
		}
	}
}

// TestStreamLatencyBucketsAreSorted guards the ladder's invariant:
// strictly increasing bounds, spanning microseconds to seconds.
func TestStreamLatencyBucketsAreSorted(t *testing.T) {
	for i := 1; i < len(StreamLatencyBuckets); i++ {
		if StreamLatencyBuckets[i] <= StreamLatencyBuckets[i-1] {
			t.Fatalf("buckets not strictly increasing at %d: %v", i, StreamLatencyBuckets)
		}
	}
	if StreamLatencyBuckets[0] > 1e-6 {
		t.Errorf("first bucket %g too coarse for sub-hop latencies", StreamLatencyBuckets[0])
	}
	if last := StreamLatencyBuckets[len(StreamLatencyBuckets)-1]; last < 1 {
		t.Errorf("last bucket %g does not cover stall-scale latencies", last)
	}
}
