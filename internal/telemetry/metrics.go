package telemetry

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero
// value is ready to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 that can move both ways. The zero value
// is ready to use; a nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adjusts the gauge by d (atomically, via CAS).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge reading.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets chosen at
// registration. Observe is lock-free and allocation-free: one linear
// scan over the (small) bound slice plus three atomic updates. A nil
// *Histogram is a no-op.
type Histogram struct {
	bounds []float64 // sorted inclusive upper bounds; +Inf implied
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// DefaultLatencyBuckets spans 10 µs to 10 s — wide enough for both
// the sub-millisecond decode path (Figure 2b's FFT times) and
// multi-second virtual-time retry spans of the flow programmer.
var DefaultLatencyBuckets = []float64{
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// StreamLatencyBuckets is a 1–2–5 log-spaced ladder from 1 µs to 1 s
// for the streaming detection path, whose latencies concentrate below
// a millisecond: hop wall times are microseconds and sound-to-detection
// sim-time latencies are a few hops (hundreds of microseconds to tens
// of milliseconds). DefaultLatencyBuckets starts at 10 µs with 2.5×
// gaps, which folds a bimodal sub-millisecond load into one bucket and
// makes p50 and p99 indistinguishable; this ladder keeps them apart.
var StreamLatencyBuckets = []float64{
	1e-6, 2e-6, 5e-6,
	1e-5, 2e-5, 5e-5,
	1e-4, 2e-4, 5e-4,
	1e-3, 2e-3, 5e-3,
	1e-2, 2e-2, 5e-2,
	0.1, 0.2, 0.5, 1,
}

func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	for i := 1; i < len(bs); i++ {
		if bs[i] <= bs[i-1] {
			panic("telemetry: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-quantile (0..1) from the bucket counts,
// attributing each bucket's mass to its upper bound — a conservative
// (over-)estimate, good enough for report lines.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}
