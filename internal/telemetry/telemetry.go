// Package telemetry is the MDN pipeline's dependency-free metrics
// layer: a registry of atomic counters, gauges and fixed-bucket
// histograms whose update paths allocate nothing, plus lightweight
// spans for timing pipeline stages against an explicit clock.
//
// Two clocks matter in this repo and the package is careful to keep
// them apart:
//
//   - Wall time (Wall) measures real compute — how long the FFT or a
//     subscriber callback actually took. It is the clock behind the
//     decode- and dispatch-latency histograms, matching what the
//     paper's Figure 2b measures.
//   - Virtual time (any TimeSource, e.g. *netsim.Sim) measures
//     protocol latencies — knock-to-install, retry backoff, beat-to-
//     alert — which elapse on the simulation clock and are therefore
//     exactly reproducible.
//
// Both are just TimeSource implementations; a Span does not care
// which one it was started on, and tests can substitute a StepClock
// to make even "wall" measurements deterministic.
//
// All metric types are nil-safe: methods on a nil *Counter, *Gauge or
// *Histogram are no-ops, and every method of a nil *Registry returns
// a nil metric. Uninstrumented components therefore pay one pointer
// test per update and no branches elsewhere — Instrument wiring stays
// out of hot-path signatures.
package telemetry

import (
	"context"
	"runtime/pprof"
	"strings"
	"time"
)

// TimeSource yields the current time in seconds. *netsim.Sim
// satisfies it (virtual seconds); Wall() returns a monotonic
// wall-clock source (seconds since process start).
type TimeSource interface {
	Now() float64
}

type wallSource struct{ base time.Time }

func (w wallSource) Now() float64 { return time.Since(w.base).Seconds() }

// wall is shared so Wall() never allocates.
var wall TimeSource = wallSource{base: time.Now()}

// Wall returns the process-wide monotonic wall clock. Use it for
// compute-time histograms (decode, dispatch); use the simulation
// clock for protocol-latency spans.
func Wall() TimeSource { return wall }

// StepClock is a deterministic TimeSource for tests: every Now call
// advances the clock by Step and returns the new time. Injecting one
// makes wall-time measurements byte-for-byte reproducible.
type StepClock struct {
	// T is the current time; Now returns T after advancing it.
	T float64
	// Step is the advance per Now call.
	Step float64
}

// Now advances the clock by Step and returns it.
func (c *StepClock) Now() float64 {
	c.T += c.Step
	return c.T
}

// Span is one in-flight stage measurement. It is a value type: Start
// and End allocate nothing, so spans are safe on the per-window hot
// path.
type Span struct {
	h   *Histogram
	src TimeSource
	t0  float64
}

// StartSpan begins timing against src (Wall() when src is nil). A nil
// histogram yields an inert span whose End is a no-op — the clock is
// not even read.
func StartSpan(h *Histogram, src TimeSource) Span {
	if h == nil {
		return Span{}
	}
	if src == nil {
		src = wall
	}
	return Span{h: h, src: src, t0: src.Now()}
}

// End observes the elapsed time into the span's histogram and returns
// it (0 for an inert span).
func (s Span) End() float64 {
	if s.h == nil {
		return 0
	}
	d := s.src.Now() - s.t0
	s.h.Observe(d)
	return d
}

// Do runs fn under a pprof label, so CPU and goroutine profiles of a
// busy controller attribute samples to the named subscriber. This is
// the optional profiling hook — it allocates a labelled context, so
// callers gate it behind a flag rather than paying it every window.
func Do(key, value string, fn func()) {
	pprof.Do(context.Background(), pprof.Labels(key, value), func(context.Context) { fn() })
}

// Label renders name{k1="v1",k2="v2"} from alternating key/value
// pairs. It is intended for registration time, not the hot path.
// Label values are escaped per the Prometheus text exposition format.
func Label(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}
