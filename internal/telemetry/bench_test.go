package telemetry

import "testing"

// The acceptance bar for the hot path: counter, gauge, histogram and
// span updates must run with 0 allocs/op — they sit inside the
// controller's per-window loop.

func BenchmarkCounterInc(b *testing.B) {
	c := New().Counter("mdn_bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	g := New().Gauge("mdn_bench_gauge")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := New().Histogram("mdn_bench_seconds", DefaultLatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0003)
	}
}

func BenchmarkSpanWall(b *testing.B) {
	h := New().Histogram("mdn_bench_span_seconds", DefaultLatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		StartSpan(h, nil).End()
	}
}

func BenchmarkSpanVirtual(b *testing.B) {
	h := New().Histogram("mdn_bench_vspan_seconds", DefaultLatencyBuckets)
	clock := &StepClock{Step: 0.001}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		StartSpan(h, clock).End()
	}
}
