package modem

import (
	"bytes"
	"testing"

	"mdn/internal/acoustic"
	"mdn/internal/core"
	"mdn/internal/mp"
	"mdn/internal/netsim"
	"mdn/internal/telemetry"
)

// loopback is a one-switch, one-controller acoustic testbed with a
// modem channel riding the full MP pipeline (sounder → wire faults →
// pi → speaker → room → microphone → detector).
type loopback struct {
	sim  *netsim.Sim
	room *acoustic.Room
	ctrl *core.Controller
	band *Band
	tx   *Transmitter
	rx   *Receiver
}

func newLoopback(t testing.TB, seed int64, cfg Config) *loopback {
	t.Helper()
	sim := netsim.NewSim()
	room := acoustic.NewRoom(44100, seed)
	mic := room.AddMicrophone("controller", acoustic.Position{}, 0.0005)

	band, err := NewBand(Plan(cfg), "s1", cfg)
	if err != nil {
		t.Fatal(err)
	}

	sp := room.AddSpeaker("s1", acoustic.Position{X: 1.5})
	pi := mp.NewPi(sim, sp, 0.002)
	voice := core.NewVoice(sim, mp.NewSounder(pi))

	det := core.NewDetector(core.MethodGoertzel, band.Frequencies())
	ctrl := core.NewController(sim, mic, det)

	lb := &loopback{
		sim:  sim,
		room: room,
		ctrl: ctrl,
		band: band,
		tx:   NewTransmitter(sim, band, voice),
		rx:   NewReceiver(band),
	}
	ctrl.SubscribeWindows(lb.rx.HandleWindow)
	return lb
}

func TestModemLoopbackBatch(t *testing.T) {
	lb := newLoopback(t, 1, DefaultConfig())
	lb.ctrl.Start(0)

	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	end, err := lb.tx.Send(0.5, payload)
	if err != nil {
		t.Fatal(err)
	}
	lb.sim.RunUntil(end + 0.5)

	if lb.rx.FramesRx != 1 {
		t.Fatalf("FramesRx = %d (header fail %d, crc fail %d, fec fail %d)",
			lb.rx.FramesRx, lb.rx.HeaderFailures, lb.rx.CRCFailures, lb.rx.FECFailures)
	}
	if !bytes.Equal(lb.rx.Frames[0].Payload, payload) {
		t.Fatalf("payload mismatch: got % x", lb.rx.Frames[0].Payload)
	}
	if lb.rx.Frames[0].Seq != 0 {
		t.Errorf("seq = %d", lb.rx.Frames[0].Seq)
	}
}

func TestModemLoopbackUnalignedStart(t *testing.T) {
	// Frame start deliberately off the controller's window grid: the
	// sync centroid must still recover the symbol clock.
	lb := newLoopback(t, 2, DefaultConfig())
	lb.ctrl.Start(0)

	payload := []byte("symbol timing recovery works on unaligned grids")
	end, err := lb.tx.Send(0.5123, payload)
	if err != nil {
		t.Fatal(err)
	}
	lb.sim.RunUntil(end + 0.5)

	if lb.rx.FramesRx != 1 || !bytes.Equal(lb.rx.Frames[0].Payload, payload) {
		t.Fatalf("FramesRx = %d, frames = %v (header fail %d, crc fail %d)",
			lb.rx.FramesRx, lb.rx.Frames, lb.rx.HeaderFailures, lb.rx.CRCFailures)
	}
}

func TestModemLoopbackStream(t *testing.T) {
	// Same channel on the streaming path: overlapping windows every
	// 10 ms instead of batch windows every 50 ms.
	lb := newLoopback(t, 3, DefaultConfig())
	lb.ctrl.StartStream(0, 0.010)

	payload := []byte{0x33, 0x33, 0x33, 0x33, 0xAA, 0x55, 0x00, 0xFF}
	end, err := lb.tx.Send(0.5071, payload)
	if err != nil {
		t.Fatal(err)
	}
	lb.sim.RunUntil(end + 0.5)

	if lb.rx.FramesRx != 1 || !bytes.Equal(lb.rx.Frames[0].Payload, payload) {
		t.Fatalf("FramesRx = %d, frames = %v (header fail %d, crc fail %d)",
			lb.rx.FramesRx, lb.rx.Frames, lb.rx.HeaderFailures, lb.rx.CRCFailures)
	}
}

func TestModemBackToBackFrames(t *testing.T) {
	// Frames with no gap: the second frame's pilots arrive while the
	// receiver is still finishing the first.
	lb := newLoopback(t, 4, DefaultConfig())
	lb.ctrl.Start(0)

	p1 := bytes.Repeat([]byte{0xC3}, 24)
	p2 := []byte("second frame, zero gap")
	end1, err := lb.tx.Send(0.5, p1)
	if err != nil {
		t.Fatal(err)
	}
	end2, err := lb.tx.Send(end1, p2)
	if err != nil {
		t.Fatal(err)
	}
	lb.sim.RunUntil(end2 + 0.5)

	if lb.rx.FramesRx != 2 {
		t.Fatalf("FramesRx = %d (header fail %d, crc fail %d, fec fail %d)",
			lb.rx.FramesRx, lb.rx.HeaderFailures, lb.rx.CRCFailures, lb.rx.FECFailures)
	}
	if !bytes.Equal(lb.rx.Frames[0].Payload, p1) || !bytes.Equal(lb.rx.Frames[1].Payload, p2) {
		t.Fatalf("payloads = %v", lb.rx.Frames)
	}
	if lb.rx.Frames[0].Seq != 0 || lb.rx.Frames[1].Seq != 1 {
		t.Errorf("seqs = %d, %d", lb.rx.Frames[0].Seq, lb.rx.Frames[1].Seq)
	}
}

func TestModemGoodputBeatsMelodyTenfold(t *testing.T) {
	// The acceptance floor: a ≥64-byte payload over the acoustic sim
	// at ≥10× the MelodyCodec baseline. The baseline is computed from
	// the codec's own pacing on the same testbed geometry rather than
	// hard-coded, so it tracks any future re-tuning of either side.
	lb := newLoopback(t, 5, DefaultConfig())
	lb.ctrl.Start(0)

	payload := make([]byte, 128)
	for i := range payload {
		payload[i] = byte(i)
	}
	end, err := lb.tx.Send(0.5, payload)
	if err != nil {
		t.Fatal(err)
	}
	lb.sim.RunUntil(end + 0.5)
	if lb.rx.FramesRx != 1 {
		t.Fatalf("FramesRx = %d", lb.rx.FramesRx)
	}
	goodput := lb.rx.GoodputBps()

	// Melody baseline: bits per second of one max-size message at the
	// codec's tone pacing.
	mplan := core.DefaultPlan()
	mc, err := core.NewMelodyCodec(mplan, "s1")
	if err != nil {
		t.Fatal(err)
	}
	// Melody messages cap at MaxMelodyBytes; its per-byte rate is what
	// the comparison needs.
	mmsg := payload[:core.MaxMelodyBytes]
	tones, err := mc.Encode(mmsg)
	if err != nil {
		t.Fatal(err)
	}
	// MelodyCodec.Transmit paces one tone per MinGap+10 ms slot.
	slot := core.NewVoice(lb.sim, nil).MinGap + 0.01
	melodyBps := float64(8*len(mmsg)) / (float64(len(tones)) * slot)
	if melodyBps <= 0 {
		t.Fatal("degenerate melody baseline")
	}

	if goodput < 10*melodyBps {
		t.Fatalf("goodput %.1f bit/s < 10× melody baseline %.1f bit/s", goodput, melodyBps)
	}
	t.Logf("modem %.1f bit/s vs melody %.1f bit/s (%.1f×)", goodput, melodyBps, goodput/melodyBps)
}

func TestModemTelemetry(t *testing.T) {
	lb := newLoopback(t, 6, DefaultConfig())
	reg := telemetry.New()
	lb.tx.Instrument(reg, "s1")
	lb.rx.Instrument(reg, "s1")
	lb.ctrl.Start(0)

	end, err := lb.tx.Send(0.5, []byte("telemetry"))
	if err != nil {
		t.Fatal(err)
	}
	lb.sim.RunUntil(end + 0.5)

	snap := reg.Snapshot()
	for _, name := range []string{
		"mdn_modem_frames_tx", "mdn_modem_frames_rx",
		"mdn_modem_goodput_bps", "mdn_modem_payload_bits",
	} {
		v, ok := snapValue(snap, telemetry.Label(name, "channel", "s1"))
		if !ok {
			t.Fatalf("metric %s missing", name)
		}
		if v <= 0 {
			t.Errorf("metric %s = %v, want > 0", name, v)
		}
	}
}

func TestModemSendRejects(t *testing.T) {
	lb := newLoopback(t, 7, DefaultConfig())
	if _, err := lb.tx.Send(0, nil); err != ErrPayloadEmpty {
		t.Errorf("empty err = %v", err)
	}
	if _, err := lb.tx.Send(0, make([]byte, MaxPayload+1)); err != ErrPayloadTooLong {
		t.Errorf("oversize err = %v", err)
	}
}

func snapValue(snap telemetry.Snapshot, name string) (float64, bool) {
	for _, m := range snap.Metrics {
		if m.Name == name {
			return m.Value, true
		}
	}
	return 0, false
}
