package modem

import (
	"errors"
	"sync"
)

// Reed-Solomon codec over GF(256) with the AES-friendly primitive
// polynomial x⁸+x⁴+x³+x²+1 (0x11D) and generator roots α⁰..α^(p−1).
// A block of n ≤ 255 bytes carrying p parity bytes corrects any
// ⌊p/2⌋ corrupted bytes: syndromes locate nothing by themselves, so
// decoding runs the classic pipeline — Berlekamp-Massey for the error
// locator, Chien search for the positions, Forney for the magnitudes.

var gfExp [512]byte
var gfLog [256]int

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = i
		x <<= 1
		if x&0x100 != 0 {
			x ^= 0x11D
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[gfLog[a]+gfLog[b]]
}

func gfInv(a byte) byte { return gfExp[255-gfLog[a]] }

// gfPowA returns α^n for any integer n.
func gfPowA(n int) byte {
	n %= 255
	if n < 0 {
		n += 255
	}
	return gfExp[n]
}

// rsGen returns (cached) the monic generator polynomial of degree p,
// coefficients highest degree first: gen[0] = 1.
var rsGenCache sync.Map // int → []byte

func rsGen(p int) []byte {
	if g, ok := rsGenCache.Load(p); ok {
		return g.([]byte)
	}
	gen := []byte{1}
	for i := 0; i < p; i++ {
		root := gfPowA(i)
		next := make([]byte, len(gen)+1)
		for j, c := range gen {
			next[j] ^= c
			next[j+1] ^= gfMul(c, root)
		}
		gen = next
	}
	rsGenCache.Store(p, gen)
	return gen
}

// rsParity returns the p check bytes for data (remainder of
// data(x)·x^p divided by the generator).
func rsParity(data []byte, p int) []byte {
	gen := rsGen(p)
	par := make([]byte, p)
	for _, d := range data {
		factor := d ^ par[0]
		copy(par, par[1:])
		par[p-1] = 0
		if factor != 0 {
			for i := 0; i < p; i++ {
				par[i] ^= gfMul(gen[i+1], factor)
			}
		}
	}
	return par
}

// errRSUncorrectable reports an error pattern beyond the block's
// correction capacity that the algebra could detect (the frame CRC
// catches the ones it cannot).
var errRSUncorrectable = errors.New("modem: reed-solomon block uncorrectable")

// rsCorrect repairs block (data ‖ parity, parity = last p bytes) in
// place and returns how many bytes it fixed.
func rsCorrect(block []byte, p int) (int, error) {
	n := len(block)
	if n <= p || n > 255 {
		return 0, errRSUncorrectable
	}
	// Syndromes s[i] = c(α^i); coefficient block[0] is highest-degree.
	synd := make([]byte, p)
	clean := true
	for i := 0; i < p; i++ {
		root := gfPowA(i)
		var s byte
		for _, b := range block {
			s = gfMul(s, root) ^ b
		}
		synd[i] = s
		if s != 0 {
			clean = false
		}
	}
	if clean {
		return 0, nil
	}

	// Berlekamp-Massey: find the shortest LFSR (error locator σ,
	// lowest degree first: σ[0] = 1) generating the syndromes.
	sigma := []byte{1}
	prev := []byte{1}
	var l, m int = 0, 1
	var b byte = 1
	for i := 0; i < p; i++ {
		var d byte = synd[i]
		for j := 1; j <= l; j++ {
			if j < len(sigma) {
				d ^= gfMul(sigma[j], synd[i-j])
			}
		}
		if d == 0 {
			m++
			continue
		}
		if 2*l <= i {
			tmp := make([]byte, len(sigma))
			copy(tmp, sigma)
			sigma = polyFix(sigma, prev, gfMul(d, gfInv(b)), m)
			prev, b, l, m = tmp, d, i+1-l, 1
		} else {
			sigma = polyFix(sigma, prev, gfMul(d, gfInv(b)), m)
			m++
		}
	}
	nu := len(sigma) - 1
	for nu > 0 && sigma[nu] == 0 {
		nu--
	}
	sigma = sigma[:nu+1]
	if nu == 0 || nu > p/2 {
		return 0, errRSUncorrectable
	}

	// Chien search: error at byte j ⇔ σ(X_j^{-1}) = 0, with location
	// X_j = α^(n−1−j).
	var positions []int
	for j := 0; j < n; j++ {
		xinv := gfPowA(-(n - 1 - j))
		var v byte
		for k := nu; k >= 0; k-- {
			v = gfMul(v, xinv) ^ sigma[k]
		}
		if v == 0 {
			positions = append(positions, j)
		}
	}
	if len(positions) != nu {
		return 0, errRSUncorrectable
	}

	// Forney: Ω(x) = S(x)σ(x) mod x^p; with generator roots starting
	// at α⁰ the magnitude at X_j is X_j·Ω(X_j^{-1})/σ'(X_j^{-1}).
	omega := make([]byte, p)
	for i := 0; i < p; i++ {
		var v byte
		for j := 0; j <= i && j <= nu; j++ {
			v ^= gfMul(sigma[j], synd[i-j])
		}
		omega[i] = v
	}
	for _, j := range positions {
		x := gfPowA(n - 1 - j)
		xinv := gfInv(x)
		var om byte
		for k := len(omega) - 1; k >= 0; k-- {
			om = gfMul(om, xinv) ^ omega[k]
		}
		// σ'(x) in characteristic 2: odd-degree terms only.
		var dsig byte
		for k := 1; k <= nu; k += 2 {
			pw := gfPowA((k - 1) * (255 - gfLog[x]) % 255)
			dsig ^= gfMul(sigma[k], pw)
		}
		if dsig == 0 {
			return 0, errRSUncorrectable
		}
		block[j] ^= gfMul(gfMul(x, om), gfInv(dsig))
	}

	// Recheck: repaired codeword must syndrome clean, or the pattern
	// exceeded capacity and the "fix" is fiction.
	for i := 0; i < p; i++ {
		root := gfPowA(i)
		var s byte
		for _, bb := range block {
			s = gfMul(s, root) ^ bb
		}
		if s != 0 {
			return 0, errRSUncorrectable
		}
	}
	return nu, nil
}

// polyFix returns sigma ⊕ scale·x^shift·prev.
func polyFix(sigma, prev []byte, scale byte, shift int) []byte {
	out := make([]byte, len(sigma))
	copy(out, sigma)
	need := len(prev) + shift
	for len(out) < need {
		out = append(out, 0)
	}
	for i, c := range prev {
		out[i+shift] ^= gfMul(c, scale)
	}
	return out
}
