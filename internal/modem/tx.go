package modem

import (
	"math/rand"

	"mdn/internal/core"
	"mdn/internal/mp"
	"mdn/internal/netsim"
	"mdn/internal/telemetry"
)

// Corruptor is the modem's chaos hook: a seeded attacker that mangles
// body symbols as they are scheduled, before they reach the air. Each
// body symbol is hit independently with probability Rate; half the
// hits erase the tone (the lane goes silent for that epoch), half
// remap it to a different value in the same lane and bank (the
// detector hears a confidently wrong nibble). Sync and header epochs
// are left alone — the sweep attacks payloads, and the header's
// redundant copies are exercised by wire-level fault injection
// instead.
type Corruptor struct {
	// Rate is the per-symbol corruption probability in [0, 1].
	Rate float64

	rng *rand.Rand
}

// NewCorruptor seeds a symbol attacker.
func NewCorruptor(rate float64, seed int64) *Corruptor {
	return &Corruptor{Rate: rate, rng: rand.New(rand.NewSource(seed))}
}

// attack returns the possibly-mangled value for one body symbol:
// (val, true) to emit — corrupted or not — or (0, false) to erase.
func (c *Corruptor) attack(val int) (int, bool) {
	if c == nil || c.rng.Float64() >= c.Rate {
		return val, true
	}
	if c.rng.Intn(2) == 0 {
		return 0, false
	}
	return (val + 1 + c.rng.Intn(symbolValues-1)) % symbolValues, true
}

// Transmitter drives a core.Voice on the modem's symbol clock. It
// schedules every tone of a frame up front on the simulator, so Send
// returns immediately with the frame's end time; the voice's
// PlayMessage path (no same-frequency re-arm gap) carries the
// emissions.
type Transmitter struct {
	band  *Band
	sim   *netsim.Sim
	voice *core.Voice

	// Corruptor, when set, attacks body symbols at schedule time.
	Corruptor *Corruptor

	seq byte

	// FramesTx counts frames scheduled.
	FramesTx uint64
	// SymbolsTx counts data symbols scheduled (header and body,
	// including erased ones — the slot was spent either way).
	SymbolsTx uint64
	// SymbolsCorrupted counts body symbols the Corruptor hit.
	SymbolsCorrupted uint64
	// BitsTx counts payload bits scheduled (goodput numerator).
	BitsTx uint64
}

// NewTransmitter wires a modem transmitter to a voice.
func NewTransmitter(sim *netsim.Sim, band *Band, voice *core.Voice) *Transmitter {
	return &Transmitter{band: band, sim: sim, voice: voice}
}

// Send schedules one frame carrying payload starting at time `at` and
// returns the time the last tone ends. The frame's sequence number is
// assigned from the transmitter's running counter.
func (t *Transmitter) Send(at float64, payload []byte) (float64, error) {
	if len(payload) == 0 {
		return 0, ErrPayloadEmpty
	}
	if len(payload) > MaxPayload {
		return 0, ErrPayloadTooLong
	}
	cfg := t.band.cfg

	// Body: FEC(payload ‖ CRC-16).
	data := make([]byte, 0, len(payload)+2)
	data = append(data, payload...)
	c := crc16(payload)
	data = append(data, byte(c>>8), byte(c))
	coded := cfg.FEC.Encode(data)

	// Header, twice.
	hdr := make([]byte, headerBytes*headerCopies)
	encodeHeader(header{PayloadLen: len(payload), FECID: cfg.FEC.ID(), Seq: t.seq}, hdr[:headerBytes])
	copy(hdr[headerBytes:], hdr[:headerBytes])
	t.seq++

	g := frameGeometry(cfg, len(coded))
	T := cfg.SymbolPeriod

	// Sync epochs: one full-period pilot per bank. A pilot must be a
	// single emission — MP messages carry no phase, so two abutting
	// half-tones would restart at phase zero and, at half the band's
	// frequencies, cancel each other inside a capture window. Losing
	// one pilot to a wire fault still locks the clock: the receiver
	// combines whichever pilots it heard.
	for bank := 0; bank < banks; bank++ {
		t.scheduleTone(at+float64(bank)*T, t.band.SyncTone(bank), T)
	}

	// Data epochs: Lanes nibbles per epoch. The body starts on a fresh
	// epoch boundary (the header's last epoch is zero-padded), so both
	// ends compute nibble positions from the same geometry.
	for e := 2; e < g.totalEpochs; e++ {
		start := at + float64(e)*T
		for lane := 0; lane < cfg.Lanes; lane++ {
			var val int
			body := false
			if he := e - 2; he < g.hdrEpochs {
				val = nibbleOf(hdr, he*cfg.Lanes+lane)
			} else {
				val = nibbleOf(coded, (he-g.hdrEpochs)*cfg.Lanes+lane)
				body = true
			}
			t.SymbolsTx++
			emit := true
			if body && t.Corruptor != nil {
				mangled, keep := t.Corruptor.attack(val)
				if mangled != val || !keep {
					t.SymbolsCorrupted++
				}
				val, emit = mangled, keep
			}
			if emit {
				t.scheduleTone(start, t.band.DataTone(e, lane, val), T)
			}
		}
	}

	t.FramesTx++
	t.BitsTx += 8 * uint64(len(payload))
	return at + float64(g.totalEpochs)*T, nil
}

// scheduleTone emits one tone at the given absolute time.
func (t *Transmitter) scheduleTone(at, freq, dur float64) {
	t.sim.Schedule(at, func() {
		t.voice.PlayMessage(mp.Message{
			Frequency: freq,
			Duration:  dur,
			Intensity: t.band.cfg.Intensity,
		})
	})
}

// Instrument exposes the transmitter's counters under the given
// channel name.
func (t *Transmitter) Instrument(reg *telemetry.Registry, channel string) {
	reg.Func(telemetry.Label("mdn_modem_frames_tx", "channel", channel),
		func() float64 { return float64(t.FramesTx) })
	reg.Func(telemetry.Label("mdn_modem_symbols_tx", "channel", channel),
		func() float64 { return float64(t.SymbolsTx) })
	reg.Func(telemetry.Label("mdn_modem_symbols_corrupted", "channel", channel),
		func() float64 { return float64(t.SymbolsCorrupted) })
}
