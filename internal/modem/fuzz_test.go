package modem

import (
	"bytes"
	"testing"
)

// FuzzFECDecode throws arbitrary coded bytes and claimed lengths at
// every scheme: decoders must never panic, and whatever they return
// must have the claimed length.
func FuzzFECDecode(f *testing.F) {
	f.Add([]byte{0x00}, 1, 0)
	f.Add(bytes.Repeat([]byte{0xFF}, 120), 40, 2)
	f.Add([]byte("some coded body bytes for the decoders"), 16, 1)
	f.Fuzz(func(t *testing.T, coded []byte, dataLen, scheme int) {
		if dataLen < 0 || dataLen > 1024 {
			return
		}
		schemes := fecSchemes()
		fec := schemes[((scheme%len(schemes))+len(schemes))%len(schemes)]
		data, _, err := fec.Decode(coded, dataLen)
		if err == nil && len(data) != dataLen {
			t.Fatalf("%s: decoded %d bytes, claimed %d", fec.Name(), len(data), dataLen)
		}
	})
}

// FuzzFECRoundTripUnderCorruption encodes arbitrary data, flips a few
// symbols, and checks the invariant every scheme promises: decode
// either fails or returns exactly len(data) bytes — and with no
// corruption at all, returns the data.
func FuzzFECRoundTripUnderCorruption(f *testing.F) {
	f.Add([]byte("payload"), uint16(0), 2)
	f.Add(bytes.Repeat([]byte{0x33}, 64), uint16(12345), 1)
	f.Fuzz(func(t *testing.T, data []byte, flips uint16, scheme int) {
		if len(data) == 0 || len(data) > 300 {
			return
		}
		schemes := fecSchemes()
		fec := schemes[((scheme%len(schemes))+len(schemes))%len(schemes)]
		coded := fec.Encode(data)
		if len(coded) != fec.CodedLen(len(data)) {
			t.Fatalf("%s: CodedLen mismatch", fec.Name())
		}
		clean, corrected, err := fec.Decode(coded, len(data))
		if err != nil || corrected != 0 || !bytes.Equal(clean, data) {
			t.Fatalf("%s: clean round trip failed: %v", fec.Name(), err)
		}
		// Deterministic pseudo-random symbol flips driven by the fuzz
		// input itself.
		state := uint32(flips) | 1
		for i := 0; i < int(flips%16); i++ {
			state = state*1664525 + 1013904223
			pos := int(state>>8) % (2 * len(coded))
			setNibble(coded, pos, nibbleOf(coded, pos)^int(1+state%15))
		}
		got, _, err := fec.Decode(coded, len(data))
		if err == nil && len(got) != len(data) {
			t.Fatalf("%s: corrupted decode returned %d bytes, want %d", fec.Name(), len(got), len(data))
		}
	})
}

// FuzzFrameHeader checks that header parsing accepts exactly what
// encodeHeader emits and rejects every single-byte mutation of it.
func FuzzFrameHeader(f *testing.F) {
	f.Add(byte(64), byte(0x20), byte(7), byte(0), byte(0xFF))
	f.Add(byte(1), byte(0x00), byte(0), byte(3), byte(0x01))
	f.Fuzz(func(t *testing.T, plen, fecid, seq, mutIdx, mutXor byte) {
		var buf [headerBytes]byte
		encodeHeader(header{PayloadLen: int(plen), FECID: fecid, Seq: seq}, buf[:])
		h, ok := parseHeader(buf[:])
		if !ok || h.PayloadLen != int(plen) || h.FECID != fecid || h.Seq != seq {
			t.Fatalf("canonical header rejected: %+v ok=%v", h, ok)
		}
		if mutXor == 0 {
			return
		}
		buf[mutIdx%headerBytes] ^= mutXor
		if _, ok := parseHeader(buf[:]); ok {
			// CRC-8 detects all single-byte errors in a 4-byte header.
			t.Fatalf("mutated header accepted: % x", buf)
		}
	})
}
