package modem

import (
	"bytes"
	"testing"
)

// sendFrames pushes n distinct payloads back-to-back and runs the sim
// past the last frame.
func sendFrames(t *testing.T, lb *loopback, n, size int) [][]byte {
	t.Helper()
	payloads := make([][]byte, n)
	at := 0.5
	for i := range payloads {
		p := make([]byte, size)
		for j := range p {
			p[j] = byte(i*31 + j)
		}
		payloads[i] = p
		end, err := lb.tx.Send(at, p)
		if err != nil {
			t.Fatal(err)
		}
		at = end
	}
	lb.sim.RunUntil(at + 0.5)
	return payloads
}

func TestModemRSRecoversUnderCorruption(t *testing.T) {
	// The acceptance floor: with Reed-Solomon enabled, a seeded 5%
	// symbol-corruption attack on the payload epochs loses nothing.
	cfg := DefaultConfig()
	cfg.FEC = FECRS{Parity: DefaultRSParity}
	lb := newLoopback(t, 11, cfg)
	lb.tx.Corruptor = NewCorruptor(0.05, 1101)
	lb.ctrl.Start(0)

	payloads := sendFrames(t, lb, 6, 64)

	if lb.tx.SymbolsCorrupted == 0 {
		t.Fatal("corruptor never fired — the sweep is vacuous")
	}
	if lb.rx.FramesRx != uint64(len(payloads)) {
		t.Fatalf("FramesRx = %d of %d (crc fail %d, fec fail %d, hdr fail %d, %d symbols corrupted)",
			lb.rx.FramesRx, len(payloads), lb.rx.CRCFailures, lb.rx.FECFailures,
			lb.rx.HeaderFailures, lb.tx.SymbolsCorrupted)
	}
	for i, fr := range lb.rx.Frames {
		if !bytes.Equal(fr.Payload, payloads[i]) {
			t.Fatalf("frame %d payload mismatch", i)
		}
	}
	if lb.rx.FECCorrected == 0 {
		t.Error("corruption recovered but FECCorrected = 0")
	}
}

func TestModemUncodedCorruptionIsDetectedNotDelivered(t *testing.T) {
	// Without FEC the CRC must catch damaged frames: lossy is
	// acceptable, lying is not.
	lb := newLoopback(t, 12, DefaultConfig())
	lb.tx.Corruptor = NewCorruptor(0.10, 1201)
	lb.ctrl.Start(0)

	payloads := sendFrames(t, lb, 6, 64)

	if lb.rx.CRCFailures == 0 {
		t.Fatalf("10%% corruption produced no CRC failures (FramesRx = %d)", lb.rx.FramesRx)
	}
	if lb.rx.FramesRx == uint64(len(payloads)) {
		t.Fatal("every corrupted frame delivered — corruption not reaching the air?")
	}
	// Whatever was delivered must be byte-exact.
	for _, fr := range lb.rx.Frames {
		want := payloads[int(fr.Seq)]
		if !bytes.Equal(fr.Payload, want) {
			t.Fatalf("seq %d delivered corrupted payload", fr.Seq)
		}
	}
}

func TestModemHammingRecoversSparseCorruption(t *testing.T) {
	// The mid-tier scheme holds up at 1%: sparse symbol hits stay
	// within one bit per codeword with high probability.
	cfg := DefaultConfig()
	cfg.FEC = FECHamming{}
	lb := newLoopback(t, 13, cfg)
	lb.tx.Corruptor = NewCorruptor(0.01, 1301)
	lb.ctrl.Start(0)

	payloads := sendFrames(t, lb, 6, 64)

	if lb.rx.FramesRx != uint64(len(payloads)) {
		t.Fatalf("FramesRx = %d of %d (crc fail %d, fec fail %d)",
			lb.rx.FramesRx, len(payloads), lb.rx.CRCFailures, lb.rx.FECFailures)
	}
}
