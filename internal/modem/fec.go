package modem

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// FEC is a pluggable forward-error-correction scheme applied to the
// frame body (payload ‖ CRC-16). Encode expands data into coded
// bytes; Decode inverts it given the original data length (which the
// receiver learns from the frame header), reporting how many symbol
// corrections it made. A FEC is identified on the wire by a one-byte
// id so the receiver can reconstruct the transmitter's scheme from
// the header alone.
type FEC interface {
	// Name is the scheme's human-readable name.
	Name() string
	// ID is the wire identity carried in the frame header: the high
	// nibble selects the scheme, the low nibble its parameter.
	ID() byte
	// CodedLen returns the coded size of dataLen bytes.
	CodedLen(dataLen int) int
	// Encode returns the coded form of data.
	Encode(data []byte) []byte
	// Decode recovers dataLen bytes from coded, correcting what it
	// can; corrected counts repaired units (bits for Hamming, bytes
	// for Reed-Solomon). It fails only when coded is too short or the
	// error pattern exceeds the scheme's correction capacity in a
	// detectable way — an undetected miscorrection is caught by the
	// frame CRC above.
	Decode(coded []byte, dataLen int) (data []byte, corrected int, err error)
}

// ErrCodedTooShort reports a coded body shorter than the scheme
// requires for the claimed data length.
var ErrCodedTooShort = errors.New("modem: coded body shorter than scheme requires")

// ErrUnknownFEC reports a header FEC id no registered scheme claims.
var ErrUnknownFEC = errors.New("modem: unknown FEC id")

// FEC wire ids (high nibble).
const (
	fecKindNone    = 0x0
	fecKindHamming = 0x1
	fecKindRS      = 0x2
)

// FECByID reconstructs the scheme a frame header names.
func FECByID(id byte) (FEC, error) {
	switch id >> 4 {
	case fecKindNone:
		return FECNone{}, nil
	case fecKindHamming:
		return FECHamming{}, nil
	case fecKindRS:
		parity := int(id&0x0F) * 8
		if parity == 0 {
			return nil, fmt.Errorf("%w: %#02x (zero RS parity)", ErrUnknownFEC, id)
		}
		return FECRS{Parity: parity}, nil
	default:
		return nil, fmt.Errorf("%w: %#02x", ErrUnknownFEC, id)
	}
}

// FECByName resolves a scheme from its configuration name: "none",
// "hamming7_4" (or "hamming"), "rs" (default parity), or "rs_pN" for
// N parity bytes.
func FECByName(name string) (FEC, error) {
	switch {
	case name == "" || name == "none":
		return FECNone{}, nil
	case name == "hamming" || name == "hamming7_4":
		return FECHamming{}, nil
	case name == "rs":
		return FECRS{}, nil
	case strings.HasPrefix(name, "rs_p"):
		p, err := strconv.Atoi(name[len("rs_p"):])
		if err != nil || p <= 0 || p > 120 || p%8 != 0 {
			return nil, fmt.Errorf("modem: bad RS parity in %q (want a positive multiple of 8 ≤ 120)", name)
		}
		return FECRS{Parity: p}, nil
	default:
		return nil, fmt.Errorf("modem: unknown FEC name %q", name)
	}
}

// FECNone is the identity scheme: no overhead, no protection beyond
// the frame CRC.
type FECNone struct{}

// Name implements FEC.
func (FECNone) Name() string { return "none" }

// ID implements FEC.
func (FECNone) ID() byte { return fecKindNone << 4 }

// CodedLen implements FEC.
func (FECNone) CodedLen(dataLen int) int { return dataLen }

// Encode implements FEC.
func (FECNone) Encode(data []byte) []byte {
	out := make([]byte, len(data))
	copy(out, data)
	return out
}

// Decode implements FEC.
func (FECNone) Decode(coded []byte, dataLen int) ([]byte, int, error) {
	if len(coded) < dataLen {
		return nil, 0, ErrCodedTooShort
	}
	out := make([]byte, dataLen)
	copy(out, coded)
	return out, 0, nil
}

// FECHamming is interleaved Hamming(7,4): every data nibble becomes a
// 7-bit codeword, and the codeword bits are block-interleaved —
// transmit-adjacent bits come from distinct codewords — so one
// corrupted 4-bit symbol lands one bit error in each of four
// codewords, all correctable, instead of an uncorrectable burst in
// one. Rate 4/7; corrects any error pattern that leaves at most one
// flipped bit per codeword — in particular any corruption confined to
// fewer than dataLen/2 consecutive transmitted symbols, however
// dense. Dense corruption spread across the whole frame can collide
// two errors into one codeword; use FECRS for hard guarantees there.
type FECHamming struct{}

// hamEnc maps a nibble (d3 d2 d1 d0, d3 most significant) to its
// 7-bit codeword; hamDec maps any 7-bit word to (nibble | corrected
// <<4) — Hamming(7,4) is a perfect code, so every word is within
// distance one of exactly one codeword.
var hamEnc [16]byte
var hamDec [128]byte

func init() {
	for d := 0; d < 16; d++ {
		d0, d1, d2, d3 := d&1, d>>1&1, d>>2&1, d>>3&1
		p0 := d0 ^ d1 ^ d3
		p1 := d0 ^ d2 ^ d3
		p2 := d1 ^ d2 ^ d3
		// Bit positions 1..7: p0 p1 d0 p2 d1 d2 d3 (parity at 1,2,4).
		w := p0<<6 | p1<<5 | d0<<4 | p2<<3 | d1<<2 | d2<<1 | d3
		hamEnc[d] = byte(w)
		hamDec[w] = byte(d)
	}
	for w := 0; w < 128; w++ {
		// Syndrome names the flipped bit position (1..7), 0 = clean.
		s0 := bitAt(w, 1) ^ bitAt(w, 3) ^ bitAt(w, 5) ^ bitAt(w, 7)
		s1 := bitAt(w, 2) ^ bitAt(w, 3) ^ bitAt(w, 6) ^ bitAt(w, 7)
		s2 := bitAt(w, 4) ^ bitAt(w, 5) ^ bitAt(w, 6) ^ bitAt(w, 7)
		syn := s0 | s1<<1 | s2<<2
		if syn == 0 {
			continue
		}
		fixed := w ^ 1<<(7-syn)
		hamDec[w] = hamDec[fixed] | 0x10
	}
}

// bitAt reads bit position p (1-based from the most significant of 7)
// of word w.
func bitAt(w, p int) int { return w >> (7 - p) & 1 }

// Name implements FEC.
func (FECHamming) Name() string { return "hamming7_4" }

// ID implements FEC.
func (FECHamming) ID() byte { return fecKindHamming << 4 }

// CodedLen implements FEC: 7 bits per nibble, packed into bytes.
func (FECHamming) CodedLen(dataLen int) int { return (14*dataLen + 7) / 8 }

// Encode implements FEC. The interleaver writes bit k of the stream
// from codeword k mod C, so the four bits of any transmitted symbol
// touch four distinct codewords whenever the body has at least two
// data bytes.
func (f FECHamming) Encode(data []byte) []byte {
	c := 2 * len(data)
	out := make([]byte, f.CodedLen(len(data)))
	for k := 0; k < 7*c; k++ {
		cw := hamEnc[nibbleOf(data, k%c)]
		if bitAt(int(cw), k/c+1) != 0 {
			out[k/8] |= 0x80 >> (k % 8)
		}
	}
	return out
}

// Decode implements FEC.
func (f FECHamming) Decode(coded []byte, dataLen int) ([]byte, int, error) {
	if len(coded) < f.CodedLen(dataLen) {
		return nil, 0, ErrCodedTooShort
	}
	c := 2 * dataLen
	out := make([]byte, dataLen)
	corrected := 0
	for i := 0; i < c; i++ {
		w := 0
		for j := 0; j < 7; j++ {
			k := j*c + i
			if coded[k/8]&(0x80>>(k%8)) != 0 {
				w |= 1 << (6 - j)
			}
		}
		d := hamDec[w]
		if d&0x10 != 0 {
			corrected++
		}
		setNibble(out, i, int(d&0x0F))
	}
	return out, corrected, nil
}

// FECRS is Reed-Solomon over GF(256) (polynomial 0x11D): the body is
// split into blocks of at most 255−Parity data bytes, each extended
// with Parity check bytes; each block corrects up to Parity/2
// corrupted bytes at any positions. The workhorse scheme for the ≥5%
// symbol-corruption chaos floor — a corrupted 4-bit symbol damages at
// most one byte, so DefaultRSParity tolerates twice the sweep's
// nominal corruption rate on every block.
type FECRS struct {
	// Parity is the number of check bytes per block: a positive
	// multiple of 8 up to 120 (it must fit the id byte's low nibble).
	Parity int
}

// DefaultRSParity is the default Reed-Solomon overhead: 48 check
// bytes per block, correcting 24 corrupted bytes.
const DefaultRSParity = 48

// parity returns the clamped block parity.
func (f FECRS) parity() int {
	p := f.Parity
	if p <= 0 {
		p = DefaultRSParity
	}
	if p > 120 {
		p = 120
	}
	return (p + 7) / 8 * 8
}

// Name implements FEC.
func (f FECRS) Name() string { return fmt.Sprintf("rs_p%d", f.parity()) }

// ID implements FEC.
func (f FECRS) ID() byte { return fecKindRS<<4 | byte(f.parity()/8) }

// blocks returns how many RS blocks dataLen bytes occupy.
func (f FECRS) blocks(dataLen int) int {
	max := 255 - f.parity()
	n := (dataLen + max - 1) / max
	if n == 0 {
		n = 1
	}
	return n
}

// CodedLen implements FEC.
func (f FECRS) CodedLen(dataLen int) int {
	return dataLen + f.blocks(dataLen)*f.parity()
}

// Encode implements FEC. Blocks are near-equal-sized so no block is
// disproportionately exposed.
func (f FECRS) Encode(data []byte) []byte {
	p := f.parity()
	nb := f.blocks(len(data))
	out := make([]byte, 0, f.CodedLen(len(data)))
	for b := 0; b < nb; b++ {
		lo, hi := b*len(data)/nb, (b+1)*len(data)/nb
		block := data[lo:hi]
		out = append(out, block...)
		out = append(out, rsParity(block, p)...)
	}
	return out
}

// Decode implements FEC.
func (f FECRS) Decode(coded []byte, dataLen int) ([]byte, int, error) {
	p := f.parity()
	nb := f.blocks(dataLen)
	if len(coded) < f.CodedLen(dataLen) {
		return nil, 0, ErrCodedTooShort
	}
	out := make([]byte, 0, dataLen)
	corrected := 0
	off := 0
	for b := 0; b < nb; b++ {
		lo, hi := b*dataLen/nb, (b+1)*dataLen/nb
		n := hi - lo + p
		block := make([]byte, n)
		copy(block, coded[off:off+n])
		off += n
		fixed, err := rsCorrect(block, p)
		if err != nil {
			return nil, corrected, err
		}
		corrected += fixed
		out = append(out, block[:hi-lo]...)
	}
	return out, corrected, nil
}
