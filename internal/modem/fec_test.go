package modem

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func fecSchemes() []FEC {
	return []FEC{FECNone{}, FECHamming{}, FECRS{Parity: DefaultRSParity}, FECRS{Parity: 16}}
}

func TestFECRoundTripClean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, f := range fecSchemes() {
		for _, n := range []int{1, 2, 3, 17, 66, 255, 400} {
			data := make([]byte, n)
			rng.Read(data)
			coded := f.Encode(data)
			if len(coded) != f.CodedLen(n) {
				t.Fatalf("%s: CodedLen(%d)=%d but Encode produced %d",
					f.Name(), n, f.CodedLen(n), len(coded))
			}
			got, corrected, err := f.Decode(coded, n)
			if err != nil || corrected != 0 || !bytes.Equal(got, data) {
				t.Fatalf("%s n=%d: clean decode = (%v, %d, %v)", f.Name(), n, got, corrected, err)
			}
		}
	}
}

func TestFECByIDRoundTrip(t *testing.T) {
	for _, f := range fecSchemes() {
		got, err := FECByID(f.ID())
		if err != nil {
			t.Fatalf("%s: FECByID(%#02x): %v", f.Name(), f.ID(), err)
		}
		if got.Name() != f.Name() {
			t.Errorf("FECByID(%#02x) = %s, want %s", f.ID(), got.Name(), f.Name())
		}
	}
	if _, err := FECByID(0xF0); !errors.Is(err, ErrUnknownFEC) {
		t.Errorf("unknown id err = %v", err)
	}
	if _, err := FECByID(fecKindRS << 4); !errors.Is(err, ErrUnknownFEC) {
		t.Errorf("zero-parity RS id err = %v", err)
	}
}

func TestFECDecodeTooShort(t *testing.T) {
	for _, f := range fecSchemes() {
		coded := f.Encode(make([]byte, 20))
		if _, _, err := f.Decode(coded[:len(coded)-1], 20); !errors.Is(err, ErrCodedTooShort) {
			t.Errorf("%s: short decode err = %v", f.Name(), err)
		}
	}
}

// corruptSymbols flips nSym distinct 4-bit aligned symbols of coded —
// the same damage a corrupted on-air lane symbol causes.
func corruptSymbols(rng *rand.Rand, coded []byte, nSym int) {
	total := 2 * len(coded)
	picked := map[int]bool{}
	for len(picked) < nSym && len(picked) < total {
		i := rng.Intn(total)
		if picked[i] {
			continue
		}
		picked[i] = true
		old := nibbleOf(coded, i)
		setNibble(coded, i, old^(1+rng.Intn(15)))
	}
}

func TestFECRSCorrectsUpToCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := FECRS{Parity: DefaultRSParity}
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		data := make([]byte, n)
		rng.Read(data)
		coded := f.Encode(data)
		// Every block corrects Parity/2 corrupted bytes; cap the symbol
		// count there so even the worst case — all symbols in distinct
		// bytes of one block — stays within capacity.
		nSym := 2 * len(coded) / 20 // 5% of symbols, the chaos floor rate
		if nSym > DefaultRSParity/2 {
			nSym = DefaultRSParity / 2
		}
		corruptSymbols(rng, coded, nSym)
		got, corrected, err := f.Decode(coded, n)
		if err != nil {
			t.Fatalf("trial %d n=%d: decode err %v (%d syms corrupted)", trial, n, err, nSym)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("trial %d n=%d: decode mismatch after %d corrections", trial, n, corrected)
		}
		if nSym > 0 && corrected == 0 {
			t.Fatalf("trial %d: corruption reported zero corrections", trial)
		}
	}
}

func TestFECRSDetectsOverCapacity(t *testing.T) {
	// Beyond Parity/2 byte errors a block is uncorrectable; the decoder
	// must either report it or be caught by the recheck. Miscorrection
	// into a different valid codeword is cryptographically unlikely at
	// this distance and would be caught by the frame CRC anyway.
	rng := rand.New(rand.NewSource(3))
	f := FECRS{Parity: 16}
	data := make([]byte, 40)
	rng.Read(data)
	coded := f.Encode(data)
	for i := 0; i < 20; i++ { // 20 byte errors >> capacity 8
		coded[i] ^= 0xFF
	}
	if _, _, err := f.Decode(coded, len(data)); err == nil {
		t.Fatal("over-capacity corruption decoded without error")
	}
}

func TestFECHammingCorrectsBursts(t *testing.T) {
	// Two corrupted stream bits land in the same codeword only when
	// their indices agree mod the codeword count (2·dataLen), i.e. when
	// they are at least 2·dataLen bits — dataLen/2 symbols — apart. Any
	// corruption confined to fewer than dataLen/2 consecutive symbols is
	// therefore fully correctable, however dense.
	rng := rand.New(rand.NewSource(4))
	f := FECHamming{}
	for trial := 0; trial < 50; trial++ {
		n := 8 + rng.Intn(120)
		data := make([]byte, n)
		rng.Read(data)
		coded := f.Encode(data)
		total := 2 * len(coded)
		burst := 1 + rng.Intn(n/2-1)
		start := rng.Intn(total - burst)
		for i := start; i < start+burst; i++ {
			setNibble(coded, i, nibbleOf(coded, i)^(1+rng.Intn(15)))
		}
		got, corrected, err := f.Decode(coded, n)
		if err != nil {
			t.Fatalf("trial %d: decode err %v", trial, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("trial %d n=%d burst=%d@%d: mismatch after %d corrections",
				trial, n, burst, start, corrected)
		}
	}
}

func TestRSParityAlgebra(t *testing.T) {
	// data ‖ parity must evaluate to zero at every generator root.
	rng := rand.New(rand.NewSource(5))
	for _, p := range []int{8, 16, 48} {
		data := make([]byte, 100)
		rng.Read(data)
		block := append(append([]byte{}, data...), rsParity(data, p)...)
		for i := 0; i < p; i++ {
			root := gfPowA(i)
			var s byte
			for _, b := range block {
				s = gfMul(s, root) ^ b
			}
			if s != 0 {
				t.Fatalf("p=%d: syndrome %d nonzero", p, i)
			}
		}
	}
}

func TestGFFieldBasics(t *testing.T) {
	for a := 1; a < 256; a++ {
		if gfMul(byte(a), gfInv(byte(a))) != 1 {
			t.Fatalf("a·a⁻¹ ≠ 1 for a=%d", a)
		}
	}
	if gfMul(0, 7) != 0 || gfMul(7, 0) != 0 {
		t.Error("0 not absorbing")
	}
}
