// Package modem implements an acoustic data channel over the MDN
// simulation: a proper M-ary FSK modem layered on the Music Protocol,
// with byte framing, CRC-16 integrity, and pluggable forward error
// correction, in the spirit of ChirpCast (arXiv 1508.07099).
//
// The paper closes by observing that tone sequences can drive "any
// finite state machine"; core.MelodyCodec is the one-symbol-per-tone
// constructive version and tops out near 25 bit/s because every tone
// must respect the voice's same-frequency re-arm gap. The modem
// instead treats the band as parallel FSK lanes on a fixed symbol
// clock:
//
//   - A symbol epoch lasts Config.SymbolPeriod seconds (default one
//     controller window, 50 ms). Every epoch, each of Config.Lanes
//     lanes sounds one of 16 tones — one nibble per lane per epoch.
//   - Consecutive epochs alternate between two disjoint frequency
//     banks (A for even epochs, B for odd). A capture window that
//     straddles an epoch boundary therefore sees the two adjacent
//     symbols in different banks and can attribute each
//     unambiguously; repeated equal symbols never fuse into one long
//     tone.
//   - Each frame opens with two dedicated sync tones (one per bank)
//     whose amplitude centroid across capture windows gives the
//     receiver the epoch clock phase — the symbol-timing recovery
//     that lets transmitter and controller run on unaligned grids.
//
// Framing, integrity, and error correction live above the symbol
// layer: a twice-sent header carries payload length, FEC identity and
// sequence number; the body is payload plus CRC-16, passed through
// the configured FEC (none, interleaved Hamming(7,4), or
// Reed-Solomon over GF(256)) so frames survive symbol erasures and
// corruptions injected mid-air.
package modem

import (
	"fmt"

	"mdn/internal/core"
)

// Symbol-layer constants. M is fixed at 16 tones per lane (one nibble
// per lane-symbol) so bytes map cleanly onto symbols; banks is fixed
// at 2 (epoch parity).
const (
	symbolValues = 16
	banks        = 2
)

// Config parameterises a modem band. The zero value is unusable; fill
// the fields or use DefaultConfig.
type Config struct {
	// Lanes is the number of parallel FSK lanes sounding each epoch.
	// Each lane carries one nibble per epoch, so raw throughput is
	// 4·Lanes/SymbolPeriod bit/s before framing and FEC.
	Lanes int
	// SymbolPeriod is the epoch length in seconds. The default (one
	// 50 ms controller window) guarantees every epoch is the dominant
	// overlap of at least one batch capture window.
	SymbolPeriod float64
	// WindowS is the controller's capture window length, used by the
	// receiver to reason about window/epoch overlap (default
	// core.DefaultWindow).
	WindowS float64
	// Intensity is the per-tone emission loudness in dB SPL at 1 m
	// (default 60, like core.Voice).
	Intensity float64
	// FEC is the forward error correction applied to the frame body
	// (nil = FECNone).
	FEC FEC
}

// DefaultConfig returns the default modem shape: 4 lanes on the 50 ms
// controller window clock — 320 bit/s raw — with no FEC.
func DefaultConfig() Config {
	return Config{
		Lanes:        4,
		SymbolPeriod: core.DefaultWindow,
		WindowS:      core.DefaultWindow,
		Intensity:    60,
		FEC:          FECNone{},
	}
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Lanes <= 0 {
		c.Lanes = d.Lanes
	}
	if c.SymbolPeriod <= 0 {
		c.SymbolPeriod = d.SymbolPeriod
	}
	if c.WindowS <= 0 {
		c.WindowS = d.WindowS
	}
	if c.Intensity <= 0 {
		c.Intensity = d.Intensity
	}
	if c.FEC == nil {
		c.FEC = d.FEC
	}
	return c
}

// Tones returns the number of frequencies a band with this config
// occupies: one sync tone per bank plus 16 tones per lane per bank.
func (c Config) Tones() int { return banks + banks*c.Lanes*symbolValues }

// RawBitsPerSecond is the symbol-layer throughput before framing and
// FEC overhead.
func (c Config) RawBitsPerSecond() float64 {
	return 4 * float64(c.Lanes) / c.SymbolPeriod
}

// toneRef identifies what a watched frequency means to the modem.
type toneRef struct {
	sync bool
	bank int
	lane int
	val  int
}

// Band is a modem's frequency assignment: 2 sync tones and
// 2·Lanes·16 data tones allocated guard-banded from a FrequencyPlan,
// shared by the transmitter and receiver of one acoustic data
// channel.
type Band struct {
	cfg  Config
	sync [banks]float64
	// tone[bank][lane*16+val]
	tone   [banks][]float64
	lookup map[float64]toneRef
}

// NewBand allocates a modem band under the given name. With the
// default config it needs 130 guard-banded slots (520 plan slots) —
// wider than core.DefaultPlan; see Plan.
func NewBand(plan *core.FrequencyPlan, name string, cfg Config) (*Band, error) {
	cfg = cfg.withDefaults()
	freqs, err := plan.AllocateSpaced(name+"/modem", cfg.Tones(), core.DefaultStride)
	if err != nil {
		return nil, fmt.Errorf("modem: allocating band: %w", err)
	}
	b := &Band{cfg: cfg, lookup: make(map[float64]toneRef, len(freqs))}
	b.sync[0], b.sync[1] = freqs[0], freqs[1]
	b.lookup[freqs[0]] = toneRef{sync: true, bank: 0}
	b.lookup[freqs[1]] = toneRef{sync: true, bank: 1}
	next := 2
	for bank := 0; bank < banks; bank++ {
		b.tone[bank] = freqs[next : next+cfg.Lanes*symbolValues]
		next += cfg.Lanes * symbolValues
		for lane := 0; lane < cfg.Lanes; lane++ {
			for val := 0; val < symbolValues; val++ {
				f := b.tone[bank][lane*symbolValues+val]
				b.lookup[f] = toneRef{bank: bank, lane: lane, val: val}
			}
		}
	}
	return b, nil
}

// Plan returns a frequency plan wide enough for a band of the given
// config plus headroom for coexisting applications: the default
// 4-lane band needs ~10.7 kHz of spectrum at the paper's 20 Hz
// spacing, more than core.DefaultPlan's 400–8000 Hz.
func Plan(cfg Config) *core.FrequencyPlan {
	cfg = cfg.withDefaults()
	slots := (cfg.Tones()-1)*core.DefaultStride + 1
	top := 400 + float64(slots+63)*core.DefaultSpacing // 64 spare slots
	return core.NewFrequencyPlan(400, top, core.DefaultSpacing)
}

// Config returns the band's (defaults-filled) configuration.
func (b *Band) Config() Config { return b.cfg }

// Frequencies returns every tone in the band — what the controller's
// detector must watch.
func (b *Band) Frequencies() []float64 {
	out := make([]float64, 0, b.cfg.Tones())
	out = append(out, b.sync[0], b.sync[1])
	out = append(out, b.tone[0]...)
	out = append(out, b.tone[1]...)
	return out
}

// SyncTone returns the sync frequency of the given bank (0 or 1).
func (b *Band) SyncTone(bank int) float64 { return b.sync[bank%banks] }

// DataTone returns the frequency of value val on the given lane
// during an epoch of the given parity.
func (b *Band) DataTone(epoch, lane, val int) float64 {
	return b.tone[epoch%banks][lane*symbolValues+val%symbolValues]
}

// String describes the band.
func (b *Band) String() string {
	last := b.tone[1][len(b.tone[1])-1]
	return fmt.Sprintf("ModemBand(lanes=%d sync=%.0f/%.0fHz data=%.0f..%.0fHz %s)",
		b.cfg.Lanes, b.sync[0], b.sync[1], b.tone[0][0], last, b.cfg.FEC.Name())
}
