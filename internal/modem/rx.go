package modem

import (
	"math"

	"mdn/internal/core"
	"mdn/internal/telemetry"
)

// Frame is one delivered payload.
type Frame struct {
	// Seq is the transmitter's frame sequence number.
	Seq byte
	// Time is the estimated frame start (the symbol clock's t0).
	Time float64
	// Payload is the CRC-verified payload.
	Payload []byte
}

// maxCodedBytes bounds the coded body any header can describe: the
// widest expansions of a full 257-byte body (payload ‖ CRC-16) are
// Hamming(7,4) at 450 bytes and RS with 120 parity at 497. A header
// implying more is treated as a header failure.
const maxCodedBytes = 512

// Receiver demodulates frames from controller capture windows. Wire
// it with Controller.SubscribeWindows(rx.HandleWindow); it works
// unchanged on batch windows and on overlapping streaming windows,
// because all it assumes is that window start times are
// non-decreasing and detection amplitude scales with window/tone
// overlap.
//
// Life of a frame: in the idle state the receiver accumulates sync
// pilot detections; the amplitude-weighted centroid of the observing
// windows' centers recovers each pilot's epoch center exactly (the
// Goertzel amplitude of a partially-overlapping tone is linear in the
// overlap), giving the symbol clock phase t0. Data detections seen
// before the clock lock are buffered and replayed once t0 is known.
// Locked, every data detection becomes an amplitude vote for (epoch,
// lane, value); the header is decoded as soon as windows move past
// its epochs, sizing the body; when windows pass the last body epoch
// the per-slot argmax nibbles are reassembled, FEC-decoded and
// CRC-checked. Sync tones heard while locked belong to the next
// frame and are stashed, then replayed after reset, so back-to-back
// frames need no gap.
//
// The steady-state window path (vote accumulation) allocates nothing;
// per-frame assembly allocates only the coded body and the delivered
// payload copy.
type Receiver struct {
	band *Band
	cfg  Config

	state int // rxIdle or rxCollect

	// Acquisition state.
	syncSum  [banks]float64 // Σ amplitude per pilot
	syncSumT [banks]float64 // Σ amplitude · window center
	haveSync bool
	lastSync float64   // window start of the last sync sighting
	pendData []pendObs // data dets seen before lock
	pendSync []pendObs // next frame's sync seen while locked

	// Collection state.
	t0         float64
	votes      []float64 // [dataEpoch][lane][value], flat
	maxData    int       // data-epoch capacity of votes
	usedEpochs int       // high-water data epoch row + 1
	hdr        header
	hdrParsed  bool
	fec        FEC
	geo        geometry

	// Frames holds delivered frames, oldest first, bounded by
	// FramesMax (default DefaultFramesMax) with keep-last-N eviction.
	Frames []Frame
	// FramesMax bounds Frames; ≤0 means DefaultFramesMax.
	FramesMax int
	// FramesEvicted counts frames dropped from Frames by the bound.
	FramesEvicted uint64

	onFrame func(Frame)

	// FramesRx counts CRC-verified frames delivered.
	FramesRx uint64
	// HeaderFailures counts frames abandoned because no header copy
	// passed its CRC-8 or the header described an impossible body.
	HeaderFailures uint64
	// CRCFailures counts frames whose body decoded but failed CRC-16.
	CRCFailures uint64
	// FECFailures counts frames whose FEC declared the body
	// uncorrectable.
	FECFailures uint64
	// FECCorrected counts symbol corrections the FEC reported across
	// delivered and CRC-failed frames.
	FECCorrected uint64
	// SymbolsRx counts data-tone detections folded into votes.
	SymbolsRx uint64
	// PayloadBits counts delivered payload bits (goodput numerator).
	PayloadBits uint64

	locked    bool
	firstLock float64
	lastDone  float64
}

// DefaultFramesMax bounds the receiver's delivered-frame buffer.
const DefaultFramesMax = 256

const (
	rxIdle = iota
	rxCollect
)

type pendObs struct {
	from, freq, amp float64
}

// NewReceiver builds a receiver for a band.
func NewReceiver(band *Band) *Receiver {
	cfg := band.cfg
	hdrE := frameGeometry(cfg, 0).hdrEpochs
	maxData := hdrE + (2*maxCodedBytes+cfg.Lanes-1)/cfg.Lanes
	return &Receiver{
		band:     band,
		cfg:      cfg,
		votes:    make([]float64, maxData*cfg.Lanes*symbolValues),
		maxData:  maxData,
		pendData: make([]pendObs, 0, 512),
		pendSync: make([]pendObs, 0, 64),
	}
}

// OnFrame registers a delivery callback, invoked from HandleWindow as
// each frame verifies.
func (r *Receiver) OnFrame(fn func(Frame)) { r.onFrame = fn }

// HandleWindow consumes one controller capture window. Register it
// with Controller.SubscribeWindows.
func (r *Receiver) HandleWindow(from float64, dets []core.Detection) {
	if r.state == rxCollect {
		r.collectWindow(from, dets)
		return
	}
	r.idleWindow(from, dets)
}

// idleWindow accumulates sync pilots and buffers early data tones.
func (r *Receiver) idleWindow(from float64, dets []core.Detection) {
	syncSeen := false
	for _, d := range dets {
		ref, ok := r.band.lookup[d.Frequency]
		if !ok {
			continue
		}
		if ref.sync {
			syncSeen = true
			r.haveSync = true
			r.lastSync = from
			r.syncSum[ref.bank] += d.Amplitude
			r.syncSumT[ref.bank] += d.Amplitude * (from + r.cfg.WindowS/2)
		} else if r.haveSync && len(r.pendData) < cap(r.pendData) {
			r.pendData = append(r.pendData, pendObs{from, d.Frequency, d.Amplitude})
		}
	}
	if r.haveSync && !syncSeen && from > r.lastSync {
		r.lock(from)
	}
}

// lock derives t0 from the pilot centroids, replays buffered data
// detections, and switches to collection.
func (r *Receiver) lock(from float64) {
	T := r.cfg.SymbolPeriod
	var t0Sum, wSum float64
	for b := 0; b < banks; b++ {
		if r.syncSum[b] > 0 {
			centroid := r.syncSumT[b] / r.syncSum[b] // ≈ t0 + (b+½)T
			t0Sum += (centroid - (float64(b)+0.5)*T) * r.syncSum[b]
			wSum += r.syncSum[b]
		}
	}
	r.t0 = t0Sum / wSum
	r.state = rxCollect
	if !r.locked {
		r.locked = true
		r.firstLock = r.t0
	}
	pend := r.pendData
	r.pendData = r.pendData[:0]
	for _, p := range pend {
		if ref, ok := r.band.lookup[p.freq]; ok && !ref.sync {
			r.vote(p.from, ref, p.amp)
		}
	}
	r.checkProgress(from)
}

// collectWindow folds a window into the locked frame.
func (r *Receiver) collectWindow(from float64, dets []core.Detection) {
	for _, d := range dets {
		ref, ok := r.band.lookup[d.Frequency]
		if !ok {
			continue
		}
		if ref.sync {
			// The current frame's pilots are long past once we are
			// locked: this is the next frame announcing itself.
			if len(r.pendSync) < cap(r.pendSync) {
				r.pendSync = append(r.pendSync, pendObs{from, d.Frequency, d.Amplitude})
			}
			continue
		}
		r.vote(from, ref, d.Amplitude)
	}
	r.checkProgress(from)
}

// vote attributes one data detection to the same-bank epoch its
// window overlaps most and adds an amplitude vote for its value.
func (r *Receiver) vote(from float64, ref toneRef, amp float64) {
	T := r.cfg.SymbolPeriod
	W := r.cfg.WindowS
	a := (from - r.t0) / T
	lo := int(math.Floor(a)) - 1
	hi := int(math.Floor(a+W/T)) + 1
	best, bestOv := -1, 0.0
	for e := lo; e <= hi; e++ {
		if e < 2 || e%banks != ref.bank || e-2 >= r.maxData {
			continue
		}
		es := r.t0 + float64(e)*T
		ov := math.Min(from+W, es+T) - math.Max(from, es)
		if ov > bestOv {
			best, bestOv = e, ov
		}
	}
	if best < 0 {
		return
	}
	r.SymbolsRx++
	row := best - 2
	if row+1 > r.usedEpochs {
		r.usedEpochs = row + 1
	}
	r.votes[(row*r.cfg.Lanes+ref.lane)*symbolValues+ref.val] += amp
}

// argmax returns the winning nibble value for one (data epoch row,
// lane) slot; all-zero votes (a fully erased symbol) yield 0.
func (r *Receiver) argmax(row, lane int) int {
	base := (row*r.cfg.Lanes + lane) * symbolValues
	best, bestA := 0, 0.0
	for v := 0; v < symbolValues; v++ {
		if a := r.votes[base+v]; a > bestA {
			best, bestA = v, a
		}
	}
	return best
}

// checkProgress advances the frame state machine: windows starting at
// or after an epoch's end can no longer contribute votes to it, so
// the header (then the body) is final once `from` passes its epochs.
func (r *Receiver) checkProgress(from float64) {
	T := r.cfg.SymbolPeriod
	if !r.hdrParsed {
		hdrE := frameGeometry(r.cfg, 0).hdrEpochs
		if from < r.t0+float64(2+hdrE)*T {
			return
		}
		if !r.parseHeaderVotes() {
			r.HeaderFailures++
			r.resetAndReplay()
			return
		}
	}
	if from >= r.t0+float64(r.geo.totalEpochs)*T {
		r.finish(from)
	}
}

// parseHeaderVotes decodes the twice-sent header from the vote table
// and sizes the body.
func (r *Receiver) parseHeaderVotes() bool {
	var hdr [headerBytes * headerCopies]byte
	for i := range 2 * len(hdr) {
		setNibble(hdr[:], i, r.argmax(i/r.cfg.Lanes, i%r.cfg.Lanes))
	}
	h, ok := parseHeader(hdr[:headerBytes])
	if !ok {
		h, ok = parseHeader(hdr[headerBytes:])
	}
	if !ok || h.PayloadLen == 0 {
		return false
	}
	fec, err := FECByID(h.FECID)
	if err != nil {
		return false
	}
	coded := fec.CodedLen(h.PayloadLen + 2)
	if coded > maxCodedBytes {
		return false
	}
	geo := frameGeometry(r.cfg, coded)
	r.hdr, r.fec, r.geo, r.hdrParsed = h, fec, geo, true
	return true
}

// finish reassembles, FEC-decodes and CRC-checks the completed frame,
// then resets for the next one.
func (r *Receiver) finish(from float64) {
	codedLen := r.fec.CodedLen(r.hdr.PayloadLen + 2)
	coded := make([]byte, codedLen)
	for i := 0; i < 2*codedLen; i++ {
		row := r.geo.hdrEpochs + i/r.cfg.Lanes
		setNibble(coded, i, r.argmax(row, i%r.cfg.Lanes))
	}
	data, corrected, err := r.fec.Decode(coded, r.hdr.PayloadLen+2)
	if err != nil {
		r.FECFailures++
		r.resetAndReplay()
		return
	}
	r.FECCorrected += uint64(corrected)
	payload := data[:r.hdr.PayloadLen]
	want := uint16(data[len(data)-2])<<8 | uint16(data[len(data)-1])
	if crc16(payload) != want {
		r.CRCFailures++
		r.resetAndReplay()
		return
	}
	fr := Frame{Seq: r.hdr.Seq, Time: r.t0, Payload: append([]byte(nil), payload...)}
	r.FramesRx++
	r.PayloadBits += 8 * uint64(len(payload))
	r.lastDone = from
	max := r.FramesMax
	if max <= 0 {
		max = DefaultFramesMax
	}
	r.Frames = appendBounded(r.Frames, fr, max, &r.FramesEvicted)
	if r.onFrame != nil {
		r.onFrame(fr)
	}
	r.resetAndReplay()
}

// resetAndReplay returns to idle and replays sync pilots stashed
// while locked, so a frame starting in the tail of the previous one
// is acquired with its full pilot energy.
func (r *Receiver) resetAndReplay() {
	for i := 0; i < r.usedEpochs*r.cfg.Lanes*symbolValues; i++ {
		r.votes[i] = 0
	}
	r.usedEpochs = 0
	r.state = rxIdle
	r.hdrParsed = false
	r.haveSync = false
	r.syncSum = [banks]float64{}
	r.syncSumT = [banks]float64{}
	r.pendData = r.pendData[:0]
	pend := r.pendSync
	r.pendSync = r.pendSync[:0]
	for _, p := range pend {
		ref := r.band.lookup[p.freq]
		r.haveSync = true
		r.lastSync = p.from
		r.syncSum[ref.bank] += p.amp
		r.syncSumT[ref.bank] += p.amp * (p.from + r.cfg.WindowS/2)
	}
}

// GoodputBps is the delivered payload rate: verified payload bits
// over the span from the first frame's clock lock to the last
// delivery. Zero until two timestamps exist.
func (r *Receiver) GoodputBps() float64 {
	if !r.locked || r.lastDone <= r.firstLock {
		return 0
	}
	return float64(r.PayloadBits) / (r.lastDone - r.firstLock)
}

// Instrument exposes the receiver's counters under the given channel
// name.
func (r *Receiver) Instrument(reg *telemetry.Registry, channel string) {
	l := func(name string) string { return telemetry.Label(name, "channel", channel) }
	reg.Func(l("mdn_modem_frames_rx"), func() float64 { return float64(r.FramesRx) })
	reg.Func(l("mdn_modem_header_failures"), func() float64 { return float64(r.HeaderFailures) })
	reg.Func(l("mdn_modem_crc_failures"), func() float64 { return float64(r.CRCFailures) })
	reg.Func(l("mdn_modem_fec_failures"), func() float64 { return float64(r.FECFailures) })
	reg.Func(l("mdn_modem_fec_corrected"), func() float64 { return float64(r.FECCorrected) })
	reg.Func(l("mdn_modem_symbols_rx"), func() float64 { return float64(r.SymbolsRx) })
	reg.Func(l("mdn_modem_payload_bits"), func() float64 { return float64(r.PayloadBits) })
	reg.Func(l("mdn_modem_goodput_bps"), r.GoodputBps)
}

// appendBounded appends keeping only the last max elements (a local
// twin of the core package's unexported helper).
func appendBounded[T any](s []T, v T, max int, dropped *uint64) []T {
	s = append(s, v)
	if max > 0 && len(s) > max {
		n := len(s) - max
		*dropped += uint64(n)
		copy(s, s[n:])
		s = s[:max]
	}
	return s
}
