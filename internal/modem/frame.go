package modem

import (
	"errors"
	"fmt"
)

// Frame layout on the air, in symbol epochs:
//
//	epoch 0              sync tone A (the bank-A pilot, one
//	                     full-period emission)
//	epoch 1              sync tone B (likewise; the receiver locks
//	                     its clock from whichever pilots survive)
//	epochs 2..2+H-1      header: {len, fec, seq, crc8} sent twice
//	                     (8 bytes = 16 nibbles, H = ceil(16/Lanes))
//	epochs 2+H..         body: FEC(payload ‖ CRC-16), 2 nibbles per
//	                     coded byte, Lanes nibbles per epoch, padded
//	                     with zero nibbles to the epoch boundary
//
// The header is its own integrity domain (per-copy CRC-8, fall back
// to the second copy) because the receiver needs the payload length
// and FEC identity before it can size — let alone decode — the body.

// MaxPayload is the largest payload one frame can carry: the header's
// length field is one byte.
const MaxPayload = 255

// headerBytes is one header copy: payload length, FEC id, sequence
// number, CRC-8 over the first three.
const headerBytes = 4

// headerCopies is how many times the header is sent.
const headerCopies = 2

// ErrPayloadEmpty rejects zero-length payloads: an empty frame has
// nothing to CRC and nothing to deliver.
var ErrPayloadEmpty = errors.New("modem: payload is empty")

// ErrPayloadTooLong rejects payloads over MaxPayload bytes; split
// long transfers into sequenced frames.
var ErrPayloadTooLong = fmt.Errorf("modem: payload exceeds %d bytes", MaxPayload)

// header is the decoded frame header.
type header struct {
	PayloadLen int
	FECID      byte
	Seq        byte
}

// encodeHeader renders the header's 4 bytes once.
func encodeHeader(h header, dst []byte) {
	dst[0] = byte(h.PayloadLen)
	dst[1] = h.FECID
	dst[2] = h.Seq
	dst[3] = crc8(dst[:3])
}

// parseHeader validates one header copy.
func parseHeader(b []byte) (header, bool) {
	if len(b) < headerBytes || crc8(b[:3]) != b[3] {
		return header{}, false
	}
	return header{PayloadLen: int(b[0]), FECID: b[1], Seq: b[2]}, true
}

// geometry is a frame's epoch layout for a given config and body
// size. Both ends compute it from the same inputs, so they agree on
// where every nibble lives.
type geometry struct {
	hdrEpochs   int // header epochs
	bodyEpochs  int // body epochs
	totalEpochs int // sync + header + body
}

// frameGeometry sizes a frame carrying codedLen body bytes.
func frameGeometry(cfg Config, codedLen int) geometry {
	hdrNibbles := 2 * headerBytes * headerCopies
	g := geometry{
		hdrEpochs:  (hdrNibbles + cfg.Lanes - 1) / cfg.Lanes,
		bodyEpochs: (2*codedLen + cfg.Lanes - 1) / cfg.Lanes,
	}
	g.totalEpochs = 2 + g.hdrEpochs + g.bodyEpochs
	return g
}

// nibbleOf returns nibble i of the byte slice (two nibbles per byte,
// high first); indices past the end read as zero padding.
func nibbleOf(b []byte, i int) int {
	if i/2 >= len(b) {
		return 0
	}
	v := b[i/2]
	if i%2 == 0 {
		return int(v >> 4)
	}
	return int(v & 0x0F)
}

// setNibble writes nibble i of the byte slice (two per byte, high
// first); indices past the end are dropped.
func setNibble(b []byte, i, v int) {
	if i/2 >= len(b) {
		return
	}
	if i%2 == 0 {
		b[i/2] = b[i/2]&0x0F | byte(v)<<4
	} else {
		b[i/2] = b[i/2]&0xF0 | byte(v)&0x0F
	}
}

// crc16 is CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) — the frame
// body's end-to-end integrity check.
func crc16(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// crc8 is CRC-8 (poly 0x07, init 0x00) — the header copy check.
func crc8(data []byte) byte {
	var crc byte
	for _, b := range data {
		crc ^= b
		for i := 0; i < 8; i++ {
			if crc&0x80 != 0 {
				crc = crc<<1 ^ 0x07
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}
