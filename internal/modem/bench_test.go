package modem

import (
	"testing"

	"mdn/internal/core"
)

// BenchmarkModemGoodput measures delivered payload bits per simulated
// second through the full acoustic loop, per FEC scheme, with the
// MelodyCodec's pacing-derived rate as the baseline sub-benchmark.
func BenchmarkModemGoodput(b *testing.B) {
	for _, fec := range []FEC{FECNone{}, FECHamming{}, FECRS{Parity: DefaultRSParity}} {
		b.Run(fec.Name(), func(b *testing.B) {
			var goodput float64
			for i := 0; i < b.N; i++ {
				cfg := DefaultConfig()
				cfg.FEC = fec
				lb := newLoopback(b, 21, cfg)
				lb.ctrl.Start(0)
				payload := make([]byte, 64)
				for j := range payload {
					payload[j] = byte(j)
				}
				at := 0.5
				for f := 0; f < 4; f++ {
					end, err := lb.tx.Send(at, payload)
					if err != nil {
						b.Fatal(err)
					}
					at = end
				}
				lb.sim.RunUntil(at + 0.5)
				if lb.rx.FramesRx != 4 {
					b.Fatalf("FramesRx = %d", lb.rx.FramesRx)
				}
				goodput = lb.rx.GoodputBps()
			}
			b.ReportMetric(goodput, "bits/s")
		})
	}
	b.Run("melody-baseline", func(b *testing.B) {
		var bps float64
		for i := 0; i < b.N; i++ {
			lb := newLoopback(b, 22, DefaultConfig())
			mc, err := core.NewMelodyCodec(core.DefaultPlan(), "s1")
			if err != nil {
				b.Fatal(err)
			}
			msg := make([]byte, core.MaxMelodyBytes)
			tones, err := mc.Encode(msg)
			if err != nil {
				b.Fatal(err)
			}
			slot := core.NewVoice(lb.sim, nil).MinGap + 0.01
			bps = float64(8*len(msg)) / (float64(len(tones)) * slot)
		}
		b.ReportMetric(bps, "bits/s")
	})
}

// benchReceiver drives a receiver into locked, header-parsed
// steady state with synthetic windows, returning it plus a reusable
// mid-body window.
func benchReceiver(tb testing.TB) (*Receiver, float64, []core.Detection) {
	cfg := DefaultConfig()
	band, err := NewBand(Plan(cfg), "bench", cfg)
	if err != nil {
		tb.Fatal(err)
	}
	rx := NewReceiver(band)
	T := cfg.SymbolPeriod
	t0 := 1.0
	rx.HandleWindow(t0, []core.Detection{
		{Time: t0, Frequency: band.SyncTone(0), Amplitude: 0.01}})
	rx.HandleWindow(t0+T, []core.Detection{
		{Time: t0 + T, Frequency: band.SyncTone(1), Amplitude: 0.01}})

	var hdr [headerBytes * headerCopies]byte
	encodeHeader(header{PayloadLen: 200, FECID: FECNone{}.ID(), Seq: 0}, hdr[:headerBytes])
	copy(hdr[headerBytes:], hdr[:headerBytes])
	hdrE := frameGeometry(cfg, 0).hdrEpochs
	for he := 0; he < hdrE; he++ {
		e := 2 + he
		from := t0 + float64(e)*T
		dets := make([]core.Detection, 0, cfg.Lanes)
		for lane := 0; lane < cfg.Lanes; lane++ {
			val := nibbleOf(hdr[:], he*cfg.Lanes+lane)
			dets = append(dets, core.Detection{
				Time: from, Frequency: band.DataTone(e, lane, val), Amplitude: 0.01})
		}
		rx.HandleWindow(from, dets)
	}

	// One mid-body window, reused for every steady-state iteration
	// (equal window starts are valid: streaming hops may repeat them).
	e := 2 + hdrE + 4
	from := t0 + float64(e)*T
	dets := make([]core.Detection, 0, cfg.Lanes)
	for lane := 0; lane < cfg.Lanes; lane++ {
		dets = append(dets, core.Detection{
			Time: from, Frequency: band.DataTone(e, lane, (lane*5+3)%16), Amplitude: 0.01})
	}
	rx.HandleWindow(from, dets) // warm-up: parses the header
	if !rx.hdrParsed {
		tb.Fatal("bench receiver failed to parse header")
	}
	return rx, from, dets
}

// TestReceiverWindowAllocs pins the steady-state demodulation path at
// zero allocations per window.
func TestReceiverWindowAllocs(t *testing.T) {
	rx, from, dets := benchReceiver(t)
	if n := testing.AllocsPerRun(1000, func() {
		rx.HandleWindow(from, dets)
	}); n != 0 {
		t.Fatalf("receiver window path allocates %.1f/op, want 0", n)
	}
}

// BenchmarkModemReceiverWindow is the CI gate's measurable twin of
// TestReceiverWindowAllocs: run with -benchmem, it must report
// 0 allocs/op.
func BenchmarkModemReceiverWindow(b *testing.B) {
	rx, from, dets := benchReceiver(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rx.HandleWindow(from, dets)
	}
}
