package scenario

import (
	"fmt"
	"math"
	"net/netip"
	"strings"
	"time"

	"mdn/internal/core"
	"mdn/internal/netsim"
	"mdn/internal/parallel"
	"mdn/internal/sketch"
	"mdn/internal/telemetry"
)

// TrafficSweepConfig parameterises the exact-vs-sketch analytics sweep
// over flow-count scales. Each point drives a Zipf flow population
// through the pooled traffic engine and measures, on the identical
// packet stream, the exact oracle against the sketch stack (count-min
// + HyperLogLog + space-saving top-k): heavy-hitter recall, distinct
// error, and bytes of analytics state.
type TrafficSweepConfig struct {
	// Seed drives every stochastic component; per-point streams derive
	// from it and the grid position.
	Seed int64 `json:"seed"`
	// FlowCounts are the population sizes to sweep (default 10^4,
	// 10^5, 10^6).
	FlowCounts []int `json:"flow_counts,omitempty"`
	// DurationS is the simulated emission window per point (default 1).
	DurationS float64 `json:"duration_s,omitempty"`
	// Epsilon and Delta are the count-min error knobs (defaults 1e-4
	// and 0.01: overestimates exceed eps*packets with prob. < 1%).
	Epsilon float64 `json:"epsilon,omitempty"`
	Delta   float64 `json:"delta,omitempty"`
	// Precision is the HyperLogLog precision (default 14: ~0.8%
	// standard error).
	Precision int `json:"precision,omitempty"`
	// TopK is the space-saving capacity (default 2048).
	TopK int `json:"top_k,omitempty"`
	// HeavyFrac defines a heavy hitter: a flow carrying at least this
	// fraction of all packets (default 0.001).
	HeavyFrac float64 `json:"heavy_frac,omitempty"`
	// Workers bounds the sweep's worker pool (<= 0 means GOMAXPROCS).
	// The report is byte-identical at every worker count.
	Workers int `json:"workers,omitempty"`
}

// TrafficSweepPoint is one flow-count measurement. Every field is a
// deterministic function of the seed and the grid position — wall
// rates go to telemetry, not here — so reports diff clean across
// worker counts.
type TrafficSweepPoint struct {
	// Flows is the configured population; FlowsSeen is how many
	// distinct flows actually emitted (ground truth).
	Flows     int `json:"flows"`
	FlowsSeen int `json:"flows_seen"`
	// Packets is the packet count across the point; Events the
	// scheduler events dispatched.
	Packets uint64 `json:"packets"`
	Events  uint64 `json:"events"`
	// PoolRecycled/PoolAllocated split packet provenance: free list
	// hits versus fresh heap allocations (the in-flight high-water
	// mark).
	PoolRecycled  uint64 `json:"pool_recycled"`
	PoolAllocated uint64 `json:"pool_allocated"`

	// ExactBytes is the oracle's analytics state; SketchBytes the
	// sketch stack's; StateRatio their quotient.
	ExactBytes  int     `json:"exact_bytes"`
	SketchBytes int     `json:"sketch_bytes"`
	StateRatio  float64 `json:"state_ratio"`

	// Heavy-hitter accuracy at the HeavyFrac threshold.
	HeavyTrue    int     `json:"heavy_true"`
	HeavyFound   int     `json:"heavy_found"`
	HeavyMissed  int     `json:"heavy_missed"`
	FalseNegRate float64 `json:"false_neg_rate"`
	FalsePos     int     `json:"false_pos"`

	// Count-min estimate error over the true heavy set, relative to
	// each flow's true count.
	MeanRelErr float64 `json:"mean_rel_err"`
	MaxRelErr  float64 `json:"max_rel_err"`

	// Distinct-flow estimate (HyperLogLog) against the exact oracle.
	DistinctEst    int     `json:"distinct_est"`
	DistinctRelErr float64 `json:"distinct_rel_err"`
}

// TrafficSweepReport is a full analytics sweep.
type TrafficSweepReport struct {
	Seed      int64               `json:"seed"`
	DurationS float64             `json:"duration_s"`
	Epsilon   float64             `json:"epsilon"`
	Delta     float64             `json:"delta"`
	Precision int                 `json:"precision"`
	TopK      int                 `json:"top_k"`
	HeavyFrac float64             `json:"heavy_frac"`
	Points    []TrafficSweepPoint `json:"points"`
}

// RunTrafficSweep executes the flow-count grid. Each point owns its
// whole world — simulator, topology, counters — with every stochastic
// stream derived from the seed and the grid position, so the report is
// byte-identical at any worker count. reg (optional) receives the
// sketch estimate-error histogram and the engine's wall-clock
// packets/sec and events/sec gauges; those live outside the report
// because wall time is not reproducible.
func RunTrafficSweep(cfg TrafficSweepConfig, reg *telemetry.Registry) (*TrafficSweepReport, error) {
	counts := cfg.FlowCounts
	if len(counts) == 0 {
		counts = []int{10_000, 100_000, 1_000_000}
	}
	for _, n := range counts {
		if n <= 0 {
			return nil, fmt.Errorf("scenario: traffic sweep flow count %d must be positive", n)
		}
	}
	dur := cfg.DurationS
	if dur <= 0 {
		dur = 1.0
	}
	eps := cfg.Epsilon
	if eps == 0 {
		eps = 1e-4
	}
	delta := cfg.Delta
	if delta == 0 {
		delta = 0.01
	}
	prec := cfg.Precision
	if prec == 0 {
		prec = 14
	}
	topK := cfg.TopK
	if topK == 0 {
		topK = 2048
	}
	heavyFrac := cfg.HeavyFrac
	if heavyFrac == 0 {
		heavyFrac = 0.001
	}
	if _, err := sketch.NewCountMin(eps, delta, 1); err != nil {
		return nil, fmt.Errorf("scenario: traffic sweep: %w", err)
	}
	if prec < int(sketch.MinPrecision) || prec > int(sketch.MaxPrecision) {
		return nil, fmt.Errorf("scenario: traffic sweep precision %d outside [%d, %d]",
			prec, sketch.MinPrecision, sketch.MaxPrecision)
	}

	rep := &TrafficSweepReport{
		Seed: cfg.Seed, DurationS: dur, Epsilon: eps, Delta: delta,
		Precision: prec, TopK: topK, HeavyFrac: heavyFrac,
		Points: make([]TrafficSweepPoint, len(counts)),
	}
	var errHist *telemetry.Histogram
	if reg != nil {
		errHist = reg.Histogram(core.MetricSketchError, core.SketchErrorBuckets)
	}
	start := time.Now()
	parallel.ForEach(len(counts), parallel.Workers(cfg.Workers), func(i int) {
		seed := mixSeed(cfg.Seed*1000 + int64(i))
		rep.Points[i] = runTrafficPoint(counts[i], dur, eps, delta, uint8(prec), topK, heavyFrac, seed, errHist)
	})
	if reg != nil {
		var totalPackets, totalEvents uint64
		for _, pt := range rep.Points {
			totalPackets += pt.Packets
			totalEvents += pt.Events
		}
		wall := time.Since(start).Seconds()
		if wall > 0 {
			reg.Gauge(core.MetricTrafficPPS).Set(float64(totalPackets) / wall)
			reg.Gauge(core.MetricTrafficEPS).Set(float64(totalEvents) / wall)
		}
	}
	return rep, nil
}

// trafficFlowSpecs builds a Zipf flow population: flow rank r carries
// weight (r+1)^-1.1, floored at two packets per duration so every
// configured flow emits. The flow index is encoded in the source
// address (10.x.y.z) so the measurement tap recovers it without
// hashing the full five-tuple.
func trafficFlowSpecs(n int, dur float64) []netsim.FlowSpec {
	dst := netip.AddrFrom4([4]byte{10, 255, 255, 254})
	specs := make([]netsim.FlowSpec, n)
	// Zipf mass scaled so the skewed head carries ~2n packets on top
	// of the ~2n-packet floor.
	var mass float64
	for i := 0; i < n; i++ {
		mass += math.Pow(float64(i+1), -1.1)
	}
	scale := 2 * float64(n) / (mass * dur)
	floor := 2 / dur
	for i := 0; i < n; i++ {
		pps := scale * math.Pow(float64(i+1), -1.1)
		if pps < floor {
			pps = floor
		}
		specs[i] = netsim.FlowSpec{
			Flow: netsim.FiveTuple{
				Src:     netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)}),
				Dst:     dst,
				SrcPort: uint16(1024 + i%60000),
				DstPort: 80,
				Proto:   netsim.ProtoUDP,
			},
			PPS:  pps,
			Size: 200,
		}
	}
	return specs
}

// flowKey recovers the flow index a trafficFlowSpecs entry encoded in
// the source address. It allocates nothing.
func flowKey(f *netsim.FiveTuple) uint64 {
	b := f.Src.As4()
	return uint64(b[1])<<16 | uint64(b[2])<<8 | uint64(b[3])
}

// runTrafficPoint drives one flow population through the pooled engine
// with the exact oracle and the sketch stack tapping the same stream.
func runTrafficPoint(flows int, dur, eps, delta float64, prec uint8, topK int, heavyFrac float64, seed int64, errHist *telemetry.Histogram) TrafficSweepPoint {
	sim := netsim.NewSim()
	sim.EnablePacketPool()
	h1 := netsim.NewHost(sim, "h1", netsim.MustAddr("10.255.255.253"))
	h2 := netsim.NewHost(sim, "h2", netsim.MustAddr("10.255.255.254"))
	sw := netsim.NewSwitch(sim, "s1")
	netsim.Connect(sim, h1, 1, sw, 1, 1e12, 1e-6, 0)
	netsim.Connect(sim, sw, 2, h2, 1, 1e12, 1e-6, 0)
	sw.InstallRule(netsim.Rule{Match: netsim.Match{Dst: h2.Addr}, Action: netsim.Output(2)})

	exact := core.NewExactFlowCounter()
	cms, _ := sketch.NewCountMin(eps, delta, uint64(seed))
	cms.Conservative = true
	hll, _ := sketch.NewHyperLogLog(prec, uint64(seed))
	tk, _ := sketch.NewTopK(topK)
	sw.Tap = func(pkt *netsim.Packet, _ int) {
		key := flowKey(&pkt.Flow)
		exact.Add(key, 1)
		cms.Update(key, 1)
		hll.Add(key)
		tk.Update(key, 1)
	}

	fs := netsim.StartFlowSet(sim, h1, netsim.FlowSetConfig{
		Specs: trafficFlowSpecs(flows, dur),
		Start: 0, Stop: dur, Seed: seed,
	})
	sim.RunUntil(dur + 1)

	pt := TrafficSweepPoint{
		Flows:         flows,
		FlowsSeen:     exact.Keys(),
		Packets:       fs.Sent,
		Events:        sim.Events,
		PoolRecycled:  sim.PacketsPooled,
		PoolAllocated: sim.PacketsAllocated,
		ExactBytes:    exact.Bytes(),
		SketchBytes:   cms.Bytes() + hll.Bytes() + tk.Bytes(),
	}
	if pt.SketchBytes > 0 {
		pt.StateRatio = float64(pt.ExactBytes) / float64(pt.SketchBytes)
	}

	// Ground truth: flows at or above the heavy threshold.
	thresh := uint64(math.Ceil(heavyFrac * float64(pt.Packets)))
	if thresh == 0 {
		thresh = 1
	}
	trueHeavy := make(map[uint64]uint64)
	exact.Each(func(key, count uint64) {
		if count >= thresh {
			trueHeavy[key] = count
		}
	})
	pt.HeavyTrue = len(trueHeavy)

	// Sketch-side detection: top-k entries whose tracked count clears
	// the threshold.
	found := make(map[uint64]bool)
	for _, it := range tk.Items() {
		if it.Count >= thresh {
			found[it.Key] = true
			if _, ok := trueHeavy[it.Key]; !ok {
				pt.FalsePos++
			}
		}
	}
	pt.HeavyFound = len(found)
	var sumRel, maxRel float64
	for key, truth := range trueHeavy {
		if !found[key] {
			pt.HeavyMissed++
		}
		rel := (float64(cms.Estimate(key)) - float64(truth)) / float64(truth)
		sumRel += rel
		if rel > maxRel {
			maxRel = rel
		}
		if errHist != nil {
			errHist.Observe(rel)
		}
	}
	if pt.HeavyTrue > 0 {
		pt.FalseNegRate = float64(pt.HeavyMissed) / float64(pt.HeavyTrue)
		pt.MeanRelErr = sumRel / float64(pt.HeavyTrue)
		pt.MaxRelErr = maxRel
	}

	pt.DistinctEst = int(hll.Estimate() + 0.5)
	if pt.FlowsSeen > 0 {
		pt.DistinctRelErr = math.Abs(float64(pt.DistinctEst)-float64(pt.FlowsSeen)) / float64(pt.FlowsSeen)
	}
	return pt
}

// Table renders the sweep as a fixed-width comparison table.
func (r *TrafficSweepReport) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "traffic analytics sweep: seed=%d eps=%g delta=%g p=%d k=%d heavy>=%.2f%%\n",
		r.Seed, r.Epsilon, r.Delta, r.Precision, r.TopK, 100*r.HeavyFrac)
	fmt.Fprintf(&b, "%9s %9s %9s  %10s %10s %7s  %5s %6s %6s  %8s %8s\n",
		"flows", "seen", "packets", "exact", "sketch", "ratio", "hh", "missed", "fnrate", "cms-err", "hll-err")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%9d %9d %9d  %10s %10s %6.1fx  %5d %6d %5.2f%%  %7.3f%% %7.3f%%\n",
			p.Flows, p.FlowsSeen, p.Packets,
			fmtBytes(p.ExactBytes), fmtBytes(p.SketchBytes), p.StateRatio,
			p.HeavyTrue, p.HeavyMissed, 100*p.FalseNegRate,
			100*p.MeanRelErr, 100*p.DistinctRelErr)
	}
	return b.String()
}

// fmtBytes renders a byte count with a binary-ish unit.
func fmtBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
