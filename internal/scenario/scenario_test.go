package scenario

import (
	"os"
	"strings"
	"testing"
)

const demoScenario = `{
  "name": "demo",
  "seed": 7,
  "duration_s": 6,
  "switches": [{"name": "s1", "x": 1.2, "y": 0}],
  "hosts": [
    {"name": "h1", "addr": "10.0.0.1", "switch": "s1", "port": 1},
    {"name": "h2", "addr": "10.0.0.2", "switch": "s1", "port": 2}
  ],
  "rules": [
    {"switch": "s1", "priority": 1, "dst": "10.0.0.2", "action": "output", "ports": [2]}
  ],
  "apps": [
    {"type": "heavyhitter", "switch": "s1", "buckets": 12},
    {"type": "portscan", "switch": "s1", "first_port": 8000, "num_ports": 12, "threshold": 8},
    {"type": "heartbeat", "switch": "s1"}
  ],
  "traffic": [
    {"type": "cbr", "from": "h1", "to": "h2", "src_port": 5000, "dst_port": 80,
     "pps": 250, "size": 1500, "start_s": 0.2, "stop_s": 6},
    {"type": "portscan", "from": "h1", "to": "h2", "src_port": 4444,
     "first_port": 8000, "num_ports": 12, "interval_ms": 250, "start_s": 1}
  ],
  "noise": [{"type": "song", "level": 0.01, "x": -2, "y": 1}]
}`

func TestLoadAndRunDemo(t *testing.T) {
	cfg, err := Load(strings.NewReader(demoScenario))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Name != "demo" || rep.DurationS != 6 {
		t.Errorf("report header: %+v", rep)
	}
	if rep.WindowsAnalysed < 100 {
		t.Errorf("windows = %d", rep.WindowsAnalysed)
	}
	if rep.TonesDetected == 0 {
		t.Error("no tones detected")
	}
	if len(rep.Hosts) != 2 || rep.Hosts[1].RxPackets == 0 {
		t.Errorf("host reports: %+v", rep.Hosts)
	}
	byType := map[string]AppReport{}
	for _, a := range rep.Apps {
		byType[a.Type] = a
	}
	if len(byType["heavyhitter"].Events) == 0 {
		t.Errorf("heavy hitter saw nothing: %+v", byType["heavyhitter"])
	}
	if len(byType["portscan"].Events) == 0 {
		t.Errorf("port scan saw nothing: %+v", byType["portscan"])
	}
	if len(byType["heartbeat"].Events) != 0 {
		t.Errorf("live heartbeat raised alerts: %+v", byType["heartbeat"])
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() *Report {
		cfg, err := Load(strings.NewReader(demoScenario))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.TonesDetected != b.TonesDetected || a.WindowsAnalysed != b.WindowsAnalysed {
		t.Errorf("non-deterministic: %d/%d vs %d/%d",
			a.TonesDetected, a.WindowsAnalysed, b.TonesDetected, b.WindowsAnalysed)
	}
	if len(a.Apps) != len(b.Apps) {
		t.Fatal("app report count differs")
	}
	for i := range a.Apps {
		if len(a.Apps[i].Events) != len(b.Apps[i].Events) {
			t.Errorf("app %d events differ: %d vs %d",
				i, len(a.Apps[i].Events), len(b.Apps[i].Events))
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]string{
		"bad json":         `{`,
		"unknown field":    `{"duration_s": 1, "switches": [{"name":"s"}], "bogus": 1}`,
		"no duration":      `{"switches": [{"name":"s"}]}`,
		"no switches":      `{"duration_s": 1}`,
		"dup switch":       `{"duration_s":1,"switches":[{"name":"s"},{"name":"s"}]}`,
		"empty switch":     `{"duration_s":1,"switches":[{"name":""}]}`,
		"host bad switch":  `{"duration_s":1,"switches":[{"name":"s"}],"hosts":[{"name":"h","addr":"10.0.0.1","switch":"x","port":1}]}`,
		"host bad addr":    `{"duration_s":1,"switches":[{"name":"s"}],"hosts":[{"name":"h","addr":"nope","switch":"s","port":1}]}`,
		"dup host":         `{"duration_s":1,"switches":[{"name":"s"}],"hosts":[{"name":"h","addr":"10.0.0.1","switch":"s","port":1},{"name":"h","addr":"10.0.0.2","switch":"s","port":2}]}`,
		"empty host":       `{"duration_s":1,"switches":[{"name":"s"}],"hosts":[{"name":"","addr":"10.0.0.1","switch":"s","port":1}]}`,
		"bad link":         `{"duration_s":1,"switches":[{"name":"s"}],"links":[{"a":"s","a_port":1,"b":"x","b_port":1}]}`,
		"bad rule action":  `{"duration_s":1,"switches":[{"name":"s"}],"rules":[{"switch":"s","action":"teleport"}]}`,
		"rule no ports":    `{"duration_s":1,"switches":[{"name":"s"}],"rules":[{"switch":"s","action":"output"}]}`,
		"rule bad switch":  `{"duration_s":1,"switches":[{"name":"s"}],"rules":[{"switch":"x","action":"drop"}]}`,
		"bad app type":     `{"duration_s":1,"switches":[{"name":"s"}],"apps":[{"type":"magic","switch":"s"}]}`,
		"app bad switch":   `{"duration_s":1,"switches":[{"name":"s"}],"apps":[{"type":"heartbeat","switch":"x"}]}`,
		"hh no buckets":    `{"duration_s":1,"switches":[{"name":"s"}],"apps":[{"type":"heavyhitter","switch":"s"}]}`,
		"scan no ports":    `{"duration_s":1,"switches":[{"name":"s"}],"apps":[{"type":"portscan","switch":"s"}]}`,
		"qm no port":       `{"duration_s":1,"switches":[{"name":"s"}],"apps":[{"type":"queuemon","switch":"s"}]}`,
		"traffic unknown":  `{"duration_s":1,"switches":[{"name":"s"}],"hosts":[{"name":"h","addr":"10.0.0.1","switch":"s","port":1}],"traffic":[{"type":"warp","from":"h","to":"h","start_s":0,"stop_s":1}]}`,
		"traffic bad host": `{"duration_s":1,"switches":[{"name":"s"}],"hosts":[{"name":"h","addr":"10.0.0.1","switch":"s","port":1}],"traffic":[{"type":"cbr","from":"x","to":"h","pps":1,"start_s":0,"stop_s":1}]}`,
		"traffic bad time": `{"duration_s":1,"switches":[{"name":"s"}],"hosts":[{"name":"h","addr":"10.0.0.1","switch":"s","port":1}],"traffic":[{"type":"cbr","from":"h","to":"h","pps":1,"start_s":2,"stop_s":1}]}`,
		"traffic no pps":   `{"duration_s":1,"switches":[{"name":"s"}],"hosts":[{"name":"h","addr":"10.0.0.1","switch":"s","port":1}],"traffic":[{"type":"cbr","from":"h","to":"h","start_s":0,"stop_s":1}]}`,
		"bad noise":        `{"duration_s":1,"switches":[{"name":"s"}],"noise":[{"type":"thunder"}]}`,
	}
	for name, js := range cases {
		if _, err := Load(strings.NewReader(js)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestQueueMonScenario(t *testing.T) {
	js := `{
	  "name": "qm", "seed": 3, "duration_s": 8,
	  "switches": [{"name": "s1", "x": 1}],
	  "hosts": [
	    {"name": "h1", "addr": "10.0.0.1", "switch": "s1", "port": 1},
	    {"name": "h2", "addr": "10.0.0.2", "switch": "s1", "port": 2,
	     "rate_mbps": 1, "queue": 200}
	  ],
	  "rules": [{"switch":"s1","priority":1,"dst":"10.0.0.2","action":"output","ports":[2]}],
	  "apps": [{"type": "queuemon", "switch": "s1", "port": 2}],
	  "traffic": [{"type": "ramp", "from": "h1", "to": "h2", "src_port": 1,
	    "dst_port": 2, "pps": 50, "end_pps": 300, "size": 1500,
	    "start_s": 0.2, "stop_s": 4}]
	}`
	cfg, err := Load(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var qm AppReport
	for _, a := range rep.Apps {
		if a.Type == "queuemon" {
			qm = a
		}
	}
	joined := strings.Join(qm.Events, ",")
	if !strings.Contains(joined, "high") || !strings.HasPrefix(joined, "low") {
		t.Errorf("queue levels = %v", qm.Events)
	}
}

func TestTwoSwitchScenarioWithNoise(t *testing.T) {
	js := `{
	  "name": "two-switch", "seed": 11, "duration_s": 5,
	  "switches": [{"name": "s1", "x": 1}, {"name": "s2", "x": -1}],
	  "hosts": [
	    {"name": "h1", "addr": "10.0.0.1", "switch": "s1", "port": 1},
	    {"name": "h2", "addr": "10.0.0.2", "switch": "s2", "port": 1, "latency_ms": 0.5}
	  ],
	  "links": [{"a": "s1", "a_port": 5, "b": "s2", "b_port": 5, "rate_mbps": 100}],
	  "rules": [
	    {"switch": "s1", "priority": 1, "dst": "10.0.0.2", "action": "output", "ports": [5]},
	    {"switch": "s2", "priority": 1, "dst": "10.0.0.2", "action": "output", "ports": [1]},
	    {"switch": "s2", "priority": 0, "action": "drop"},
	    {"switch": "s1", "priority": 0, "dst_port": 9, "action": "hashsplit", "ports": [5]},
	    {"switch": "s1", "priority": 0, "dst_port": 10, "action": "split", "ports": [5]}
	  ],
	  "apps": [
	    {"type": "heavyhitter", "switch": "s1", "buckets": 8, "threshold": 4},
	    {"type": "heartbeat", "switch": "s2", "period_s": 0.8}
	  ],
	  "traffic": [
	    {"type": "cbr", "from": "h1", "to": "h2", "src_port": 7, "dst_port": 80,
	     "pps": 200, "size": 1000, "start_s": 0.2, "stop_s": 5}
	  ],
	  "noise": [
	    {"type": "office", "x": 0, "y": 3},
	    {"type": "datacenter", "x": 5, "y": 5}
	  ]
	}`
	cfg, err := Load(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Hosts[1].RxPackets == 0 {
		t.Error("cross-switch traffic not delivered")
	}
	foundHH := false
	for _, a := range rep.Apps {
		if a.Type == "heavyhitter" && len(a.Events) > 0 {
			foundHH = true
		}
		if a.Type == "heartbeat" && len(a.Events) != 0 {
			t.Errorf("live heartbeat alerted: %v", a.Events)
		}
	}
	if !foundHH {
		t.Error("heavy hitter missed the elephant across noise")
	}
}

func TestDDoSScenarioAlertsOnlyDuringFlood(t *testing.T) {
	f, err := os.Open("../../scenarios/ddos.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	cfg, err := Load(f)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var dd AppReport
	for _, a := range rep.Apps {
		if a.Type == "ddos" {
			dd = a
		}
	}
	if len(dd.Events) == 0 {
		t.Fatal("flood raised no alerts")
	}
	// The flood starts at t=3; no alert may predate it.
	for _, e := range dd.Events {
		if strings.HasPrefix(e, "t=1.") || strings.HasPrefix(e, "t=2.") || strings.HasPrefix(e, "t=3.0") {
			t.Errorf("alert before the flood: %s", e)
		}
	}
}

// TestStreamScenarioEquivalentToBatchAtFullWindow runs the demo
// scenario on both detection paths with the streaming hop set to the
// full window: every observable — window count, tone count, every
// application's event log, host traffic — must be identical, because at
// hop == window the streaming pipeline is bit-exact with the batch
// loop. This is the CI equivalence smoke in miniature.
func TestStreamScenarioEquivalentToBatchAtFullWindow(t *testing.T) {
	run := func(stream bool) *Report {
		cfg, err := Load(strings.NewReader(demoScenario))
		if err != nil {
			t.Fatal(err)
		}
		if stream {
			cfg.Stream = true
			cfg.HopS = 0.050
			if err := cfg.Validate(); err != nil {
				t.Fatal(err)
			}
		}
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	batch, streamed := run(false), run(true)
	if streamed.Stream == nil {
		t.Fatal("stream run carries no stream report")
	}
	if streamed.WindowsAnalysed != batch.WindowsAnalysed {
		t.Errorf("windows: stream %d != batch %d", streamed.WindowsAnalysed, batch.WindowsAnalysed)
	}
	if streamed.TonesDetected != batch.TonesDetected {
		t.Errorf("tones: stream %d != batch %d", streamed.TonesDetected, batch.TonesDetected)
	}
	if len(streamed.Apps) != len(batch.Apps) {
		t.Fatalf("app report counts differ: %d vs %d", len(streamed.Apps), len(batch.Apps))
	}
	for i := range batch.Apps {
		b, s := batch.Apps[i], streamed.Apps[i]
		if b.Type != s.Type || strings.Join(b.Events, "|") != strings.Join(s.Events, "|") {
			t.Errorf("app %s events diverged:\nstream: %v\nbatch:  %v", b.Type, s.Events, b.Events)
		}
	}
	for i := range batch.Hosts {
		if batch.Hosts[i] != streamed.Hosts[i] {
			t.Errorf("host %s traffic diverged: %+v vs %+v",
				batch.Hosts[i].Name, streamed.Hosts[i], batch.Hosts[i])
		}
	}
}

// TestStreamScenarioReportsLatency runs the demo scenario on the
// streaming path at the default 10 ms hop and checks the published
// latency budget: the pipeline hops five times per window, detects
// onsets, and reports sub-window sound-to-detection percentiles.
func TestStreamScenarioReportsLatency(t *testing.T) {
	cfg, err := Load(strings.NewReader(demoScenario))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Stream = true
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Stream
	if s == nil {
		t.Fatal("no stream report")
	}
	if s.HopS != DefaultHopS {
		t.Errorf("hop = %g, want default %g", s.HopS, DefaultHopS)
	}
	if s.Hops < 500 {
		t.Errorf("hops = %d, want ~600 over 6 s at 10 ms", s.Hops)
	}
	if s.Onsets == 0 {
		t.Error("no onsets detected")
	}
	if s.CaptureErrors != 0 {
		t.Errorf("capture errors = %d", s.CaptureErrors)
	}
	if s.DetectP50 <= 0 || s.DetectP50 > 0.050 {
		t.Errorf("p50 latency = %gs, want sub-window", s.DetectP50)
	}
	if s.DetectP99 < s.DetectP50 || s.DetectP99 > 0.2 {
		t.Errorf("p99 latency = %gs, want >= p50 and attributable (< 0.2s)", s.DetectP99)
	}
}

func TestValidateRejectsBadStreamConfig(t *testing.T) {
	cases := map[string]string{
		"hop without stream": `{"duration_s":1,"switches":[{"name":"s"}],"hop_s":0.01}`,
		"misaligned hop":     `{"duration_s":1,"switches":[{"name":"s"}],"stream":true,"hop_s":0.012}`,
		"negative hop":       `{"duration_s":1,"switches":[{"name":"s"}],"stream":true,"hop_s":-0.01}`,
	}
	for name, js := range cases {
		if _, err := Load(strings.NewReader(js)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestScenarioDeviceFaultsSelfHeal drives the declarative JSON route
// through the same arc the chaos pipeline proves imperatively: a
// three-microphone fleet, a noise-ramped mic that is repaired mid-run,
// and a persistently detuned speaker. The report must carry a Devices
// section showing the recalibration, the quarantine round-trip, and
// the re-key — and the heartbeat app must keep hearing its device
// through the re-key (no false death alert).
func TestScenarioDeviceFaultsSelfHeal(t *testing.T) {
	js := `{
	  "name": "degrading", "seed": 7, "duration_s": 12,
	  "switches": [{"name": "s1", "x": 1}],
	  "mics": [{"name": "m1", "y": 1}, {"name": "m2", "y": 2}],
	  "apps": [{"type": "heartbeat", "switch": "s1", "period_s": 0.3}],
	  "device_faults": [
	    {"kind": "mic_noise_ramp", "device": "m1", "start_s": 2, "end_s": 2.5,
	     "level": 0.5, "clear_s": 6},
	    {"kind": "speaker_detune", "device": "s1", "start_s": 3, "end_s": 3.5,
	     "level": 1.04}
	  ]
	}`
	cfg, err := Load(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Devices) != 4 {
		t.Fatalf("%d device rows, want 4 (3 mics + 1 speaker): %+v", len(rep.Devices), rep.Devices)
	}
	byName := map[string]struct {
		state                          string
		recals, quars, rejoins, rekeys uint64
		quarantined                    bool
	}{}
	for _, d := range rep.Devices {
		byName[d.Kind+"/"+d.Name] = struct {
			state                          string
			recals, quars, rejoins, rekeys uint64
			quarantined                    bool
		}{d.State, d.Recalibrations, d.Quarantines, d.Rejoins, d.Rekeys, d.Quarantined}
	}
	m1 := byName["mic/m1"]
	if m1.recals == 0 || m1.quars == 0 || m1.rejoins == 0 {
		t.Errorf("m1 recal=%d quarantines=%d rejoins=%d, want all > 0",
			m1.recals, m1.quars, m1.rejoins)
	}
	if m1.quarantined {
		t.Error("m1 still quarantined after the repair")
	}
	s1 := byName["speaker/s1"]
	if s1.state != "detuned" || s1.rekeys == 0 {
		t.Errorf("s1 state=%s rekeys=%d, want detuned with a re-key", s1.state, s1.rekeys)
	}
	if rep.Health == nil || rep.Health.StateName != "degraded" {
		t.Fatalf("health %+v, want degraded (persistent detune)", rep.Health)
	}
	for _, a := range rep.Apps {
		if a.Type == "heartbeat" && len(a.Events) != 0 {
			t.Errorf("heartbeat alerted through the re-key: %v", a.Events)
		}
	}
}

func TestValidateRejectsBadDeviceConfig(t *testing.T) {
	cases := map[string]string{
		"dup mic":         `{"duration_s":1,"switches":[{"name":"s"}],"mics":[{"name":"m"},{"name":"m"}]}`,
		"reserved mic":    `{"duration_s":1,"switches":[{"name":"s"}],"mics":[{"name":"controller"}]}`,
		"empty mic":       `{"duration_s":1,"switches":[{"name":"s"}],"mics":[{"name":""}]}`,
		"neg mic noise":   `{"duration_s":1,"switches":[{"name":"s"}],"mics":[{"name":"m","noise_rms":-1}]}`,
		"bad fault kind":  `{"duration_s":1,"switches":[{"name":"s"}],"device_faults":[{"kind":"rust","device":"s","start_s":0,"end_s":1,"level":0}]}`,
		"unknown mic":     `{"duration_s":1,"switches":[{"name":"s"}],"device_faults":[{"kind":"mic_noise_ramp","device":"x","start_s":0,"end_s":1,"level":0.1}]}`,
		"unknown speaker": `{"duration_s":1,"switches":[{"name":"s"}],"device_faults":[{"kind":"speaker_detune","device":"x","start_s":0,"end_s":1,"level":1.04}]}`,
		"bad times":       `{"duration_s":1,"switches":[{"name":"s"}],"device_faults":[{"kind":"speaker_decay","device":"s","start_s":1,"end_s":1,"level":0.5}]}`,
		"neg level":       `{"duration_s":1,"switches":[{"name":"s"}],"device_faults":[{"kind":"speaker_decay","device":"s","start_s":0,"end_s":1,"level":-0.5}]}`,
		"zero detune":     `{"duration_s":1,"switches":[{"name":"s"}],"device_faults":[{"kind":"speaker_detune","device":"s","start_s":0,"end_s":1,"level":0}]}`,
		"clear early":     `{"duration_s":1,"switches":[{"name":"s"}],"device_faults":[{"kind":"speaker_decay","device":"s","start_s":0,"end_s":2,"level":0.5,"clear_s":1}]}`,
		"overlap": `{"duration_s":1,"switches":[{"name":"s"}],"device_faults":[
			{"kind":"speaker_decay","device":"s","start_s":0,"end_s":2,"level":0.5,"clear_s":3},
			{"kind":"speaker_decay","device":"s","start_s":4,"end_s":5,"level":0.1}]}`,
	}
	for name, js := range cases {
		if _, err := Load(strings.NewReader(js)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestValidateRejectsBadSpreadApp(t *testing.T) {
	cases := map[string]string{
		"ddos no buckets": `{"duration_s":1,"switches":[{"name":"s"}],"apps":[{"type":"ddos","switch":"s","watch":"10.0.0.1"}]}`,
		"ddos bad watch":  `{"duration_s":1,"switches":[{"name":"s"}],"apps":[{"type":"ddos","switch":"s","buckets":8,"watch":"nope"}]}`,
		"neg amplitude":   `{"duration_s":1,"switches":[{"name":"s"}],"min_amplitude":-1}`,
	}
	for name, js := range cases {
		if _, err := Load(strings.NewReader(js)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
