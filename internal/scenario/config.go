// Package scenario runs Music-Defined Networking deployments
// described declaratively in JSON: an acoustic room, a switch/host
// topology, MDN applications, traffic, and background noise. It is
// the adoption surface of the library — cmd/mdnsim feeds it a file
// and prints the resulting report.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"net/netip"

	"mdn/internal/core"
)

// Config is the root of a scenario description.
type Config struct {
	// Name labels the scenario in reports.
	Name string `json:"name"`
	// Seed drives every stochastic component.
	Seed int64 `json:"seed"`
	// DurationS is the simulated run length in seconds.
	DurationS float64 `json:"duration_s"`

	// Switches to create. Every switch gets a speaker at its
	// position and speaks the Music Protocol.
	Switches []SwitchConfig `json:"switches"`
	// Hosts to create, each attached to one switch.
	Hosts []HostConfig `json:"hosts"`
	// Links are extra switch-to-switch connections.
	Links []LinkConfig `json:"links,omitempty"`
	// Rules pre-populate flow tables.
	Rules []RuleConfig `json:"rules,omitempty"`
	// Apps are the MDN applications to deploy.
	Apps []AppConfig `json:"apps"`
	// Traffic generators to run.
	Traffic []TrafficConfig `json:"traffic,omitempty"`
	// Noise sources in the room.
	Noise []NoiseConfig `json:"noise,omitempty"`
	// Mics adds extra listening points: the controller fans each
	// analysis window over every microphone (fleet engine) and merges
	// detections by (time, frequency). The primary microphone
	// "controller" at the origin is always present.
	Mics []MicConfig `json:"mics,omitempty"`
	// DeviceFaults schedules deterministic hardware degradation on
	// named microphones and switch speakers: noise-floor ramps,
	// sensitivity loss, output decay, detuning. Any entry (or any extra
	// microphone) enables the device-health monitor — detection
	// thresholds recalibrate as noise climbs, deaf microphones are
	// quarantined and rejoin when they recover, detuned speakers are
	// re-keyed, dead ones muted — and the report gains a Devices
	// section.
	DeviceFaults []DeviceFaultConfig `json:"device_faults,omitempty"`
	// MinAmplitude overrides the controller's detection floor
	// (linear tone amplitude at the microphone). Deployments with
	// loud ambience calibrate this above the background's tonal
	// components and below the switch tones; 0 keeps the default.
	MinAmplitude float64 `json:"min_amplitude,omitempty"`
	// Faults, when set, arms deterministic wire-fault injection on
	// every switch's MP control hop (the switch→Pi sounder path). The
	// fault stream derives from Seed, so faulty runs replay exactly.
	Faults *FaultsConfig `json:"faults,omitempty"`
	// Stream switches the controller to the streaming low-latency
	// detection path: the analysis window advances by HopS per step
	// instead of a whole window, so tones are detected within one hop
	// of onset. Applications behave identically (they see one window
	// batch per hop); the report gains a Stream section with the
	// sound-to-detection latency percentiles.
	Stream bool `json:"stream,omitempty"`
	// HopS is the streaming hop in seconds (only with Stream). It must
	// divide the 50 ms analysis window into an integer number of
	// integer samples at 44.1 kHz; 0 means DefaultHopS.
	HopS float64 `json:"hop_s,omitempty"`
}

// DefaultHopS is the default streaming hop: 10 ms, one fifth of the
// controller's 50 ms window (the largest even subdivision that is also
// a whole number of samples at 44.1 kHz — 441 per hop).
const DefaultHopS = 0.010

// FaultsConfig describes the injected wire faults of a chaos run.
type FaultsConfig struct {
	// DropProb is the probability a whole MP message is lost.
	DropProb float64 `json:"drop_prob,omitempty"`
	// FlipProb is the probability one random bit is inverted.
	FlipProb float64 `json:"flip_prob,omitempty"`
	// TruncProb is the probability the message is cut short.
	TruncProb float64 `json:"trunc_prob,omitempty"`
	// JitterMaxS is the maximum extra one-way latency in seconds.
	JitterMaxS float64 `json:"jitter_max_s,omitempty"`
}

// SwitchConfig places one switch (and its speaker) in the room.
type SwitchConfig struct {
	Name string  `json:"name"`
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
}

// HostConfig attaches a host to a switch port.
type HostConfig struct {
	Name   string `json:"name"`
	Addr   string `json:"addr"`
	Switch string `json:"switch"`
	Port   int    `json:"port"`
	// Link parameters (defaults: 1000 Mbps, 0.1 ms, unbounded).
	RateMbps  float64 `json:"rate_mbps,omitempty"`
	LatencyMs float64 `json:"latency_ms,omitempty"`
	Queue     int     `json:"queue,omitempty"`
}

// LinkConfig joins two switches.
type LinkConfig struct {
	A         string  `json:"a"`
	APort     int     `json:"a_port"`
	B         string  `json:"b"`
	BPort     int     `json:"b_port"`
	RateMbps  float64 `json:"rate_mbps,omitempty"`
	LatencyMs float64 `json:"latency_ms,omitempty"`
	Queue     int     `json:"queue,omitempty"`
}

// RuleConfig pre-installs a flow rule.
type RuleConfig struct {
	Switch   string `json:"switch"`
	Priority int    `json:"priority"`
	Dst      string `json:"dst,omitempty"`
	DstPort  uint16 `json:"dst_port,omitempty"`
	// Action: output, drop, split, hashsplit.
	Action string `json:"action"`
	Ports  []int  `json:"ports,omitempty"`
}

// AppConfig deploys one MDN application on a switch.
type AppConfig struct {
	// Type: heavyhitter, portscan, queuemon, heartbeat, ddos,
	// superspreader.
	Type   string `json:"type"`
	Switch string `json:"switch"`

	// heavyhitter, ddos, superspreader.
	Buckets   int `json:"buckets,omitempty"`
	Threshold int `json:"threshold,omitempty"`
	// portscan.
	FirstPort uint16 `json:"first_port,omitempty"`
	NumPorts  int    `json:"num_ports,omitempty"`
	// queuemon.
	Port int `json:"port,omitempty"`
	// heartbeat.
	PeriodS float64 `json:"period_s,omitempty"`
	// ddos (the protected host) / superspreader (the suspect host):
	// the address under watch.
	Watch string `json:"watch,omitempty"`

	// Analytics selects the counting store behind the detection apps:
	// "" or "exact" keeps the exact per-interval maps (the accuracy
	// baseline); "sketch" bounds memory with a count-min sketch
	// (heavyhitter) or HyperLogLog (portscan, ddos, superspreader),
	// seeded from the scenario seed so runs replay exactly.
	Analytics string `json:"analytics,omitempty"`
	// SketchEpsilon is the count-min relative error budget (0 means
	// DefaultSketchEpsilon). Only with analytics="sketch".
	SketchEpsilon float64 `json:"sketch_epsilon,omitempty"`
	// SketchDelta is the count-min error-bound failure probability
	// (0 means DefaultSketchDelta). Only with analytics="sketch".
	SketchDelta float64 `json:"sketch_delta,omitempty"`
	// SketchPrecision is the HyperLogLog precision p, registers=2^p
	// (0 means DefaultSketchPrecision). Only with analytics="sketch".
	SketchPrecision int `json:"sketch_precision,omitempty"`
}

// Default sketch knobs for analytics="sketch" apps.
const (
	DefaultSketchEpsilon   = 0.01
	DefaultSketchDelta     = 0.01
	DefaultSketchPrecision = 12
)

// TrafficConfig runs one generator.
type TrafficConfig struct {
	// Type: cbr, poisson, ramp, portscan.
	Type    string  `json:"type"`
	From    string  `json:"from"`
	To      string  `json:"to"`
	SrcPort uint16  `json:"src_port,omitempty"`
	DstPort uint16  `json:"dst_port,omitempty"`
	PPS     float64 `json:"pps,omitempty"`
	EndPPS  float64 `json:"end_pps,omitempty"` // ramp
	Size    int     `json:"size,omitempty"`
	StartS  float64 `json:"start_s"`
	StopS   float64 `json:"stop_s"`
	// portscan.
	FirstPort  uint16  `json:"first_port,omitempty"`
	NumPorts   int     `json:"num_ports,omitempty"`
	IntervalMs float64 `json:"interval_ms,omitempty"`
}

// MicConfig places one extra controller microphone in the room.
type MicConfig struct {
	Name string  `json:"name"`
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
	// NoiseRMS is the microphone's electronics noise floor (linear
	// RMS); 0 means the 0.0005 default.
	NoiseRMS float64 `json:"noise_rms,omitempty"`
}

// Device fault kinds accepted by DeviceFaultConfig.Kind.
const (
	// FaultMicNoiseRamp ramps a microphone's self-noise floor to Level
	// (linear RMS).
	FaultMicNoiseRamp = "mic_noise_ramp"
	// FaultMicSensitivity ramps a microphone's capture gain to Level
	// (1 healthy, 0 stone deaf).
	FaultMicSensitivity = "mic_sensitivity"
	// FaultSpeakerDecay ramps a speaker's output gain to Level
	// (1 healthy, 0 dead).
	FaultSpeakerDecay = "speaker_decay"
	// FaultSpeakerDetune ramps a speaker's emitted/commanded frequency
	// ratio to Level (1 in tune).
	FaultSpeakerDetune = "speaker_detune"
)

// DeviceFaultConfig schedules one hardware degradation ramp. The
// parameter moves linearly from its current value to Level over
// [start_s, end_s); with clear_s set, a second ramp of the same length
// returns it to the healthy value — modelling a repair or a unit swap.
type DeviceFaultConfig struct {
	// Kind is one of the Fault* constants above.
	Kind string `json:"kind"`
	// Device names the target: "controller" or an entry of Mics for
	// the mic kinds, a switch name for the speaker kinds.
	Device string  `json:"device"`
	StartS float64 `json:"start_s"`
	EndS   float64 `json:"end_s"`
	Level  float64 `json:"level"`
	ClearS float64 `json:"clear_s,omitempty"`
}

// NoiseConfig adds a background source.
type NoiseConfig struct {
	// Type: song, datacenter, office.
	Type  string  `json:"type"`
	Level float64 `json:"level,omitempty"` // song peak amplitude
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
}

// Load parses a scenario from JSON and validates it.
func Load(r io.Reader) (*Config, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("scenario: parsing config: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Validate checks referential integrity and parameter sanity.
func (c *Config) Validate() error {
	if c.DurationS <= 0 {
		return fmt.Errorf("scenario: duration_s must be positive")
	}
	if c.MinAmplitude < 0 {
		return fmt.Errorf("scenario: min_amplitude must be non-negative")
	}
	if c.HopS < 0 {
		return fmt.Errorf("scenario: hop_s must be non-negative")
	}
	if c.HopS > 0 && !c.Stream {
		return fmt.Errorf("scenario: hop_s requires stream")
	}
	if c.HopS > 0 {
		// The runner deploys a 50 ms window at 44.1 kHz.
		if err := core.CheckStreamHop(core.DefaultWindow, 44100, c.HopS); err != nil {
			return fmt.Errorf("scenario: hop_s: %w", err)
		}
	}
	if len(c.Switches) == 0 {
		return fmt.Errorf("scenario: at least one switch required")
	}
	switches := map[string]bool{}
	for _, s := range c.Switches {
		if s.Name == "" {
			return fmt.Errorf("scenario: switch with empty name")
		}
		if switches[s.Name] {
			return fmt.Errorf("scenario: duplicate switch %q", s.Name)
		}
		switches[s.Name] = true
	}
	hosts := map[string]bool{}
	for _, h := range c.Hosts {
		if h.Name == "" {
			return fmt.Errorf("scenario: host with empty name")
		}
		if hosts[h.Name] {
			return fmt.Errorf("scenario: duplicate host %q", h.Name)
		}
		hosts[h.Name] = true
		if !switches[h.Switch] {
			return fmt.Errorf("scenario: host %q references unknown switch %q", h.Name, h.Switch)
		}
		if _, err := netip.ParseAddr(h.Addr); err != nil {
			return fmt.Errorf("scenario: host %q address: %w", h.Name, err)
		}
	}
	for _, l := range c.Links {
		if !switches[l.A] || !switches[l.B] {
			return fmt.Errorf("scenario: link %s<->%s references unknown switch", l.A, l.B)
		}
	}
	for _, r := range c.Rules {
		if !switches[r.Switch] {
			return fmt.Errorf("scenario: rule references unknown switch %q", r.Switch)
		}
		switch r.Action {
		case "output", "split", "hashsplit":
			if len(r.Ports) == 0 {
				return fmt.Errorf("scenario: rule on %q action %q needs ports", r.Switch, r.Action)
			}
		case "drop":
		default:
			return fmt.Errorf("scenario: unknown rule action %q", r.Action)
		}
	}
	for i, a := range c.Apps {
		if !switches[a.Switch] {
			return fmt.Errorf("scenario: app %d references unknown switch %q", i, a.Switch)
		}
		switch a.Type {
		case "heavyhitter":
			if a.Buckets <= 0 {
				return fmt.Errorf("scenario: heavyhitter on %q needs buckets", a.Switch)
			}
		case "portscan":
			if a.NumPorts <= 0 {
				return fmt.Errorf("scenario: portscan on %q needs num_ports", a.Switch)
			}
		case "queuemon":
			if a.Port <= 0 {
				return fmt.Errorf("scenario: queuemon on %q needs port", a.Switch)
			}
		case "heartbeat":
		case "ddos", "superspreader":
			if a.Buckets <= 0 {
				return fmt.Errorf("scenario: %s on %q needs buckets", a.Type, a.Switch)
			}
			if _, err := netip.ParseAddr(a.Watch); err != nil {
				return fmt.Errorf("scenario: %s on %q needs a valid watch address: %w", a.Type, a.Switch, err)
			}
		default:
			return fmt.Errorf("scenario: unknown app type %q", a.Type)
		}
		switch a.Analytics {
		case "", "exact":
			if a.SketchEpsilon != 0 || a.SketchDelta != 0 || a.SketchPrecision != 0 {
				return fmt.Errorf("scenario: app %d sets sketch knobs without analytics=\"sketch\"", i)
			}
		case "sketch":
			if a.SketchEpsilon < 0 || a.SketchEpsilon >= 1 {
				return fmt.Errorf("scenario: app %d sketch_epsilon %g outside (0, 1)", i, a.SketchEpsilon)
			}
			if a.SketchDelta < 0 || a.SketchDelta >= 1 {
				return fmt.Errorf("scenario: app %d sketch_delta %g outside (0, 1)", i, a.SketchDelta)
			}
			if a.SketchPrecision != 0 && (a.SketchPrecision < 4 || a.SketchPrecision > 18) {
				return fmt.Errorf("scenario: app %d sketch_precision %d outside [4, 18]", i, a.SketchPrecision)
			}
		default:
			return fmt.Errorf("scenario: app %d unknown analytics %q", i, a.Analytics)
		}
	}
	for i, tr := range c.Traffic {
		if !hosts[tr.From] {
			return fmt.Errorf("scenario: traffic %d from unknown host %q", i, tr.From)
		}
		if !hosts[tr.To] {
			return fmt.Errorf("scenario: traffic %d to unknown host %q", i, tr.To)
		}
		switch tr.Type {
		case "cbr", "poisson", "ramp":
			if tr.PPS <= 0 {
				return fmt.Errorf("scenario: traffic %d needs pps", i)
			}
			if tr.StopS <= tr.StartS {
				return fmt.Errorf("scenario: traffic %d has stop <= start", i)
			}
		case "portscan":
			// A scan's end is first_port + num_ports probes; stop_s
			// is not used.
			if tr.NumPorts <= 0 {
				return fmt.Errorf("scenario: traffic %d needs num_ports", i)
			}
		default:
			return fmt.Errorf("scenario: unknown traffic type %q", tr.Type)
		}
	}
	for i, n := range c.Noise {
		switch n.Type {
		case "song", "datacenter", "office":
		default:
			return fmt.Errorf("scenario: unknown noise type %q (entry %d)", n.Type, i)
		}
	}
	mics := map[string]bool{"controller": true}
	for _, mc := range c.Mics {
		if mc.Name == "" {
			return fmt.Errorf("scenario: mic with empty name")
		}
		if mics[mc.Name] {
			return fmt.Errorf("scenario: duplicate mic %q", mc.Name)
		}
		mics[mc.Name] = true
		if mc.NoiseRMS < 0 {
			return fmt.Errorf("scenario: mic %q noise_rms must be non-negative", mc.Name)
		}
	}
	for i, df := range c.DeviceFaults {
		switch df.Kind {
		case FaultMicNoiseRamp, FaultMicSensitivity:
			if !mics[df.Device] {
				return fmt.Errorf("scenario: device fault %d references unknown mic %q", i, df.Device)
			}
		case FaultSpeakerDecay, FaultSpeakerDetune:
			if !switches[df.Device] {
				return fmt.Errorf("scenario: device fault %d references unknown switch %q", i, df.Device)
			}
		default:
			return fmt.Errorf("scenario: unknown device fault kind %q (entry %d)", df.Kind, i)
		}
		if df.StartS < 0 || df.EndS <= df.StartS {
			return fmt.Errorf("scenario: device fault %d needs 0 <= start_s < end_s", i)
		}
		if df.Level < 0 {
			return fmt.Errorf("scenario: device fault %d level must be non-negative", i)
		}
		if df.Kind == FaultSpeakerDetune && df.Level <= 0 {
			return fmt.Errorf("scenario: device fault %d detune ratio must be positive", i)
		}
		if df.ClearS != 0 && df.ClearS < df.EndS {
			return fmt.Errorf("scenario: device fault %d clear_s precedes end_s", i)
		}
	}
	// The acoustic layer requires ramps on one parameter to be
	// scheduled forward; a config must not be able to trip that panic.
	lastRamp := map[string]float64{}
	for i, df := range c.DeviceFaults {
		key := df.Kind + "\x00" + df.Device
		end := df.EndS
		if df.ClearS != 0 {
			end = df.ClearS + (df.EndS - df.StartS)
		}
		if df.StartS < lastRamp[key] {
			return fmt.Errorf("scenario: device fault %d overlaps an earlier %s ramp on %q", i, df.Kind, df.Device)
		}
		lastRamp[key] = end
	}
	if f := c.Faults; f != nil {
		for _, p := range []struct {
			name string
			v    float64
		}{{"drop_prob", f.DropProb}, {"flip_prob", f.FlipProb}, {"trunc_prob", f.TruncProb}} {
			if p.v < 0 || p.v > 1 {
				return fmt.Errorf("scenario: faults.%s %g outside [0, 1]", p.name, p.v)
			}
		}
		if f.JitterMaxS < 0 {
			return fmt.Errorf("scenario: faults.jitter_max_s must be non-negative")
		}
	}
	return nil
}
