package scenario

import (
	"fmt"
	"strings"

	"mdn/internal/acoustic"
	"mdn/internal/core"
	"mdn/internal/modem"
	"mdn/internal/mp"
	"mdn/internal/netsim"
	"mdn/internal/parallel"
	"mdn/internal/telemetry"
)

// chaosModem runs the acoustic data channel through the chaos
// harness's faulty wire: frames of Reed-Solomon-coded payload ride
// the same MP hop the control pipelines use, so message drops become
// symbol erasures and bit flips become wrong tones. Ground truth is
// frames sent; detection is CRC-verified frames delivered.
func chaosModem(reg *telemetry.Registry, faults netsim.Faults, dur, streamHop float64) ChaosPoint {
	e := newChaosEnv(reg, faults, streamHop)
	cfg := modem.DefaultConfig()
	cfg.FEC = modem.FECRS{Parity: modem.DefaultRSParity}
	// The modem's 130 guard-banded tones outgrow the shared default
	// plan; the channel brings its own spectrum.
	band, err := modem.NewBand(modem.Plan(cfg), "s1", cfg)
	if err != nil {
		return ChaosPoint{Notes: "setup failed: " + err.Error()}
	}
	tx := modem.NewTransmitter(e.sim, band, e.voice)
	rx := modem.NewReceiver(band)
	tx.Instrument(e.reg, "s1")
	rx.Instrument(e.reg, "s1")
	e.ctrl.Detector.AddWatch(band.Frequencies()...)
	e.ctrl.SubscribeWindowsNamed("modem", rx.HandleWindow)
	e.addCanary()
	e.start()

	payload := make([]byte, 32)
	for i := range payload {
		payload[i] = byte(i * 11)
	}
	frames := 0
	at := 1.0
	for {
		end, err := tx.Send(at, payload)
		if err != nil {
			return ChaosPoint{Notes: "send failed: " + err.Error()}
		}
		if end+0.3 > dur {
			break
		}
		frames++
		at = end
	}

	var pt ChaosPoint
	pt.GroundTruth = frames
	e.finish(dur, &pt)
	pt.Detected = int(rx.FramesRx)
	if pt.Detected > frames {
		// The last, uncounted frame straddling the horizon delivered
		// anyway; clamp so recall stays a ratio of offered frames.
		pt.Detected = frames
	}
	pt.Notes = fmt.Sprintf("fec=%s goodput=%.0fb/s corrected=%d crcfail=%d fecfail=%d hdrfail=%d",
		cfg.FEC.Name(), rx.GoodputBps(), rx.FECCorrected,
		rx.CRCFailures, rx.FECFailures, rx.HeaderFailures)
	return pt
}

// ModemSweepConfig parameterises a modem corruption sweep: a grid of
// FEC schemes × seeded symbol-corruption rates on an otherwise clean
// wire, measuring how each scheme's delivery degrades.
type ModemSweepConfig struct {
	// Seed drives every stochastic component; per-point corruptor
	// streams derive from it and the grid position.
	Seed int64 `json:"seed"`
	// FECs are the scheme names to sweep (default none, hamming7_4,
	// rs_p48; see modem.FECByName).
	FECs []string `json:"fecs,omitempty"`
	// CorruptRates are the per-symbol corruption probabilities to
	// sweep (default 0, 0.02, 0.05, 0.10).
	CorruptRates []float64 `json:"corrupt_rates,omitempty"`
	// Frames is how many frames each point sends (default 6).
	Frames int `json:"frames,omitempty"`
	// PayloadBytes is the payload size per frame (default 64).
	PayloadBytes int `json:"payload_bytes,omitempty"`
	// StreamHop, when positive, receives on the streaming detection
	// path with this hop (see core.Controller.StartStream).
	StreamHop float64 `json:"stream_hop,omitempty"`
	// Workers bounds the sweep's worker pool (<= 0 means GOMAXPROCS).
	// The report is byte-identical at every worker count.
	Workers int `json:"workers,omitempty"`
}

// ModemSweepPoint is one (FEC, corruption rate) measurement.
type ModemSweepPoint struct {
	FEC         string  `json:"fec"`
	CorruptRate float64 `json:"corrupt_rate"`
	// FramesTx/FramesRx are frames offered and CRC-verified frames
	// delivered; Recovered is their ratio.
	FramesTx  uint64  `json:"frames_tx"`
	FramesRx  uint64  `json:"frames_rx"`
	Recovered float64 `json:"recovered"`
	// SymbolsCorrupted counts the corruptor's hits; FECCorrected the
	// symbol repairs the FEC reported.
	SymbolsCorrupted uint64 `json:"symbols_corrupted"`
	FECCorrected     uint64 `json:"fec_corrected"`
	// Failure counters, by layer.
	HeaderFailures uint64 `json:"header_failures"`
	CRCFailures    uint64 `json:"crc_failures"`
	FECFailures    uint64 `json:"fec_failures"`
	// GoodputBps is delivered payload bits per simulated second.
	GoodputBps float64 `json:"goodput_bps"`
}

// ModemSweepReport is a full corruption sweep.
type ModemSweepReport struct {
	Seed   int64             `json:"seed"`
	Points []ModemSweepPoint `json:"points"`
}

// RunModemSweep executes the FEC × corruption grid. Each point owns
// its whole world — simulation, room, controller, corruptor — with
// every stochastic stream derived from the seed and the grid
// position, so the report is byte-identical at any worker count.
func RunModemSweep(cfg ModemSweepConfig) (*ModemSweepReport, error) {
	fecs := cfg.FECs
	if len(fecs) == 0 {
		fecs = []string{"none", "hamming7_4", "rs_p48"}
	}
	rates := cfg.CorruptRates
	if len(rates) == 0 {
		rates = []float64{0, 0.02, 0.05, 0.10}
	}
	frames := cfg.Frames
	if frames <= 0 {
		frames = 6
	}
	size := cfg.PayloadBytes
	if size <= 0 {
		size = 64
	}
	// Validate the grid up front.
	schemes := make([]modem.FEC, len(fecs))
	for i, name := range fecs {
		fec, err := modem.FECByName(name)
		if err != nil {
			return nil, err
		}
		schemes[i] = fec
	}
	for _, r := range rates {
		if r < 0 || r > 1 {
			return nil, fmt.Errorf("scenario: modem corrupt rate %g outside [0, 1]", r)
		}
	}
	if cfg.StreamHop > 0 {
		if err := core.CheckStreamHop(core.DefaultWindow, 44100, cfg.StreamHop); err != nil {
			return nil, fmt.Errorf("scenario: stream_hop: %w", err)
		}
	}

	type gridCell struct{ fi, ri int }
	cells := make([]gridCell, 0, len(fecs)*len(rates))
	for fi := range fecs {
		for ri := range rates {
			cells = append(cells, gridCell{fi, ri})
		}
	}
	rep := &ModemSweepReport{Seed: cfg.Seed, Points: make([]ModemSweepPoint, len(cells))}
	parallel.ForEach(len(cells), parallel.Workers(cfg.Workers), func(i int) {
		c := cells[i]
		seed := mixSeed(cfg.Seed*10000 + int64(c.fi)*100 + int64(c.ri))
		rep.Points[i] = runModemPoint(schemes[c.fi], rates[c.ri], frames, size, seed, cfg.StreamHop)
		rep.Points[i].FEC = fecs[c.fi]
		rep.Points[i].CorruptRate = rates[c.ri]
	})
	return rep, nil
}

// runModemPoint measures one (FEC, corruption rate) cell on a clean
// wire: the corruptor attacks payload symbols at schedule time.
func runModemPoint(fec modem.FEC, rate float64, frames, size int, seed int64, streamHop float64) ModemSweepPoint {
	sim := netsim.NewSim()
	room := acoustic.NewRoom(44100, seed)
	room.CullThreshold = acoustic.CullAuto
	mic := room.AddMicrophone("controller", acoustic.Position{}, 0.0005)
	sp := room.AddSpeaker("s1", acoustic.Position{X: 1})
	voice := core.NewVoice(sim, mp.NewSounder(mp.NewPi(sim, sp, 0.002)))

	mcfg := modem.DefaultConfig()
	mcfg.FEC = fec
	band, err := modem.NewBand(modem.Plan(mcfg), "s1", mcfg)
	if err != nil {
		return ModemSweepPoint{}
	}
	ctrl := core.NewController(sim, mic, core.NewDetector(core.MethodGoertzel, band.Frequencies()))
	ctrl.Retention = 2
	tx := modem.NewTransmitter(sim, band, voice)
	tx.Corruptor = modem.NewCorruptor(rate, seed+1)
	rx := modem.NewReceiver(band)
	ctrl.SubscribeWindows(rx.HandleWindow)
	if streamHop > 0 {
		ctrl.StartStream(0, streamHop)
	} else {
		ctrl.Start(0)
	}

	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i*13 + 7)
	}
	at := 0.5
	for f := 0; f < frames; f++ {
		end, err := tx.Send(at, payload)
		if err != nil {
			return ModemSweepPoint{}
		}
		at = end
	}
	sim.RunUntil(at + 0.5)

	pt := ModemSweepPoint{
		FramesTx:         tx.FramesTx,
		FramesRx:         rx.FramesRx,
		SymbolsCorrupted: tx.SymbolsCorrupted,
		FECCorrected:     rx.FECCorrected,
		HeaderFailures:   rx.HeaderFailures,
		CRCFailures:      rx.CRCFailures,
		FECFailures:      rx.FECFailures,
		GoodputBps:       rx.GoodputBps(),
	}
	if pt.FramesTx > 0 {
		pt.Recovered = float64(pt.FramesRx) / float64(pt.FramesTx)
	}
	return pt
}

// Table renders the sweep as a fixed-width recovery table.
func (r *ModemSweepReport) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "modem corruption sweep: seed=%d\n", r.Seed)
	fmt.Fprintf(&b, "%-12s %8s  %5s %9s  %9s %9s  %8s %8s %8s\n",
		"fec", "corrupt", "recov", "tx/rx", "corrupted", "repaired", "hdrfail", "crcfail", "fecfail")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-12s %7.0f%%  %4.0f%% %5d/%-3d  %9d %9d  %8d %8d %8d\n",
			p.FEC, 100*p.CorruptRate, 100*p.Recovered, p.FramesTx, p.FramesRx,
			p.SymbolsCorrupted, p.FECCorrected, p.HeaderFailures, p.CRCFailures, p.FECFailures)
	}
	return b.String()
}
