package scenario

import (
	"fmt"
	"sort"
	"strings"

	"mdn/internal/acoustic"
	"mdn/internal/core"
	"mdn/internal/mp"
	"mdn/internal/netsim"
	"mdn/internal/openflow"
	"mdn/internal/parallel"
	"mdn/internal/telemetry"
)

// Chaos is the supervised runtime's proving ground: it runs full
// end-to-end MDN pipelines — knock → FSM → flow install, heavy-hitter
// telemetry, congestion-driven load balancing, and heartbeat liveness —
// under a sweep of injected wire-fault rates, and reports each point's
// recall, health verdict, recovered panics, and retry counters. The
// paper's Section 7 asks how the acoustic channel behaves as conditions
// worsen; the harness answers the control-plane half: detection decays
// gracefully (recall falls, nothing crashes) and the controller's
// Health snapshot names the degradation.
//
// Every run is seeded; the same ChaosConfig produces a byte-identical
// ChaosReport, so sweeps are replayable evidence, not anecdotes.

// ChaosScenarioNames are the pipelines the harness can run.
var ChaosScenarioNames = []string{"portknock", "heavyhitter", "loadbalance", "heartbeat", "devicehealth", "modem"}

// ChaosConfig parameterises a chaos sweep.
type ChaosConfig struct {
	// Seed drives every stochastic component; per-point fault streams
	// derive from it.
	Seed int64 `json:"seed"`
	// DropRates are the message-drop probabilities to sweep
	// (default 0, 0.1, 0.3, 0.5).
	DropRates []float64 `json:"drop_rates,omitempty"`
	// FlipProb and TruncProb add bit-flip and truncation corruption at
	// every point (default 0).
	FlipProb  float64 `json:"flip_prob,omitempty"`
	TruncProb float64 `json:"trunc_prob,omitempty"`
	// JitterMaxS adds up to this much extra one-way latency (default 0).
	JitterMaxS float64 `json:"jitter_max_s,omitempty"`
	// DurationS is the simulated length of each point (default 30).
	DurationS float64 `json:"duration_s,omitempty"`
	// Scenarios selects pipelines (default all of ChaosScenarioNames).
	Scenarios []string `json:"scenarios,omitempty"`
	// StreamHop, when positive, runs every pipeline on the streaming
	// detection path with this hop in seconds (see
	// core.Controller.StartStream) instead of the batch window loop.
	// StreamHop == 0.05 (the full window) is the equivalence setting:
	// it reproduces the batch report byte-identically.
	StreamHop float64 `json:"stream_hop,omitempty"`
	// Workers bounds the sweep's worker pool. Points are independent —
	// each builds its own simulation, room, and controller, and derives
	// its fault stream from Seed and its grid position, not from
	// execution order — so they run concurrently; <= 0 means
	// GOMAXPROCS, 1 forces the serial sweep. The report is
	// byte-identical at every worker count.
	Workers int `json:"workers,omitempty"`
}

// ChaosPoint is one (scenario, drop rate) measurement.
type ChaosPoint struct {
	// Scenario names the pipeline.
	Scenario string `json:"scenario"`
	// DropRate is the injected message-drop probability.
	DropRate float64 `json:"drop_rate"`
	// GroundTruth counts the events the pipeline was offered;
	// Detected counts those it acted on; Recall is their ratio.
	GroundTruth int     `json:"ground_truth"`
	Detected    int     `json:"detected"`
	Recall      float64 `json:"recall"`
	// Health is the controller's end-of-run verdict; Reasons explains
	// a non-healthy one.
	Health  string   `json:"health"`
	Reasons []string `json:"reasons,omitempty"`
	// RecoveredPanics counts subscriber panics the supervisor absorbed
	// (the canary handler contributes two per run); Quarantined counts
	// circuit-broken subscribers.
	RecoveredPanics uint64 `json:"recovered_panics"`
	Quarantined     int    `json:"quarantined"`
	// Wire counters aggregate the acoustic and OpenFlow control hops.
	WireSent      uint64 `json:"wire_sent"`
	WireDropped   uint64 `json:"wire_dropped"`
	WireCorrupted uint64 `json:"wire_corrupted"`
	// Flow-programming counters (zero for pipelines that install no
	// rules).
	FlowAttempts uint64 `json:"flow_attempts,omitempty"`
	FlowRetries  uint64 `json:"flow_retries,omitempty"`
	FlowFailures uint64 `json:"flow_failures,omitempty"`
	// Notes carries scenario-specific outcomes (rule installed,
	// alerts raised).
	Notes string `json:"notes,omitempty"`
	// Devices is the device-health monitor's end-of-run snapshot (set
	// only by the devicehealth scenario): per-device state, noise
	// floors, and the transition / recalibration / quarantine / rejoin
	// / re-key counts. Every field is a deterministic function of the
	// simulated run, so the sweep's byte-identity contract holds.
	Devices []core.DeviceHealth `json:"devices,omitempty"`
}

// ChaosReport is a full sweep.
type ChaosReport struct {
	Seed      int64        `json:"seed"`
	DurationS float64      `json:"duration_s"`
	Points    []ChaosPoint `json:"points"`

	// Metrics is the sweep's aggregate telemetry snapshot: every point
	// shares one registry, so counters and histograms accumulate across
	// the whole sweep. It is excluded from the JSON report because the
	// wall-clock histograms (decode, dispatch) vary run to run — the
	// JSON stays byte-identical per config; dump Metrics.Text() for the
	// Prometheus view.
	Metrics *telemetry.Snapshot `json:"-"`
}

// RunChaos executes the sweep and returns its report. The grid of
// (scenario, drop rate) points fans out over cfg.Workers goroutines
// (GOMAXPROCS when <= 0); each point owns its whole world — sim, room,
// controller, fault stream — and writes into a pre-assigned report
// slot, so the report is byte-identical to the serial sweep at every
// worker count.
func RunChaos(cfg ChaosConfig) (*ChaosReport, error) {
	drops := cfg.DropRates
	if len(drops) == 0 {
		drops = []float64{0, 0.1, 0.3, 0.5}
	}
	dur := cfg.DurationS
	if dur <= 0 {
		dur = 30
	}
	names := cfg.Scenarios
	if len(names) == 0 {
		names = ChaosScenarioNames
	}
	// Validate the whole grid before any point runs: a bad cell must
	// fail the sweep up front, not mid-flight with half the pool busy.
	runs := make([]chaosRun, len(names))
	for i, name := range names {
		run, ok := chaosScenarios[name]
		if !ok {
			return nil, fmt.Errorf("scenario: unknown chaos scenario %q (have %s)",
				name, strings.Join(ChaosScenarioNames, ", "))
		}
		runs[i] = run
	}
	for _, rate := range drops {
		if rate < 0 || rate > 1 {
			return nil, fmt.Errorf("scenario: chaos drop rate %g outside [0, 1]", rate)
		}
	}
	if cfg.StreamHop > 0 {
		if err := core.CheckStreamHop(core.DefaultWindow, 44100, cfg.StreamHop); err != nil {
			return nil, fmt.Errorf("scenario: stream_hop: %w", err)
		}
	}
	type gridCell struct{ si, ri int }
	cells := make([]gridCell, 0, len(names)*len(drops))
	for si := range names {
		for ri := range drops {
			cells = append(cells, gridCell{si, ri})
		}
	}
	rep := &ChaosReport{Seed: cfg.Seed, DurationS: dur, Points: make([]ChaosPoint, len(cells))}
	// One registry for the whole sweep, shared across workers: its
	// get-or-create series are guarded internally and update with
	// atomics, and the JSON report excludes the snapshot, so the
	// byte-identity contract is untouched by telemetry interleaving.
	reg := telemetry.New()
	parallel.ForEach(len(cells), parallel.Workers(cfg.Workers), func(i int) {
		c := cells[i]
		faults := netsim.Faults{
			DropProb:  drops[c.ri],
			FlipProb:  cfg.FlipProb,
			TruncProb: cfg.TruncProb,
			JitterMax: cfg.JitterMaxS,
			// Per-point stream derived from the grid position, never
			// from execution order: same config, same faults. The seed
			// is bit-mixed because math/rand's early draws are visibly
			// correlated across sequential seeds.
			Seed: mixSeed(cfg.Seed*10000 + int64(c.si)*100 + int64(c.ri)),
		}
		pt := runs[c.si](reg, faults, dur, cfg.StreamHop)
		pt.Scenario = names[c.si]
		pt.DropRate = drops[c.ri]
		if pt.GroundTruth > 0 {
			pt.Recall = float64(pt.Detected) / float64(pt.GroundTruth)
		}
		rep.Points[i] = pt
	})
	snap := reg.Snapshot()
	rep.Metrics = &snap
	return rep, nil
}

// Table renders the sweep as a fixed-width degradation table.
func (r *ChaosReport) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos sweep: seed=%d duration=%.0fs\n", r.Seed, r.DurationS)
	fmt.Fprintf(&b, "%-12s %5s  %6s %9s  %-8s %7s %5s  %-s\n",
		"scenario", "drop", "recall", "truth/det", "health", "panics", "quar", "notes")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-12s %4.0f%%  %5.0f%% %5d/%-3d  %-8s %7d %5d  %s\n",
			p.Scenario, 100*p.DropRate, 100*p.Recall, p.GroundTruth, p.Detected,
			p.Health, p.RecoveredPanics, p.Quarantined, p.Notes)
	}
	return b.String()
}

// mixSeed finalises a seed splitmix64-style. Sequential seeds fed
// straight to math/rand produce correlated early draws (a seed one
// apart can yield a fault stream with zero drops at 30% probability);
// mixing decorrelates the sweep's points.
func mixSeed(s int64) int64 {
	z := uint64(s) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// chaosRun measures one pipeline under one fault setting, recording
// its telemetry into the sweep's shared registry. streamHop > 0 runs
// the pipeline on the streaming detection path with that hop.
type chaosRun func(reg *telemetry.Registry, faults netsim.Faults, dur, streamHop float64) ChaosPoint

var chaosScenarios = map[string]chaosRun{
	"portknock":    chaosPortKnock,
	"heavyhitter":  chaosHeavyHitter,
	"loadbalance":  chaosLoadBalance,
	"heartbeat":    chaosHeartbeat,
	"devicehealth": chaosDeviceHealth,
	"modem":        chaosModem,
}

// chaosEnv is the one-switch testbed every chaos pipeline shares: a
// room, a controller, and a faulty acoustic control hop.
type chaosEnv struct {
	sim       *netsim.Sim
	sw        *netsim.Switch
	voice     *core.Voice
	ctrl      *core.Controller
	plan      *core.FrequencyPlan
	reg       *telemetry.Registry
	streamHop float64
}

func newChaosEnv(reg *telemetry.Registry, faults netsim.Faults, streamHop float64) *chaosEnv {
	sim := netsim.NewSim()
	room := acoustic.NewRoom(44100, faults.Seed)
	// Same acoustic-plane defaults as the scenario runner: cull at the
	// microphone noise floor, compact behind the window loop.
	room.CullThreshold = acoustic.CullAuto
	mic := room.AddMicrophone("controller", acoustic.Position{}, 0.0005)
	sw := netsim.NewSwitch(sim, "s1")
	sp := room.AddSpeaker("s1", acoustic.Position{X: 1})
	voice := core.NewVoice(sim, mp.NewSounder(mp.NewPi(sim, sp, 0.002)))
	voice.Sounder().InjectFaults(faults)
	ctrl := core.NewController(sim, mic, core.NewDetector(core.MethodGoertzel, nil))
	// Instrument before registering wires so the acoustic hop's fault
	// counters are exposed too. All points share reg: the registry's
	// get-or-create semantics merge each point's counters into one
	// sweep-wide series set.
	ctrl.Instrument(reg)
	ctrl.Retention = 2
	room.Instrument(reg)
	ctrl.RegisterVoice("s1", voice)
	voice.Instrument(reg, "s1")
	return &chaosEnv{sim: sim, sw: sw, voice: voice, ctrl: ctrl,
		plan: core.DefaultPlan(), reg: reg, streamHop: streamHop}
}

// start begins detection on the configured path. Both branches make
// exactly one ticker registration at the same call position, so at
// streamHop == Window the event schedule — and therefore the whole
// report — is byte-identical to the batch run.
func (e *chaosEnv) start() {
	if e.streamHop > 0 {
		e.ctrl.StartStream(0, e.streamHop)
	} else {
		e.ctrl.Start(0)
	}
}

// addCanary registers a subscriber that panics on its first two
// windows and then behaves — below the quarantine threshold, so every
// chaos point proves the recover barrier without tripping the circuit
// breaker. The panics land in the first ~100 ms of the run and age out
// of the "recent errors" degradation input long before it ends.
func (e *chaosEnv) addCanary() {
	calls := 0
	e.ctrl.SubscribeWindowsNamed("canary", func(float64, []core.Detection) {
		calls++
		if calls <= 2 {
			panic("chaos canary")
		}
	})
}

// channel builds a faulty OpenFlow control channel sharing the
// acoustic hop's fault configuration (independent stream) and registers
// its counters with the controller.
func (e *chaosEnv) channel(faults netsim.Faults) *openflow.Channel {
	ch := openflow.NewChannel(e.sim, e.sw, 0.005)
	if faults != (netsim.Faults{}) {
		f := faults
		f.Seed = faults.Seed + 7
		ch.InjectFaults(f)
	}
	e.ctrl.RegisterChannel("s1", ch)
	return ch
}

// finish runs the simulation and fills the point's common fields.
func (e *chaosEnv) finish(dur float64, pt *ChaosPoint) core.HealthSnapshot {
	e.sim.RunUntil(dur)
	h := e.ctrl.Health()
	pt.Health = h.StateName
	pt.Reasons = h.Reasons
	pt.RecoveredPanics = h.HandlerPanics
	pt.Quarantined = len(h.Quarantined)
	for _, w := range h.Wire {
		pt.WireSent += w.Sent
		pt.WireDropped += w.Dropped
		pt.WireCorrupted += w.Corrupted
	}
	return h
}

func flowCounters(p *openflow.Programmer, pt *ChaosPoint) {
	pt.FlowAttempts += p.Attempts
	pt.FlowRetries += p.Retries
	pt.FlowFailures += p.Failures
}

// chaosPortKnock drives repeated secret-knock rounds through the full
// acoustic pipeline; truth is the number of rounds offered, detection
// is the FSM's accept count, and the accepted sequence installs the
// open rule through the retrying programmer.
func chaosPortKnock(reg *telemetry.Registry, faults netsim.Faults, dur, streamHop float64) ChaosPoint {
	e := newChaosEnv(reg, faults, streamHop)
	ch := e.channel(faults)
	seq := []uint16{7001, 7002, 7003}
	rule := openflow.FlowMod{Command: openflow.FlowAdd, Priority: 10, Action: netsim.Drop()}
	pk, err := core.NewPortKnock(e.plan, "s1", e.voice, ch, seq, rule)
	if err != nil {
		return ChaosPoint{Notes: "setup failed: " + err.Error()}
	}
	pk.SetErrorLog(e.ctrl.Errors)
	pk.Programmer().Instrument(e.reg)
	e.ctrl.Detector.AddWatch(pk.Frequencies()...)
	e.ctrl.SubscribeWindowsNamed("portknock", pk.HandleWindow)
	e.addCanary()
	e.start()

	// One knock round per second: three knocks 0.3 s apart. Even a
	// 10 s point pushes enough messages through the wire for the
	// health loss-rate input to be judged (minWireSample).
	rounds := 0
	for t := 1.0; t+0.6 < dur-1; t += 1.0 {
		rounds++
		for i, p := range seq {
			p := p
			e.sim.After(t+0.3*float64(i), func() {
				pk.Tap(&netsim.Packet{Flow: netsim.FiveTuple{DstPort: p}}, 0)
			})
		}
	}

	var pt ChaosPoint
	pt.GroundTruth = rounds
	e.finish(dur, &pt)
	pt.Detected = int(pk.Accepts())
	flowCounters(pk.Programmer(), &pt)
	pt.Notes = fmt.Sprintf("opened=%v installed=%v", pk.Opened, pk.Installed)
	return pt
}

// chaosHeavyHitter pushes one hot flow through the switch tap; truth
// is the number of complete traffic intervals, detection the intervals
// the hot bucket was flagged in.
func chaosHeavyHitter(reg *telemetry.Registry, faults netsim.Faults, dur, streamHop float64) ChaosPoint {
	e := newChaosEnv(reg, faults, streamHop)
	hh, err := core.NewHeavyHitter(e.plan, "s1", e.voice, 4)
	if err != nil {
		return ChaosPoint{Notes: "setup failed: " + err.Error()}
	}
	hh.Instrument(e.reg, "s1")
	// The Voice's per-frequency rate limit caps tone onsets near
	// 5/s, so flag on 2 onsets per 1 s interval.
	hh.Threshold = 2
	e.ctrl.Detector.AddWatch(hh.Frequencies()...)
	e.addCanary()
	hh.Start(e.ctrl, 0) // subscribes HandleWindow and starts intervals
	e.start()

	flow := netsim.FiveTuple{
		Src: netsim.MustAddr("10.0.0.1"), Dst: netsim.MustAddr("10.0.0.2"),
		SrcPort: 1111, DstPort: 80, Proto: netsim.ProtoTCP,
	}
	stop := dur - 1
	tick := e.sim.Every(1.0, 0.2, func(now float64) {
		hh.Tap(&netsim.Packet{Flow: flow}, 0)
	})
	e.sim.After(stop, tick.Stop)

	var pt ChaosPoint
	// Intervals fully covered by traffic: those ending in (2, stop].
	pt.GroundTruth = int(stop) - 1
	e.finish(dur, &pt)
	hot := hh.BucketOf(flow)
	for _, r := range hh.Reports {
		if r.Bucket == hot && r.Time > 2 && r.Time <= stop {
			pt.Detected++
		}
	}
	pt.Notes = fmt.Sprintf("hot bucket %d", hot)
	return pt
}

// chaosLoadBalance plays the queue monitor's congestion tone on a
// schedule; truth is tones offered, detection the confirmed high-level
// onsets the controller heard, and the first one must drive the split
// rule through the retrying programmer.
func chaosLoadBalance(reg *telemetry.Registry, faults netsim.Faults, dur, streamHop float64) ChaosPoint {
	e := newChaosEnv(reg, faults, streamHop)
	ch := e.channel(faults)
	qm := core.NewQueueMonitorWithTones(e.sw, 2, e.voice, core.DefaultQueueFrequencies)
	qm.Instrument(e.reg, "s1")
	rule := openflow.FlowMod{Command: openflow.FlowAdd, Priority: 5, Action: netsim.Drop()}
	lb := core.NewLoadBalancer(qm, ch, rule)
	lb.SetErrorLog(e.ctrl.Errors)
	lb.Programmer().Instrument(e.reg)
	e.ctrl.Detector.AddWatch(qm.Frequencies()...)
	e.ctrl.SubscribeWindowsNamed("queuemon", qm.HandleWindow)
	e.ctrl.SubscribeWindowsNamed("loadbalance", lb.HandleWindow)
	e.addCanary()
	e.start()

	high := qm.Frequencies()[2]
	truth := 0
	for t := 2.0; t < dur-1; t += 0.3 {
		truth++
		e.sim.Schedule(t, func() { e.voice.Play(high) })
	}

	var pt ChaosPoint
	pt.GroundTruth = truth
	e.finish(dur, &pt)
	// Raw heard entries, not HeardLevels: that helper collapses
	// consecutive duplicates, and every offered tone here is high.
	for _, s := range qm.Heard {
		if s.Level == core.LevelHigh {
			pt.Detected++
		}
	}
	flowCounters(lb.Programmer(), &pt)
	pt.Notes = fmt.Sprintf("triggered=%v installed=%v", lb.Triggered, lb.Installed)
	return pt
}

// chaosHeartbeat beats one device fast (so even short sweeps cross the
// wire-sample floor), kills it at 60% of the run, and measures heard
// beats against played ones; the monitor must still raise its death
// alert.
func chaosHeartbeat(reg *telemetry.Registry, faults netsim.Faults, dur, streamHop float64) ChaosPoint {
	e := newChaosEnv(reg, faults, streamHop)
	hb := core.NewHeartbeat()
	hb.Instrument(e.reg, "s1")
	hb.Period = 0.3
	f, err := hb.Register(e.plan, "s1", e.voice)
	if err != nil {
		return ChaosPoint{Notes: "setup failed: " + err.Error()}
	}
	e.ctrl.Detector.AddWatch(hb.Frequencies()...)
	e.addCanary()
	hb.Start(e.ctrl, 0)
	e.start()
	ticker, err := hb.StartDevice(e.sim, f, 0.1)
	if err != nil {
		return ChaosPoint{Notes: "setup failed: " + err.Error()}
	}
	death := 0.6 * dur
	e.sim.Schedule(death, ticker.Stop)

	var pt ChaosPoint
	e.finish(dur, &pt)
	pt.GroundTruth = int(e.voice.Emitted)
	pt.Detected = int(hb.BeatsOf("s1"))
	alertAfterDeath := false
	for _, a := range hb.Alerts {
		if a.Time >= death {
			alertAfterDeath = true
		}
	}
	pt.Notes = fmt.Sprintf("alerts=%d death-alert=%v", len(hb.Alerts), alertAfterDeath)
	return pt
}

// chaosDeviceHealth ages the hardware itself, on top of whatever the
// wire faults do: a three-microphone fleet listens to two beating
// speakers while one microphone's noise floor ramps up mid-run (and is
// repaired at half time) and one speaker drifts 4% off pitch for good.
// The device monitor must recalibrate the noisy microphone's detection
// threshold, quarantine it once it is effectively deaf, rejoin it after
// the repair, and re-key the detuned speaker so its beats keep arriving
// at the commanded frequency — so the point ends Degraded (the detune
// persists), never Stalled. Truth is tones emitted by both voices;
// detection is rising-edge onsets at the two commanded frequencies,
// which keeps counting across the re-key because the monitor rewrites
// shifted detections back before dispatch.
func chaosDeviceHealth(reg *telemetry.Registry, faults netsim.Faults, dur, streamHop float64) ChaosPoint {
	e := newChaosEnv(reg, faults, streamHop)
	room := e.ctrl.Mic().Room()
	m1 := room.AddMicrophone("m1", acoustic.Position{Y: 1}, 0.0005)
	m2 := room.AddMicrophone("m2", acoustic.Position{Y: 2}, 0.0005)
	sp2 := room.AddSpeaker("s2", acoustic.Position{X: -1})
	voice2 := core.NewVoice(e.sim, mp.NewSounder(mp.NewPi(e.sim, sp2, 0.002)))
	if faults != (netsim.Faults{}) {
		f := faults
		f.Seed = faults.Seed + 13 // independent stream for the second hop
		voice2.Sounder().InjectFaults(f)
	}
	e.ctrl.RegisterVoice("s2", voice2)
	voice2.Instrument(e.reg, "s2")

	fleet := e.ctrl.EnableFleet(2)
	fleet.AddMicrophone(m1)
	fleet.AddMicrophone(m2)
	defer fleet.Close()

	mon := e.ctrl.EnableDeviceMonitor()
	// Probe after half a second of fingerprint silence so the re-key
	// lands well inside even an 8 s point.
	mon.SilentWindows = 10
	const beat1, beat2 = 700.0, 880.0
	mon.WatchSpeaker("s1", e.voice, beat1)
	mon.WatchSpeaker("s2", voice2, beat2)
	e.ctrl.Detector.AddWatch(beat1, beat2)

	// Rising-edge onset counter over the two commanded frequencies.
	detected := 0
	prev1, prev2 := false, false
	e.ctrl.SubscribeWindowsNamed("beatcount", func(_ float64, dets []core.Detection) {
		cur1, cur2 := false, false
		for _, d := range dets {
			switch d.Frequency {
			case beat1:
				cur1 = true
			case beat2:
				cur2 = true
			}
		}
		if cur1 && !prev1 {
			detected++
		}
		if cur2 && !prev2 {
			detected++
		}
		prev1, prev2 = cur1, cur2
	})
	e.addCanary()
	e.start()

	e.sim.Every(0.1, 0.3, func(now float64) {
		e.voice.Play(beat1)
		voice2.Play(beat2)
	})

	// Fault timeline, scaled to the run. The noise ramp buries m1's
	// beats under a 0.5 RMS hiss until the repair at half time; the
	// detune is never repaired, so the point ends Degraded.
	noiseAt, clearAt := 0.15*dur, 0.5*dur
	m1.ScheduleNoiseRamp(noiseAt, noiseAt+0.5, 0.5)
	m1.ScheduleNoiseRamp(clearAt, clearAt+0.5, 0.0005)
	detuneAt := 0.2 * dur
	sp2.ScheduleDetune(detuneAt, detuneAt+0.5, 1.04)

	var pt ChaosPoint
	e.finish(dur, &pt)
	pt.GroundTruth = int(e.voice.Emitted + voice2.Emitted)
	pt.Detected = detected
	pt.Devices = mon.Snapshot()
	var recals, quars, rejoins, rekeys uint64
	for _, d := range pt.Devices {
		recals += d.Recalibrations
		quars += d.Quarantines
		rejoins += d.Rejoins
		rekeys += d.Rekeys
	}
	pt.Notes = fmt.Sprintf("recal=%d quarantine=%d rejoin=%d rekey=%d",
		recals, quars, rejoins, rekeys)
	return pt
}

// SortPoints orders a report's points by scenario then drop rate —
// already the generation order, but callers merging reports use it to
// restore the canonical layout.
func (r *ChaosReport) SortPoints() {
	sort.SliceStable(r.Points, func(i, j int) bool {
		a, b := r.Points[i], r.Points[j]
		if a.Scenario != b.Scenario {
			return a.Scenario < b.Scenario
		}
		return a.DropRate < b.DropRate
	})
}
