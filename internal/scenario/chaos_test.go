package scenario

import (
	"encoding/json"
	"strings"
	"testing"

	"mdn/internal/core"
	"mdn/internal/telemetry"
)

// chaosTestConfig is small enough for CI but long enough that every
// pipeline crosses the health monitor's minimum wire sample.
func chaosTestConfig() ChaosConfig {
	return ChaosConfig{
		Seed:      7,
		DropRates: []float64{0, 0.3, 0.5},
		DurationS: 10,
	}
}

func TestChaosSweepIsDeterministic(t *testing.T) {
	a, err := RunChaos(chaosTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(chaosTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The JSON report is the determinism contract: it excludes the
	// wall-clock latency histograms (decode/dispatch time varies run
	// to run) and must be byte-identical for the same config.
	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Errorf("two identical sweeps diverged:\n%s\nvs\n%s", a.Table(), b.Table())
	}
	// Virtual-time telemetry is deterministic too: the flow-programming
	// latency histogram (Install→outcome on simulated time) must agree
	// between the sweeps, counts and sums alike.
	for _, m := range a.Metrics.Metrics {
		if m.Kind != "histogram" || !containsSubstr(m.Name, "mdn_flow_program_seconds") {
			continue
		}
		bm, ok := b.Metrics.Find(m.Name)
		if !ok {
			t.Errorf("%s missing from second sweep", m.Name)
			continue
		}
		if m.Count != bm.Count || m.Sum != bm.Sum {
			t.Errorf("%s diverged: count %d/%d sum %g/%g", m.Name, m.Count, bm.Count, m.Sum, bm.Sum)
		}
	}
}

// TestChaosParallelSweepByteIdenticalToSerial pins the worker-pool
// sweep to the serial one: same seed, same grid, same JSON bytes, for
// more than one seed. Fault streams derive from each point's grid
// position and every point owns its own simulation, so pool
// scheduling must be invisible in the report.
func TestChaosParallelSweepByteIdenticalToSerial(t *testing.T) {
	for _, seed := range []int64{7, 41} {
		cfg := ChaosConfig{
			Seed:      seed,
			DropRates: []float64{0, 0.3},
			DurationS: 8,
		}
		cfg.Workers = 1
		serial, err := RunChaos(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Workers = 4
		par, err := RunChaos(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sj, err := json.Marshal(serial)
		if err != nil {
			t.Fatal(err)
		}
		pj, err := json.Marshal(par)
		if err != nil {
			t.Fatal(err)
		}
		if string(sj) != string(pj) {
			t.Errorf("seed %d: parallel sweep diverged from serial:\n%s\nvs\n%s",
				seed, serial.Table(), par.Table())
		}
	}
}

// TestChaosStreamAtFullWindowByteIdenticalToBatch runs the chaos sweep
// on the batch path and on the streaming path with the hop set to the
// full 50 ms window. The JSON reports must be byte-identical: at
// hop == window the streaming pipeline makes the same capture spans,
// the same float operations, and the same dispatches as the batch
// loop, so every recall figure, health verdict, and wire counter
// agrees — the equivalence half of the CI streaming smoke.
func TestChaosStreamAtFullWindowByteIdenticalToBatch(t *testing.T) {
	// devicehealth is excluded: its speaker re-key restarts the stream
	// pipeline, which re-primes at the live edge — deliberately not
	// byte-identical to the batch window loop.
	cfg := ChaosConfig{Seed: 7, DropRates: []float64{0, 0.3}, DurationS: 8,
		Scenarios: []string{"portknock", "heavyhitter", "loadbalance", "heartbeat"}}
	batch, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.StreamHop = 0.050
	streamed, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	sj, err := json.Marshal(streamed)
	if err != nil {
		t.Fatal(err)
	}
	if string(bj) != string(sj) {
		t.Errorf("streaming at hop==window diverged from batch:\n%s\nvs\n%s",
			streamed.Table(), batch.Table())
	}
}

func TestChaosRejectsMisalignedStreamHop(t *testing.T) {
	cfg := chaosTestConfig()
	cfg.StreamHop = 0.012
	if _, err := RunChaos(cfg); err == nil {
		t.Fatal("misaligned stream hop accepted")
	}
}

// BenchmarkChaosSweep measures the sweep wall clock serial versus
// pooled — the speedup evidence for BENCH_PR5.json. On a single-core
// host the pooled rows pin scheduling overhead instead of scaling.
func BenchmarkChaosSweep(b *testing.B) {
	for _, w := range []int{1, 4} {
		name := "serial"
		if w > 1 {
			name = "workers=4"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := chaosTestConfig()
				cfg.DurationS = 5
				cfg.Workers = w
				if _, err := RunChaos(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func containsSubstr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestChaosGracefulDegradation(t *testing.T) {
	rep, err := RunChaos(chaosTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	byScenario := make(map[string]map[float64]ChaosPoint)
	for _, p := range rep.Points {
		if byScenario[p.Scenario] == nil {
			byScenario[p.Scenario] = make(map[float64]ChaosPoint)
		}
		byScenario[p.Scenario][p.DropRate] = p
	}
	for _, name := range ChaosScenarioNames {
		if name == "devicehealth" {
			// Hardware faults, not wire faults: it ends Degraded by
			// design (the detune persists) and is asserted separately
			// in TestChaosDeviceHealthSelfHeals.
			continue
		}
		pts := byScenario[name]
		if len(pts) != 3 {
			t.Fatalf("%s: %d points, want 3", name, len(pts))
		}
		clean, heavy := pts[0], pts[0.5]

		// A clean channel is healthy — the canary's recovered panics
		// must not degrade it — and detection is near-perfect.
		if clean.Health != "healthy" {
			t.Errorf("%s at 0%%: health %s (%v), want healthy", name, clean.Health, clean.Reasons)
		}
		if clean.Recall < 0.85 {
			t.Errorf("%s at 0%%: recall %.2f, want >= 0.85", name, clean.Recall)
		}
		if clean.RecoveredPanics == 0 {
			t.Errorf("%s at 0%%: canary panics not recorded", name)
		}

		// Degradation is graceful: recall never improves under loss,
		// and heavy loss is reported as Degraded — never Stalled, never
		// a quarantine, never an unrecovered panic (RunChaos returning
		// at all proves nothing escaped the supervisor).
		if heavy.Recall > clean.Recall {
			t.Errorf("%s: recall rose from %.2f to %.2f under 50%% drop", name, clean.Recall, heavy.Recall)
		}
		for _, rate := range []float64{0.3, 0.5} {
			p := pts[rate]
			if p.Health != "degraded" {
				t.Errorf("%s at %.0f%%: health %s (%v), want degraded",
					name, 100*rate, p.Health, p.Reasons)
			}
			if p.Health == "stalled" {
				t.Errorf("%s at %.0f%%: stalled — not graceful", name, 100*rate)
			}
			if p.Quarantined != 0 {
				t.Errorf("%s at %.0f%%: %d quarantined subscribers", name, 100*rate, p.Quarantined)
			}
			if p.WireDropped == 0 {
				t.Errorf("%s at %.0f%%: no wire drops recorded", name, 100*rate)
			}
		}
	}

	// The flow-programming pipelines must still land their rules at
	// every drop rate — that is what the retrying programmer buys.
	for _, name := range []string{"portknock", "loadbalance"} {
		for rate, p := range byScenario[name] {
			if p.Notes == "" || !containsInstalled(p.Notes) {
				t.Errorf("%s at %.0f%%: notes %q, want installed=true", name, 100*rate, p.Notes)
			}
		}
	}
}

func containsInstalled(notes string) bool {
	const want = "installed=true"
	for i := 0; i+len(want) <= len(notes); i++ {
		if notes[i:i+len(want)] == want {
			return true
		}
	}
	return false
}

// TestChaosDeviceHealthSelfHeals runs the hardware-fault pipeline on a
// clean wire and asserts the whole self-healing arc: the noisy
// microphone's threshold recalibrates, the mic is quarantined while
// deaf and rejoins after the repair, the detuned speaker is re-keyed
// and keeps delivering beats at its commanded frequency, and the point
// ends Degraded — naming the persistent speaker fault — never Stalled.
func TestChaosDeviceHealthSelfHeals(t *testing.T) {
	rep, err := RunChaos(ChaosConfig{
		Seed:      7,
		DropRates: []float64{0},
		DurationS: 12,
		Scenarios: []string{"devicehealth"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 1 {
		t.Fatalf("%d points, want 1", len(rep.Points))
	}
	p := rep.Points[0]
	if p.Health != "degraded" {
		t.Errorf("health %s (%v), want degraded", p.Health, p.Reasons)
	}
	speakerReason := false
	for _, r := range p.Reasons {
		if strings.Contains(r, "speaker") {
			speakerReason = true
		}
		if strings.Contains(r, "quarantined") {
			t.Errorf("mic still quarantined at end of run: %q", r)
		}
	}
	if !speakerReason {
		t.Errorf("reasons %v name no speaker fault", p.Reasons)
	}

	// 3 mics then 2 speakers, registration order.
	if len(p.Devices) != 5 {
		t.Fatalf("%d device rows, want 5: %+v", len(p.Devices), p.Devices)
	}
	byName := map[string]core.DeviceHealth{}
	for _, d := range p.Devices {
		byName[d.Kind+"/"+d.Name] = d
	}
	m1 := byName["mic/m1"]
	if m1.Recalibrations == 0 {
		t.Error("m1 never recalibrated its detection threshold")
	}
	if m1.Quarantines == 0 || m1.Rejoins == 0 {
		t.Errorf("m1 quarantines=%d rejoins=%d, want both > 0", m1.Quarantines, m1.Rejoins)
	}
	if m1.Quarantined || m1.State != "healthy" {
		t.Errorf("m1 after repair: state=%s quarantined=%v, want healthy and rejoined",
			m1.State, m1.Quarantined)
	}
	if h := byName["mic/controller"]; h.State != "healthy" || h.Quarantines != 0 {
		t.Errorf("healthy mic controller disturbed: %+v", h)
	}
	s2 := byName["speaker/s2"]
	if s2.State != "detuned" || s2.Rekeys == 0 {
		t.Errorf("s2 state=%s rekeys=%d, want detuned with a re-key", s2.State, s2.Rekeys)
	}
	if s2.DetuneRatio < 1.03 || s2.DetuneRatio > 1.05 {
		t.Errorf("s2 detune ratio %g, want ~1.04", s2.DetuneRatio)
	}
	if s1 := byName["speaker/s1"]; s1.State != "healthy" {
		t.Errorf("healthy speaker s1 classified %s", s1.State)
	}

	// Detection survived both faults: beats kept arriving (rewritten
	// back to the commanded frequency after the re-key).
	if p.GroundTruth < 50 {
		t.Errorf("ground truth %d, want ~79 beats", p.GroundTruth)
	}
	if p.Recall < 0.6 {
		t.Errorf("recall %.2f, want >= 0.6 across the fault window", p.Recall)
	}

	// The mdn_device_* series render and survive exposition-format
	// validation.
	txt := rep.Metrics.Text()
	if err := telemetry.ValidateText(strings.NewReader(txt)); err != nil {
		t.Errorf("metrics dump invalid: %v", err)
	}
	for _, want := range []string{
		`mdn_device_state{kind="mic",name="m1"}`,
		`mdn_device_state{kind="speaker",name="s2"}`,
		`mdn_device_noise_floor{mic="m1"}`,
		"mdn_device_transitions_total",
		"mdn_device_recalibrations_total",
		"mdn_device_quarantines_total",
		"mdn_device_rejoins_total",
		"mdn_device_rekeys_total",
	} {
		if !strings.Contains(txt, want) {
			t.Errorf("metrics dump missing %s", want)
		}
	}
}

func TestChaosUnknownScenarioRejected(t *testing.T) {
	_, err := RunChaos(ChaosConfig{Scenarios: []string{"nonsense"}, DurationS: 5})
	if err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestChaosBadDropRateRejected(t *testing.T) {
	_, err := RunChaos(ChaosConfig{DropRates: []float64{1.5}, DurationS: 5})
	if err == nil {
		t.Fatal("drop rate 1.5 accepted")
	}
}

func TestScenarioFaultsConfigDegradesReportHealth(t *testing.T) {
	cfg := &Config{
		Name:      "faulty",
		Seed:      5,
		DurationS: 12,
		Switches:  []SwitchConfig{{Name: "s1", X: 1}},
		// A fast beat pushes enough messages through the wire for the
		// loss-rate health input to be judged within the short run.
		Apps:   []AppConfig{{Type: "heartbeat", Switch: "s1", PeriodS: 0.3}},
		Faults: &FaultsConfig{DropProb: 0.4},
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Health == nil {
		t.Fatal("report carries no health snapshot")
	}
	if rep.Health.StateName != "degraded" {
		t.Errorf("health = %s (%v), want degraded under 40%% drop",
			rep.Health.StateName, rep.Health.Reasons)
	}
	var sounders int
	for _, w := range rep.Health.Wire {
		if w.Kind == "sounder" {
			sounders++
			if w.Sent == 0 {
				t.Errorf("sounder %s never sent", w.Name)
			}
		}
	}
	if sounders != 1 {
		t.Errorf("%d sounders registered, want 1", sounders)
	}
}

func TestScenarioFaultsConfigValidation(t *testing.T) {
	cfg := &Config{
		Name:      "bad",
		DurationS: 5,
		Switches:  []SwitchConfig{{Name: "s1"}},
		Faults:    &FaultsConfig{DropProb: 2},
	}
	if err := cfg.Validate(); err == nil {
		t.Fatal("drop_prob 2 accepted")
	}
}
