package scenario

import (
	"encoding/json"
	"strings"
	"testing"

	"mdn/internal/core"
	"mdn/internal/telemetry"
)

func trafficTestConfig() TrafficSweepConfig {
	return TrafficSweepConfig{
		Seed:       42,
		FlowCounts: []int{2000, 8000},
	}
}

// TestTrafficSweepAccuracy: on a Zipf workload the sketch stack finds
// every heavy hitter the oracle does and the HLL distinct estimate
// stays inside a few standard errors.
func TestTrafficSweepAccuracy(t *testing.T) {
	rep, err := RunTrafficSweep(trafficTestConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("points = %d", len(rep.Points))
	}
	for _, p := range rep.Points {
		if p.FlowsSeen != p.Flows {
			t.Errorf("flows=%d: only %d emitted (floor should cover all)", p.Flows, p.FlowsSeen)
		}
		if p.Packets == 0 || p.Events == 0 {
			t.Errorf("flows=%d: packets=%d events=%d", p.Flows, p.Packets, p.Events)
		}
		if p.HeavyTrue == 0 {
			t.Errorf("flows=%d: Zipf head produced no heavy hitters", p.Flows)
		}
		if p.FalseNegRate > 0.02 {
			t.Errorf("flows=%d: false-negative rate %.3f > 2%%", p.Flows, p.FalseNegRate)
		}
		if p.MeanRelErr < 0 {
			t.Errorf("flows=%d: count-min underestimated (mean rel err %.4f)", p.Flows, p.MeanRelErr)
		}
		if p.MaxRelErr > 0.02 {
			t.Errorf("flows=%d: max heavy-hitter overestimate %.3f > 2%%", p.Flows, p.MaxRelErr)
		}
		// p=14 -> standard error ~0.82%; allow 5 sigma.
		if p.DistinctRelErr > 0.041 {
			t.Errorf("flows=%d: HLL error %.3f > 4.1%%", p.Flows, p.DistinctRelErr)
		}
		// The pool bounds live packets far below the total sent.
		if p.PoolAllocated > p.Packets/2 {
			t.Errorf("flows=%d: pool allocated %d of %d packets", p.Flows, p.PoolAllocated, p.Packets)
		}
	}
	if !strings.Contains(rep.Table(), "traffic analytics sweep") {
		t.Error("Table() missing header")
	}
}

// TestTrafficSweepByteIdenticalAcrossWorkers: the report is a pure
// function of the seed — wall-clock rates go to telemetry, never into
// the JSON — so serial and parallel runs marshal to identical bytes.
func TestTrafficSweepByteIdenticalAcrossWorkers(t *testing.T) {
	serial := trafficTestConfig()
	serial.Workers = 1
	pooled := trafficTestConfig()
	pooled.Workers = 4

	a, err := RunTrafficSweep(serial, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTrafficSweep(pooled, nil)
	if err != nil {
		t.Fatal(err)
	}
	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Fatalf("sweep diverged across worker counts:\n%s\nvs\n%s", a.Table(), b.Table())
	}
}

// TestTrafficSweepTelemetry: the sweep publishes the estimate-error
// histogram and wall-rate gauges, and the dump survives
// exposition-format validation.
func TestTrafficSweepTelemetry(t *testing.T) {
	reg := telemetry.New()
	cfg := trafficTestConfig()
	cfg.FlowCounts = []int{2000}
	if _, err := RunTrafficSweep(cfg, reg); err != nil {
		t.Fatal(err)
	}
	txt := reg.Snapshot().Text()
	if err := telemetry.ValidateText(strings.NewReader(txt)); err != nil {
		t.Fatalf("metrics dump invalid: %v", err)
	}
	for _, want := range []string{
		core.MetricSketchError + "_bucket",
		core.MetricTrafficPPS,
		core.MetricTrafficEPS,
	} {
		if !strings.Contains(txt, want) {
			t.Errorf("metrics dump missing %s:\n%s", want, txt)
		}
	}
}

// TestTrafficSweepRejectsBadConfig covers the knob validation.
func TestTrafficSweepRejectsBadConfig(t *testing.T) {
	if _, err := RunTrafficSweep(TrafficSweepConfig{FlowCounts: []int{0}}, nil); err == nil {
		t.Error("flow count 0 accepted")
	}
	if _, err := RunTrafficSweep(TrafficSweepConfig{FlowCounts: []int{10}, Epsilon: 2}, nil); err == nil {
		t.Error("epsilon 2 accepted")
	}
	if _, err := RunTrafficSweep(TrafficSweepConfig{FlowCounts: []int{10}, Precision: 99}, nil); err == nil {
		t.Error("precision 99 accepted")
	}
}
