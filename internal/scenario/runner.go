package scenario

import (
	"fmt"
	"sort"

	"mdn/internal/acoustic"
	"mdn/internal/core"
	"mdn/internal/mp"
	"mdn/internal/netsim"
	"mdn/internal/telemetry"
)

// orDefault substitutes def for an unset (zero) knob.
func orDefault(v, def float64) float64 {
	if v == 0 {
		return def
	}
	return v
}

// sketchPrecision resolves an app's HyperLogLog precision knob.
func sketchPrecision(ac AppConfig) uint8 {
	if ac.SketchPrecision == 0 {
		return DefaultSketchPrecision
	}
	return uint8(ac.SketchPrecision)
}

// Report is what a scenario run produces.
type Report struct {
	// Name echoes the scenario name.
	Name string `json:"name"`
	// DurationS is the simulated time covered.
	DurationS float64 `json:"duration_s"`
	// WindowsAnalysed counts controller capture windows.
	WindowsAnalysed uint64 `json:"windows_analysed"`
	// TonesDetected counts raw per-window detections.
	TonesDetected uint64 `json:"tones_detected"`
	// Hosts summarises per-host traffic counters.
	Hosts []HostReport `json:"hosts"`
	// Apps summarises per-application outcomes.
	Apps []AppReport `json:"apps"`
	// Health is the controller's end-of-run health snapshot: verdict,
	// recovered panics, quarantines, and wire fault counters.
	Health *core.HealthSnapshot `json:"health,omitempty"`
	// Metrics is the end-of-run telemetry snapshot: every counter and
	// latency histogram the instrumented pipeline recorded. Counter
	// values are reproducible across runs of the same config; the
	// wall-clock histograms (decode and dispatch time) are not, so the
	// field sits next to Health rather than inside it.
	Metrics *telemetry.Snapshot `json:"metrics,omitempty"`
	// Stream summarises the streaming detection path (set only when
	// Config.Stream).
	Stream *StreamReport `json:"stream,omitempty"`
	// Devices is the device-health monitor's end-of-run snapshot, one
	// row per microphone and watched speaker (set only when the config
	// has extra mics or device faults). Rows are deterministic
	// functions of the simulated run, ordered mics-then-speakers in
	// registration order.
	Devices []core.DeviceHealth `json:"devices,omitempty"`
}

// StreamReport is the streaming path's run summary: hop counts and the
// sim-time sound-to-detection latency percentiles (seconds from a
// tone's arrival at the microphone to the close of the hop that first
// detected it — the quantity the streaming path exists to shrink).
type StreamReport struct {
	HopS          float64 `json:"hop_s"`
	Hops          uint64  `json:"hops"`
	Onsets        uint64  `json:"onsets"`
	CaptureErrors uint64  `json:"capture_errors"`
	DetectP50     float64 `json:"detect_p50_s"`
	DetectP99     float64 `json:"detect_p99_s"`
}

// HostReport is one host's counters.
type HostReport struct {
	Name      string `json:"name"`
	TxPackets uint64 `json:"tx_packets"`
	RxPackets uint64 `json:"rx_packets"`
	TxBytes   uint64 `json:"tx_bytes"`
	RxBytes   uint64 `json:"rx_bytes"`
}

// AppReport is one application's outcome.
type AppReport struct {
	Type   string `json:"type"`
	Switch string `json:"switch"`
	// Events is app-specific: heavy-hitter reports, scan alerts,
	// decoded queue levels, heartbeat alerts.
	Events []string `json:"events"`
}

// Run executes the scenario and returns its report.
func Run(c *Config) (*Report, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	sim := netsim.NewSim()
	room := acoustic.NewRoom(44100, c.Seed)
	// Deployment defaults for the acoustic plane: audibility culling
	// at each microphone's own noise floor (tones buried below the
	// electronics cannot change a detection), and a bounded emission
	// history — scenarios only ever consume the moving capture window,
	// so the controller compacts 2 s behind it (Retention, set after
	// the manager exists below).
	room.CullThreshold = acoustic.CullAuto
	mic := room.AddMicrophone("controller", acoustic.Position{}, 0.0005)
	extraMics := make([]*acoustic.Microphone, 0, len(c.Mics))
	for _, mc := range c.Mics {
		noise := mc.NoiseRMS
		if noise == 0 {
			noise = 0.0005
		}
		extraMics = append(extraMics,
			room.AddMicrophone(mc.Name, acoustic.Position{X: mc.X, Y: mc.Y}, noise))
	}
	plan := core.DefaultPlan()

	// Switches with voices.
	sws := make(map[string]*netsim.Switch, len(c.Switches))
	voices := make(map[string]*core.Voice, len(c.Switches))
	for i, sc := range c.Switches {
		sw := netsim.NewSwitch(sim, sc.Name)
		sp := room.AddSpeaker(sc.Name, acoustic.Position{X: sc.X, Y: sc.Y})
		voices[sc.Name] = core.NewVoice(sim, mp.NewSounder(mp.NewPi(sim, sp, 0.002)))
		sws[sc.Name] = sw
		if f := c.Faults; f != nil {
			voices[sc.Name].Sounder().InjectFaults(netsim.Faults{
				DropProb:  f.DropProb,
				FlipProb:  f.FlipProb,
				TruncProb: f.TruncProb,
				JitterMax: f.JitterMaxS,
				// Per-switch stream, derived from the scenario seed so
				// runs replay exactly.
				Seed: c.Seed*1000 + int64(i),
			})
		}
	}

	// Hosts.
	hostsByName := make(map[string]*netsim.Host, len(c.Hosts))
	for _, hc := range c.Hosts {
		h := netsim.NewHost(sim, hc.Name, netsim.MustAddr(hc.Addr))
		rate := hc.RateMbps
		if rate <= 0 {
			rate = 1000
		}
		lat := hc.LatencyMs
		if lat <= 0 {
			lat = 0.1
		}
		netsim.Connect(sim, h, 1, sws[hc.Switch], hc.Port, rate*1e6, lat/1000, hc.Queue)
		hostsByName[hc.Name] = h
	}
	// Switch-switch links.
	for _, lc := range c.Links {
		rate := lc.RateMbps
		if rate <= 0 {
			rate = 1000
		}
		lat := lc.LatencyMs
		if lat <= 0 {
			lat = 0.1
		}
		netsim.Connect(sim, sws[lc.A], lc.APort, sws[lc.B], lc.BPort, rate*1e6, lat/1000, lc.Queue)
	}
	// Rules.
	for _, rc := range c.Rules {
		rule := netsim.Rule{Priority: rc.Priority}
		if rc.Dst != "" {
			rule.Match.Dst = netsim.MustAddr(rc.Dst)
		}
		rule.Match.DstPort = rc.DstPort
		switch rc.Action {
		case "output":
			rule.Action = netsim.Output(rc.Ports[0])
		case "drop":
			rule.Action = netsim.Drop()
		case "split":
			rule.Action = netsim.Split(rc.Ports...)
		case "hashsplit":
			rule.Action = netsim.HashSplit(rc.Ports...)
		}
		sws[rc.Switch].InstallRule(rule)
	}

	// Applications, via the manager. Every switch's control hop feeds
	// the controller's health snapshot.
	mgr := core.NewManager(sim, mic, plan)
	reg := telemetry.New()
	mgr.Ctrl.Instrument(reg)
	mgr.Ctrl.Retention = 2
	room.Instrument(reg)
	for _, sc := range c.Switches {
		mgr.Ctrl.RegisterVoice(sc.Name, voices[sc.Name])
		voices[sc.Name].Instrument(reg, sc.Name)
	}
	type deployed struct {
		cfg AppConfig
		app interface{}
	}
	var apps []deployed
	taps := make(map[string][]func(*netsim.Packet, int))
	// Frequencies each switch's speaker is commanded to emit, collected
	// as applications deploy — the device monitor's speaker fingerprints
	// train on these.
	switchFreqs := make(map[string][]float64)
	hb := core.NewHeartbeat()
	hbUsed := false
	for appIdx, ac := range c.Apps {
		voice := voices[ac.Switch]
		// Per-app deterministic sketch seed: scenario seed plus the
		// app's position, so two sketch apps never share hash streams.
		sketchSeed := uint64(c.Seed)*0x9e3779b97f4a7c15 + uint64(appIdx) + 1
		switch ac.Type {
		case "heavyhitter":
			hh, err := core.NewHeavyHitter(plan, ac.Switch, voice, ac.Buckets)
			if err != nil {
				return nil, err
			}
			if ac.Threshold > 0 {
				hh.Threshold = ac.Threshold
			}
			if ac.Analytics == "sketch" {
				fc, err := core.NewSketchFlowCounter(
					orDefault(ac.SketchEpsilon, DefaultSketchEpsilon),
					orDefault(ac.SketchDelta, DefaultSketchDelta), sketchSeed)
				if err != nil {
					return nil, err
				}
				hh.SetFlowCounter(fc)
			}
			if err := mgr.Deploy(hh); err != nil {
				return nil, err
			}
			hh.Instrument(reg, ac.Switch)
			taps[ac.Switch] = append(taps[ac.Switch], hh.Tap)
			switchFreqs[ac.Switch] = append(switchFreqs[ac.Switch], hh.Frequencies()...)
			apps = append(apps, deployed{ac, hh})
		case "portscan":
			ps, err := core.NewPortScan(plan, ac.Switch, voice, ac.FirstPort, ac.NumPorts)
			if err != nil {
				return nil, err
			}
			if ac.Threshold > 0 {
				ps.Threshold = ac.Threshold
			}
			if ac.Analytics == "sketch" {
				dc, err := core.NewSketchDistinctCounter(sketchPrecision(ac), sketchSeed)
				if err != nil {
					return nil, err
				}
				ps.SetDistinctCounter(dc)
			}
			if err := mgr.Deploy(ps); err != nil {
				return nil, err
			}
			ps.Instrument(reg, ac.Switch)
			taps[ac.Switch] = append(taps[ac.Switch], ps.Tap)
			switchFreqs[ac.Switch] = append(switchFreqs[ac.Switch], ps.Frequencies()...)
			apps = append(apps, deployed{ac, ps})
		case "queuemon":
			qm, err := core.NewQueueMonitor(plan, sws[ac.Switch], ac.Port, voice)
			if err != nil {
				return nil, err
			}
			if err := mgr.Deploy(qm); err != nil {
				return nil, err
			}
			qm.Instrument(reg, ac.Switch)
			qm.StartSwitchSide(sim, 0.05)
			switchFreqs[ac.Switch] = append(switchFreqs[ac.Switch], qm.Frequencies()...)
			apps = append(apps, deployed{ac, qm})
		case "ddos", "superspreader":
			mode := core.ModeDDoSVictim
			if ac.Type == "superspreader" {
				mode = core.ModeSuperspreader
			}
			k := ac.Threshold
			if k <= 0 {
				k = 5
			}
			sd, err := core.NewSpreadDetector(plan, ac.Switch+"/"+ac.Type, voice, mode,
				netsim.MustAddr(ac.Watch), ac.Buckets, k)
			if err != nil {
				return nil, err
			}
			if ac.Analytics == "sketch" {
				dc, err := core.NewSketchDistinctCounter(sketchPrecision(ac), sketchSeed)
				if err != nil {
					return nil, err
				}
				sd.SetDistinctCounter(dc)
			}
			if err := mgr.Deploy(sd); err != nil {
				return nil, err
			}
			sd.Instrument(reg, ac.Switch)
			taps[ac.Switch] = append(taps[ac.Switch], sd.Tap)
			switchFreqs[ac.Switch] = append(switchFreqs[ac.Switch], sd.Frequencies()...)
			apps = append(apps, deployed{ac, sd})
		case "heartbeat":
			f, err := hb.Register(plan, ac.Switch, voice)
			if err != nil {
				return nil, err
			}
			if ac.PeriodS > 0 {
				hb.Period = ac.PeriodS
			}
			if _, err := hb.StartDevice(sim, f, 0.1); err != nil {
				return nil, err
			}
			switchFreqs[ac.Switch] = append(switchFreqs[ac.Switch], f)
			hbUsed = true
		}
	}
	if hbUsed {
		if err := mgr.Deploy(hb); err != nil {
			return nil, err
		}
		hb.Instrument(reg, "controller")
		apps = append(apps, deployed{AppConfig{Type: "heartbeat", Switch: "*"}, hb})
	}
	for name, fns := range taps {
		fns := fns
		sws[name].Tap = func(p *netsim.Packet, in int) {
			for _, fn := range fns {
				fn(p, in)
			}
		}
	}
	if c.MinAmplitude > 0 {
		mgr.Ctrl.Detector.MinAmplitude = c.MinAmplitude
	}
	// Device health: extra listening points fan out through the fleet
	// engine; any fault (or any extra mic) arms the monitor so floors
	// recalibrate, deaf mics quarantine and rejoin, and faulted
	// speakers are fingerprinted for re-keying.
	if len(extraMics) > 0 {
		fleet := mgr.Ctrl.EnableFleet(0)
		for _, m := range extraMics {
			fleet.AddMicrophone(m)
		}
		fleet.Instrument(reg)
		defer fleet.Close()
	}
	if len(extraMics) > 0 || len(c.DeviceFaults) > 0 {
		mon := mgr.Ctrl.EnableDeviceMonitor()
		watched := map[string]bool{}
		for _, df := range c.DeviceFaults {
			applyDeviceFault(room, df)
			speakerFault := df.Kind == FaultSpeakerDecay || df.Kind == FaultSpeakerDetune
			if speakerFault && !watched[df.Device] {
				watched[df.Device] = true
				mon.WatchSpeaker(df.Device, voices[df.Device], switchFreqs[df.Device]...)
			}
		}
	}
	var stream *core.StreamController
	if c.Stream {
		hop := c.HopS
		if hop == 0 {
			hop = DefaultHopS
		}
		stream = mgr.StartStream(0, hop)
	} else {
		mgr.Start(0)
	}

	// Traffic.
	for _, tc := range c.Traffic {
		from := hostsByName[tc.From]
		to := hostsByName[tc.To]
		flow := netsim.FiveTuple{
			Src: from.Addr, Dst: to.Addr,
			SrcPort: tc.SrcPort, DstPort: tc.DstPort, Proto: netsim.ProtoTCP,
		}
		size := tc.Size
		if size <= 0 {
			size = netsim.DefaultPacketSize
		}
		switch tc.Type {
		case "cbr":
			netsim.StartCBR(sim, from, flow, tc.PPS, size, tc.StartS, tc.StopS)
		case "poisson":
			netsim.StartPoisson(sim, from, flow, tc.PPS, size, tc.StartS, tc.StopS, c.Seed+int64(tc.SrcPort))
		case "ramp":
			end := tc.EndPPS
			if end <= 0 {
				end = tc.PPS * 10
			}
			netsim.StartRamp(sim, from, flow, tc.PPS, end, size, tc.StartS, tc.StopS)
		case "portscan":
			interval := tc.IntervalMs / 1000
			if interval <= 0 {
				interval = 0.2
			}
			netsim.StartPortScan(sim, from, flow, tc.FirstPort, tc.NumPorts, interval, tc.StartS)
		}
	}

	// Noise.
	for i, nc := range c.Noise {
		var src *acoustic.NoiseSource
		switch nc.Type {
		case "song":
			level := nc.Level
			if level <= 0 {
				level = 0.02
			}
			src = core.PopSongNoise(44100, 5, level, c.Seed+int64(i))
		case "datacenter":
			src = core.DatacenterNoise(44100, 3, c.Seed+int64(i))
		case "office":
			src = core.OfficeNoise(44100, 3, c.Seed+int64(i))
		}
		src.Pos = acoustic.Position{X: nc.X, Y: nc.Y}
		room.AddNoise(src)
	}

	sim.RunUntil(c.DurationS)

	// Build the report.
	rep := &Report{Name: c.Name, DurationS: c.DurationS}
	rep.WindowsAnalysed = mgr.Ctrl.Windows
	rep.TonesDetected = mgr.Ctrl.Detections
	var hostNames []string
	for name := range hostsByName {
		hostNames = append(hostNames, name)
	}
	sort.Strings(hostNames)
	for _, name := range hostNames {
		h := hostsByName[name]
		rep.Hosts = append(rep.Hosts, HostReport{
			Name: name, TxPackets: h.TxPackets, RxPackets: h.RxPackets,
			TxBytes: h.TxBytes, RxBytes: h.RxBytes,
		})
	}
	for _, d := range apps {
		ar := AppReport{Type: d.cfg.Type, Switch: d.cfg.Switch}
		switch app := d.app.(type) {
		case *core.HeavyHitter:
			for _, r := range app.Reports {
				ar.Events = append(ar.Events, fmt.Sprintf(
					"t=%.1fs heavy hitter: bucket %d (%d tone onsets)", r.Time, r.Bucket, r.Count))
			}
		case *core.PortScan:
			for _, a := range app.Alerts {
				ar.Events = append(ar.Events, fmt.Sprintf(
					"t=%.1fs port scan: %d distinct ports", a.Time, a.DistinctPorts))
			}
		case *core.QueueMonitor:
			for _, l := range app.HeardLevels() {
				ar.Events = append(ar.Events, core.LevelName(l))
			}
		case *core.Heartbeat:
			for _, a := range app.Alerts {
				ar.Events = append(ar.Events, fmt.Sprintf(
					"t=%.1fs device %s silent (%d missed beats)", a.Time, a.Device, a.MissedBeats))
			}
		case *core.SpreadDetector:
			for _, a := range app.Alerts {
				ar.Events = append(ar.Events, fmt.Sprintf(
					"t=%.1fs %s alert: %d distinct counterpart buckets (k=%d)",
					a.Time, app.Mode, a.Distinct, app.K))
			}
		}
		rep.Apps = append(rep.Apps, ar)
	}
	health := mgr.Health()
	rep.Health = &health
	snap := reg.Snapshot()
	rep.Metrics = &snap
	if mon := mgr.Ctrl.DeviceMonitor(); mon != nil {
		rep.Devices = mon.Snapshot()
	}
	if stream != nil {
		rep.Stream = &StreamReport{
			HopS:          stream.Hop(),
			Hops:          stream.Hops,
			Onsets:        stream.Onsets,
			CaptureErrors: stream.CaptureErrors,
			DetectP50:     stream.DetectLatency().Quantile(0.5),
			DetectP99:     stream.DetectLatency().Quantile(0.99),
		}
	}
	return rep, nil
}

// applyDeviceFault schedules one validated degradation ramp (and its
// optional healing ramp) on the acoustic plane.
func applyDeviceFault(room *acoustic.Room, f DeviceFaultConfig) {
	span := f.EndS - f.StartS
	switch f.Kind {
	case FaultMicNoiseRamp:
		m := room.Microphone(f.Device)
		m.ScheduleNoiseRamp(f.StartS, f.EndS, f.Level)
		if f.ClearS != 0 {
			m.ScheduleNoiseRamp(f.ClearS, f.ClearS+span, m.SelfNoiseRMS)
		}
	case FaultMicSensitivity:
		m := room.Microphone(f.Device)
		m.ScheduleSensitivityRamp(f.StartS, f.EndS, f.Level)
		if f.ClearS != 0 {
			m.ScheduleSensitivityRamp(f.ClearS, f.ClearS+span, 1)
		}
	case FaultSpeakerDecay:
		s := room.Speaker(f.Device)
		s.ScheduleAmplitudeDecay(f.StartS, f.EndS, f.Level)
		if f.ClearS != 0 {
			s.ScheduleAmplitudeDecay(f.ClearS, f.ClearS+span, 1)
		}
	case FaultSpeakerDetune:
		s := room.Speaker(f.Device)
		s.ScheduleDetune(f.StartS, f.EndS, f.Level)
		if f.ClearS != 0 {
			s.ScheduleDetune(f.ClearS, f.ClearS+span, 1)
		}
	}
}
