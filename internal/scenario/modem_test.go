package scenario

import (
	"encoding/json"
	"testing"
)

func modemSweepTestConfig() ModemSweepConfig {
	return ModemSweepConfig{Seed: 7, Frames: 6, PayloadBytes: 64}
}

// TestModemSweepRSRecoversAtFivePercent is the PR's acceptance sweep:
// with Reed-Solomon enabled, a seeded ≥5% symbol-corruption attack on
// the payload epochs loses no frames at all.
func TestModemSweepRSRecoversAtFivePercent(t *testing.T) {
	rep, err := RunModemSweep(modemSweepTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	var checked bool
	for _, p := range rep.Points {
		if p.FEC != "rs_p48" {
			continue
		}
		if p.FramesTx == 0 {
			t.Fatalf("rs point at %.0f%% sent nothing", 100*p.CorruptRate)
		}
		if p.CorruptRate > 0 && p.SymbolsCorrupted == 0 {
			t.Fatalf("rs point at %.0f%%: corruptor never fired", 100*p.CorruptRate)
		}
		if p.CorruptRate <= 0.05 {
			checked = true
			if p.FramesRx != p.FramesTx {
				t.Errorf("rs at %.0f%% corruption: recovered %d of %d frames, want all\n%s",
					100*p.CorruptRate, p.FramesRx, p.FramesTx, rep.Table())
			}
		}
	}
	if !checked {
		t.Fatal("sweep grid missing the rs_p48 ≤5% points")
	}
}

// TestModemSweepGracefulDegradation pins the shape of the grid: clean
// points deliver everything at ≥10× the melody baseline (~25 bit/s),
// and the uncoded channel visibly loses frames under heavy corruption
// while never delivering a corrupted payload silently (CRC counts the
// casualties).
func TestModemSweepGracefulDegradation(t *testing.T) {
	rep, err := RunModemSweep(modemSweepTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	const melodyBaseline = 25.0
	for _, p := range rep.Points {
		if p.CorruptRate == 0 {
			if p.FramesRx != p.FramesTx {
				t.Errorf("%s clean: %d of %d frames", p.FEC, p.FramesRx, p.FramesTx)
			}
			// Uncoded carries the 10× acceptance floor; coded schemes
			// trade rate (4/7 for Hamming, ~58% for rs_p48 at this
			// frame size) for recovery and must still clear 5×.
			floor := 10 * melodyBaseline
			if p.FEC != "none" {
				floor = 5 * melodyBaseline
			}
			if p.GoodputBps < floor {
				t.Errorf("%s clean: goodput %.1f bit/s < floor %.0f bit/s", p.FEC, p.GoodputBps, floor)
			}
		}
		if p.FramesRx < p.FramesTx && p.CRCFailures == 0 && p.FECFailures == 0 && p.HeaderFailures == 0 {
			t.Errorf("%s at %.0f%%: lost frames with no failure accounted", p.FEC, 100*p.CorruptRate)
		}
	}
	var uncodedHeavy *ModemSweepPoint
	for i := range rep.Points {
		p := &rep.Points[i]
		if p.FEC == "none" && p.CorruptRate == 0.10 {
			uncodedHeavy = p
		}
	}
	if uncodedHeavy == nil {
		t.Fatal("grid missing none@10%")
	}
	if uncodedHeavy.FramesRx == uncodedHeavy.FramesTx {
		t.Errorf("uncoded channel survived 10%% corruption unscathed — corruptor inert?\n%s", rep.Table())
	}
}

// TestModemSweepByteIdenticalAcrossWorkers is the determinism
// contract: the JSON report must not depend on the worker count.
func TestModemSweepByteIdenticalAcrossWorkers(t *testing.T) {
	serial := modemSweepTestConfig()
	serial.Workers = 1
	pooled := modemSweepTestConfig()
	pooled.Workers = 4

	a, err := RunModemSweep(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunModemSweep(pooled)
	if err != nil {
		t.Fatal(err)
	}
	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Fatalf("sweep diverged across worker counts:\n%s\nvs\n%s", a.Table(), b.Table())
	}
}

// TestModemSweepStreamPathDelivers runs the sweep's rs_p48 column on
// the streaming detection path: overlapping 10 ms hops must demodulate
// the same frames.
func TestModemSweepStreamPathDelivers(t *testing.T) {
	cfg := ModemSweepConfig{Seed: 7, Frames: 3, PayloadBytes: 64,
		FECs: []string{"rs_p48"}, CorruptRates: []float64{0, 0.05}, StreamHop: 0.010}
	rep, err := RunModemSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Points {
		if p.FramesRx != p.FramesTx {
			t.Errorf("stream rs at %.0f%%: %d of %d frames\n%s",
				100*p.CorruptRate, p.FramesRx, p.FramesTx, rep.Table())
		}
	}
}

func TestModemSweepRejectsBadConfig(t *testing.T) {
	if _, err := RunModemSweep(ModemSweepConfig{FECs: []string{"nonsense"}}); err == nil {
		t.Error("unknown FEC accepted")
	}
	if _, err := RunModemSweep(ModemSweepConfig{CorruptRates: []float64{1.5}}); err == nil {
		t.Error("out-of-range rate accepted")
	}
	if _, err := RunModemSweep(ModemSweepConfig{StreamHop: 0.012}); err == nil {
		t.Error("misaligned stream hop accepted")
	}
}
