package experiments

import (
	"mdn/internal/acoustic"
	"mdn/internal/core"
	"mdn/internal/mp"
	"mdn/internal/netsim"
	"mdn/internal/openflow"
)

// Fig3 reproduces Figure 3: port knocking. A sender keeps trying to
// push TCP traffic to a closed port; nothing is delivered until the
// controller hears the three knock tones in the correct order and
// installs the opening flow rule, after which goodput jumps to the
// send rate. In the paper the sender is blocked for about 34 seconds;
// the blocked interval here is set by when we schedule the knocks —
// the shape (flat zero, then tracking the send curve) is the claim.
func Fig3() *Result {
	r := &Result{ID: "fig3", Title: "Port knocking: bytes sent vs received"}
	const (
		sampleRate = 44100.0
		sendRate   = 50.0 // pps
		pktSize    = 1000
		duration   = 20.0
	)
	knockTimes := []float64{10.0, 10.5, 11.0}
	knockPorts := []uint16{7001, 7002, 7003}

	sim := netsim.NewSim()
	room := acoustic.NewRoom(sampleRate, 33)
	mic := room.AddMicrophone("controller", acoustic.Position{}, 0.0005)
	plan := core.DefaultPlan()

	h1 := netsim.NewHost(sim, "h1", netsim.MustAddr("10.0.0.1"))
	h2 := netsim.NewHost(sim, "h2", netsim.MustAddr("10.0.0.2"))
	sw := netsim.NewSwitch(sim, "s1")
	netsim.Connect(sim, h1, 1, sw, 1, 1e8, 0.0001, 0)
	netsim.Connect(sim, h2, 1, sw, 2, 1e8, 0.0001, 0)

	sp := room.AddSpeaker("s1", acoustic.Position{X: 1.5})
	voice := core.NewVoice(sim, mp.NewSounder(mp.NewPi(sim, sp, 0.002)))
	ch := openflow.NewChannel(sim, sw, 0.005)
	pk, err := core.NewPortKnock(plan, "s1", voice, ch, knockPorts, openflow.FlowMod{
		Command:  openflow.FlowAdd,
		Priority: 10,
		Match:    netsim.Match{Dst: h2.Addr, DstPort: 8080},
		Action:   netsim.Output(2),
	})
	if err != nil {
		panic(err)
	}
	sw.Tap = pk.Tap

	ctrl := core.NewController(sim, mic, core.NewDetector(core.MethodGoertzel, pk.Frequencies()))
	ctrl.SubscribeWindows(pk.HandleWindow)
	ctrl.Start(0)

	// Sender: continuous TCP attempts to the protected port.
	dataFlow := netsim.FiveTuple{
		Src: h1.Addr, Dst: h2.Addr, SrcPort: 40000, DstPort: 8080, Proto: netsim.ProtoTCP,
	}
	netsim.StartCBR(sim, h1, dataFlow, sendRate, pktSize, 0, duration)
	// Knocker.
	for i, at := range knockTimes {
		port := knockPorts[i]
		sim.Schedule(at, func() {
			h1.Send(netsim.FiveTuple{
				Src: h1.Addr, Dst: h2.Addr, SrcPort: 40001, DstPort: port, Proto: netsim.ProtoTCP,
			}, 64)
		})
	}
	// Goodput sampling.
	var sentX, sentY, recvX, recvY []float64
	sim.Every(0.25, 0.25, func(now float64) {
		sentX = append(sentX, now)
		sentY = append(sentY, float64(h1.TxBytes))
		recvX = append(recvX, now)
		recvY = append(recvY, float64(h2.RxBytes))
	})
	sim.RunUntil(duration)

	// Shape checks.
	var recvAtKnock, recvEnd float64
	for i, x := range recvX {
		if x <= knockTimes[2] {
			recvAtKnock = recvY[i]
		}
		recvEnd = recvY[i]
	}
	r.row("traffic delivered before the knock completes", "none", recvAtKnock == 0,
		"%.0f bytes", recvAtKnock)
	r.row("port opens after third correct knock", "yes", pk.Opened && pk.OpenedAt > knockTimes[2],
		"opened=%v at t=%.2f s (knock 3 at %.1f s)", pk.Opened, pk.OpenedAt, knockTimes[2])
	expected := sendRate * pktSize * (duration - pk.OpenedAt) // bytes after opening
	okGoodput := pk.Opened && recvEnd > 0.8*expected && recvEnd <= expected*1.05
	r.row("post-open goodput tracks send rate", "receive curve follows send curve",
		okGoodput, "%.0f bytes received vs %.0f expected", recvEnd, expected)

	r.addSeries("cumulative bytes sent", sentX, sentY)
	r.addSeries("cumulative bytes received", recvX, recvY)
	r.note("blocked interval: 0–%.2f s; wrong-order knocks observed: %d",
		pk.OpenedAt, pk.WrongKnocks)
	// Figure 3b's raw material: the knock melody as heard at the
	// controller microphone.
	r.attachAudio("knock melody at the controller microphone (t=9.8–11.5 s)",
		mic.Capture(knockTimes[0]-0.2, knockTimes[2]+0.5))
	return r
}
