package experiments

import (
	"fmt"
	"math/rand"

	"mdn/internal/audio"
	"mdn/internal/core"
)

// Sec3Spacing reproduces the Section 3 claim that "a distance of
// approximately 20 Hz between frequencies is needed to accurately
// differentiate them". For each candidate spacing we run trials at
// random base frequencies: (a) a lone tone must be identified without
// waking its neighbour's detector, and (b) two simultaneous tones at
// that spacing must both be identified. Accuracy collapses below
// ~20 Hz and is high at and above it.
func Sec3Spacing() *Result {
	r := &Result{ID: "sec3-spacing", Title: "Frequency spacing needed for identification"}
	const (
		sampleRate = 44100.0
		windowDur  = 0.100 // full-window tones, as in the paper's probe
		trials     = 20
	)
	spacings := []float64{5, 10, 20, 40, 80}
	rng := rand.New(rand.NewSource(31))
	var xs, ys []float64
	accuracy := make(map[float64]float64, len(spacings))
	for _, spacing := range spacings {
		correct := 0
		for trial := 0; trial < trials; trial++ {
			base := 600 + rng.Float64()*2000
			watch := []float64{base, base + spacing}
			det := core.NewDetector(core.MethodGoertzel, watch)

			// (a) lone tone at base: only base may fire.
			lone := audio.Tone{Frequency: base, Duration: windowDur, Amplitude: 0.03}.Render(sampleRate)
			la := det.Detect(lone, 0)
			okLone := len(la) == 1 && la[0].Frequency == base

			// (b) both tones together: both must fire.
			pair := audio.Chord(sampleRate,
				audio.Tone{Frequency: base, Duration: windowDur, Amplitude: 0.03},
				audio.Tone{Frequency: base + spacing, Duration: windowDur, Amplitude: 0.03, Phase: 1.3},
			)
			pa := det.Detect(pair, 0)
			okPair := len(pa) == 2

			if okLone && okPair {
				correct++
			}
		}
		acc := float64(correct) / trials
		accuracy[spacing] = acc
		xs = append(xs, spacing)
		ys = append(ys, acc)
	}
	r.row("accuracy at 20 Hz spacing", "reliable differentiation", accuracy[20] >= 0.9,
		"%.0f%%", accuracy[20]*100)
	r.row("accuracy below 20 Hz degrades", "tones indistinguishable", accuracy[5] < accuracy[20],
		"5 Hz: %.0f%%, 10 Hz: %.0f%%", accuracy[5]*100, accuracy[10]*100)
	r.row("wider spacing stays reliable", "no regression", accuracy[40] >= 0.9 && accuracy[80] >= 0.9,
		"40 Hz: %.0f%%, 80 Hz: %.0f%%", accuracy[40]*100, accuracy[80]*100)
	r.addSeries("identification accuracy vs spacing (Hz)", xs, ys)
	return r
}

// Sec3Duration reproduces the Section 3 claim that the shortest
// usable tone is approximately 30 ms. Short tones smear spectrally: in
// a 50 ms analysis window a sub-30 ms tone excites its guard-banded
// neighbours almost as strongly as itself, making identification
// ambiguous, while tones of 30 ms and up identify cleanly.
func Sec3Duration() *Result {
	r := &Result{ID: "sec3-duration", Title: "Shortest usable tone duration"}
	const (
		sampleRate = 44100.0
		windowDur  = 0.050
		trials     = 20
	)
	durations := []float64{0.005, 0.010, 0.020, 0.030, 0.050, 0.100}
	rng := rand.New(rand.NewSource(41))
	var xs, ys []float64
	acc := make(map[float64]float64, len(durations))
	for _, dur := range durations {
		correct := 0
		for trial := 0; trial < trials; trial++ {
			base := 800 + rng.Float64()*2000
			// Guard-banded neighbours, as applications allocate them.
			watch := []float64{base - 160, base - 80, base, base + 80, base + 160}
			det := core.NewDetector(core.MethodGoertzel, watch)
			span := windowDur
			if dur > span {
				span = dur
			}
			buf := audio.NewBuffer(sampleRate, span)
			tone := audio.Tone{Frequency: base, Duration: dur, Amplitude: 0.03}
			buf.MixAt(tone.Render(sampleRate), 0, 1)
			got := det.Detect(buf, 0)
			if len(got) == 1 && got[0].Frequency == base {
				correct++
			}
		}
		a := float64(correct) / trials
		acc[dur] = a
		xs = append(xs, dur*1000)
		ys = append(ys, a)
	}
	r.row("30 ms tones identify unambiguously", "shortest generated tone ~30 ms works",
		acc[0.030] >= 0.9, "%.0f%%", acc[0.030]*100)
	r.row("much shorter tones become ambiguous", "unusable below the floor",
		acc[0.005] < 0.5 && acc[0.010] < acc[0.030], "5 ms: %.0f%%, 10 ms: %.0f%%",
		acc[0.005]*100, acc[0.010]*100)
	r.row("longer tones stay clean", "no regression", acc[0.050] >= 0.9 && acc[0.100] >= 0.9,
		"50 ms: %.0f%%, 100 ms: %.0f%%", acc[0.050]*100, acc[0.100]*100)
	r.addSeries("unambiguous identification vs tone duration (ms)", xs, ys)
	return r
}

// Sec5Capacity reproduces the Section 5 claim that roughly 1000
// distinct frequencies can be distinguished when played
// simultaneously within the human-hearable range. We synthesize N
// concurrent 20 Hz-spaced tones and count how many the FFT detector
// recovers.
func Sec5Capacity() *Result {
	r := &Result{ID: "sec5-capacity", Title: "Simultaneous distinguishable frequencies"}
	const (
		sampleRate = 44100.0
		dur        = 0.200 // 5 Hz resolution: plenty for 20 Hz spacing
		amplitude  = 0.01
	)
	counts := []int{100, 250, 500, 1000}
	rng := rand.New(rand.NewSource(51))
	var xs, ys []float64
	recovered := make(map[int]float64, len(counts))
	for _, n := range counts {
		freqs := make([]float64, n)
		for i := range freqs {
			freqs[i] = 300 + 20*float64(i)
		}
		buf := audio.NewBuffer(sampleRate, dur)
		for _, f := range freqs {
			t := audio.Tone{Frequency: f, Duration: dur, Amplitude: amplitude, Phase: rng.Float64() * 6.28}
			buf.MixAt(t.Render(sampleRate), 0, 1)
		}
		det := core.NewDetector(core.MethodFFT, freqs)
		det.ToleranceHz = 5
		det.RelativeFloor = 0.05 // equal-amplitude tones; leakage is low at 20 Hz with 5 Hz bins
		got := det.Detect(buf, 0)
		frac := float64(len(got)) / float64(n)
		recovered[n] = frac
		xs = append(xs, float64(n))
		ys = append(ys, frac)
	}
	r.row("1000 simultaneous frequencies recoverable", "~1000 distinct frequencies feasible",
		recovered[1000] >= 0.95, "%.1f%% of 1000 detected", recovered[1000]*100)
	for _, n := range []int{100, 250, 500} {
		r.row(fmt.Sprintf("%d simultaneous frequencies", n), "all detected",
			recovered[n] >= 0.99, "%.1f%%", recovered[n]*100)
	}
	r.addSeries("fraction recovered vs concurrent tone count", xs, ys)
	return r
}
