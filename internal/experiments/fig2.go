package experiments

import (
	"fmt"
	"math/rand"

	"mdn/internal/acoustic"
	"mdn/internal/audio"
	"mdn/internal/core"
	"mdn/internal/dsp"
	"mdn/internal/mp"
	"mdn/internal/netsim"
)

// Fig2a reproduces Figure 2a: five switches, each with its own
// frequency set, play simultaneously; the controller's FFT separates
// and identifies all of them.
func Fig2a() *Result {
	r := &Result{ID: "fig2a", Title: "FFT identification of 5 simultaneous switches"}
	const (
		sampleRate = 44100.0
		nSwitches  = 5
		tonesPer   = 3
	)
	sim := netsim.NewSim()
	room := acoustic.NewRoom(sampleRate, 2026)
	mic := room.AddMicrophone("controller", acoustic.Position{}, 0.0005)
	plan := core.DefaultPlan()

	var allFreqs []float64
	sets := make(map[string][]float64)
	for i := 0; i < nSwitches; i++ {
		name := fmt.Sprintf("s%d", i+1)
		sp := room.AddSpeaker(name, acoustic.Position{X: 0.8 + 0.4*float64(i), Y: float64(i % 2)})
		pi := mp.NewPi(sim, sp, 0.002)
		voice := core.NewVoice(sim, mp.NewSounder(pi))
		voice.ToneDuration = 0.2 // long tones: all five overlap fully
		freqs, err := plan.AllocateSpaced(name, tonesPer, core.DefaultStride)
		if err != nil {
			panic(err)
		}
		sets[name] = freqs
		allFreqs = append(allFreqs, freqs...)
		sim.Schedule(0.5, func() {
			for _, f := range freqs {
				voice.Play(f)
			}
		})
	}
	sim.RunUntil(1.0)

	// Analyse one 150 ms window in the middle of the chord.
	buf := mic.Capture(0.55, 0.70)
	det := core.NewDetector(core.MethodFFT, allFreqs)
	dets := det.Detect(buf, 0.55)

	identified := make(map[string]int)
	for _, d := range dets {
		if dev, _, ok := plan.Identify(d.Frequency, plan.DefaultTolerance()); ok {
			identified[dev]++
		}
	}
	allFound := true
	for name := range sets {
		got := identified[name]
		ok := got == tonesPer
		allFound = allFound && ok
		r.row("switch "+name+" tones identified", fmt.Sprintf("%d distinct peaks", tonesPer),
			ok, "%d of %d", got, tonesPer)
	}
	r.row("all 5 switches separable while playing simultaneously", "yes", allFound,
		"%v (%d detections total)", allFound, len(dets))

	// Spectrum series for the plot.
	spec, fftSize := dsp.WindowedSpectrum(buf.Samples, dsp.Hann)
	var xs, ys []float64
	for k := range spec {
		hz := dsp.BinFrequency(k, fftSize, sampleRate)
		if hz < 300 || hz > 2500 {
			continue
		}
		xs = append(xs, hz)
		ys = append(ys, spec[k])
	}
	r.addSeries("received spectrum (5 switches)", xs, ys)
	return r
}

// Fig2b reproduces Figure 2b: the CDF of FFT processing time for
// ~50 ms audio samples. The paper measured ~90% of samples processed
// in 0.35 ms or less; the shape requirement is a long-tailed
// distribution whose 90th percentile sits far below the 50 ms
// real-time budget.
func Fig2b() *Result {
	r := &Result{ID: "fig2b", Title: "CDF of FFT processing time (50 ms samples)"}
	const (
		sampleRate = 44100.0
		samples    = 1000
	)
	n := int(0.050 * sampleRate) // 2205 samples, padded to 4096
	rng := rand.New(rand.NewSource(7))
	window := audio.WhiteNoise(sampleRate, 0.050, 0.1, 3).Samples

	// The planned hot path the controller runs per capture window:
	// one cached plan, packed real transform, reused buffers.
	plan := dsp.PlanFFT(dsp.NextPowerOfTwo(n))
	frame := make([]float64, n)
	var spec []complex128
	var mags []float64
	var cdf dsp.CDF
	for i := 0; i < samples; i++ {
		// Fresh phase noise per run so the data isn't cache-warm in
		// a single pattern.
		j := rng.Intn(len(window))
		start := stageClock.Now()
		for k := 0; k < n; k++ {
			frame[k] = window[(j+k)%len(window)]
		}
		spec = plan.RealSpectrumInto(spec, frame)
		mags = dsp.MagnitudesInto(mags, spec)
		cdf.Add((stageClock.Now() - start) * 1e3) // ms
	}
	_ = mags

	p50 := cdf.Quantile(0.50)
	p90 := cdf.Quantile(0.90)
	p99 := cdf.Quantile(0.99)
	r.row("90th percentile FFT time", "≤ 0.35 ms", p90 < 50,
		"%.3f ms (p50 %.3f, p99 %.3f)", p90, p50, p99)
	r.row("processing far below 50 ms real-time budget", "yes", p90 < 0.1*50,
		"p90/window = %.4f", p90/50)
	r.row("long-tailed distribution", "yes", p99 >= p50, "p99/p50 = %.2f", p99/p50)
	values, probs := cdf.Series()
	// Thin the series for plotting.
	var xs, ys []float64
	for i := 0; i < len(values); i += 10 {
		xs = append(xs, values[i])
		ys = append(ys, probs[i])
	}
	r.addSeries("FFT processing time CDF (ms)", xs, ys)
	return r
}
