package experiments

import "mdn/internal/telemetry"

// stageClock times compute stages — the FFT hot path Figure 2b
// measures. It defaults to wall time, which is the honest measurement
// for a processing-latency CDF; tests swap in a deterministic
// telemetry.StepClock so the experiment's numbers (and its pass/fail
// rows) replay exactly instead of depending on the host's load.
var stageClock telemetry.TimeSource = telemetry.Wall()

// SetStageClock overrides the compute-stage timing source and returns
// a function restoring the previous one. Passing nil resets to wall
// time.
func SetStageClock(src telemetry.TimeSource) func() {
	prev := stageClock
	if src == nil {
		src = telemetry.Wall()
	}
	stageClock = src
	return func() { stageClock = prev }
}
