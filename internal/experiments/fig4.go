package experiments

import (
	"mdn/internal/acoustic"
	"mdn/internal/core"
	"mdn/internal/mp"
	"mdn/internal/netsim"
)

// telemetryBed is the shared Section 5 testbed: one switch between
// two hosts, voiced, with a controller listening.
type telemetryBed struct {
	sim  *netsim.Sim
	room *acoustic.Room
	mic  *acoustic.Microphone
	plan *core.FrequencyPlan
	h1   *netsim.Host
	h2   *netsim.Host
	sw   *netsim.Switch
	v    *core.Voice
}

func newTelemetryBed(seed int64) *telemetryBed {
	const sampleRate = 44100.0
	sim := netsim.NewSim()
	room := acoustic.NewRoom(sampleRate, seed)
	mic := room.AddMicrophone("controller", acoustic.Position{}, 0.0005)
	h1 := netsim.NewHost(sim, "h1", netsim.MustAddr("10.0.0.1"))
	h2 := netsim.NewHost(sim, "h2", netsim.MustAddr("10.0.0.2"))
	sw := netsim.NewSwitch(sim, "s1")
	netsim.Connect(sim, h1, 1, sw, 1, 1e9, 0.0001, 0)
	netsim.Connect(sim, h2, 1, sw, 2, 1e9, 0.0001, 0)
	sw.InstallRule(netsim.Rule{Priority: 1, Match: netsim.Match{Dst: h2.Addr}, Action: netsim.Output(2)})
	sp := room.AddSpeaker("s1", acoustic.Position{X: 1.2})
	v := core.NewVoice(sim, mp.NewSounder(mp.NewPi(sim, sp, 0.002)))
	return &telemetryBed{
		sim: sim, room: room, mic: mic, plan: core.DefaultPlan(),
		h1: h1, h2: h2, sw: sw, v: v,
	}
}

func heavyHitterExperiment(id, title string, noisy bool) *Result {
	r := &Result{ID: id, Title: title}
	const (
		duration = 6.0
		buckets  = 16
	)
	bed := newTelemetryBed(400 + int64(len(id)))
	if noisy {
		bed.room.AddNoise(core.PopSongNoise(44100, 5, 0.02, 12))
		r.note("background: deterministic pop-song interference at conversation level")
	}
	hh, err := core.NewHeavyHitter(bed.plan, "s1", bed.v, buckets)
	if err != nil {
		panic(err)
	}
	bed.sw.Tap = hh.Tap
	det := core.NewDetector(core.MethodGoertzel, hh.Frequencies())
	// Calibrated threshold: switch tones arrive near 0.026 amplitude
	// (60 dB at 1.2 m); the pop song's partials stay below ~0.003.
	// Section 3 treats intensity as a deployment policy knob.
	det.MinAmplitude = 0.008
	ctrl := core.NewController(bed.sim, bed.mic, det)
	hh.Start(ctrl, 0)
	ctrl.Start(0)

	elephant := netsim.FiveTuple{
		Src: bed.h1.Addr, Dst: bed.h2.Addr, SrcPort: 5000, DstPort: 80, Proto: netsim.ProtoTCP,
	}
	eBucket := hh.BucketOf(elephant)
	// Four mice in other buckets.
	var mice []netsim.FiveTuple
	for p := uint16(6000); len(mice) < 4; p++ {
		f := netsim.FiveTuple{Src: bed.h1.Addr, Dst: bed.h2.Addr, SrcPort: p, DstPort: 80, Proto: netsim.ProtoTCP}
		if hh.BucketOf(f) != eBucket {
			mice = append(mice, f)
		}
	}
	netsim.StartCBR(bed.sim, bed.h1, elephant, 300, 1500, 0.2, duration)
	for i, m := range mice {
		netsim.StartPoisson(bed.sim, bed.h1, m, 1.2, 300, 0.2, duration, int64(500+i))
	}
	bed.sim.RunUntil(duration)

	flagged := hh.FlaggedBuckets()
	onlyElephant := len(flagged) == 1 && flagged[0] == eBucket
	r.row("elephant flow flagged", "tone count crosses threshold", containsInt(flagged, eBucket),
		"bucket %d flagged in %d intervals", eBucket, len(hh.Reports))
	r.row("mice stay below threshold", "no false positives", onlyElephant,
		"flagged buckets: %v", flagged)

	// Series: per-interval counts of the elephant bucket vs the
	// loudest mouse bucket.
	var xs, ye, ym []float64
	for _, s := range hh.History {
		xs = append(xs, s.Time)
		ye = append(ye, float64(s.Counts[eBucket]))
		maxMouse := 0
		for b, c := range s.Counts {
			if b != eBucket && c > maxMouse {
				maxMouse = c
			}
		}
		ym = append(ym, float64(maxMouse))
	}
	r.addSeries("elephant bucket tone count per interval", xs, ye)
	r.addSeries("loudest mouse bucket tone count per interval", xs, ym)
	return r
}

// Fig4a reproduces Figure 4a: heavy-hitter detection in a quiet room.
func Fig4a() *Result {
	return heavyHitterExperiment("fig4a", "Heavy-hitter detection (quiet)", false)
}

// Fig4b reproduces Figure 4b: the same detection while a pop song
// plays as background noise.
func Fig4b() *Result {
	return heavyHitterExperiment("fig4b", "Heavy-hitter detection under pop-song noise", true)
}

func portScanExperiment(id, title string, noisy bool) *Result {
	r := &Result{ID: id, Title: title}
	const (
		numPorts  = 24
		firstPort = 8000
		probeGap  = 0.2
	)
	bed := newTelemetryBed(600 + int64(len(id)))
	if noisy {
		bed.room.AddNoise(core.PopSongNoise(44100, 5, 0.02, 21))
		r.note("background: deterministic pop-song interference at conversation level")
	}
	ps, err := core.NewPortScan(bed.plan, "s1", bed.v, firstPort, numPorts)
	if err != nil {
		panic(err)
	}
	bed.sw.Tap = ps.Tap
	det := core.NewDetector(core.MethodGoertzel, ps.Frequencies())
	det.MinAmplitude = 0.008 // calibrated above the song's partials, below the tones
	ctrl := core.NewController(bed.sim, bed.mic, det)
	ps.Start(ctrl, 0)
	ctrl.Start(0)

	base := netsim.FiveTuple{Src: bed.h1.Addr, Dst: bed.h2.Addr, SrcPort: 4444, Proto: netsim.ProtoTCP}
	netsim.StartPortScan(bed.sim, bed.h1, base, firstPort, numPorts, probeGap, 0.3)
	bed.sim.RunUntil(0.3 + float64(numPorts)*probeGap + 1)

	r.row("scan raises an alert", "scan identified", len(ps.Alerts) > 0,
		"%d alerts, first covering %d distinct ports", len(ps.Alerts), firstAlertPorts(ps))
	r.row("sweep visible as a monotone frequency line", "clear log-line on mel spectrogram",
		ps.SweepIsMonotone(), "monotone=%v over %d onsets", ps.SweepIsMonotone(), len(ps.Sweep))
	coverage := float64(len(ps.Sweep)) / float64(numPorts)
	r.row("probe coverage", "every scanned port heard", coverage >= 0.85,
		"%.0f%% of %d probes", coverage*100, numPorts)

	var xs, ys []float64
	for _, d := range ps.Sweep {
		xs = append(xs, d.Time)
		ys = append(ys, d.Frequency)
	}
	r.addSeries("heard port-tone sweep (Hz over time)", xs, ys)
	// Figure 4c/4d's raw material: the sweep at the controller
	// microphone (the mel view shows the scan as a rising line).
	r.attachAudio("port-scan sweep at the controller microphone",
		bed.mic.Capture(0.3, 0.3+float64(numPorts)*probeGap+0.3))
	return r
}

func firstAlertPorts(ps *core.PortScan) int {
	if len(ps.Alerts) == 0 {
		return 0
	}
	return ps.Alerts[0].DistinctPorts
}

// Fig4c reproduces Figure 4c: port-scan detection in a quiet room.
func Fig4c() *Result {
	return portScanExperiment("fig4c", "Port-scan detection (quiet)", false)
}

// Fig4d reproduces Figure 4d: the same scan under pop-song noise.
func Fig4d() *Result {
	return portScanExperiment("fig4d", "Port-scan detection under pop-song noise", true)
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
