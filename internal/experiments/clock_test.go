package experiments

import (
	"reflect"
	"testing"

	"mdn/internal/telemetry"
)

// TestFig2bDeterministicUnderStepClock pins the wall-clock fix: with
// the compute-stage clock swapped for a deterministic source, Fig2b
// produces identical results run to run — the experiment's only
// nondeterminism was the host's wall clock.
func TestFig2bDeterministicUnderStepClock(t *testing.T) {
	restore := SetStageClock(&telemetry.StepClock{Step: 1e-5})
	a := Fig2b()
	restore()
	restore = SetStageClock(&telemetry.StepClock{Step: 1e-5})
	b := Fig2b()
	restore()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("Fig2b diverged under a deterministic clock:\n%s\nvs\n%s", Render(a), Render(b))
	}
	if !a.Pass() {
		t.Errorf("Fig2b failed under the step clock:\n%s", Render(a))
	}
	// Every sample took one 10 µs step, so the CDF is a point mass at
	// 0.01 ms (up to the step clock's float accumulation).
	if len(a.Series) == 0 {
		t.Fatal("Fig2b produced no CDF series")
	}
	for _, x := range a.Series[0].X {
		if x < 0.0099 || x > 0.0101 {
			t.Fatalf("CDF under StepClock{1e-5} should be ~0.01 ms everywhere, got %g", x)
		}
	}
}

// TestSetStageClockRestores covers the restore/reset paths.
func TestSetStageClockRestores(t *testing.T) {
	clock := &telemetry.StepClock{Step: 1}
	restore := SetStageClock(clock)
	if stageClock != telemetry.TimeSource(clock) {
		t.Error("SetStageClock did not install the clock")
	}
	inner := SetStageClock(nil) // nil resets to wall
	if _, ok := stageClock.(*telemetry.StepClock); ok {
		t.Error("SetStageClock(nil) left the step clock installed")
	}
	inner()
	restore()
	if _, ok := stageClock.(*telemetry.StepClock); ok {
		t.Error("restore did not reinstate the original clock")
	}
}
