package experiments

import (
	"mdn/internal/acoustic"
	"mdn/internal/core"
	"mdn/internal/mp"
	"mdn/internal/netsim"
	"mdn/internal/openflow"
)

// ExtControlLatency quantifies the price of the sound channel: the
// time from a switch-side event (queue crossing the congestion
// threshold) to the corrective Flow-MOD being applied, for the MDN
// loop versus a conventional in-band Packet-In loop. The paper never
// reports this number; it is the first question the approach invites.
//
// The MDN loop pays: the 300 ms queue-sampling grid, the MP link to
// the Pi, acoustic propagation, up to two 50 ms detection windows for
// onset confirmation, and the control channel. The in-band loop pays
// one control-channel RTT. The experiment measures both on identical
// congestion events.
func ExtControlLatency() *Result {
	r := &Result{ID: "ext-latency", Title: "Control-loop latency: sound channel vs in-band"}
	const trials = 5

	runMDN := func(seed int64) float64 {
		sim := netsim.NewSim()
		room := acoustic.NewRoom(44100, seed)
		mic := room.AddMicrophone("controller", acoustic.Position{}, 0.0005)
		h1 := netsim.NewHost(sim, "h1", netsim.MustAddr("10.0.0.1"))
		h2 := netsim.NewHost(sim, "h2", netsim.MustAddr("10.0.0.2"))
		sw := netsim.NewSwitch(sim, "s1")
		netsim.Connect(sim, h1, 1, sw, 1, 1e9, 0.0001, 0)
		netsim.Connect(sim, sw, 2, h2, 1, 1e6, 0.0001, 300)
		sw.InstallRule(netsim.Rule{Priority: 1, Match: netsim.Match{Dst: h2.Addr}, Action: netsim.Output(2)})
		sp := room.AddSpeaker("s1", acoustic.Position{X: 1})
		voice := core.NewVoice(sim, mp.NewSounder(mp.NewPi(sim, sp, 0.002)))
		qm := core.NewQueueMonitorWithTones(sw, 2, voice, core.DefaultQueueFrequencies)
		ch := openflow.NewChannel(sim, sw, 0.005)
		lb := core.NewLoadBalancer(qm, ch, openflow.FlowMod{
			Command: openflow.FlowAdd, Priority: 10, Action: netsim.Drop(),
		})
		ctrl := core.NewController(sim, mic, core.NewDetector(core.MethodGoertzel, qm.Frequencies()))
		ctrl.SubscribeWindows(qm.HandleWindow)
		ctrl.SubscribeWindows(lb.HandleWindow)
		qm.StartSwitchSide(sim, 0.05)
		ctrl.Start(0)

		// Event: the queue crosses 75 packets. Find the crossing
		// time from the ground-truth series afterwards.
		flow := netsim.FiveTuple{Src: h1.Addr, Dst: h2.Addr, SrcPort: 1, DstPort: 2, Proto: netsim.ProtoUDP}
		netsim.StartCBR(sim, h1, flow, 200, 1500, 0.2, 8)
		sim.RunUntil(8)
		var crossed float64 = -1
		for _, s := range qm.QueueSeries {
			if s.Value > 75 {
				crossed = s.Time
				break
			}
		}
		if crossed < 0 || !lb.Triggered {
			return -1
		}
		return lb.TriggeredAt + 0.005 - crossed // + control latency to apply
	}

	runInband := func(seed int64) float64 {
		// In-band: the switch punts a congestion report packet to a
		// controller host over a healthy management link; the
		// controller replies with a Flow-MOD over the same 5 ms
		// channel. Latency = report tx + controller processing (~0)
		// + Flow-MOD latency.
		sim := netsim.NewSim()
		sw := netsim.NewSwitch(sim, "s1")
		ctrlHost := netsim.NewHost(sim, "ctrl", netsim.MustAddr("10.0.9.1"))
		netsim.Connect(sim, sw, 9, ctrlHost, 1, 1e8, 0.0025, 0) // 2.5 ms each way
		ch := openflow.NewChannel(sim, sw, 0.0025)
		var applied float64 = -1
		ctrlHost.OnReceive = func(*netsim.Packet) {
			if err := ch.SendFlowMod(openflow.FlowMod{
				Command: openflow.FlowAdd, Priority: 10, Action: netsim.Drop(),
			}); err != nil {
				panic(err)
			}
		}
		sim.Schedule(2.5, func() {
			// Rule application time is observable via the table.
			sw.Port(9).Send(&netsim.Packet{ID: 1, Size: 128, CreatedAt: sim.Now()})
		})
		sim.Every(2.5, 0.0001, func(now float64) {
			if applied < 0 && len(sw.Rules()) > 0 {
				applied = now
			}
		})
		sim.RunUntil(3)
		if applied < 0 {
			return -1
		}
		return applied - 2.5
	}

	var mdnSum, inbandSum float64
	mdnOK, inbandOK := true, true
	for i := int64(0); i < trials; i++ {
		m := runMDN(900 + i)
		ib := runInband(950 + i)
		if m < 0 {
			mdnOK = false
			continue
		}
		if ib < 0 {
			inbandOK = false
			continue
		}
		mdnSum += m
		inbandSum += ib
	}
	mdnMean := mdnSum / trials
	inbandMean := inbandSum / trials
	r.row("MDN control loop completes", "tone-driven Flow-MOD lands", mdnOK,
		"mean event-to-rule latency %.0f ms over %d trials", mdnMean*1000, trials)
	r.row("MDN latency dominated by the 300 ms sampling grid", "sub-second reaction",
		mdnMean > 0.03 && mdnMean < 1.0, "%.0f ms (sampling + MP + sound + 2 windows + control)", mdnMean*1000)
	r.row("in-band loop is far faster when the network is healthy", "milliseconds",
		inbandOK && inbandMean < 0.02 && mdnMean > 5*inbandMean,
		"in-band %.1f ms vs MDN %.0f ms (%.0fx)", inbandMean*1000, mdnMean*1000, mdnMean/inbandMean)
	r.note("worst case adds a full 300 ms sampling interval; the sound channel trades roughly an order of magnitude of control latency (more when the event falls just after a sample) for surviving data-plane failure (see ext-failover) — the management-timescale framing of §4 anticipates exactly this trade")
	return r
}
