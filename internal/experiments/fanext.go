package experiments

import (
	"fmt"

	"mdn/internal/acoustic"
	"mdn/internal/audio"
	"mdn/internal/core"
)

// ExtFanAnomaly addresses the Section 7 open question (1): "how many
// distinct server anomalies can we recognize?" — at least three:
// healthy, stopped, and speed anomaly (a fan running 20% slow), each
// classified from the blade-pass ladder's amplitude and position,
// under office ambience.
func ExtFanAnomaly() *Result {
	r := &Result{ID: "ext-fananomaly", Title: "Fan anomaly recognition (Section 7 open question 1)"}
	const changeAt = 10.0
	run := func(after string, seed int64) core.FanDiagnosis {
		room := acoustic.NewRoom(44100, seed)
		mic := room.AddMicrophone("probe", acoustic.Position{}, 0.0005)
		healthy, fan := core.FanSource(44100, 2.0, 0.3, acoustic.Position{X: 0.3}, seed)
		healthy.Until = changeAt
		room.AddNoise(healthy)
		switch after {
		case "slow":
			slow := audio.Fan{RPM: 7200, Blades: 7, Level: 0.3, Seed: seed + 5}
			room.AddNoise(&acoustic.NoiseSource{
				Name: "slow-fan", Pos: acoustic.Position{X: 0.3},
				Loop: slow.Render(44100, 2.0), From: changeAt,
			})
		case "healthy":
			cont, _ := core.FanSource(44100, 2.0, 0.3, acoustic.Position{X: 0.3}, seed+9)
			cont.Name = "continued-fan"
			cont.From = changeAt
			room.AddNoise(cont)
		}
		room.AddNoise(core.OfficeNoise(44100, 3.0, seed+1))
		fm := core.NewFanMonitor(mic, fan.HarmonicFrequencies())
		if err := fm.Train(1, 3); err != nil {
			panic(err)
		}
		d, err := fm.Diagnose(11, 13)
		if err != nil {
			panic(err)
		}
		return d
	}

	healthy := run("healthy", 210)
	stopped := run("stopped", 211)
	slow := run("slow", 212)
	r.row("healthy fan classified healthy", "baseline state recognised",
		healthy.State == core.FanHealthy, "state=%s fundamental=%.0f Hz", healthy.State, healthy.FundamentalHz)
	r.row("stopped fan classified stopped", "failure recognised",
		stopped.State == core.FanStopped, "state=%s", stopped.State)
	r.row("20%%-slow fan classified as speed anomaly", "distinct third anomaly class",
		slow.State == core.FanSpeedAnomaly,
		"state=%s, fundamental %.0f Hz (shift %.0f%%), RPM estimate %.0f",
		slow.State, slow.FundamentalHz, slow.FrequencyShift*100, slow.RPMEstimate(7))
	r.note("three distinguishable states from one microphone: healthy, stopped, speed anomaly")
	return r
}

// ExtFanDistance addresses the Section 7 open question (2): "what is
// the optimal microphone-server distance?". The practical limit is
// not the diffuse ambience (the monitored fan's exact harmonic bins
// stay distinguishable surprisingly far) but *confusable equipment*:
// a second fan of the same model near the microphone keeps the
// harmonic bins lit after the monitored fan dies. We sweep the
// monitored fan's distance with such a twin 1 m from the microphone
// and measure the failure-detection margin (dead score minus healthy
// score).
func ExtFanDistance() *Result {
	r := &Result{ID: "ext-fandistance", Title: "Microphone-server distance sweep (Section 7 open question 2)"}
	const failAt = 10.0
	margin := func(dist float64, seed int64) (healthyScore, deadScore float64) {
		room := acoustic.NewRoom(44100, seed)
		mic := room.AddMicrophone("probe", acoustic.Position{}, 0.0005)
		fanSrc, fan := core.FanSource(44100, 2.0, 0.3, acoustic.Position{X: dist}, seed)
		fanSrc.Until = failAt
		room.AddNoise(fanSrc)
		// A healthy twin of the same model, 1 m away, always on: the
		// confound that sets the distance limit.
		twin, _ := core.FanSource(44100, 2.0, 0.3, acoustic.Position{Y: 1}, seed+77)
		twin.Name = "twin-fan"
		room.AddNoise(twin)
		room.AddNoise(core.DatacenterNoise(44100, 3.0, seed+1))
		fm := core.NewFanMonitor(mic, fan.HarmonicFrequencies())
		if err := fm.Train(1, 3); err != nil {
			panic(err)
		}
		var err error
		healthyScore, err = fm.Score(4, 6)
		if err != nil {
			panic(err)
		}
		deadScore, err = fm.Score(11, 13)
		if err != nil {
			panic(err)
		}
		return healthyScore, deadScore
	}

	distances := []float64{0.3, 1.0, 3.0, 8.0}
	var xs, ys []float64
	margins := make(map[float64]float64, len(distances))
	detail := ""
	for i, d := range distances {
		h, dead := margin(d, 220+int64(i))
		m := dead - h
		margins[d] = m
		xs = append(xs, d)
		ys = append(ys, m)
		detail += fmt.Sprintf("%.1f m: %.2f  ", d, m)
	}
	r.row("close microphone (0.3 m) detects confidently", "paper's closely placed microphone works",
		margins[0.3] > 0.4, "margin %.3f", margins[0.3])
	r.row("margin decays with distance", "1/r foreground vs a fixed confusable twin",
		margins[0.3] > margins[3.0] && margins[1.0] > margins[8.0], "%s", detail)
	r.row("far microphone unusable", "a same-model neighbour masks the failure",
		margins[8.0] < 0.5*margins[0.3], "8 m margin %.3f vs 0.3 m margin %.3f",
		margins[8.0], margins[0.3])
	r.addSeries("failure-detection margin vs microphone distance (m)", xs, ys)
	r.note("the optimal distance is 'closer to the monitored server than any same-model neighbour'")
	return r
}
