package experiments

import (
	"mdn/internal/acoustic"
	"mdn/internal/core"
	"mdn/internal/mp"
	"mdn/internal/netsim"
	"mdn/internal/openflow"
)

// Fig5ab reproduces Figure 5a-b: music-defined load balancing. The
// source ramps its rate over the rhombus's single (upper) path; the
// switch plays queue tones every 300 ms; when the controller hears
// the congested tone it installs a Flow-MOD splitting traffic across
// both paths, and the queue drains back below the high watermark.
func Fig5ab() *Result {
	r := &Result{ID: "fig5ab", Title: "Music-defined load balancing on the rhombus"}
	const (
		sampleRate = 44100.0
		duration   = 12.0
	)
	sim := netsim.NewSim()
	room := acoustic.NewRoom(sampleRate, 55)
	mic := room.AddMicrophone("controller", acoustic.Position{}, 0.0005)

	rh := netsim.NewRhombusLinks(sim,
		netsim.LinkSpec{RateBps: 1e7, Latency: 0.0001, QueueCap: 400},
		netsim.LinkSpec{RateBps: 1e6, Latency: 0.0001, QueueCap: 400})
	sp := room.AddSpeaker("s1", acoustic.Position{X: 1})
	voice := core.NewVoice(sim, mp.NewSounder(mp.NewPi(sim, sp, 0.002)))
	qm := core.NewQueueMonitorWithTones(rh.S1, 2, voice, core.DefaultQueueFrequencies)
	ch := openflow.NewChannel(sim, rh.S1, 0.005)
	lb := core.NewLoadBalancer(qm, ch, openflow.FlowMod{
		Command:  openflow.FlowAdd,
		Priority: 10,
		Match:    netsim.Match{Dst: rh.H2.Addr},
		Action:   netsim.Split(2, 3),
	})
	ctrl := core.NewController(sim, mic, core.NewDetector(core.MethodGoertzel, qm.Frequencies()))
	ctrl.SubscribeWindows(qm.HandleWindow)
	ctrl.SubscribeWindows(lb.HandleWindow)
	qm.StartSwitchSide(sim, 0.05)
	ctrl.Start(0)

	flow := netsim.FiveTuple{Src: rh.H1.Addr, Dst: rh.H2.Addr, SrcPort: 1, DstPort: 2, Proto: netsim.ProtoUDP}
	netsim.StartRamp(sim, rh.H1, flow, 40, 150, 1500, 0.2, duration)
	sim.RunUntil(duration)

	var preMax, postMax float64
	for _, s := range qm.QueueSeries {
		if !lb.Triggered || s.Time <= lb.TriggeredAt {
			if s.Value > preMax {
				preMax = s.Value
			}
		} else if s.Time > lb.TriggeredAt+2 {
			if s.Value > postMax {
				postMax = s.Value
			}
		}
	}
	r.row("congestion tone triggers a Flow-MOD", "split installed when 700 Hz heard",
		lb.Triggered, "triggered=%v at t=%.2f s", lb.Triggered, lb.TriggeredAt)
	r.row("queue exceeded high watermark before the split", "> 75 packets", preMax > 75,
		"max %d packets", int(preMax))
	r.row("queue stabilises below watermark after the split", "queue drains", postMax <= 75,
		"max %d packets (t > trigger+2s)", int(postMax))
	r.row("lower path carries traffic after the split", "traffic balanced across two routes",
		rh.S3.RxPackets > 0, "%d packets via s3, %d via s2", rh.S3.RxPackets, rh.S2.RxPackets)

	var qx, qy []float64
	for _, s := range qm.QueueSeries {
		qx = append(qx, s.Time)
		qy = append(qy, s.Value)
	}
	r.addSeries("s1 upper-path queue length (packets)", qx, qy)
	var tx, ty []float64
	for _, h := range qm.Heard {
		tx = append(tx, h.Time)
		ty = append(ty, core.DefaultQueueFrequencies[h.Level])
	}
	r.addSeries("controller-heard queue tones (Hz)", tx, ty)
	return r
}

// Fig5cd reproduces Figure 5c-d: queue-size monitoring. Traffic ramps
// through a single switch and stops; the switch plays 500/600/700 Hz
// by occupancy every 300 ms and the controller's decoded levels track
// the tc-measured queue, returning to 500 Hz after the drain.
func Fig5cd() *Result {
	r := &Result{ID: "fig5cd", Title: "Queue-size monitoring (500/600/700 Hz)"}
	const (
		sampleRate = 44100.0
		duration   = 10.0
	)
	sim := netsim.NewSim()
	room := acoustic.NewRoom(sampleRate, 56)
	mic := room.AddMicrophone("controller", acoustic.Position{}, 0.0005)

	h1 := netsim.NewHost(sim, "h1", netsim.MustAddr("10.0.0.1"))
	h2 := netsim.NewHost(sim, "h2", netsim.MustAddr("10.0.0.2"))
	sw := netsim.NewSwitch(sim, "s1")
	netsim.Connect(sim, h1, 1, sw, 1, 1e9, 0.0001, 0)
	netsim.Connect(sim, sw, 2, h2, 1, 1e6, 0.0001, 200)
	sw.InstallRule(netsim.Rule{Priority: 1, Match: netsim.Match{Dst: h2.Addr}, Action: netsim.Output(2)})

	sp := room.AddSpeaker("s1", acoustic.Position{X: 1})
	voice := core.NewVoice(sim, mp.NewSounder(mp.NewPi(sim, sp, 0.002)))
	qm := core.NewQueueMonitorWithTones(sw, 2, voice, core.DefaultQueueFrequencies)
	ctrl := core.NewController(sim, mic, core.NewDetector(core.MethodGoertzel, qm.Frequencies()))
	ctrl.SubscribeWindows(qm.HandleWindow)
	qm.StartSwitchSide(sim, 0.05)
	ctrl.Start(0)

	flow := netsim.FiveTuple{Src: h1.Addr, Dst: h2.Addr, SrcPort: 1, DstPort: 2, Proto: netsim.ProtoUDP}
	netsim.StartRamp(sim, h1, flow, 50, 300, 1500, 0.2, 4.5)
	sim.RunUntil(duration)

	levels := qm.HeardLevels()
	sawHigh := false
	for _, l := range levels {
		if l == core.LevelHigh {
			sawHigh = true
		}
	}
	r.row("levels start low (500 Hz)", "500 Hz before traffic",
		len(levels) > 0 && levels[0] == core.LevelLow, "first level %s", levelNameOrNone(levels, 0))
	r.row("monitor reaches the congested tone", "700 Hz when > 75 packets", sawHigh,
		"level sequence %v", levels)
	r.row("monitor returns to 500 Hz after drain", "low tone after all traffic sent",
		len(levels) > 0 && levels[len(levels)-1] == core.LevelLow,
		"last level %s", levelNameOrNone(levels, len(levels)-1))

	// Decoded levels must agree with the switch-side truth at tone
	// times.
	agree, total := 0, 0
	for _, h := range qm.Heard {
		truth := -1
		for _, tl := range qm.ToneLog {
			if tl.Time <= h.Time+0.05 {
				truth = tl.Level
			}
		}
		if truth >= 0 {
			total++
			if truth == h.Level {
				agree++
			}
		}
	}
	acc := 0.0
	if total > 0 {
		acc = float64(agree) / float64(total)
	}
	r.row("decoded levels match tc-measured occupancy", "controller knows the queue range",
		acc >= 0.9, "%.0f%% agreement over %d tones", acc*100, total)

	var qx, qy []float64
	for _, s := range qm.QueueSeries {
		qx = append(qx, s.Time)
		qy = append(qy, s.Value)
	}
	r.addSeries("queue length (packets)", qx, qy)
	var hx, hy []float64
	for _, h := range qm.Heard {
		hx = append(hx, h.Time)
		hy = append(hy, core.DefaultQueueFrequencies[h.Level])
	}
	r.addSeries("heard tones (Hz)", hx, hy)
	// Figure 5d's raw material: the 500→600→700→…→500 staircase at
	// the controller microphone.
	r.attachAudio("queue tones at the controller microphone", mic.Capture(0, duration))
	return r
}

func levelNameOrNone(levels []int, i int) string {
	if i < 0 || i >= len(levels) {
		return "none"
	}
	return core.LevelName(levels[i])
}
