package experiments

import (
	"strings"
	"testing"
)

// Every experiment must run and preserve the paper's shape. These are
// the repository's headline integration tests.

func runAndCheck(t *testing.T, id string) *Result {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	r := e.Run()
	if r.ID != id {
		t.Errorf("result ID = %q", r.ID)
	}
	if !r.Pass() {
		t.Errorf("experiment %s failed shape checks:\n%s", id, Render(r))
	}
	return r
}

func TestFig2a(t *testing.T) { runAndCheck(t, "fig2a") }

func TestFig2b(t *testing.T) {
	r := runAndCheck(t, "fig2b")
	if len(r.Series) == 0 || len(r.Series[0].X) < 50 {
		t.Error("CDF series too small")
	}
}

func TestFig3(t *testing.T) {
	r := runAndCheck(t, "fig3")
	if len(r.Series) != 2 {
		t.Errorf("want sent+received series, got %d", len(r.Series))
	}
}

func TestFig4a(t *testing.T) { runAndCheck(t, "fig4a") }
func TestFig4b(t *testing.T) { runAndCheck(t, "fig4b") }
func TestFig4c(t *testing.T) { runAndCheck(t, "fig4c") }
func TestFig4d(t *testing.T) { runAndCheck(t, "fig4d") }

func TestFig5ab(t *testing.T) { runAndCheck(t, "fig5ab") }
func TestFig5cd(t *testing.T) { runAndCheck(t, "fig5cd") }

func TestFig6(t *testing.T) { runAndCheck(t, "fig6") }
func TestFig7(t *testing.T) { runAndCheck(t, "fig7") }

func TestSec3Spacing(t *testing.T)  { runAndCheck(t, "sec3-spacing") }
func TestSec3Duration(t *testing.T) { runAndCheck(t, "sec3-duration") }
func TestSec5Capacity(t *testing.T) { runAndCheck(t, "sec5-capacity") }

func TestAllRegistryComplete(t *testing.T) {
	want := []string{
		"fig2a", "fig2b", "fig3", "fig4a", "fig4b", "fig4c", "fig4d",
		"fig5ab", "fig5cd", "fig6", "fig7",
		"sec3-spacing", "sec3-duration", "sec5-capacity",
		"ext-failover", "ext-superspreader", "ext-relay",
		"ext-congestion", "ext-ultrasound", "ext-micarray",
		"ext-fananomaly", "ext-fandistance", "ext-heartbeat", "ext-latency",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("registry[%d] = %s, want %s", i, all[i].ID, id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown ID should not resolve")
	}
}

func TestRenderOutput(t *testing.T) {
	r := &Result{ID: "x", Title: "demo"}
	r.row("check", "yes", true, "measured %d", 42)
	r.row("bad", "no", false, "oops")
	r.note("a note")
	r.addSeries("s", []float64{0, 1, 2}, []float64{0, 1, 0})
	out := Render(r)
	for _, want := range []string{"FAIL", "demo", "measured 42", "MISMATCH", "a note", "-- s"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Empty series render gracefully.
	if !strings.Contains(RenderChart(Series{Name: "e"}, 10, 4), "no data") {
		t.Error("empty chart should say no data")
	}
	// A result with no rows never passes.
	if (&Result{}).Pass() {
		t.Error("empty result should not pass")
	}
}

func TestExtFailover(t *testing.T)      { runAndCheck(t, "ext-failover") }
func TestExtSuperspreader(t *testing.T) { runAndCheck(t, "ext-superspreader") }
func TestExtRelay(t *testing.T)         { runAndCheck(t, "ext-relay") }
func TestExtCongestion(t *testing.T)    { runAndCheck(t, "ext-congestion") }
func TestExtUltrasound(t *testing.T)    { runAndCheck(t, "ext-ultrasound") }
func TestExtMicArray(t *testing.T)      { runAndCheck(t, "ext-micarray") }

func TestExtFanAnomaly(t *testing.T)  { runAndCheck(t, "ext-fananomaly") }
func TestExtFanDistance(t *testing.T) { runAndCheck(t, "ext-fandistance") }

func TestMarkdownTable(t *testing.T) {
	r := &Result{ID: "x", Title: "demo | pipe"}
	r.row("a|b", "yes", true, "got %d", 1)
	r.row("bad", "no", false, "oops")
	r.note("careful | here")
	out := MarkdownTable([]*Result{r})
	for _, want := range []string{"## x", "(FAIL)", "a\\|b", "**(mismatch)**", "*careful \\| here*"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestExtHeartbeat(t *testing.T) { runAndCheck(t, "ext-heartbeat") }

func TestExtControlLatency(t *testing.T) { runAndCheck(t, "ext-latency") }

func TestAudioAttachmentAndMelSpectrogram(t *testing.T) {
	r := runAndCheck(t, "fig5cd")
	if r.Audio == nil || r.Audio.Len() == 0 {
		t.Fatal("fig5cd should attach controller-mic audio")
	}
	if r.AudioLabel == "" {
		t.Error("audio label missing")
	}
	mel := r.MelSpectrogram(32, 8000)
	if len(mel) < 50 {
		t.Fatalf("mel frames = %d", len(mel))
	}
	if len(mel[0]) != 32 {
		t.Fatalf("mel bands = %d", len(mel[0]))
	}
	// A result without audio renders nil.
	empty := &Result{}
	if empty.MelSpectrogram(32, 8000) != nil {
		t.Error("no-audio result should yield nil spectrogram")
	}
}
