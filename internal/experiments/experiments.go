// Package experiments regenerates every figure of the paper's
// evaluation, plus its in-text quantitative claims, on the simulated
// testbed. Each experiment returns a Result holding the series the
// paper plots, summary rows comparing the paper's observation with
// ours, and a Pass verdict on the qualitative shape.
//
// The cmd/mdnbench binary runs these and prints them; bench_test.go
// wraps each in a testing.B benchmark.
package experiments

import (
	"fmt"
	"math"
	"strings"

	"mdn/internal/audio"
	"mdn/internal/dsp"
)

// Series is one named plottable series.
type Series struct {
	// Name labels the series.
	Name string
	// X holds the abscissa values (usually seconds or Hz).
	X []float64
	// Y holds the ordinate values.
	Y []float64
}

// Row is one paper-vs-measured comparison.
type Row struct {
	// Name describes the quantity.
	Name string
	// Paper is what the paper reports (qualitative where the paper
	// is qualitative).
	Paper string
	// Measured is what this reproduction observed.
	Measured string
	// OK reports whether the measured value preserves the paper's
	// shape.
	OK bool
}

// Result is one experiment's outcome.
type Result struct {
	// ID is the experiment identifier (e.g. "fig4a").
	ID string
	// Title is a human-readable description.
	Title string
	// Rows are the paper-vs-measured comparisons.
	Rows []Row
	// Series are the regenerated figure series.
	Series []Series
	// Notes carry free-form observations.
	Notes []string
	// Audio, when set, is what the controller microphone recorded
	// during the experiment's interesting window — the raw material
	// of the paper's mel-spectrogram panels. Excluded from JSON.
	Audio *audio.Buffer `json:"-"`
	// AudioLabel describes the attached audio.
	AudioLabel string `json:",omitempty"`
}

// attachAudio stores a capture on the result.
func (r *Result) attachAudio(label string, buf *audio.Buffer) {
	r.Audio = buf
	r.AudioLabel = label
}

// MelSpectrogram renders the attached audio as a mel-band power
// matrix (rows = time frames), or nil when no audio is attached.
func (r *Result) MelSpectrogram(bands int, maxHz float64) [][]float64 {
	if r.Audio == nil || r.Audio.Len() == 0 {
		return nil
	}
	// Frames are independent; fan the Figure 6 mel path out over all
	// cores (workers <= 0 means GOMAXPROCS).
	sg := dsp.STFTParallel(r.Audio.Samples, r.Audio.SampleRate, 2048, 1024, dsp.Hann, 0)
	if sg == nil {
		return nil
	}
	bank := dsp.NewMelFilterBank(bands, sg.FFTSize, r.Audio.SampleRate, 50, maxHz)
	return sg.Mel(bank)
}

// Pass reports whether every row preserved the paper's shape.
func (r *Result) Pass() bool {
	for _, row := range r.Rows {
		if !row.OK {
			return false
		}
	}
	return len(r.Rows) > 0
}

func (r *Result) row(name, paper string, ok bool, format string, args ...interface{}) {
	r.Rows = append(r.Rows, Row{
		Name:     name,
		Paper:    paper,
		Measured: fmt.Sprintf(format, args...),
		OK:       ok,
	})
}

func (r *Result) addSeries(name string, x, y []float64) {
	r.Series = append(r.Series, Series{Name: name, X: x, Y: y})
}

func (r *Result) note(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Experiment pairs an ID with its runner.
type Experiment struct {
	// ID is the experiment identifier.
	ID string
	// Title describes the experiment.
	Title string
	// Run executes it.
	Run func() *Result
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig2a", "FFT identification of 5 simultaneous switches", Fig2a},
		{"fig2b", "CDF of FFT processing time (50 ms samples)", Fig2b},
		{"fig3", "Port knocking: bytes sent vs received", Fig3},
		{"fig4a", "Heavy-hitter detection (quiet)", Fig4a},
		{"fig4b", "Heavy-hitter detection under pop-song noise", Fig4b},
		{"fig4c", "Port-scan detection (quiet)", Fig4c},
		{"fig4d", "Port-scan detection under pop-song noise", Fig4d},
		{"fig5ab", "Music-defined load balancing on the rhombus", Fig5ab},
		{"fig5cd", "Queue-size monitoring (500/600/700 Hz)", Fig5cd},
		{"fig6", "Fan on/off spectra in datacenter and office", Fig6},
		{"fig7", "Fan-failure amplitude-difference statistic", Fig7},
		{"sec3-spacing", "Frequency spacing needed for identification", Sec3Spacing},
		{"sec3-duration", "Shortest usable tone duration", Sec3Duration},
		{"sec5-capacity", "Simultaneous distinguishable frequencies", Sec5Capacity},
		{"ext-failover", "Management survives data-plane failure (motivation)", ExtFailover},
		{"ext-superspreader", "k-superspreader / DDoS-victim detection (§5 open problem)", ExtSuperspreader},
		{"ext-relay", "Multi-hop sound relay (§8 open question)", ExtRelay},
		{"ext-congestion", "Sound-driven AIMD congestion control (§6)", ExtCongestion},
		{"ext-ultrasound", "Ultrasound capacity (§8 direction)", ExtUltrasound},
		{"ext-micarray", "Microphone-array zoning (§8 direction)", ExtMicArray},
		{"ext-fananomaly", "Fan anomaly recognition (§7 open question 1)", ExtFanAnomaly},
		{"ext-fandistance", "Microphone-server distance sweep (§7 open question 2)", ExtFanDistance},
		{"ext-heartbeat", "Out-of-band device liveness (heartbeat tones)", ExtHeartbeat},
		{"ext-latency", "Control-loop latency: sound vs in-band", ExtControlLatency},
	}
}

// ByID returns the experiment with the given ID, or false.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Render formats a result as a text report with an ASCII chart per
// series.
func Render(r *Result) string {
	var b strings.Builder
	status := "PASS"
	if !r.Pass() {
		status = "FAIL"
	}
	fmt.Fprintf(&b, "=== %s: %s [%s]\n", r.ID, r.Title, status)
	if len(r.Rows) > 0 {
		nameW, paperW := 0, 0
		for _, row := range r.Rows {
			if len(row.Name) > nameW {
				nameW = len(row.Name)
			}
			if len(row.Paper) > paperW {
				paperW = len(row.Paper)
			}
		}
		for _, row := range r.Rows {
			mark := "ok"
			if !row.OK {
				mark = "MISMATCH"
			}
			fmt.Fprintf(&b, "  %-*s  paper: %-*s  measured: %s  [%s]\n",
				nameW, row.Name, paperW, row.Paper, row.Measured, mark)
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	for _, s := range r.Series {
		b.WriteString(RenderChart(s, 60, 12))
	}
	return b.String()
}

// RenderChart draws a series as a crude ASCII scatter/line chart.
func RenderChart(s Series, width, height int) string {
	if len(s.X) == 0 || len(s.X) != len(s.Y) {
		return fmt.Sprintf("  [%s: no data]\n", s.Name)
	}
	minX, maxX := s.X[0], s.X[0]
	minY, maxY := s.Y[0], s.Y[0]
	for i := range s.X {
		minX = math.Min(minX, s.X[i])
		maxX = math.Max(maxX, s.X[i])
		minY = math.Min(minY, s.Y[i])
		maxY = math.Max(maxY, s.Y[i])
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for i := range s.X {
		cx := int(float64(width-1) * (s.X[i] - minX) / (maxX - minX))
		cy := int(float64(height-1) * (s.Y[i] - minY) / (maxY - minY))
		grid[height-1-cy][cx] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "  -- %s  (x: %.3g..%.3g, y: %.3g..%.3g)\n", s.Name, minX, maxX, minY, maxY)
	for _, line := range grid {
		b.WriteString("  |")
		b.Write(line)
		b.WriteString("\n")
	}
	b.WriteString("  +" + strings.Repeat("-", width) + "\n")
	return b.String()
}

// MarkdownTable renders results as the paper-vs-measured markdown
// used in EXPERIMENTS.md, one section per experiment.
func MarkdownTable(results []*Result) string {
	var b strings.Builder
	for _, r := range results {
		status := "PASS"
		if !r.Pass() {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "## %s — %s (%s)\n\n", r.ID, r.Title, status)
		b.WriteString("| Quantity | Paper | Measured |\n|---|---|---|\n")
		for _, row := range r.Rows {
			measured := row.Measured
			if !row.OK {
				measured += " **(mismatch)**"
			}
			fmt.Fprintf(&b, "| %s | %s | %s |\n",
				mdEscape(row.Name), mdEscape(row.Paper), mdEscape(measured))
		}
		for _, n := range r.Notes {
			fmt.Fprintf(&b, "\n*%s*\n", mdEscape(n))
		}
		b.WriteString("\n")
	}
	return b.String()
}

func mdEscape(s string) string {
	return strings.ReplaceAll(s, "|", "\\|")
}
