package experiments

import (
	"fmt"
	"math/rand"

	"mdn/internal/acoustic"
	"mdn/internal/audio"
	"mdn/internal/core"
	"mdn/internal/mp"
	"mdn/internal/netsim"
)

// Extensions reproduce what the paper motivates or leaves open rather
// than evaluates: the Section 1 motivation (out-of-band management
// survives data-plane failure), the Section 5 open problem
// (k-superspreaders / DDoS victims), and the Section 8 research
// directions (multi-hop relays, ultrasound capacity, microphone
// arrays), plus closing the Section 6 loop with sound-driven
// congestion control.

// ExtFailover demonstrates the paper's core motivation: when the data
// plane dies, in-band management messages die with it, but the sound
// channel keeps reporting. A switch streams queue telemetry both
// in-band (management packets over its uplink) and out-of-band
// (tones); the uplink is cut mid-run.
func ExtFailover() *Result {
	r := &Result{ID: "ext-failover", Title: "Management survives data-plane failure (Section 1 motivation)"}
	const (
		duration = 10.0
		cutAt    = 5.0
	)
	sim := netsim.NewSim()
	room := acoustic.NewRoom(44100, 101)
	mic := room.AddMicrophone("controller", acoustic.Position{}, 0.0005)

	// Topology: sw's uplink carries both data and in-band management
	// to the management host.
	mgmt := netsim.NewHost(sim, "mgmt", netsim.MustAddr("10.0.0.100"))
	sw := netsim.NewSwitch(sim, "s1")
	uplinkSw, _ := netsim.Connect(sim, sw, 1, mgmt, 1, 1e7, 0.0005, 100)
	sw.InstallRule(netsim.Rule{Priority: 1, Match: netsim.Match{Dst: mgmt.Addr}, Action: netsim.Output(1)})

	sp := room.AddSpeaker("s1", acoustic.Position{X: 1})
	voice := core.NewVoice(sim, mp.NewSounder(mp.NewPi(sim, sp, 0.002)))
	qm := core.NewQueueMonitorWithTones(sw, 1, voice, core.DefaultQueueFrequencies)
	ctrl := core.NewController(sim, mic, core.NewDetector(core.MethodGoertzel, qm.Frequencies()))
	ctrl.SubscribeWindows(qm.HandleWindow)
	ctrl.Start(0)

	// Every 300 ms the switch reports BOTH ways: an in-band
	// management packet and the queue tone (the tone loop is
	// StartSwitchSide; the in-band report is a packet up the link).
	mgmtFlow := netsim.FiveTuple{
		Src: netsim.MustAddr("10.0.0.1"), Dst: mgmt.Addr,
		SrcPort: 9, DstPort: 161, Proto: netsim.ProtoUDP,
	}
	qm.StartSwitchSide(sim, 0.05)
	var inbandSent int
	sim.Every(0.05, qm.SampleInterval, func(now float64) {
		inbandSent++
		// The switch originates the report itself: inject directly
		// into the uplink port.
		uplinkSw.Send(&netsim.Packet{ID: uint64(inbandSent), Flow: mgmtFlow, Size: 128, CreatedAt: now})
	})
	sim.After(cutAt, func() { uplinkSw.SetDown(true) })
	sim.RunUntil(duration)

	// In-band reports received before/after the cut.
	preInband := int(mgmt.RxPackets)
	// Tones heard after the cut.
	var preTones, postTones int
	for _, h := range qm.Heard {
		if h.Time < cutAt {
			preTones++
		} else {
			postTones++
		}
	}
	r.row("in-band management before the cut", "reports flow", preInband > 10,
		"%d reports delivered", preInband)
	// All post-cut in-band reports must be lost: mgmt.RxPackets stops
	// growing at the cut.
	expectedPre := int(cutAt/qm.SampleInterval) + 1
	r.row("in-band management after the cut", "silenced by the data-plane failure",
		preInband <= expectedPre, "stuck at %d (≈%d sent before cut, %d sent total)",
		preInband, expectedPre, inbandSent)
	r.row("sound channel before the cut", "tones heard", preTones > 10, "%d tones", preTones)
	r.row("sound channel after the cut", "keeps reporting", postTones > 10, "%d tones", postTones)

	var xs, ys []float64
	for _, h := range qm.Heard {
		xs = append(xs, h.Time)
		ys = append(ys, core.DefaultQueueFrequencies[h.Level])
	}
	r.addSeries("out-of-band tones (Hz) — uninterrupted by the t=5 s cut", xs, ys)
	r.note("uplink cut at t=%.0f s; %d queued in-band reports flushed", cutAt, uplinkSw.LostOnDown())
	return r
}

// ExtSuperspreader runs the Section 5 open problem end to end: a
// worm-like host contacting many destinations is flagged, a normal
// client is not, and the DDoS-victim mode flags a host hammered by
// many sources.
func ExtSuperspreader() *Result {
	r := &Result{ID: "ext-superspreader", Title: "k-superspreader and DDoS-victim detection (Section 5 open problem)"}
	const (
		nHosts  = 12
		buckets = 24
		k       = 4
	)
	build := func(seed int64, mode core.SpreadMode) (*netsim.Sim, []*netsim.Host, *core.SpreadDetector) {
		sim := netsim.NewSim()
		room := acoustic.NewRoom(44100, seed)
		mic := room.AddMicrophone("controller", acoustic.Position{}, 0.0005)
		sw := netsim.NewSwitch(sim, "s1")
		var hosts []*netsim.Host
		for i := 0; i < nHosts; i++ {
			h := netsim.NewHost(sim, fmt.Sprintf("h%d", i), netsim.MustAddr(fmt.Sprintf("10.0.1.%d", i+1)))
			netsim.Connect(sim, h, 1, sw, i+1, 1e9, 0.0001, 0)
			sw.InstallRule(netsim.Rule{Priority: 1, Match: netsim.Match{Dst: h.Addr}, Action: netsim.Output(i + 1)})
			hosts = append(hosts, h)
		}
		sp := room.AddSpeaker("s1", acoustic.Position{X: 1.2})
		voice := core.NewVoice(sim, mp.NewSounder(mp.NewPi(sim, sp, 0.002)))
		sd, err := core.NewSpreadDetector(core.DefaultPlan(), "s1", voice, mode, hosts[0].Addr, buckets, k)
		if err != nil {
			panic(err)
		}
		sw.Tap = sd.Tap
		ctrl := core.NewController(sim, mic, core.NewDetector(core.MethodGoertzel, sd.Frequencies()))
		sd.Start(ctrl, 0)
		ctrl.Start(0)
		return sim, hosts, sd
	}

	// Scenario 1: superspreader.
	sim, hosts, sd := build(110, core.ModeSuperspreader)
	spreader := hosts[0]
	sim.Every(0.2, 0.2, func(now float64) {
		if now > 4 {
			return
		}
		for _, dst := range hosts[1:] {
			spreader.Send(netsim.FiveTuple{Src: spreader.Addr, Dst: dst.Addr,
				SrcPort: 1234, DstPort: 80, Proto: netsim.ProtoTCP}, 64)
		}
	})
	sim.RunUntil(5)
	r.row("worm-like fan-out flagged as k-superspreader", "distinct destination tones exceed k",
		len(sd.Alerts) > 0, "%d alerts; first with %d distinct buckets (k=%d)",
		len(sd.Alerts), firstSpreadDistinct(sd), k)

	// Scenario 2: normal client, same detector.
	sim2, hosts2, sd2 := build(111, core.ModeSuperspreader)
	for i, dst := range hosts2[1:3] {
		netsim.StartPoisson(sim2, hosts2[0], netsim.FiveTuple{Src: hosts2[0].Addr, Dst: dst.Addr,
			SrcPort: 1234, DstPort: 80, Proto: netsim.ProtoTCP}, 5, 200, 0, 4, int64(i))
	}
	sim2.RunUntil(5)
	r.row("two-peer client not flagged", "no false positive", len(sd2.Alerts) == 0,
		"%d alerts", len(sd2.Alerts))

	// Scenario 3: DDoS victim.
	sim3, hosts3, sd3 := build(112, core.ModeDDoSVictim)
	for i, atk := range hosts3[1:] {
		netsim.StartPoisson(sim3, atk, netsim.FiveTuple{Src: atk.Addr, Dst: hosts3[0].Addr,
			SrcPort: 6666, DstPort: 80, Proto: netsim.ProtoUDP}, 8, 100, 0, 4, int64(130+i))
	}
	sim3.RunUntil(5)
	r.row("many-source flood flagged as DDoS victim", "distinct source tones exceed k",
		len(sd3.Alerts) > 0, "%d alerts; first with %d distinct buckets",
		len(sd3.Alerts), firstSpreadDistinct(sd3))

	var xs, ys []float64
	for _, s := range sd.History {
		xs = append(xs, s.Time)
		ys = append(ys, s.Value)
	}
	r.addSeries("superspreader: distinct destination buckets per interval", xs, ys)
	return r
}

func firstSpreadDistinct(sd *core.SpreadDetector) int {
	if len(sd.Alerts) == 0 {
		return 0
	}
	return sd.Alerts[0].Distinct
}

// ExtRelay answers the Section 8 open question about multi-hop sound
// transmission: a switch too far (and too quiet) for the controller
// is heard through a frequency-translating acoustic relay.
func ExtRelay() *Result {
	r := &Result{ID: "ext-relay", Title: "Multi-hop sound relay (Section 8 open question)"}
	run := func(withRelay bool) (direct, relayed int, relayCount uint64) {
		sim := netsim.NewSim()
		room := acoustic.NewRoom(44100, 120)
		ctrlMic := room.AddMicrophone("controller", acoustic.Position{}, 0.0005)

		srcSp := room.AddSpeaker("far-switch", acoustic.Position{X: 10})
		srcVoice := core.NewVoice(sim, mp.NewSounder(mp.NewPi(sim, srcSp, 0.002)))
		srcVoice.Intensity = 40
		srcVoice.ToneDuration = 0.12
		const inFreq, outFreq = 600.0, 1000.0

		relayMic := room.AddMicrophone("relay-mic", acoustic.Position{X: 8}, 0.0001)
		relaySp := room.AddSpeaker("relay-spk", acoustic.Position{X: 2})
		relay, err := core.NewRelay(sim, relayMic, mp.NewPi(sim, relaySp, 0.002),
			map[float64]float64{inFreq: outFreq})
		if err != nil {
			panic(err)
		}
		relay.Detector().MinAmplitude = 1e-3

		det := core.NewDetector(core.MethodGoertzel, []float64{inFreq, outFreq})
		det.MinAmplitude = 1e-3
		ctrl := core.NewController(sim, ctrlMic, det)
		onset := core.NewOnsetFilter()
		ctrl.SubscribeWindows(func(_ float64, dets []core.Detection) {
			for _, d := range onset.Step(dets) {
				switch d.Frequency {
				case inFreq:
					direct++
				case outFreq:
					relayed++
				}
			}
		})
		if withRelay {
			relay.Start(0)
		}
		ctrl.Start(0)
		for i := 0; i < 5; i++ {
			at := 0.5 + float64(i)*0.5
			sim.Schedule(at, func() { srcVoice.Play(inFreq) })
		}
		sim.RunUntil(4)
		return direct, relayed, relay.Relayed
	}

	d0, r0, _ := run(false)
	d1, r1, hops := run(true)
	r.row("direct path out of range", "10 m at 40 dB is below the floor", d0 == 0 && d1 == 0,
		"direct detections: %d without relay, %d with", d0, d1)
	r.row("without relay: nothing heard", "single-hop limit", r0 == 0, "%d tones", r0)
	r.row("with relay: all tones delivered", "multi-hop works", r1 == 5 && hops == 5,
		"%d of 5 tones relayed and heard", r1)
	r.note("relay adds one detection window (~50 ms) of latency per hop")
	return r
}

// ExtCongestion closes the Section 6 loop: AIMD rate control driven
// purely by queue tones, compared against no control at identical
// offered load.
func ExtCongestion() *Result {
	r := &Result{ID: "ext-congestion", Title: "Sound-driven congestion control (Section 6, in place of ECN/DCTCP)"}
	run := func(withControl bool) (drops uint64, delivered uint64, finalRate float64, rateLog []netsim.Sample) {
		sim := netsim.NewSim()
		room := acoustic.NewRoom(44100, 130)
		mic := room.AddMicrophone("controller", acoustic.Position{}, 0.0005)
		h1 := netsim.NewHost(sim, "h1", netsim.MustAddr("10.0.0.1"))
		h2 := netsim.NewHost(sim, "h2", netsim.MustAddr("10.0.0.2"))
		sw := netsim.NewSwitch(sim, "s1")
		netsim.Connect(sim, h1, 1, sw, 1, 1e9, 0.0001, 0)
		egress, _ := netsim.Connect(sim, sw, 2, h2, 1, 1e6, 0.0001, 100)
		sw.InstallRule(netsim.Rule{Priority: 1, Match: netsim.Match{Dst: h2.Addr}, Action: netsim.Output(2)})
		sp := room.AddSpeaker("s1", acoustic.Position{X: 1})
		voice := core.NewVoice(sim, mp.NewSounder(mp.NewPi(sim, sp, 0.002)))
		qm := core.NewQueueMonitorWithTones(sw, 2, voice, core.DefaultQueueFrequencies)
		flow := netsim.FiveTuple{Src: h1.Addr, Dst: h2.Addr, SrcPort: 1, DstPort: 2, Proto: netsim.ProtoUDP}
		src := netsim.StartPaced(sim, h1, flow, 250, 1500, 0.2, 20)
		qm.StartSwitchSide(sim, 0.05)
		var cc *core.CongestionController
		if withControl {
			ctrl := core.NewController(sim, mic, core.NewDetector(core.MethodGoertzel, qm.Frequencies()))
			cc = core.NewCongestionController(qm, src)
			ctrl.SubscribeWindows(qm.HandleWindow)
			ctrl.SubscribeWindows(cc.HandleWindow)
			ctrl.Start(0)
		}
		sim.RunUntil(20)
		if cc != nil {
			rateLog = cc.RateLog
		}
		return egress.Out.Drops(), h2.RxPackets, src.Rate(), rateLog
	}

	dropsNone, delivNone, _, _ := run(false)
	dropsCtl, delivCtl, rate, rateLog := run(true)
	r.row("uncontrolled source overflows the queue", "drop-tail losses", dropsNone > 500,
		"%d drops, %d delivered", dropsNone, delivNone)
	r.row("tone-driven AIMD cuts losses", "ECN-like reaction without touching the transport",
		dropsCtl*2 < dropsNone, "%d drops (%.1fx fewer), %d delivered",
		dropsCtl, ratio(float64(dropsNone), float64(dropsCtl+1)), delivCtl)
	r.row("rate converges toward capacity", "AIMD sawtooth around ~83 pps",
		rate > 20 && rate < 150, "final rate %.0f pps", rate)
	goodputRatio := float64(delivCtl) / float64(delivNone)
	r.row("goodput preserved", "control does not starve the flow", goodputRatio > 0.85,
		"%.0f%% of uncontrolled goodput", goodputRatio*100)

	var xs, ys []float64
	for _, s := range rateLog {
		xs = append(xs, s.Time)
		ys = append(ys, s.Value)
	}
	r.addSeries("controlled send rate (pps) — AIMD sawtooth", xs, ys)
	return r
}

// ExtUltrasound quantifies the Section 8 direction "including
// frequencies outside the spectrum of human hearing": at a 96 kHz
// capture rate the usable band roughly doubles, and the detector
// recovers ~2000 concurrent tones.
func ExtUltrasound() *Result {
	r := &Result{ID: "ext-ultrasound", Title: "Ultrasound extension (Section 8): capacity beyond human hearing"}
	const (
		spacing = 20.0
		amp     = 0.008
		dur     = 0.200
	)
	rng := rand.New(rand.NewSource(140))
	run := func(sampleRate, minHz, maxHz float64) (n int, recovered float64) {
		n = int((maxHz - minHz) / spacing)
		freqs := make([]float64, n)
		for i := range freqs {
			freqs[i] = minHz + spacing*float64(i)
		}
		buf := audio.NewBuffer(sampleRate, dur)
		for _, f := range freqs {
			tone := audio.Tone{Frequency: f, Duration: dur, Amplitude: amp, Phase: rng.Float64() * 6.28}
			buf.MixAt(tone.Render(sampleRate), 0, 1)
		}
		det := core.NewDetector(core.MethodFFT, freqs)
		det.ToleranceHz = 5
		det.RelativeFloor = 0.05
		got := det.Detect(buf, 0)
		return n, float64(len(got)) / float64(n)
	}

	nAudible, fracAudible := run(44100, 300, 20000)
	nUltra, fracUltra := run(96000, 300, 40000)
	r.row("audible band capacity (44.1 kHz capture)", "~1000 frequencies", nAudible >= 900 && fracAudible >= 0.95,
		"%d tones, %.1f%% recovered", nAudible, fracAudible*100)
	r.row("with ultrasound (96 kHz capture)", "more discernible sounds, more scalable operations",
		nUltra >= 1900 && fracUltra >= 0.95, "%d tones, %.1f%% recovered", nUltra, fracUltra*100)
	r.row("capacity roughly doubles", "band doubles", float64(nUltra) > 1.8*float64(nAudible),
		"%d vs %d slots", nUltra, nAudible)

	// The physical catch: atmospheric absorption trades range for the
	// extra capacity. A 60 dB tone at 20 m through absorbing air.
	received := func(freq float64) float64 {
		room := acoustic.NewRoom(96000, 141)
		room.AirAbsorption = true
		mic := room.AddMicrophone("m", acoustic.Position{}, 0)
		room.AddSpeaker("s", acoustic.Position{X: 20}).Play(0, audio.Tone{
			Frequency: freq, Duration: 0.3, Amplitude: acoustic.SPLToAmplitude(60)})
		return mic.Capture(0.1, 0.25).RMS()
	}
	lowRMS := received(2000)
	highRMS := received(35000)
	r.row("ultrasound trades range for capacity", "air absorption rises steeply with frequency",
		highRMS < lowRMS/5, "at 20 m a 35 kHz tone arrives %.0fx weaker than 2 kHz (%.1e vs %.1e)",
		lowRMS/highRMS, highRMS, lowRMS)
	r.note("absorption model: ISO 9613-1 power-law fit, ~0.01 dB/m at 1 kHz, ~1.2 dB/m at 40 kHz")
	return r
}

// ExtMicArray demonstrates the Section 8 direction "coordinate an
// array of microphones listening to different groups of switches":
// two zones reuse one frequency and the array attributes each tone to
// its zone by nearest-microphone amplitude.
func ExtMicArray() *Result {
	r := &Result{ID: "ext-micarray", Title: "Microphone array zoning (Section 8 direction)"}
	sim := netsim.NewSim()
	room := acoustic.NewRoom(44100, 150)
	micA := room.AddMicrophone("mic-zone-a", acoustic.Position{X: -4}, 0.0003)
	micB := room.AddMicrophone("mic-zone-b", acoustic.Position{X: 4}, 0.0003)
	spA := room.AddSpeaker("switch-a", acoustic.Position{X: -4.5})
	spB := room.AddSpeaker("switch-b", acoustic.Position{X: 4.5})
	vA := core.NewVoice(sim, mp.NewSounder(mp.NewPi(sim, spA, 0.002)))
	vB := core.NewVoice(sim, mp.NewSounder(mp.NewPi(sim, spB, 0.002)))
	const shared = 700.0

	arr := core.NewMicArray(sim, core.NewDetector(core.MethodGoertzel, []float64{shared}), micA, micB)
	var fromA, fromB, wrong int
	arr.Subscribe(func(ad core.ArrayDetection) {
		switch {
		case ad.Time < 1.0 && ad.Mic == "mic-zone-a":
			fromA++
		case ad.Time >= 1.0 && ad.Mic == "mic-zone-b":
			fromB++
		default:
			wrong++
		}
	})
	arr.Start(0)
	sim.Schedule(0.5, func() { vA.Play(shared) })
	sim.Schedule(1.5, func() { vB.Play(shared) })
	sim.RunUntil(2.5)

	r.row("zone A tone attributed to zone A's microphone", "nearest mic wins", fromA > 0,
		"%d windows", fromA)
	r.row("zone B tone attributed to zone B's microphone", "nearest mic wins", fromB > 0,
		"%d windows", fromB)
	r.row("no misattributions", "frequency reuse across zones is safe", wrong == 0,
		"%d wrong", wrong)
	r.note("both switches share the SAME 700 Hz tone; a single microphone could not tell them apart")
	return r
}

// ExtHeartbeat demonstrates out-of-band device liveness: switches
// beat their own tones; a dead device is noticed within a few missed
// beats, with no network path to it at all.
func ExtHeartbeat() *Result {
	r := &Result{ID: "ext-heartbeat", Title: "Out-of-band device liveness (heartbeat tones)"}
	sim := netsim.NewSim()
	room := acoustic.NewRoom(44100, 160)
	mic := room.AddMicrophone("controller", acoustic.Position{}, 0.0005)
	plan := core.DefaultPlan()

	hb := core.NewHeartbeat()
	mkVoice := func(name string, x float64) *core.Voice {
		sp := room.AddSpeaker(name, acoustic.Position{X: x})
		return core.NewVoice(sim, mp.NewSounder(mp.NewPi(sim, sp, 0.002)))
	}
	f1, err := hb.Register(plan, "s1", mkVoice("s1", 1))
	if err != nil {
		panic(err)
	}
	f2, err := hb.Register(plan, "s2", mkVoice("s2", -1.5))
	if err != nil {
		panic(err)
	}
	ctrl := core.NewController(sim, mic, core.NewDetector(core.MethodGoertzel, hb.Frequencies()))
	hb.Start(ctrl, 0)
	ctrl.Start(0)
	t1, err := hb.StartDevice(sim, f1, 0.2)
	if err != nil {
		panic(err)
	}
	if _, err := hb.StartDevice(sim, f2, 0.7); err != nil {
		panic(err)
	}
	const dieAt = 6.0
	sim.After(dieAt, t1.Stop)
	sim.RunUntil(15)

	r.row("live devices beat audibly", "one tone per device per period",
		hb.BeatsOf("s1") >= 4 && hb.BeatsOf("s2") >= 12,
		"s1: %d beats before death, s2: %d beats", hb.BeatsOf("s1"), hb.BeatsOf("s2"))
	r.row("dead device alerted", "silence noticed after the miss threshold",
		len(hb.Alerts) == 1 && hb.Alerts[0].Device == "s1",
		"%d alert(s): %+v", len(hb.Alerts), hb.Alerts)
	if len(hb.Alerts) == 1 {
		lag := hb.Alerts[0].Time - dieAt
		r.row("detection latency", "threshold x period",
			lag > 2 && lag < 5.5, "%.1f s after death (threshold %d x %.0f s)",
			lag, hb.MissThreshold, hb.Period)
	}
	r.note("no packets are exchanged with the monitored devices at any point")
	return r
}
