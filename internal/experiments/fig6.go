package experiments

import (
	"fmt"

	"mdn/internal/acoustic"
	"mdn/internal/core"
	"mdn/internal/dsp"
)

// fanScenario builds the Section 7 listening setup: a foreground
// server fan 0.3 m from the microphone that stops at failAt, inside
// the named ambience. It returns the monitor (trained 1–3 s) and the
// room microphone.
func fanScenario(ambience string, failAt float64, seed int64) (*core.FanMonitor, *acoustic.Microphone) {
	const sampleRate = 44100.0
	room := acoustic.NewRoom(sampleRate, seed)
	mic := room.AddMicrophone("probe", acoustic.Position{}, 0.0005)
	fanSrc, fan := core.FanSource(sampleRate, 2.0, 0.3, acoustic.Position{X: 0.3}, seed)
	fanSrc.Until = failAt
	room.AddNoise(fanSrc)
	switch ambience {
	case "datacenter":
		room.AddNoise(core.DatacenterNoise(sampleRate, 3.0, seed+1))
	case "office":
		room.AddNoise(core.OfficeNoise(sampleRate, 3.0, seed+1))
	}
	fm := core.NewFanMonitor(mic, fan.HarmonicFrequencies())
	return fm, mic
}

// Fig6 reproduces Figure 6: the fan's harmonic signature is visible
// when the fan runs and vanishes when it stops, in both a datacenter
// and an office. We report the blade-pass-band amplitude for each of
// the four panels (datacenter/office × on/off).
func Fig6() *Result {
	r := &Result{ID: "fig6", Title: "Fan on/off spectra in datacenter and office"}
	const failAt = 10.0
	for _, env := range []string{"datacenter", "office"} {
		fm, mic := fanScenario(env, failAt, 700+int64(len(env)))
		if err := fm.Train(1, 3); err != nil {
			panic(err)
		}
		base := fm.Baseline()
		onAmp := mean(base)
		// Off capture after the failure.
		offMon := core.NewFanMonitor(mic, fm.Harmonics)
		if err := offMon.Train(11, 13); err != nil {
			panic(err)
		}
		offAmp := mean(offMon.Baseline())
		margin := dsp.AmplitudeDB(onAmp) - dsp.AmplitudeDB(offAmp)
		r.row(fmt.Sprintf("%s: fan harmonics stand out when ON", env),
			"noticeably greater amplitude than OFF", margin > 6,
			"on %.1f dB vs off %.1f dB (margin %.1f dB)",
			dsp.AmplitudeDB(onAmp), dsp.AmplitudeDB(offAmp), margin)

		// Series: harmonic-band amplitudes on vs off.
		var xs, yOn, yOff []float64
		for i, f := range fm.Harmonics {
			xs = append(xs, f)
			yOn = append(yOn, base[i])
			yOff = append(yOff, offMon.Baseline()[i])
		}
		r.addSeries(env+": harmonic amplitude, fan ON", xs, yOn)
		r.addSeries(env+": harmonic amplitude, fan OFF", xs, yOff)

		if env == "datacenter" {
			// Figure 6a/6b's raw material: 2 s of fan-on followed by
			// 2 s after the failure, in the datacenter ambience.
			joined := mic.Capture(1, 3)
			joined.Samples = append(joined.Samples, mic.Capture(11, 13).Samples...)
			r.attachAudio("datacenter: 2 s fan ON then 2 s fan OFF", joined)
		}
	}
	return r
}

// Fig7 reproduces Figure 7: the amplitude-difference statistic. For
// each environment, comparing an on-recording with an off-recording
// yields a much larger per-harmonic amplitude difference than
// comparing two on-recordings; the monitor alarms only on the former.
func Fig7() *Result {
	r := &Result{ID: "fig7", Title: "Fan-failure amplitude-difference statistic"}
	const failAt = 10.0
	for _, env := range []string{"datacenter", "office"} {
		fm, _ := fanScenario(env, failAt, 800+int64(len(env)))
		if err := fm.Train(1, 3); err != nil {
			panic(err)
		}
		onVsOn := fm.AmplitudeDiff(1, 3, 4, 6)
		onVsOff := fm.AmplitudeDiff(1, 3, 11, 13)
		r.row(fmt.Sprintf("%s: on-vs-off diff dominates on-vs-on", env),
			"blue (on/off) line well above red (on/on)", onVsOff > 3*onVsOn,
			"on-vs-off %.3f vs on-vs-on %.3f (ratio %.1f)", onVsOff, onVsOn, ratio(onVsOff, onVsOn))

		healthyFail, healthyScore, err := fm.Check(4, 6)
		if err != nil {
			panic(err)
		}
		deadFail, deadScore, err := fm.Check(11, 13)
		if err != nil {
			panic(err)
		}
		r.row(fmt.Sprintf("%s: alert fires only on failure", env),
			"out-of-band alert after amplitude drop",
			!healthyFail && deadFail,
			"healthy score %.3f (alert=%v), dead score %.3f (alert=%v)",
			healthyScore, healthyFail, deadScore, deadFail)
	}
	r.note("microphone placed 0.3 m from the monitored server, per the paper's \"closely placed microphone\"")
	return r
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
