package openflow

import (
	"bytes"
	"testing"

	"mdn/internal/netsim"
)

// FuzzUnmarshal drives arbitrary bytes through both the flat codec and
// the streaming decoder: neither may panic, and anything that decodes
// must survive a marshal→unmarshal round trip unchanged.
func FuzzUnmarshal(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x0F, 0x4D, 1, 0, 0})
	f.Add(must(MarshalFlowMod(FlowMod{Command: FlowAdd, Priority: 7, Match: netsim.Match{DstPort: 80}, Action: netsim.Split(1, 2), IdleTimeout: 1.5})))
	f.Add(must(MarshalPacketIn(PacketIn{Switch: "zodiac", InPort: 3, Size: 1500})))
	f.Add(must(MarshalPortStatus(PortStatus{Switch: "s1", Port: 2, Up: true})))
	corrupt := must(MarshalFlowMod(FlowMod{Command: FlowAdd, Action: netsim.Output(4)}))
	corrupt[headerLen+5+matchLen+16] = 0xEE // action kind
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, n, err := Unmarshal(data)
		if err == nil {
			if n <= 0 || n > len(data) {
				t.Fatalf("consumed %d of %d", n, len(data))
			}
			reWire, mErr := Marshal(msg)
			if mErr != nil {
				t.Fatalf("decoded message does not re-marshal: %v", mErr)
			}
			if !bytes.Equal(reWire, data[:n]) {
				t.Fatalf("round trip diverged:\n in  %x\n out %x", data[:n], reWire)
			}
		}
		// The streaming decoder must terminate and never panic on the
		// same bytes, whatever the corruption.
		dec := NewDecoder(bytes.NewReader(data))
		for {
			if _, err := dec.Decode(); err != nil {
				break
			}
		}
		if skipped := dec.SkippedBytes; skipped > uint64(len(data)) {
			t.Fatalf("skipped %d of %d bytes", skipped, len(data))
		}
	})
}
