// Package openflow provides the minimal OpenFlow-like control-plane
// messages the Music-Defined Networking controller uses to program
// switches: Flow-MOD (install/remove rules), Packet-In (table punts),
// and Port-Status. Messages have a compact binary wire format so the
// control channel can run over a real transport as well as inside the
// simulator.
package openflow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net/netip"

	"mdn/internal/netsim"
)

// MessageType discriminates control messages.
type MessageType uint8

// Control message types.
const (
	// TypeFlowMod installs or removes a flow rule.
	TypeFlowMod MessageType = iota + 1
	// TypePacketIn reports a packet punted to the controller.
	TypePacketIn
	// TypePortStatus reports a port going up or down.
	TypePortStatus
)

// String names the message type.
func (t MessageType) String() string {
	switch t {
	case TypeFlowMod:
		return "flow-mod"
	case TypePacketIn:
		return "packet-in"
	case TypePortStatus:
		return "port-status"
	default:
		return "unknown"
	}
}

// FlowModCommand selects what a Flow-MOD does.
type FlowModCommand uint8

// Flow-MOD commands.
const (
	// FlowAdd installs the rule.
	FlowAdd FlowModCommand = iota
	// FlowDelete removes rules whose match equals the message match.
	FlowDelete
)

// FlowMod asks a switch to add or delete a rule.
type FlowMod struct {
	Command  FlowModCommand
	Priority int32
	Match    netsim.Match
	Action   netsim.Action
	// IdleTimeout and HardTimeout carry OpenFlow rule expiry in
	// seconds (0 = none).
	IdleTimeout float64
	HardTimeout float64
}

// PacketIn reports a packet that hit a controller action or missed
// the table.
type PacketIn struct {
	// Switch is the reporting switch name.
	Switch string
	// InPort is the ingress port.
	InPort int32
	// Flow is the packet's five-tuple.
	Flow netsim.FiveTuple
	// Size is the packet size in bytes.
	Size int32
}

// PortStatus reports a port state change.
type PortStatus struct {
	// Switch is the reporting switch name.
	Switch string
	// Port is the port number.
	Port int32
	// Up reports the new state.
	Up bool
}

// Apply executes the Flow-MOD against a simulated switch, returning
// the installed rule for FlowAdd (nil for FlowDelete).
func (m FlowMod) Apply(sw *netsim.Switch) *netsim.Rule {
	switch m.Command {
	case FlowAdd:
		return sw.InstallRule(netsim.Rule{
			Priority:    int(m.Priority),
			Match:       m.Match,
			Action:      m.Action,
			IdleTimeout: m.IdleTimeout,
			HardTimeout: m.HardTimeout,
		})
	case FlowDelete:
		sw.RemoveRules(func(r *netsim.Rule) bool { return r.Match == m.Match })
	}
	return nil
}

// Wire format: every message is
//
//	magic   uint16  0x0F4D ("OF"+"M"usic)
//	type    uint8
//	length  uint16  payload bytes
//	payload ...
//
// Integers are big-endian, network order.
const magic = 0x0F4D

// Wire-format limits. Fields that cannot fit are a marshal error —
// never a silent truncating cast, which would emit desynced garbage
// the peer misparses.
const (
	// MaxNameLen is the longest switch name the one-byte length prefix
	// carries.
	MaxNameLen = 255
	// MaxActionPorts is the most ports one action can list on the wire.
	MaxActionPorts = 255
	// MaxPayload is the largest payload the 16-bit length field frames.
	MaxPayload = 1<<16 - 1
	// maxPort keeps port numbers inside int32 so they survive the
	// uint32 wire field on every platform.
	maxPort = 1<<31 - 1
)

// ErrBadMessage reports a control message that cannot be decoded (or
// encoded): corrupt framing, an unknown type, command, or action kind,
// or field values outside their domain.
var ErrBadMessage = errors.New("openflow: malformed message")

// ErrTooLarge reports a message field that exceeds a wire-format limit
// and would previously have been silently truncated.
var ErrTooLarge = errors.New("openflow: field exceeds wire-format limit")

const headerLen = 5

// checkAddr accepts the zero Addr (wildcard) and IPv4/IPv4-in-6
// addresses; anything else cannot ride the 4-byte wire field.
func checkAddr(a netip.Addr) error {
	if a.IsValid() && !a.Is4() && !a.Is4In6() {
		return fmt.Errorf("%w: address %s is not IPv4", ErrBadMessage, a)
	}
	return nil
}

func checkMatch(m netsim.Match) error {
	if err := checkAddr(m.Src); err != nil {
		return err
	}
	if err := checkAddr(m.Dst); err != nil {
		return err
	}
	if m.InPort < 0 || m.InPort > maxPort {
		return fmt.Errorf("%w: in-port %d outside [0, %d]", ErrBadMessage, m.InPort, maxPort)
	}
	return nil
}

func checkName(name string) error {
	if len(name) > MaxNameLen {
		return fmt.Errorf("%w: switch name %d bytes, max %d", ErrTooLarge, len(name), MaxNameLen)
	}
	return nil
}

// checkTimeout rejects values no rule can honour: negative, NaN, Inf.
func checkTimeout(which string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return fmt.Errorf("%w: %s timeout %g", ErrBadMessage, which, v)
	}
	return nil
}

func putAddr(dst []byte, a netip.Addr) {
	if a.IsValid() {
		b := a.As4()
		copy(dst, b[:])
	}
}

func getAddr(src []byte) netip.Addr {
	var b [4]byte
	copy(b[:], src)
	if b == ([4]byte{}) {
		return netip.Addr{}
	}
	return netip.AddrFrom4(b)
}

func marshalMatch(dst []byte, m netsim.Match) {
	binary.BigEndian.PutUint32(dst[0:4], uint32(m.InPort))
	putAddr(dst[4:8], m.Src)
	putAddr(dst[8:12], m.Dst)
	binary.BigEndian.PutUint16(dst[12:14], m.SrcPort)
	binary.BigEndian.PutUint16(dst[14:16], m.DstPort)
	dst[16] = m.Proto
}

func unmarshalMatch(src []byte) netsim.Match {
	return netsim.Match{
		InPort:  int(binary.BigEndian.Uint32(src[0:4])),
		Src:     getAddr(src[4:8]),
		Dst:     getAddr(src[8:12]),
		SrcPort: binary.BigEndian.Uint16(src[12:14]),
		DstPort: binary.BigEndian.Uint16(src[14:16]),
		Proto:   src[16],
	}
}

const matchLen = 17

// Validate checks the Flow-MOD against the wire format's limits and
// field domains; Marshal refuses anything Validate rejects.
func (m FlowMod) Validate() error {
	if m.Command != FlowAdd && m.Command != FlowDelete {
		return fmt.Errorf("%w: unknown flow-mod command %d", ErrBadMessage, m.Command)
	}
	if err := checkMatch(m.Match); err != nil {
		return err
	}
	if err := checkTimeout("idle", m.IdleTimeout); err != nil {
		return err
	}
	if err := checkTimeout("hard", m.HardTimeout); err != nil {
		return err
	}
	if !m.Action.Kind.Valid() {
		return fmt.Errorf("%w: unknown action kind %d", ErrBadMessage, m.Action.Kind)
	}
	if len(m.Action.Ports) > MaxActionPorts {
		return fmt.Errorf("%w: %d action ports, max %d", ErrTooLarge, len(m.Action.Ports), MaxActionPorts)
	}
	for _, p := range m.Action.Ports {
		if p < 0 || p > maxPort {
			return fmt.Errorf("%w: action port %d outside [0, %d]", ErrBadMessage, p, maxPort)
		}
	}
	return nil
}

// MarshalFlowMod encodes a Flow-MOD, or reports why it cannot ride the
// wire format.
func MarshalFlowMod(m FlowMod) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	payload := make([]byte, 1+4+matchLen+16+1+1+len(m.Action.Ports)*4)
	payload[0] = byte(m.Command)
	binary.BigEndian.PutUint32(payload[1:5], uint32(m.Priority))
	marshalMatch(payload[5:], m.Match)
	off := 5 + matchLen
	binary.BigEndian.PutUint64(payload[off:], math.Float64bits(m.IdleTimeout))
	binary.BigEndian.PutUint64(payload[off+8:], math.Float64bits(m.HardTimeout))
	off += 16
	payload[off] = byte(m.Action.Kind)
	payload[off+1] = byte(len(m.Action.Ports))
	for i, p := range m.Action.Ports {
		binary.BigEndian.PutUint32(payload[off+2+i*4:], uint32(p))
	}
	return frame(TypeFlowMod, payload)
}

// Validate checks the Packet-In against the wire format's limits.
func (p PacketIn) Validate() error {
	if err := checkName(p.Switch); err != nil {
		return err
	}
	if err := checkAddr(p.Flow.Src); err != nil {
		return err
	}
	return checkAddr(p.Flow.Dst)
}

// MarshalPacketIn encodes a Packet-In, or reports why it cannot ride
// the wire format.
func MarshalPacketIn(p PacketIn) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	name := []byte(p.Switch)
	payload := make([]byte, 1+len(name)+4+matchLen+4)
	payload[0] = byte(len(name))
	copy(payload[1:], name)
	off := 1 + len(name)
	binary.BigEndian.PutUint32(payload[off:], uint32(p.InPort))
	off += 4
	marshalMatch(payload[off:], netsim.Match{
		Src: p.Flow.Src, Dst: p.Flow.Dst,
		SrcPort: p.Flow.SrcPort, DstPort: p.Flow.DstPort, Proto: p.Flow.Proto,
	})
	off += matchLen
	binary.BigEndian.PutUint32(payload[off:], uint32(p.Size))
	return frame(TypePacketIn, payload)
}

// Validate checks the Port-Status against the wire format's limits.
func (p PortStatus) Validate() error {
	return checkName(p.Switch)
}

// MarshalPortStatus encodes a Port-Status, or reports why it cannot
// ride the wire format.
func MarshalPortStatus(p PortStatus) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	name := []byte(p.Switch)
	payload := make([]byte, 1+len(name)+4+1)
	payload[0] = byte(len(name))
	copy(payload[1:], name)
	off := 1 + len(name)
	binary.BigEndian.PutUint32(payload[off:], uint32(p.Port))
	if p.Up {
		payload[off+4] = 1
	}
	return frame(TypePortStatus, payload)
}

// Marshal encodes any control message (FlowMod, PacketIn, or
// PortStatus).
func Marshal(msg interface{}) ([]byte, error) {
	switch m := msg.(type) {
	case FlowMod:
		return MarshalFlowMod(m)
	case *FlowMod:
		return MarshalFlowMod(*m)
	case PacketIn:
		return MarshalPacketIn(m)
	case *PacketIn:
		return MarshalPacketIn(*m)
	case PortStatus:
		return MarshalPortStatus(m)
	case *PortStatus:
		return MarshalPortStatus(*m)
	default:
		return nil, fmt.Errorf("%w: cannot marshal %T", ErrBadMessage, msg)
	}
}

func frame(t MessageType, payload []byte) ([]byte, error) {
	if len(payload) > MaxPayload {
		return nil, fmt.Errorf("%w: payload %d bytes, max %d", ErrTooLarge, len(payload), MaxPayload)
	}
	out := make([]byte, headerLen+len(payload))
	binary.BigEndian.PutUint16(out[0:2], magic)
	out[2] = byte(t)
	binary.BigEndian.PutUint16(out[3:5], uint16(len(payload)))
	copy(out[headerLen:], payload)
	return out, nil
}

// Unmarshal decodes one framed message, returning the decoded value
// (FlowMod, PacketIn, or PortStatus) and the number of bytes consumed.
func Unmarshal(b []byte) (interface{}, int, error) {
	if len(b) < headerLen {
		return nil, 0, fmt.Errorf("%w: short header", ErrBadMessage)
	}
	if binary.BigEndian.Uint16(b[0:2]) != magic {
		return nil, 0, fmt.Errorf("%w: bad magic", ErrBadMessage)
	}
	t := MessageType(b[2])
	n := int(binary.BigEndian.Uint16(b[3:5]))
	if len(b) < headerLen+n {
		return nil, 0, fmt.Errorf("%w: truncated payload", ErrBadMessage)
	}
	payload := b[headerLen : headerLen+n]
	total := headerLen + n
	switch t {
	case TypeFlowMod:
		if len(payload) < 5+matchLen+16+2 {
			return nil, 0, fmt.Errorf("%w: short flow-mod", ErrBadMessage)
		}
		m := FlowMod{
			Command:  FlowModCommand(payload[0]),
			Priority: int32(binary.BigEndian.Uint32(payload[1:5])),
			Match:    unmarshalMatch(payload[5:]),
		}
		if m.Command != FlowAdd && m.Command != FlowDelete {
			return nil, 0, fmt.Errorf("%w: unknown flow-mod command %d", ErrBadMessage, m.Command)
		}
		if m.Match.InPort > maxPort {
			return nil, 0, fmt.Errorf("%w: match in-port outside [0, %d]", ErrBadMessage, maxPort)
		}
		off := 5 + matchLen
		m.IdleTimeout = math.Float64frombits(binary.BigEndian.Uint64(payload[off:]))
		m.HardTimeout = math.Float64frombits(binary.BigEndian.Uint64(payload[off+8:]))
		if checkTimeout("idle", m.IdleTimeout) != nil || checkTimeout("hard", m.HardTimeout) != nil {
			return nil, 0, fmt.Errorf("%w: bad flow-mod timeouts", ErrBadMessage)
		}
		off += 16
		m.Action.Kind = netsim.ActionKind(payload[off])
		if !m.Action.Kind.Valid() {
			return nil, 0, fmt.Errorf("%w: unknown action kind %d", ErrBadMessage, payload[off])
		}
		np := int(payload[off+1])
		if len(payload) != off+2+np*4 {
			return nil, 0, fmt.Errorf("%w: flow-mod ports length mismatch", ErrBadMessage)
		}
		for i := 0; i < np; i++ {
			port := binary.BigEndian.Uint32(payload[off+2+i*4:])
			if port > maxPort {
				return nil, 0, fmt.Errorf("%w: action port %d outside [0, %d]", ErrBadMessage, port, maxPort)
			}
			m.Action.Ports = append(m.Action.Ports, int(port))
		}
		return m, total, nil
	case TypePacketIn:
		if len(payload) < 1 {
			return nil, 0, fmt.Errorf("%w: short packet-in", ErrBadMessage)
		}
		nameLen := int(payload[0])
		if len(payload) != 1+nameLen+4+matchLen+4 {
			return nil, 0, fmt.Errorf("%w: packet-in length mismatch", ErrBadMessage)
		}
		p := PacketIn{Switch: string(payload[1 : 1+nameLen])}
		off := 1 + nameLen
		p.InPort = int32(binary.BigEndian.Uint32(payload[off:]))
		off += 4
		m := unmarshalMatch(payload[off:])
		if m.InPort != 0 {
			// The embedded match's in-port slot is reserved (the
			// packet's ingress rides the dedicated InPort field);
			// nonzero bytes mean corruption.
			return nil, 0, fmt.Errorf("%w: packet-in reserved in-port bytes", ErrBadMessage)
		}
		p.Flow = netsim.FiveTuple{Src: m.Src, Dst: m.Dst, SrcPort: m.SrcPort, DstPort: m.DstPort, Proto: m.Proto}
		off += matchLen
		p.Size = int32(binary.BigEndian.Uint32(payload[off:]))
		return p, total, nil
	case TypePortStatus:
		if len(payload) < 1 {
			return nil, 0, fmt.Errorf("%w: short port-status", ErrBadMessage)
		}
		nameLen := int(payload[0])
		if len(payload) != 1+nameLen+5 {
			return nil, 0, fmt.Errorf("%w: port-status length mismatch", ErrBadMessage)
		}
		p := PortStatus{Switch: string(payload[1 : 1+nameLen])}
		off := 1 + nameLen
		p.Port = int32(binary.BigEndian.Uint32(payload[off:]))
		switch payload[off+4] {
		case 0:
			p.Up = false
		case 1:
			p.Up = true
		default:
			return nil, 0, fmt.Errorf("%w: port-status state byte %d", ErrBadMessage, payload[off+4])
		}
		return p, total, nil
	default:
		return nil, 0, fmt.Errorf("%w: unknown type %d", ErrBadMessage, t)
	}
}
