package openflow

import (
	"errors"
	"fmt"
	"math/rand"

	"mdn/internal/telemetry"
)

// ErrRetriesExhausted reports a flow-programming operation that
// failed on every attempt over a lossy control channel.
var ErrRetriesExhausted = errors.New("openflow: flow programming retries exhausted")

// Programmer is a retrying flow-programming wrapper around a Channel:
// every Install is attempted with bounded exponential backoff plus
// deterministic jitter, scheduled on simulated time, until the
// message survives the wire or the attempt budget is spent. A per-rule
// idempotency key (the marshalled wire bytes) makes retries safe over
// a lossy channel: a rule the programmer has already confirmed
// installed is never sent again, so a duplicate Install — or a
// handler re-firing after partial failure — cannot double-install.
//
// The programmer is driven entirely by the simulation goroutine; it
// is not safe for concurrent use from other goroutines.
type Programmer struct {
	// MaxAttempts bounds tries per rule (default 8).
	MaxAttempts int
	// BaseBackoff is the first retry delay in seconds (default 50 ms);
	// it doubles per retry up to MaxBackoff (default 1 s).
	BaseBackoff float64
	MaxBackoff  float64
	// JitterFrac spreads each backoff uniformly over
	// [1-JitterFrac/2, 1+JitterFrac/2) of its nominal value
	// (default 0.5), decorrelating retry storms.
	JitterFrac float64
	// OnResult, when set, observes each rule's terminal outcome: err
	// is nil on confirmed install, wraps ErrRetriesExhausted on
	// give-up. Validation failures are returned synchronously by
	// Install and do not reach OnResult.
	OnResult func(m FlowMod, err error)

	ch  *Channel
	rng *rand.Rand

	installed map[string]bool
	pending   int

	// Attempts counts wire sends, Retries the re-sends among them.
	Attempts uint64
	Retries  uint64
	// Installs counts rules confirmed through the wire; Duplicates
	// counts Installs suppressed by the idempotency key; Failures
	// counts rules given up on.
	Installs   uint64
	Duplicates uint64
	Failures   uint64

	// Telemetry handles, nil until Instrument; every update is
	// nil-safe.
	tmAttempts   *telemetry.Counter
	tmRetries    *telemetry.Counter
	tmInstalls   *telemetry.Counter
	tmDuplicates *telemetry.Counter
	tmFailures   *telemetry.Counter
	tmProgram    *telemetry.Histogram
}

// Programming defaults.
const (
	DefaultMaxAttempts = 8
	DefaultBaseBackoff = 0.050
	DefaultMaxBackoff  = 1.0
	DefaultJitterFrac  = 0.5
)

// NewProgrammer wraps a channel. The seed drives the retry jitter, so
// runs replay exactly.
func NewProgrammer(ch *Channel, seed int64) *Programmer {
	return &Programmer{
		MaxAttempts: DefaultMaxAttempts,
		BaseBackoff: DefaultBaseBackoff,
		MaxBackoff:  DefaultMaxBackoff,
		JitterFrac:  DefaultJitterFrac,
		ch:          ch,
		rng:         rand.New(rand.NewSource(seed)),
		installed:   make(map[string]bool),
	}
}

// Channel returns the wrapped channel.
func (p *Programmer) Channel() *Channel { return p.ch }

// Instrument registers the programmer's counters and its
// flow-programming latency histogram with reg, labelled by the
// channel's switch name:
//
//	mdn_flow_{attempts,retries,installs,duplicates,failures}_total{switch}
//	mdn_flow_program_seconds{switch}
//
// The histogram measures Install→outcome in *virtual* seconds — it is
// a protocol latency (backoff schedule plus wire round trips), so the
// same seed reproduces the same distribution exactly.
func (p *Programmer) Instrument(reg *telemetry.Registry) {
	name := p.ch.Switch().Name
	label := func(metric string) string { return telemetry.Label(metric, "switch", name) }
	p.tmAttempts = reg.Counter(label("mdn_flow_attempts_total"))
	p.tmRetries = reg.Counter(label("mdn_flow_retries_total"))
	p.tmInstalls = reg.Counter(label("mdn_flow_installs_total"))
	p.tmDuplicates = reg.Counter(label("mdn_flow_duplicates_total"))
	p.tmFailures = reg.Counter(label("mdn_flow_failures_total"))
	p.tmProgram = reg.Histogram(label("mdn_flow_program_seconds"), telemetry.DefaultLatencyBuckets)
}

// Forget drops the rule's idempotency key, so a later Install sends it
// again. Callers use it when re-installation is deliberate — a
// re-triggered application intent — rather than a retry.
func (p *Programmer) Forget(m FlowMod) {
	if wire, err := MarshalFlowMod(m); err == nil {
		delete(p.installed, string(wire))
	}
}

// Pending returns how many rules are mid-retry.
func (p *Programmer) Pending() int { return p.pending }

// Install programs the rule through the channel, retrying lost or
// corrupted sends with backoff. It returns an error only for rules
// the wire format rejects outright (wrapping ErrBadMessage or
// ErrTooLarge); wire-loss outcomes are asynchronous and reported
// through OnResult. A rule already confirmed installed is suppressed
// and counted in Duplicates.
func (p *Programmer) Install(m FlowMod) error {
	wire, err := MarshalFlowMod(m)
	if err != nil {
		return fmt.Errorf("openflow: programmer: %w", err)
	}
	key := string(wire)
	if p.installed[key] {
		p.Duplicates++
		p.tmDuplicates.Inc()
		return nil
	}
	p.pending++
	p.attempt(m, key, 0, p.ch.Sim().Now())
	return nil
}

func (p *Programmer) attempt(m FlowMod, key string, try int, start float64) {
	p.Attempts++
	p.tmAttempts.Inc()
	if try > 0 {
		p.Retries++
		p.tmRetries.Inc()
	}
	delivered, err := p.ch.TrySendFlowMod(m)
	if err != nil {
		// Validate passed at Install time; a send error here means the
		// channel (without fault injection) failed the wire round
		// trip — terminal.
		p.finish(m, start, fmt.Errorf("%w: %v", ErrRetriesExhausted, err))
		return
	}
	if delivered {
		p.installed[key] = true
		p.Installs++
		p.tmInstalls.Inc()
		p.finish(m, start, nil)
		return
	}
	max := p.MaxAttempts
	if max <= 0 {
		max = DefaultMaxAttempts
	}
	if try+1 >= max {
		p.Failures++
		p.tmFailures.Inc()
		p.finish(m, start, fmt.Errorf("%w: %d attempts lost on %q",
			ErrRetriesExhausted, try+1, p.ch.Switch().Name))
		return
	}
	p.ch.Sim().After(p.backoff(try), func() { p.attempt(m, key, try+1, start) })
}

func (p *Programmer) finish(m FlowMod, start float64, err error) {
	p.pending--
	p.tmProgram.Observe(p.ch.Sim().Now() - start)
	if p.OnResult != nil {
		p.OnResult(m, err)
	}
}

// backoff returns the delay before retry number try+1: exponential
// from BaseBackoff, capped at MaxBackoff, jittered by JitterFrac.
func (p *Programmer) backoff(try int) float64 {
	base := p.BaseBackoff
	if base <= 0 {
		base = DefaultBaseBackoff
	}
	limit := p.MaxBackoff
	if limit <= 0 {
		limit = DefaultMaxBackoff
	}
	d := base
	for i := 0; i < try && d < limit; i++ {
		d *= 2
	}
	if d > limit {
		d = limit
	}
	jf := p.JitterFrac
	if jf < 0 {
		jf = 0
	}
	if jf > 0 {
		d *= 1 + jf*(p.rng.Float64()-0.5)
	}
	return d
}
