package openflow

import (
	"fmt"

	"mdn/internal/netsim"
)

// Channel is a control connection between a controller and one
// simulated switch, with a configurable one-way control-plane latency.
// Flow-MODs sent through the channel are marshalled to the wire
// format, unmarshalled at the switch side, and applied after the
// latency elapses — so experiments account for rule-installation
// delay just as the paper's OpenFlow channel does.
type Channel struct {
	// Latency is the one-way control latency in seconds.
	Latency float64

	sim *netsim.Sim
	sw  *netsim.Switch

	// SentFlowMods counts Flow-MODs pushed through the channel.
	SentFlowMods uint64
}

// NewChannel attaches a control channel to a switch.
func NewChannel(sim *netsim.Sim, sw *netsim.Switch, latency float64) *Channel {
	return &Channel{Latency: latency, sim: sim, sw: sw}
}

// Switch returns the attached switch.
func (c *Channel) Switch() *netsim.Switch { return c.sw }

// SendFlowMod transmits the Flow-MOD; it takes effect at the switch
// after the channel latency. The message round-trips through the wire
// format so marshalling bugs surface in every experiment.
func (c *Channel) SendFlowMod(m FlowMod) error {
	wire := MarshalFlowMod(m)
	decoded, _, err := Unmarshal(wire)
	if err != nil {
		return fmt.Errorf("openflow: flow-mod failed wire round-trip: %w", err)
	}
	fm, ok := decoded.(FlowMod)
	if !ok {
		return fmt.Errorf("%w: flow-mod decoded as %T", ErrBadMessage, decoded)
	}
	c.SentFlowMods++
	c.sim.After(c.Latency, func() { fm.Apply(c.sw) })
	return nil
}
