package openflow

import (
	"fmt"

	"mdn/internal/netsim"
)

// Channel is a control connection between a controller and one
// simulated switch, with a configurable one-way control-plane latency.
// Flow-MODs sent through the channel are marshalled to the wire
// format, unmarshalled at the switch side, and applied after the
// latency elapses — so experiments account for rule-installation
// delay just as the paper's OpenFlow channel does.
//
// InjectFaults arms deterministic wire faults (bit flips, truncation,
// drops, latency jitter) so experiments can measure control-plane
// degradation: a mangled Flow-MOD is rejected by the strict codec at
// the switch side and counted, never applied.
type Channel struct {
	// Latency is the one-way control latency in seconds.
	Latency float64

	sim    *netsim.Sim
	sw     *netsim.Switch
	faults *netsim.FaultInjector

	// SentFlowMods counts Flow-MODs pushed through the channel.
	SentFlowMods uint64
	// DroppedFlowMods counts Flow-MODs lost whole to injected faults.
	DroppedFlowMods uint64
	// CorruptedFlowMods counts Flow-MODs the switch-side codec
	// rejected after injected corruption.
	CorruptedFlowMods uint64
}

// NewChannel attaches a control channel to a switch.
func NewChannel(sim *netsim.Sim, sw *netsim.Switch, latency float64) *Channel {
	return &Channel{Latency: latency, sim: sim, sw: sw}
}

// Switch returns the attached switch.
func (c *Channel) Switch() *netsim.Switch { return c.sw }

// Sim returns the channel's clock — what retrying wrappers schedule
// their backoff on.
func (c *Channel) Sim() *netsim.Sim { return c.sim }

// InjectFaults arms wire-fault injection on the channel and returns
// the injector so callers can read its counters. A zero Faults value
// effectively disables injection again.
func (c *Channel) InjectFaults(f netsim.Faults) *netsim.FaultInjector {
	c.faults = netsim.NewFaultInjector(f)
	return c.faults
}

// SendFlowMod transmits the Flow-MOD; it takes effect at the switch
// after the channel latency (plus any injected jitter). The message
// round-trips through the wire format so marshalling bugs surface in
// every experiment. Unencodable messages return an error; messages
// lost to injected faults are counted, not errors — that loss is the
// phenomenon fault experiments measure.
func (c *Channel) SendFlowMod(m FlowMod) error {
	_, err := c.TrySendFlowMod(m)
	return err
}

// TrySendFlowMod is SendFlowMod with delivery feedback: delivered
// reports whether the message survived the wire and will be applied
// at the switch — the acknowledgement a barrier round-trip would
// carry on a real control channel. delivered=false with a nil error
// means the message was lost or corrupted in transit (counted, not an
// error); retrying wrappers key off it.
func (c *Channel) TrySendFlowMod(m FlowMod) (delivered bool, err error) {
	wire, err := MarshalFlowMod(m)
	if err != nil {
		return false, fmt.Errorf("openflow: flow-mod: %w", err)
	}
	c.SentFlowMods++
	wire, ok := c.faults.Mangle(wire)
	if !ok {
		c.DroppedFlowMods++
		return false, nil
	}
	decoded, _, err := Unmarshal(wire)
	if err != nil {
		if c.faults != nil {
			c.CorruptedFlowMods++
			return false, nil
		}
		return false, fmt.Errorf("openflow: flow-mod failed wire round-trip: %w", err)
	}
	fm, ok2 := decoded.(FlowMod)
	if !ok2 {
		// Corruption can re-frame the bytes as another message type;
		// the switch rejects it as an unexpected message.
		if c.faults != nil {
			c.CorruptedFlowMods++
			return false, nil
		}
		return false, fmt.Errorf("%w: flow-mod decoded as %T", ErrBadMessage, decoded)
	}
	delay := c.Latency + c.faults.Jitter()
	c.sim.After(delay, func() { fm.Apply(c.sw) })
	return true, nil
}
