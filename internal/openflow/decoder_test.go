package openflow

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"mdn/internal/netsim"
)

func sampleMessages() []interface{} {
	return []interface{}{
		FlowMod{Command: FlowAdd, Priority: 9, Match: sampleMatch(), Action: netsim.Split(1, 2)},
		PacketIn{Switch: "s1", InPort: 3, Flow: netsim.FiveTuple{SrcPort: 80, DstPort: 1000, Proto: netsim.ProtoTCP}, Size: 64},
		PortStatus{Switch: "s2", Port: 4, Up: true},
		FlowMod{Command: FlowDelete, Match: netsim.Match{DstPort: 22}, Action: netsim.Drop()},
	}
}

func TestEncoderDecoderStream(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	msgs := sampleMessages()
	for _, m := range msgs {
		if err := enc.Encode(m); err != nil {
			t.Fatal(err)
		}
	}
	dec := NewDecoder(&buf)
	for i, want := range msgs {
		got, err := dec.Decode()
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		switch w := want.(type) {
		case FlowMod:
			g := got.(FlowMod)
			if g.Command != w.Command || g.Match != w.Match {
				t.Errorf("message %d: got %+v", i, g)
			}
		default:
			// PacketIn and PortStatus are comparable.
			if got != want {
				t.Errorf("message %d: got %+v want %+v", i, got, want)
			}
		}
	}
	if _, err := dec.Decode(); err != io.EOF {
		t.Errorf("stream end: err = %v, want io.EOF", err)
	}
	if dec.Resyncs != 0 || dec.SkippedBytes != 0 {
		t.Errorf("clean stream resynced: %d/%d", dec.Resyncs, dec.SkippedBytes)
	}
}

func TestDecoderResyncsPastGarbage(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xDE, 0xAD, 0xBE, 0xEF}) // leading garbage
	first := must(MarshalPortStatus(PortStatus{Switch: "s1", Port: 1, Up: true}))
	buf.Write(first)
	buf.Write([]byte{0x0F}) // half a magic, then more garbage
	buf.Write([]byte{0x00, 0x42, 0x42})
	second := must(MarshalPacketIn(PacketIn{Switch: "s2", InPort: 2}))
	buf.Write(second)

	dec := NewDecoder(&buf)
	got1, err := dec.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if got1.(PortStatus).Switch != "s1" {
		t.Errorf("first message: %+v", got1)
	}
	got2, err := dec.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if got2.(PacketIn).Switch != "s2" {
		t.Errorf("second message: %+v", got2)
	}
	if dec.Resyncs == 0 || dec.SkippedBytes == 0 {
		t.Error("garbage skipping not recorded")
	}
	if _, err := dec.Decode(); err != io.EOF {
		t.Errorf("stream end: err = %v, want io.EOF", err)
	}
}

func TestDecoderSurvivesFlippedByte(t *testing.T) {
	// Corrupt each byte of the first frame in turn: the second frame
	// must always still decode — a flipped byte costs one message, not
	// the connection.
	first := must(MarshalFlowMod(FlowMod{Command: FlowAdd, Action: netsim.Output(7), Priority: 3}))
	second := must(MarshalPortStatus(PortStatus{Switch: "survivor", Port: 9}))
	for off := 0; off < len(first); off++ {
		stream := append([]byte(nil), first...)
		stream[off] ^= 0x40
		stream = append(stream, second...)
		dec := NewDecoder(bytes.NewReader(stream))
		var sawSurvivor bool
		for {
			msg, err := dec.Decode()
			if err != nil {
				break
			}
			if ps, ok := msg.(PortStatus); ok && ps.Switch == "survivor" {
				sawSurvivor = true
			}
		}
		if !sawSurvivor {
			t.Errorf("flip at %d: second frame lost", off)
		}
	}
}

func TestDecoderTruncatedTail(t *testing.T) {
	wire := must(MarshalPacketIn(PacketIn{Switch: "s", InPort: 1}))
	dec := NewDecoder(bytes.NewReader(wire[:len(wire)-3]))
	if _, err := dec.Decode(); err != io.ErrUnexpectedEOF {
		t.Errorf("err = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestEncoderRejectsUnencodable(t *testing.T) {
	enc := NewEncoder(io.Discard)
	if err := enc.Encode(FlowMod{Command: 9}); !errors.Is(err, ErrBadMessage) {
		t.Errorf("bad command: err = %v", err)
	}
	if err := enc.Encode("not a message"); !errors.Is(err, ErrBadMessage) {
		t.Errorf("wrong type: err = %v", err)
	}
}

func TestChannelFaultInjection(t *testing.T) {
	sim := netsim.NewSim()
	sw := netsim.NewSwitch(sim, "s1")
	ch := NewChannel(sim, sw, 0.001)
	inj := ch.InjectFaults(netsim.Faults{DropProb: 0.3, FlipProb: 0.3, TruncProb: 0.1, JitterMax: 0.01, Seed: 42})
	const sends = 500
	for i := 0; i < sends; i++ {
		if err := ch.SendFlowMod(FlowMod{
			Command: FlowAdd, Priority: int32(i),
			Match:  netsim.Match{DstPort: uint16(i + 1)},
			Action: netsim.Output(1),
		}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	sim.Run()
	if ch.SentFlowMods != sends {
		t.Errorf("SentFlowMods = %d", ch.SentFlowMods)
	}
	if ch.DroppedFlowMods == 0 || ch.CorruptedFlowMods == 0 {
		t.Errorf("faults not exercised: dropped=%d corrupted=%d", ch.DroppedFlowMods, ch.CorruptedFlowMods)
	}
	installed := uint64(len(sw.Rules()))
	if installed == 0 {
		t.Error("no rule survived the channel")
	}
	// A flipped bit can still land inside a value field (the format
	// carries no checksum), but lost and rejected messages bound what
	// can reach the switch.
	if installed+ch.DroppedFlowMods+ch.CorruptedFlowMods > sends {
		t.Errorf("accounting: %d installed + %d dropped + %d corrupted > %d",
			installed, ch.DroppedFlowMods, ch.CorruptedFlowMods, sends)
	}
	if inj.Dropped != ch.DroppedFlowMods {
		t.Errorf("injector dropped %d, channel %d", inj.Dropped, ch.DroppedFlowMods)
	}
	// The strict codec's guarantee: no surviving rule carries an
	// action outside the defined domain.
	for _, r := range sw.Rules() {
		if !r.Action.Kind.Valid() || len(r.Action.Ports) > MaxActionPorts {
			t.Errorf("corrupt rule installed: %+v", r.Action)
		}
	}
}

func TestChannelFaultsDeterministic(t *testing.T) {
	run := func() (uint64, uint64) {
		sim := netsim.NewSim()
		sw := netsim.NewSwitch(sim, "s1")
		ch := NewChannel(sim, sw, 0)
		ch.InjectFaults(netsim.Faults{DropProb: 0.5, FlipProb: 0.5, Seed: 7})
		for i := 0; i < 200; i++ {
			_ = ch.SendFlowMod(FlowMod{Command: FlowAdd, Action: netsim.Drop()})
		}
		return ch.DroppedFlowMods, ch.CorruptedFlowMods
	}
	d1, c1 := run()
	d2, c2 := run()
	if d1 != d2 || c1 != c2 {
		t.Errorf("same seed diverged: %d/%d vs %d/%d", d1, c1, d2, c2)
	}
}

func TestChannelJitterDelaysDelivery(t *testing.T) {
	sim := netsim.NewSim()
	sw := netsim.NewSwitch(sim, "s1")
	ch := NewChannel(sim, sw, 0.01)
	ch.InjectFaults(netsim.Faults{JitterMax: 0.05, Seed: 1})
	if err := ch.SendFlowMod(FlowMod{Command: FlowAdd, Action: netsim.Drop()}); err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(0.01)
	if len(sw.Rules()) != 0 {
		t.Skip("jitter draw was ~0; rule landed at base latency")
	}
	sim.RunUntil(0.07)
	if len(sw.Rules()) != 1 {
		t.Error("rule never delivered despite jitter bound")
	}
}
