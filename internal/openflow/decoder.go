package openflow

import (
	"encoding/binary"
	"io"
)

// Encoder writes framed control messages to a stream.
type Encoder struct {
	w io.Writer
}

// NewEncoder returns an encoder writing to w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

// Encode marshals and writes one message (FlowMod, PacketIn, or
// PortStatus).
func (e *Encoder) Encode(msg interface{}) error {
	wire, err := Marshal(msg)
	if err != nil {
		return err
	}
	_, err = e.w.Write(wire)
	return err
}

// Decoder reads framed control messages from a byte stream, the
// OpenFlow-side mirror of mp.Decoder. Unlike a flat Unmarshal over a
// buffer, it survives corruption: when a frame fails to parse — bad
// magic, impossible length, or a payload the strict codec rejects —
// the decoder discards bytes until the next occurrence of the frame
// magic and tries again. A flipped byte therefore costs one message,
// not the whole connection.
type Decoder struct {
	r   io.Reader
	buf []byte
	err error // sticky transport error

	// Resyncs counts the times the decoder discarded data to re-find a
	// frame boundary.
	Resyncs uint64
	// SkippedBytes counts the bytes discarded across all resyncs.
	SkippedBytes uint64
	// BadFrames counts frames that carried the magic but failed strict
	// decoding.
	BadFrames uint64
}

// NewDecoder returns a decoder reading from r.
func NewDecoder(r io.Reader) *Decoder { return &Decoder{r: r} }

// fill grows the buffer to at least n bytes, reporting false once the
// stream cannot provide them.
func (d *Decoder) fill(n int) bool {
	for len(d.buf) < n && d.err == nil {
		chunk := make([]byte, 4096)
		k, err := d.r.Read(chunk)
		if k > 0 {
			d.buf = append(d.buf, chunk[:k]...)
		}
		if err != nil {
			d.err = err
		}
	}
	return len(d.buf) >= n
}

// skip discards n buffered bytes, recording them against one resync.
func (d *Decoder) skip(n int) {
	d.buf = d.buf[n:]
	d.SkippedBytes += uint64(n)
	d.Resyncs++
}

// magicIndex returns the offset of the first frame magic in the
// buffer, or -1.
func magicIndex(b []byte) int {
	for i := 0; i+1 < len(b); i++ {
		if binary.BigEndian.Uint16(b[i:]) == magic {
			return i
		}
	}
	return -1
}

// Decode returns the next message that survives strict decoding,
// resynchronising past corruption. It returns io.EOF at a clean stream
// end and io.ErrUnexpectedEOF when the stream ends inside unusable
// bytes.
func (d *Decoder) Decode() (interface{}, error) {
	for {
		if !d.fill(headerLen) {
			n := len(d.buf)
			if n == 0 && (d.err == io.EOF || d.err == nil) {
				return nil, io.EOF
			}
			if n > 0 {
				d.skip(n)
			}
			if d.err == io.EOF || d.err == nil {
				return nil, io.ErrUnexpectedEOF
			}
			return nil, d.err
		}
		// Align the buffer on the frame magic.
		if i := magicIndex(d.buf); i != 0 {
			if i < 0 {
				// No magic anywhere; keep the last byte, it may be
				// the first half of one.
				d.skip(len(d.buf) - 1)
				if !d.fill(headerLen) {
					continue // surface EOF handling above
				}
			} else {
				d.skip(i)
			}
			continue
		}
		payloadLen := int(binary.BigEndian.Uint16(d.buf[3:5]))
		total := headerLen + payloadLen
		if !d.fill(total) {
			// The stream ended (or broke) inside this frame; the
			// advertised length may itself be corrupt, so hunt for a
			// later magic before giving up.
			d.skip(2)
			continue
		}
		msg, consumed, err := Unmarshal(d.buf[:total])
		if err != nil {
			// Framed but rotten: step past this magic and resync.
			d.BadFrames++
			d.skip(2)
			continue
		}
		d.buf = d.buf[consumed:]
		return msg, nil
	}
}
