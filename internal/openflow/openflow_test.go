package openflow

import (
	"errors"
	"testing"
	"testing/quick"

	"mdn/internal/netsim"
)

func sampleMatch() netsim.Match {
	return netsim.Match{
		InPort:  3,
		Src:     netsim.MustAddr("10.0.0.1"),
		Dst:     netsim.MustAddr("10.0.0.2"),
		SrcPort: 1000,
		DstPort: 80,
		Proto:   netsim.ProtoTCP,
	}
}

func TestFlowModRoundTrip(t *testing.T) {
	in := FlowMod{
		Command:  FlowAdd,
		Priority: 42,
		Match:    sampleMatch(),
		Action:   netsim.Split(2, 3, 7),
	}
	wire := MarshalFlowMod(in)
	out, n, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(wire) {
		t.Errorf("consumed %d of %d", n, len(wire))
	}
	got, ok := out.(FlowMod)
	if !ok {
		t.Fatalf("decoded %T", out)
	}
	if got.Command != in.Command || got.Priority != in.Priority || got.Match != in.Match {
		t.Errorf("got %+v, want %+v", got, in)
	}
	if got.Action.Kind != in.Action.Kind || len(got.Action.Ports) != 3 || got.Action.Ports[2] != 7 {
		t.Errorf("action = %+v", got.Action)
	}
}

func TestFlowModWildcardsRoundTrip(t *testing.T) {
	in := FlowMod{Command: FlowDelete, Priority: 1, Action: netsim.Drop()}
	out, _, err := Unmarshal(MarshalFlowMod(in))
	if err != nil {
		t.Fatal(err)
	}
	got := out.(FlowMod)
	if got.Match != (netsim.Match{}) {
		t.Errorf("wildcard match corrupted: %+v", got.Match)
	}
	if got.Match.Src.IsValid() {
		t.Error("zero address should stay invalid (wildcard)")
	}
}

func TestPacketInRoundTrip(t *testing.T) {
	in := PacketIn{
		Switch: "zodiac-3",
		InPort: 2,
		Flow: netsim.FiveTuple{
			Src: netsim.MustAddr("10.0.0.9"), Dst: netsim.MustAddr("10.0.0.1"),
			SrcPort: 5555, DstPort: 22, Proto: netsim.ProtoTCP,
		},
		Size: 1500,
	}
	out, _, err := Unmarshal(MarshalPacketIn(in))
	if err != nil {
		t.Fatal(err)
	}
	got := out.(PacketIn)
	if got != in {
		t.Errorf("got %+v, want %+v", got, in)
	}
}

func TestPortStatusRoundTrip(t *testing.T) {
	for _, up := range []bool{true, false} {
		in := PortStatus{Switch: "s1", Port: 4, Up: up}
		out, _, err := Unmarshal(MarshalPortStatus(in))
		if err != nil {
			t.Fatal(err)
		}
		if out.(PortStatus) != in {
			t.Errorf("got %+v, want %+v", out, in)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2},
		{0, 0, 1, 0, 0},             // bad magic
		{0x0F, 0x4D, 99, 0, 0},      // unknown type
		{0x0F, 0x4D, 1, 0xFF, 0xFF}, // truncated payload
		{0x0F, 0x4D, 1, 0, 1, 0},    // short flow-mod
	}
	for i, b := range cases {
		if _, _, err := Unmarshal(b); !errors.Is(err, ErrBadMessage) {
			t.Errorf("case %d: err = %v, want ErrBadMessage", i, err)
		}
	}
}

func TestFlowModPriorityRoundTripProperty(t *testing.T) {
	f := func(prio int32, dstPort uint16, proto uint8) bool {
		in := FlowMod{
			Command:  FlowAdd,
			Priority: prio,
			Match:    netsim.Match{DstPort: dstPort, Proto: proto},
			Action:   netsim.Output(int(dstPort) % 8),
		}
		out, _, err := Unmarshal(MarshalFlowMod(in))
		if err != nil {
			return false
		}
		got := out.(FlowMod)
		return got.Priority == prio && got.Match.DstPort == dstPort && got.Match.Proto == proto
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFlowModApply(t *testing.T) {
	sim := netsim.NewSim()
	sw := netsim.NewSwitch(sim, "s1")
	add := FlowMod{Command: FlowAdd, Priority: 7, Match: netsim.Match{DstPort: 80}, Action: netsim.Output(2)}
	rule := add.Apply(sw)
	if rule == nil || len(sw.Rules()) != 1 {
		t.Fatal("rule not installed")
	}
	del := FlowMod{Command: FlowDelete, Match: netsim.Match{DstPort: 80}}
	if del.Apply(sw) != nil {
		t.Error("delete should return nil")
	}
	if len(sw.Rules()) != 0 {
		t.Error("rule not removed")
	}
}

func TestChannelLatencyAndDelivery(t *testing.T) {
	sim := netsim.NewSim()
	sw := netsim.NewSwitch(sim, "s1")
	ch := NewChannel(sim, sw, 0.05)
	err := ch.SendFlowMod(FlowMod{Command: FlowAdd, Priority: 1, Action: netsim.Drop()})
	if err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(0.04)
	if len(sw.Rules()) != 0 {
		t.Error("rule applied before control latency")
	}
	sim.RunUntil(0.06)
	if len(sw.Rules()) != 1 {
		t.Error("rule not applied after control latency")
	}
	if ch.SentFlowMods != 1 || ch.Switch() != sw {
		t.Error("channel bookkeeping wrong")
	}
}

func TestMessageTypeString(t *testing.T) {
	names := map[MessageType]string{
		TypeFlowMod: "flow-mod", TypePacketIn: "packet-in",
		TypePortStatus: "port-status", MessageType(9): "unknown",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestFlowModTimeoutsRoundTrip(t *testing.T) {
	in := FlowMod{
		Command: FlowAdd, Priority: 3,
		Match:       netsim.Match{DstPort: 22},
		Action:      netsim.Output(1),
		IdleTimeout: 2.5,
		HardTimeout: 30,
	}
	out, _, err := Unmarshal(MarshalFlowMod(in))
	if err != nil {
		t.Fatal(err)
	}
	got := out.(FlowMod)
	if got.IdleTimeout != 2.5 || got.HardTimeout != 30 {
		t.Errorf("timeouts = %g/%g", got.IdleTimeout, got.HardTimeout)
	}
	// Apply carries them to the rule: idle-out after 2.5 s of silence.
	sim := netsim.NewSim()
	sw := netsim.NewSwitch(sim, "s1")
	rule := got.Apply(sw)
	if rule.IdleTimeout != 2.5 || rule.HardTimeout != 30 {
		t.Error("timeouts lost in Apply")
	}
	sim.RunUntil(3)
	if len(sw.Rules()) != 0 {
		t.Error("rule should have idled out")
	}
}

func TestFlowModRejectsNegativeTimeouts(t *testing.T) {
	wire := MarshalFlowMod(FlowMod{Command: FlowAdd, IdleTimeout: -1})
	if _, _, err := Unmarshal(wire); !errors.Is(err, ErrBadMessage) {
		t.Errorf("negative timeout accepted: %v", err)
	}
}
