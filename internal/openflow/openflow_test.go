package openflow

import (
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"

	"mdn/internal/netsim"
)

// must unwraps a marshal result; tests fail via the panic.
func must(wire []byte, err error) []byte {
	if err != nil {
		panic(err)
	}
	return wire
}

func sampleMatch() netsim.Match {
	return netsim.Match{
		InPort:  3,
		Src:     netsim.MustAddr("10.0.0.1"),
		Dst:     netsim.MustAddr("10.0.0.2"),
		SrcPort: 1000,
		DstPort: 80,
		Proto:   netsim.ProtoTCP,
	}
}

func TestFlowModRoundTrip(t *testing.T) {
	in := FlowMod{
		Command:  FlowAdd,
		Priority: 42,
		Match:    sampleMatch(),
		Action:   netsim.Split(2, 3, 7),
	}
	wire, err := MarshalFlowMod(in)
	if err != nil {
		t.Fatal(err)
	}
	out, n, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(wire) {
		t.Errorf("consumed %d of %d", n, len(wire))
	}
	got, ok := out.(FlowMod)
	if !ok {
		t.Fatalf("decoded %T", out)
	}
	if got.Command != in.Command || got.Priority != in.Priority || got.Match != in.Match {
		t.Errorf("got %+v, want %+v", got, in)
	}
	if got.Action.Kind != in.Action.Kind || len(got.Action.Ports) != 3 || got.Action.Ports[2] != 7 {
		t.Errorf("action = %+v", got.Action)
	}
}

func TestFlowModWildcardsRoundTrip(t *testing.T) {
	in := FlowMod{Command: FlowDelete, Priority: 1, Action: netsim.Drop()}
	out, _, err := Unmarshal(must(MarshalFlowMod(in)))
	if err != nil {
		t.Fatal(err)
	}
	got := out.(FlowMod)
	if got.Match != (netsim.Match{}) {
		t.Errorf("wildcard match corrupted: %+v", got.Match)
	}
	if got.Match.Src.IsValid() {
		t.Error("zero address should stay invalid (wildcard)")
	}
}

func TestPacketInRoundTrip(t *testing.T) {
	in := PacketIn{
		Switch: "zodiac-3",
		InPort: 2,
		Flow: netsim.FiveTuple{
			Src: netsim.MustAddr("10.0.0.9"), Dst: netsim.MustAddr("10.0.0.1"),
			SrcPort: 5555, DstPort: 22, Proto: netsim.ProtoTCP,
		},
		Size: 1500,
	}
	out, _, err := Unmarshal(must(MarshalPacketIn(in)))
	if err != nil {
		t.Fatal(err)
	}
	got := out.(PacketIn)
	if got != in {
		t.Errorf("got %+v, want %+v", got, in)
	}
}

func TestPortStatusRoundTrip(t *testing.T) {
	for _, up := range []bool{true, false} {
		in := PortStatus{Switch: "s1", Port: 4, Up: up}
		out, _, err := Unmarshal(must(MarshalPortStatus(in)))
		if err != nil {
			t.Fatal(err)
		}
		if out.(PortStatus) != in {
			t.Errorf("got %+v, want %+v", out, in)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2},
		{0, 0, 1, 0, 0},             // bad magic
		{0x0F, 0x4D, 99, 0, 0},      // unknown type
		{0x0F, 0x4D, 1, 0xFF, 0xFF}, // truncated payload
		{0x0F, 0x4D, 1, 0, 1, 0},    // short flow-mod
	}
	for i, b := range cases {
		if _, _, err := Unmarshal(b); !errors.Is(err, ErrBadMessage) {
			t.Errorf("case %d: err = %v, want ErrBadMessage", i, err)
		}
	}
}

func TestFlowModPriorityRoundTripProperty(t *testing.T) {
	f := func(prio int32, dstPort uint16, proto uint8) bool {
		in := FlowMod{
			Command:  FlowAdd,
			Priority: prio,
			Match:    netsim.Match{DstPort: dstPort, Proto: proto},
			Action:   netsim.Output(int(dstPort) % 8),
		}
		wire, err := MarshalFlowMod(in)
		if err != nil {
			return false
		}
		out, _, err := Unmarshal(wire)
		if err != nil {
			return false
		}
		got := out.(FlowMod)
		return got.Priority == prio && got.Match.DstPort == dstPort && got.Match.Proto == proto
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFlowModApply(t *testing.T) {
	sim := netsim.NewSim()
	sw := netsim.NewSwitch(sim, "s1")
	add := FlowMod{Command: FlowAdd, Priority: 7, Match: netsim.Match{DstPort: 80}, Action: netsim.Output(2)}
	rule := add.Apply(sw)
	if rule == nil || len(sw.Rules()) != 1 {
		t.Fatal("rule not installed")
	}
	del := FlowMod{Command: FlowDelete, Match: netsim.Match{DstPort: 80}}
	if del.Apply(sw) != nil {
		t.Error("delete should return nil")
	}
	if len(sw.Rules()) != 0 {
		t.Error("rule not removed")
	}
}

func TestChannelLatencyAndDelivery(t *testing.T) {
	sim := netsim.NewSim()
	sw := netsim.NewSwitch(sim, "s1")
	ch := NewChannel(sim, sw, 0.05)
	err := ch.SendFlowMod(FlowMod{Command: FlowAdd, Priority: 1, Action: netsim.Drop()})
	if err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(0.04)
	if len(sw.Rules()) != 0 {
		t.Error("rule applied before control latency")
	}
	sim.RunUntil(0.06)
	if len(sw.Rules()) != 1 {
		t.Error("rule not applied after control latency")
	}
	if ch.SentFlowMods != 1 || ch.Switch() != sw {
		t.Error("channel bookkeeping wrong")
	}
}

func TestMessageTypeString(t *testing.T) {
	names := map[MessageType]string{
		TypeFlowMod: "flow-mod", TypePacketIn: "packet-in",
		TypePortStatus: "port-status", MessageType(9): "unknown",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestFlowModTimeoutsRoundTrip(t *testing.T) {
	in := FlowMod{
		Command: FlowAdd, Priority: 3,
		Match:       netsim.Match{DstPort: 22},
		Action:      netsim.Output(1),
		IdleTimeout: 2.5,
		HardTimeout: 30,
	}
	out, _, err := Unmarshal(must(MarshalFlowMod(in)))
	if err != nil {
		t.Fatal(err)
	}
	got := out.(FlowMod)
	if got.IdleTimeout != 2.5 || got.HardTimeout != 30 {
		t.Errorf("timeouts = %g/%g", got.IdleTimeout, got.HardTimeout)
	}
	// Apply carries them to the rule: idle-out after 2.5 s of silence.
	sim := netsim.NewSim()
	sw := netsim.NewSwitch(sim, "s1")
	rule := got.Apply(sw)
	if rule.IdleTimeout != 2.5 || rule.HardTimeout != 30 {
		t.Error("timeouts lost in Apply")
	}
	sim.RunUntil(3)
	if len(sw.Rules()) != 0 {
		t.Error("rule should have idled out")
	}
}

func TestFlowModRejectsNegativeTimeouts(t *testing.T) {
	if _, err := MarshalFlowMod(FlowMod{Command: FlowAdd, IdleTimeout: -1}); !errors.Is(err, ErrBadMessage) {
		t.Errorf("negative timeout marshalled: %v", err)
	}
	// And a forged wire frame carrying one must not decode either.
	good := must(MarshalFlowMod(FlowMod{Command: FlowAdd, IdleTimeout: 1}))
	off := headerLen + 5 + matchLen
	binary.BigEndian.PutUint64(good[off:], math.Float64bits(-1))
	if _, _, err := Unmarshal(good); !errors.Is(err, ErrBadMessage) {
		t.Errorf("negative timeout accepted on decode: %v", err)
	}
}

// --- wire-format limit regressions: fields at and past each boundary ---

func TestMarshalNameBoundary(t *testing.T) {
	name255 := strings.Repeat("n", MaxNameLen)
	wire := must(MarshalPacketIn(PacketIn{Switch: name255}))
	out, _, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.(PacketIn).Switch; got != name255 {
		t.Errorf("255-byte name corrupted: %d bytes back", len(got))
	}
	if _, err := MarshalPacketIn(PacketIn{Switch: name255 + "x"}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("256-byte name: err = %v, want ErrTooLarge", err)
	}
	wire = must(MarshalPortStatus(PortStatus{Switch: name255, Port: 1}))
	if out, _, err := Unmarshal(wire); err != nil || out.(PortStatus).Switch != name255 {
		t.Errorf("port-status 255-byte name: %v", err)
	}
	if _, err := MarshalPortStatus(PortStatus{Switch: name255 + "x"}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("port-status 256-byte name: err = %v, want ErrTooLarge", err)
	}
}

func TestMarshalPortCountBoundary(t *testing.T) {
	ports := make([]int, MaxActionPorts)
	for i := range ports {
		ports[i] = i + 1
	}
	in := FlowMod{Command: FlowAdd, Action: netsim.Split(ports...)}
	out, _, err := Unmarshal(must(MarshalFlowMod(in)))
	if err != nil {
		t.Fatal(err)
	}
	got := out.(FlowMod).Action.Ports
	if len(got) != MaxActionPorts || got[MaxActionPorts-1] != MaxActionPorts {
		t.Errorf("255 ports corrupted: %d back", len(got))
	}
	in.Action = netsim.Split(append(ports, 256)...)
	if _, err := MarshalFlowMod(in); !errors.Is(err, ErrTooLarge) {
		t.Errorf("256 ports: err = %v, want ErrTooLarge", err)
	}
}

func TestMarshalRejectsBadFields(t *testing.T) {
	cases := []struct {
		name string
		m    FlowMod
	}{
		{"unknown command", FlowMod{Command: 9, Action: netsim.Drop()}},
		{"unknown action kind", FlowMod{Command: FlowAdd, Action: netsim.Action{Kind: 99}}},
		{"negative action kind", FlowMod{Command: FlowAdd, Action: netsim.Action{Kind: -1}}},
		{"negative port", FlowMod{Command: FlowAdd, Action: netsim.Output(-1)}},
		{"NaN timeout", FlowMod{Command: FlowAdd, Action: netsim.Drop(), IdleTimeout: math.NaN()}},
		{"Inf timeout", FlowMod{Command: FlowAdd, Action: netsim.Drop(), HardTimeout: math.Inf(1)}},
		{"negative in-port", FlowMod{Command: FlowAdd, Action: netsim.Drop(), Match: netsim.Match{InPort: -1}}},
		{"IPv6 src", FlowMod{Command: FlowAdd, Action: netsim.Drop(),
			Match: netsim.Match{Src: netip.MustParseAddr("2001:db8::1")}}},
	}
	for _, c := range cases {
		if _, err := MarshalFlowMod(c.m); !errors.Is(err, ErrBadMessage) {
			t.Errorf("%s: err = %v, want ErrBadMessage", c.name, err)
		}
	}
	if _, err := MarshalPacketIn(PacketIn{Flow: netsim.FiveTuple{Dst: netip.MustParseAddr("::1")}}); !errors.Is(err, ErrBadMessage) {
		t.Errorf("packet-in IPv6 dst: err = %v, want ErrBadMessage", err)
	}
}

func TestUnmarshalRejectsCorruptFields(t *testing.T) {
	flip := func(wire []byte, off int, v byte) []byte {
		cp := append([]byte(nil), wire...)
		cp[off] = v
		return cp
	}
	fm := must(MarshalFlowMod(FlowMod{Command: FlowAdd, Action: netsim.Output(2)}))
	kindOff := headerLen + 5 + matchLen + 16
	cases := map[string][]byte{
		"corrupt action kind":    flip(fm, kindOff, 99),
		"corrupt command":        flip(fm, headerLen, 7),
		"corrupt port count":     flip(fm, kindOff+1, 9), // length no longer matches
		"trailing junk":          append(append([]byte(nil), fm...), 0xAA),
		"corrupt up byte":        flip(must(MarshalPortStatus(PortStatus{Switch: "s", Port: 1})), headerLen+1+1+4, 2),
		"packet-in name overrun": flip(must(MarshalPacketIn(PacketIn{Switch: "s"})), headerLen, 200),
	}
	for name, wire := range cases {
		if name == "trailing junk" {
			// The frame's own length field hides the junk from the
			// payload, so patch the header length up instead.
			binary.BigEndian.PutUint16(wire[3:5], uint16(len(wire)-headerLen))
		}
		if _, _, err := Unmarshal(wire); !errors.Is(err, ErrBadMessage) {
			t.Errorf("%s: err = %v, want ErrBadMessage", name, err)
		}
	}
}

// --- randomized marshal→unmarshal equality for every message type ---

func randAddr(rng *rand.Rand) netip.Addr {
	if rng.Intn(4) == 0 {
		return netip.Addr{} // wildcard
	}
	return netip.AddrFrom4([4]byte{10, byte(rng.Intn(256)), byte(rng.Intn(256)), 1 + byte(rng.Intn(255))})
}

func randMatch(rng *rand.Rand) netsim.Match {
	return netsim.Match{
		InPort:  rng.Intn(64),
		Src:     randAddr(rng),
		Dst:     randAddr(rng),
		SrcPort: uint16(rng.Intn(1 << 16)),
		DstPort: uint16(rng.Intn(1 << 16)),
		Proto:   uint8(rng.Intn(256)),
	}
}

func TestRandomizedRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		fm := FlowMod{
			Command:     FlowModCommand(rng.Intn(2)),
			Priority:    rng.Int31() - rng.Int31(),
			Match:       randMatch(rng),
			IdleTimeout: float64(rng.Intn(100)) / 10,
			HardTimeout: float64(rng.Intn(1000)) / 10,
		}
		fm.Action.Kind = netsim.ActionKind(rng.Intn(6))
		for j := rng.Intn(5); j > 0; j-- {
			fm.Action.Ports = append(fm.Action.Ports, rng.Intn(1<<16))
		}
		out, n, err := Unmarshal(must(MarshalFlowMod(fm)))
		if err != nil {
			t.Fatalf("flow-mod %d: %v", i, err)
		}
		got := out.(FlowMod)
		if got.Command != fm.Command || got.Priority != fm.Priority || got.Match != fm.Match ||
			got.IdleTimeout != fm.IdleTimeout || got.HardTimeout != fm.HardTimeout ||
			got.Action.Kind != fm.Action.Kind || len(got.Action.Ports) != len(fm.Action.Ports) {
			t.Fatalf("flow-mod %d: got %+v want %+v", i, got, fm)
		}
		for j := range fm.Action.Ports {
			if got.Action.Ports[j] != fm.Action.Ports[j] {
				t.Fatalf("flow-mod %d port %d: %d != %d", i, j, got.Action.Ports[j], fm.Action.Ports[j])
			}
		}
		_ = n

		pi := PacketIn{
			Switch: strings.Repeat("s", rng.Intn(MaxNameLen+1)),
			InPort: rng.Int31(),
			Flow: netsim.FiveTuple{
				Src: randAddr(rng), Dst: randAddr(rng),
				SrcPort: uint16(rng.Intn(1 << 16)), DstPort: uint16(rng.Intn(1 << 16)),
				Proto: uint8(rng.Intn(256)),
			},
			Size: rng.Int31(),
		}
		out, _, err = Unmarshal(must(MarshalPacketIn(pi)))
		if err != nil {
			t.Fatalf("packet-in %d: %v", i, err)
		}
		if out.(PacketIn) != pi {
			t.Fatalf("packet-in %d: got %+v want %+v", i, out, pi)
		}

		ps := PortStatus{Switch: pi.Switch, Port: rng.Int31(), Up: rng.Intn(2) == 1}
		out, _, err = Unmarshal(must(MarshalPortStatus(ps)))
		if err != nil {
			t.Fatalf("port-status %d: %v", i, err)
		}
		if out.(PortStatus) != ps {
			t.Fatalf("port-status %d: got %+v want %+v", i, out, ps)
		}
	}
}
