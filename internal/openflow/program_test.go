package openflow

import (
	"errors"
	"testing"

	"mdn/internal/netsim"
)

func programmerFixture(t *testing.T, faults *netsim.Faults) (*netsim.Sim, *netsim.Switch, *Programmer) {
	t.Helper()
	sim := netsim.NewSim()
	sw := netsim.NewSwitch(sim, "s1")
	ch := NewChannel(sim, sw, 0.005)
	if faults != nil {
		ch.InjectFaults(*faults)
	}
	return sim, sw, NewProgrammer(ch, 42)
}

func addRule(priority int32) FlowMod {
	return FlowMod{Command: FlowAdd, Priority: priority, Action: netsim.Drop()}
}

func TestProgrammerInstallsFirstTry(t *testing.T) {
	sim, sw, p := programmerFixture(t, nil)
	var result error = errors.New("not called")
	p.OnResult = func(m FlowMod, err error) { result = err }
	if err := p.Install(addRule(5)); err != nil {
		t.Fatal(err)
	}
	sim.Run()

	if result != nil {
		t.Errorf("OnResult err = %v, want nil", result)
	}
	if len(sw.Rules()) != 1 {
		t.Errorf("switch has %d rules, want 1", len(sw.Rules()))
	}
	if p.Attempts != 1 || p.Retries != 0 || p.Installs != 1 || p.Pending() != 0 {
		t.Errorf("counters attempts=%d retries=%d installs=%d pending=%d",
			p.Attempts, p.Retries, p.Installs, p.Pending())
	}
}

func TestProgrammerSuppressesDuplicateInstall(t *testing.T) {
	sim, sw, p := programmerFixture(t, nil)
	rule := addRule(5)
	if err := p.Install(rule); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	// Same wire bytes again: idempotency key suppresses the send.
	if err := p.Install(rule); err != nil {
		t.Fatal(err)
	}
	sim.Run()

	if p.Duplicates != 1 {
		t.Errorf("Duplicates = %d, want 1", p.Duplicates)
	}
	if len(sw.Rules()) != 1 {
		t.Errorf("switch has %d rules after duplicate install, want 1", len(sw.Rules()))
	}
	if p.Attempts != 1 {
		t.Errorf("Attempts = %d, want 1 (duplicate never hit the wire)", p.Attempts)
	}
}

func TestProgrammerForgetAllowsDeliberateReinstall(t *testing.T) {
	sim, sw, p := programmerFixture(t, nil)
	rule := addRule(5)
	if err := p.Install(rule); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	p.Forget(rule)
	if err := p.Install(rule); err != nil {
		t.Fatal(err)
	}
	sim.Run()

	if p.Duplicates != 0 || p.Installs != 2 {
		t.Errorf("duplicates=%d installs=%d, want 0/2 after Forget", p.Duplicates, p.Installs)
	}
	if len(sw.Rules()) != 2 {
		t.Errorf("switch has %d rules, want 2", len(sw.Rules()))
	}
}

func TestProgrammerExhaustsRetriesOnDeadWire(t *testing.T) {
	faults := netsim.Faults{DropProb: 1.0, Seed: 7}
	sim, sw, p := programmerFixture(t, &faults)
	var result error
	calls := 0
	p.OnResult = func(m FlowMod, err error) { result = err; calls++ }
	if err := p.Install(addRule(5)); err != nil {
		t.Fatal(err)
	}
	sim.Run()

	if calls != 1 {
		t.Fatalf("OnResult called %d times, want 1", calls)
	}
	if !errors.Is(result, ErrRetriesExhausted) {
		t.Errorf("terminal error = %v, want ErrRetriesExhausted", result)
	}
	if p.Attempts != DefaultMaxAttempts || p.Retries != DefaultMaxAttempts-1 {
		t.Errorf("attempts=%d retries=%d, want %d/%d",
			p.Attempts, p.Retries, DefaultMaxAttempts, DefaultMaxAttempts-1)
	}
	if p.Failures != 1 || p.Pending() != 0 {
		t.Errorf("failures=%d pending=%d, want 1/0", p.Failures, p.Pending())
	}
	if len(sw.Rules()) != 0 {
		t.Errorf("dead wire installed %d rules", len(sw.Rules()))
	}
}

func TestProgrammerRecoversOverLossyWire(t *testing.T) {
	// 60% drop: with 8 attempts the install is overwhelmingly likely;
	// the seed pins the outcome (this one loses the first few sends,
	// then delivers).
	faults := netsim.Faults{DropProb: 0.6, Seed: 4}
	sim, sw, p := programmerFixture(t, &faults)
	var result error = errors.New("not called")
	p.OnResult = func(m FlowMod, err error) { result = err }
	if err := p.Install(addRule(5)); err != nil {
		t.Fatal(err)
	}
	sim.Run()

	if result != nil {
		t.Fatalf("OnResult err = %v, want eventual success", result)
	}
	if p.Retries == 0 {
		t.Error("expected at least one retry over a 60% lossy wire")
	}
	if len(sw.Rules()) != 1 {
		t.Errorf("switch has %d rules, want exactly 1 (no double install)", len(sw.Rules()))
	}
}

func TestProgrammerRejectsInvalidRuleSynchronously(t *testing.T) {
	_, _, p := programmerFixture(t, nil)
	onResultCalled := false
	p.OnResult = func(FlowMod, error) { onResultCalled = true }
	err := p.Install(FlowMod{Command: 99, Priority: 1, Action: netsim.Drop()})
	if err == nil {
		t.Fatal("invalid rule accepted")
	}
	if !errors.Is(err, ErrBadMessage) {
		t.Errorf("err = %v, want ErrBadMessage in the chain", err)
	}
	if onResultCalled {
		t.Error("OnResult fired for a synchronous validation failure")
	}
	if p.Attempts != 0 || p.Pending() != 0 {
		t.Errorf("attempts=%d pending=%d after rejected install, want 0/0", p.Attempts, p.Pending())
	}
}

func TestProgrammerBackoffIsBoundedAndJittered(t *testing.T) {
	_, _, p := programmerFixture(t, nil)
	prev := 0.0
	for try := 0; try < 20; try++ {
		d := p.backoff(try)
		lo := p.BaseBackoff * (1 - p.JitterFrac/2)
		hi := p.MaxBackoff * (1 + p.JitterFrac/2)
		if d < lo || d > hi {
			t.Errorf("backoff(%d) = %g outside [%g, %g]", try, d, lo, hi)
		}
		if try >= 10 && d == prev {
			t.Errorf("backoff(%d) = backoff(%d) = %g exactly; jitter missing", try, try-1, d)
		}
		prev = d
	}
}
