package audio

import (
	"math"
	"testing"

	"mdn/internal/dsp"
)

func TestWhiteNoiseLevelAndDeterminism(t *testing.T) {
	a := WhiteNoise(44100, 1, 0.2, 42)
	b := WhiteNoise(44100, 1, 0.2, 42)
	c := WhiteNoise(44100, 1, 0.2, 43)
	if math.Abs(a.RMS()-0.2) > 0.02 {
		t.Errorf("rms = %g, want ~0.2", a.RMS())
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatal("same seed should reproduce exactly")
		}
	}
	same := true
	for i := range a.Samples {
		if a.Samples[i] != c.Samples[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestPinkNoiseSpectralTilt(t *testing.T) {
	// Pink noise has more energy at low frequencies: compare band
	// powers around 100 Hz vs 8000 Hz.
	const sr = 44100.0
	b := PinkNoise(sr, 2, 0.2, 7)
	if math.Abs(b.RMS()-0.2) > 0.02 {
		t.Errorf("rms = %g, want ~0.2", b.RMS())
	}
	spec := dsp.PowerSpectrum(dsp.FFTReal(b.Samples[:65536]))
	bandPower := func(lo, hi float64) float64 {
		kLo := dsp.FrequencyBin(lo, 65536, sr)
		kHi := dsp.FrequencyBin(hi, 65536, sr)
		sum := 0.0
		for k := kLo; k <= kHi; k++ {
			sum += spec[k]
		}
		return sum / float64(kHi-kLo+1)
	}
	low := bandPower(50, 200)
	high := bandPower(6000, 10000)
	if low < 5*high {
		t.Errorf("pink noise tilt wrong: low %g vs high %g", low, high)
	}
}

func TestPinkNoiseEmpty(t *testing.T) {
	if PinkNoise(44100, 0, 0.5, 1).Len() != 0 {
		t.Error("zero duration should be empty")
	}
}

func TestCrowdNoiseBreathes(t *testing.T) {
	b := CrowdNoise(44100, 2, 0.1, 3)
	// Per-100ms RMS should vary (amplitude modulation).
	var levels []float64
	for s := 0.0; s < 1.9; s += 0.1 {
		levels = append(levels, b.Slice(s, s+0.1).RMS())
	}
	minL, maxL := levels[0], levels[0]
	for _, l := range levels {
		if l < minL {
			minL = l
		}
		if l > maxL {
			maxL = l
		}
	}
	if maxL/minL < 1.02 {
		t.Errorf("crowd noise too static: min %g max %g", minL, maxL)
	}
}
