// Package audio provides PCM signal synthesis for Music-Defined
// Networking: tones with click-free envelopes, noise generators, a
// deterministic pop-song interference model (the paper's "Cheap
// Thrills" background noise), server-fan and room-ambience models, and
// RIFF WAV encoding/decoding.
//
// Signals are float64 sample slices wrapped in Buffer. Amplitude 1.0
// is full scale; sound levels follow the paper's dB convention where
// an amplitude a corresponds to 20*log10(a/refAmplitude) dB SPL with
// the reference calibrated in package acoustic.
package audio

import (
	"fmt"
	"math"
)

// DefaultSampleRate is the sample rate used throughout the MDN
// testbed, matching commodity microphone hardware.
const DefaultSampleRate = 44100.0

// Buffer is a mono PCM signal.
type Buffer struct {
	// SampleRate in Hz.
	SampleRate float64
	// Samples holds the waveform; amplitude 1.0 is full scale.
	Samples []float64
}

// NewBuffer allocates a silent buffer holding d seconds of audio.
func NewBuffer(sampleRate, d float64) *Buffer {
	if sampleRate <= 0 {
		panic("audio: sample rate must be positive")
	}
	n := int(math.Round(d * sampleRate))
	if n < 0 {
		n = 0
	}
	return &Buffer{SampleRate: sampleRate, Samples: make([]float64, n)}
}

// Duration returns the buffer length in seconds.
func (b *Buffer) Duration() float64 {
	return float64(len(b.Samples)) / b.SampleRate
}

// Len returns the number of samples.
func (b *Buffer) Len() int { return len(b.Samples) }

// Clone returns a deep copy.
func (b *Buffer) Clone() *Buffer {
	out := &Buffer{SampleRate: b.SampleRate, Samples: make([]float64, len(b.Samples))}
	copy(out.Samples, b.Samples)
	return out
}

// Slice returns the sub-buffer covering [from, to) in seconds, clamped
// to the buffer bounds. The returned buffer shares storage with b.
func (b *Buffer) Slice(from, to float64) *Buffer {
	i := int(math.Round(from * b.SampleRate))
	j := int(math.Round(to * b.SampleRate))
	if i < 0 {
		i = 0
	}
	if j > len(b.Samples) {
		j = len(b.Samples)
	}
	if i > j {
		i = j
	}
	return &Buffer{SampleRate: b.SampleRate, Samples: b.Samples[i:j]}
}

// MixAt adds src into b starting at the given offset in seconds,
// scaled by gain. Samples of src falling outside b are dropped. It
// returns b for chaining. MixAt panics when sample rates differ — the
// MDN pipeline runs at a single rate and a mismatch is a bug.
func (b *Buffer) MixAt(src *Buffer, offset, gain float64) *Buffer {
	if src.SampleRate != b.SampleRate {
		panic(fmt.Sprintf("audio: MixAt rate mismatch %g vs %g", src.SampleRate, b.SampleRate))
	}
	start := int(math.Round(offset * b.SampleRate))
	for i, v := range src.Samples {
		j := start + i
		if j < 0 || j >= len(b.Samples) {
			continue
		}
		b.Samples[j] += v * gain
	}
	return b
}

// Gain scales all samples in place and returns b.
func (b *Buffer) Gain(g float64) *Buffer {
	for i := range b.Samples {
		b.Samples[i] *= g
	}
	return b
}

// Peak returns the maximum absolute sample value.
func (b *Buffer) Peak() float64 {
	p := 0.0
	for _, v := range b.Samples {
		if a := math.Abs(v); a > p {
			p = a
		}
	}
	return p
}

// RMS returns the root-mean-square amplitude of the buffer.
func (b *Buffer) RMS() float64 {
	if len(b.Samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range b.Samples {
		sum += v * v
	}
	return math.Sqrt(sum / float64(len(b.Samples)))
}

// Normalize rescales the buffer so its peak equals target (no-op for
// silent buffers) and returns b.
func (b *Buffer) Normalize(target float64) *Buffer {
	p := b.Peak()
	if p == 0 {
		return b
	}
	return b.Gain(target / p)
}

// Clip limits every sample to [-limit, limit] in place, modelling
// speaker or ADC saturation, and returns b.
func (b *Buffer) Clip(limit float64) *Buffer {
	for i, v := range b.Samples {
		if v > limit {
			b.Samples[i] = limit
		} else if v < -limit {
			b.Samples[i] = -limit
		}
	}
	return b
}

// LevelDB returns the RMS level of the buffer in dB relative to the
// given reference amplitude (20*log10(rms/ref)), with a -120 dB floor.
func (b *Buffer) LevelDB(ref float64) float64 {
	rms := b.RMS()
	if rms <= 0 || ref <= 0 {
		return -120
	}
	db := 20 * math.Log10(rms/ref)
	if db < -120 {
		db = -120
	}
	return db
}
