package audio

import (
	"math/rand"
	"testing"
)

// The direct-mix APIs exist so the acoustic capture path can reach
// zero steady-state allocations; their contract is bit-identity with
// the allocate-then-MixAt path they replace. These tests pin exactly
// that, sample for sample, across awkward offsets (negative, past the
// end, sub-sample) and tone lengths (shorter than the envelope,
// zero-length).

func TestMixEnvelopeAtMatchesRenderMixAt(t *testing.T) {
	const sr = 44100.0
	tones := []Tone{
		{Frequency: 440, Duration: 0.065, Amplitude: 0.3},
		{Frequency: 1234.5, Duration: 0.031, Amplitude: 0.8, Phase: 1.1},
		{Frequency: 7900, Duration: 0.004, Amplitude: 0.05}, // shorter than the envelope
		{Frequency: 200, Duration: 0, Amplitude: 1},         // renders nothing
	}
	offsets := []float64{0, 0.01, 0.0123456, -0.02, 0.19, -0.1, 0.21}
	for _, tone := range tones {
		for _, off := range offsets {
			want := NewBuffer(sr, 0.2)
			want.MixAt(tone.RenderEnvelope(sr, DefaultEnvelope), off, 1)
			got := NewBuffer(sr, 0.2)
			tone.MixEnvelopeAt(got, off, DefaultEnvelope)
			for i := range want.Samples {
				if want.Samples[i] != got.Samples[i] {
					t.Fatalf("tone %+v offset %g: sample %d = %x, want %x",
						tone, off, i, got.Samples[i], want.Samples[i])
				}
			}
		}
	}
}

func TestMixEnvelopeAtAccumulates(t *testing.T) {
	const sr = 8000.0
	tone := Tone{Frequency: 500, Duration: 0.05, Amplitude: 0.4}
	want := NewBuffer(sr, 0.1)
	want.MixAt(tone.Render(sr), 0.01, 1)
	want.MixAt(tone.Render(sr), 0.03, 1)
	got := NewBuffer(sr, 0.1)
	tone.MixEnvelopeAt(got, 0.01, DefaultEnvelope)
	tone.MixEnvelopeAt(got, 0.03, DefaultEnvelope)
	for i := range want.Samples {
		if want.Samples[i] != got.Samples[i] {
			t.Fatalf("sample %d = %x, want %x", i, got.Samples[i], want.Samples[i])
		}
	}
}

func TestMixWhiteNoiseMatchesWhiteNoiseMixAt(t *testing.T) {
	const sr, d, rms, seed = 44100.0, 0.05, 0.002, int64(42)
	want := NewBuffer(sr, d)
	want.MixAt(WhiteNoise(sr, d, rms, seed), 0, 1)
	got := NewBuffer(sr, d)
	MixWhiteNoise(got, rms, rand.New(rand.NewSource(seed)))
	for i := range want.Samples {
		if want.Samples[i] != got.Samples[i] {
			t.Fatalf("sample %d = %x, want %x", i, got.Samples[i], want.Samples[i])
		}
	}
}

func TestMixWhiteNoiseReseededGeneratorRepeats(t *testing.T) {
	// The capture path reuses one generator and reseeds it per window;
	// a reseed must reproduce the fresh-generator stream exactly.
	const sr, d, rms, seed = 44100.0, 0.02, 0.001, int64(7)
	rng := rand.New(rand.NewSource(seed))
	first := NewBuffer(sr, d)
	MixWhiteNoise(first, rms, rng)
	rng.Seed(seed)
	second := NewBuffer(sr, d)
	MixWhiteNoise(second, rms, rng)
	for i := range first.Samples {
		if first.Samples[i] != second.Samples[i] {
			t.Fatalf("reseeded stream diverged at sample %d", i)
		}
	}
}

func BenchmarkMixEnvelopeAt(b *testing.B) {
	const sr = 44100.0
	tone := Tone{Frequency: 440, Duration: 0.065, Amplitude: 0.3}
	out := NewBuffer(sr, 0.1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tone.MixEnvelopeAt(out, 0.01, DefaultEnvelope)
	}
}
