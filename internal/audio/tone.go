package audio

import "math"

// Tone describes a single sinusoidal emission — the unit of the MDN
// Music Protocol. A Music Protocol message carries exactly these three
// parameters (frequency, duration, intensity).
type Tone struct {
	// Frequency in Hz.
	Frequency float64
	// Duration in seconds. The paper's shortest usable tone was
	// approximately 30 ms.
	Duration float64
	// Amplitude is the linear peak amplitude at the speaker (1.0 =
	// speaker full scale).
	Amplitude float64
	// Phase is the initial phase in radians; useful to decorrelate
	// concurrent emitters.
	Phase float64
}

// DefaultEnvelope is the attack/release ramp applied to synthesized
// tones, in seconds. 5 ms edges remove the spectral splatter of a
// hard-keyed sinusoid without materially shortening a 30 ms tone.
const DefaultEnvelope = 0.005

// Render synthesizes the tone at the given sample rate with a linear
// attack/release envelope of DefaultEnvelope seconds on each edge
// (shortened for very brief tones so the envelope never exceeds half
// the duration).
func (t Tone) Render(sampleRate float64) *Buffer {
	return t.RenderEnvelope(sampleRate, DefaultEnvelope)
}

// RenderEnvelope synthesizes the tone with an explicit attack/release
// length in seconds.
func (t Tone) RenderEnvelope(sampleRate, envelope float64) *Buffer {
	b := NewBuffer(sampleRate, t.Duration)
	n := len(b.Samples)
	if n == 0 {
		return b
	}
	edge := int(envelope * sampleRate)
	if edge > n/2 {
		edge = n / 2
	}
	w := 2 * math.Pi * t.Frequency / sampleRate
	for i := 0; i < n; i++ {
		v := t.Amplitude * math.Sin(w*float64(i)+t.Phase)
		switch {
		case edge > 0 && i < edge:
			v *= float64(i) / float64(edge)
		case edge > 0 && i >= n-edge:
			v *= float64(n-1-i) / float64(edge)
		}
		b.Samples[i] = v
	}
	return b
}

// MixEnvelopeAt synthesizes the tone directly into b starting at the
// given offset in seconds, with the same attack/release envelope as
// RenderEnvelope, and returns b. The samples added are bit-identical
// to b.MixAt(t.RenderEnvelope(b.SampleRate, envelope), offset, 1) —
// same synthesis arithmetic, same rounding — but nothing is allocated,
// which is what the acoustic capture hot path needs to reach zero
// steady-state allocations.
func (t Tone) MixEnvelopeAt(b *Buffer, offset, envelope float64) *Buffer {
	sr := b.SampleRate
	n := int(math.Round(t.Duration * sr))
	if n <= 0 {
		return b
	}
	edge := int(envelope * sr)
	if edge > n/2 {
		edge = n / 2
	}
	w := 2 * math.Pi * t.Frequency / sr
	start := int(math.Round(offset * sr))
	// Clamp the tone-sample range to the part that lands inside b, so
	// the loop carries no per-sample bounds test.
	lo, hi := 0, n
	if start < 0 {
		lo = -start
	}
	if start+hi > len(b.Samples) {
		hi = len(b.Samples) - start
	}
	for i := lo; i < hi; i++ {
		v := t.Amplitude * math.Sin(w*float64(i)+t.Phase)
		switch {
		case edge > 0 && i < edge:
			v *= float64(i) / float64(edge)
		case edge > 0 && i >= n-edge:
			v *= float64(n-1-i) / float64(edge)
		}
		b.Samples[start+i] += v
	}
	return b
}

// Chord renders several simultaneous tones of equal duration into one
// buffer. Tones shorter than the longest are padded with silence.
func Chord(sampleRate float64, tones ...Tone) *Buffer {
	maxDur := 0.0
	for _, t := range tones {
		if t.Duration > maxDur {
			maxDur = t.Duration
		}
	}
	out := NewBuffer(sampleRate, maxDur)
	for _, t := range tones {
		out.MixAt(t.Render(sampleRate), 0, 1)
	}
	return out
}

// Sequence renders tones back to back with the given gap in seconds
// between them — a "melody" in the paper's terms.
func Sequence(sampleRate, gap float64, tones ...Tone) *Buffer {
	total := 0.0
	for i, t := range tones {
		total += t.Duration
		if i < len(tones)-1 {
			total += gap
		}
	}
	out := NewBuffer(sampleRate, total)
	at := 0.0
	for _, t := range tones {
		out.MixAt(t.Render(sampleRate), at, 1)
		at += t.Duration + gap
	}
	return out
}
