package audio

import (
	"math"
	"testing"

	"mdn/internal/dsp"
)

func TestFanBladePass(t *testing.T) {
	f := DefaultFan(0.3, 1)
	if got := f.BladePassHz(); got != 1050 {
		t.Errorf("blade pass = %g, want 1050 (9000 RPM x 7 blades)", got)
	}
	zero := Fan{RPM: 6000}
	if got := zero.BladePassHz(); got != 700 {
		t.Errorf("default blades blade pass = %g, want 700", got)
	}
}

func TestFanHarmonicFrequencies(t *testing.T) {
	f := DefaultFan(0.3, 1)
	h := f.HarmonicFrequencies()
	if len(h) != 5 {
		t.Fatalf("harmonics = %d, want 5", len(h))
	}
	for i, hz := range h {
		want := 1050 * float64(i+1)
		if math.Abs(hz-want) > 1e-9 {
			t.Errorf("harmonic %d = %g, want %g", i, hz, want)
		}
	}
	custom := Fan{RPM: 9000, Blades: 7, Harmonics: 2}
	if len(custom.HarmonicFrequencies()) != 2 {
		t.Error("explicit harmonic count not honoured")
	}
}

func TestFanSpectrumShowsHarmonics(t *testing.T) {
	const sr = 44100.0
	f := DefaultFan(0.3, 2)
	b := f.Render(sr, 2)
	if b.RMS() == 0 {
		t.Fatal("fan render silent")
	}
	// Fundamental should dominate a nearby off-harmonic frequency.
	// Use a window short enough that RPM jitter stays coherent.
	seg := b.Samples[:8192]
	fund := dsp.Goertzel(seg, 1050, sr)
	off := dsp.Goertzel(seg, 1350, sr)
	if fund < 3*off {
		t.Errorf("fundamental %g not above off-harmonic %g", fund, off)
	}
}

func TestDatacenterAmbienceAvoidsForegroundRPM(t *testing.T) {
	const sr = 44100.0
	amb := DatacenterAmbience(sr, 1, 0.3, 9)
	if math.Abs(amb.RMS()-0.3) > 0.03 {
		t.Errorf("ambience rms = %g, want ~0.3", amb.RMS())
	}
	fg := DefaultFan(0.3, 1).Render(sr, 1)
	// The foreground fan's fundamental should be more prominent in
	// the fan signal than in the ambience at equal RMS.
	fgMag := dsp.Goertzel(fg.Samples[:8192], 1050, sr)
	ambMag := dsp.Goertzel(amb.Samples[:8192], 1050, sr)
	if fgMag < 2*ambMag {
		t.Errorf("ambience crowds out foreground fundamental: fan %g vs ambience %g", fgMag, ambMag)
	}
}

func TestOfficeAmbienceQuieterProfile(t *testing.T) {
	office := OfficeAmbience(44100, 1, 0.05, 4)
	if math.Abs(office.RMS()-0.05) > 0.02 {
		t.Errorf("office rms = %g, want ~0.05", office.RMS())
	}
}

func TestFanZeroDuration(t *testing.T) {
	if DefaultFan(0.3, 1).Render(44100, 0).Len() != 0 {
		t.Error("zero duration should be empty")
	}
	if DatacenterAmbience(44100, 0, 0.3, 1).Len() != 0 {
		t.Error("zero duration ambience should be empty")
	}
}
