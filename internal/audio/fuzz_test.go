package audio

import (
	"bytes"
	"testing"
)

// FuzzDecodeWAV feeds arbitrary bytes to the RIFF chunk walker: it
// must never panic or over-allocate, and whatever decodes must
// re-encode to a stream that decodes to the same samples.
func FuzzDecodeWAV(f *testing.F) {
	tone := Tone{Frequency: 440, Duration: 0.005, Amplitude: 0.5}.Render(8000)
	var seed bytes.Buffer
	if err := EncodeWAV(&seed, tone); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("RIFF\x04\x00\x00\x00WAVE"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeWAV(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(b.Samples) > len(data) {
			t.Fatalf("%d samples from %d bytes", len(b.Samples), len(data))
		}
		var re bytes.Buffer
		if err := EncodeWAV(&re, b); err != nil {
			t.Fatalf("decoded buffer does not re-encode: %v", err)
		}
		b2, err := DecodeWAV(&re)
		if err != nil {
			t.Fatalf("re-encoded stream does not decode: %v", err)
		}
		if len(b2.Samples) != len(b.Samples) || b2.SampleRate != b.SampleRate {
			t.Fatalf("round trip changed shape: %d/%g vs %d/%g",
				len(b2.Samples), b2.SampleRate, len(b.Samples), b.SampleRate)
		}
		for i := range b.Samples {
			if b.Samples[i] != b2.Samples[i] {
				t.Fatalf("sample %d: %g vs %g", i, b.Samples[i], b2.Samples[i])
			}
		}
	})
}
