package audio

import "math/rand"

// Song generates the structured musical interference the paper uses as
// "random background noise" (Sia's Cheap Thrills playing in the room
// during the telemetry experiments of Figure 4b/4d). What matters for
// the reproduction is that the interference is tempo-locked,
// polyphonic, non-stationary and occupies the same 200 Hz–4 kHz band
// as the MDN tones — unlike white noise, which detectors reject almost
// for free.
type Song struct {
	// BPM is the tempo in beats per minute. Cheap Thrills is 90 BPM.
	BPM float64
	// Level is the peak amplitude of the rendered song.
	Level float64
	// Seed drives the pseudo-random melodic walk.
	Seed int64
}

// PopSong returns the default interference source: a 90 BPM pop
// arrangement at the given peak level.
func PopSong(level float64, seed int64) Song {
	return Song{BPM: 90, Level: level, Seed: seed}
}

// pentatonic scale degrees (semitones above the root) used by the
// melodic walk; a major pentatonic avoids harsh dissonance, like a pop
// chorus.
var pentatonic = []int{0, 2, 4, 7, 9}

// chordProgression is a I–V–vi–IV loop (in semitones above the song
// root), the canonical four-chord pop progression.
var chordProgression = [][]int{
	{0, 4, 7},   // I
	{7, 11, 14}, // V
	{9, 12, 16}, // vi
	{5, 9, 12},  // IV
}

func noteHz(rootHz float64, semitones int) float64 {
	return rootHz * pow2(float64(semitones)/12)
}

func pow2(x float64) float64 {
	// math.Exp2 without importing math twice in doc examples.
	return exp2(x)
}

// Render synthesizes d seconds of the song at the given sample rate.
// The arrangement has three voices: a bass line on the chord root, a
// mid-range chord pad, and a melodic lead doing a seeded random walk
// over the pentatonic scale, plus a percussive noise burst on each
// beat. Output is normalised to the song's Level.
func (s Song) Render(sampleRate, d float64) *Buffer {
	out := NewBuffer(sampleRate, d)
	if len(out.Samples) == 0 {
		return out
	}
	rng := rand.New(rand.NewSource(s.Seed))
	bpm := s.BPM
	if bpm <= 0 {
		bpm = 90
	}
	beat := 60 / bpm // seconds per beat
	const rootHz = 220.0
	melodyIdx := 2

	for t := 0.0; t < d; t += beat {
		beatNo := int(t / beat)
		chord := chordProgression[(beatNo/4)%len(chordProgression)]

		// Bass: root an octave down, one note per beat.
		bass := Tone{Frequency: noteHz(rootHz/2, chord[0]), Duration: beat * 0.9, Amplitude: 0.8}
		out.MixAt(bass.Render(sampleRate), t, 1)

		// Pad: full triad, sustained.
		for _, deg := range chord {
			pad := Tone{Frequency: noteHz(rootHz, deg), Duration: beat, Amplitude: 0.25,
				Phase: rng.Float64() * 6.28}
			out.MixAt(pad.Render(sampleRate), t, 1)
		}

		// Lead: two eighth-note pentatonic steps per beat.
		for eighth := 0; eighth < 2; eighth++ {
			melodyIdx += rng.Intn(3) - 1
			if melodyIdx < 0 {
				melodyIdx = 0
			}
			if melodyIdx >= len(pentatonic)*2 {
				melodyIdx = len(pentatonic)*2 - 1
			}
			deg := pentatonic[melodyIdx%len(pentatonic)] + 12*(melodyIdx/len(pentatonic))
			lead := Tone{Frequency: noteHz(rootHz*2, deg), Duration: beat / 2 * 0.8, Amplitude: 0.5}
			out.MixAt(lead.Render(sampleRate), t+float64(eighth)*beat/2, 1)
		}

		// Percussion: a short noise burst on the beat (kick/snare feel).
		burst := WhiteNoise(sampleRate, 0.03, 0.5, s.Seed+int64(beatNo))
		out.MixAt(burst, t, 1)
	}
	level := s.Level
	if level <= 0 {
		level = 0.5
	}
	return out.Normalize(level)
}
