package audio

import "math/rand"

// WhiteNoise returns d seconds of Gaussian white noise with the given
// RMS amplitude, generated deterministically from seed.
func WhiteNoise(sampleRate, d, rms float64, seed int64) *Buffer {
	b := NewBuffer(sampleRate, d)
	rng := rand.New(rand.NewSource(seed))
	for i := range b.Samples {
		b.Samples[i] = rng.NormFloat64() * rms
	}
	return b
}

// MixWhiteNoise adds Gaussian white noise of the given RMS amplitude
// to every sample of b, drawing from rng, and returns b. With rng
// freshly seeded the way WhiteNoise seeds its own generator, the added
// waveform is bit-identical to b.MixAt(WhiteNoise(...), 0, 1) — but
// the caller owns (and can reuse) the generator, so the capture hot
// path allocates nothing.
func MixWhiteNoise(b *Buffer, rms float64, rng *rand.Rand) *Buffer {
	for i := range b.Samples {
		b.Samples[i] += rng.NormFloat64() * rms
	}
	return b
}

// PinkNoise returns d seconds of approximately 1/f ("pink") noise with
// the given RMS amplitude, using the Voss-McCartney multi-octave
// summation. Pink noise is a better stand-in for room ambience than
// white noise because real background noise is low-frequency heavy.
func PinkNoise(sampleRate, d, rms float64, seed int64) *Buffer {
	b := NewBuffer(sampleRate, d)
	if len(b.Samples) == 0 {
		return b
	}
	rng := rand.New(rand.NewSource(seed))
	const rows = 16
	var vals [rows]float64
	var sum float64
	for i := range vals {
		vals[i] = rng.NormFloat64()
		sum += vals[i]
	}
	counter := 0
	for i := range b.Samples {
		counter++
		// Update the row matching the lowest set bit of the counter:
		// row r updates every 2^r samples.
		row := 0
		for c := counter; c&1 == 0 && row < rows-1; c >>= 1 {
			row++
		}
		sum -= vals[row]
		vals[row] = rng.NormFloat64()
		sum += vals[row]
		b.Samples[i] = sum
	}
	// Scale to the requested RMS.
	cur := b.RMS()
	if cur > 0 {
		b.Gain(rms / cur)
	}
	return b
}

// CrowdNoise models the hum of a working environment: pink noise with
// slow amplitude modulation so the level breathes like real rooms do.
func CrowdNoise(sampleRate, d, rms float64, seed int64) *Buffer {
	b := PinkNoise(sampleRate, d, rms, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	// Random-walk the gain every ~100 ms.
	step := int(0.1 * sampleRate)
	if step < 1 {
		step = 1
	}
	gain := 1.0
	for i := range b.Samples {
		if i%step == 0 {
			gain += rng.NormFloat64() * 0.05
			if gain < 0.6 {
				gain = 0.6
			}
			if gain > 1.4 {
				gain = 1.4
			}
		}
		b.Samples[i] *= gain
	}
	return b
}
