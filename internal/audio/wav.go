package audio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// WAV container constants (RIFF/WAVE, 16-bit PCM mono).
const (
	wavFormatPCM   = 1
	wavBitsPer     = 16
	wavHeaderBytes = 44
)

// EncodeWAV writes the buffer as a 16-bit PCM mono RIFF WAV stream.
// Samples are clipped to [-1, 1] before quantisation.
func EncodeWAV(w io.Writer, b *Buffer) error {
	n := len(b.Samples)
	dataBytes := n * 2
	rate := uint32(math.Round(b.SampleRate))
	var hdr [wavHeaderBytes]byte
	copy(hdr[0:4], "RIFF")
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(36+dataBytes))
	copy(hdr[8:12], "WAVE")
	copy(hdr[12:16], "fmt ")
	binary.LittleEndian.PutUint32(hdr[16:20], 16) // fmt chunk size
	binary.LittleEndian.PutUint16(hdr[20:22], wavFormatPCM)
	binary.LittleEndian.PutUint16(hdr[22:24], 1) // mono
	binary.LittleEndian.PutUint32(hdr[24:28], rate)
	binary.LittleEndian.PutUint32(hdr[28:32], rate*2) // byte rate
	binary.LittleEndian.PutUint16(hdr[32:34], 2)      // block align
	binary.LittleEndian.PutUint16(hdr[34:36], wavBitsPer)
	copy(hdr[36:40], "data")
	binary.LittleEndian.PutUint32(hdr[40:44], uint32(dataBytes))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("audio: writing WAV header: %w", err)
	}
	pcm := make([]byte, dataBytes)
	for i, v := range b.Samples {
		if v > 1 {
			v = 1
		} else if v < -1 {
			v = -1
		}
		s := int16(math.Round(v * 32767))
		binary.LittleEndian.PutUint16(pcm[i*2:], uint16(s))
	}
	if _, err := w.Write(pcm); err != nil {
		return fmt.Errorf("audio: writing WAV data: %w", err)
	}
	return nil
}

// ErrNotWAV reports that the stream is not a mono 16-bit PCM WAV this
// package can read.
var ErrNotWAV = errors.New("audio: not a supported WAV stream")

// DecodeWAV reads a 16-bit PCM mono RIFF WAV stream produced by
// EncodeWAV (or any compatible tool).
func DecodeWAV(r io.Reader) (*Buffer, error) {
	var hdr [wavHeaderBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("audio: reading WAV header: %w", err)
	}
	if string(hdr[0:4]) != "RIFF" || string(hdr[8:12]) != "WAVE" || string(hdr[12:16]) != "fmt " {
		return nil, ErrNotWAV
	}
	if binary.LittleEndian.Uint16(hdr[20:22]) != wavFormatPCM {
		return nil, fmt.Errorf("%w: not PCM", ErrNotWAV)
	}
	if binary.LittleEndian.Uint16(hdr[22:24]) != 1 {
		return nil, fmt.Errorf("%w: not mono", ErrNotWAV)
	}
	if binary.LittleEndian.Uint16(hdr[34:36]) != wavBitsPer {
		return nil, fmt.Errorf("%w: not 16-bit", ErrNotWAV)
	}
	if string(hdr[36:40]) != "data" {
		return nil, fmt.Errorf("%w: missing data chunk", ErrNotWAV)
	}
	rate := binary.LittleEndian.Uint32(hdr[24:28])
	dataBytes := int(binary.LittleEndian.Uint32(hdr[40:44]))
	if dataBytes < 0 || dataBytes%2 != 0 {
		return nil, fmt.Errorf("%w: bad data size %d", ErrNotWAV, dataBytes)
	}
	pcm := make([]byte, dataBytes)
	if _, err := io.ReadFull(r, pcm); err != nil {
		return nil, fmt.Errorf("audio: reading WAV data: %w", err)
	}
	b := &Buffer{SampleRate: float64(rate), Samples: make([]float64, dataBytes/2)}
	for i := range b.Samples {
		s := int16(binary.LittleEndian.Uint16(pcm[i*2:]))
		b.Samples[i] = float64(s) / 32767
	}
	return b, nil
}
