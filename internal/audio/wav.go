package audio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// WAV container constants (RIFF/WAVE, 16-bit PCM mono).
const (
	wavFormatPCM   = 1
	wavBitsPer     = 16
	wavHeaderBytes = 44
)

// EncodeWAV writes the buffer as a 16-bit PCM mono RIFF WAV stream.
// Samples are clipped to [-1, 1] before quantisation.
func EncodeWAV(w io.Writer, b *Buffer) error {
	n := len(b.Samples)
	dataBytes := n * 2
	rate := uint32(math.Round(b.SampleRate))
	var hdr [wavHeaderBytes]byte
	copy(hdr[0:4], "RIFF")
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(36+dataBytes))
	copy(hdr[8:12], "WAVE")
	copy(hdr[12:16], "fmt ")
	binary.LittleEndian.PutUint32(hdr[16:20], 16) // fmt chunk size
	binary.LittleEndian.PutUint16(hdr[20:22], wavFormatPCM)
	binary.LittleEndian.PutUint16(hdr[22:24], 1) // mono
	binary.LittleEndian.PutUint32(hdr[24:28], rate)
	binary.LittleEndian.PutUint32(hdr[28:32], rate*2) // byte rate
	binary.LittleEndian.PutUint16(hdr[32:34], 2)      // block align
	binary.LittleEndian.PutUint16(hdr[34:36], wavBitsPer)
	copy(hdr[36:40], "data")
	binary.LittleEndian.PutUint32(hdr[40:44], uint32(dataBytes))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("audio: writing WAV header: %w", err)
	}
	pcm := make([]byte, dataBytes)
	for i, v := range b.Samples {
		if v > 1 {
			v = 1
		} else if v < -1 {
			v = -1
		}
		s := int16(math.Round(v * 32767))
		binary.LittleEndian.PutUint16(pcm[i*2:], uint16(s))
	}
	if _, err := w.Write(pcm); err != nil {
		return fmt.Errorf("audio: writing WAV data: %w", err)
	}
	return nil
}

// ErrNotWAV reports that the stream is not a mono 16-bit PCM WAV this
// package can read.
var ErrNotWAV = errors.New("audio: not a supported WAV stream")

// DecodeWAV reads a 16-bit PCM mono RIFF WAV stream produced by
// EncodeWAV or any compatible tool. It walks the RIFF chunk list until
// the data chunk, so files with an extended fmt chunk (size > 16) or
// extra chunks before the audio (LIST metadata, fact, ...) decode too
// — not just EncodeWAV's fixed 44-byte layout.
func DecodeWAV(r io.Reader) (*Buffer, error) {
	var riff [12]byte
	if _, err := io.ReadFull(r, riff[:]); err != nil {
		return nil, fmt.Errorf("audio: reading WAV header: %w", err)
	}
	if string(riff[0:4]) != "RIFF" || string(riff[8:12]) != "WAVE" {
		return nil, ErrNotWAV
	}
	var rate uint32
	haveFmt := false
	for {
		var ch [8]byte
		if _, err := io.ReadFull(r, ch[:]); err != nil {
			return nil, fmt.Errorf("%w: no data chunk", ErrNotWAV)
		}
		size := int64(binary.LittleEndian.Uint32(ch[4:8]))
		switch string(ch[0:4]) {
		case "fmt ":
			if size < 16 {
				return nil, fmt.Errorf("%w: fmt chunk %d bytes", ErrNotWAV, size)
			}
			var f [16]byte
			if _, err := io.ReadFull(r, f[:]); err != nil {
				return nil, fmt.Errorf("audio: reading WAV fmt chunk: %w", err)
			}
			if binary.LittleEndian.Uint16(f[0:2]) != wavFormatPCM {
				return nil, fmt.Errorf("%w: not PCM", ErrNotWAV)
			}
			if binary.LittleEndian.Uint16(f[2:4]) != 1 {
				return nil, fmt.Errorf("%w: not mono", ErrNotWAV)
			}
			if binary.LittleEndian.Uint16(f[14:16]) != wavBitsPer {
				return nil, fmt.Errorf("%w: not 16-bit", ErrNotWAV)
			}
			rate = binary.LittleEndian.Uint32(f[4:8])
			// Skip any fmt extension (e.g. the cbSize field of the
			// 18-byte variant) plus the RIFF word-alignment pad.
			if err := discard(r, size-16+size%2); err != nil {
				return nil, err
			}
			haveFmt = true
		case "data":
			if !haveFmt {
				return nil, fmt.Errorf("%w: data chunk before fmt", ErrNotWAV)
			}
			if size%2 != 0 {
				return nil, fmt.Errorf("%w: bad data size %d", ErrNotWAV, size)
			}
			// Read incrementally rather than pre-allocating the
			// advertised size, so a corrupt huge length field cannot
			// force a giant allocation.
			var data bytes.Buffer
			if _, err := io.CopyN(&data, r, size); err != nil {
				return nil, fmt.Errorf("audio: reading WAV data: %w", err)
			}
			pcm := data.Bytes()
			b := &Buffer{SampleRate: float64(rate), Samples: make([]float64, len(pcm)/2)}
			for i := range b.Samples {
				s := int16(binary.LittleEndian.Uint16(pcm[i*2:]))
				v := float64(s) / 32767
				if v < -1 {
					v = -1 // -32768 would land just outside the domain
				}
				b.Samples[i] = v
			}
			return b, nil
		default:
			// LIST, fact, cue, ... — not audio; skip chunk plus pad.
			if err := discard(r, size+size%2); err != nil {
				return nil, err
			}
		}
	}
}

func discard(r io.Reader, n int64) error {
	if n <= 0 {
		return nil
	}
	if _, err := io.CopyN(io.Discard, r, n); err != nil {
		return fmt.Errorf("%w: truncated chunk", ErrNotWAV)
	}
	return nil
}
