package audio

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
)

func TestWAVRoundTrip(t *testing.T) {
	orig := Tone{Frequency: 440, Duration: 0.25, Amplitude: 0.9}.Render(44100)
	var buf bytes.Buffer
	if err := EncodeWAV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != wavHeaderBytes+orig.Len()*2 {
		t.Errorf("encoded size = %d", buf.Len())
	}
	got, err := DecodeWAV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.SampleRate != 44100 {
		t.Errorf("rate = %g", got.SampleRate)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), orig.Len())
	}
	for i := range got.Samples {
		if math.Abs(got.Samples[i]-orig.Samples[i]) > 1.0/32000 {
			t.Fatalf("sample %d: %g vs %g", i, got.Samples[i], orig.Samples[i])
		}
	}
}

func TestWAVEncodesClipped(t *testing.T) {
	b := &Buffer{SampleRate: 8000, Samples: []float64{2, -2}}
	var buf bytes.Buffer
	if err := EncodeWAV(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeWAV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Samples[0] < 0.99 || got.Samples[1] > -0.99 {
		t.Errorf("clipping failed: %v", got.Samples)
	}
}

func TestDecodeWAVRejectsGarbage(t *testing.T) {
	_, err := DecodeWAV(strings.NewReader("this is not a wav file at all, padding to 44 bytes...."))
	if !errors.Is(err, ErrNotWAV) {
		t.Errorf("err = %v, want ErrNotWAV", err)
	}
	_, err = DecodeWAV(strings.NewReader("short"))
	if err == nil {
		t.Error("truncated header should error")
	}
}

func TestDecodeWAVTruncatedData(t *testing.T) {
	orig := NewBuffer(8000, 0.01)
	var buf bytes.Buffer
	if err := EncodeWAV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-10]
	if _, err := DecodeWAV(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated data should error")
	}
}

func TestDecodeWAVRejectsStereo(t *testing.T) {
	orig := NewBuffer(8000, 0.01)
	var buf bytes.Buffer
	if err := EncodeWAV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[22] = 2 // channels = 2
	if _, err := DecodeWAV(bytes.NewReader(raw)); !errors.Is(err, ErrNotWAV) {
		t.Errorf("stereo should be rejected, got %v", err)
	}
}
