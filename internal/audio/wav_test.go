package audio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"strings"
	"testing"
)

func TestWAVRoundTrip(t *testing.T) {
	orig := Tone{Frequency: 440, Duration: 0.25, Amplitude: 0.9}.Render(44100)
	var buf bytes.Buffer
	if err := EncodeWAV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != wavHeaderBytes+orig.Len()*2 {
		t.Errorf("encoded size = %d", buf.Len())
	}
	got, err := DecodeWAV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.SampleRate != 44100 {
		t.Errorf("rate = %g", got.SampleRate)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), orig.Len())
	}
	for i := range got.Samples {
		if math.Abs(got.Samples[i]-orig.Samples[i]) > 1.0/32000 {
			t.Fatalf("sample %d: %g vs %g", i, got.Samples[i], orig.Samples[i])
		}
	}
}

func TestWAVEncodesClipped(t *testing.T) {
	b := &Buffer{SampleRate: 8000, Samples: []float64{2, -2}}
	var buf bytes.Buffer
	if err := EncodeWAV(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeWAV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Samples[0] < 0.99 || got.Samples[1] > -0.99 {
		t.Errorf("clipping failed: %v", got.Samples)
	}
}

func TestDecodeWAVRejectsGarbage(t *testing.T) {
	_, err := DecodeWAV(strings.NewReader("this is not a wav file at all, padding to 44 bytes...."))
	if !errors.Is(err, ErrNotWAV) {
		t.Errorf("err = %v, want ErrNotWAV", err)
	}
	_, err = DecodeWAV(strings.NewReader("short"))
	if err == nil {
		t.Error("truncated header should error")
	}
}

func TestDecodeWAVTruncatedData(t *testing.T) {
	orig := NewBuffer(8000, 0.01)
	var buf bytes.Buffer
	if err := EncodeWAV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-10]
	if _, err := DecodeWAV(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated data should error")
	}
}

func TestDecodeWAVRejectsStereo(t *testing.T) {
	orig := NewBuffer(8000, 0.01)
	var buf bytes.Buffer
	if err := EncodeWAV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[22] = 2 // channels = 2
	if _, err := DecodeWAV(bytes.NewReader(raw)); !errors.Is(err, ErrNotWAV) {
		t.Errorf("stereo should be rejected, got %v", err)
	}
}

// buildChunkedWAV assembles a RIFF stream chunk by chunk, the layouts
// real tools emit: extended fmt chunks and metadata before data.
func buildChunkedWAV(chunks ...[]byte) []byte {
	var body bytes.Buffer
	body.WriteString("WAVE")
	for _, c := range chunks {
		body.Write(c)
	}
	var out bytes.Buffer
	out.WriteString("RIFF")
	var sz [4]byte
	binary.LittleEndian.PutUint32(sz[:], uint32(body.Len()))
	out.Write(sz[:])
	out.Write(body.Bytes())
	return out.Bytes()
}

func chunk(id string, payload []byte) []byte {
	var c bytes.Buffer
	c.WriteString(id)
	var sz [4]byte
	binary.LittleEndian.PutUint32(sz[:], uint32(len(payload)))
	c.Write(sz[:])
	c.Write(payload)
	if len(payload)%2 == 1 {
		c.WriteByte(0) // RIFF word-alignment pad
	}
	return c.Bytes()
}

func fmtChunk(extra int) []byte {
	p := make([]byte, 16+extra)
	binary.LittleEndian.PutUint16(p[0:2], wavFormatPCM)
	binary.LittleEndian.PutUint16(p[2:4], 1) // mono
	binary.LittleEndian.PutUint32(p[4:8], 8000)
	binary.LittleEndian.PutUint32(p[8:12], 16000)
	binary.LittleEndian.PutUint16(p[12:14], 2)
	binary.LittleEndian.PutUint16(p[14:16], wavBitsPer)
	return p
}

func pcmChunk(samples ...int16) []byte {
	p := make([]byte, len(samples)*2)
	for i, s := range samples {
		binary.LittleEndian.PutUint16(p[i*2:], uint16(s))
	}
	return p
}

// Regression: standard WAVs with an extended fmt chunk or LIST/fact
// chunks before data used to be rejected by the fixed 44-byte parser.
func TestDecodeWAVChunked(t *testing.T) {
	cases := map[string][]byte{
		"extended fmt (18 bytes)": buildChunkedWAV(
			chunk("fmt ", fmtChunk(2)),
			chunk("data", pcmChunk(100, -100, 32767))),
		"LIST before data": buildChunkedWAV(
			chunk("fmt ", fmtChunk(0)),
			chunk("LIST", []byte("INFOISFT\x05\x00\x00\x00mdn\x00\x00")),
			chunk("data", pcmChunk(100, -100, 32767))),
		"fact and odd-sized LIST": buildChunkedWAV(
			chunk("fmt ", fmtChunk(0)),
			chunk("fact", []byte{3, 0, 0, 0}),
			chunk("LIST", []byte("INFOodd")),
			chunk("data", pcmChunk(100, -100, 32767))),
	}
	for name, wav := range cases {
		got, err := DecodeWAV(bytes.NewReader(wav))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if got.SampleRate != 8000 || len(got.Samples) != 3 {
			t.Errorf("%s: rate=%g n=%d", name, got.SampleRate, len(got.Samples))
			continue
		}
		if math.Abs(got.Samples[2]-1) > 1e-9 {
			t.Errorf("%s: sample 2 = %g, want 1", name, got.Samples[2])
		}
	}
}

func TestDecodeWAVChunkOrdering(t *testing.T) {
	noFmt := buildChunkedWAV(chunk("data", pcmChunk(1, 2)))
	if _, err := DecodeWAV(bytes.NewReader(noFmt)); !errors.Is(err, ErrNotWAV) {
		t.Errorf("data before fmt: err = %v, want ErrNotWAV", err)
	}
	noData := buildChunkedWAV(chunk("fmt ", fmtChunk(0)), chunk("LIST", []byte("INFO")))
	if _, err := DecodeWAV(bytes.NewReader(noData)); !errors.Is(err, ErrNotWAV) {
		t.Errorf("missing data: err = %v, want ErrNotWAV", err)
	}
	tiny := buildChunkedWAV(chunk("fmt ", fmtChunk(0)[:12]), chunk("data", nil))
	if _, err := DecodeWAV(bytes.NewReader(tiny)); !errors.Is(err, ErrNotWAV) {
		t.Errorf("12-byte fmt: err = %v, want ErrNotWAV", err)
	}
}

// A corrupt data-chunk length field must not force a giant allocation
// or mask truncation: the decoder errors out after the bytes run dry.
func TestDecodeWAVHugeAdvertisedData(t *testing.T) {
	wav := buildChunkedWAV(chunk("fmt ", fmtChunk(0)), chunk("data", pcmChunk(1, 2)))
	// Inflate the data chunk's size field to ~4 GiB.
	off := len(wav) - 2*2 - 4
	binary.LittleEndian.PutUint32(wav[off:], 0xFFFFFFF0)
	if _, err := DecodeWAV(bytes.NewReader(wav)); err == nil {
		t.Error("4 GiB advertised data decoded from 4 real bytes")
	}
}
