package audio

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewBufferSizing(t *testing.T) {
	b := NewBuffer(44100, 1.5)
	if b.Len() != 66150 {
		t.Errorf("len = %d, want 66150", b.Len())
	}
	if math.Abs(b.Duration()-1.5) > 1e-9 {
		t.Errorf("duration = %g", b.Duration())
	}
	if NewBuffer(44100, -1).Len() != 0 {
		t.Error("negative duration should give empty buffer")
	}
}

func TestNewBufferPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuffer(0, 1)
}

func TestCloneIsDeep(t *testing.T) {
	b := NewBuffer(8000, 0.01)
	b.Samples[0] = 1
	c := b.Clone()
	c.Samples[0] = 2
	if b.Samples[0] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestSliceClamping(t *testing.T) {
	b := NewBuffer(1000, 1)
	for i := range b.Samples {
		b.Samples[i] = float64(i)
	}
	s := b.Slice(0.1, 0.2)
	if s.Len() != 100 || s.Samples[0] != 100 {
		t.Errorf("slice len=%d first=%g", s.Len(), s.Samples[0])
	}
	if b.Slice(-1, 99).Len() != 1000 {
		t.Error("out-of-range slice should clamp to whole buffer")
	}
	if b.Slice(0.9, 0.1).Len() != 0 {
		t.Error("inverted slice should be empty")
	}
}

func TestMixAtOffsets(t *testing.T) {
	dst := NewBuffer(1000, 1)
	src := NewBuffer(1000, 0.1)
	for i := range src.Samples {
		src.Samples[i] = 1
	}
	dst.MixAt(src, 0.5, 2)
	if dst.Samples[499] != 0 || dst.Samples[500] != 2 || dst.Samples[599] != 2 {
		t.Errorf("mix misplaced: %g %g %g", dst.Samples[499], dst.Samples[500], dst.Samples[599])
	}
	// Off-the-end samples are dropped, not panicking.
	dst.MixAt(src, 0.95, 1)
	if dst.Samples[999] != 1 {
		t.Errorf("tail sample = %g, want 1", dst.Samples[999])
	}
	// Negative offsets drop the head.
	dst2 := NewBuffer(1000, 1)
	dst2.MixAt(src, -0.05, 1)
	if dst2.Samples[0] != 1 || dst2.Samples[49] != 1 || dst2.Samples[50] != 0 {
		t.Errorf("negative offset mix wrong: %g %g %g", dst2.Samples[0], dst2.Samples[49], dst2.Samples[50])
	}
}

func TestMixAtPanicsOnRateMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuffer(44100, 1).MixAt(NewBuffer(48000, 1), 0, 1)
}

func TestGainPeakRMS(t *testing.T) {
	b := &Buffer{SampleRate: 100, Samples: []float64{0.5, -1, 0.25}}
	if p := b.Peak(); p != 1 {
		t.Errorf("peak = %g", p)
	}
	b.Gain(2)
	if b.Samples[1] != -2 {
		t.Errorf("gain failed: %v", b.Samples)
	}
	want := math.Sqrt((1 + 4 + 0.25) / 3)
	if r := b.RMS(); math.Abs(r-want) > 1e-12 {
		t.Errorf("rms = %g, want %g", r, want)
	}
	empty := &Buffer{SampleRate: 100}
	if empty.RMS() != 0 || empty.Peak() != 0 {
		t.Error("empty buffer should have zero rms/peak")
	}
}

func TestNormalizeProperty(t *testing.T) {
	f := func(vals []float64, target float64) bool {
		target = 0.1 + math.Mod(math.Abs(target), 2)
		b := &Buffer{SampleRate: 100}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			b.Samples = append(b.Samples, math.Mod(v, 1e6))
		}
		before := b.Peak()
		b.Normalize(target)
		if before == 0 {
			return b.Peak() == 0
		}
		return math.Abs(b.Peak()-target) < 1e-9*(1+target)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestClip(t *testing.T) {
	b := &Buffer{SampleRate: 100, Samples: []float64{-3, -0.5, 0, 0.5, 3}}
	b.Clip(1)
	want := []float64{-1, -0.5, 0, 0.5, 1}
	for i, v := range want {
		if b.Samples[i] != v {
			t.Errorf("clip[%d] = %g, want %g", i, b.Samples[i], v)
		}
	}
}

func TestLevelDB(t *testing.T) {
	b := &Buffer{SampleRate: 100, Samples: make([]float64, 100)}
	if db := b.LevelDB(1); db != -120 {
		t.Errorf("silent level = %g, want -120", db)
	}
	for i := range b.Samples {
		b.Samples[i] = 1
	}
	if db := b.LevelDB(1); math.Abs(db) > 1e-9 {
		t.Errorf("unit DC level = %g, want 0", db)
	}
	if db := b.LevelDB(0.1); math.Abs(db-20) > 1e-9 {
		t.Errorf("level re 0.1 = %g, want 20", db)
	}
}
