package audio

import (
	"math"
	"math/rand"
)

// exp2 returns 2**x.
func exp2(x float64) float64 { return math.Exp2(x) }

// Fan models a server cooling fan as heard by a nearby microphone
// (Section 7 of the paper). The acoustic signature of an axial fan is
// a blade-pass fundamental (RPM/60 × blade count) with a stack of
// harmonics riding on broadband turbulence noise. A failed fan
// contributes nothing.
type Fan struct {
	// RPM is the rotational speed. Typical 1U server fans spin at
	// 9–15 kRPM; the default model uses 9000.
	RPM float64
	// Blades is the blade count (commonly 7).
	Blades int
	// Level is the amplitude of the blade-pass fundamental at the
	// fan itself.
	Level float64
	// Harmonics is how many harmonics above the fundamental to
	// render (default 5 when zero).
	Harmonics int
	// TurbulenceLevel is the RMS of the broadband turbulence
	// component (default Level/4 when zero).
	TurbulenceLevel float64
	// Seed decorrelates the turbulence of different fans.
	Seed int64
}

// DefaultFan returns the reference server fan used by the Figure 6/7
// experiments: 9000 RPM, 7 blades.
func DefaultFan(level float64, seed int64) Fan {
	return Fan{RPM: 9000, Blades: 7, Level: level, Seed: seed}
}

// BladePassHz returns the fundamental blade-pass frequency.
func (f Fan) BladePassHz() float64 {
	blades := f.Blades
	if blades <= 0 {
		blades = 7
	}
	return f.RPM / 60 * float64(blades)
}

// HarmonicFrequencies returns the frequencies of the rendered
// harmonic stack (fundamental first). These are the bands the
// fan-failure detector watches.
func (f Fan) HarmonicFrequencies() []float64 {
	n := f.Harmonics
	if n <= 0 {
		n = 5
	}
	base := f.BladePassHz()
	out := make([]float64, n)
	for i := range out {
		out[i] = base * float64(i+1)
	}
	return out
}

// Render synthesizes d seconds of the running fan: the harmonic stack
// with 1/k amplitude roll-off, slight frequency jitter (real fans
// hunt around their set point), and broadband turbulence.
func (f Fan) Render(sampleRate, d float64) *Buffer {
	out := NewBuffer(sampleRate, d)
	if len(out.Samples) == 0 {
		return out
	}
	rng := rand.New(rand.NewSource(f.Seed))
	level := f.Level
	if level <= 0 {
		level = 0.3
	}
	// Harmonic stack with slow random-walk frequency jitter.
	freqs := f.HarmonicFrequencies()
	phases := make([]float64, len(freqs))
	jitter := 0.0
	jitterStep := int(0.05 * sampleRate) // re-jitter every 50 ms
	if jitterStep < 1 {
		jitterStep = 1
	}
	for i := range out.Samples {
		if i%jitterStep == 0 {
			jitter += rng.NormFloat64() * 0.0005
			if jitter > 0.005 {
				jitter = 0.005
			}
			if jitter < -0.005 {
				jitter = -0.005
			}
		}
		v := 0.0
		for k, base := range freqs {
			w := 2 * math.Pi * base * (1 + jitter) / sampleRate
			phases[k] += w
			v += level / float64(k+1) * math.Sin(phases[k])
		}
		out.Samples[i] = v
	}
	turb := f.TurbulenceLevel
	if turb <= 0 {
		turb = level / 4
	}
	out.MixAt(PinkNoise(sampleRate, d, turb, f.Seed+100), 0, 1)
	return out
}

// DatacenterAmbience models the ~85 dBA background of a machine room:
// many uncorrelated fans at various speeds plus HVAC rumble. The
// returned buffer has the requested RMS level. None of the ambience
// fans share the foreground fan's exact RPM, so the foreground
// harmonics remain attributable.
func DatacenterAmbience(sampleRate, d, rms float64, seed int64) *Buffer {
	out := NewBuffer(sampleRate, d)
	if len(out.Samples) == 0 {
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	// 12 background fans with randomised RPMs (avoiding 9000 ± 300).
	for i := 0; i < 12; i++ {
		rpm := 6000 + rng.Float64()*9000
		if rpm > 8700 && rpm < 9300 {
			rpm += 700
		}
		f := Fan{
			RPM:    rpm,
			Blades: 5 + rng.Intn(4),
			Level:  0.05 + rng.Float64()*0.15,
			Seed:   seed + int64(i)*17,
		}
		out.MixAt(f.Render(sampleRate, d), 0, 1)
	}
	// HVAC rumble: heavy pink noise.
	out.MixAt(PinkNoise(sampleRate, d, 0.3, seed+999), 0, 1)
	cur := out.RMS()
	if cur > 0 {
		out.Gain(rms / cur)
	}
	return out
}

// OfficeAmbience models a ~50 dBA office: gentle pink noise with slow
// level movement (conversation, keyboards) at the requested RMS.
func OfficeAmbience(sampleRate, d, rms float64, seed int64) *Buffer {
	return CrowdNoise(sampleRate, d, rms, seed)
}
