package audio

import (
	"math"
	"testing"

	"mdn/internal/dsp"
)

func TestToneRenderBasics(t *testing.T) {
	tone := Tone{Frequency: 440, Duration: 0.1, Amplitude: 0.8}
	b := tone.Render(44100)
	if math.Abs(b.Duration()-0.1) > 1e-3 {
		t.Errorf("duration = %g", b.Duration())
	}
	if p := b.Peak(); p > 0.8+1e-9 || p < 0.7 {
		t.Errorf("peak = %g, want ~0.8", p)
	}
	// Spectral check: dominant frequency is 440 Hz.
	g440 := dsp.Goertzel(b.Samples, 440, 44100)
	g600 := dsp.Goertzel(b.Samples, 600, 44100)
	if g440 < 10*g600 {
		t.Errorf("tone energy not at 440 Hz: %g vs %g", g440, g600)
	}
}

func TestToneEnvelopeRemovesClicks(t *testing.T) {
	tone := Tone{Frequency: 1000, Duration: 0.05, Amplitude: 1}
	b := tone.Render(44100)
	if math.Abs(b.Samples[0]) > 1e-9 {
		t.Errorf("first sample = %g, want 0 (attack ramp)", b.Samples[0])
	}
	last := b.Samples[len(b.Samples)-1]
	if math.Abs(last) > 1e-9 {
		t.Errorf("last sample = %g, want 0 (release ramp)", last)
	}
}

func TestToneVeryShortEnvelopeClamped(t *testing.T) {
	// 2 ms tone: envelope must shrink so the tone still has energy.
	tone := Tone{Frequency: 2000, Duration: 0.002, Amplitude: 1}
	b := tone.Render(44100)
	if b.RMS() == 0 {
		t.Error("short tone fully suppressed by envelope")
	}
}

func TestToneZeroDuration(t *testing.T) {
	b := Tone{Frequency: 440, Duration: 0, Amplitude: 1}.Render(44100)
	if b.Len() != 0 {
		t.Errorf("len = %d, want 0", b.Len())
	}
}

func TestChordContainsAllTones(t *testing.T) {
	const sr = 44100.0
	b := Chord(sr,
		Tone{Frequency: 500, Duration: 0.2, Amplitude: 0.5},
		Tone{Frequency: 700, Duration: 0.1, Amplitude: 0.5},
	)
	if math.Abs(b.Duration()-0.2) > 1e-3 {
		t.Errorf("chord duration = %g, want longest tone", b.Duration())
	}
	for _, hz := range []float64{500, 700} {
		if dsp.Goertzel(b.Samples[:2205], hz, sr) < 50 {
			t.Errorf("chord missing %g Hz", hz)
		}
	}
}

func TestSequenceTiming(t *testing.T) {
	const sr = 44100.0
	b := Sequence(sr, 0.05,
		Tone{Frequency: 500, Duration: 0.1, Amplitude: 1},
		Tone{Frequency: 900, Duration: 0.1, Amplitude: 1},
	)
	if math.Abs(b.Duration()-0.25) > 1e-3 {
		t.Errorf("sequence duration = %g, want 0.25", b.Duration())
	}
	// First segment is 500 Hz, second is 900 Hz.
	first := b.Slice(0.02, 0.08)
	second := b.Slice(0.17, 0.23)
	if dsp.Goertzel(first.Samples, 500, sr) < 10*dsp.Goertzel(first.Samples, 900, sr) {
		t.Error("first segment should be 500 Hz")
	}
	if dsp.Goertzel(second.Samples, 900, sr) < 10*dsp.Goertzel(second.Samples, 500, sr) {
		t.Error("second segment should be 900 Hz")
	}
	// Gap is silent.
	gap := b.Slice(0.11, 0.14)
	if gap.RMS() > 1e-6 {
		t.Errorf("gap rms = %g, want silence", gap.RMS())
	}
}

func TestSequenceEmpty(t *testing.T) {
	if Sequence(44100, 0.1).Len() != 0 {
		t.Error("empty sequence should be empty")
	}
}
