package audio

import (
	"testing"

	"mdn/internal/dsp"
)

func TestSongRenderLevelAndDeterminism(t *testing.T) {
	s := PopSong(0.5, 11)
	a := s.Render(44100, 2)
	b := s.Render(44100, 2)
	if a.Len() != b.Len() {
		t.Fatal("length mismatch")
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatal("song not deterministic")
		}
	}
	if p := a.Peak(); p < 0.45 || p > 0.5+1e-9 {
		t.Errorf("peak = %g, want ~0.5", p)
	}
}

func TestSongOccupiesMDNBand(t *testing.T) {
	// The interference must be in-band (200 Hz – 4 kHz), otherwise
	// the noisy telemetry figures wouldn't stress the detector.
	const sr = 44100.0
	b := PopSong(0.8, 5).Render(sr, 3)
	spec := dsp.PowerSpectrum(dsp.FFTReal(b.Samples[:131072]))
	bandEnergy := func(lo, hi float64) float64 {
		sum := 0.0
		for k := dsp.FrequencyBin(lo, 131072, sr); k <= dsp.FrequencyBin(hi, 131072, sr); k++ {
			sum += spec[k]
		}
		return sum
	}
	inBand := bandEnergy(200, 4000)
	above := bandEnergy(8000, 16000)
	if inBand < 10*above {
		t.Errorf("song energy not concentrated in MDN band: %g vs %g", inBand, above)
	}
}

func TestSongNonStationary(t *testing.T) {
	// Per-beat spectra should change over time (it's music, not a
	// steady hum): dominant frequency must take multiple values.
	const sr = 44100.0
	b := PopSong(0.8, 5).Render(sr, 4)
	sg := dsp.STFT(b.Samples, sr, 8192, 8192, dsp.Hann)
	seen := map[int]bool{}
	for i := 0; i < sg.NumFrames(); i++ {
		hz, _ := sg.DominantFrequency(i, 80)
		seen[int(hz/20)] = true
	}
	if len(seen) < 3 {
		t.Errorf("song too stationary: %d distinct dominant bins", len(seen))
	}
}

func TestSongDefaults(t *testing.T) {
	b := Song{}.Render(44100, 1) // zero BPM and level use defaults
	if b.Len() == 0 || b.Peak() == 0 {
		t.Error("defaulted song should produce audio")
	}
}
