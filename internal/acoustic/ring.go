package acoustic

import (
	"errors"
	"fmt"
	"math"

	"mdn/internal/audio"
)

// ErrCompacted reports a capture request for samples older than the
// room's compaction horizon: CompactBefore has dropped emissions that
// would have sounded in the requested span, so rendering it would
// silently mix silence where tones used to be. Readers that look back
// in time — the streaming ring, out-of-band AnalyseOnce re-captures —
// must treat the window as unavailable, not quiet.
var ErrCompacted = errors.New("acoustic: capture window precedes compaction horizon")

// CaptureChecked is CaptureInto for readers that may look back in
// time: it returns ErrCompacted (wrapped, with the requested window
// and horizon) instead of rendering when any part of [from, to)
// precedes the room's compaction horizon. On success out is filled and
// returned exactly as CaptureInto would. The hot window loop, which
// always reads at the live edge, keeps using CaptureInto; everything
// that re-captures history goes through here.
func (m *Microphone) CaptureChecked(out *audio.Buffer, from, to float64) (*audio.Buffer, error) {
	if h := m.room.CompactionHorizon(); from < h {
		return out, fmt.Errorf("%w: window [%g, %g) vs horizon %g", ErrCompacted, from, to, h)
	}
	return m.CaptureInto(out, from, to), nil
}

// CompactionHorizon returns the latest time passed to CompactBefore —
// captures of windows starting before it may be missing dropped
// emissions. Zero (more precisely -Inf semantics, reported as 0 for an
// uncompacted room) means the full history is intact.
func (r *Room) CompactionHorizon() float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.horizon
}

// CaptureRing is a microphone's incremental capture window: a sample
// ring holding the last windowN samples, appended one hop at a time.
// Each Append renders only the new [from, to) span — the rest of the
// window is the saved overlap from earlier hops — so advancing a
// 50 ms window by a 12.5 ms hop costs one quarter of a window mix,
// not a full re-mix. The streaming detection path reads whole windows
// out with Window.
//
// A CaptureRing is owned by one stream: like the microphone it wraps,
// it must not be used from two goroutines at once.
type CaptureRing struct {
	mic     *Microphone
	samples []float64 // capacity windowN, write index w
	w       int
	filled  int
	end     float64 // time just past the newest appended sample

	hop *audio.Buffer // reused hop capture scratch
	lin []float64     // reused linearized window
}

// NewCaptureRing builds a ring of windowN samples over mic.
func NewCaptureRing(mic *Microphone, windowN int) *CaptureRing {
	if windowN <= 0 {
		panic("acoustic: CaptureRing requires a positive window")
	}
	return &CaptureRing{
		mic:     mic,
		samples: make([]float64, windowN),
		lin:     make([]float64, windowN),
	}
}

// Append captures [from, to) from the microphone and pushes it into
// the ring, discarding the oldest samples. It returns ErrCompacted
// (via CaptureChecked) when the span has been compacted away, leaving
// the ring unchanged. Steady-state appends allocate nothing.
func (c *CaptureRing) Append(from, to float64) error {
	buf, err := c.mic.CaptureChecked(c.hop, from, to)
	c.hop = buf
	if err != nil {
		return err
	}
	src := buf.Samples
	n := len(c.samples)
	if len(src) > n {
		src = src[len(src)-n:]
	}
	for _, x := range src {
		c.samples[c.w] = x
		c.w++
		if c.w == n {
			c.w = 0
		}
	}
	c.filled += len(src)
	if c.filled > n {
		c.filled = n
	}
	c.end = to
	return nil
}

// Full reports whether a complete window has been appended.
func (c *CaptureRing) Full() bool { return c.filled == len(c.samples) }

// End returns the time just past the newest appended sample (the `to`
// of the last successful Append).
func (c *CaptureRing) End() float64 { return c.end }

// WindowStart returns the time of the oldest sample in a full ring:
// End minus the window duration.
func (c *CaptureRing) WindowStart() float64 {
	return c.end - float64(len(c.samples))/c.mic.room.SampleRate
}

// Window returns the current window, oldest sample first, as a buffer
// backed by scratch owned by the ring — valid until the next Append.
// It is only meaningful once Full.
func (c *CaptureRing) Window() *audio.Buffer {
	n := copy(c.lin, c.samples[c.w:])
	copy(c.lin[n:], c.samples[:c.w])
	return &audio.Buffer{SampleRate: c.mic.room.SampleRate, Samples: c.lin}
}

// LastHop returns the samples of the most recent successful Append,
// oldest first, backed by scratch owned by the ring — valid until the
// next Append. The streaming pipeline hands these to its sliding
// transform kernels, which retain their own state and never need the
// full window back.
func (c *CaptureRing) LastHop() []float64 {
	if c.hop == nil {
		return nil
	}
	return c.hop.Samples
}

// Reset empties the ring so the next Append starts a fresh window —
// used when a capture error (ErrCompacted) leaves a hole that must not
// be analysed over.
func (c *CaptureRing) Reset() {
	c.w = 0
	c.filled = 0
	c.end = 0
}

// Mic returns the microphone the ring captures from.
func (c *CaptureRing) Mic() *Microphone { return c.mic }

// ArrivalOf returns the time e's sound reaches m: the emission start
// plus the speaker→microphone propagation delay. It returns false when
// e's speaker is not registered in m's room.
func (m *Microphone) ArrivalOf(e Emission) (float64, bool) {
	r := m.room
	r.mu.RLock()
	defer r.mu.RUnlock()
	sp := r.speakers[e.Speaker]
	if sp == nil || m.idx >= len(sp.pairs) {
		return 0, false
	}
	return e.At + sp.pairs[m.idx].del, true
}

// LatestArrivalBefore returns the arrival time at m of the emission
// within tol Hz of freq whose sound most recently reached m at or
// before time t, and whether one exists. It is the ground-truth lookup
// behind the streaming path's sound-to-detection latency histogram:
// when an onset for freq fires at time t, the matching emission's
// arrival bounds how long the sound was in the air plus the analysis
// pipeline before the controller reacted. It allocates nothing.
func (m *Microphone) LatestArrivalBefore(freq, tol, t float64) (float64, bool) {
	r := m.room
	r.mu.RLock()
	defer r.mu.RUnlock()
	best := math.Inf(-1)
	found := false
	idx := m.idx
	// Emissions are sorted by start time and arrive no earlier than
	// they start, so everything from the first At > t onward is
	// irrelevant. Walking backward, once an emission starts more than
	// the worst-case pair delay before the best arrival found so far,
	// no earlier emission can arrive later — stop.
	for i := len(r.emissions) - 1; i >= 0; i-- {
		e := &r.emissions[i]
		if e.At > t {
			continue
		}
		if found && e.At+r.maxPairDelay < best {
			break
		}
		if math.Abs(e.Tone.Frequency-freq) > tol {
			continue
		}
		if idx >= len(e.sp.pairs) {
			continue
		}
		arrive := e.At + e.sp.pairs[idx].del
		if arrive <= t && arrive > best {
			best = arrive
			found = true
		}
	}
	return best, found
}
