package acoustic

import "fmt"

// This file is the device degradation model: deterministic, schedulable
// parameter ramps that let a chaos run age hardware mid-scenario. A
// microphone can lose sensitivity (down to stone deaf) or watch its
// electronics noise floor climb; a speaker can lose output level or
// drift off pitch. Each fault is a linear ramp from the parameter's
// value at the ramp start to a target value at the ramp end, evaluated
// purely from the schedule and the query time — no hidden state, no
// wall clock — so every capture of the same window renders the same
// waveform and the parallel sweep's byte-identity contract survives.
//
// Healing is scheduling too: ramping a parameter back to its base
// value models a repair (or an operator swapping the unit). The
// evaluation rule — the latest ramp whose start precedes the query
// wins — makes fault/clear sequences compose without special cases.

// ramp is one scheduled linear parameter transition.
type ramp struct {
	start, end float64 // seconds; end > start
	from, to   float64 // parameter value at start and at end
}

// at evaluates the ramp at time t (caller guarantees t >= r.start).
func (r *ramp) at(t float64) float64 {
	if t >= r.end {
		return r.to
	}
	return r.from + (r.to-r.from)*(t-r.start)/(r.end-r.start)
}

// deviceParam is a schedulable device parameter: a base value owned by
// the caller plus an ordered list of ramps. The zero value (no ramps)
// always evaluates to the base — the healthy device costs nothing.
type deviceParam struct {
	ramps []ramp
}

// atBase evaluates the parameter at time t against the given base
// value: the latest ramp whose start is at or before t wins; before
// the first ramp the parameter is the base.
func (p *deviceParam) atBase(base, t float64) float64 {
	for i := len(p.ramps) - 1; i >= 0; i-- {
		if p.ramps[i].start <= t {
			return p.ramps[i].at(t)
		}
	}
	return base
}

// schedule appends a ramp from the parameter's value at start to
// target at end. Ramps must be scheduled forward: start must not
// precede an already-scheduled ramp's start, and end must exceed
// start. Wiring errors fail loudly, like the Add* registrations.
func (p *deviceParam) schedule(base, start, end, target float64) {
	if end <= start {
		panic(fmt.Sprintf("acoustic: degradation ramp end %g <= start %g", end, start))
	}
	if n := len(p.ramps); n > 0 && start < p.ramps[n-1].start {
		panic(fmt.Sprintf("acoustic: degradation ramp at %g scheduled before existing ramp at %g",
			start, p.ramps[n-1].start))
	}
	p.ramps = append(p.ramps, ramp{start: start, end: end, from: p.atBase(base, start), to: target})
}

// ScheduleNoiseRamp schedules the microphone's self-noise floor to ramp
// linearly from its current value to targetRMS (linear RMS) over
// [start, end) seconds. Captures evaluate the floor once per window at
// the window start, so the ramp lands with window granularity.
func (m *Microphone) ScheduleNoiseRamp(start, end, targetRMS float64) {
	if targetRMS < 0 {
		panic("acoustic: negative noise floor")
	}
	r := m.room
	r.mu.Lock()
	defer r.mu.Unlock()
	m.noiseRamp.schedule(m.SelfNoiseRMS, start, end, targetRMS)
}

// ScheduleSensitivityRamp schedules the microphone's sensitivity (a
// linear gain on everything the diaphragm picks up; 1.0 = healthy,
// 0 = deaf) to ramp from its current value to target over [start, end)
// seconds. Self-noise is electronics noise downstream of the
// transducer, so it is NOT scaled: a deaf microphone still hisses.
func (m *Microphone) ScheduleSensitivityRamp(start, end, target float64) {
	if target < 0 {
		panic("acoustic: negative sensitivity")
	}
	r := m.room
	r.mu.Lock()
	defer r.mu.Unlock()
	m.sensRamp.schedule(1, start, end, target)
}

// ScheduleAmplitudeDecay schedules the speaker's output gain (1.0 =
// healthy) to ramp from its current value to target over [start, end)
// seconds. The gain applies to emissions at their scheduled start
// time, before the MaxAmplitude clamp.
func (s *Speaker) ScheduleAmplitudeDecay(start, end, target float64) {
	if target < 0 {
		panic("acoustic: negative speaker gain")
	}
	r := s.room
	r.mu.Lock()
	defer r.mu.Unlock()
	s.gainRamp.schedule(1, start, end, target)
}

// ScheduleDetune schedules the speaker's frequency ratio (emitted
// frequency / commanded frequency; 1.0 = in tune) to ramp from its
// current value to target over [start, end) seconds — an aging driver
// or a clock drifting off its crystal.
func (s *Speaker) ScheduleDetune(start, end, target float64) {
	if target <= 0 {
		panic("acoustic: detune ratio must be positive")
	}
	r := s.room
	r.mu.Lock()
	defer r.mu.Unlock()
	s.detuneRamp.schedule(1, start, end, target)
}

// noiseAt returns the microphone's effective self-noise RMS at time t.
// The caller holds the room lock (read side is enough).
func (m *Microphone) noiseAt(t float64) float64 {
	return m.noiseRamp.atBase(m.SelfNoiseRMS, t)
}

// sensAt returns the microphone's sensitivity at time t. The caller
// holds the room lock (read side is enough).
func (m *Microphone) sensAt(t float64) float64 {
	return m.sensRamp.atBase(1, t)
}

// MicStats is a read-only snapshot of one microphone's state at a
// point in simulated time: its configured noise floor and the
// degradation-model effective values. Used by the recalibrator and
// handy for debugging fleet runs.
type MicStats struct {
	// Name identifies the microphone.
	Name string
	// BaseNoiseRMS is the configured SelfNoiseRMS.
	BaseNoiseRMS float64
	// NoiseRMS is the effective self-noise floor at the query time,
	// after any scheduled ramps.
	NoiseRMS float64
	// Sensitivity is the capture gain at the query time (1 healthy,
	// 0 deaf).
	Sensitivity float64
	// Deaf reports a zero sensitivity.
	Deaf bool
}

// StatsAt returns the microphone's degradation state at time t.
func (m *Microphone) StatsAt(t float64) MicStats {
	r := m.room
	r.mu.RLock()
	defer r.mu.RUnlock()
	sens := m.sensAt(t)
	return MicStats{
		Name:         m.Name,
		BaseNoiseRMS: m.SelfNoiseRMS,
		NoiseRMS:     m.noiseAt(t),
		Sensitivity:  sens,
		Deaf:         sens == 0,
	}
}

// Microphone returns the named microphone or nil.
func (r *Room) Microphone(name string) *Microphone {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.mics[name]
}

// MicrophoneNames returns the registered microphone names in
// registration order.
func (r *Room) MicrophoneNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, len(r.micList))
	for i, m := range r.micList {
		names[i] = m.Name
	}
	return names
}
