package acoustic

import (
	"math"
	"testing"

	"mdn/internal/audio"
	"mdn/internal/dsp"
)

func TestSPLCalibration(t *testing.T) {
	if a := SPLToAmplitude(90); math.Abs(a-1) > 1e-12 {
		t.Errorf("90 dB -> %g, want 1", a)
	}
	if a := SPLToAmplitude(30); math.Abs(a-1e-3) > 1e-15 {
		t.Errorf("30 dB -> %g, want 1e-3", a)
	}
	for _, db := range []float64{30, 50, 85, 90} {
		if got := AmplitudeToSPL(SPLToAmplitude(db)); math.Abs(got-db) > 1e-9 {
			t.Errorf("SPL round trip %g -> %g", db, got)
		}
	}
}

func TestPositionDistance(t *testing.T) {
	p := Position{0, 0, 0}
	q := Position{3, 4, 0}
	if d := p.Distance(q); d != 5 {
		t.Errorf("distance = %g, want 5", d)
	}
	if d := p.Distance(p); d != 0 {
		t.Errorf("self distance = %g", d)
	}
}

func newTestRoom() *Room { return NewRoom(44100, 42) }

func TestRoomCaptureSingleTone(t *testing.T) {
	r := newTestRoom()
	sp := r.AddSpeaker("sw1", Position{1, 0, 0})
	mic := r.AddMicrophone("ctl", Position{0, 0, 0}, 0)
	sp.Play(0.1, audio.Tone{Frequency: 700, Duration: 0.2, Amplitude: 0.5})

	buf := mic.Capture(0, 0.5)
	if buf.Len() != 22050 {
		t.Fatalf("len = %d", buf.Len())
	}
	// Before arrival: silence. Distance 1 m => ~2.9 ms delay.
	pre := buf.Slice(0, 0.09)
	if pre.RMS() > 1e-9 {
		t.Errorf("pre-tone rms = %g, want 0", pre.RMS())
	}
	// During the tone, 700 Hz dominates. At 1 m attenuation is 1.
	mid := buf.Slice(0.15, 0.25)
	if g := dsp.Goertzel(mid.Samples, 700, 44100); g < 100 {
		t.Errorf("tone not heard: goertzel = %g", g)
	}
	peak := mid.Peak()
	if math.Abs(peak-0.5) > 0.05 {
		t.Errorf("peak = %g, want ~0.5 at 1 m", peak)
	}
}

func TestRoomAttenuationWithDistance(t *testing.T) {
	r := newTestRoom()
	near := r.AddSpeaker("near", Position{1, 0, 0})
	far := r.AddSpeaker("far", Position{4, 0, 0})
	mic := r.AddMicrophone("ctl", Position{0, 0, 0}, 0)
	near.Play(0, audio.Tone{Frequency: 500, Duration: 0.3, Amplitude: 0.4})
	far.Play(0, audio.Tone{Frequency: 900, Duration: 0.3, Amplitude: 0.4})

	buf := mic.Capture(0.1, 0.25)
	gNear := dsp.Goertzel(buf.Samples, 500, 44100)
	gFar := dsp.Goertzel(buf.Samples, 900, 44100)
	ratio := gNear / gFar
	if math.Abs(ratio-4) > 0.5 {
		t.Errorf("attenuation ratio = %g, want ~4 (1/r law)", ratio)
	}
}

func TestRoomPropagationDelay(t *testing.T) {
	r := newTestRoom()
	sp := r.AddSpeaker("sw", Position{34.3, 0, 0}) // exactly 0.1 s away
	mic := r.AddMicrophone("ctl", Position{0, 0, 0}, 0)
	sp.Play(0, audio.Tone{Frequency: 1000, Duration: 0.05, Amplitude: 1})

	early := mic.Capture(0.0, 0.09)
	if early.RMS() > 1e-9 {
		t.Error("tone audible before propagation delay")
	}
	during := mic.Capture(0.1, 0.15)
	if during.RMS() < 1e-4 {
		t.Error("tone not audible after propagation delay")
	}
}

func TestRoomSpeakerSaturation(t *testing.T) {
	r := newTestRoom()
	sp := r.AddSpeaker("sw", Position{1, 0, 0})
	sp.MaxAmplitude = 0.2
	mic := r.AddMicrophone("ctl", Position{0, 0, 0}, 0)
	sp.Play(0, audio.Tone{Frequency: 500, Duration: 0.2, Amplitude: 5})
	buf := mic.Capture(0.05, 0.15)
	if p := buf.Peak(); p > 0.21 {
		t.Errorf("peak = %g, speaker should clip to 0.2", p)
	}
}

func TestRoomNoiseSourceWindowed(t *testing.T) {
	r := newTestRoom()
	mic := r.AddMicrophone("ctl", Position{0, 0, 0}, 0)
	loop := audio.WhiteNoise(44100, 0.5, 0.3, 7)
	r.AddNoise(&NoiseSource{
		Name: "amb", Pos: Position{1, 0, 0}, Loop: loop,
		From: 1.0, Until: 2.0,
	})
	if rms := mic.Capture(0.2, 0.8).RMS(); rms > 1e-9 {
		t.Errorf("noise audible before From: %g", rms)
	}
	if rms := mic.Capture(1.2, 1.8).RMS(); math.Abs(rms-0.3) > 0.05 {
		t.Errorf("noise rms = %g, want ~0.3 during window", rms)
	}
	if rms := mic.Capture(2.2, 2.8).RMS(); rms > 1e-9 {
		t.Errorf("noise audible after Until: %g", rms)
	}
}

func TestRoomNoiseLoops(t *testing.T) {
	r := newTestRoom()
	mic := r.AddMicrophone("ctl", Position{0.5, 0, 0}, 0)
	loop := audio.WhiteNoise(44100, 0.25, 0.2, 9)
	r.AddNoise(&NoiseSource{Name: "amb", Pos: Position{0.5, 1, 0}, Loop: loop})
	// Way past the loop length the source must still be audible.
	if rms := mic.Capture(10, 10.5).RMS(); rms < 0.05 {
		t.Errorf("looped noise rms = %g, should persist", rms)
	}
}

func TestRoomAddNoiseRejectsEmpty(t *testing.T) {
	r := newTestRoom()
	if r.AddNoise(nil) != nil {
		t.Error("nil noise should be rejected")
	}
	if r.AddNoise(&NoiseSource{Loop: audio.NewBuffer(44100, 0)}) != nil {
		t.Error("empty loop should be rejected")
	}
}

func TestRoomMicSelfNoiseDeterministic(t *testing.T) {
	r := newTestRoom()
	mic := r.AddMicrophone("ctl", Position{0, 0, 0}, 0.01)
	a := mic.Capture(1, 1.1)
	b := mic.Capture(1, 1.1)
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatal("same-window capture not reproducible")
		}
	}
	if math.Abs(a.RMS()-0.01) > 0.003 {
		t.Errorf("self noise rms = %g, want ~0.01", a.RMS())
	}
}

func TestRoomDuplicateNamesPanic(t *testing.T) {
	r := newTestRoom()
	r.AddSpeaker("x", Position{})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate speaker should panic")
			}
		}()
		r.AddSpeaker("x", Position{})
	}()
	r.AddMicrophone("m", Position{}, 0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate microphone should panic")
			}
		}()
		r.AddMicrophone("m", Position{}, 0)
	}()
}

func TestRoomEmissionsSorted(t *testing.T) {
	r := newTestRoom()
	sp := r.AddSpeaker("sw", Position{1, 0, 0})
	sp.Play(2, audio.Tone{Frequency: 500, Duration: 0.1, Amplitude: 1})
	sp.Play(1, audio.Tone{Frequency: 600, Duration: 0.1, Amplitude: 1})
	em := r.Emissions()
	if len(em) != 2 || em[0].At != 1 || em[1].At != 2 {
		t.Errorf("emissions = %+v", em)
	}
}

func TestRoomMinDistanceClamp(t *testing.T) {
	r := newTestRoom()
	sp := r.AddSpeaker("sw", Position{0, 0, 0})
	mic := r.AddMicrophone("ctl", Position{0, 0, 0}, 0) // co-located
	sp.Play(0, audio.Tone{Frequency: 500, Duration: 0.2, Amplitude: 0.1})
	buf := mic.Capture(0.05, 0.15)
	// Attenuation clamps at 0.1 m => gain 10.
	if p := buf.Peak(); p > 1.05 {
		t.Errorf("peak = %g, clamp failed", p)
	}
}

func TestSNRAt(t *testing.T) {
	r := newTestRoom()
	sp := r.AddSpeaker("sw", Position{1, 0, 0})
	mic := r.AddMicrophone("ctl", Position{0, 0, 0}, 0.001)
	snr := mic.SNRAt(sp, 500, 0.1, 0)
	// Signal RMS ~0.0707 vs noise 0.001 => ~37 dB.
	if snr < 30 || snr > 45 {
		t.Errorf("snr = %g, want ~37", snr)
	}
	quiet := r.AddMicrophone("quiet", Position{0, 1, 0}, 0)
	if snr := quiet.SNRAt(sp, 500, 0.1, 0); snr != 120 {
		t.Errorf("noiseless snr = %g, want 120", snr)
	}
}

func TestSNRAtAppliesAirAbsorption(t *testing.T) {
	// 18 kHz over 20 m loses ~0.01*18^1.3*20 ≈ 8.6 dB to air
	// absorption — material, and exactly what SNRAt must subtract when
	// the room models it. Both rooms share seed and microphone name,
	// so the 1 s noise probes are identical and the SNR difference
	// isolates the signal term.
	snrWith := func(absorb bool) float64 {
		r := NewRoom(44100, 42)
		r.AirAbsorption = absorb
		sp := r.AddSpeaker("sw", Position{20, 0, 0})
		mic := r.AddMicrophone("ctl", Position{0, 0, 0}, 0.001)
		return mic.SNRAt(sp, 18000, 0.5, 0)
	}
	plain, absorbed := snrWith(false), snrWith(true)
	wantDrop := AirAbsorptionDBPerMetre(18000) * 20
	if wantDrop < 5 {
		t.Fatalf("test setup not material: absorption drop only %g dB", wantDrop)
	}
	if got := plain - absorbed; math.Abs(got-wantDrop) > 0.01 {
		t.Errorf("SNR drop from absorption = %g dB, want %g dB", got, wantDrop)
	}
}

func TestNewRoomPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRoom(0, 1)
}

func TestRoomConcurrentPlayAndCapture(t *testing.T) {
	// The Room is shared state: speakers may be driven from multiple
	// goroutines in library use (the simulator itself is
	// single-threaded, but the public API must not race).
	r := newTestRoom()
	sp := r.AddSpeaker("sw", Position{X: 1})
	mic := r.AddMicrophone("ctl", Position{}, 0)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		g := g
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				sp.Play(float64(g)+float64(i)*0.01, audio.Tone{
					Frequency: 500 + float64(g)*100, Duration: 0.02, Amplitude: 0.1})
			}
		}()
	}
	for g := 0; g < 2; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 25; i++ {
				mic.Capture(0, 0.2)
				r.Emissions()
			}
		}()
	}
	for i := 0; i < 6; i++ {
		<-done
	}
	if len(r.Emissions()) != 200 {
		t.Errorf("emissions = %d, want 200", len(r.Emissions()))
	}
}
