// Package acoustic models the sound channel of the Music-Defined
// Networking testbed: speakers attached to switches (via Raspberry
// Pis, in the paper), microphones attached to the MDN controller, and
// the air in between.
//
// The model captures the three properties the paper's detection
// results depend on: inverse-square-law attenuation with distance,
// propagation delay at the speed of sound, and additive mixing of
// concurrent emitters plus background noise. Capture is
// window-oriented: a microphone renders the exact waveform it would
// have recorded over any [from, to) interval of the experiment, which
// keeps the whole simulation deterministic and allows the detector to
// poll in fixed-size chunks exactly like a real audio capture loop.
package acoustic

import (
	"math"

	"mdn/internal/dsp"
)

// SpeedOfSound is the propagation speed used for delays, in m/s.
const SpeedOfSound = 343.0

// FullScaleSPL is the calibration constant tying linear amplitudes to
// the paper's sound-pressure levels: a source of linear amplitude 1.0
// measured at 1 m reads 90 dB SPL. With this calibration the paper's
// reference points land at sensible amplitudes: a 30 dB tone (the
// paper's minimum) is 10^((30-90)/20) = 1e-3, normal conversation
// (~50 dB) is 1e-2, and a datacenter (~85 dBA) is ~0.56.
const FullScaleSPL = 90.0

// SPLToAmplitude converts a sound pressure level in dB (at 1 m from
// the source) to the linear source amplitude under the package
// calibration.
func SPLToAmplitude(db float64) float64 {
	return math.Pow(10, (db-FullScaleSPL)/20)
}

// AmplitudeToSPL converts a linear amplitude (at 1 m) to dB SPL under
// the package calibration. Non-positive amplitudes map to the
// dsp.AmplitudeDB floor plus the calibration offset.
func AmplitudeToSPL(a float64) float64 {
	return dsp.AmplitudeDB(a) + FullScaleSPL
}

// Position is a location in the room, in metres.
type Position struct {
	X, Y, Z float64
}

// Distance returns the Euclidean distance between two positions.
func (p Position) Distance(q Position) float64 {
	dx, dy, dz := p.X-q.X, p.Y-q.Y, p.Z-q.Z
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// minDistance clamps source-microphone distance so co-located devices
// do not produce infinite gain (physically: you cannot put a
// microphone inside the speaker cone).
const minDistance = 0.1

// attenuation returns the amplitude scale factor for a source heard
// at the given distance, using the 1/r free-field law referenced to
// 1 m.
func attenuation(distance float64) float64 {
	if distance < minDistance {
		distance = minDistance
	}
	return 1 / distance
}

// delay returns the propagation delay in seconds over the given
// distance.
func delay(distance float64) float64 {
	return distance / SpeedOfSound
}

// AirAbsorptionDBPerMetre returns the atmospheric absorption
// coefficient α(f) in dB per metre at roomish conditions (20 °C,
// ~50% relative humidity), using a power-law fit to the ISO 9613-1
// tabulation: ≈0.01 dB/m at 1 kHz rising to ≈1.2 dB/m at 40 kHz.
// Absorption is why the Section 8 ultrasound direction trades range
// for capacity: high frequencies die in the air long before the 1/r
// law would silence them.
func AirAbsorptionDBPerMetre(freq float64) float64 {
	if freq <= 0 {
		return 0
	}
	return 0.01 * math.Pow(freq/1000, 1.3)
}

// airAbsorption returns the extra amplitude factor (≤1) lost to
// atmospheric absorption over the given distance.
func airAbsorption(freq, distance float64) float64 {
	db := AirAbsorptionDBPerMetre(freq) * distance
	return math.Pow(10, -db/20)
}
