package acoustic

import (
	"sync"
	"testing"

	"mdn/internal/audio"
)

// These tests pin the PR5 capture-path contract: Play keeps the
// emission list sorted so nothing re-sorts at capture time, and the
// rendered waveform is a function of the schedule alone — not of the
// order Play calls happened to arrive in, and not of whether the
// caller used Capture or the pooled CaptureInto.

// playSchedule is a deliberately overlapping multi-speaker schedule.
type playCall struct {
	speaker string
	at      float64
	tone    audio.Tone
}

func testSchedule() []playCall {
	return []playCall{
		{"s1", 0.30, audio.Tone{Frequency: 500, Duration: 0.10, Amplitude: 0.2}},
		{"s2", 0.10, audio.Tone{Frequency: 700, Duration: 0.30, Amplitude: 0.1}},
		{"s1", 0.10, audio.Tone{Frequency: 900, Duration: 0.05, Amplitude: 0.3}},
		{"s2", 0.32, audio.Tone{Frequency: 640, Duration: 0.20, Amplitude: 0.15}},
		{"s1", 0.00, audio.Tone{Frequency: 440, Duration: 0.50, Amplitude: 0.05}},
	}
}

func roomWith(calls []playCall) (*Room, *Microphone) {
	r := NewRoom(44100, 99)
	s1 := r.AddSpeaker("s1", Position{X: 1})
	s2 := r.AddSpeaker("s2", Position{Y: 2})
	mic := r.AddMicrophone("ctl", Position{}, 0.0005)
	for _, c := range calls {
		sp := s1
		if c.speaker == "s2" {
			sp = s2
		}
		sp.Play(c.at, c.tone)
	}
	return r, mic
}

func TestCaptureInvariantToPlayOrder(t *testing.T) {
	sched := testSchedule()
	_, mic := roomWith(sched)
	want := mic.Capture(0, 0.6)

	// Same schedule delivered in reverse call order — the sorted
	// emission list makes the mix identical, bit for bit.
	rev := make([]playCall, len(sched))
	for i, c := range sched {
		rev[len(sched)-1-i] = c
	}
	_, mic2 := roomWith(rev)
	got := mic2.Capture(0, 0.6)

	if got.Len() != want.Len() {
		t.Fatalf("lengths differ: %d vs %d", got.Len(), want.Len())
	}
	for i := range want.Samples {
		if want.Samples[i] != got.Samples[i] {
			t.Fatalf("capture depends on Play order: sample %d = %x, want %x",
				i, got.Samples[i], want.Samples[i])
		}
	}
}

func TestCaptureIntoMatchesCapture(t *testing.T) {
	_, mic := roomWith(testSchedule())
	var reused *audio.Buffer
	for _, win := range [][2]float64{{0, 0.05}, {0.05, 0.1}, {0.3, 0.35}, {0.55, 0.6}} {
		want := mic.Capture(win[0], win[1])
		reused = mic.CaptureInto(reused, win[0], win[1])
		if reused.Len() != want.Len() {
			t.Fatalf("window %v: lengths differ", win)
		}
		for i := range want.Samples {
			if want.Samples[i] != reused.Samples[i] {
				t.Fatalf("window %v sample %d = %x, want %x",
					win, i, reused.Samples[i], want.Samples[i])
			}
		}
	}
}

func TestCaptureIntoSteadyStateAllocs(t *testing.T) {
	_, mic := roomWith(testSchedule())
	buf := mic.CaptureInto(nil, 0, 0.05) // warm up scratch
	allocs := testing.AllocsPerRun(50, func() {
		buf = mic.CaptureInto(buf, 0.1, 0.15)
	})
	if allocs != 0 {
		t.Errorf("steady-state CaptureInto allocates %.1f objects/op, want 0", allocs)
	}
}

func TestEmissionsStaySortedUnderOutOfOrderPlay(t *testing.T) {
	r := NewRoom(44100, 1)
	sp := r.AddSpeaker("s", Position{X: 1})
	ats := []float64{5, 1, 3, 1, 4, 0, 3}
	for i, at := range ats {
		sp.Play(at, audio.Tone{Frequency: 400 + 10*float64(i), Duration: 0.05, Amplitude: 0.1})
	}
	em := r.Emissions()
	if len(em) != len(ats) {
		t.Fatalf("emissions = %d, want %d", len(em), len(ats))
	}
	for i := 1; i < len(em); i++ {
		if em[i].At < em[i-1].At {
			t.Fatalf("emissions out of order at %d: %g after %g", i, em[i].At, em[i-1].At)
		}
	}
	// Equal start times fall back to the total order (here: frequency),
	// so the mix order is schedule-determined, not arrival-determined.
	if em[1].Tone.Frequency != 410 || em[2].Tone.Frequency != 430 {
		t.Errorf("ties reordered: %g then %g, want 410 then 430",
			em[1].Tone.Frequency, em[2].Tone.Frequency)
	}
}

func TestConcurrentCaptureIntoAcrossMicrophones(t *testing.T) {
	// The fleet fan-out path: one goroutine per microphone, each with
	// its own pooled buffer, all reading the same room concurrently
	// while a speaker keeps scheduling. Run under -race in CI.
	r := NewRoom(44100, 3)
	sp := r.AddSpeaker("s", Position{X: 1})
	const mics = 8
	ms := make([]*Microphone, mics)
	for i := range ms {
		ms[i] = r.AddMicrophone(string(rune('a'+i)), Position{Y: float64(i)}, 0.0005)
	}
	sp.Play(0, audio.Tone{Frequency: 600, Duration: 1, Amplitude: 0.2})

	var wg sync.WaitGroup
	wg.Add(mics + 1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			sp.Play(float64(i)*0.01, audio.Tone{Frequency: 700, Duration: 0.02, Amplitude: 0.1})
		}
	}()
	for _, m := range ms {
		m := m
		go func() {
			defer wg.Done()
			var buf *audio.Buffer
			for w := 0; w < 50; w++ {
				buf = m.CaptureInto(buf, float64(w)*0.01, float64(w)*0.01+0.05)
			}
		}()
	}
	wg.Wait()
}

func BenchmarkCaptureInto(b *testing.B) {
	_, mic := roomWith(testSchedule())
	buf := mic.CaptureInto(nil, 0, 0.05)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = mic.CaptureInto(buf, 0.1, 0.15)
	}
}

func BenchmarkCaptureAllocating(b *testing.B) {
	_, mic := roomWith(testSchedule())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mic.Capture(0.1, 0.15)
	}
}
