package acoustic

import (
	"math"
	"sort"

	"mdn/internal/telemetry"
)

// This file is the emission store behind Room: the time/space indexing
// that lets a microphone render its window against the emissions that
// are *audible at that microphone*, instead of re-walking the whole
// schedule.
//
// Three structures cooperate:
//
//   - The emission slice itself, kept in the emissionLess total order
//     by Play (time index). Capture binary-searches the At >= to
//     boundary, so nothing scheduled after the window is visited.
//   - endMax, a prefix-max of each emission's latest possible end
//     (At + Duration, with the room-wide worst-case propagation delay
//     added at query time). It is nondecreasing by construction, so
//     one more binary search bounds the *live* region from below:
//     every emission before the bound has finished sounding at every
//     microphone and is skipped without iteration. CompactBefore uses
//     the same bound to drop dead history outright.
//   - Per-(speaker, microphone) geometry (pairGeom), precomputed at
//     registration and extended by AddSpeaker/AddMicrophone, so the
//     capture inner loop resolves distance attenuation, propagation
//     delay and the audibility test with one slice index — no
//     square root per (emission, microphone).
//
// Audibility culling itself is the CullThreshold knob on Room: an
// emission whose received peak amplitude at the capturing microphone
// is below the floor cannot change a detection and is skipped before
// synthesis. Equivalently, each speaker has an audibility radius
// around it per microphone floor — amplitude/attenuation(dist) falls
// below the floor outside it — but the comparison form costs one
// multiply and needs no per-frequency radius table even when air
// absorption is enabled.

// CullAuto, assigned to Room.CullThreshold, enables audibility
// culling with each microphone's own SelfNoiseRMS as its floor: a
// tone received below the microphone's electronics noise is culled.
const CullAuto = -1.0

// pairGeom is the precomputed geometry of one (speaker, microphone)
// pair, indexed by Microphone registration order in Speaker.pairs.
// Positions are fixed at registration (there is no move API), so the
// cache is built by AddSpeaker/AddMicrophone and never invalidated
// except by further Add* calls extending it.
type pairGeom struct {
	dist float64 // speaker→microphone distance, metres (unclamped)
	att  float64 // attenuation(dist): 1/r with the near-field clamp
	del  float64 // delay(dist): propagation seconds
}

func makePair(sp, mic Position) pairGeom {
	d := sp.Distance(mic)
	return pairGeom{dist: d, att: attenuation(d), del: delay(d)}
}

// cullFloorAt resolves the effective audibility floor for one
// microphone at time t: 0 means culling is off (bit-exact legacy full
// walk), CullAuto (any negative value) uses the microphone's own noise
// floor — the *effective* floor under the degradation model, so a
// noise-ramped microphone's cull floor recalibrates with it — and a
// positive CullThreshold is an explicit shared floor. The caller holds
// r.mu (read side is enough).
func (r *Room) cullFloorAt(m *Microphone, t float64) float64 {
	th := r.CullThreshold
	if th < 0 {
		return m.noiseAt(t)
	}
	return th
}

// insertEmission places e at its total-order position and maintains
// the endMax prefix-max index. The caller holds r.mu. The common case
// — simulations schedule forward in time — is a pair of appends.
func (r *Room) insertEmission(e emission) {
	n := len(r.emissions)
	end := e.At + e.Tone.Duration
	if n == 0 || !emissionLess(&e, &r.emissions[n-1]) {
		r.emissions = append(r.emissions, e)
		if n > 0 && r.endMax[n-1] > end {
			end = r.endMax[n-1]
		}
		r.endMax = append(r.endMax, end)
		return
	}
	// Out-of-order schedule: insert at the total-order position and
	// rebuild the prefix max from there (same O(n-i) as the copy).
	i := sort.Search(n, func(k int) bool { return emissionLess(&e, &r.emissions[k]) })
	r.emissions = append(r.emissions, emission{})
	copy(r.emissions[i+1:], r.emissions[i:])
	r.emissions[i] = e
	r.endMax = append(r.endMax, 0)
	r.recomputeEndMax(i)
}

// recomputeEndMax rebuilds the prefix-max index from position i on.
// The caller holds r.mu.
func (r *Room) recomputeEndMax(i int) {
	prev := math.Inf(-1)
	if i > 0 {
		prev = r.endMax[i-1]
	}
	for ; i < len(r.emissions); i++ {
		end := r.emissions[i].At + r.emissions[i].Tone.Duration
		if end < prev {
			end = prev
		}
		r.endMax[i] = end
		prev = end
	}
}

// liveFrom returns the index of the first emission that could still be
// audible at or after time t at any registered microphone; everything
// before it has finished sounding everywhere. The caller holds r.mu
// (read side is enough). limit caps the search to an already-known
// upper bound (e.g. the At >= to cut of a capture window).
func (r *Room) liveFrom(t float64, limit int) int {
	endMax := r.endMax[:limit]
	margin := r.maxPairDelay
	return sort.Search(limit, func(i int) bool { return endMax[i]+margin > t })
}

// CompactBefore drops every emission that can no longer be heard at
// any time >= t by any registered microphone — those whose start plus
// duration plus the worst-case speaker→microphone propagation delay
// precedes t. Captures of windows at or after t are unchanged,
// including windows an emission straddles; captures of windows before
// t lose the dropped history. The controller's window loop calls this
// (see core.Controller.Retention) so long-running deployments hold
// memory proportional to the audible horizon, not the whole schedule.
// It returns the number of emissions dropped.
func (r *Room) CompactBefore(t float64) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t > r.horizon {
		r.horizon = t
	}
	n := r.liveFrom(t, len(r.emissions))
	if n == 0 {
		return 0
	}
	kept := copy(r.emissions, r.emissions[n:])
	// Clear the vacated tail so dropped emissions do not pin Speaker
	// references past their audible life.
	for i := kept; i < len(r.emissions); i++ {
		r.emissions[i] = emission{}
	}
	r.emissions = r.emissions[:kept]
	r.endMax = r.endMax[:kept]
	r.recomputeEndMax(0)
	r.tm.compacted.Add(uint64(n))
	return n
}

// EmissionCount returns the number of emissions currently held by the
// store (scheduled minus compacted).
func (r *Room) EmissionCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.emissions)
}

// Room returns the room the microphone is registered in.
func (m *Microphone) Room() *Room { return m.room }

// hashName is FNV-1a over the microphone name: the per-microphone
// component of the self-noise seed. Hashing (rather than the name
// length) keeps same-length microphone names on distinct noise
// streams.
func hashName(name string) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return int64(h)
}

// Capture-path metric names. Counters accumulate across all
// microphones of the room; the histogram records per-capture scanned
// counts, so the cull rate (culled/scanned) and the per-window scan
// load are both observable.
//
//	mdn_capture_emissions_scanned_total  emissions visited by capture scans
//	mdn_capture_emissions_mixed_total    emissions synthesized into windows
//	mdn_capture_emissions_culled_total   emissions skipped as inaudible
//	mdn_capture_scan_emissions           per-capture scanned-count histogram
//	mdn_room_emissions                   emissions currently stored (gauge)
//	mdn_room_emissions_compacted_total   emissions dropped by CompactBefore
const (
	metricCaptureScanned  = "mdn_capture_emissions_scanned_total"
	metricCaptureMixed    = "mdn_capture_emissions_mixed_total"
	metricCaptureCulled   = "mdn_capture_emissions_culled_total"
	metricCaptureScanHist = "mdn_capture_scan_emissions"
	metricRoomEmissions   = "mdn_room_emissions"
	metricRoomCompacted   = "mdn_room_emissions_compacted_total"
)

// captureScanBuckets spans one emission to a million-voice schedule.
var captureScanBuckets = []float64{
	1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096, 16384, 65536, 262144, 1048576,
}

// roomMetrics is the room's telemetry handle set; all fields are nil
// until Instrument is called and every update is nil-safe, so an
// uninstrumented room pays one pointer test per capture.
type roomMetrics struct {
	scanned   *telemetry.Counter
	mixed     *telemetry.Counter
	culled    *telemetry.Counter
	scanHist  *telemetry.Histogram
	compacted *telemetry.Counter
}

// Instrument registers the room's capture-path telemetry with reg:
// scanned/mixed/culled emission counters, the per-capture scan
// histogram, a gauge of currently stored emissions, and the
// compaction counter. Call it once per room, before captures begin. A
// nil registry leaves the room unmetered.
func (r *Room) Instrument(reg *telemetry.Registry) {
	r.tm = roomMetrics{
		scanned:   reg.Counter(metricCaptureScanned),
		mixed:     reg.Counter(metricCaptureMixed),
		culled:    reg.Counter(metricCaptureCulled),
		scanHist:  reg.Histogram(metricCaptureScanHist, captureScanBuckets),
		compacted: reg.Counter(metricRoomCompacted),
	}
	reg.Func(metricRoomEmissions, func() float64 {
		return float64(r.EmissionCount())
	})
}
