package acoustic

import (
	"bytes"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"testing"

	"mdn/internal/audio"
	"mdn/internal/telemetry"
)

// randomScene builds two identical rooms — one with culling enabled,
// one legacy — with k speakers and j microphones at random positions,
// returning them plus the speaker/mic slices (same registration order
// in both, so seeds and pair indices line up).
func randomScene(rng *rand.Rand, k, j int, cull float64, absorb bool) (culled, naive *Room, spC, spN []*Speaker, micC, micN []*Microphone) {
	culled = NewRoom(44100, 77)
	naive = NewRoom(44100, 77)
	culled.CullThreshold = cull
	culled.AirAbsorption = absorb
	naive.AirAbsorption = absorb
	pos := func() Position {
		return Position{X: rng.Float64()*10 - 5, Y: rng.Float64()*10 - 5, Z: rng.Float64() * 2}
	}
	for i := 0; i < k; i++ {
		p := pos()
		spC = append(spC, culled.AddSpeaker("s"+strconv.Itoa(i), p))
		spN = append(spN, naive.AddSpeaker("s"+strconv.Itoa(i), p))
	}
	for i := 0; i < j; i++ {
		p := pos()
		micC = append(micC, culled.AddMicrophone("m"+strconv.Itoa(i), p, 0.0005))
		micN = append(micN, naive.AddMicrophone("m"+strconv.Itoa(i), p, 0.0005))
	}
	return
}

// receivedAmp mirrors the capture path's audibility computation: the
// peak amplitude of sp's tone as heard at mic.
func receivedAmp(r *Room, sp *Speaker, mic *Microphone, tone audio.Tone) float64 {
	d := sp.Pos.Distance(mic.Pos)
	a := tone.Amplitude * attenuation(d)
	if r.AirAbsorption {
		a *= airAbsorption(tone.Frequency, d)
	}
	return a
}

// TestCaptureCulledBitExactWhenAllAudible is the core property test of
// the culling contract: when every emission is received at or above
// the cull floor at every microphone, the culled capture is
// bit-identical to the naive full-walk mix — same walk order, same
// float ops, nothing skipped.
func TestCaptureCulledBitExactWhenAllAudible(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 25; iter++ {
		absorb := iter%3 == 0
		culled, _, spC, spN, micC, micN := randomScene(rng, 1+rng.Intn(5), 1+rng.Intn(3), CullAuto, absorb)
		for e := 0; e < 10; e++ {
			si := rng.Intn(len(spC))
			tone := audio.Tone{
				Frequency: 300 + rng.Float64()*4000,
				Duration:  0.02 + rng.Float64()*0.2,
				Amplitude: 1, // placeholder; raised above every floor below
				Phase:     rng.Float64(),
			}
			// Scale the amplitude so the received level clears every
			// microphone's floor with margin — the all-audible regime.
			need := 0.0
			for _, m := range micC {
				a := receivedAmp(culled, spC[si], m, tone)
				if req := m.SelfNoiseRMS / a; req > need {
					need = req
				}
			}
			tone.Amplitude = need * (1.1 + rng.Float64())
			at := rng.Float64() * 0.5
			spC[si].Play(at, tone)
			spN[si].Play(at, tone)
		}
		for w := 0; w < 4; w++ {
			from := rng.Float64() * 0.7
			to := from + 0.05
			for i := range micC {
				a := micC[i].Capture(from, to)
				b := micN[i].Capture(from, to)
				if len(a.Samples) != len(b.Samples) {
					t.Fatalf("iter %d: length mismatch %d vs %d", iter, len(a.Samples), len(b.Samples))
				}
				for s := range a.Samples {
					if a.Samples[s] != b.Samples[s] {
						t.Fatalf("iter %d mic %d window [%g,%g): sample %d differs: %g vs %g",
							iter, i, from, to, s, a.Samples[s], b.Samples[s])
					}
				}
			}
		}
	}
}

// TestCaptureCulledErrorBounded checks the other half of the
// contract: with amplitudes spread across the floor, the culled mix
// deviates from the naive mix by no more than the sum of the received
// amplitudes of the emissions it culled — each individually below the
// floor.
func TestCaptureCulledErrorBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const floor = 0.002
	for iter := 0; iter < 25; iter++ {
		absorb := iter%4 == 0
		culled, _, spC, spN, micC, micN := randomScene(rng, 1+rng.Intn(5), 1+rng.Intn(3), floor, absorb)
		type played struct {
			si   int
			tone audio.Tone
		}
		var schedule []played
		for e := 0; e < 12; e++ {
			si := rng.Intn(len(spC))
			tone := audio.Tone{
				Frequency: 300 + rng.Float64()*4000,
				Duration:  0.02 + rng.Float64()*0.2,
				// Log-uniform across the floor so some emissions cull
				// and some mix.
				Amplitude: floor * math.Pow(10, rng.Float64()*4-2),
				Phase:     rng.Float64(),
			}
			at := rng.Float64() * 0.3
			spC[si].Play(at, tone)
			spN[si].Play(at, tone)
			schedule = append(schedule, played{si, tone})
		}
		for i := range micC {
			bound := 0.0
			anyCulled := false
			for _, p := range schedule {
				if a := receivedAmp(culled, spC[p.si], micC[i], p.tone); a < floor {
					bound += a
					anyCulled = true
				}
			}
			a := micC[i].Capture(0.1, 0.2)
			b := micN[i].Capture(0.1, 0.2)
			maxDiff := 0.0
			for s := range a.Samples {
				if d := math.Abs(a.Samples[s] - b.Samples[s]); d > maxDiff {
					maxDiff = d
				}
			}
			if maxDiff > bound*(1+1e-9)+1e-15 {
				t.Fatalf("iter %d mic %d: max deviation %g exceeds culled-amplitude bound %g", iter, i, maxDiff, bound)
			}
			if !anyCulled && maxDiff != 0 {
				t.Fatalf("iter %d mic %d: nothing below floor yet mixes differ by %g", iter, i, maxDiff)
			}
		}
	}
}

// TestCaptureCulledZeroThresholdIsLegacy pins the knob's off position:
// CullThreshold 0 must mix every emission however faint.
func TestCaptureCulledZeroThresholdIsLegacy(t *testing.T) {
	r := NewRoom(44100, 1)
	sp := r.AddSpeaker("s", Position{X: 50})
	mic := r.AddMicrophone("m", Position{}, 0)
	sp.Play(0, audio.Tone{Frequency: 1000, Duration: 0.5, Amplitude: 1e-6})
	if got := mic.Capture(0.2, 0.25).RMS(); got == 0 {
		t.Fatal("threshold 0 culled a faint emission; legacy path must mix everything")
	}
	// The same emission under an explicit floor above its received
	// level is culled to silence (noiseless microphone).
	r.CullThreshold = 0.001
	if got := mic.Capture(0.2, 0.25).RMS(); got != 0 {
		t.Fatalf("explicit floor failed to cull a sub-threshold emission (RMS %g)", got)
	}
}

// TestCaptureExpiredPrefixSkipped asserts the expiry index does its
// job: a capture far past a burst of dead emissions scans only the
// live tail, observable through the scanned counter.
func TestCaptureExpiredPrefixSkipped(t *testing.T) {
	reg := telemetry.New()
	r := NewRoom(44100, 9)
	r.Instrument(reg)
	sp := r.AddSpeaker("s", Position{X: 1})
	mic := r.AddMicrophone("m", Position{}, 0)
	for i := 0; i < 200; i++ {
		sp.Play(float64(i)*0.005, audio.Tone{Frequency: 800, Duration: 0.01, Amplitude: 0.1})
	}
	sp.Play(10, audio.Tone{Frequency: 900, Duration: 0.1, Amplitude: 0.1})
	mic.Capture(10, 10.05)
	if got := reg.Counter("mdn_capture_emissions_scanned_total").Value(); got > 1 {
		t.Errorf("scanned %d emissions for a window past 200 dead ones; expiry index should bound the scan to 1", got)
	}
	if got := reg.Counter("mdn_capture_emissions_mixed_total").Value(); got != 1 {
		t.Errorf("mixed %d, want 1", got)
	}
}

// TestCaptureTelemetryCounters exercises the scanned/mixed/culled
// accounting and checks the registry still renders.
func TestCaptureTelemetryCounters(t *testing.T) {
	reg := telemetry.New()
	r := NewRoom(44100, 9)
	r.CullThreshold = 0.005
	r.Instrument(reg)
	near := r.AddSpeaker("near", Position{X: 1})
	far := r.AddSpeaker("far", Position{X: 400})
	mic := r.AddMicrophone("m", Position{}, 0.0005)
	near.Play(0, audio.Tone{Frequency: 800, Duration: 2, Amplitude: 0.1}) // received 0.1 ≥ floor
	far.Play(0, audio.Tone{Frequency: 900, Duration: 2, Amplitude: 0.1})  // received 2.5e-4 < floor
	// Window chosen so both wavefronts are present (the far speaker is
	// 400 m out — ~1.17 s of flight).
	mic.Capture(1.3, 1.35)
	scanned := reg.Counter("mdn_capture_emissions_scanned_total").Value()
	mixed := reg.Counter("mdn_capture_emissions_mixed_total").Value()
	culled := reg.Counter("mdn_capture_emissions_culled_total").Value()
	if scanned != 2 || mixed != 1 || culled != 1 {
		t.Errorf("scanned/mixed/culled = %d/%d/%d, want 2/1/1", scanned, mixed, culled)
	}
	if got := reg.Histogram("mdn_capture_scan_emissions", nil).Count(); got != 1 {
		t.Errorf("scan histogram count = %d, want 1", got)
	}
	var text bytes.Buffer
	if err := reg.WriteText(&text); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if err := telemetry.ValidateText(strings.NewReader(text.String())); err != nil {
		t.Errorf("telemetry output invalid: %v\n%s", err, text.String())
	}
	if float64(r.EmissionCount()) != 2 {
		t.Errorf("emission gauge source = %d, want 2", r.EmissionCount())
	}
}

// TestSelfNoiseDistinctForSameLengthNames is the regression test for
// the seed-collision bug: two microphones whose names have the same
// length used to share a noise stream per window.
func TestSelfNoiseDistinctForSameLengthNames(t *testing.T) {
	r := NewRoom(44100, 5)
	a := r.AddMicrophone("mic-a", Position{}, 0.01)
	b := r.AddMicrophone("mic-b", Position{X: 1}, 0.01)
	bufA := a.Capture(0, 0.05)
	bufB := b.Capture(0, 0.05)
	same := 0
	for i := range bufA.Samples {
		if bufA.Samples[i] == bufB.Samples[i] {
			same++
		}
	}
	if same == len(bufA.Samples) {
		t.Fatal("same-length mic names produced identical noise streams")
	}
	// Reproducibility must survive the new seed: capturing the same
	// window again yields the identical waveform.
	again := a.Capture(0, 0.05)
	for i := range bufA.Samples {
		if bufA.Samples[i] != again.Samples[i] {
			t.Fatal("self-noise no longer reproducible per (mic, window)")
		}
	}
}

// TestCompactBeforeKeepsStraddlersExact plays history, snapshots a
// window that straddles the compaction point, compacts, and requires
// the recapture to be bit-identical while fully-dead history is gone.
func TestCompactBeforeKeepsStraddlersExact(t *testing.T) {
	r := NewRoom(44100, 3)
	r.CullThreshold = CullAuto
	sp := r.AddSpeaker("s", Position{X: 1})
	mic := r.AddMicrophone("m", Position{}, 0.0005)
	sp.Play(0, audio.Tone{Frequency: 700, Duration: 0.1, Amplitude: 0.1})   // dead by 0.5
	sp.Play(0.2, audio.Tone{Frequency: 800, Duration: 0.5, Amplitude: 0.1}) // straddles 0.5
	sp.Play(1.0, audio.Tone{Frequency: 900, Duration: 0.1, Amplitude: 0.1}) // future
	want := mic.Capture(0.45, 0.55)
	dropped := r.CompactBefore(0.5)
	if dropped != 1 {
		t.Fatalf("dropped %d emissions, want 1 (only the fully-dead one)", dropped)
	}
	if got := r.EmissionCount(); got != 2 {
		t.Fatalf("emission count after compaction = %d, want 2", got)
	}
	got := mic.Capture(0.45, 0.55)
	for i := range want.Samples {
		if want.Samples[i] != got.Samples[i] {
			t.Fatalf("straddling capture changed by compaction at sample %d: %g vs %g", i, want.Samples[i], got.Samples[i])
		}
	}
	// Compacting at a time nothing precedes is a no-op.
	if n := r.CompactBefore(0.5); n != 0 {
		t.Fatalf("second CompactBefore dropped %d, want 0", n)
	}
}

// TestCompactBeforeRespectsPropagationDelay pins the margin: an
// emission whose source has stopped but whose wavefront is still in
// flight to a distant microphone must survive compaction.
func TestCompactBeforeRespectsPropagationDelay(t *testing.T) {
	r := NewRoom(44100, 3)
	sp := r.AddSpeaker("s", Position{X: 343}) // 1 s of flight time
	mic := r.AddMicrophone("m", Position{}, 0)
	sp.Play(0, audio.Tone{Frequency: 700, Duration: 0.1, Amplitude: 0.5})
	// At t=0.5 the tone has ended at the speaker (0.1) but arrives at
	// the microphone over [1.0, 1.1): still audible, must be kept.
	if n := r.CompactBefore(0.5); n != 0 {
		t.Fatalf("compaction dropped an in-flight emission (dropped %d)", n)
	}
	if got := mic.Capture(1.0, 1.1).RMS(); got == 0 {
		t.Fatal("in-flight emission inaudible after compaction")
	}
	// Past the full arrival window plus margin it is droppable.
	if n := r.CompactBefore(1.2); n != 1 {
		t.Fatalf("compaction kept a fully-dead emission (dropped %d)", n)
	}
}

// TestCompactBeforeBoundsLongRunMemory drives a long emission schedule
// through a moving window with periodic compaction and asserts the
// store stays at the audible horizon rather than the whole history.
func TestCompactBeforeBoundsLongRunMemory(t *testing.T) {
	r := NewRoom(8000, 3)
	sp := r.AddSpeaker("s", Position{X: 1})
	mic := r.AddMicrophone("m", Position{}, 0.0005)
	var buf *audio.Buffer
	peak := 0
	for w := 0; w < 2000; w++ {
		from := float64(w) * 0.05
		sp.Play(from, audio.Tone{Frequency: 700, Duration: 0.04, Amplitude: 0.1})
		buf = mic.CaptureInto(buf, from, from+0.05)
		r.CompactBefore(from - 0.2)
		if n := r.EmissionCount(); n > peak {
			peak = n
		}
	}
	// 2000 emissions played; retention of 0.2 s spans ~5 windows.
	if peak > 16 {
		t.Fatalf("emission store peaked at %d entries; compaction should hold it near the audible horizon (~5)", peak)
	}
}

// TestConcurrentCaptureCompactPlay is the -race exercise over the
// indexed store: concurrent captures on distinct microphones, forward
// scheduling, compaction, and Emissions() snapshots.
func TestConcurrentCaptureCompactPlay(t *testing.T) {
	r := NewRoom(8000, 7)
	r.CullThreshold = CullAuto
	const mics = 4
	sps := make([]*Speaker, mics)
	ms := make([]*Microphone, mics)
	for i := 0; i < mics; i++ {
		sps[i] = r.AddSpeaker("s"+strconv.Itoa(i), Position{X: float64(i), Y: 1})
		ms[i] = r.AddMicrophone("m"+strconv.Itoa(i), Position{X: float64(i)}, 0.0005)
	}
	var wg sync.WaitGroup
	for i := 0; i < mics; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			for w := 0; w < 50; w++ {
				sps[i].Play(float64(w)*0.02, audio.Tone{Frequency: 600 + 50*float64(i), Duration: 0.015, Amplitude: 0.1})
			}
		}(i)
		go func(i int) {
			defer wg.Done()
			var buf *audio.Buffer
			for w := 0; w < 50; w++ {
				buf = ms[i].CaptureInto(buf, float64(w)*0.02, float64(w)*0.02+0.02)
			}
		}(i)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for w := 0; w < 50; w++ {
			r.CompactBefore(float64(w) * 0.015)
		}
	}()
	go func() {
		defer wg.Done()
		for w := 0; w < 20; w++ {
			_ = r.Emissions()
			_ = r.EmissionCount()
		}
	}()
	wg.Wait()
}

// TestInsertOutOfOrderMaintainsEndMax plays out of order and checks
// the prefix-max index still bounds the live region correctly.
func TestInsertOutOfOrderMaintainsEndMax(t *testing.T) {
	r := NewRoom(44100, 1)
	sp := r.AddSpeaker("s", Position{X: 1})
	mic := r.AddMicrophone("m", Position{}, 0)
	sp.Play(2.0, audio.Tone{Frequency: 700, Duration: 0.1, Amplitude: 0.1})
	sp.Play(0.0, audio.Tone{Frequency: 800, Duration: 3.0, Amplitude: 0.1}) // long, inserted before
	sp.Play(1.0, audio.Tone{Frequency: 900, Duration: 0.1, Amplitude: 0.1})
	// The long emission straddles t=2.5; a capture there must hear it
	// even though it sorts first (the prefix max, not the local end,
	// bounds the scan).
	buf := mic.Capture(2.5, 2.55)
	if buf.RMS() == 0 {
		t.Fatal("long out-of-order emission lost by the expiry index")
	}
	// Compaction is prefix-bounded: the long straddler sorts first, so
	// it guards the dead short tones behind it — conservative, never
	// lossy.
	if n := r.CompactBefore(2.5); n != 0 {
		t.Fatalf("CompactBefore dropped %d, want 0 (live straddler guards the prefix)", n)
	}
	after := mic.Capture(2.5, 2.55)
	for i := range buf.Samples {
		if buf.Samples[i] != after.Samples[i] {
			t.Fatal("capture changed after a compaction attempt around an out-of-order straddler")
		}
	}
	// Once the straddler too has died out everywhere, everything goes.
	if n := r.CompactBefore(3.2); n != 3 {
		t.Fatalf("CompactBefore dropped %d, want 3", n)
	}
}

// TestCaptureCulledSteadyStateAllocs mirrors the legacy zero-alloc
// guarantee on the culled path, with telemetry instrumented.
func TestCaptureCulledSteadyStateAllocs(t *testing.T) {
	reg := telemetry.New()
	r := NewRoom(44100, 2)
	r.CullThreshold = CullAuto
	r.Instrument(reg)
	mic := r.AddMicrophone("m", Position{}, 0.0005)
	for i := 0; i < 64; i++ {
		sp := r.AddSpeaker("s"+strconv.Itoa(i), Position{X: 10 * float64(i), Y: 1})
		sp.Play(0, audio.Tone{Frequency: 500 + 10*float64(i), Duration: 3600, Amplitude: SPLToAmplitude(60)})
	}
	buf := mic.CaptureInto(nil, 0.1, 0.15)
	allocs := testing.AllocsPerRun(20, func() {
		buf = mic.CaptureInto(buf, 0.1, 0.15)
	})
	if allocs != 0 {
		t.Errorf("culled steady-state capture allocates %v/op, want 0", allocs)
	}
}
