package acoustic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mdn/internal/audio"
)

// Property tests on the channel physics.

func TestSuperpositionProperty(t *testing.T) {
	// The capture of two emissions equals the sum of the captures of
	// each emission alone (the channel is linear).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		freqA := 400 + rng.Float64()*2000
		freqB := 400 + rng.Float64()*2000
		posA := Position{X: 0.5 + rng.Float64()*3}
		posB := Position{Y: 0.5 + rng.Float64()*3}
		atA := rng.Float64() * 0.2
		atB := rng.Float64() * 0.2

		capture := func(withA, withB bool) *audio.Buffer {
			r := NewRoom(44100, 1) // fixed seed; zero mic noise keeps it exact
			mic := r.AddMicrophone("m", Position{}, 0)
			if withA {
				r.AddSpeaker("a", posA).Play(atA, audio.Tone{Frequency: freqA, Duration: 0.1, Amplitude: 0.3})
			}
			if withB {
				r.AddSpeaker("b", posB).Play(atB, audio.Tone{Frequency: freqB, Duration: 0.1, Amplitude: 0.2})
			}
			return mic.Capture(0, 0.5)
		}
		both := capture(true, true)
		onlyA := capture(true, false)
		onlyB := capture(false, true)
		for i := range both.Samples {
			want := onlyA.Samples[i] + onlyB.Samples[i]
			if math.Abs(both.Samples[i]-want) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestInverseSquareLawProperty(t *testing.T) {
	// Doubling the distance halves the received amplitude (beyond
	// the clamp distance).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 0.5 + rng.Float64()*5
		freq := 500 + rng.Float64()*1000
		rmsAt := func(dist float64) float64 {
			r := NewRoom(44100, 1)
			mic := r.AddMicrophone("m", Position{}, 0)
			r.AddSpeaker("s", Position{X: dist}).Play(0, audio.Tone{
				Frequency: freq, Duration: 0.3, Amplitude: 0.4})
			return mic.Capture(0.1, 0.25).RMS()
		}
		near := rmsAt(d)
		far := rmsAt(2 * d)
		ratio := near / far
		return math.Abs(ratio-2) < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestDelayScalesWithDistanceProperty(t *testing.T) {
	// Arrival time == emission time + distance / speed of sound.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Float64()*30
		r := NewRoom(44100, 1)
		mic := r.AddMicrophone("m", Position{}, 0)
		r.AddSpeaker("s", Position{X: d}).Play(0, audio.Tone{
			Frequency: 1000, Duration: 0.05, Amplitude: 1})
		expect := d / SpeedOfSound
		// Silent strictly before the expected arrival, audible after.
		pre := mic.Capture(0, expect*0.95)
		post := mic.Capture(expect+0.001, expect+0.03)
		return pre.RMS() < 1e-12 && post.RMS() > 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestCaptureIdempotentProperty(t *testing.T) {
	// Capturing the same window twice returns identical samples even
	// with microphone self-noise (seeded per window).
	f := func(seed int64, from float64) bool {
		from = math.Mod(math.Abs(from), 10)
		r := NewRoom(44100, seed)
		mic := r.AddMicrophone("m", Position{}, 0.01)
		r.AddSpeaker("s", Position{X: 1}).Play(from, audio.Tone{
			Frequency: 800, Duration: 0.05, Amplitude: 0.2})
		a := mic.Capture(from, from+0.1)
		b := mic.Capture(from, from+0.1)
		for i := range a.Samples {
			if a.Samples[i] != b.Samples[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestAirAbsorptionCoefficient(t *testing.T) {
	// Power-law fit anchors: ~0.01 dB/m at 1 kHz, ~1.2 dB/m at 40 kHz.
	if a := AirAbsorptionDBPerMetre(1000); math.Abs(a-0.01) > 0.002 {
		t.Errorf("alpha(1k) = %g, want ~0.01", a)
	}
	if a := AirAbsorptionDBPerMetre(40000); a < 0.8 || a > 2.0 {
		t.Errorf("alpha(40k) = %g, want ~1.2", a)
	}
	if AirAbsorptionDBPerMetre(0) != 0 || AirAbsorptionDBPerMetre(-5) != 0 {
		t.Error("non-positive frequency should give zero absorption")
	}
	// Monotone in frequency.
	prev := 0.0
	for f := 100.0; f <= 40000; f *= 2 {
		a := AirAbsorptionDBPerMetre(f)
		if a <= prev {
			t.Fatalf("absorption not increasing at %g Hz", f)
		}
		prev = a
	}
}

func TestAirAbsorptionKillsUltrasoundWithRange(t *testing.T) {
	// Over 20 m, a 40 kHz tone loses ~24 dB to the air on top of the
	// 1/r law, while 1 kHz loses ~0.2 dB. With absorption enabled the
	// ultrasonic tone's received level drops by more than 10x relative
	// to the audible one.
	const (
		sampleRate = 96000.0
		dist       = 20.0
	)
	level := func(freq float64, absorb bool) float64 {
		r := NewRoom(sampleRate, 1)
		r.AirAbsorption = absorb
		mic := r.AddMicrophone("m", Position{}, 0)
		r.AddSpeaker("s", Position{X: dist}).Play(0, audio.Tone{
			Frequency: freq, Duration: 0.3, Amplitude: 0.5})
		return mic.Capture(0.1, 0.25).RMS()
	}
	lowOff := level(1000, false)
	lowOn := level(1000, true)
	highOff := level(40000, false)
	highOn := level(40000, true)
	if lowOn < 0.9*lowOff {
		t.Errorf("1 kHz should barely absorb: %g vs %g", lowOn, lowOff)
	}
	if highOn > highOff/10 {
		t.Errorf("40 kHz over 20 m should lose >20 dB: %g vs %g", highOn, highOff)
	}
}
