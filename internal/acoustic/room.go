package acoustic

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"mdn/internal/audio"
)

// Emission is one scheduled tone: a speaker starts playing Tone at
// time At (seconds of experiment time).
type Emission struct {
	// At is the start time at the speaker, in seconds.
	At float64
	// Tone is the emitted tone; Tone.Amplitude is the level at 1 m.
	Tone audio.Tone
	// Speaker identifies the emitting speaker.
	Speaker string
}

// Speaker is a sound emitter placed in the room. Speakers are created
// with Room.AddSpeaker.
type Speaker struct {
	// Name identifies the speaker (usually the switch it serves).
	Name string
	// Pos is the speaker's position.
	Pos Position
	// MaxAmplitude saturates emissions: tones louder than this are
	// clipped to it, like a real driver. Zero means no limit.
	MaxAmplitude float64

	room *Room
}

// Play schedules a tone to start at time at (seconds).
func (s *Speaker) Play(at float64, tone audio.Tone) {
	if s.MaxAmplitude > 0 && tone.Amplitude > s.MaxAmplitude {
		tone.Amplitude = s.MaxAmplitude
	}
	s.room.mu.Lock()
	defer s.room.mu.Unlock()
	s.room.emissions = append(s.room.emissions, Emission{At: at, Tone: tone, Speaker: s.Name})
}

// Microphone is a capture point in the room. Microphones are created
// with Room.AddMicrophone.
type Microphone struct {
	// Name identifies the microphone.
	Name string
	// Pos is the microphone's position.
	Pos Position
	// SelfNoiseRMS is the electronics noise floor added to every
	// capture (linear RMS). Cheap microphones have a higher floor.
	SelfNoiseRMS float64

	room *Room
}

// NoiseSource is a continuous background sound (ambience, a pop song,
// a running fan) placed in the room. Its buffer loops for the whole
// experiment; Gain scales it. Level in the buffer is the level at 1 m.
type NoiseSource struct {
	// Name identifies the source.
	Name string
	// Pos is the source position.
	Pos Position
	// Loop is the looped waveform.
	Loop *audio.Buffer
	// Gain scales the loop (1.0 = as recorded).
	Gain float64
	// From silences the source before this time (seconds).
	From float64
	// Until silences the source after this time; zero means forever.
	Until float64
}

// Room is the acoustic environment: a registry of speakers,
// microphones, and noise sources sharing one sample rate. The zero
// value is not usable; use NewRoom.
type Room struct {
	// SampleRate for all rendered audio, in Hz.
	SampleRate float64
	// Seed drives microphone self-noise.
	Seed int64
	// AirAbsorption, when true, applies frequency-dependent
	// atmospheric attenuation to tone emissions on top of the 1/r
	// law (see AirAbsorptionDBPerMetre). Narrowband tones attenuate
	// exactly; broadband noise sources are left at 1/r (their
	// spectra are dominated by low frequencies, where absorption is
	// negligible at room scales).
	AirAbsorption bool

	mu        sync.Mutex
	speakers  map[string]*Speaker
	mics      map[string]*Microphone
	noise     []*NoiseSource
	emissions []Emission
}

// NewRoom creates an empty room rendering at the given sample rate.
func NewRoom(sampleRate float64, seed int64) *Room {
	if sampleRate <= 0 {
		panic("acoustic: sample rate must be positive")
	}
	return &Room{
		SampleRate: sampleRate,
		Seed:       seed,
		speakers:   make(map[string]*Speaker),
		mics:       make(map[string]*Microphone),
	}
}

// AddSpeaker places a named speaker. It panics on duplicate names —
// testbed wiring errors should fail loudly at setup.
func (r *Room) AddSpeaker(name string, pos Position) *Speaker {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.speakers[name]; dup {
		panic(fmt.Sprintf("acoustic: duplicate speaker %q", name))
	}
	s := &Speaker{Name: name, Pos: pos, room: r}
	r.speakers[name] = s
	return s
}

// AddMicrophone places a named microphone.
func (r *Room) AddMicrophone(name string, pos Position, selfNoiseRMS float64) *Microphone {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.mics[name]; dup {
		panic(fmt.Sprintf("acoustic: duplicate microphone %q", name))
	}
	m := &Microphone{Name: name, Pos: pos, SelfNoiseRMS: selfNoiseRMS, room: r}
	r.mics[name] = m
	return m
}

// AddNoise registers a background noise source. A nil or empty loop is
// ignored (returns nil).
func (r *Room) AddNoise(src *NoiseSource) *NoiseSource {
	if src == nil || src.Loop == nil || src.Loop.Len() == 0 {
		return nil
	}
	if src.Gain == 0 {
		src.Gain = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.noise = append(r.noise, src)
	return src
}

// Speaker returns the named speaker or nil.
func (r *Room) Speaker(name string) *Speaker {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.speakers[name]
}

// Emissions returns a copy of all scheduled emissions, ordered by
// start time.
func (r *Room) Emissions() []Emission {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Emission, len(r.emissions))
	copy(out, r.emissions)
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Capture renders what the microphone hears over [from, to) seconds:
// every emission (attenuated by distance, delayed by propagation),
// every noise source, and the microphone's own noise floor.
func (m *Microphone) Capture(from, to float64) *audio.Buffer {
	r := m.room
	out := audio.NewBuffer(r.SampleRate, to-from)
	if out.Len() == 0 {
		return out
	}
	r.mu.Lock()
	emissions := make([]Emission, len(r.emissions))
	copy(emissions, r.emissions)
	noise := make([]*NoiseSource, len(r.noise))
	copy(noise, r.noise)
	// Snapshot the speaker map too: resolving each emission through
	// r.Speaker would re-acquire the room mutex once per emission.
	speakers := make(map[string]*Speaker, len(r.speakers))
	for name, sp := range r.speakers {
		speakers[name] = sp
	}
	r.mu.Unlock()

	for _, e := range emissions {
		sp := speakers[e.Speaker]
		if sp == nil {
			continue
		}
		dist := sp.Pos.Distance(m.Pos)
		arrive := e.At + delay(dist)
		if arrive >= to || arrive+e.Tone.Duration <= from {
			continue
		}
		tone := e.Tone
		tone.Amplitude *= attenuation(dist)
		if r.AirAbsorption {
			tone.Amplitude *= airAbsorption(tone.Frequency, dist)
		}
		out.MixAt(tone.Render(r.SampleRate), arrive-from, 1)
	}

	for _, src := range noise {
		m.mixNoise(out, src, from, to)
	}

	if m.SelfNoiseRMS > 0 {
		// Seed per (mic, window) so repeated captures of the same
		// window return identical waveforms.
		seed := r.Seed ^ int64(math.Float64bits(from)) ^ int64(len(m.Name))
		out.MixAt(audio.WhiteNoise(r.SampleRate, to-from, m.SelfNoiseRMS, seed), 0, 1)
	}
	return out
}

func (m *Microphone) mixNoise(out *audio.Buffer, src *NoiseSource, from, to float64) {
	r := m.room
	dist := src.Pos.Distance(m.Pos)
	gain := src.Gain * attenuation(dist)
	loop := src.Loop
	n := loop.Len()
	if n == 0 {
		return
	}
	start := src.From
	end := src.Until
	if end <= 0 {
		end = math.Inf(1)
	}
	sr := r.SampleRate
	nOut := len(out.Samples)
	// Active sample range [i0, i1): samples whose time
	// t = from + i/sr satisfies start <= t < end. Computed once
	// instead of re-checking the window per sample; the boundary
	// nudges below keep the set identical to the per-sample
	// comparisons under floating-point rounding.
	i0 := 0
	if start > from {
		i0 = int(math.Ceil((start - from) * sr))
		if i0 < 0 {
			i0 = 0
		}
		for i0 > 0 && from+float64(i0-1)/sr >= start {
			i0--
		}
		for i0 < nOut && from+float64(i0)/sr < start {
			i0++
		}
	}
	i1 := nOut
	if !math.IsInf(end, 1) {
		i1 = int(math.Ceil((end - from) * sr))
		if i1 > nOut {
			i1 = nOut
		}
		for i1 > 0 && from+float64(i1-1)/sr >= end {
			i1--
		}
		for i1 < nOut && from+float64(i1)/sr < end {
			i1++
		}
	}
	if i0 >= i1 {
		return
	}
	// Position within the looped buffer, delayed by propagation:
	// idx(i) = round((t_i - delay)*sr) advances by exactly one per
	// sample, so resolve it once and walk with a wrapping increment
	// instead of a Round and two modulos per sample.
	idx := int(math.Round((from + float64(i0)/sr - delay(dist)) * sr))
	idx %= n
	if idx < 0 {
		idx += n
	}
	for i := i0; i < i1; i++ {
		out.Samples[i] += loop.Samples[idx] * gain
		idx++
		if idx == n {
			idx = 0
		}
	}
}

// SNRAt estimates the signal-to-noise ratio in dB that a tone of the
// given source amplitude played by speaker sp would enjoy at the
// microphone, against the current noise sources (measured over a 1 s
// noise window starting at probeTime). Useful for experiment design.
func (m *Microphone) SNRAt(sp *Speaker, amplitude, probeTime float64) float64 {
	dist := sp.Pos.Distance(m.Pos)
	sig := amplitude * attenuation(dist) / math.Sqrt2 // RMS of a sine
	noiseBuf := m.Capture(probeTime, probeTime+1)
	nRMS := noiseBuf.RMS()
	if nRMS <= 0 {
		return 120
	}
	return 20 * math.Log10(sig/nRMS)
}
