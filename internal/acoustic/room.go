package acoustic

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"mdn/internal/audio"
)

// Emission is one scheduled tone: a speaker starts playing Tone at
// time At (seconds of experiment time).
type Emission struct {
	// At is the start time at the speaker, in seconds.
	At float64
	// Tone is the emitted tone; Tone.Amplitude is the level at 1 m.
	Tone audio.Tone
	// Speaker identifies the emitting speaker.
	Speaker string
}

// Speaker is a sound emitter placed in the room. Speakers are created
// with Room.AddSpeaker.
type Speaker struct {
	// Name identifies the speaker (usually the switch it serves).
	Name string
	// Pos is the speaker's position.
	Pos Position
	// MaxAmplitude saturates emissions: tones louder than this are
	// clipped to it, like a real driver. Zero means no limit.
	MaxAmplitude float64

	room *Room

	// gainRamp and detuneRamp are the degradation model (degrade.go):
	// schedulable ramps on the speaker's output gain (base 1.0) and
	// frequency ratio (base 1.0), applied by Play at the emission's
	// scheduled start time.
	gainRamp   deviceParam
	detuneRamp deviceParam

	// pairs caches the geometry to every registered microphone,
	// indexed by Microphone.idx. Built at registration (positions are
	// fixed once placed) and extended by AddMicrophone, it is what the
	// capture scan indexes instead of recomputing a distance per
	// (emission, microphone).
	pairs []pairGeom
}

// Play schedules a tone to start at time at (seconds). The room keeps
// its emission list sorted by start time as tones are scheduled —
// usually a cheap append, since simulations schedule forward in time —
// so neither Capture nor Emissions ever re-sorts.
func (s *Speaker) Play(at float64, tone audio.Tone) {
	r := s.room
	r.mu.Lock()
	defer r.mu.Unlock()
	// Degradation model: an aging driver loses level and drifts off
	// pitch. Both ramps evaluate at the emission's scheduled start, so
	// the stored emission is already degraded and every capture of it —
	// batch, streaming, any worker — renders identical samples. A
	// healthy speaker (no ramps) takes the multiply-free path.
	if len(s.gainRamp.ramps) > 0 {
		tone.Amplitude *= s.gainRamp.atBase(1, at)
	}
	if len(s.detuneRamp.ramps) > 0 {
		tone.Frequency *= s.detuneRamp.atBase(1, at)
	}
	if s.MaxAmplitude > 0 && tone.Amplitude > s.MaxAmplitude {
		tone.Amplitude = s.MaxAmplitude
	}
	r.insertEmission(emission{Emission: Emission{At: at, Tone: tone, Speaker: s.Name}, sp: s})
}

// emissionLess is a total order on emissions: start time first, then
// speaker and tone fields as tie-breaks. Keeping the list in a total
// order (rather than "sorted by At, ties in arrival order") makes the
// capture mix a pure function of the schedule — floating-point
// accumulation is order-sensitive at the last ulp, so two emissions
// starting at the same instant must still mix in a reproducible order
// no matter which Play call landed first. That is what lets the
// parallel sweep and fleet paths promise byte-identical output.
func emissionLess(a, b *emission) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Speaker != b.Speaker {
		return a.Speaker < b.Speaker
	}
	if a.Tone.Frequency != b.Tone.Frequency {
		return a.Tone.Frequency < b.Tone.Frequency
	}
	if a.Tone.Duration != b.Tone.Duration {
		return a.Tone.Duration < b.Tone.Duration
	}
	if a.Tone.Amplitude != b.Tone.Amplitude {
		return a.Tone.Amplitude < b.Tone.Amplitude
	}
	return a.Tone.Phase < b.Tone.Phase
}

// Microphone is a capture point in the room. Microphones are created
// with Room.AddMicrophone.
type Microphone struct {
	// Name identifies the microphone.
	Name string
	// Pos is the microphone's position.
	Pos Position
	// SelfNoiseRMS is the electronics noise floor added to every
	// capture (linear RMS). Cheap microphones have a higher floor.
	SelfNoiseRMS float64

	room *Room

	// idx is the microphone's registration index: its slot in every
	// speaker's pair-geometry cache.
	idx int
	// nameSeed is the FNV-1a hash of Name, the per-microphone
	// component of the self-noise seed.
	nameSeed int64

	// noiseRamp and sensRamp are the degradation model (degrade.go):
	// schedulable ramps on the self-noise floor (base SelfNoiseRMS)
	// and the capture sensitivity (base 1.0; 0 = deaf), evaluated once
	// per capture at the window start.
	noiseRamp deviceParam
	sensRamp  deviceParam

	// Capture scratch, reused across windows so steady-state capture
	// allocates nothing. It makes a Microphone single-capturer: at most
	// one goroutine may run Capture/CaptureInto on a given microphone
	// at a time. Different microphones of the same room may capture
	// concurrently — that is the fleet fan-out path.
	noiseRng *rand.Rand
}

// NoiseSource is a continuous background sound (ambience, a pop song,
// a running fan) placed in the room. Its buffer loops for the whole
// experiment; Gain scales it. Level in the buffer is the level at 1 m.
type NoiseSource struct {
	// Name identifies the source.
	Name string
	// Pos is the source position.
	Pos Position
	// Loop is the looped waveform.
	Loop *audio.Buffer
	// Gain scales the loop (1.0 = as recorded).
	Gain float64
	// From silences the source before this time (seconds).
	From float64
	// Until silences the source after this time; zero means forever.
	Until float64
}

// Room is the acoustic environment: a registry of speakers,
// microphones, and noise sources sharing one sample rate. The zero
// value is not usable; use NewRoom.
type Room struct {
	// SampleRate for all rendered audio, in Hz.
	SampleRate float64
	// Seed drives microphone self-noise.
	Seed int64
	// AirAbsorption, when true, applies frequency-dependent
	// atmospheric attenuation to tone emissions on top of the 1/r
	// law (see AirAbsorptionDBPerMetre). Narrowband tones attenuate
	// exactly; broadband noise sources are left at 1/r (their
	// spectra are dominated by low frequencies, where absorption is
	// negligible at room scales).
	AirAbsorption bool
	// CullThreshold enables audibility culling: an emission whose
	// received peak amplitude at a microphone — after distance
	// attenuation and, when modelled, air absorption — falls below the
	// floor is skipped instead of synthesized. 0 (the default)
	// disables culling: the mix is the bit-exact legacy full walk. Set
	// CullAuto to use each microphone's own SelfNoiseRMS as its floor
	// — the deployment default, since a tone buried below the
	// microphone's own electronics cannot change a detection. Any
	// positive value is an explicit shared linear-amplitude floor.
	//
	// Contract: the mix of the emissions at or above the floor is
	// bit-exact with the unculled mix (same walk order, same float
	// ops); the waveform error from the culled remainder is bounded by
	// the sum of their received amplitudes, each below the floor.
	CullThreshold float64

	// mu is a read-write lock: Play and the Add* registrations take
	// the write side; Capture holds the read side for the whole mix,
	// so any number of microphones can render the same window
	// concurrently without copying the emission list.
	mu        sync.RWMutex
	speakers  map[string]*Speaker
	mics      map[string]*Microphone
	micList   []*Microphone // registration order; Microphone.idx indexes it
	noise     []*NoiseSource
	emissions []emission // kept in emissionLess total order
	// endMax[i] is the max of At+Duration over emissions[0..i] — the
	// prefix-max expiry index capture and CompactBefore binary-search
	// (see store.go).
	endMax []float64
	// maxPairDelay is the worst-case speaker→microphone propagation
	// delay over all registered pairs: the safety margin when deciding
	// an emission can no longer be heard anywhere.
	maxPairDelay float64
	// horizon is the latest time passed to CompactBefore: captures of
	// windows starting before it may be missing dropped emissions.
	// CaptureChecked refuses such reads with ErrCompacted (ring.go).
	horizon float64
	// tm is the capture-path telemetry; zero (all nil) until
	// Instrument.
	tm roomMetrics
}

// emission is the internal schedule record: the public Emission plus
// the resolved speaker, so Capture never does a map lookup per tone.
type emission struct {
	Emission
	sp *Speaker
}

// NewRoom creates an empty room rendering at the given sample rate.
func NewRoom(sampleRate float64, seed int64) *Room {
	if sampleRate <= 0 {
		panic("acoustic: sample rate must be positive")
	}
	return &Room{
		SampleRate: sampleRate,
		Seed:       seed,
		speakers:   make(map[string]*Speaker),
		mics:       make(map[string]*Microphone),
	}
}

// AddSpeaker places a named speaker. It panics on duplicate names —
// testbed wiring errors should fail loudly at setup.
func (r *Room) AddSpeaker(name string, pos Position) *Speaker {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.speakers[name]; dup {
		panic(fmt.Sprintf("acoustic: duplicate speaker %q", name))
	}
	s := &Speaker{Name: name, Pos: pos, room: r}
	s.pairs = make([]pairGeom, len(r.micList))
	for i, m := range r.micList {
		s.pairs[i] = makePair(pos, m.Pos)
		if s.pairs[i].del > r.maxPairDelay {
			r.maxPairDelay = s.pairs[i].del
		}
	}
	r.speakers[name] = s
	return s
}

// AddMicrophone places a named microphone.
func (r *Room) AddMicrophone(name string, pos Position, selfNoiseRMS float64) *Microphone {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.mics[name]; dup {
		panic(fmt.Sprintf("acoustic: duplicate microphone %q", name))
	}
	m := &Microphone{
		Name: name, Pos: pos, SelfNoiseRMS: selfNoiseRMS,
		room: r, idx: len(r.micList), nameSeed: hashName(name),
	}
	for _, s := range r.speakers {
		g := makePair(s.Pos, pos)
		if g.del > r.maxPairDelay {
			r.maxPairDelay = g.del
		}
		s.pairs = append(s.pairs, g)
	}
	r.mics[name] = m
	r.micList = append(r.micList, m)
	return m
}

// AddNoise registers a background noise source. A nil or empty loop is
// ignored (returns nil).
func (r *Room) AddNoise(src *NoiseSource) *NoiseSource {
	if src == nil || src.Loop == nil || src.Loop.Len() == 0 {
		return nil
	}
	if src.Gain == 0 {
		src.Gain = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.noise = append(r.noise, src)
	return src
}

// Speaker returns the named speaker or nil.
func (r *Room) Speaker(name string) *Speaker {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.speakers[name]
}

// Emissions returns a copy of all scheduled emissions, ordered by
// start time (ties in a fixed total order over speaker and tone). The
// list is maintained in that order by Play, so this is a straight
// copy — no sort.
func (r *Room) Emissions() []Emission {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Emission, len(r.emissions))
	for i := range r.emissions {
		out[i] = r.emissions[i].Emission
	}
	return out
}

// Capture renders what the microphone hears over [from, to) seconds:
// every emission (attenuated by distance, delayed by propagation),
// every noise source, and the microphone's own noise floor. It
// allocates a fresh buffer per call; the polling hot path should use
// CaptureInto with a reused buffer instead.
func (m *Microphone) Capture(from, to float64) *audio.Buffer {
	return m.CaptureInto(nil, from, to)
}

// CaptureInto is Capture writing into out, which is grown as needed
// and returned (a nil out allocates one). Feeding each call's return
// value into the next reaches a steady state where capture allocates
// nothing: tones and self-noise are synthesized directly into the
// buffer, the emission list is walked in place under the room's read
// lock, and the list is start-time sorted so only the prefix that can
// be audible before to is visited at all.
//
// A microphone may be captured by at most one goroutine at a time (it
// reuses per-microphone scratch); captures of different microphones
// may run concurrently.
func (m *Microphone) CaptureInto(out *audio.Buffer, from, to float64) *audio.Buffer {
	r := m.room
	n := int(math.Round((to - from) * r.SampleRate))
	if n < 0 {
		n = 0
	}
	if out == nil {
		out = &audio.Buffer{}
	}
	out.SampleRate = r.SampleRate
	if cap(out.Samples) >= n {
		out.Samples = out.Samples[:n]
	} else {
		out.Samples = make([]float64, n)
	}
	for i := range out.Samples {
		out.Samples[i] = 0
	}
	if n == 0 {
		return out
	}

	r.mu.RLock()
	// Emissions are sorted by At and arrive no earlier than they
	// start, so everything from the first At >= to onward is
	// inaudible in this window — binary-search the boundary. A second
	// search on the endMax prefix-max index bounds the live region
	// from below: emissions whose sound has died out everywhere before
	// from are skipped without iteration, so a long-running schedule
	// costs each window only its live span, not its whole history.
	ems := r.emissions
	cut := sort.Search(len(ems), func(i int) bool { return ems[i].At >= to })
	lo := r.liveFrom(from, cut)
	// Degradation model: sensitivity and the effective noise floor are
	// evaluated once at the window start, so ramps land with window
	// granularity and repeated captures of the same window agree. A
	// healthy microphone (no ramps) evaluates both to its base values.
	sens := m.sensAt(from)
	selfNoise := m.noiseAt(from)
	floor := r.cullFloorAt(m, from)
	idx := m.idx
	var mixed, culled int
	for i := lo; i < cut; i++ {
		e := &ems[i]
		g := &e.sp.pairs[idx]
		arrive := e.At + g.del
		if arrive >= to || arrive+e.Tone.Duration <= from {
			continue
		}
		tone := e.Tone
		tone.Amplitude *= g.att
		if r.AirAbsorption {
			tone.Amplitude *= airAbsorption(tone.Frequency, g.dist)
		}
		// Audibility cull: the received peak amplitude is now final,
		// so one compare decides whether this emission can matter at
		// this microphone. With the floor at 0 nothing is culled and
		// the walk is the bit-exact legacy mix. Sensitivity applies to
		// the comparison (multiplying by the healthy 1.0 is exact):
		// what matters is the level after the degraded transducer.
		if tone.Amplitude*sens < floor {
			culled++
			continue
		}
		tone.MixEnvelopeAt(out, arrive-from, audio.DefaultEnvelope)
		mixed++
	}
	scanned := cut - lo

	for _, src := range r.noise {
		m.mixNoise(out, src, from, to)
	}
	tm := r.tm
	r.mu.RUnlock()

	tm.scanned.Add(uint64(scanned))
	tm.mixed.Add(uint64(mixed))
	tm.culled.Add(uint64(culled))
	tm.scanHist.Observe(float64(scanned))

	// A degraded transducer scales everything it picked up — tones and
	// room noise alike — but not the self-noise mixed below, which is
	// electronics hiss downstream of the diaphragm: a deaf microphone
	// still hisses. The healthy path (sens == 1) skips the pass so the
	// legacy waveform stays bit-exact.
	if sens != 1 {
		for i := range out.Samples {
			out.Samples[i] *= sens
		}
	}

	if selfNoise > 0 {
		// Seed per (mic, window) so repeated captures of the same
		// window return identical waveforms. The generator is reused
		// and reseeded, which reproduces the fresh-generator stream
		// without allocating. The microphone component is an FNV-1a
		// hash of the name, so same-length names (mic-0, mic-1, ...)
		// still get distinct noise streams.
		seed := r.Seed ^ int64(math.Float64bits(from)) ^ m.nameSeed
		if m.noiseRng == nil {
			m.noiseRng = rand.New(rand.NewSource(seed))
		} else {
			m.noiseRng.Seed(seed)
		}
		audio.MixWhiteNoise(out, selfNoise, m.noiseRng)
	}
	return out
}

func (m *Microphone) mixNoise(out *audio.Buffer, src *NoiseSource, from, to float64) {
	r := m.room
	dist := src.Pos.Distance(m.Pos)
	gain := src.Gain * attenuation(dist)
	loop := src.Loop
	n := loop.Len()
	if n == 0 {
		return
	}
	start := src.From
	end := src.Until
	if end <= 0 {
		end = math.Inf(1)
	}
	sr := r.SampleRate
	nOut := len(out.Samples)
	// Active sample range [i0, i1): samples whose time
	// t = from + i/sr satisfies start <= t < end. Computed once
	// instead of re-checking the window per sample; the boundary
	// nudges below keep the set identical to the per-sample
	// comparisons under floating-point rounding.
	i0 := 0
	if start > from {
		i0 = int(math.Ceil((start - from) * sr))
		if i0 < 0 {
			i0 = 0
		}
		for i0 > 0 && from+float64(i0-1)/sr >= start {
			i0--
		}
		for i0 < nOut && from+float64(i0)/sr < start {
			i0++
		}
	}
	i1 := nOut
	if !math.IsInf(end, 1) {
		i1 = int(math.Ceil((end - from) * sr))
		if i1 > nOut {
			i1 = nOut
		}
		for i1 > 0 && from+float64(i1-1)/sr >= end {
			i1--
		}
		for i1 < nOut && from+float64(i1)/sr < end {
			i1++
		}
	}
	if i0 >= i1 {
		return
	}
	// Position within the looped buffer, delayed by propagation:
	// idx(i) = round((t_i - delay)*sr) advances by exactly one per
	// sample, so resolve it once and walk with a wrapping increment
	// instead of a Round and two modulos per sample.
	idx := int(math.Round((from + float64(i0)/sr - delay(dist)) * sr))
	idx %= n
	if idx < 0 {
		idx += n
	}
	for i := i0; i < i1; i++ {
		out.Samples[i] += loop.Samples[idx] * gain
		idx++
		if idx == n {
			idx = 0
		}
	}
}

// SNRAt estimates the signal-to-noise ratio in dB that a tone at freq
// Hz of the given source amplitude played by speaker sp would enjoy
// at the microphone, against the current noise sources (measured over
// a 1 s noise window starting at probeTime). When the room models air
// absorption the estimate includes the frequency-dependent
// atmospheric loss, which is material for high-frequency tones at
// distance — the 1/r law alone overestimates those links. Useful for
// experiment design.
func (m *Microphone) SNRAt(sp *Speaker, freq, amplitude, probeTime float64) float64 {
	dist := sp.Pos.Distance(m.Pos)
	sig := amplitude * attenuation(dist)
	if m.room.AirAbsorption {
		sig *= airAbsorption(freq, dist)
	}
	sig /= math.Sqrt2 // RMS of a sine
	noiseBuf := m.Capture(probeTime, probeTime+1)
	nRMS := noiseBuf.RMS()
	if nRMS <= 0 {
		return 120
	}
	return 20 * math.Log10(sig/nRMS)
}
