package acoustic

import (
	"math"
	"testing"

	"mdn/internal/audio"
	"mdn/internal/dsp"
)

func TestDeviceParamRampEvaluation(t *testing.T) {
	var p deviceParam
	p.schedule(0.002, 1, 3, 0.010) // ramp 0.002 -> 0.010 over [1, 3)
	cases := []struct{ t, want float64 }{
		{0, 0.002},   // before the ramp: base
		{1, 0.002},   // ramp start: from
		{2, 0.006},   // midpoint
		{3, 0.010},   // ramp end: target
		{100, 0.010}, // holds after
	}
	for _, c := range cases {
		if got := p.atBase(0.002, c.t); math.Abs(got-c.want) > 1e-15 {
			t.Errorf("atBase(t=%g) = %g, want %g", c.t, got, c.want)
		}
	}
	// A clearing ramp starts from the value the fault left behind.
	p.schedule(0.002, 5, 6, 0.002)
	if got := p.atBase(0.002, 5); math.Abs(got-0.010) > 1e-15 {
		t.Errorf("clear ramp start = %g, want 0.010 (the faulted value)", got)
	}
	if got := p.atBase(0.002, 7); math.Abs(got-0.002) > 1e-15 {
		t.Errorf("after clear = %g, want base 0.002", got)
	}
}

func TestDeviceParamRejectsBackwardSchedule(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("backward ramp accepted")
		}
	}()
	var p deviceParam
	p.schedule(1, 5, 6, 0)
	p.schedule(1, 2, 3, 0)
}

func TestMicNoiseRampRaisesCaptureFloor(t *testing.T) {
	r := newTestRoom()
	mic := r.AddMicrophone("ctl", Position{0, 0, 0}, 0.001)
	mic.ScheduleNoiseRamp(1, 2, 0.1)

	before := mic.Capture(0, 0.05).RMS()
	after := mic.Capture(3, 3.05).RMS()
	if math.Abs(before-0.001) > 0.0005 {
		t.Errorf("pre-ramp noise rms = %g, want ~0.001", before)
	}
	if math.Abs(after-0.1) > 0.02 {
		t.Errorf("post-ramp noise rms = %g, want ~0.1", after)
	}

	st := mic.StatsAt(3)
	if st.NoiseRMS != 0.1 || st.BaseNoiseRMS != 0.001 || st.Deaf {
		t.Errorf("stats = %+v", st)
	}
}

func TestMicSensitivityRampScalesTonesNotSelfNoise(t *testing.T) {
	r := newTestRoom()
	sp := r.AddSpeaker("sw1", Position{1, 0, 0})
	mic := r.AddMicrophone("ctl", Position{0, 0, 0}, 0.001)
	mic.ScheduleSensitivityRamp(1, 1.5, 0) // deaf from t=1.5

	sp.Play(0.1, audio.Tone{Frequency: 700, Duration: 0.1, Amplitude: 0.5})
	sp.Play(2.1, audio.Tone{Frequency: 700, Duration: 0.1, Amplitude: 0.5})

	healthy := mic.Capture(0.15, 0.2)
	if g := dsp.Goertzel(healthy.Samples, 700, r.SampleRate); g < 100 {
		t.Errorf("healthy mic missed the tone: goertzel = %g", g)
	}
	deaf := mic.Capture(2.15, 2.2)
	if g := dsp.Goertzel(deaf.Samples, 700, r.SampleRate); g > 1 {
		t.Errorf("deaf mic heard the tone: goertzel = %g", g)
	}
	// Electronics hiss survives deafness.
	if rms := deaf.RMS(); math.Abs(rms-0.001) > 0.0005 {
		t.Errorf("deaf mic self-noise rms = %g, want ~0.001", rms)
	}
	if st := mic.StatsAt(2); !st.Deaf || st.Sensitivity != 0 {
		t.Errorf("stats = %+v, want deaf", st)
	}
}

func TestSpeakerDecayAndDetune(t *testing.T) {
	r := newTestRoom()
	sp := r.AddSpeaker("sw1", Position{1, 0, 0})
	mic := r.AddMicrophone("ctl", Position{0, 0, 0}, 0)
	sp.ScheduleAmplitudeDecay(1, 2, 0.5)
	sp.ScheduleDetune(1, 2, 1.05)

	sp.Play(0.1, audio.Tone{Frequency: 700, Duration: 0.1, Amplitude: 0.5})
	sp.Play(3.1, audio.Tone{Frequency: 700, Duration: 0.1, Amplitude: 0.5})

	healthy := mic.Capture(0.15, 0.2)
	if peak := healthy.Peak(); math.Abs(peak-0.5) > 0.05 {
		t.Errorf("healthy peak = %g, want ~0.5", peak)
	}
	aged := mic.Capture(3.15, 3.2)
	if peak := aged.Peak(); math.Abs(peak-0.25) > 0.05 {
		t.Errorf("decayed peak = %g, want ~0.25", peak)
	}
	// The detuned tone lands at 735 Hz, not the commanded 700.
	if g := dsp.Goertzel(aged.Samples, 735, r.SampleRate); g < 50 {
		t.Errorf("detuned tone not at 735 Hz: goertzel = %g", g)
	}
	at700 := dsp.Goertzel(aged.Samples, 700, r.SampleRate)
	at735 := dsp.Goertzel(aged.Samples, 735, r.SampleRate)
	if at700 > at735 {
		t.Errorf("700 Hz (%g) louder than 735 Hz (%g) after detune", at700, at735)
	}
}

// TestDegradedCaptureDeterministic pins the byte-identity contract:
// repeated captures of the same window through a mid-ramp degradation
// render identical waveforms.
func TestDegradedCaptureDeterministic(t *testing.T) {
	r := newTestRoom()
	r.CullThreshold = CullAuto
	sp := r.AddSpeaker("sw1", Position{1, 0, 0})
	mic := r.AddMicrophone("ctl", Position{0, 0, 0}, 0.002)
	mic.ScheduleNoiseRamp(0.5, 2, 0.05)
	mic.ScheduleSensitivityRamp(0.5, 2, 0.3)
	sp.ScheduleDetune(0.5, 2, 1.03)
	sp.Play(1.0, audio.Tone{Frequency: 700, Duration: 0.1, Amplitude: 0.5})

	a := mic.Capture(1.0, 1.05)
	b := mic.Capture(1.0, 1.05)
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d diverged: %g vs %g", i, a.Samples[i], b.Samples[i])
		}
	}
}

// TestCullFloorTracksNoiseRamp: under CullAuto, a tone above the
// original floor but below the ramped floor is culled once the ramp
// lands — the audibility floor recalibrates with the hardware.
func TestCullFloorTracksNoiseRamp(t *testing.T) {
	r := newTestRoom()
	r.CullThreshold = CullAuto
	sp := r.AddSpeaker("sw1", Position{1, 0, 0})
	mic := r.AddMicrophone("ctl", Position{0, 0, 0}, 0.0001)
	mic.ScheduleNoiseRamp(1, 1.5, 0.05)

	// Received amplitude at 1 m is ~0.01: above 0.0001, below 0.05.
	sp.Play(0.1, audio.Tone{Frequency: 700, Duration: 0.1, Amplitude: 0.01})
	sp.Play(2.1, audio.Tone{Frequency: 700, Duration: 0.1, Amplitude: 0.01})

	early := mic.Capture(0.15, 0.2)
	if g := dsp.Goertzel(early.Samples, 700, r.SampleRate); g < 1 {
		t.Errorf("tone culled before the ramp: goertzel = %g", g)
	}
	// The culled window is pure self-noise; its Goertzel magnitude at
	// 700 Hz is noise leakage (~2.5 at 0.05 RMS over 2205 samples),
	// well under the ~11 the tone itself would score.
	late := mic.Capture(2.15, 2.2)
	if g := dsp.Goertzel(late.Samples, 700, r.SampleRate); g > 6 {
		t.Errorf("tone survived a floor it sits under: goertzel = %g", g)
	}
}

func TestRoomMicrophoneAccessors(t *testing.T) {
	r := newTestRoom()
	r.AddMicrophone("a", Position{0, 0, 0}, 0.001)
	r.AddMicrophone("b", Position{1, 0, 0}, 0.002)
	if m := r.Microphone("a"); m == nil || m.Name != "a" {
		t.Fatalf("Microphone(a) = %v", m)
	}
	if m := r.Microphone("zzz"); m != nil {
		t.Fatalf("Microphone(zzz) = %v, want nil", m)
	}
	names := r.MicrophoneNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
}
