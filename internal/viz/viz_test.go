package viz

import (
	"math"
	"strings"
	"testing"
)

func TestCellRange(t *testing.T) {
	if Cell(0) != ' ' {
		t.Errorf("Cell(0) = %q", Cell(0))
	}
	if Cell(1) != '@' {
		t.Errorf("Cell(1) = %q", Cell(1))
	}
	if Cell(-5) != ' ' || Cell(7) != '@' {
		t.Error("out-of-range values should clamp")
	}
	if Cell(math.NaN()) != ' ' {
		t.Error("NaN should clamp to quiet")
	}
	// Monotone ramp.
	prev := -1
	for v := 0.0; v <= 1.0; v += 0.05 {
		idx := strings.IndexByte(ramp, Cell(v))
		if idx < prev {
			t.Fatalf("ramp not monotone at %g", v)
		}
		prev = idx
	}
}

func TestHeatmapShape(t *testing.T) {
	data := make([][]float64, 40)
	for i := range data {
		data[i] = make([]float64, 100)
		data[i][i*2] = 1 // a diagonal streak
	}
	out := Heatmap(data, 10, 50)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 10 {
		t.Fatalf("rows = %d, want 10", len(lines))
	}
	for _, l := range lines {
		if len(l) != 50 {
			t.Fatalf("cols = %d, want 50", len(l))
		}
	}
	// The streak must survive max-pooling: each row has one loud cell.
	for i, l := range lines {
		if !strings.Contains(l, "@") {
			t.Errorf("row %d lost its streak: %q", i, l)
		}
	}
}

func TestHeatmapEmpty(t *testing.T) {
	if !strings.Contains(Heatmap(nil, 5, 5), "empty") {
		t.Error("nil data should render placeholder")
	}
	if !strings.Contains(Heatmap([][]float64{{}}, 5, 5), "empty") {
		t.Error("empty rows should render placeholder")
	}
}

func TestHeatmapFlat(t *testing.T) {
	data := [][]float64{{1, 1}, {1, 1}}
	out := Heatmap(data, 2, 2)
	if len(out) == 0 {
		t.Fatal("flat heatmap should still render")
	}
}

func TestHeatmapNoDownsampleWhenSmall(t *testing.T) {
	data := [][]float64{{0, 1}, {1, 0}}
	out := strings.Split(strings.TrimRight(Heatmap(data, 10, 10), "\n"), "\n")
	if len(out) != 2 || len(out[0]) != 2 {
		t.Fatalf("shape = %dx%d", len(out), len(out[0]))
	}
	if out[0][1] != '@' || out[1][0] != '@' {
		t.Errorf("loud cells misplaced:\n%s", strings.Join(out, "\n"))
	}
}

func TestSpectrogramViewHeader(t *testing.T) {
	out := SpectrogramView("demo", [][]float64{{1}}, 0, 2, 100, 8000, 4, 4)
	if !strings.Contains(out, "demo") || !strings.Contains(out, "0.00s") ||
		!strings.Contains(out, "8000 Hz") {
		t.Errorf("header missing: %s", out)
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Error("empty sparkline should be empty")
	}
	s := Sparkline([]float64{0, 5, 10})
	if len(s) != 3 {
		t.Fatalf("len = %d", len(s))
	}
	if s[0] != ' ' || s[2] != '@' {
		t.Errorf("sparkline = %q", s)
	}
	flat := Sparkline([]float64{3, 3})
	if len(flat) != 2 {
		t.Error("flat input should render")
	}
}
