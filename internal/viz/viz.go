// Package viz renders MDN signal data as terminal graphics: ASCII
// heatmaps for (mel-)spectrograms like the paper's Figures 3b–6, and
// intensity ramps for amplitude data. It exists so the tooling can
// show what the paper's figures show without an image stack.
package viz

import (
	"fmt"
	"math"
	"strings"
)

// ramp is the intensity ramp from quiet to loud.
const ramp = " .:-=+*#%@"

// Cell maps a normalised intensity in [0, 1] to a ramp character.
func Cell(v float64) byte {
	if math.IsNaN(v) || v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	idx := int(v * float64(len(ramp)-1))
	return ramp[idx]
}

// Heatmap renders rows×cols data (rows = time or series, cols =
// frequency bands) as an ASCII heatmap, normalised to the data's dB
// range. Data values are powers (or squared magnitudes); zero and
// negative values clamp to the floor. maxRows/maxCols downsample
// large inputs by max-pooling, preserving transients.
func Heatmap(data [][]float64, maxRows, maxCols int) string {
	if len(data) == 0 || len(data[0]) == 0 {
		return "[empty heatmap]\n"
	}
	rows := len(data)
	cols := len(data[0])
	outRows := rows
	if maxRows > 0 && outRows > maxRows {
		outRows = maxRows
	}
	outCols := cols
	if maxCols > 0 && outCols > maxCols {
		outCols = maxCols
	}
	// Max-pool into the output grid, in dB.
	const floorDB = -100.0
	grid := make([][]float64, outRows)
	minDB, maxDB := math.Inf(1), math.Inf(-1)
	for r := 0; r < outRows; r++ {
		grid[r] = make([]float64, outCols)
		r0 := r * rows / outRows
		r1 := (r + 1) * rows / outRows
		if r1 <= r0 {
			r1 = r0 + 1
		}
		for c := 0; c < outCols; c++ {
			c0 := c * cols / outCols
			c1 := (c + 1) * cols / outCols
			if c1 <= c0 {
				c1 = c0 + 1
			}
			peak := 0.0
			for i := r0; i < r1 && i < rows; i++ {
				for j := c0; j < c1 && j < len(data[i]); j++ {
					if data[i][j] > peak {
						peak = data[i][j]
					}
				}
			}
			db := floorDB
			if peak > 0 {
				db = 10 * math.Log10(peak)
				if db < floorDB {
					db = floorDB
				}
			}
			grid[r][c] = db
			if db < minDB {
				minDB = db
			}
			if db > maxDB {
				maxDB = db
			}
		}
	}
	if maxDB <= minDB {
		maxDB = minDB + 1
	}
	var b strings.Builder
	for _, row := range grid {
		line := make([]byte, len(row))
		for c, db := range row {
			line[c] = Cell((db - minDB) / (maxDB - minDB))
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// SpectrogramView renders a spectrogram-shaped dataset with time on
// the vertical axis (top = start) and labelled frequency extents.
func SpectrogramView(title string, data [][]float64, t0, t1, f0, f1 float64, maxRows, maxCols int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "time %.2fs (top) -> %.2fs (bottom); freq %.0f Hz (left) -> %.0f Hz (right)\n",
		t0, t1, f0, f1)
	b.WriteString(Heatmap(data, maxRows, maxCols))
	return b.String()
}

// Sparkline renders values as a one-line intensity strip — handy for
// queue-length and rate series in CLI output.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	minV, maxV := values[0], values[0]
	for _, v := range values {
		minV = math.Min(minV, v)
		maxV = math.Max(maxV, v)
	}
	if maxV <= minV {
		maxV = minV + 1
	}
	out := make([]byte, len(values))
	for i, v := range values {
		out[i] = Cell((v - minV) / (maxV - minV))
	}
	return string(out)
}
