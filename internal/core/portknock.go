package core

import (
	"fmt"

	"mdn/internal/netsim"
	"mdn/internal/openflow"
)

// PortKnock is the Section 4 state-processing application: the switch
// plays a tone per knock packet (one frequency per knock port), the
// controller runs a finite state machine over the tone sequence, and
// when the knocks arrive in the correct order it installs a flow rule
// opening a previously closed port.
//
// Unlike OpenState, the knock state lives in the MDN controller, not
// in the switch — exactly as the paper implements it.
type PortKnock struct {
	// Sequence is the secret knock: destination ports in order.
	Sequence []uint16
	// OpenRule is the Flow-MOD sent when the sequence completes.
	OpenRule openflow.FlowMod

	voice *Voice
	prog  *openflow.Programmer
	fsm   *FSM
	onset *OnsetFilter
	errs  *ErrorLog

	freqForPort map[uint16]float64
	portForFreq map[float64]uint16

	// Opened reports whether the knock sequence was accepted and the
	// open rule sent.
	Opened bool
	// OpenedAt is when the rule was sent (valid when Opened).
	OpenedAt float64
	// Installed reports the open rule confirmed through the channel
	// (possibly after retries); InstalledAt is when.
	Installed   bool
	InstalledAt float64
	// WrongKnocks counts sequence resets.
	WrongKnocks uint64
	// ProgramFailures counts terminal flow-programming failures.
	ProgramFailures uint64
	// LastErr is the most recent programming failure (nil when none).
	LastErr error
}

// NewPortKnock allocates one frequency per knock port from the plan
// (under the switch's name) and builds the application. Wire its Tap
// into the switch and its HandleWindow into the controller.
func NewPortKnock(plan *FrequencyPlan, switchName string, voice *Voice, ch *openflow.Channel, sequence []uint16, openRule openflow.FlowMod) (*PortKnock, error) {
	if len(sequence) == 0 {
		return nil, fmt.Errorf("core: port knock needs a non-empty sequence")
	}
	// Distinct ports in the sequence each get one frequency.
	distinct := make([]uint16, 0, len(sequence))
	seen := make(map[uint16]bool)
	for _, p := range sequence {
		if !seen[p] {
			seen[p] = true
			distinct = append(distinct, p)
		}
	}
	// Knock tones can land in the same detection window, so they get
	// guard-banded slots.
	freqs, err := plan.AllocateSpaced(switchName+"/portknock", len(distinct), DefaultStride)
	if err != nil {
		return nil, err
	}
	pk := &PortKnock{
		Sequence:    append([]uint16(nil), sequence...),
		OpenRule:    openRule,
		voice:       voice,
		prog:        openflow.NewProgrammer(ch, 2),
		onset:       NewOnsetFilter(),
		freqForPort: make(map[uint16]float64, len(distinct)),
		portForFreq: make(map[float64]uint16, len(distinct)),
	}
	pk.prog.OnResult = func(m openflow.FlowMod, err error) {
		if err != nil {
			pk.recordFailure(err)
			return
		}
		pk.Installed = true
		pk.InstalledAt = ch.Sim().Now()
	}
	for i, p := range distinct {
		pk.freqForPort[p] = freqs[i]
		pk.portForFreq[freqs[i]] = p
	}
	symbols := make([]string, len(sequence))
	for i, p := range sequence {
		symbols[i] = fmt.Sprintf("port%d", p)
	}
	pk.fsm = SequenceFSM(symbols)
	pk.fsm.OnAccept = pk.open
	pk.fsm.OnReset = func(string, string) { pk.WrongKnocks++ }
	return pk, nil
}

// Frequencies returns the knock-port frequencies the controller must
// watch.
func (pk *PortKnock) Frequencies() []float64 {
	out := make([]float64, 0, len(pk.portForFreq))
	for _, p := range distinctOrder(pk.Sequence) {
		out = append(out, pk.freqForPort[p])
	}
	return out
}

func distinctOrder(seq []uint16) []uint16 {
	seen := make(map[uint16]bool)
	var out []uint16
	for _, p := range seq {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// Tap is the switch-side hook: a packet whose destination port is in
// the knock set makes the switch play that port's tone.
func (pk *PortKnock) Tap(pkt *netsim.Packet, _ int) {
	if f, ok := pk.freqForPort[pkt.Flow.DstPort]; ok {
		pk.voice.Play(f)
	}
}

// HandleWindow is the controller-side hook: feed it every detection
// window (wire via Controller.SubscribeWindows).
func (pk *PortKnock) HandleWindow(_ float64, dets []Detection) {
	for _, det := range pk.onset.Step(dets) {
		port, ok := pk.portForFreq[det.Frequency]
		if !ok {
			continue
		}
		pk.fsm.Step(fmt.Sprintf("port%d", port))
	}
}

// Programmer exposes the retrying flow programmer (to tune backoff or
// read its counters).
func (pk *PortKnock) Programmer() *openflow.Programmer { return pk.prog }

// SetErrorLog routes programming failures into a shared log —
// typically the controller's, so they feed its health state.
func (pk *PortKnock) SetErrorLog(l *ErrorLog) { pk.errs = l }

// Accepts returns how many times the full knock sequence has been
// accepted (the FSM re-arms after each accept; Opened latches only
// the first).
func (pk *PortKnock) Accepts() uint64 { return pk.fsm.Accepts }

func (pk *PortKnock) recordFailure(err error) {
	pk.ProgramFailures++
	pk.LastErr = err
	pk.errs.Record(pk.channelNow(), "portknock",
		fmt.Errorf("%w: open rule: %v", ErrFlowProgram, err))
}

func (pk *PortKnock) open() {
	if pk.Opened {
		return
	}
	pk.Opened = true
	pk.OpenedAt = pk.channelNow()
	// Wire-format failures and exhausted retries are recorded, never
	// panicked: the knock FSM and every other application keep
	// running.
	if err := pk.prog.Install(pk.OpenRule); err != nil {
		pk.recordFailure(err)
	}
}

func (pk *PortKnock) channelNow() float64 {
	// The channel's switch shares the simulator; read time through
	// the voice, which holds it.
	return pk.voice.sim.Now()
}

// State exposes the FSM state (for tests and the experiment harness).
func (pk *PortKnock) State() string { return pk.fsm.State() }
