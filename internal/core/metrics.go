package core

import (
	"mdn/internal/telemetry"
)

// controllerMetrics is the controller's telemetry handle set. All
// fields are nil until Instrument is called; every update is nil-safe,
// so an uninstrumented controller pays one pointer test per counter.
type controllerMetrics struct {
	reg         *telemetry.Registry
	wall        telemetry.TimeSource
	windows     *telemetry.Counter
	detections  *telemetry.Counter
	panics      *telemetry.Counter
	quarantines *telemetry.Counter
	decode      *telemetry.Histogram
}

// Metric names the controller registers. Histograms use
// telemetry.DefaultLatencyBuckets (10 µs – 10 s).
//
//	mdn_controller_windows_total      analysed capture windows
//	mdn_controller_detections_total   raw per-window tone detections
//	mdn_controller_handler_panics_total recovered subscriber panics
//	mdn_controller_quarantines_total  circuit-breaker trips
//	mdn_controller_subscribers        registered handlers (gauge)
//	mdn_controller_last_window_end_seconds latest window close (virtual)
//	mdn_controller_decode_seconds     capture+detect wall time per window
//	mdn_dispatch_seconds{subscriber}  per-subscriber handler wall time
//	mdn_wire_*_total{kind,name}       sent/dropped/corrupted per wire
const (
	metricWindows       = "mdn_controller_windows_total"
	metricDetections    = "mdn_controller_detections_total"
	metricPanics        = "mdn_controller_handler_panics_total"
	metricQuarantines   = "mdn_controller_quarantines_total"
	metricSubscribers   = "mdn_controller_subscribers"
	metricLastWindowEnd = "mdn_controller_last_window_end_seconds"
	metricDecode        = "mdn_controller_decode_seconds"
	metricDispatch      = "mdn_dispatch_seconds"
	metricWireSent      = "mdn_wire_sent_total"
	metricWireDropped   = "mdn_wire_dropped_total"
	metricWireCorrupted = "mdn_wire_corrupted_total"
)

// Instrument registers the controller's counters and latency
// histograms with reg and begins recording: window and detection
// counts, decode wall time, per-subscriber dispatch wall time,
// recovered panics and quarantines, and the fault counters of every
// wire registered before or after the call. Instrument may be called
// before or after Start; call it once per controller. A nil registry
// leaves the controller unmetered.
func (c *Controller) Instrument(reg *telemetry.Registry) {
	c.tm = controllerMetrics{
		reg:         reg,
		wall:        telemetry.Wall(),
		windows:     reg.Counter(metricWindows),
		detections:  reg.Counter(metricDetections),
		panics:      reg.Counter(metricPanics),
		quarantines: reg.Counter(metricQuarantines),
		decode:      reg.Histogram(metricDecode, telemetry.DefaultLatencyBuckets),
	}
	reg.Func(metricSubscribers, func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.subs))
	})
	reg.Func(metricLastWindowEnd, func() float64 { return c.health.lastWindowEnd })
	c.mu.Lock()
	for _, s := range c.subs {
		c.instrumentSub(s)
	}
	c.mu.Unlock()
	for _, w := range c.health.wires {
		c.instrumentWire(w)
	}
}

// instrumentSub attaches the per-subscriber dispatch histogram. The
// caller holds c.mu (or is still single-threaded in Instrument).
func (c *Controller) instrumentSub(s *subscriber) {
	if c.tm.reg == nil || s.dispatch != nil {
		return
	}
	s.dispatch = c.tm.reg.Histogram(
		telemetry.Label(metricDispatch, "subscriber", s.name),
		telemetry.DefaultLatencyBuckets)
}

// instrumentWire exposes one registered wire's fault counters as
// func-backed gauges, reading the live counters at dump time — the
// hot path is untouched.
func (c *Controller) instrumentWire(w wireRef) {
	reg := c.tm.reg
	if reg == nil {
		return
	}
	reg.Func(telemetry.Label(metricWireSent, "kind", w.kind, "name", w.name),
		func() float64 { s, _, _ := w.read(); return float64(s) })
	reg.Func(telemetry.Label(metricWireDropped, "kind", w.kind, "name", w.name),
		func() float64 { _, d, _ := w.read(); return float64(d) })
	reg.Func(telemetry.Label(metricWireCorrupted, "kind", w.kind, "name", w.name),
		func() float64 { _, _, k := w.read(); return float64(k) })
}

// Metrics names for application-side series. Each application's
// Instrument method registers under its app/switch label pair:
//
//	mdn_app_onsets_total{app,switch}          confirmed tone onsets
//	mdn_app_events_total{app,switch}          reports/alerts raised (incl. evicted)
//	mdn_app_history_dropped_total{app,switch} history entries evicted by the bound
//	mdn_voice_emitted_total{switch} / mdn_voice_suppressed_total{switch}
//
// Fleet metric names:
//
//	mdn_fleet_workers_busy        workers currently capturing/analysing
//	mdn_fleet_window_seconds      per-window fan-out wall time (all mics)
//	mdn_fleet_stale_windows_total windows re-run after a mid-window watch edit
const (
	metricFleetBusy   = "mdn_fleet_workers_busy"
	metricFleetWindow = "mdn_fleet_window_seconds"
	metricFleetStale  = "mdn_fleet_stale_windows_total"
)

// Streaming-path metric names (see StreamController.Instrument).
// Histograms use telemetry.StreamLatencyBuckets — log-spaced from 1 µs
// so sub-millisecond hop latencies resolve distinct p50/p99.
//
//	mdn_stream_hops_total              processed hop steps
//	mdn_stream_onsets_total            deduplicated tone onsets
//	mdn_stream_capture_errors_total    hops lost to the compaction horizon
//	mdn_stream_detect_latency_seconds  sound arrival → detection (sim time)
//	mdn_stream_hop_seconds             per-hop pipeline wall time
const (
	metricStreamHops          = "mdn_stream_hops_total"
	metricStreamOnsets        = "mdn_stream_onsets_total"
	metricStreamCaptureErrors = "mdn_stream_capture_errors_total"
	metricStreamDetectLatency = "mdn_stream_detect_latency_seconds"
	metricStreamHopWall       = "mdn_stream_hop_seconds"
)

// Device-health metric names (see DeviceMonitor.Instrument). The state
// gauge encodes DeviceState numerically (0 healthy, 1 drifting, 2 deaf,
// 3 detuned, 4 silent); the rest are aggregate event counters.
//
//	mdn_device_state{kind,name}        current DeviceState per device
//	mdn_device_noise_floor{mic}        EWMA bin-noise estimate per microphone
//	mdn_device_transitions_total       device state transitions
//	mdn_device_recalibrations_total    detection-threshold recalibrations
//	mdn_device_quarantines_total       microphones dropped from the fan-out
//	mdn_device_rejoins_total           quarantined microphones readmitted
//	mdn_device_rekeys_total            detuned speakers re-keyed
const (
	metricDeviceState          = "mdn_device_state"
	metricDeviceNoiseFloor     = "mdn_device_noise_floor"
	metricDeviceTransitions    = "mdn_device_transitions_total"
	metricDeviceRecalibrations = "mdn_device_recalibrations_total"
	metricDeviceQuarantines    = "mdn_device_quarantines_total"
	metricDeviceRejoins        = "mdn_device_rejoins_total"
	metricDeviceRekeys         = "mdn_device_rekeys_total"
)

const (
	metricAppOnsets          = "mdn_app_onsets_total"
	metricAppEvents          = "mdn_app_events_total"
	metricAppHistoryDropped  = "mdn_app_history_dropped_total"
	metricVoiceEmitted       = "mdn_voice_emitted_total"
	metricVoiceSuppressed    = "mdn_voice_suppressed_total"
	metricCongestionIncrease = "mdn_congestion_increases_total"
	metricCongestionDecrease = "mdn_congestion_decreases_total"
)

// Sketch-analytics metric names. The update/bytes series appear only
// for sketch-backed counters (exact mode is the historical baseline
// and stays unmetered); the error histogram is observed wherever an
// exact oracle runs alongside a sketch (the traffic sweep).
//
//	mdn_sketch_updates_total{app,switch} weighted sketch updates
//	mdn_sketch_bytes{app,switch}         resident sketch state (gauge)
//	mdn_sketch_estimate_error            relative estimate error vs oracle
//	mdn_traffic_packets_per_second       traffic-engine forwarding rate (wall)
//	mdn_traffic_events_per_second        scheduler event rate (wall)
const (
	MetricSketchUpdates = "mdn_sketch_updates_total"
	MetricSketchBytes   = "mdn_sketch_bytes"
	MetricSketchError   = "mdn_sketch_estimate_error"
	MetricTrafficPPS    = "mdn_traffic_packets_per_second"
	MetricTrafficEPS    = "mdn_traffic_events_per_second"
)

// SketchErrorBuckets are the relative-error bounds for the
// mdn_sketch_estimate_error histogram.
var SketchErrorBuckets = []float64{0, 1e-4, 1e-3, 1e-2, 0.05, 0.1, 0.5, 1}

// instrumentSketchFlow exposes a sketch-backed flow counter's update
// weight and resident bytes. Exact counters register nothing.
func instrumentSketchFlow(reg *telemetry.Registry, app, switchName string, c FlowCounter) {
	sk, ok := c.(*SketchFlowCounter)
	if !ok {
		return
	}
	reg.Func(appLabels(MetricSketchUpdates, app, switchName),
		func() float64 { return float64(sk.Updates()) })
	reg.Func(appLabels(MetricSketchBytes, app, switchName),
		func() float64 { return float64(sk.Bytes()) })
}

// instrumentSketchDistinct is instrumentSketchFlow for distinct
// counters.
func instrumentSketchDistinct(reg *telemetry.Registry, app, switchName string, c DistinctCounter) {
	sk, ok := c.(*SketchDistinctCounter)
	if !ok {
		return
	}
	reg.Func(appLabels(MetricSketchUpdates, app, switchName),
		func() float64 { return float64(sk.Updates()) })
	reg.Func(appLabels(MetricSketchBytes, app, switchName),
		func() float64 { return float64(sk.Bytes()) })
}

// appLabels renders the standard app/switch label pair.
func appLabels(metric, app, switchName string) string {
	return telemetry.Label(metric, "app", app, "switch", switchName)
}
