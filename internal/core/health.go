package core

import (
	"fmt"

	"mdn/internal/mp"
	"mdn/internal/openflow"
)

// HealthState is the controller's degradation level: the supervised
// runtime is Healthy, Degraded (still operating, but losing signal,
// shedding a quarantined app, or seeing recent errors), or Stalled
// (the control loop can no longer act: windows stopped arriving, or
// every subscriber is quarantined).
type HealthState int

// Health states, in degradation order.
const (
	// Healthy: windows flowing, no quarantines, no recent errors, wire
	// loss under the degradation threshold.
	Healthy HealthState = iota
	// Degraded: operating with reduced fidelity — see
	// HealthSnapshot.Reasons.
	Degraded
	// Stalled: the control loop is not acting on the network any more.
	Stalled
)

// String names the health state.
func (s HealthState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Stalled:
		return "stalled"
	default:
		return "unknown"
	}
}

// Health thresholds. They are fields of no struct so a Controller can
// stay zero-configured; override per controller via the exported
// knobs below when a deployment needs different trip points.
const (
	// DefaultStallWindows: this many consecutive expected windows
	// missing marks the controller Stalled.
	DefaultStallWindows = 4
	// DefaultDegradeLossRate: aggregate wire loss (dropped+corrupted
	// over sent) at or above this fraction marks Degraded.
	DefaultDegradeLossRate = 0.05
	// DefaultDegradeErrorAge: application errors younger than this
	// many seconds count as "recent" and mark Degraded.
	DefaultDegradeErrorAge = 5.0
	// DefaultDegradeAmpMargin: mean detected amplitude under
	// margin×MinAmplitude marks Degraded (detections barely clear the
	// floor — the acoustic SNR is eroding).
	DefaultDegradeAmpMargin = 1.25
	// minWireSample: loss rates are not judged until this many
	// messages crossed the wire.
	minWireSample = 20
	// healthRingSize: how many recent windows feed the SNR trend.
	healthRingSize = 64
)

// WireCounters is one control-path element's fault counters (an
// openflow channel or an MP sounder), as exported through Health.
type WireCounters struct {
	// Name identifies the element (typically the switch name).
	Name string `json:"name"`
	// Kind is "channel" or "sounder".
	Kind string `json:"kind"`
	// Sent counts messages pushed into the element.
	Sent uint64 `json:"sent"`
	// Dropped counts messages lost whole to faults.
	Dropped uint64 `json:"dropped"`
	// Corrupted counts messages rejected by the receiving codec.
	Corrupted uint64 `json:"corrupted"`
}

// HealthSnapshot is one observation of the controller's supervised
// runtime. Take it with Controller.Health() on the simulation
// goroutine (or while the simulation is idle).
type HealthSnapshot struct {
	// At is the virtual time of the snapshot.
	At float64 `json:"at"`
	// State is the rolled-up health state.
	State HealthState `json:"-"`
	// StateName is State as a string (for JSON reports).
	StateName string `json:"state"`
	// Reasons explains a non-Healthy state, one clause per trigger.
	Reasons []string `json:"reasons,omitempty"`

	// Windows and Detections mirror the controller counters.
	Windows    uint64 `json:"windows"`
	Detections uint64 `json:"detections"`
	// LastWindowEnd is when the latest analysed window closed.
	LastWindowEnd float64 `json:"last_window_end"`

	// HandlerPanics counts recovered subscriber panics.
	HandlerPanics uint64 `json:"handler_panics"`
	// Quarantined lists subscribers disabled by the circuit breaker.
	Quarantined []string `json:"quarantined,omitempty"`
	// Subscribers counts registered handlers.
	Subscribers int `json:"subscribers"`

	// ErrorsTotal counts every recorded application error;
	// RecentErrors counts those younger than the degradation age.
	ErrorsTotal  uint64 `json:"errors_total"`
	RecentErrors int    `json:"recent_errors"`

	// AmplitudeMargin is the mean detected amplitude over recent
	// windows divided by the detection floor (0 when no recent
	// windows carried detections).
	AmplitudeMargin float64 `json:"amplitude_margin"`

	// Wire aggregates registered channel/sounder fault counters;
	// WireLossRate is (dropped+corrupted)/sent across all of them.
	Wire         []WireCounters `json:"wire,omitempty"`
	WireLossRate float64        `json:"wire_loss_rate"`

	// Devices lists per-device health when a DeviceMonitor is enabled:
	// microphones in fleet order, then watched speakers.
	Devices []DeviceHealth `json:"devices,omitempty"`
}

// wireRef reads one registered element's counters lazily, so Health
// always reports current values.
type wireRef struct {
	name string
	kind string
	read func() (sent, dropped, corrupted uint64)
}

// healthInputs is the controller-side raw material of Health.
type healthInputs struct {
	lastWindowEnd float64
	ring          [healthRingSize]windowStat
	ringN         int // total windows noted (ring index = ringN % size)
	wires         []wireRef

	// Overrides of the Default* thresholds; zero means default.
	StallWindows     float64
	DegradeLossRate  float64
	DegradeErrorAge  float64
	DegradeAmpMargin float64
}

type windowStat struct {
	end    float64
	dets   int
	maxAmp float64
}

// noteWindow records one analysed window's health inputs.
func (c *Controller) noteWindow(end float64, dets []Detection) {
	h := &c.health
	h.lastWindowEnd = end
	maxAmp := 0.0
	for _, d := range dets {
		if d.Amplitude > maxAmp {
			maxAmp = d.Amplitude
		}
	}
	h.ring[h.ringN%healthRingSize] = windowStat{end: end, dets: len(dets), maxAmp: maxAmp}
	h.ringN++
}

// SetHealthThresholds overrides the degradation trip points; zero
// values keep the defaults (DefaultStallWindows and friends).
func (c *Controller) SetHealthThresholds(stallWindows, degradeLossRate, degradeErrorAge, degradeAmpMargin float64) {
	c.health.StallWindows = stallWindows
	c.health.DegradeLossRate = degradeLossRate
	c.health.DegradeErrorAge = degradeErrorAge
	c.health.DegradeAmpMargin = degradeAmpMargin
}

// RegisterChannel adds an openflow control channel's fault counters
// to the Health snapshot.
func (c *Controller) RegisterChannel(name string, ch *openflow.Channel) {
	c.registerWire(wireRef{
		name: name, kind: "channel",
		read: func() (uint64, uint64, uint64) {
			return ch.SentFlowMods, ch.DroppedFlowMods, ch.CorruptedFlowMods
		},
	})
}

// RegisterSounder adds a switch-side MP sounder's fault counters to
// the Health snapshot.
func (c *Controller) RegisterSounder(name string, s *mp.Sounder) {
	c.registerWire(wireRef{
		name: name, kind: "sounder",
		read: func() (uint64, uint64, uint64) {
			return s.Sent, s.Dropped, s.Corrupted
		},
	})
}

// registerWire appends a wire to the health inputs and, if the
// controller is instrumented, exposes its counters immediately.
func (c *Controller) registerWire(w wireRef) {
	c.health.wires = append(c.health.wires, w)
	c.instrumentWire(w)
}

// RegisterVoice is RegisterSounder for a Voice-wrapped sounder.
func (c *Controller) RegisterVoice(name string, v *Voice) {
	c.RegisterSounder(name, v.Sounder())
}

func (h *healthInputs) threshold(v, def float64) float64 {
	if v > 0 {
		return v
	}
	return def
}

// Health rolls the controller's supervision inputs — the window
// watchdog, the detection-amplitude trend, per-app error rates, the
// quarantine list, and registered wire fault counters — into one
// snapshot with a Healthy/Degraded/Stalled verdict.
func (c *Controller) Health() HealthSnapshot {
	h := &c.health
	now := c.sim.Now()
	snap := HealthSnapshot{
		At:            now,
		Windows:       c.Windows,
		Detections:    c.Detections,
		LastWindowEnd: h.lastWindowEnd,
		HandlerPanics: c.HandlerPanics,
		ErrorsTotal:   c.Errors.Total(),
	}

	subs := c.snapshotSubs()
	snap.Subscribers = len(subs)
	for _, s := range subs {
		if s.quarantined {
			snap.Quarantined = append(snap.Quarantined, s.name)
		}
	}

	errAge := h.threshold(h.DegradeErrorAge, DefaultDegradeErrorAge)
	snap.RecentErrors = c.Errors.Since(now - errAge)

	// Recent detection-amplitude margin (SNR trend stand-in): mean of
	// the per-window loudest detection over windows that had any.
	n := h.ringN
	if n > healthRingSize {
		n = healthRingSize
	}
	sum, cnt := 0.0, 0
	for i := 0; i < n; i++ {
		st := h.ring[i]
		if st.dets > 0 {
			sum += st.maxAmp
			cnt++
		}
	}
	floor := c.Detector.MinAmplitude
	if cnt > 0 && floor > 0 {
		snap.AmplitudeMargin = (sum / float64(cnt)) / floor
	}

	// Wire fault counters.
	var sent, lost uint64
	for _, w := range h.wires {
		s, d, k := w.read()
		snap.Wire = append(snap.Wire, WireCounters{
			Name: w.name, Kind: w.kind, Sent: s, Dropped: d, Corrupted: k,
		})
		sent += s
		lost += d + k
	}
	if sent > 0 {
		snap.WireLossRate = float64(lost) / float64(sent)
	}

	// Device health: the monitor's per-device rows, plus the counts the
	// verdict below folds in.
	var micsQuarantined, micsTotal, speakersUnhealthy int
	if m := c.devmon; m != nil {
		snap.Devices = m.Snapshot()
		micsTotal = len(m.mics)
		micsQuarantined = m.MicsQuarantined()
		for _, t := range m.speakers {
			if t.state == DeviceDetuned || t.state == DeviceSilent {
				speakersUnhealthy++
			}
		}
	}

	// Verdict: Stalled beats Degraded beats Healthy.
	stallAfter := h.threshold(h.StallWindows, DefaultStallWindows) * c.Window
	if c.started && now-h.lastWindowEnd > stallAfter {
		snap.Reasons = append(snap.Reasons, fmt.Sprintf(
			"no window analysed for %.3f s (stall threshold %.3f s)", now-h.lastWindowEnd, stallAfter))
		snap.State = Stalled
	}
	if len(subs) > 0 && len(snap.Quarantined) == len(subs) {
		snap.Reasons = append(snap.Reasons, "every subscriber is quarantined")
		snap.State = Stalled
	}
	if micsTotal > 0 && micsQuarantined == micsTotal {
		snap.Reasons = append(snap.Reasons, "every microphone is quarantined")
		snap.State = Stalled
	}
	if snap.State != Stalled {
		if micsQuarantined > 0 {
			snap.Reasons = append(snap.Reasons, fmt.Sprintf(
				"%d of %d microphone(s) quarantined", micsQuarantined, micsTotal))
		}
		if speakersUnhealthy > 0 {
			snap.Reasons = append(snap.Reasons, fmt.Sprintf(
				"%d speaker(s) detuned or silent", speakersUnhealthy))
		}
		if len(snap.Quarantined) > 0 {
			snap.Reasons = append(snap.Reasons, fmt.Sprintf("%d subscriber(s) quarantined", len(snap.Quarantined)))
		}
		if snap.RecentErrors > 0 {
			snap.Reasons = append(snap.Reasons, fmt.Sprintf("%d error(s) in the last %.0f s", snap.RecentErrors, errAge))
		}
		lossTrip := h.threshold(h.DegradeLossRate, DefaultDegradeLossRate)
		if sent >= minWireSample && snap.WireLossRate >= lossTrip {
			snap.Reasons = append(snap.Reasons, fmt.Sprintf(
				"wire loss %.1f%% over %d message(s)", 100*snap.WireLossRate, sent))
		}
		ampTrip := h.threshold(h.DegradeAmpMargin, DefaultDegradeAmpMargin)
		if cnt >= 8 && snap.AmplitudeMargin > 0 && snap.AmplitudeMargin < ampTrip {
			snap.Reasons = append(snap.Reasons, fmt.Sprintf(
				"detection amplitude margin %.2fx of floor (trip %.2fx)", snap.AmplitudeMargin, ampTrip))
		}
		if len(snap.Reasons) > 0 {
			snap.State = Degraded
		}
	}
	snap.StateName = snap.State.String()
	return snap
}
