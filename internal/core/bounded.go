package core

// DefaultHistoryMax bounds application history logs (sweeps, rate
// logs, per-interval samples, alert lists). Long-running deployments
// must not grow without limit; like ErrorLog, histories keep the last
// N entries and count evictions, and the dropped counters surface
// through each application's Instrument method.
//
// The default is generous enough that every experiment and scenario
// in this repo (tens of simulated seconds) sees no eviction at all.
const DefaultHistoryMax = 4096

// appendBounded appends v to s keeping at most max entries (max <= 0
// means DefaultHistoryMax), evicting oldest-first and counting
// evictions in dropped.
func appendBounded[T any](s []T, v T, max int, dropped *uint64) []T {
	if max <= 0 {
		max = DefaultHistoryMax
	}
	s = append(s, v)
	if n := len(s) - max; n > 0 {
		*dropped += uint64(n)
		s = append(s[:0], s[n:]...)
	}
	return s
}
