package core

import (
	"testing"

	"mdn/internal/acoustic"
)

// arrayBed: two zones 8 m apart, one microphone in each, two switches
// reusing the SAME frequency — only the array can attribute tones.
type arrayBed struct {
	*testbed
	micA, micB        *acoustic.Microphone
	voiceA, voiceB    *Voice
	sharedFrequency   float64
	arr               *MicArray
	heardAttributions []ArrayDetection
}

func newArrayBed(t *testing.T) *arrayBed {
	t.Helper()
	tb := newTestbed(95)
	micA := tb.room.AddMicrophone("mic-zone-a", acoustic.Position{X: -4}, 0.0003)
	micB := tb.room.AddMicrophone("mic-zone-b", acoustic.Position{X: 4}, 0.0003)
	voiceA := tb.voiceAt("zone-a-switch", acoustic.Position{X: -4.5})
	voiceB := tb.voiceAt("zone-b-switch", acoustic.Position{X: 4.5})
	shared := 700.0
	det := NewDetector(MethodGoertzel, []float64{shared})
	arr := NewMicArray(tb.sim, det, micA, micB)
	bed := &arrayBed{
		testbed: tb, micA: micA, micB: micB,
		voiceA: voiceA, voiceB: voiceB,
		sharedFrequency: shared, arr: arr,
	}
	arr.Subscribe(func(ad ArrayDetection) {
		bed.heardAttributions = append(bed.heardAttributions, ad)
	})
	return bed
}

func TestMicArrayAttributesZones(t *testing.T) {
	bed := newArrayBed(t)
	bed.arr.Start(0)
	// Zone A plays, then zone B, well separated.
	bed.sim.Schedule(0.5, func() { bed.voiceA.Play(bed.sharedFrequency) })
	bed.sim.Schedule(1.5, func() { bed.voiceB.Play(bed.sharedFrequency) })
	bed.sim.RunUntil(2.5)

	if len(bed.heardAttributions) < 2 {
		t.Fatalf("attributions = %+v", bed.heardAttributions)
	}
	// Group attributions by second.
	var earlyMics, lateMics []string
	for _, ad := range bed.heardAttributions {
		if ad.Time < 1.0 {
			earlyMics = append(earlyMics, ad.Mic)
		} else {
			lateMics = append(lateMics, ad.Mic)
		}
	}
	for _, m := range earlyMics {
		if m != "mic-zone-a" {
			t.Errorf("early tone attributed to %s, want mic-zone-a", m)
		}
	}
	for _, m := range lateMics {
		if m != "mic-zone-b" {
			t.Errorf("late tone attributed to %s, want mic-zone-b", m)
		}
	}
	if len(earlyMics) == 0 || len(lateMics) == 0 {
		t.Errorf("missing attributions: early=%v late=%v", earlyMics, lateMics)
	}
}

func TestMicArrayAmplitudeMap(t *testing.T) {
	bed := newArrayBed(t)
	bed.sim.Schedule(0.5, func() { bed.voiceA.Play(bed.sharedFrequency) })
	bed.sim.RunUntil(1)
	got := bed.arr.AnalyseOnce(0.5, 0.56)
	if len(got) != 1 {
		t.Fatalf("got %+v", got)
	}
	ad := got[0]
	if ad.Mic != "mic-zone-a" {
		t.Errorf("attributed to %s", ad.Mic)
	}
	// The near mic (0.5 m) must report a far larger amplitude than
	// the far one (8.5 m) — if the far one heard it at all.
	if far, ok := ad.Amplitudes["mic-zone-b"]; ok {
		if ad.Amplitudes["mic-zone-a"] < 5*far {
			t.Errorf("amplitude separation too small: %v", ad.Amplitudes)
		}
	}
	if ad.Amplitude != ad.Amplitudes["mic-zone-a"] {
		t.Error("top-level amplitude should be the attributed mic's")
	}
}

func TestMicArrayStop(t *testing.T) {
	bed := newArrayBed(t)
	bed.arr.Start(0)
	bed.sim.RunUntil(0.3)
	bed.arr.Stop()
	w := bed.arr.Windows
	bed.sim.RunUntil(1)
	if bed.arr.Windows != w {
		t.Error("array kept polling after Stop")
	}
}

func TestMicArrayRequiresMics(t *testing.T) {
	tb := newTestbed(96)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMicArray(tb.sim, NewDetector(MethodGoertzel, nil))
}
