package core

import (
	"errors"
	"sync"
)

// Typed error taxonomy for the controller runtime, mirroring the wire
// layer's ErrTooLarge/ErrBadMessage: callers branch on the class with
// errors.Is and read the detail from the wrapped message. Applications
// never panic on these — they are recorded (see ErrorLog) and surfaced
// through the controller's Health snapshot.
var (
	// ErrHandlerPanic reports a subscriber that panicked inside its
	// window or detection handler; the panic was recovered and the
	// other subscribers kept running.
	ErrHandlerPanic = errors.New("core: subscriber panicked")
	// ErrQuarantined reports a subscriber disabled by the circuit
	// breaker after too many consecutive panics.
	ErrQuarantined = errors.New("core: subscriber quarantined")
	// ErrFlowProgram reports a flow-programming operation that failed
	// terminally (validation failure, or retries exhausted over a
	// lossy control channel).
	ErrFlowProgram = errors.New("core: flow programming failed")
)

// AppError is one recorded application-level failure.
type AppError struct {
	// Time is the virtual time of the failure.
	Time float64
	// App names the failing application or subscriber.
	App string
	// Err is the typed error (wraps one of the taxonomy roots).
	Err error
}

// ErrorLog accumulates typed application errors with a bounded
// history. The controller owns one; applications share it so per-app
// failures feed the health state machine. A nil *ErrorLog is valid
// and records nothing, so error paths need no nil checks.
//
// The log is safe for concurrent use.
type ErrorLog struct {
	// Max bounds the retained history; older entries are evicted
	// (counters keep counting). Zero means DefaultErrorLogMax.
	Max int

	mu    sync.Mutex
	errs  []AppError
	total uint64
}

// DefaultErrorLogMax is the retained-history bound of a zero-valued
// ErrorLog.
const DefaultErrorLogMax = 256

// NewErrorLog returns an empty log with the default bound.
func NewErrorLog() *ErrorLog { return &ErrorLog{} }

// Record appends one failure.
func (l *ErrorLog) Record(time float64, app string, err error) {
	if l == nil || err == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	max := l.Max
	if max <= 0 {
		max = DefaultErrorLogMax
	}
	l.errs = append(l.errs, AppError{Time: time, App: app, Err: err})
	if len(l.errs) > max {
		l.errs = append(l.errs[:0], l.errs[len(l.errs)-max:]...)
	}
}

// Total returns how many errors were ever recorded (including evicted
// ones).
func (l *ErrorLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Errors returns a copy of the retained history, oldest first.
func (l *ErrorLog) Errors() []AppError {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]AppError, len(l.errs))
	copy(out, l.errs)
	return out
}

// Since counts retained errors recorded at or after time t — the
// "recent error rate" input of the health state machine.
func (l *ErrorLog) Since(t float64) int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for i := len(l.errs) - 1; i >= 0; i-- {
		if l.errs[i].Time < t {
			break
		}
		n++
	}
	return n
}
