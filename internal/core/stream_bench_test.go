package core

import (
	"testing"

	"mdn/internal/acoustic"
	"mdn/internal/audio"
)

// BenchmarkStreamHop measures one steady-state streaming step — hop
// capture, SPSC hand-off, sliding transform, filter, dedup, dispatch —
// at the default 10 ms hop and at hop == window (the batch-equivalent
// setting), for both detection methods, against the batch loop's
// per-window analyse. The wall-time budget: a 10 ms hop must cost well
// under 10 ms of wall clock or the streaming path cannot keep real
// time; allocs/op must be 0 (CI gates the equivalent test).
func BenchmarkStreamHop(b *testing.B) {
	for _, bench := range []struct {
		name   string
		method Method
		hop    float64
	}{
		{"goertzel/hop=10ms", MethodGoertzel, 0.010},
		{"goertzel/hop=window", MethodGoertzel, DefaultWindow},
		{"fft/hop=10ms", MethodFFT, 0.010},
		{"fft/hop=window", MethodFFT, DefaultWindow},
	} {
		b.Run(bench.name, func(b *testing.B) {
			tb := newTestbed(31)
			freqs := tb.plan.MustAllocate("s1", 4)
			sp := tb.room.AddSpeaker("s1", acoustic.Position{X: 1})
			sp.Play(0, audio.Tone{Frequency: freqs[0], Duration: 1e6,
				Amplitude: acoustic.SPLToAmplitude(60)})
			ctrl := NewController(tb.sim, tb.mic, NewDetector(bench.method, freqs))
			ctrl.SubscribeWindows(func(float64, []Detection) {})
			s := ctrl.StartStream(0, bench.hop)
			next := bench.hop
			step := func() {
				s.step(next-bench.hop, next)
				next += bench.hop
			}
			for i := 0; i < 10; i++ {
				step()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				step()
			}
		})
	}

	b.Run("batch/window=50ms", func(b *testing.B) {
		tb := newTestbed(31)
		freqs := tb.plan.MustAllocate("s1", 4)
		sp := tb.room.AddSpeaker("s1", acoustic.Position{X: 1})
		sp.Play(0, audio.Tone{Frequency: freqs[0], Duration: 1e6,
			Amplitude: acoustic.SPLToAmplitude(60)})
		ctrl := tb.controller(freqs)
		ctrl.SubscribeWindows(func(float64, []Detection) {})
		next := ctrl.Window
		for i := 0; i < 10; i++ {
			ctrl.analyse(next-ctrl.Window, next)
			next += ctrl.Window
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctrl.analyse(next-ctrl.Window, next)
			next += ctrl.Window
		}
	})
}
