package core

import (
	"fmt"

	"mdn/internal/acoustic"
	"mdn/internal/netsim"
)

// App is the controller-side face of an MDN application: the
// frequencies it needs watched and its per-window handler. Every
// application in this package implements it.
type App interface {
	// Frequencies returns the tones the controller must watch for
	// this application.
	Frequencies() []float64
	// HandleWindow consumes one detection window.
	HandleWindow(windowStart float64, dets []Detection)
}

// IntervalApp is an App that also runs its own interval accounting
// (heavy hitter, port scan, spread detection). Its Start both
// subscribes HandleWindow and schedules the interval ticker, so the
// Manager defers wiring to it.
type IntervalApp interface {
	App
	// Start subscribes the app to the controller and begins interval
	// accounting at time at.
	Start(ctrl *Controller, at float64)
}

// Manager assembles a controller and a set of applications: it owns
// the watch list, wires each app's window handler, and starts
// everything at one instant. It removes the deployment boilerplate
// that every experiment and example otherwise repeats — and enforces
// that all deployed frequencies come from one plan, the coexistence
// rule of Section 3 ("each task uses a different set of frequencies
// and the listening application knows the frequency mappings").
type Manager struct {
	// Ctrl is the managed controller.
	Ctrl *Controller
	// Plan validates that deployed frequencies are allocated.
	Plan *FrequencyPlan

	apps    []App
	started bool
}

// NewManager builds a manager around a microphone with an empty
// Goertzel detector; Deploy extends the watch list per app.
func NewManager(sim *netsim.Sim, mic *acoustic.Microphone, plan *FrequencyPlan) *Manager {
	return &Manager{
		Ctrl: NewController(sim, mic, NewDetector(MethodGoertzel, nil)),
		Plan: plan,
	}
}

// Deploy registers an application: its frequencies join the watch
// list (validated against the plan when one is set) and its window
// handler is subscribed. IntervalApps are started when the manager
// starts. Applications with an error sink share the controller's
// error log, so their failures feed its health state. Deploying after
// Start is an error.
func (m *Manager) Deploy(app App) error {
	if m.started {
		return fmt.Errorf("core: cannot deploy after Start")
	}
	freqs := app.Frequencies()
	if len(freqs) == 0 {
		return fmt.Errorf("core: app %T watches no frequencies", app)
	}
	if m.Plan != nil {
		for _, f := range freqs {
			if _, _, ok := m.Plan.Identify(f, m.Plan.DefaultTolerance()); !ok {
				return fmt.Errorf("core: app %T frequency %g Hz is not allocated in the plan", app, f)
			}
		}
	}
	if sink, ok := app.(interface{ SetErrorLog(*ErrorLog) }); ok {
		sink.SetErrorLog(m.Ctrl.Errors)
	}
	m.Ctrl.Detector.AddWatch(freqs...)
	m.apps = append(m.apps, app)
	return nil
}

// Start wires interval apps and begins polling at time at.
func (m *Manager) Start(at float64) {
	if m.started {
		return
	}
	m.started = true
	m.wireApps(at)
	m.Ctrl.Start(at)
}

// StartStream wires interval apps and begins streaming analysis at
// time at with the given hop (see Controller.StartStream). Deployed
// applications run unchanged: they receive one window batch per hop
// through the same subscriptions Start would give them.
func (m *Manager) StartStream(at, hop float64) *StreamController {
	if m.started {
		return m.Ctrl.Stream()
	}
	m.started = true
	m.wireApps(at)
	return m.Ctrl.StartStream(at, hop)
}

func (m *Manager) wireApps(at float64) {
	for _, app := range m.apps {
		if ia, ok := app.(IntervalApp); ok {
			ia.Start(m.Ctrl, at)
		} else {
			m.Ctrl.SubscribeWindowsNamed(fmt.Sprintf("%T", app), app.HandleWindow)
		}
	}
}

// Stop halts polling.
func (m *Manager) Stop() { m.Ctrl.Stop() }

// Health returns the managed controller's health snapshot.
func (m *Manager) Health() HealthSnapshot { return m.Ctrl.Health() }

// Apps returns the deployed applications.
func (m *Manager) Apps() []App {
	out := make([]App, len(m.apps))
	copy(out, m.apps)
	return out
}

// Compile-time checks that the package's applications satisfy the
// interfaces the Manager dispatches on.
var (
	_ App         = (*PortKnock)(nil)
	_ App         = (*QueueMonitor)(nil)
	_ App         = (*MelodyCodec)(nil)
	_ IntervalApp = (*HeavyHitter)(nil)
	_ IntervalApp = (*PortScan)(nil)
	_ IntervalApp = (*SpreadDetector)(nil)
)
