package core

import (
	"mdn/internal/acoustic"
	"mdn/internal/audio"
)

// Background-noise helpers shared by the noisy-telemetry experiments
// (Figures 4b and 4d play Sia's "Cheap Thrills" as interference; the
// fan experiments need datacenter and office ambiences). Each returns
// a ready NoiseSource the caller can reposition before adding to the
// room.

// PopSongNoise builds the paper's pop-song interference: loopDur
// seconds of the deterministic 90 BPM arrangement at the given peak
// level, placed 2 m from the origin by default.
func PopSongNoise(sampleRate, loopDur, level float64, seed int64) *acoustic.NoiseSource {
	return &acoustic.NoiseSource{
		Name: "cheap-thrills",
		Pos:  acoustic.Position{X: -1.5, Y: 1.5},
		Loop: audio.PopSong(level, seed).Render(sampleRate, loopDur),
		Gain: 1,
	}
}

// DatacenterNoise builds the ~85 dBA machine-room ambience used by
// the Figure 6/7 experiments.
func DatacenterNoise(sampleRate, loopDur float64, seed int64) *acoustic.NoiseSource {
	rms := acoustic.SPLToAmplitude(85)
	return &acoustic.NoiseSource{
		Name: "datacenter",
		Pos:  acoustic.Position{X: 0, Y: 2},
		Loop: audio.DatacenterAmbience(sampleRate, loopDur, rms, seed),
		Gain: 1,
	}
}

// OfficeNoise builds the ~50 dBA office ambience.
func OfficeNoise(sampleRate, loopDur float64, seed int64) *acoustic.NoiseSource {
	rms := acoustic.SPLToAmplitude(50)
	return &acoustic.NoiseSource{
		Name: "office",
		Pos:  acoustic.Position{X: 0, Y: 2},
		Loop: audio.OfficeAmbience(sampleRate, loopDur, rms, seed),
		Gain: 1,
	}
}

// FanSource places a running server fan in the room as a noise
// source (the Section 7 foreground fan). level is the blade-pass
// amplitude at the fan.
func FanSource(sampleRate, loopDur, level float64, pos acoustic.Position, seed int64) (*acoustic.NoiseSource, audio.Fan) {
	fan := audio.DefaultFan(level, seed)
	return &acoustic.NoiseSource{
		Name: "server-fan",
		Pos:  pos,
		Loop: fan.Render(sampleRate, loopDur),
		Gain: 1,
	}, fan
}
