package core

import (
	"encoding/binary"
	"hash/fnv"
	"net/netip"

	"mdn/internal/netsim"
	"mdn/internal/telemetry"
)

// SpreadMode selects what the spread detector watches.
type SpreadMode int

// Spread-detection modes, from the open problem at the end of the
// paper's Section 5.
const (
	// ModeSuperspreader watches one source host: the switch maps the
	// *destination* address of each of its packets to a frequency,
	// so a k-superspreader (a host contacting more than k unique
	// destinations in an interval) sounds like many distinct tones.
	ModeSuperspreader SpreadMode = iota
	// ModeDDoSVictim watches one destination host: the switch maps
	// the *source* address of packets to it onto frequencies, so a
	// DDoS victim (contacted by more than k unique sources) sounds
	// like many distinct tones.
	ModeDDoSVictim
)

// String names the mode.
func (m SpreadMode) String() string {
	switch m {
	case ModeSuperspreader:
		return "superspreader"
	case ModeDDoSVictim:
		return "ddos-victim"
	default:
		return "unknown"
	}
}

// SpreadDetector implements the paper's Section 5 open problem:
// k-superspreader and DDoS-victim detection "by mapping destination
// addresses to frequencies". One watched host, one bank of
// address-hash buckets; the controller counts distinct bucket tones
// per interval against k. Bucket collisions make the distinct count a
// lower bound, so the detector never over-alerts due to hashing.
type SpreadDetector struct {
	// Mode selects superspreader or DDoS-victim semantics.
	Mode SpreadMode
	// Watched is the host under observation (the suspected spreader
	// or the protected victim).
	Watched netip.Addr
	// K is the distinct-counterpart threshold per interval.
	K int
	// Interval is the counting window in seconds.
	Interval float64

	voice *Voice
	freqs []float64
	onset *OnsetFilter

	distinct DistinctCounter

	// HistoryMax bounds Alerts and History to the last N entries each
	// (0 means DefaultHistoryMax).
	HistoryMax int
	// HistoryDropped counts entries evicted from Alerts and History by
	// the bound.
	HistoryDropped uint64

	// Alerts accumulates raised alerts (last HistoryMax).
	Alerts []SpreadAlert
	// History records per-interval distinct counts, bounded like
	// Alerts.
	History []netsim.Sample

	events uint64 // alerts raised, including evicted ones
}

// SpreadAlert is one spread detection.
type SpreadAlert struct {
	// Time is the end of the alerting interval.
	Time float64
	// Distinct is the number of distinct counterpart buckets heard
	// (a lower bound on distinct hosts).
	Distinct int
}

// NewSpreadDetector allocates buckets frequencies under the switch's
// name and builds the detector.
func NewSpreadDetector(plan *FrequencyPlan, switchName string, voice *Voice, mode SpreadMode, watched netip.Addr, buckets, k int) (*SpreadDetector, error) {
	freqs, err := plan.AllocateSpaced(switchName+"/spread-"+mode.String(), buckets, DefaultStride)
	if err != nil {
		return nil, err
	}
	return &SpreadDetector{
		Mode:     mode,
		Watched:  watched,
		K:        k,
		Interval: 1.0,
		voice:    voice,
		freqs:    freqs,
		onset:    NewOnsetFilter(),
		distinct: NewExactDistinctCounter(),
	}, nil
}

// SetDistinctCounter swaps the distinct-bucket store — e.g. a
// SketchDistinctCounter for bounded-memory operation. Call before
// Start.
func (sd *SpreadDetector) SetDistinctCounter(c DistinctCounter) {
	if c != nil {
		sd.distinct = c
	}
}

// DistinctCounter returns the active distinct-bucket store.
func (sd *SpreadDetector) DistinctCounter() DistinctCounter { return sd.distinct }

// Frequencies returns the bucket tones the controller must watch.
func (sd *SpreadDetector) Frequencies() []float64 {
	out := make([]float64, len(sd.freqs))
	copy(out, sd.freqs)
	return out
}

func addrHash(a netip.Addr) uint64 {
	h := fnv.New64a()
	b := a.As4()
	h.Write(b[:])
	var pad [2]byte
	binary.BigEndian.PutUint16(pad[:], 0x5d5d)
	h.Write(pad[:])
	return h.Sum64()
}

// BucketOf returns the bucket a counterpart address hashes to.
func (sd *SpreadDetector) BucketOf(counterpart netip.Addr) int {
	return int(addrHash(counterpart) % uint64(len(sd.freqs)))
}

// Tap is the switch-side hook: packets involving the watched host
// play their counterpart's bucket tone.
func (sd *SpreadDetector) Tap(pkt *netsim.Packet, _ int) {
	var counterpart netip.Addr
	switch sd.Mode {
	case ModeSuperspreader:
		if pkt.Flow.Src != sd.Watched {
			return
		}
		counterpart = pkt.Flow.Dst
	case ModeDDoSVictim:
		if pkt.Flow.Dst != sd.Watched {
			return
		}
		counterpart = pkt.Flow.Src
	default:
		return
	}
	sd.voice.Play(sd.freqs[sd.BucketOf(counterpart)])
}

// Start begins interval accounting on the controller's clock.
func (sd *SpreadDetector) Start(ctrl *Controller, at float64) {
	ctrl.SubscribeWindows(sd.HandleWindow)
	ctrl.Sim().Every(at+sd.Interval, sd.Interval, func(now float64) {
		sd.closeInterval(now)
	})
}

// HandleWindow consumes one detection window.
func (sd *SpreadDetector) HandleWindow(_ float64, dets []Detection) {
	for _, det := range sd.onset.Step(dets) {
		for _, f := range sd.freqs {
			if f == det.Frequency {
				sd.distinct.Observe(FreqKey(f))
				break
			}
		}
	}
}

func (sd *SpreadDetector) closeInterval(now float64) {
	distinct := sd.distinct.Distinct()
	sd.History = appendBounded(sd.History, netsim.Sample{Time: now, Value: float64(distinct)},
		sd.HistoryMax, &sd.HistoryDropped)
	if distinct > sd.K {
		sd.events++
		sd.Alerts = appendBounded(sd.Alerts, SpreadAlert{Time: now, Distinct: distinct},
			sd.HistoryMax, &sd.HistoryDropped)
	}
	sd.distinct.Reset()
}

// Instrument exposes the detector's counters under
// app="spread-<mode>", switch=switchName.
func (sd *SpreadDetector) Instrument(reg *telemetry.Registry, switchName string) {
	app := "spread-" + sd.Mode.String()
	reg.Func(appLabels(metricAppOnsets, app, switchName),
		func() float64 { return float64(sd.onset.Onsets) })
	reg.Func(appLabels(metricAppEvents, app, switchName),
		func() float64 { return float64(sd.events) })
	reg.Func(appLabels(metricAppHistoryDropped, app, switchName),
		func() float64 { return float64(sd.HistoryDropped) })
	instrumentSketchDistinct(reg, app, switchName, sd.distinct)
}
