package core

import (
	"strings"
	"testing"
	"testing/quick"

	"mdn/internal/acoustic"
	"mdn/internal/netsim"
	"mdn/internal/openflow"
)

func TestKnockGeneratorDeterministic(t *testing.T) {
	a := NewKnockGenerator([]byte("shared-secret"))
	b := NewKnockGenerator([]byte("shared-secret"))
	s1 := a.SequenceAt(42)
	s2 := b.SequenceAt(42)
	if !equalPorts(s1, s2) {
		t.Errorf("same secret+time differ: %v vs %v", s1, s2)
	}
	if len(s1) != 3 {
		t.Errorf("length = %d", len(s1))
	}
}

func TestKnockGeneratorRotates(t *testing.T) {
	kg := NewKnockGenerator([]byte("s"))
	early := kg.SequenceAt(10) // epoch 0
	late := kg.SequenceAt(70)  // epoch 2
	if equalPorts(early, late) {
		t.Error("sequences did not rotate across epochs")
	}
	// Within one epoch the sequence is stable.
	if !equalPorts(kg.SequenceAt(1), kg.SequenceAt(29)) {
		t.Error("sequence changed within an epoch")
	}
}

func TestKnockGeneratorSecretMatters(t *testing.T) {
	a := NewKnockGenerator([]byte("alpha"))
	b := NewKnockGenerator([]byte("beta"))
	if equalPorts(a.SequenceAt(0), b.SequenceAt(0)) {
		t.Error("different secrets produced the same sequence")
	}
}

func TestKnockGeneratorPortBoundsProperty(t *testing.T) {
	kg := NewKnockGenerator([]byte("bounds"))
	kg.PortBase = 50000
	kg.PortRange = 64
	f := func(at float64) bool {
		if at < 0 {
			at = -at
		}
		for _, p := range kg.SequenceAt(at) {
			if p < 50000 || p >= 50064 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestKnockGeneratorConsecutiveDistinct(t *testing.T) {
	kg := NewKnockGenerator([]byte("x"))
	kg.PortRange = 2 // tiny range forces collisions
	kg.Length = 6
	for at := 0.0; at < 300; at += 30 {
		seq := kg.SequenceAt(at)
		for i := 1; i < len(seq); i++ {
			if seq[i] == seq[i-1] {
				t.Fatalf("consecutive duplicate at t=%g: %v", at, seq)
			}
		}
	}
}

func TestKnockGeneratorVerifyWindow(t *testing.T) {
	kg := NewKnockGenerator([]byte("v"))
	seq := kg.SequenceAt(35) // epoch 1
	if !kg.Verify(40, seq) {
		t.Error("current-epoch sequence rejected")
	}
	if !kg.Verify(65, seq) {
		t.Error("previous-epoch sequence rejected (skew window)")
	}
	if kg.Verify(100, seq) {
		t.Error("two-epoch-old sequence accepted")
	}
	if kg.Verify(40, seq[:2]) {
		t.Error("truncated sequence accepted")
	}
}

func TestKnockGeneratorStringHidesSecret(t *testing.T) {
	kg := NewKnockGenerator([]byte("hunter2"))
	if strings.Contains(kg.String(), "hunter2") {
		t.Error("String leaks the secret")
	}
}

func TestRotatingKnockEndToEnd(t *testing.T) {
	// The constructive §4 claim: knocker and controller share a
	// secret; the knocker derives this epoch's sequence, the
	// controller builds its FSM from the same derivation, and the
	// port opens.
	kg := NewKnockGenerator([]byte("end-to-end"))
	kg.PortBase = 7000
	kg.PortRange = 16
	seq := kg.SequenceAt(0)

	kb := newKnockBed(t, seq)
	for i, p := range seq {
		kb.knock(0.5+0.5*float64(i), p)
	}
	kb.sendData(3.0)
	kb.sim.RunUntil(4)
	if !kb.pk.Opened {
		t.Fatalf("derived sequence %v did not open the port (state %s)", seq, kb.pk.State())
	}
	if kb.h2.RxPackets != 1 {
		t.Errorf("rx = %d", kb.h2.RxPackets)
	}
	// An attacker replaying an old epoch's sequence fails
	// verification at the generator level.
	if kg.Verify(120, seq) {
		t.Error("stale sequence verified")
	}
}

// Guard: the generated sequences stay usable by PortKnock (distinct
// enough for frequency allocation).
func TestRotatingKnockAllocates(t *testing.T) {
	kg := NewKnockGenerator([]byte("alloc"))
	plan := DefaultPlan()
	tb := newTestbed(600)
	voice := tb.voiceAt("s1", acoustic.Position{X: 1})
	pk, err := NewPortKnock(plan, "s1", voice, openflow.NewChannel(tb.sim, netsim.NewSwitch(tb.sim, "sX"), 0),
		kg.SequenceAt(0), openflow.FlowMod{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pk.Frequencies()) == 0 {
		t.Error("no frequencies allocated")
	}
}
