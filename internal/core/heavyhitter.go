package core

import (
	"sort"

	"mdn/internal/netsim"
	"mdn/internal/telemetry"
)

// HeavyHitter is the Section 5 telemetry application: the switch
// hashes each packet's five-tuple onto its frequency set and plays
// the bucket's tone (rate-limited by the Voice); the controller
// counts tone onsets per bucket per interval and flags buckets whose
// count crosses a threshold. The measurement is passive (no packet
// modification), routing- and topology-oblivious — the properties the
// paper claims for Music-Defined Telemetry.
type HeavyHitter struct {
	// Interval is the counting window in seconds.
	Interval float64
	// Threshold is the onset count within one interval that flags a
	// bucket as a heavy hitter.
	Threshold int

	voice *Voice
	freqs []float64
	onset *OnsetFilter

	counter    FlowCounter
	intervalAt float64

	// HistoryMax bounds Reports and History to the last N entries
	// each (0 means DefaultHistoryMax).
	HistoryMax int
	// HistoryDropped counts entries evicted from Reports and History
	// by the bound.
	HistoryDropped uint64

	// Reports accumulates flagged buckets (last HistoryMax).
	Reports []HHReport
	// History records per-interval counts for plotting (Figure 4a-b),
	// bounded like Reports.
	History []HHSample

	events uint64 // reports raised, including evicted ones
}

// HHReport is one heavy-hitter detection.
type HHReport struct {
	// Time is the end of the flagging interval.
	Time float64
	// Frequency is the bucket tone.
	Frequency float64
	// Bucket is the index within the switch's frequency set.
	Bucket int
	// Count is the onset count in the interval.
	Count int
}

// HHSample is one interval's per-bucket counts.
type HHSample struct {
	// Time is the interval end.
	Time float64
	// Counts maps bucket index to onset count.
	Counts map[int]int
}

// NewHeavyHitter allocates buckets frequencies for the switch and
// builds the application. Wire Tap into the switch, HandleWindow into
// the controller, and call Start to begin interval accounting.
func NewHeavyHitter(plan *FrequencyPlan, switchName string, voice *Voice, buckets int) (*HeavyHitter, error) {
	// Bucket tones of concurrent flows overlap constantly; use
	// guard-banded slots.
	freqs, err := plan.AllocateSpaced(switchName+"/heavyhitter", buckets, DefaultStride)
	if err != nil {
		return nil, err
	}
	return &HeavyHitter{
		Interval:  1.0,
		Threshold: 5,
		voice:     voice,
		freqs:     freqs,
		onset:     NewOnsetFilter(),
		counter:   NewExactFlowCounter(),
	}, nil
}

// SetFlowCounter swaps the per-interval counting store — e.g. a
// SketchFlowCounter for bounded-memory operation. Call before Start;
// any accumulated counts stay in the old store.
func (hh *HeavyHitter) SetFlowCounter(c FlowCounter) {
	if c != nil {
		hh.counter = c
	}
}

// Counter returns the active counting store.
func (hh *HeavyHitter) Counter() FlowCounter { return hh.counter }

// Frequencies returns the bucket tones the controller must watch.
func (hh *HeavyHitter) Frequencies() []float64 {
	out := make([]float64, len(hh.freqs))
	copy(out, hh.freqs)
	return out
}

// BucketOf returns the bucket index a flow hashes to.
func (hh *HeavyHitter) BucketOf(flow netsim.FiveTuple) int {
	return int(flow.Hash() % uint64(len(hh.freqs)))
}

// Tap is the switch-side hook: hash the flow, play the bucket tone.
func (hh *HeavyHitter) Tap(pkt *netsim.Packet, _ int) {
	hh.voice.Play(hh.freqs[hh.BucketOf(pkt.Flow)])
}

// Start begins interval accounting on the controller's clock.
func (hh *HeavyHitter) Start(ctrl *Controller, at float64) {
	hh.intervalAt = at
	ctrl.SubscribeWindows(hh.HandleWindow)
	ctrl.Sim().Every(at+hh.Interval, hh.Interval, func(now float64) {
		hh.closeInterval(now)
	})
}

// HandleWindow consumes one detection window.
func (hh *HeavyHitter) HandleWindow(_ float64, dets []Detection) {
	for _, det := range hh.onset.Step(dets) {
		hh.counter.Add(FreqKey(det.Frequency), 1)
	}
}

func (hh *HeavyHitter) closeInterval(now float64) {
	sample := HHSample{Time: now}
	for i, f := range hh.freqs {
		c := int(hh.counter.Estimate(FreqKey(f)))
		if c > 0 {
			// History retains each interval's map, so quiet intervals
			// allocate none at all.
			if sample.Counts == nil {
				sample.Counts = make(map[int]int)
			}
			sample.Counts[i] = c
		}
		if c >= hh.Threshold {
			hh.events++
			hh.Reports = appendBounded(hh.Reports, HHReport{
				Time: now, Frequency: f, Bucket: i, Count: c,
			}, hh.HistoryMax, &hh.HistoryDropped)
		}
	}
	hh.History = appendBounded(hh.History, sample, hh.HistoryMax, &hh.HistoryDropped)
	hh.counter.Reset()
}

// Instrument exposes the application's counters under
// app="heavyhitter", switch=switchName.
func (hh *HeavyHitter) Instrument(reg *telemetry.Registry, switchName string) {
	reg.Func(appLabels(metricAppOnsets, "heavyhitter", switchName),
		func() float64 { return float64(hh.onset.Onsets) })
	reg.Func(appLabels(metricAppEvents, "heavyhitter", switchName),
		func() float64 { return float64(hh.events) })
	reg.Func(appLabels(metricAppHistoryDropped, "heavyhitter", switchName),
		func() float64 { return float64(hh.HistoryDropped) })
	instrumentSketchFlow(reg, "heavyhitter", switchName, hh.counter)
}

// FlaggedBuckets returns the distinct flagged bucket indices, sorted.
func (hh *HeavyHitter) FlaggedBuckets() []int {
	seen := make(map[int]bool)
	for _, r := range hh.Reports {
		seen[r.Bucket] = true
	}
	out := make([]int, 0, len(seen))
	for b := range seen {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}
