package core

import (
	"math"

	"mdn/internal/sketch"
)

// The telemetry applications originally kept exact per-interval maps:
// one entry per active tone. That is fine for a lab switch and fatal
// for a fleet counting millions of flows, so the counting state is
// pluggable: exact maps stay the default (and the accuracy oracle in
// sweeps), while sketch-backed counters bound memory with explicit
// (epsilon, delta) and precision knobs. Both sides key on uint64 —
// tone frequencies go through FreqKey — so the hot paths never touch
// strings or interfaces beyond one method call.

// FlowCounter is the per-key frequency store behind HeavyHitter.
type FlowCounter interface {
	// Add records n occurrences of key.
	Add(key uint64, n uint64)
	// Estimate returns the (possibly approximate) count for key.
	// Sketch implementations overestimate only.
	Estimate(key uint64) uint64
	// Reset clears counts for the next interval, reusing storage.
	Reset()
	// Bytes is the resident size of the counting state.
	Bytes() int
	// Updates is the total Add weight since the last Reset.
	Updates() uint64
}

// DistinctCounter is the distinct-key store behind PortScan and
// SpreadDetector.
type DistinctCounter interface {
	// Observe records one occurrence of key.
	Observe(key uint64)
	// Distinct returns the (possibly approximate) number of distinct
	// keys observed since the last Reset.
	Distinct() int
	// Reset clears state for the next interval, reusing storage.
	Reset()
	// Bytes is the resident size of the counting state.
	Bytes() int
	// Updates is the number of Observe calls since the last Reset.
	Updates() uint64
}

// FreqKey maps a tone frequency onto the counter key space.
func FreqKey(freq float64) uint64 { return math.Float64bits(freq) }

// exactEntryBytes approximates the resident cost of one Go map entry
// (key, value, bucket overhead) for Bytes reporting.
const exactEntryBytes = 48

// ExactFlowCounter is the exact map-backed FlowCounter — the default
// and the accuracy oracle for sketch sweeps. Reset clears the map in
// place, so steady-state intervals allocate nothing.
type ExactFlowCounter struct {
	counts  map[uint64]uint64
	updates uint64
}

// NewExactFlowCounter returns an empty exact counter.
func NewExactFlowCounter() *ExactFlowCounter {
	return &ExactFlowCounter{counts: make(map[uint64]uint64)}
}

// Add implements FlowCounter.
func (e *ExactFlowCounter) Add(key uint64, n uint64) {
	e.counts[key] += n
	e.updates += n
}

// Estimate implements FlowCounter (exactly, here).
func (e *ExactFlowCounter) Estimate(key uint64) uint64 { return e.counts[key] }

// Reset implements FlowCounter, retaining the map's storage.
func (e *ExactFlowCounter) Reset() {
	clear(e.counts)
	e.updates = 0
}

// Bytes implements FlowCounter.
func (e *ExactFlowCounter) Bytes() int { return len(e.counts) * exactEntryBytes }

// Updates implements FlowCounter.
func (e *ExactFlowCounter) Updates() uint64 { return e.updates }

// Keys returns the number of tracked keys.
func (e *ExactFlowCounter) Keys() int { return len(e.counts) }

// Each visits every (key, count) pair in unspecified order — the
// oracle-side iteration sketch sweeps use to build ground truth.
func (e *ExactFlowCounter) Each(fn func(key, count uint64)) {
	for k, c := range e.counts {
		fn(k, c)
	}
}

// SketchFlowCounter is a count-min-backed FlowCounter with the
// sketch's one-sided (epsilon, delta) guarantee.
type SketchFlowCounter struct {
	cms *sketch.CountMin
}

// NewSketchFlowCounter builds a conservative-update count-min counter
// with relative error epsilon at confidence 1-delta.
func NewSketchFlowCounter(epsilon, delta float64, seed uint64) (*SketchFlowCounter, error) {
	cms, err := sketch.NewCountMin(epsilon, delta, seed)
	if err != nil {
		return nil, err
	}
	cms.Conservative = true
	return &SketchFlowCounter{cms: cms}, nil
}

// Sketch returns the underlying count-min sketch (for merging shards).
func (s *SketchFlowCounter) Sketch() *sketch.CountMin { return s.cms }

// Add implements FlowCounter.
func (s *SketchFlowCounter) Add(key uint64, n uint64) { s.cms.Update(key, n) }

// Estimate implements FlowCounter (an overestimate by at most
// epsilon*N with probability 1-delta).
func (s *SketchFlowCounter) Estimate(key uint64) uint64 { return s.cms.Estimate(key) }

// Reset implements FlowCounter, zeroing the cells in place.
func (s *SketchFlowCounter) Reset() { s.cms.Reset() }

// Bytes implements FlowCounter.
func (s *SketchFlowCounter) Bytes() int { return s.cms.Bytes() }

// Updates implements FlowCounter.
func (s *SketchFlowCounter) Updates() uint64 { return s.cms.Weight() }

// ExactDistinctCounter is the exact set-backed DistinctCounter.
type ExactDistinctCounter struct {
	seen    map[uint64]struct{}
	updates uint64
}

// NewExactDistinctCounter returns an empty exact distinct counter.
func NewExactDistinctCounter() *ExactDistinctCounter {
	return &ExactDistinctCounter{seen: make(map[uint64]struct{})}
}

// Observe implements DistinctCounter.
func (e *ExactDistinctCounter) Observe(key uint64) {
	e.seen[key] = struct{}{}
	e.updates++
}

// Distinct implements DistinctCounter (exactly, here).
func (e *ExactDistinctCounter) Distinct() int { return len(e.seen) }

// Reset implements DistinctCounter, retaining the set's storage.
func (e *ExactDistinctCounter) Reset() {
	clear(e.seen)
	e.updates = 0
}

// Bytes implements DistinctCounter.
func (e *ExactDistinctCounter) Bytes() int { return len(e.seen) * exactEntryBytes }

// Updates implements DistinctCounter.
func (e *ExactDistinctCounter) Updates() uint64 { return e.updates }

// SketchDistinctCounter is a HyperLogLog-backed DistinctCounter with
// standard error 1.04/sqrt(2^precision).
type SketchDistinctCounter struct {
	hll *sketch.HyperLogLog
}

// NewSketchDistinctCounter builds an HLL distinct counter at the given
// precision (registers = 2^precision).
func NewSketchDistinctCounter(precision uint8, seed uint64) (*SketchDistinctCounter, error) {
	hll, err := sketch.NewHyperLogLog(precision, seed)
	if err != nil {
		return nil, err
	}
	return &SketchDistinctCounter{hll: hll}, nil
}

// Sketch returns the underlying HyperLogLog (for merging shards).
func (s *SketchDistinctCounter) Sketch() *sketch.HyperLogLog { return s.hll }

// Observe implements DistinctCounter.
func (s *SketchDistinctCounter) Observe(key uint64) { s.hll.Add(key) }

// Distinct implements DistinctCounter (within ~1.04/sqrt(m) relative
// error).
func (s *SketchDistinctCounter) Distinct() int {
	return int(s.hll.Estimate() + 0.5)
}

// Reset implements DistinctCounter, zeroing registers in place.
func (s *SketchDistinctCounter) Reset() { s.hll.Reset() }

// Bytes implements DistinctCounter.
func (s *SketchDistinctCounter) Bytes() int { return s.hll.Bytes() }

// Updates implements DistinctCounter.
func (s *SketchDistinctCounter) Updates() uint64 { return s.hll.Updates() }
