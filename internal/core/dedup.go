package core

// EdgeDedup collapses per-window tone presence into rising-edge
// onsets with hysteresis: a frequency fires once when its amplitude
// first reaches Threshold and cannot fire again until the amplitude
// has fallen below Release (a fraction of the threshold). A tone that
// straddles a window or hop boundary is therefore one onset, not one
// per window — the duplicate-detection bug class the once-per-interval
// PortScan fix in PR 4 hit at the application layer, closed here at
// the detection layer.
//
// The release level sits *below* the attack threshold (a Schmitt
// trigger) so a borderline tone whose amplitude estimate wobbles
// around MinAmplitude — self-noise flips it across the floor window to
// window — does not retrigger on every wobble. That is also why the
// filter's post-threshold detections are the wrong input: dedup needs
// the sub-threshold amplitude estimates to see the release crossing.
//
// An EdgeDedup tracks one amplitude vector (one frequency per index,
// fixed order) and is not safe for concurrent use.
type EdgeDedup struct {
	// Threshold is the attack level: index i fires when amps[i] rises
	// to >= Threshold while inactive.
	Threshold float64
	// Release is the re-arm level: index i goes inactive when amps[i]
	// falls below Release. It must be <= Threshold; the gap is the
	// hysteresis band in which state holds.
	Release float64

	active []bool
}

// DefaultHysteresis is the default release fraction: a tone re-arms
// once its amplitude falls below half the attack threshold.
const DefaultHysteresis = 0.5

// NewEdgeDedup builds a dedup over n frequencies with the given attack
// threshold and the default release of DefaultHysteresis × threshold.
func NewEdgeDedup(n int, threshold float64) *EdgeDedup {
	return &EdgeDedup{
		Threshold: threshold,
		Release:   DefaultHysteresis * threshold,
		active:    make([]bool, n),
	}
}

// Step consumes one window's pre-threshold amplitude vector (same
// length and order every call) and invokes fire for each index whose
// amplitude rose through the attack level this window. It allocates
// nothing.
//
// floor raises the attack level for this window only — pass the same
// relative floor the detection filter computed (a fraction of the
// window's loudest watched amplitude) so spectral leakage from a loud
// tone cannot fire a phantom onset at a neighbouring frequency. The
// release comparison always uses the raw Release level: a tone masked
// below a loud window's floor but still physically sounding must not
// re-arm and fire again when the masker stops.
func (e *EdgeDedup) Step(amps []float64, floor float64, fire func(i int)) {
	attack := e.Threshold
	if floor > attack {
		attack = floor
	}
	for i, a := range amps {
		switch {
		case !e.active[i] && a >= attack:
			e.active[i] = true
			if fire != nil {
				fire(i)
			}
		case e.active[i] && a < e.Release:
			e.active[i] = false
		}
	}
}

// Active reports whether index i is currently in its active burst
// (fired, not yet released).
func (e *EdgeDedup) Active(i int) bool { return e.active[i] }

// Reset clears all activity state, re-arming every index.
func (e *EdgeDedup) Reset() {
	for i := range e.active {
		e.active[i] = false
	}
}
