package core

import (
	"fmt"
	"testing"

	"mdn/internal/acoustic"
	"mdn/internal/netsim"
)

// TestHeartbeatUnderFaultInjection sweeps wire drop rates over the
// heartbeat pipeline with a device death mid-run. At every rate the
// monitor must raise the death alert within its documented
// AlertDeadline of the death; at 0% it must raise exactly one alert
// and none before the death.
func TestHeartbeatUnderFaultInjection(t *testing.T) {
	const death = 6.0
	for _, drop := range []float64{0, 0.1, 0.3, 0.5} {
		drop := drop
		t.Run(fmt.Sprintf("drop=%.0f%%", 100*drop), func(t *testing.T) {
			tb := newTestbed(410)
			v := tb.voiceAt("s1", acoustic.Position{X: 1})
			if drop > 0 {
				v.Sounder().InjectFaults(netsim.Faults{DropProb: drop, Seed: 411})
			}
			hb := NewHeartbeat()
			f, err := hb.Register(tb.plan, "s1", v)
			if err != nil {
				t.Fatal(err)
			}
			ctrl := tb.controller(hb.Frequencies())
			hb.Start(ctrl, 0)
			ctrl.Start(0)
			ticker, err := hb.StartDevice(tb.sim, f, 0.2)
			if err != nil {
				t.Fatal(err)
			}
			tb.sim.After(death, ticker.Stop)
			tb.sim.RunUntil(death + hb.AlertDeadline() + 1)

			if drop == 0 {
				if len(hb.Alerts) != 1 {
					t.Fatalf("alerts = %+v, want exactly one at 0%% drop", hb.Alerts)
				}
				if hb.Alerts[0].Time < death {
					t.Errorf("false alarm at t=%g, before the death at t=%g", hb.Alerts[0].Time, death)
				}
			}
			// At every rate: some alert within the documented deadline
			// of the death. (Lossy runs may alert early — dropped beats
			// are indistinguishable from death, and that alert never
			// clears because no beat follows.)
			deadline := death + hb.AlertDeadline()
			got := false
			for _, a := range hb.Alerts {
				if a.Time <= deadline {
					got = true
				}
			}
			if !got {
				t.Errorf("no alert by t=%g (deadline) at %.0f%% drop; alerts=%+v",
					deadline, 100*drop, hb.Alerts)
			}
		})
	}
}
