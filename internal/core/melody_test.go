package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"mdn/internal/acoustic"
)

func TestMelodyEncodeShape(t *testing.T) {
	tb := newTestbed(80)
	mc, err := NewMelodyCodec(tb.plan, "s1")
	if err != nil {
		t.Fatal(err)
	}
	tones, err := mc.Encode([]byte{0xAB})
	if err != nil {
		t.Fatal(err)
	}
	// start, hi nibble, lo nibble, start.
	if len(tones) != 4 {
		t.Fatalf("tones = %v", tones)
	}
	freqs := mc.Frequencies()
	if tones[0] != freqs[0] || tones[3] != freqs[0] {
		t.Error("message not framed by start markers")
	}
	if tones[1] != freqs[1+0xA] || tones[2] != freqs[1+0xB] {
		t.Errorf("nibble tones wrong: %v", tones)
	}
}

func TestMelodyRejectsOversize(t *testing.T) {
	tb := newTestbed(81)
	mc, err := NewMelodyCodec(tb.plan, "s1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mc.Encode(make([]byte, 65)); err != ErrMelodyTooLong {
		t.Errorf("err = %v, want ErrMelodyTooLong", err)
	}
}

func TestMelodyDecodeSymbolStream(t *testing.T) {
	// Pure decode logic: feed the symbol stream directly.
	tb := newTestbed(82)
	mc, err := NewMelodyCodec(tb.plan, "s1")
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("ok!")
	tones, _ := mc.Encode(msg)
	for _, f := range tones {
		mc.consume(f)
	}
	if len(mc.Messages) != 1 || !bytes.Equal(mc.Messages[0], msg) {
		t.Fatalf("decoded %q", mc.Messages)
	}
}

func TestMelodyDecodeSymbolStreamProperty(t *testing.T) {
	tb := newTestbed(83)
	mc, err := NewMelodyCodec(tb.plan, "s1")
	if err != nil {
		t.Fatal(err)
	}
	f := func(msg []byte) bool {
		if len(msg) == 0 || len(msg) > 64 {
			return true
		}
		mc.Messages = nil
		tones, err := mc.Encode(msg)
		if err != nil {
			return false
		}
		for _, fr := range tones {
			mc.consume(fr)
		}
		return len(mc.Messages) == 1 && bytes.Equal(mc.Messages[0], msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMelodyIgnoresPreambleGarbage(t *testing.T) {
	tb := newTestbed(84)
	mc, err := NewMelodyCodec(tb.plan, "s1")
	if err != nil {
		t.Fatal(err)
	}
	// Nibble tones before any start marker must be ignored.
	mc.consume(mc.nibbles[3])
	mc.consume(mc.nibbles[7])
	tones, _ := mc.Encode([]byte{0x42})
	for _, f := range tones {
		mc.consume(f)
	}
	if len(mc.Messages) != 1 || mc.Messages[0][0] != 0x42 {
		t.Fatalf("decoded %v", mc.Messages)
	}
}

func TestMelodyOverAir(t *testing.T) {
	// Full loop: transmit through the room, decode at the
	// controller.
	tb := newTestbed(85)
	voice := tb.voiceAt("s1", acoustic.Position{X: 1.5})
	mc, err := NewMelodyCodec(tb.plan, "s1")
	if err != nil {
		t.Fatal(err)
	}
	ctrl := tb.controller(mc.Frequencies())
	ctrl.SubscribeWindows(mc.HandleWindow)
	ctrl.Start(0)

	msg := []byte{0xDE, 0xAD}
	last, err := mc.Transmit(voice, 0.5, msg)
	if err != nil {
		t.Fatal(err)
	}
	tb.sim.RunUntil(last + 1)

	if len(mc.Messages) != 1 {
		t.Fatalf("decoded %d messages, want 1", len(mc.Messages))
	}
	if !bytes.Equal(mc.Messages[0], msg) {
		t.Errorf("decoded % x, want % x", mc.Messages[0], msg)
	}
}

func TestMelodyTwoMessagesOverAir(t *testing.T) {
	tb := newTestbed(86)
	voice := tb.voiceAt("s1", acoustic.Position{X: 1.5})
	mc, err := NewMelodyCodec(tb.plan, "s1")
	if err != nil {
		t.Fatal(err)
	}
	ctrl := tb.controller(mc.Frequencies())
	ctrl.SubscribeWindows(mc.HandleWindow)
	ctrl.Start(0)

	m1 := []byte{0x01}
	m2 := []byte{0x55} // repeated nibble: exercises same-tone pacing
	end1, err := mc.Transmit(voice, 0.5, m1)
	if err != nil {
		t.Fatal(err)
	}
	end2, err := mc.Transmit(voice, end1+1, m2)
	if err != nil {
		t.Fatal(err)
	}
	tb.sim.RunUntil(end2 + 1)

	if len(mc.Messages) != 2 {
		t.Fatalf("decoded %d messages, want 2 (%v)", len(mc.Messages), mc.Messages)
	}
	if !bytes.Equal(mc.Messages[0], m1) || !bytes.Equal(mc.Messages[1], m2) {
		t.Errorf("decoded %v", mc.Messages)
	}
}

func TestMelodyString(t *testing.T) {
	tb := newTestbed(87)
	mc, err := NewMelodyCodec(tb.plan, "s1")
	if err != nil {
		t.Fatal(err)
	}
	if mc.String() == "" {
		t.Error("empty String()")
	}
}
