package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"mdn/internal/acoustic"
)

func TestMelodyEncodeShape(t *testing.T) {
	tb := newTestbed(80)
	mc, err := NewMelodyCodec(tb.plan, "s1")
	if err != nil {
		t.Fatal(err)
	}
	tones, err := mc.Encode([]byte{0xAB})
	if err != nil {
		t.Fatal(err)
	}
	// start, hi nibble, lo nibble, start.
	if len(tones) != 4 {
		t.Fatalf("tones = %v", tones)
	}
	freqs := mc.Frequencies()
	if tones[0] != freqs[0] || tones[3] != freqs[0] {
		t.Error("message not framed by start markers")
	}
	if tones[1] != freqs[1+0xA] || tones[2] != freqs[1+0xB] {
		t.Errorf("nibble tones wrong: %v", tones)
	}
}

func TestMelodyRejectsOversize(t *testing.T) {
	tb := newTestbed(81)
	mc, err := NewMelodyCodec(tb.plan, "s1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mc.Encode(make([]byte, 65)); err != ErrMelodyTooLong {
		t.Errorf("err = %v, want ErrMelodyTooLong", err)
	}
}

func TestMelodyRejectsEmpty(t *testing.T) {
	// An empty message's frame (start,start) cannot be told apart from
	// the terminator+opener between two adjacent messages, so encode
	// rejects it with a typed error instead of letting decode silently
	// drop it.
	tb := newTestbed(88)
	mc, err := NewMelodyCodec(tb.plan, "s1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mc.Encode(nil); err != ErrMelodyEmpty {
		t.Errorf("Encode(nil) err = %v, want ErrMelodyEmpty", err)
	}
	if _, err := mc.Encode([]byte{}); err != ErrMelodyEmpty {
		t.Errorf("Encode([]) err = %v, want ErrMelodyEmpty", err)
	}
}

func TestMelodyDecodeOverflowBounded(t *testing.T) {
	// A noisy channel that loses every terminating start marker must
	// not grow the decode state without limit: after MaxMelodyBytes
	// the partial is abandoned and the decoder waits to re-frame.
	tb := newTestbed(89)
	mc, err := NewMelodyCodec(tb.plan, "s1")
	if err != nil {
		t.Fatal(err)
	}
	mc.consume(mc.start)
	for i := 0; i < 10*MaxMelodyBytes; i++ {
		mc.consume(mc.nibbles[i%16])
		if len(mc.current) > MaxMelodyBytes {
			t.Fatalf("decode state grew to %d bytes", len(mc.current))
		}
	}
	if mc.Overflows == 0 {
		t.Error("overflow not counted")
	}
	if len(mc.Messages) != 0 {
		t.Errorf("overflowed stream decoded %d messages", len(mc.Messages))
	}
	// The decoder re-frames at the next start marker.
	msg := []byte{0x5A}
	tones, _ := mc.Encode(msg)
	for _, f := range tones {
		mc.consume(f)
	}
	if len(mc.Messages) != 1 || !bytes.Equal(mc.Messages[0], msg) {
		t.Fatalf("post-overflow decode = %v", mc.Messages)
	}
}

func TestMelodyMessagesBounded(t *testing.T) {
	tb := newTestbed(90)
	mc, err := NewMelodyCodec(tb.plan, "s1")
	if err != nil {
		t.Fatal(err)
	}
	mc.MessagesMax = 3
	for i := 0; i < 5; i++ {
		tones, _ := mc.Encode([]byte{byte(i)})
		for _, f := range tones {
			mc.consume(f)
		}
	}
	if len(mc.Messages) != 3 {
		t.Fatalf("kept %d messages, want 3", len(mc.Messages))
	}
	if mc.Messages[0][0] != 2 || mc.Messages[2][0] != 4 {
		t.Errorf("kept wrong window: %v", mc.Messages)
	}
	if mc.MessagesDropped != 2 {
		t.Errorf("dropped = %d, want 2", mc.MessagesDropped)
	}
}

func TestMelodyDecodeSymbolStream(t *testing.T) {
	// Pure decode logic: feed the symbol stream directly.
	tb := newTestbed(82)
	mc, err := NewMelodyCodec(tb.plan, "s1")
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("ok!")
	tones, _ := mc.Encode(msg)
	for _, f := range tones {
		mc.consume(f)
	}
	if len(mc.Messages) != 1 || !bytes.Equal(mc.Messages[0], msg) {
		t.Fatalf("decoded %q", mc.Messages)
	}
}

func TestMelodyDecodeSymbolStreamProperty(t *testing.T) {
	tb := newTestbed(83)
	mc, err := NewMelodyCodec(tb.plan, "s1")
	if err != nil {
		t.Fatal(err)
	}
	f := func(msg []byte) bool {
		if len(msg) == 0 || len(msg) > 64 {
			return true
		}
		mc.Messages = nil
		tones, err := mc.Encode(msg)
		if err != nil {
			return false
		}
		for _, fr := range tones {
			mc.consume(fr)
		}
		return len(mc.Messages) == 1 && bytes.Equal(mc.Messages[0], msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMelodyIgnoresPreambleGarbage(t *testing.T) {
	tb := newTestbed(84)
	mc, err := NewMelodyCodec(tb.plan, "s1")
	if err != nil {
		t.Fatal(err)
	}
	// Nibble tones before any start marker must be ignored.
	mc.consume(mc.nibbles[3])
	mc.consume(mc.nibbles[7])
	tones, _ := mc.Encode([]byte{0x42})
	for _, f := range tones {
		mc.consume(f)
	}
	if len(mc.Messages) != 1 || mc.Messages[0][0] != 0x42 {
		t.Fatalf("decoded %v", mc.Messages)
	}
}

func TestMelodyOverAir(t *testing.T) {
	// Full loop: transmit through the room, decode at the
	// controller.
	tb := newTestbed(85)
	voice := tb.voiceAt("s1", acoustic.Position{X: 1.5})
	mc, err := NewMelodyCodec(tb.plan, "s1")
	if err != nil {
		t.Fatal(err)
	}
	ctrl := tb.controller(mc.Frequencies())
	ctrl.SubscribeWindows(mc.HandleWindow)
	ctrl.Start(0)

	msg := []byte{0xDE, 0xAD}
	last, err := mc.Transmit(voice, 0.5, msg)
	if err != nil {
		t.Fatal(err)
	}
	tb.sim.RunUntil(last + 1)

	if len(mc.Messages) != 1 {
		t.Fatalf("decoded %d messages, want 1", len(mc.Messages))
	}
	if !bytes.Equal(mc.Messages[0], msg) {
		t.Errorf("decoded % x, want % x", mc.Messages[0], msg)
	}
}

func TestMelodyTwoMessagesOverAir(t *testing.T) {
	tb := newTestbed(86)
	voice := tb.voiceAt("s1", acoustic.Position{X: 1.5})
	mc, err := NewMelodyCodec(tb.plan, "s1")
	if err != nil {
		t.Fatal(err)
	}
	ctrl := tb.controller(mc.Frequencies())
	ctrl.SubscribeWindows(mc.HandleWindow)
	ctrl.Start(0)

	m1 := []byte{0x01}
	m2 := []byte{0x55} // repeated nibble: exercises same-tone pacing
	end1, err := mc.Transmit(voice, 0.5, m1)
	if err != nil {
		t.Fatal(err)
	}
	end2, err := mc.Transmit(voice, end1+1, m2)
	if err != nil {
		t.Fatal(err)
	}
	tb.sim.RunUntil(end2 + 1)

	if len(mc.Messages) != 2 {
		t.Fatalf("decoded %d messages, want 2 (%v)", len(mc.Messages), mc.Messages)
	}
	if !bytes.Equal(mc.Messages[0], m1) || !bytes.Equal(mc.Messages[1], m2) {
		t.Errorf("decoded %v", mc.Messages)
	}
}

// TestMelodyOverAirProperty round-trips randomly generated messages
// through the full acoustic loop — encode, voice, room, controller,
// decode — including bytes whose nibbles repeat (0x33, 0x55), which
// exercise the same-tone pacing and the onset filter's release
// hysteresis back to back.
func TestMelodyOverAirProperty(t *testing.T) {
	tb := newTestbed(88)
	voice := tb.voiceAt("s1", acoustic.Position{X: 1.5})
	mc, err := NewMelodyCodec(tb.plan, "s1")
	if err != nil {
		t.Fatal(err)
	}
	ctrl := tb.controller(mc.Frequencies())
	ctrl.Retention = 2
	ctrl.SubscribeWindows(mc.HandleWindow)
	ctrl.Start(0)

	rng := rand.New(rand.NewSource(880))
	var sent [][]byte
	at := 0.5
	for trial := 0; trial < 6; trial++ {
		msg := make([]byte, 1+rng.Intn(4))
		for i := range msg {
			msg[i] = byte(rng.Intn(256))
		}
		// Force a repeated-nibble byte into every other message.
		if trial%2 == 0 {
			msg[rng.Intn(len(msg))] = []byte{0x33, 0x55, 0xAA}[rng.Intn(3)]
		}
		end, err := mc.Transmit(voice, at, msg)
		if err != nil {
			t.Fatal(err)
		}
		sent = append(sent, msg)
		at = end + 1
	}
	tb.sim.RunUntil(at + 1)

	if len(mc.Messages) != len(sent) {
		t.Fatalf("decoded %d messages, want %d (%v)", len(mc.Messages), len(sent), mc.Messages)
	}
	for i, msg := range sent {
		if !bytes.Equal(mc.Messages[i], msg) {
			t.Errorf("message %d: decoded % x, want % x", i, mc.Messages[i], msg)
		}
	}
}

// TestMelodyOverAirTruncated cuts a transmission mid-message — the
// tail tones, terminator included, never play — and then sends a
// fresh message. The codec is unframed beyond the start marker, so a
// truncation at a byte boundary is indistinguishable from a shorter
// message; the property is weaker but real: anything delivered for
// the truncated attempt is a strict prefix of the original, and the
// next message re-frames and decodes byte-exactly.
func TestMelodyOverAirTruncated(t *testing.T) {
	tb := newTestbed(89)
	voice := tb.voiceAt("s1", acoustic.Position{X: 1.5})
	mc, err := NewMelodyCodec(tb.plan, "s1")
	if err != nil {
		t.Fatal(err)
	}
	ctrl := tb.controller(mc.Frequencies())
	ctrl.SubscribeWindows(mc.HandleWindow)
	ctrl.Start(0)

	// Play only the first half of the victim's tone sequence.
	victim := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	tones, err := mc.Encode(victim)
	if err != nil {
		t.Fatal(err)
	}
	slot := voice.MinGap + 0.01
	cut := len(tones) / 2
	for i, f := range tones[:cut] {
		f := f
		tb.sim.Schedule(0.5+float64(i)*slot, func() { voice.Play(f) })
	}
	cutEnd := 0.5 + float64(cut)*slot

	fresh := []byte{0xCA, 0xFE}
	end, err := mc.Transmit(voice, cutEnd+1, fresh)
	if err != nil {
		t.Fatal(err)
	}
	tb.sim.RunUntil(end + 1)

	if len(mc.Messages) == 0 {
		t.Fatal("fresh message after truncation never decoded")
	}
	last := mc.Messages[len(mc.Messages)-1]
	if !bytes.Equal(last, fresh) {
		t.Errorf("post-truncation message: % x, want % x", last, fresh)
	}
	for _, m := range mc.Messages[:len(mc.Messages)-1] {
		if len(m) >= len(victim) || !bytes.Equal(m, victim[:len(m)]) {
			t.Errorf("truncated artifact % x is not a strict prefix of % x", m, victim)
		}
	}
}

// FuzzMelodyOverAir fuzzes the full acoustic round trip: any short
// non-empty payload must come back byte-exact through the simulated
// room.
func FuzzMelodyOverAir(f *testing.F) {
	f.Add([]byte{0x42})
	f.Add([]byte{0x33, 0x33})
	f.Add([]byte{0xDE, 0xAD, 0xBE, 0xEF})
	f.Fuzz(func(t *testing.T, msg []byte) {
		if len(msg) == 0 || len(msg) > 4 {
			t.Skip()
		}
		tb := newTestbed(90)
		voice := tb.voiceAt("s1", acoustic.Position{X: 1.5})
		mc, err := NewMelodyCodec(tb.plan, "s1")
		if err != nil {
			t.Fatal(err)
		}
		ctrl := tb.controller(mc.Frequencies())
		ctrl.Retention = 2
		ctrl.SubscribeWindows(mc.HandleWindow)
		ctrl.Start(0)

		end, err := mc.Transmit(voice, 0.5, msg)
		if err != nil {
			t.Fatal(err)
		}
		tb.sim.RunUntil(end + 1)

		if len(mc.Messages) != 1 || !bytes.Equal(mc.Messages[0], msg) {
			t.Fatalf("sent % x, decoded %v", msg, mc.Messages)
		}
	})
}

func TestMelodyString(t *testing.T) {
	tb := newTestbed(87)
	mc, err := NewMelodyCodec(tb.plan, "s1")
	if err != nil {
		t.Fatal(err)
	}
	if mc.String() == "" {
		t.Error("empty String()")
	}
}
