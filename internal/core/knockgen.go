package core

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// KnockGenerator derives time-rotating port-knock sequences from a
// shared secret, TOTP-style: HMAC-SHA256(secret, epoch) selects the
// knock ports for each time window. Section 4 presents port knocking
// "as a form of authentication"; a static sequence is a replayable
// password, while a rotating sequence bounds replay to one epoch —
// the constructive version of the paper's claim.
type KnockGenerator struct {
	// EpochSeconds is the rotation period (default 30, like TOTP).
	EpochSeconds float64
	// Length is the knock-sequence length (default 3, like the
	// paper's experiment).
	Length int
	// PortBase and PortRange bound the derived ports:
	// [PortBase, PortBase+PortRange).
	PortBase  uint16
	PortRange uint16

	secret []byte
}

// NewKnockGenerator builds a generator over the shared secret.
func NewKnockGenerator(secret []byte) *KnockGenerator {
	s := make([]byte, len(secret))
	copy(s, secret)
	return &KnockGenerator{
		EpochSeconds: 30,
		Length:       3,
		PortBase:     40000,
		PortRange:    1024,
		secret:       s,
	}
}

// Epoch returns the epoch counter for a point in time.
func (kg *KnockGenerator) Epoch(at float64) uint64 {
	if at < 0 {
		at = 0
	}
	return uint64(at / kg.EpochSeconds)
}

// SequenceAt derives the knock sequence valid at time at. Consecutive
// derived ports are guaranteed distinct so each knock produces a
// distinct tone onset.
func (kg *KnockGenerator) SequenceAt(at float64) []uint16 {
	return kg.sequenceForEpoch(kg.Epoch(at))
}

func (kg *KnockGenerator) sequenceForEpoch(epoch uint64) []uint16 {
	mac := hmac.New(sha256.New, kg.secret)
	var msg [8]byte
	binary.BigEndian.PutUint64(msg[:], epoch)
	mac.Write(msg[:])
	sum := mac.Sum(nil)

	out := make([]uint16, kg.Length)
	var prev uint16
	for i := 0; i < kg.Length; i++ {
		raw := binary.BigEndian.Uint16(sum[(i*2)%len(sum):])
		port := kg.PortBase + raw%kg.PortRange
		if i > 0 && port == prev {
			// Distinct consecutive knocks: bump within the range.
			port = kg.PortBase + (raw+1)%kg.PortRange
		}
		out[i] = port
		prev = port
	}
	return out
}

// Verify reports whether a candidate sequence is valid at time at,
// accepting the current epoch and (to absorb clock skew at the epoch
// boundary) the immediately preceding one.
func (kg *KnockGenerator) Verify(at float64, candidate []uint16) bool {
	epoch := kg.Epoch(at)
	if equalPorts(candidate, kg.sequenceForEpoch(epoch)) {
		return true
	}
	if epoch > 0 && equalPorts(candidate, kg.sequenceForEpoch(epoch-1)) {
		return true
	}
	return false
}

func equalPorts(a, b []uint16) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// String describes the generator without leaking the secret.
func (kg *KnockGenerator) String() string {
	return fmt.Sprintf("KnockGenerator(epoch=%.0fs len=%d ports=[%d,%d))",
		kg.EpochSeconds, kg.Length, kg.PortBase, kg.PortBase+kg.PortRange)
}
