package core

import (
	"fmt"

	"mdn/internal/netsim"
	"mdn/internal/telemetry"
)

// Heartbeat is the liveness counterpart of fan monitoring: every
// registered switch plays its own heartbeat tone on a fixed period,
// and the controller raises an alert when a switch misses several
// consecutive beats — detecting device death, restarts, or a failed
// Pi/speaker, entirely out-of-band. Section 1 lists "device booting,
// restart or configuration" among the management tasks MDN targets;
// this is the monitoring half of that loop.
type Heartbeat struct {
	// Period is the beat interval in seconds.
	Period float64
	// MissThreshold is how many consecutive missed beats raise an
	// alert.
	MissThreshold int

	onset *OnsetFilter

	devices map[float64]*heartbeatDevice
	freqs   []float64

	// HistoryMax bounds Alerts to the last N entries (0 means
	// DefaultHistoryMax).
	HistoryMax int
	// HistoryDropped counts entries evicted from Alerts by the bound.
	HistoryDropped uint64
	// Alerts accumulates raised alerts (last HistoryMax).
	Alerts []HeartbeatAlert

	events uint64 // alerts raised, including evicted ones
}

type heartbeatDevice struct {
	name    string
	voice   *Voice
	ticker  *netsim.Ticker
	missed  int
	beaten  bool // heard since the last check
	alerted bool

	// Beats counts heard heartbeats.
	Beats uint64
}

// HeartbeatAlert reports a device gone silent.
type HeartbeatAlert struct {
	// Time is when the alert was raised.
	Time float64
	// Device is the silent device's name.
	Device string
	// MissedBeats is the consecutive misses at alert time.
	MissedBeats int
}

// AlertDeadline is the documented worst case from a device's last
// heard beat to its alert: MissThreshold consecutive period checks
// must fail, the check phase adds up to one period, and detection
// latency a fraction more — (MissThreshold + 2) × Period in total.
// Tests (including the fault-injection sweeps) hold the monitor to
// this bound.
func (hb *Heartbeat) AlertDeadline() float64 {
	return (float64(hb.MissThreshold) + 2) * hb.Period
}

// NewHeartbeat builds a monitor with a 1 s period and a 3-beat miss
// threshold.
func NewHeartbeat() *Heartbeat {
	return &Heartbeat{
		Period:        1.0,
		MissThreshold: 3,
		onset:         NewOnsetFilter(),
		devices:       make(map[float64]*heartbeatDevice),
	}
}

// Register allocates a heartbeat tone for the device from the plan
// and returns it. Call before Start.
func (hb *Heartbeat) Register(plan *FrequencyPlan, name string, voice *Voice) (float64, error) {
	freqs, err := plan.AllocateSpaced(name+"/heartbeat", 1, DefaultStride)
	if err != nil {
		return 0, err
	}
	f := freqs[0]
	hb.devices[f] = &heartbeatDevice{name: name, voice: voice}
	hb.freqs = append(hb.freqs, f)
	return f, nil
}

// Frequencies returns the registered heartbeat tones.
func (hb *Heartbeat) Frequencies() []float64 {
	out := make([]float64, len(hb.freqs))
	copy(out, hb.freqs)
	return out
}

// StartDevice begins a device's beat loop; stop it with the returned
// ticker (simulating device death).
func (hb *Heartbeat) StartDevice(sim *netsim.Sim, freq float64, at float64) (*netsim.Ticker, error) {
	dev, ok := hb.devices[freq]
	if !ok {
		return nil, fmt.Errorf("core: no device registered at %g Hz", freq)
	}
	dev.ticker = sim.Every(at, hb.Period, func(float64) {
		dev.voice.Play(freq)
	})
	return dev.ticker, nil
}

// Start wires the controller side: window handling plus the per-period
// miss check.
func (hb *Heartbeat) Start(ctrl *Controller, at float64) {
	ctrl.SubscribeWindows(hb.HandleWindow)
	// Check half a period after each expected beat so a beat's
	// detection windows have closed.
	ctrl.Sim().Every(at+hb.Period*1.5, hb.Period, func(now float64) {
		hb.check(now)
	})
}

// HandleWindow consumes one detection window.
func (hb *Heartbeat) HandleWindow(_ float64, dets []Detection) {
	for _, det := range hb.onset.Step(dets) {
		if dev, ok := hb.devices[det.Frequency]; ok {
			dev.beaten = true
			dev.Beats++
		}
	}
}

func (hb *Heartbeat) check(now float64) {
	for freq, dev := range hb.devices {
		_ = freq
		if dev.beaten {
			dev.beaten = false
			dev.missed = 0
			dev.alerted = false
			continue
		}
		dev.missed++
		if dev.missed >= hb.MissThreshold && !dev.alerted {
			dev.alerted = true
			hb.events++
			hb.Alerts = appendBounded(hb.Alerts, HeartbeatAlert{
				Time: now, Device: dev.name, MissedBeats: dev.missed,
			}, hb.HistoryMax, &hb.HistoryDropped)
		}
	}
}

// Instrument exposes the monitor's counters under app="heartbeat".
// name labels the controller (heartbeats span switches).
func (hb *Heartbeat) Instrument(reg *telemetry.Registry, name string) {
	reg.Func(appLabels(metricAppOnsets, "heartbeat", name),
		func() float64 { return float64(hb.onset.Onsets) })
	reg.Func(appLabels(metricAppEvents, "heartbeat", name),
		func() float64 { return float64(hb.events) })
	reg.Func(appLabels(metricAppHistoryDropped, "heartbeat", name),
		func() float64 { return float64(hb.HistoryDropped) })
}

// BeatsOf returns how many heartbeats of the named device were heard.
func (hb *Heartbeat) BeatsOf(name string) uint64 {
	for _, dev := range hb.devices {
		if dev.name == name {
			return dev.Beats
		}
	}
	return 0
}
