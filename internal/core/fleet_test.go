package core

import (
	"bytes"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"mdn/internal/acoustic"
	"mdn/internal/audio"
	"mdn/internal/netsim"
	"mdn/internal/telemetry"
)

// fleetRoom builds a room with n switches (speaker i at x=1+i/4 m,
// playing frequency 500+40i) and one microphone per switch, plus a
// detector template watching every fleet frequency. Tones start at
// 10 ms so they sit inside the [0, 65 ms) analysis window.
func fleetRoom(n int) (*acoustic.Room, []*acoustic.Microphone, *Detector) {
	room := acoustic.NewRoom(44100, 7)
	mics := make([]*acoustic.Microphone, n)
	freqs := make([]float64, n)
	for i := 0; i < n; i++ {
		name := "s" + itoa(i)
		sp := room.AddSpeaker(name, acoustic.Position{X: 1 + float64(i)*0.25})
		mics[i] = room.AddMicrophone("mic-"+name, acoustic.Position{Y: float64(i) * 0.1}, 0.0005)
		freqs[i] = 500 + 40*float64(i)
		sp.Play(0.010, audio.Tone{
			Frequency: freqs[i], Duration: 0.065,
			Amplitude: acoustic.SPLToAmplitude(60),
		})
	}
	det := NewDetector(MethodGoertzel, freqs)
	return room, mics, det
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

func runFleet(n, workers int) []Detection {
	_, mics, det := fleetRoom(n)
	f := NewFleet(det, workers)
	defer f.Close()
	for _, m := range mics {
		f.AddMicrophone(m)
	}
	dets := f.Analyse(0, 0.065)
	out := make([]Detection, len(dets))
	copy(out, dets)
	return out
}

func TestFleetMatchesSerialExactly(t *testing.T) {
	want := runFleet(8, 1)
	if len(want) == 0 {
		t.Fatal("serial fleet heard nothing")
	}
	for _, workers := range []int{2, 4, 8, 16} {
		got := runFleet(8, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d detections, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("workers=%d: detection %d = %+v, want %+v (bit-exact)",
					workers, i, got[i], want[i])
			}
		}
	}
}

func TestFleetMergeOrderedByTimeThenFrequency(t *testing.T) {
	dets := runFleet(8, 4)
	for i := 1; i < len(dets); i++ {
		a, b := dets[i-1], dets[i]
		if a.Time > b.Time || (a.Time == b.Time && a.Frequency > b.Frequency) {
			t.Fatalf("merge out of order at %d: %+v before %+v", i, a, b)
		}
	}
}

func TestFleetHearsEveryVoice(t *testing.T) {
	const n = 8
	dets := runFleet(n, 4)
	heard := make(map[float64]bool)
	for _, d := range dets {
		heard[d.Frequency] = true
	}
	for i := 0; i < n; i++ {
		f := 500 + 40*float64(i)
		if !heard[f] {
			t.Errorf("voice at %g Hz never detected", f)
		}
	}
}

func TestFleetPicksUpTemplateWatchChanges(t *testing.T) {
	room, mics, det := fleetRoom(4)
	f := NewFleet(det, 4)
	defer f.Close()
	for _, m := range mics {
		f.AddMicrophone(m)
	}
	if dets := f.Analyse(0, 0.065); len(dets) == 0 {
		t.Fatal("fleet heard nothing")
	}
	// A new voice joins on a frequency the clones were not built with.
	sp := room.AddSpeaker("late", acoustic.Position{X: 0.5})
	sp.Play(1.010, audio.Tone{Frequency: 4000, Duration: 0.065,
		Amplitude: acoustic.SPLToAmplitude(60)})
	det.AddWatch(4000)
	found := false
	for _, d := range f.Analyse(1.0, 1.065) {
		if d.Frequency == 4000 {
			found = true
		}
	}
	if !found {
		t.Error("watch added to template not seen by fleet clones")
	}
}

func TestFleetSteadyStateAllocs(t *testing.T) {
	_, mics, det := fleetRoom(8)
	for _, workers := range []int{1, 4} {
		f := NewFleet(det, workers)
		for _, m := range mics {
			f.AddMicrophone(m)
		}
		f.Analyse(0, 0.050) // warm up clones, buffers, result slots
		f.Analyse(0.050, 0.100)
		win := 2
		allocs := testing.AllocsPerRun(50, func() {
			from := float64(win) * 0.050
			f.Analyse(from, from+0.050)
			win++
		})
		f.Close()
		if allocs != 0 {
			t.Errorf("workers=%d: steady-state Analyse allocates %.1f objects/op, want 0",
				workers, allocs)
		}
	}
}

func TestFleetTelemetryRendersThroughValidateText(t *testing.T) {
	_, mics, det := fleetRoom(4)
	f := NewFleet(det, 4)
	defer f.Close()
	reg := telemetry.New()
	f.Instrument(reg)
	for _, m := range mics {
		f.AddMicrophone(m)
	}
	for w := 0; w < 3; w++ {
		f.Analyse(float64(w)*0.050, float64(w)*0.050+0.050)
	}
	snap := reg.Snapshot()
	var buf bytes.Buffer
	if err := snap.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	text := buf.String()
	if err := telemetry.ValidateText(strings.NewReader(text)); err != nil {
		t.Fatalf("fleet metrics fail ValidateText: %v\n%s", err, text)
	}
	if !strings.Contains(text, "mdn_fleet_workers_busy 0") {
		t.Errorf("busy gauge missing or non-zero at rest:\n%s", text)
	}
	if !strings.Contains(text, "mdn_fleet_window_seconds_count 3") {
		t.Errorf("fan-out histogram did not record 3 windows:\n%s", text)
	}
}

func TestControllerFleetDispatchSemantics(t *testing.T) {
	// A fleet-backed controller must deliver one ordered batch per
	// window to window subscribers, exactly like the single-mic path.
	_, mics, det := fleetRoom(4)
	sim := netsim.NewSim()
	ctrl := NewController(sim, mics[0], det)
	f := ctrl.EnableFleet(4)
	defer f.Close()
	for _, m := range mics[1:] {
		f.AddMicrophone(m)
	}
	var batches [][]Detection
	ctrl.SubscribeWindows(func(start float64, dets []Detection) {
		cp := make([]Detection, len(dets))
		copy(cp, dets)
		batches = append(batches, cp)
	})
	ctrl.Start(0)
	sim.RunUntil(0.3)
	if ctrl.Windows == 0 {
		t.Fatal("controller analysed no windows")
	}
	total := 0
	for _, b := range batches {
		total += len(b)
		for i := 1; i < len(b); i++ {
			if b[i-1].Time > b[i].Time ||
				(b[i-1].Time == b[i].Time && b[i-1].Frequency > b[i].Frequency) {
				t.Fatalf("dispatched batch out of order: %+v before %+v", b[i-1], b[i])
			}
		}
	}
	if uint64(total) != ctrl.Detections {
		t.Errorf("subscribers saw %d detections, controller counted %d", total, ctrl.Detections)
	}
	if total == 0 {
		t.Error("fleet controller heard nothing")
	}
}

func TestSortDetectionsStable(t *testing.T) {
	in := []Detection{
		{Time: 2, Frequency: 500, Amplitude: 1},
		{Time: 1, Frequency: 700, Amplitude: 2},
		{Time: 1, Frequency: 500, Amplitude: 3},
		{Time: 1, Frequency: 500, Amplitude: 4}, // exact tie: stays after 3
		{Time: 0, Frequency: 900, Amplitude: 5},
	}
	sortDetections(in, make([]Detection, len(in)))
	want := []Detection{
		{Time: 0, Frequency: 900, Amplitude: 5},
		{Time: 1, Frequency: 500, Amplitude: 3},
		{Time: 1, Frequency: 500, Amplitude: 4},
		{Time: 1, Frequency: 700, Amplitude: 2},
		{Time: 2, Frequency: 500, Amplitude: 1},
	}
	for i := range want {
		if in[i] != want[i] {
			t.Fatalf("sorted[%d] = %+v, want %+v", i, in[i], want[i])
		}
	}
}

func TestSortDetectionsMatchesSliceStable(t *testing.T) {
	// The bottom-up merge must agree with the library's stable sort on
	// inputs big enough to exercise several merge levels, heavy with
	// exact ties. Amplitude carries the arrival index so stability
	// violations are visible.
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 31, 32, 33, 97, 1000} {
		in := make([]Detection, n)
		for i := range in {
			in[i] = Detection{
				Time:      float64(rng.Intn(4)),
				Frequency: float64(400 + 20*rng.Intn(8)),
				Amplitude: float64(i),
			}
		}
		want := make([]Detection, n)
		copy(want, in)
		sort.SliceStable(want, func(i, j int) bool { return detLess(want[i], want[j]) })
		sortDetections(in, make([]Detection, n))
		for i := range want {
			if in[i] != want[i] {
				t.Fatalf("n=%d: sorted[%d] = %+v, want %+v", n, i, in[i], want[i])
			}
		}
	}
}
