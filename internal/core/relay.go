package core

import (
	"fmt"

	"mdn/internal/acoustic"
	"mdn/internal/mp"
	"mdn/internal/netsim"
)

// Relay is the multi-hop sound transmission the paper's Section 8
// leaves as an open question: a device with its own microphone and
// speaker that listens for tones in one frequency band and re-emits
// each confirmed onset translated onto another band. Relays extend
// the controller's acoustic reach beyond a single hop at the cost of
// one detection window of added latency per hop.
//
// Translation is mandatory: re-emitting the original frequency would
// let the relay hear itself and oscillate, and would present the
// controller with duplicate copies. A frequency-shifted copy is
// unambiguous and lets the controller tell direct from relayed paths.
type Relay struct {
	// Mapping translates heard frequency -> re-emitted frequency.
	Mapping map[float64]float64

	ctrl  *Controller
	voice *Voice
	onset *OnsetFilter

	// Relayed counts re-emitted tones.
	Relayed uint64
	// Ignored counts confirmed onsets with no mapping entry.
	Ignored uint64
}

// NewRelay builds a relay listening on mic and re-emitting through a
// speaker via the given Pi link. The relay's detector watches exactly
// the mapping's input frequencies.
func NewRelay(sim *netsim.Sim, mic *acoustic.Microphone, pi *mp.Pi, mapping map[float64]float64) (*Relay, error) {
	if len(mapping) == 0 {
		return nil, fmt.Errorf("core: relay requires a non-empty frequency mapping")
	}
	watch := make([]float64, 0, len(mapping))
	for in, out := range mapping {
		if in == out {
			return nil, fmt.Errorf("core: relay mapping %g -> %g would self-oscillate", in, out)
		}
		watch = append(watch, in)
	}
	det := NewDetector(MethodGoertzel, watch)
	r := &Relay{
		Mapping: mapping,
		ctrl:    NewController(sim, mic, det),
		voice:   NewVoice(sim, mp.NewSounder(pi)),
		onset:   NewOnsetFilter(),
	}
	r.ctrl.SubscribeWindows(r.handleWindow)
	return r, nil
}

// Detector exposes the relay's detector for threshold calibration.
func (r *Relay) Detector() *Detector { return r.ctrl.Detector }

// Voice exposes the relay's emitter for intensity/duration policy.
func (r *Relay) Voice() *Voice { return r.voice }

// Start begins listening at time at.
func (r *Relay) Start(at float64) { r.ctrl.Start(at) }

// Stop halts the relay.
func (r *Relay) Stop() { r.ctrl.Stop() }

func (r *Relay) handleWindow(_ float64, dets []Detection) {
	for _, det := range r.onset.Step(dets) {
		out, ok := r.Mapping[det.Frequency]
		if !ok {
			r.Ignored++
			continue
		}
		r.Relayed++
		r.voice.Play(out)
	}
}

// ChainMapping builds the mapping for an n-hop relay chain: each hop
// shifts its band up by shift Hz, so hop i listens on
// base+i*shift and emits on base+(i+1)*shift for each of the n
// frequencies.
func ChainMapping(freqs []float64, shift float64) map[float64]float64 {
	out := make(map[float64]float64, len(freqs))
	for _, f := range freqs {
		out[f] = f + shift
	}
	return out
}
