package core

import (
	"mdn/internal/netsim"
	"mdn/internal/telemetry"
)

// Queue occupancy levels, matching the paper's Section 6 thresholds:
// fewer than 25 packets plays 500 Hz, 25–75 plays 600 Hz, more than
// 75 plays 700 Hz.
const (
	// LevelLow is an uncongested queue.
	LevelLow = iota
	// LevelMid is a filling queue.
	LevelMid
	// LevelHigh is a congested queue.
	LevelHigh
)

// LevelName names a queue level.
func LevelName(level int) string {
	switch level {
	case LevelLow:
		return "low"
	case LevelMid:
		return "mid"
	case LevelHigh:
		return "high"
	default:
		return "unknown"
	}
}

// QueueMonitor is the Section 6 congestion-monitoring application:
// every SampleInterval the switch measures its output-queue
// occupancy (the paper polls tc every 300 ms) and plays the level's
// tone; the controller maps heard tones back to occupancy ranges.
type QueueMonitor struct {
	// LowThreshold and HighThreshold are the packet-count boundaries
	// (paper: 25 and 75).
	LowThreshold, HighThreshold int
	// SampleInterval is the switch-side sampling period in seconds
	// (paper: 300 ms).
	SampleInterval float64

	sw    *netsim.Switch
	port  int
	voice *Voice
	freqs [3]float64
	onset *OnsetFilter

	// HistoryMax bounds QueueSeries, ToneLog and Heard to the last N
	// entries each (0 means DefaultHistoryMax).
	HistoryMax int
	// HistoryDropped counts entries evicted from the three logs by
	// the bound.
	HistoryDropped uint64

	// QueueSeries records the switch-side occupancy samples
	// (Figure 5a/5c ground truth), last HistoryMax.
	QueueSeries []netsim.Sample
	// ToneLog records the switch-side tones as (time, level), bounded
	// like QueueSeries.
	ToneLog []LevelSample
	// Heard records the controller-side decoded levels, bounded like
	// QueueSeries.
	Heard []LevelSample

	heard uint64 // levels decoded, including evicted ones
}

// LevelSample is one decoded or emitted queue level.
type LevelSample struct {
	// Time in seconds.
	Time float64
	// Level is LevelLow/Mid/High.
	Level int
}

// DefaultQueueFrequencies are the paper's exact tones: 500, 600 and
// 700 Hz for low, mid and high.
var DefaultQueueFrequencies = [3]float64{500, 600, 700}

// NewQueueMonitor builds a monitor for one switch output port using
// the paper's default thresholds. The three level tones are allocated
// from the plan with guard bands so other apps cannot collide with
// them; use NewQueueMonitorWithTones to pin the paper's literal
// 500/600/700 Hz.
func NewQueueMonitor(plan *FrequencyPlan, sw *netsim.Switch, port int, voice *Voice) (*QueueMonitor, error) {
	freqs, err := plan.AllocateSpaced(sw.Name+"/queuemon", 3, DefaultStride)
	if err != nil {
		return nil, err
	}
	qm := newQueueMonitor(sw, port, voice)
	copy(qm.freqs[:], freqs)
	return qm, nil
}

// NewQueueMonitorWithTones builds a monitor using explicit level
// tones (low, mid, high) — e.g. the paper's 500, 600 and 700 Hz —
// bypassing the frequency plan.
func NewQueueMonitorWithTones(sw *netsim.Switch, port int, voice *Voice, tones [3]float64) *QueueMonitor {
	qm := newQueueMonitor(sw, port, voice)
	qm.freqs = tones
	return qm
}

func newQueueMonitor(sw *netsim.Switch, port int, voice *Voice) *QueueMonitor {
	return &QueueMonitor{
		LowThreshold:   25,
		HighThreshold:  75,
		SampleInterval: 0.3,
		sw:             sw,
		port:           port,
		voice:          voice,
		onset:          NewOnsetFilter(),
	}
}

// Frequencies returns the three level tones (low, mid, high).
func (qm *QueueMonitor) Frequencies() []float64 {
	return []float64{qm.freqs[0], qm.freqs[1], qm.freqs[2]}
}

// LevelOf classifies an occupancy.
func (qm *QueueMonitor) LevelOf(queueLen int) int {
	switch {
	case queueLen < qm.LowThreshold:
		return LevelLow
	case queueLen <= qm.HighThreshold:
		return LevelMid
	default:
		return LevelHigh
	}
}

// LevelFor maps a heard frequency back to a level (-1 when the
// frequency is not one of the monitor's tones).
func (qm *QueueMonitor) LevelFor(freq float64) int {
	for lvl, f := range qm.freqs {
		if f == freq {
			return lvl
		}
	}
	return -1
}

// StartSwitchSide begins the switch's 300 ms sample-and-play loop.
func (qm *QueueMonitor) StartSwitchSide(sim *netsim.Sim, at float64) *netsim.Ticker {
	return sim.Every(at, qm.SampleInterval, func(now float64) {
		qLen := qm.sw.QueueLen(qm.port)
		qm.QueueSeries = appendBounded(qm.QueueSeries, netsim.Sample{Time: now, Value: float64(qLen)},
			qm.HistoryMax, &qm.HistoryDropped)
		lvl := qm.LevelOf(qLen)
		qm.ToneLog = appendBounded(qm.ToneLog, LevelSample{Time: now, Level: lvl},
			qm.HistoryMax, &qm.HistoryDropped)
		qm.voice.Play(qm.freqs[lvl])
	})
}

// HandleWindow is the controller-side hook (wire via
// Controller.SubscribeWindows).
func (qm *QueueMonitor) HandleWindow(_ float64, dets []Detection) {
	for _, det := range qm.onset.Step(dets) {
		if lvl := qm.LevelFor(det.Frequency); lvl >= 0 {
			qm.heard++
			qm.Heard = appendBounded(qm.Heard, LevelSample{Time: det.Time, Level: lvl},
				qm.HistoryMax, &qm.HistoryDropped)
		}
	}
}

// Instrument exposes the monitor's counters under app="queuemon",
// switch=switchName. Events are decoded queue levels.
func (qm *QueueMonitor) Instrument(reg *telemetry.Registry, switchName string) {
	reg.Func(appLabels(metricAppOnsets, "queuemon", switchName),
		func() float64 { return float64(qm.onset.Onsets) })
	reg.Func(appLabels(metricAppEvents, "queuemon", switchName),
		func() float64 { return float64(qm.heard) })
	reg.Func(appLabels(metricAppHistoryDropped, "queuemon", switchName),
		func() float64 { return float64(qm.HistoryDropped) })
}

// HeardLevels collapses the controller-side log to its level sequence
// with consecutive duplicates removed — the 500→600→700→…→500
// trajectory of Figure 5d.
func (qm *QueueMonitor) HeardLevels() []int {
	var out []int
	for _, s := range qm.Heard {
		if len(out) == 0 || out[len(out)-1] != s.Level {
			out = append(out, s.Level)
		}
	}
	return out
}
