package core

import (
	"sync"
	"testing"
)

// TestSubscribeDuringRunIsRaceFree registers subscribers from other
// goroutines while the simulation dispatches windows — the documented
// cross-goroutine contract of Subscribe/SubscribeWindows. Run with
// -race (CI does): a torn subscriber slice or unlocked append shows up
// as a data race, not a flake.
func TestSubscribeDuringRunIsRaceFree(t *testing.T) {
	tb, ctrl := supervisedController(21)
	var mu sync.Mutex
	windows := make(map[int]int)
	ctrl.Start(0)

	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			ctrl.SubscribeWindows(func(float64, []Detection) {
				mu.Lock()
				windows[g]++
				mu.Unlock()
			})
			ctrl.Subscribe(func(Detection) {})
		}()
	}
	close(start)
	// Drive the simulation while registrations land. RunUntil processes
	// events on this goroutine; the subscribers arrive concurrently.
	for step := 1; step <= 100; step++ {
		tb.sim.RunUntil(float64(step) * 0.05)
	}
	wg.Wait()
	tb.sim.RunUntil(6)

	if got := len(ctrl.Subscribers()); got != 16 {
		t.Fatalf("registered %d subscribers, want 16", got)
	}
	mu.Lock()
	defer mu.Unlock()
	for g := 0; g < 8; g++ {
		if windows[g] == 0 {
			t.Errorf("goroutine %d's handler never saw a window", g)
		}
	}
}
