package core

import (
	"testing"

	"mdn/internal/acoustic"
	"mdn/internal/netsim"
	"mdn/internal/openflow"
)

func TestHealthHealthyRun(t *testing.T) {
	tb := newTestbed(11)
	voice := tb.voiceAt("s1", acoustic.Position{X: 1})
	freq := tb.plan.MustAllocate("s1", 1)[0]
	ctrl := tb.controller([]float64{freq})
	ctrl.RegisterVoice("s1", voice)
	ctrl.SubscribeWindowsNamed("app", func(float64, []Detection) {})
	ctrl.Start(0)
	beat := tb.sim.Every(0.2, 0.2, func(float64) { voice.Play(freq) })
	tb.sim.RunUntil(10)
	beat.Stop()

	h := ctrl.Health()
	if h.State != Healthy {
		t.Fatalf("state = %s (%v), want healthy", h.StateName, h.Reasons)
	}
	if h.Windows == 0 || h.Detections == 0 {
		t.Errorf("windows=%d detections=%d, want both nonzero", h.Windows, h.Detections)
	}
	if len(h.Wire) != 1 || h.Wire[0].Sent == 0 {
		t.Errorf("wire counters %+v, want one sounder with sends", h.Wire)
	}
	if h.WireLossRate != 0 {
		t.Errorf("loss rate %g on a clean wire, want 0", h.WireLossRate)
	}
	if h.AmplitudeMargin <= 1 {
		t.Errorf("amplitude margin %g, want comfortably above the floor", h.AmplitudeMargin)
	}
}

func TestHealthStalledWhenWindowsStop(t *testing.T) {
	tb, ctrl := supervisedController(12)
	ctrl.SubscribeWindows(func(float64, []Detection) {})
	ctrl.Start(0)
	tb.sim.RunUntil(1.0)
	if h := ctrl.Health(); h.State != Healthy {
		t.Fatalf("mid-run state = %s, want healthy", h.StateName)
	}
	// Kill the poll loop without clearing started — the watchdog, not
	// the ticker, must notice.
	ctrl.ticker.Stop()
	tb.sim.Schedule(3.0, func() {}) // advance the clock past the stall window
	tb.sim.RunUntil(3.0)

	h := ctrl.Health()
	if h.State != Stalled {
		t.Fatalf("state = %s (%v), want stalled", h.StateName, h.Reasons)
	}
	if len(h.Reasons) == 0 {
		t.Error("stalled verdict carries no reason")
	}
}

func TestHealthStoppedControllerIsNotStalled(t *testing.T) {
	tb, ctrl := supervisedController(13)
	ctrl.Start(0)
	tb.sim.RunUntil(1.0)
	ctrl.Stop()
	tb.sim.Schedule(5.0, func() {})
	tb.sim.RunUntil(5.0)

	if h := ctrl.Health(); h.State == Stalled {
		t.Errorf("cleanly stopped controller reports stalled: %v", h.Reasons)
	}
}

func TestHealthStalledWhenEverySubscriberQuarantined(t *testing.T) {
	tb, ctrl := supervisedController(14)
	ctrl.SubscribeWindowsNamed("only", func(float64, []Detection) { panic("dead") })
	ctrl.Start(0)
	tb.sim.RunUntil(1.0)

	h := ctrl.Health()
	if h.State != Stalled {
		t.Fatalf("state = %s (%v), want stalled (all subscribers quarantined)", h.StateName, h.Reasons)
	}
	if len(h.Quarantined) != 1 {
		t.Errorf("quarantined = %v, want one entry", h.Quarantined)
	}
}

func TestHealthDegradedOnWireLoss(t *testing.T) {
	tb := newTestbed(15)
	voice := tb.voiceAt("s1", acoustic.Position{X: 1})
	voice.Sounder().InjectFaults(netsim.Faults{DropProb: 0.5, Seed: 9})
	freq := tb.plan.MustAllocate("s1", 1)[0]
	ctrl := tb.controller([]float64{freq})
	ctrl.RegisterVoice("s1", voice)
	ctrl.SubscribeWindows(func(float64, []Detection) {})
	ctrl.Start(0)
	tb.sim.Every(0.2, 0.2, func(float64) { voice.Play(freq) })
	tb.sim.RunUntil(10)

	h := ctrl.Health()
	if h.State != Degraded {
		t.Fatalf("state = %s (%v), want degraded", h.StateName, h.Reasons)
	}
	if h.WireLossRate < DefaultDegradeLossRate {
		t.Errorf("loss rate %g below the trip point with 50%% drops", h.WireLossRate)
	}
}

func TestHealthDegradedErrorsAgeOut(t *testing.T) {
	tb, ctrl := supervisedController(16)
	ctrl.SubscribeWindows(func(float64, []Detection) {})
	ctrl.Start(0)
	tb.sim.Schedule(0.5, func() {
		ctrl.Errors.Record(0.5, "app", ErrFlowProgram)
	})
	tb.sim.RunUntil(1.0)
	if h := ctrl.Health(); h.State != Degraded {
		t.Fatalf("state just after an error = %s, want degraded", h.StateName)
	}
	tb.sim.RunUntil(10)
	h := ctrl.Health()
	if h.State != Healthy {
		t.Fatalf("state after errors aged out = %s (%v), want healthy", h.StateName, h.Reasons)
	}
	if h.ErrorsTotal != 1 {
		t.Errorf("ErrorsTotal = %d, want the aged-out error still counted", h.ErrorsTotal)
	}
}

func TestHealthRegisterChannelCounters(t *testing.T) {
	tb, ctrl := supervisedController(17)
	sw := netsim.NewSwitch(tb.sim, "s1")
	ch := openflow.NewChannel(tb.sim, sw, 0)
	ch.InjectFaults(netsim.Faults{DropProb: 1.0, Seed: 1})
	ctrl.RegisterChannel("s1", ch)
	ctrl.Start(0)
	for i := 0; i < minWireSample; i++ {
		_ = ch.SendFlowMod(openflow.FlowMod{Command: openflow.FlowAdd, Priority: 1, Action: netsim.Drop()})
	}
	tb.sim.RunUntil(1)

	h := ctrl.Health()
	if len(h.Wire) != 1 || h.Wire[0].Kind != "channel" {
		t.Fatalf("wire = %+v, want one channel entry", h.Wire)
	}
	if h.WireLossRate != 1 {
		t.Errorf("loss rate %g with DropProb 1, want 1", h.WireLossRate)
	}
	if h.State != Degraded {
		t.Errorf("state = %s, want degraded on total wire loss", h.StateName)
	}
}

func TestManagerHealthDelegates(t *testing.T) {
	tb := newTestbed(18)
	mgr := NewManager(tb.sim, tb.mic, tb.plan)
	voice := tb.voiceAt("s1", acoustic.Position{X: 1})
	hh, err := NewHeavyHitter(tb.plan, "s1", voice, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Deploy(hh); err != nil {
		t.Fatal(err)
	}
	mgr.Start(0)
	tb.sim.RunUntil(1)
	h := mgr.Health()
	if h.State != Healthy {
		t.Errorf("manager health = %s (%v), want healthy", h.StateName, h.Reasons)
	}
	if h.Subscribers == 0 {
		t.Error("deployed app not visible as a subscriber")
	}
}
