package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPlanAllocateDisjointSets(t *testing.T) {
	p := NewFrequencyPlan(400, 4000, 20)
	a, err := p.Allocate("s1", 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Allocate("s2", 5)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != 400 || a[4] != 480 {
		t.Errorf("s1 set = %v", a)
	}
	if b[0] != 500 {
		t.Errorf("s2 set starts at %g, want 500", b[0])
	}
	// Disjoint and all 20 Hz apart.
	all := p.AllAssigned()
	if len(all) != 10 {
		t.Fatalf("assigned = %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i]-all[i-1] < 20-1e-9 {
			t.Errorf("spacing violated: %g then %g", all[i-1], all[i])
		}
	}
}

func TestPlanRejectsDuplicatesAndExhaustion(t *testing.T) {
	p := NewFrequencyPlan(400, 500, 20) // 6 slots
	if p.Capacity() != 6 {
		t.Fatalf("capacity = %d", p.Capacity())
	}
	if _, err := p.Allocate("a", 4); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Allocate("a", 1); err == nil {
		t.Error("duplicate name should fail")
	}
	if _, err := p.Allocate("b", 3); err == nil {
		t.Error("over-allocation should fail")
	}
	if _, err := p.Allocate("b", 0); err == nil {
		t.Error("zero-size allocation should fail")
	}
	if _, err := p.Allocate("b", 2); err != nil {
		t.Errorf("exact-fit allocation failed: %v", err)
	}
	if p.Remaining() != 0 {
		t.Errorf("remaining = %d", p.Remaining())
	}
}

func TestPlanIdentify(t *testing.T) {
	p := NewFrequencyPlan(400, 4000, 20)
	p.MustAllocate("s1", 3) // 400 420 440
	p.MustAllocate("s2", 2) // 460 480
	cases := []struct {
		freq   float64
		device string
		index  int
		ok     bool
	}{
		{400, "s1", 0, true},
		{425, "s1", 1, true}, // within half-spacing of 420
		{440, "s1", 2, true},
		{460, "s2", 0, true},
		{487, "s2", 1, true},
		{500, "", 0, false},  // unallocated slot
		{395, "s1", 0, true}, // rounds to slot 0
		{100, "", 0, false},  // below band
	}
	for _, tc := range cases {
		dev, idx, ok := p.Identify(tc.freq, p.DefaultTolerance())
		if ok != tc.ok || dev != tc.device || (ok && idx != tc.index) {
			t.Errorf("Identify(%g) = (%q,%d,%v), want (%q,%d,%v)",
				tc.freq, dev, idx, ok, tc.device, tc.index, tc.ok)
		}
	}
}

func TestPlanIdentifyToleranceBoundary(t *testing.T) {
	p := NewFrequencyPlan(400, 4000, 20)
	p.MustAllocate("s1", 1)
	if _, _, ok := p.Identify(400+5, 4); ok {
		t.Error("outside tolerance should fail")
	}
	if _, _, ok := p.Identify(400+3, 4); !ok {
		t.Error("inside tolerance should pass")
	}
}

func TestPlanCapacityMatchesPaperClaim(t *testing.T) {
	// Human-hearable band at 20 Hz spacing gives the paper's
	// "approximately 1000" simultaneous frequencies.
	p := NewFrequencyPlan(20, 20000, 20)
	if c := p.Capacity(); c < 950 || c > 1050 {
		t.Errorf("capacity = %d, want ~1000", c)
	}
}

func TestPlanDevicesOrder(t *testing.T) {
	p := DefaultPlan()
	p.MustAllocate("b", 1)
	p.MustAllocate("a", 1)
	devs := p.Devices()
	if len(devs) != 2 || devs[0] != "b" || devs[1] != "a" {
		t.Errorf("devices = %v", devs)
	}
	if p.Set("missing") != nil {
		t.Error("unknown device should have nil set")
	}
}

func TestPlanIdentifyRoundTripProperty(t *testing.T) {
	p := NewFrequencyPlan(400, 4000, 20)
	freqs := p.MustAllocate("s1", 100)
	f := func(idx uint8, jitterMilli int16) bool {
		i := int(idx) % len(freqs)
		jitter := float64(jitterMilli) / 1000 * 9 / 32.767 // within ±9 Hz
		dev, gotIdx, ok := p.Identify(freqs[i]+jitter, p.DefaultTolerance())
		return ok && dev == "s1" && gotIdx == i
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPlanPanicsOnBadParams(t *testing.T) {
	for _, fn := range []func(){
		func() { NewFrequencyPlan(0, 100, 10) },
		func() { NewFrequencyPlan(100, 50, 10) },
		func() { NewFrequencyPlan(100, 200, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestMustAllocatePanicsOnError(t *testing.T) {
	p := NewFrequencyPlan(400, 440, 20)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.MustAllocate("x", 99)
}

func TestDefaultPlanShape(t *testing.T) {
	p := DefaultPlan()
	if p.MinHz != 400 || p.MaxHz != 8000 || p.Spacing != 20 {
		t.Errorf("default plan = %+v", p)
	}
	if math.Abs(p.DefaultTolerance()-10) > 1e-12 {
		t.Errorf("tolerance = %g", p.DefaultTolerance())
	}
}

func TestAllocateSpacedTrailingGuardClampsRemaining(t *testing.T) {
	// Capacity 10 (400..580). Burn 8 slots, then allocate 1 slot with
	// stride 4: the tone fits in slot 8, but the 3 trailing guard
	// slots run past the band end. The advance must clamp at the band
	// end so Remaining reports 0 or 1 usable slot, never a negative.
	p := NewFrequencyPlan(400, 580, 20)
	if c := p.Capacity(); c != 10 {
		t.Fatalf("capacity = %d, want 10", c)
	}
	p.MustAllocate("burn", 8)
	a, err := p.AllocateSpaced("s1", 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != 560 {
		t.Fatalf("allocated %v, want [560]", a)
	}
	if r := p.Remaining(); r < 0 {
		t.Errorf("Remaining = %d after trailing-guard allocation, want >= 0", r)
	}
	// Exhausted for spaced allocations but also for plain ones: the
	// slot after 560's (truncated) guard band is past the band end.
	if _, err := p.Allocate("s2", 1); err == nil {
		t.Error("allocation past the band end should fail")
	}
	if r := p.Remaining(); r != 0 {
		t.Errorf("Remaining = %d at exhaustion, want 0", r)
	}
}

func TestAllocateSpacedGuardBands(t *testing.T) {
	p := NewFrequencyPlan(400, 4000, 20)
	a, err := p.AllocateSpaced("s1", 3, 4) // 400 480 560, burning to 640
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != 400 || a[1] != 480 || a[2] != 560 {
		t.Fatalf("spaced set = %v", a)
	}
	b := p.MustAllocate("s2", 1)
	if b[0] != 640 {
		t.Errorf("next allocation at %g, want 640 (after guard band)", b[0])
	}
	// Guard slots are not identifiable.
	if _, _, ok := p.Identify(420, 10); ok {
		t.Error("guard slot 420 should not identify")
	}
	if dev, idx, ok := p.Identify(480, 10); !ok || dev != "s1" || idx != 1 {
		t.Errorf("Identify(480) = %q %d %v", dev, idx, ok)
	}
	if _, err := p.AllocateSpaced("s3", 1, 0); err == nil {
		t.Error("zero stride should fail")
	}
}
