package core

import (
	"testing"

	"mdn/internal/acoustic"
	"mdn/internal/netsim"
)

// congestionBed: the Figure 5c topology with a paced (controllable)
// source and the MDN congestion controller in the loop.
type congestionBed struct {
	*testbed
	h1, h2 *netsim.Host
	sw     *netsim.Switch
	qm     *QueueMonitor
	src    *netsim.PacedSource
	cc     *CongestionController
	egress *netsim.Port
}

func newCongestionBed(t *testing.T, seed int64, withControl bool) *congestionBed {
	t.Helper()
	tb := newTestbed(seed)
	h1 := netsim.NewHost(tb.sim, "h1", netsim.MustAddr("10.0.0.1"))
	h2 := netsim.NewHost(tb.sim, "h2", netsim.MustAddr("10.0.0.2"))
	sw := netsim.NewSwitch(tb.sim, "s1")
	netsim.Connect(tb.sim, h1, 1, sw, 1, 1e9, 0.0001, 0)
	egress, _ := netsim.Connect(tb.sim, sw, 2, h2, 1, 1e6, 0.0001, 100)
	sw.InstallRule(netsim.Rule{Priority: 1, Match: netsim.Match{Dst: h2.Addr}, Action: netsim.Output(2)})

	voice := tb.voiceAt("s1", acoustic.Position{X: 1})
	qm := NewQueueMonitorWithTones(sw, 2, voice, DefaultQueueFrequencies)
	flow := netsim.FiveTuple{Src: h1.Addr, Dst: h2.Addr, SrcPort: 1, DstPort: 2, Proto: netsim.ProtoUDP}
	// Offered 250 pps against ~83 pps of capacity: heavy overload.
	src := netsim.StartPaced(tb.sim, h1, flow, 250, 1500, 0.2, 20)

	bed := &congestionBed{testbed: tb, h1: h1, h2: h2, sw: sw, qm: qm, src: src, egress: egress}
	qm.StartSwitchSide(tb.sim, 0.05)
	if withControl {
		ctrl := tb.controller(qm.Frequencies())
		bed.cc = NewCongestionController(qm, src)
		ctrl.SubscribeWindows(qm.HandleWindow)
		ctrl.SubscribeWindows(bed.cc.HandleWindow)
		ctrl.Start(0)
	}
	return bed
}

func TestCongestionControllerReducesDrops(t *testing.T) {
	withCtl := newCongestionBed(t, 90, true)
	withCtl.sim.RunUntil(20)
	without := newCongestionBed(t, 90, false)
	without.sim.RunUntil(20)

	dropsCtl := withCtl.egress.Out.Drops()
	dropsNone := without.egress.Out.Drops()
	if dropsNone == 0 {
		t.Fatal("uncontrolled run should overflow the queue")
	}
	if dropsCtl*2 >= dropsNone {
		t.Errorf("controlled drops %d not well below uncontrolled %d", dropsCtl, dropsNone)
	}
	if withCtl.cc.Decreases == 0 {
		t.Error("controller never decreased the rate")
	}
	// Rate must have come down from 250 toward link capacity.
	if r := withCtl.src.Rate(); r > 150 {
		t.Errorf("final rate %g pps; expected AIMD to pull it down", r)
	}
}

func TestCongestionControllerRecoversRate(t *testing.T) {
	bed := newCongestionBed(t, 91, true)
	// Source stops at t=20; afterwards the queue drains, the low
	// tone returns, and additive increase resumes.
	bed.sim.RunUntil(25)
	if bed.cc.Increases == 0 {
		t.Error("no additive increases after drain")
	}
}

func TestCongestionControllerMinRateFloor(t *testing.T) {
	bed := newCongestionBed(t, 92, true)
	bed.cc.MinPPS = 10
	// Hammer it with synthetic congested onsets.
	high := Detection{Frequency: 700, Amplitude: 0.01}
	for i := 0; i < 20; i++ {
		bed.cc.HandleWindow(float64(i), []Detection{high})
		bed.cc.HandleWindow(float64(i)+0.5, nil)
		bed.cc.HandleWindow(float64(i)+0.6, []Detection{high})
	}
	if r := bed.src.Rate(); r < 10 {
		t.Errorf("rate %g fell below the floor", r)
	}
}

func TestPacedSourceSetRate(t *testing.T) {
	sim := netsim.NewSim()
	h1 := netsim.NewHost(sim, "h1", netsim.MustAddr("10.0.0.1"))
	h2 := netsim.NewHost(sim, "h2", netsim.MustAddr("10.0.0.2"))
	netsim.Connect(sim, h1, 1, h2, 1, 1e9, 0, 0)
	f := netsim.FiveTuple{Src: h1.Addr, Dst: h2.Addr, SrcPort: 1, DstPort: 2, Proto: netsim.ProtoUDP}
	src := netsim.StartPaced(sim, h1, f, 100, 100, 0, 10)
	sim.After(1, func() { src.SetRate(10) })
	sim.RunUntil(2)
	// ~100 packets in second one, ~10 in second two.
	if src.Sent() < 100 || src.Sent() > 125 {
		t.Errorf("sent = %d, want ~110", src.Sent())
	}
	src.SetRate(0.01)
	if src.Rate() != 0.1 {
		t.Errorf("rate floor = %g, want 0.1", src.Rate())
	}
	src.Stop()
	n := src.Sent()
	sim.RunUntil(10)
	if src.Sent() != n {
		t.Error("stopped source kept sending")
	}
}
