package core

import (
	"errors"
	"math"

	"mdn/internal/acoustic"
	"mdn/internal/dsp"
)

// FanMonitor is the Section 7 passive application: it listens to a
// server's cooling fan, learns the FFT amplitudes of the fan's
// harmonic frequencies while the fan is known healthy, and later
// compares fresh captures against that baseline. The paper's
// observation (Figure 7): the amplitude difference between an
// on-recording and an off-recording is considerably larger than
// between two on-recordings, even under datacenter noise.
type FanMonitor struct {
	// Harmonics are the fan frequencies to watch (blade-pass
	// fundamental and overtones).
	Harmonics []float64
	// WindowDur is the analysis window length in seconds.
	WindowDur float64
	// AlertRatio is the failure criterion: alert when the mean
	// relative amplitude drop across harmonics exceeds this fraction
	// of the baseline (0.5 = harmonics lost half their amplitude).
	AlertRatio float64

	mic *acoustic.Microphone

	baseline []float64 // per-harmonic amplitude
	trained  bool
}

// ErrNotTrained reports a check before training.
var ErrNotTrained = errors.New("core: fan monitor has no baseline; call Train first")

// NewFanMonitor builds a monitor for the given harmonic stack on the
// given microphone.
func NewFanMonitor(mic *acoustic.Microphone, harmonics []float64) *FanMonitor {
	h := make([]float64, len(harmonics))
	copy(h, harmonics)
	return &FanMonitor{
		Harmonics:  h,
		WindowDur:  0.5,
		AlertRatio: 0.5,
		mic:        mic,
	}
}

// amplitudes measures the per-harmonic amplitude over [from, to),
// averaging window-sized chunks. The harmonic stack is evaluated as a
// single-pass Goertzel bank per chunk.
func (fm *FanMonitor) amplitudes(from, to float64) []float64 {
	out := make([]float64, len(fm.Harmonics))
	windows := 0
	var gplan *dsp.GoertzelPlan
	var mags []float64
	for t := from; t+fm.WindowDur <= to+1e-9; t += fm.WindowDur {
		buf := fm.mic.Capture(t, t+fm.WindowDur)
		n := float64(buf.Len())
		if n == 0 {
			continue
		}
		if gplan == nil || gplan.SampleRate != buf.SampleRate {
			gplan = dsp.NewGoertzelPlan(fm.Harmonics, buf.SampleRate)
		}
		mags = gplan.MagnitudesInto(mags, buf.Samples)
		for i, m := range mags {
			out[i] += 2 * m / n
		}
		windows++
	}
	if windows > 0 {
		for i := range out {
			out[i] /= float64(windows)
		}
	}
	return out
}

// Train learns the healthy-fan baseline from [from, to). The interval
// must hold at least one analysis window.
func (fm *FanMonitor) Train(from, to float64) error {
	if to-from < fm.WindowDur {
		return errors.New("core: training interval shorter than one analysis window")
	}
	fm.baseline = fm.amplitudes(from, to)
	fm.trained = true
	return nil
}

// Baseline returns the learned per-harmonic amplitudes (nil before
// training).
func (fm *FanMonitor) Baseline() []float64 {
	if !fm.trained {
		return nil
	}
	out := make([]float64, len(fm.baseline))
	copy(out, fm.baseline)
	return out
}

// Score measures [from, to) and returns the mean relative amplitude
// drop across harmonics versus the baseline: 0 for a healthy fan,
// approaching 1 when the harmonics vanish. Negative drops (louder
// than baseline) clamp to 0 per harmonic.
func (fm *FanMonitor) Score(from, to float64) (float64, error) {
	if !fm.trained {
		return 0, ErrNotTrained
	}
	now := fm.amplitudes(from, to)
	var sum float64
	var counted int
	for i, base := range fm.baseline {
		if base <= 0 {
			continue
		}
		drop := (base - now[i]) / base
		if drop < 0 {
			drop = 0
		}
		sum += drop
		counted++
	}
	if counted == 0 {
		return 0, errors.New("core: baseline has no usable harmonics")
	}
	return sum / float64(counted), nil
}

// Check reports whether the fan appears failed over [from, to),
// together with the score.
func (fm *FanMonitor) Check(from, to float64) (failed bool, score float64, err error) {
	score, err = fm.Score(from, to)
	if err != nil {
		return false, 0, err
	}
	return score >= fm.AlertRatio, score, nil
}

// AmplitudeDiff computes the paper's Figure 7 statistic directly: the
// mean absolute per-harmonic FFT amplitude difference between two
// captures, in dB relative to the first capture's mean amplitude.
func (fm *FanMonitor) AmplitudeDiff(fromA, toA, fromB, toB float64) float64 {
	a := fm.amplitudes(fromA, toA)
	b := fm.amplitudes(fromB, toB)
	var diff, ref float64
	for i := range a {
		diff += math.Abs(a[i] - b[i])
		ref += a[i]
	}
	if ref <= 0 {
		return 0
	}
	return diff / ref
}
