package core

import (
	"mdn/internal/netsim"
	"mdn/internal/telemetry"
)

// PortScan is the Section 5 security-telemetry application: the
// switch plays a tone whose frequency is based on the packet's
// destination port; a naive sequential scan appears as a clean
// monotone sweep across the switch's frequency set (the logarithmic
// line of Figure 4c's mel-scaled spectrogram), and the controller
// alerts when it hears too many distinct port tones from one switch
// within an interval.
type PortScan struct {
	// FirstPort is the lowest monitored destination port.
	FirstPort uint16
	// Interval is the alerting window in seconds.
	Interval float64
	// Threshold is the distinct-port count within one interval that
	// raises a scan alert.
	Threshold int

	voice *Voice
	freqs []float64
	onset *OnsetFilter

	distinct DistinctCounter
	alerted  bool // alert already raised in the current interval

	// HistoryMax bounds Alerts and Sweep to the last N entries each
	// (0 means DefaultHistoryMax).
	HistoryMax int
	// HistoryDropped counts entries evicted from Alerts and Sweep by
	// the bound.
	HistoryDropped uint64

	// Alerts accumulates raised alerts (last HistoryMax).
	Alerts []ScanAlert
	// Sweep records onsets in time order for the spectrogram view,
	// bounded like Alerts.
	Sweep []Detection

	events uint64 // alerts raised, including evicted ones
}

// ScanAlert is one port-scan detection.
type ScanAlert struct {
	// Time is the end of the alerting interval.
	Time float64
	// DistinctPorts is how many monitored ports were probed.
	DistinctPorts int
}

// NewPortScan allocates one frequency per monitored port (numPorts
// starting at firstPort) and builds the application.
func NewPortScan(plan *FrequencyPlan, switchName string, voice *Voice, firstPort uint16, numPorts int) (*PortScan, error) {
	// Consecutive scan probes play back to back, so adjacent port
	// tones share windows; guard-band them.
	freqs, err := plan.AllocateSpaced(switchName+"/portscan", numPorts, DefaultStride)
	if err != nil {
		return nil, err
	}
	return &PortScan{
		FirstPort: firstPort,
		Interval:  2.0,
		Threshold: 10,
		voice:     voice,
		freqs:     freqs,
		onset:     NewOnsetFilter(),
		distinct:  NewExactDistinctCounter(),
	}, nil
}

// SetDistinctCounter swaps the distinct-port store — e.g. a
// SketchDistinctCounter for bounded-memory operation. Call before
// Start.
func (ps *PortScan) SetDistinctCounter(c DistinctCounter) {
	if c != nil {
		ps.distinct = c
	}
}

// DistinctCounter returns the active distinct-port store.
func (ps *PortScan) DistinctCounter() DistinctCounter { return ps.distinct }

// Frequencies returns the monitored port tones.
func (ps *PortScan) Frequencies() []float64 {
	out := make([]float64, len(ps.freqs))
	copy(out, ps.freqs)
	return out
}

// FrequencyFor returns the tone for a destination port, or 0 when the
// port is outside the monitored range.
func (ps *PortScan) FrequencyFor(port uint16) float64 {
	idx := int(port) - int(ps.FirstPort)
	if idx < 0 || idx >= len(ps.freqs) {
		return 0
	}
	return ps.freqs[idx]
}

// PortFor inverts FrequencyFor (0, false when unknown).
func (ps *PortScan) PortFor(freq float64) (uint16, bool) {
	for i, f := range ps.freqs {
		if f == freq {
			return ps.FirstPort + uint16(i), true
		}
	}
	return 0, false
}

// Tap is the switch-side hook: play the destination port's tone.
func (ps *PortScan) Tap(pkt *netsim.Packet, _ int) {
	if f := ps.FrequencyFor(pkt.Flow.DstPort); f > 0 {
		ps.voice.Play(f)
	}
}

// Start begins interval accounting on the controller's clock.
func (ps *PortScan) Start(ctrl *Controller, at float64) {
	ctrl.SubscribeWindows(ps.HandleWindow)
	ctrl.Sim().Every(at+ps.Interval, ps.Interval, func(now float64) {
		ps.closeInterval(now)
	})
}

// HandleWindow consumes one detection window. The alert fires the
// moment the distinct-port count crosses Threshold — not at the end
// of the interval — and at most once per interval; the guard re-arms
// when the interval closes.
func (ps *PortScan) HandleWindow(_ float64, dets []Detection) {
	for _, det := range ps.onset.Step(dets) {
		if _, ok := ps.PortFor(det.Frequency); !ok {
			continue
		}
		ps.distinct.Observe(FreqKey(det.Frequency))
		ps.Sweep = appendBounded(ps.Sweep, det, ps.HistoryMax, &ps.HistoryDropped)
		if d := ps.distinct.Distinct(); d >= ps.Threshold && !ps.alerted {
			ps.alerted = true
			ps.events++
			ps.Alerts = appendBounded(ps.Alerts, ScanAlert{
				Time: det.Time, DistinctPorts: d,
			}, ps.HistoryMax, &ps.HistoryDropped)
		}
	}
}

func (ps *PortScan) closeInterval(_ float64) {
	ps.distinct.Reset()
	ps.alerted = false
}

// Instrument exposes the application's counters under app="portscan",
// switch=switchName.
func (ps *PortScan) Instrument(reg *telemetry.Registry, switchName string) {
	reg.Func(appLabels(metricAppOnsets, "portscan", switchName),
		func() float64 { return float64(ps.onset.Onsets) })
	reg.Func(appLabels(metricAppEvents, "portscan", switchName),
		func() float64 { return float64(ps.events) })
	reg.Func(appLabels(metricAppHistoryDropped, "portscan", switchName),
		func() float64 { return float64(ps.HistoryDropped) })
	instrumentSketchDistinct(reg, "portscan", switchName, ps.distinct)
}

// SweepIsMonotone reports whether the recorded sweep's frequencies
// are nondecreasing — the visual signature of a sequential scan.
func (ps *PortScan) SweepIsMonotone() bool {
	for i := 1; i < len(ps.Sweep); i++ {
		if ps.Sweep[i].Frequency < ps.Sweep[i-1].Frequency {
			return false
		}
	}
	return len(ps.Sweep) > 0
}
