package core

import "testing"

func TestSequenceFSMAccepts(t *testing.T) {
	f := SequenceFSM([]string{"a", "b", "c"})
	accepted := 0
	f.OnAccept = func() { accepted++ }
	f.Step("a")
	f.Step("b")
	f.Step("c")
	if accepted != 1 || f.Accepts != 1 {
		t.Errorf("accepted = %d", accepted)
	}
	if f.State() != "q0" {
		t.Errorf("state after accept = %q, want reset to q0", f.State())
	}
}

func TestSequenceFSMWrongSymbolResets(t *testing.T) {
	f := SequenceFSM([]string{"a", "b", "c"})
	var resets []string
	f.OnReset = func(state, sym string) { resets = append(resets, state+"/"+sym) }
	f.Step("a")
	f.Step("c") // wrong
	if f.State() != "q0" {
		t.Errorf("state = %q, want q0", f.State())
	}
	if len(resets) != 1 || resets[0] != "q1/c" {
		t.Errorf("resets = %v", resets)
	}
	// Full correct sequence still works afterwards.
	f.Step("a")
	f.Step("b")
	f.Step("c")
	if f.Accepts != 1 {
		t.Errorf("accepts = %d", f.Accepts)
	}
}

func TestFSMWrongSymbolCanRestartSequence(t *testing.T) {
	// After "a", another "a" resets but counts as the first symbol
	// of a fresh attempt (knockd behaviour).
	f := SequenceFSM([]string{"a", "b"})
	f.Step("a")
	f.Step("a") // reset, then re-dispatch: back in q1
	if f.State() != "q1" {
		t.Errorf("state = %q, want q1", f.State())
	}
	f.Step("b")
	if f.Accepts != 1 {
		t.Errorf("accepts = %d", f.Accepts)
	}
}

func TestFSMNonStrictStaysPut(t *testing.T) {
	f := SequenceFSM([]string{"a", "b"})
	f.StrictReset = false
	f.Step("a")
	f.Step("x")
	if f.State() != "q1" {
		t.Errorf("state = %q, want q1 (non-strict)", f.State())
	}
	f.Step("b")
	if f.Accepts != 1 {
		t.Error("should still accept")
	}
}

func TestFSMRepeatedAccepts(t *testing.T) {
	f := SequenceFSM([]string{"k"})
	for i := 0; i < 3; i++ {
		f.Step("k")
	}
	if f.Accepts != 3 {
		t.Errorf("accepts = %d", f.Accepts)
	}
}

func TestFSMManualConstruction(t *testing.T) {
	// A two-state toggle with an accept on "done".
	f := NewFSM("idle", "done")
	f.AddTransition("idle", "go", "busy")
	f.AddTransition("busy", "finish", "done")
	f.AddTransition("busy", "pause", "idle")
	f.Step("go")
	f.Step("pause")
	if f.State() != "idle" {
		t.Errorf("state = %q", f.State())
	}
	f.Step("go")
	f.Step("finish")
	if f.Accepts != 1 {
		t.Error("manual FSM should accept")
	}
}

func TestFSMResetAndSequencePanics(t *testing.T) {
	f := SequenceFSM([]string{"a", "b"})
	f.Step("a")
	f.Reset()
	if f.State() != "q0" {
		t.Error("Reset failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty sequence")
		}
	}()
	SequenceFSM(nil)
}
