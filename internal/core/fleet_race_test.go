package core

import (
	"sync"
	"testing"

	"mdn/internal/acoustic"
	"mdn/internal/audio"
)

// The fleet's concurrency claims, exercised under -race (the CI test
// job runs the whole tree with the race detector): per-worker detector
// clones analysing a shared Room concurrently, pooled capture buffers
// on distinct microphones, and live emission scheduling interleaved
// with window fan-outs.

func TestFleetRaceConcurrentClonesOverSharedRoom(t *testing.T) {
	room, mics, det := fleetRoom(16)
	f := NewFleet(det, 8)
	defer f.Close()
	for _, m := range mics {
		f.AddMicrophone(m)
	}
	sp := room.AddSpeaker("live", acoustic.Position{X: 3})

	// One goroutine keeps playing while the fleet analyses window
	// after window — Play takes the room's write lock against the
	// workers' concurrent read-locked captures.
	var wg sync.WaitGroup
	wg.Add(1)
	stop := make(chan struct{})
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			sp.Play(float64(i)*0.010, audio.Tone{
				Frequency: 3000, Duration: 0.030,
				Amplitude: acoustic.SPLToAmplitude(55),
			})
		}
	}()
	for w := 0; w < 30; w++ {
		from := float64(w) * 0.050
		f.Analyse(from, from+0.050)
	}
	close(stop)
	wg.Wait()
}

// TestFleetRaceWatchEditMidWindow hammers AddWatch on the fleet's
// template detector while windows are analysed — the clone-staleness
// race this PR fixes: Fleet.Analyse snapshots the watch revision at
// fan-out and re-syncs + retries when an edit lands mid-window, so a
// merged batch never mixes clones holding different watch lists.
func TestFleetRaceWatchEditMidWindow(t *testing.T) {
	room, mics, det := fleetRoom(8)
	f := NewFleet(det, 4)
	defer f.Close()
	for _, m := range mics {
		f.AddMicrophone(m)
	}
	// A tone on a frequency only the concurrent edits watch, playing
	// throughout, so post-edit windows can prove the additions took.
	const added = 4000.0
	sp := room.AddSpeaker("late", acoustic.Position{X: 2})
	sp.Play(0.010, audio.Tone{Frequency: added, Duration: 10,
		Amplitude: acoustic.SPLToAmplitude(60)})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			det.AddWatch(added + float64(i+1)*7)
		}
		det.AddWatch(added)
	}()
	for w := 0; w < 60; w++ {
		from := 0.1 + float64(w)*0.050
		dets := f.Analyse(from, from+0.050)
		// Whatever revision each window ran at, the batch must be
		// internally consistent: sorted and within one snapshot's size.
		for i := 1; i < len(dets); i++ {
			a, b := dets[i-1], dets[i]
			if a.Time > b.Time || (a.Time == b.Time && a.Frequency > b.Frequency) {
				t.Fatalf("window %d: merged batch out of order at %d: %+v, %+v", w, i, a, b)
			}
		}
	}
	wg.Wait()
	// Edits have settled; one more window must hear the added tone.
	dets := f.Analyse(3.2, 3.25)
	heard := false
	for _, d := range dets {
		if d.Frequency == added {
			heard = true
		}
	}
	if !heard {
		t.Errorf("post-edit window missed the added %g Hz tone: %+v", added, dets)
	}
}

func TestFleetRaceTwoFleetsShareOneRoom(t *testing.T) {
	// Two independent fleets (two controllers listening to the same
	// hall) may analyse the same room at the same time: all capture
	// state is per-microphone, all detection state per-clone.
	room := acoustic.NewRoom(44100, 11)
	spk := room.AddSpeaker("s", acoustic.Position{X: 1})
	spk.Play(0.01, audio.Tone{Frequency: 800, Duration: 2,
		Amplitude: acoustic.SPLToAmplitude(60)})

	build := func(prefix string) *Fleet {
		det := NewDetector(MethodGoertzel, []float64{800})
		f := NewFleet(det, 4)
		for i := 0; i < 4; i++ {
			f.AddMicrophone(room.AddMicrophone(prefix+itoa(i),
				acoustic.Position{Y: float64(i)}, 0.0005))
		}
		return f
	}
	a, b := build("a"), build("b")
	defer a.Close()
	defer b.Close()

	var wg sync.WaitGroup
	for _, f := range []*Fleet{a, b} {
		f := f
		wg.Add(1)
		go func() {
			defer wg.Done()
			for w := 0; w < 20; w++ {
				from := float64(w) * 0.050
				if len(f.Analyse(from, from+0.050)) == 0 {
					t.Error("fleet heard nothing")
					return
				}
			}
		}()
	}
	wg.Wait()
}
