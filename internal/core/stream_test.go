package core

import (
	"errors"
	"math"
	"testing"

	"mdn/internal/acoustic"
	"mdn/internal/audio"
)

// streamSchedule places a repeatable tone schedule in a testbed: three
// bursts on two frequencies, overlapping, plus a quiet gap — enough
// structure that the batch and streaming paths would diverge visibly on
// any capture, transform, or filter discrepancy.
func streamSchedule(tb *testbed, freqs []float64) {
	sp := tb.room.AddSpeaker("s1", acoustic.Position{X: 1})
	sp2 := tb.room.AddSpeaker("s2", acoustic.Position{X: -1.5, Y: 0.5})
	amp := acoustic.SPLToAmplitude(60)
	sp.Play(0.080, audio.Tone{Frequency: freqs[0], Duration: 0.120, Amplitude: amp})
	sp2.Play(0.130, audio.Tone{Frequency: freqs[1], Duration: 0.070, Amplitude: amp * 0.7})
	sp.Play(0.410, audio.Tone{Frequency: freqs[1], Duration: 0.055, Amplitude: amp})
}

// windowRec is one dispatched window batch, detections deep-copied out
// of the dispatch scratch.
type windowRec struct {
	from float64
	dets []Detection
}

func recordWindows(ctrl *Controller) *[]windowRec {
	recs := &[]windowRec{}
	ctrl.SubscribeWindows(func(from float64, dets []Detection) {
		*recs = append(*recs, windowRec{from: from, dets: append([]Detection(nil), dets...)})
	})
	return recs
}

// TestStreamHopEqualsWindowBitExactWithBatch is the equivalence
// contract: at hop == window the streaming pipeline must reproduce the
// batch window loop's dispatched batches exactly — same window starts,
// same detections, bit-identical amplitudes — for both detection
// methods. Identical seeds give identical self-noise, so any float
// difference anywhere in capture, transform, or filtering fails this.
func TestStreamHopEqualsWindowBitExactWithBatch(t *testing.T) {
	for _, method := range []Method{MethodGoertzel, MethodFFT} {
		run := func(stream bool) []windowRec {
			tb := newTestbed(42)
			freqs := tb.plan.MustAllocate("s1", 2)
			streamSchedule(tb, freqs)
			ctrl := NewController(tb.sim, tb.mic, NewDetector(method, freqs))
			recs := recordWindows(ctrl)
			if stream {
				ctrl.StartStream(0, ctrl.Window)
			} else {
				ctrl.Start(0)
			}
			tb.sim.RunUntil(0.6)
			return *recs
		}
		batch, streamed := run(false), run(true)
		if len(batch) == 0 || len(streamed) != len(batch) {
			t.Fatalf("method %v: %d streamed windows vs %d batch", method, len(streamed), len(batch))
		}
		for i := range batch {
			b, s := batch[i], streamed[i]
			if b.from != s.from || len(b.dets) != len(s.dets) {
				t.Fatalf("method %v window %d: stream (%g, %d dets) != batch (%g, %d dets)",
					method, i, s.from, len(s.dets), b.from, len(b.dets))
			}
			for j := range b.dets {
				if b.dets[j] != s.dets[j] {
					t.Fatalf("method %v window %d det %d: stream %+v != batch %+v (not bit-exact)",
						method, i, j, s.dets[j], b.dets[j])
				}
			}
		}
	}
}

// TestStreamDetectsMidWindowOnsetWithinOneHop is the latency claim: a
// tone starting mid-window is detected within one hop of its arrival at
// the microphone, not at the close of the batch window it lands in.
func TestStreamDetectsMidWindowOnsetWithinOneHop(t *testing.T) {
	tb := newTestbed(7)
	freqs := tb.plan.MustAllocate("s1", 1)
	sp := tb.room.AddSpeaker("s1", acoustic.Position{X: 1})
	const start = 0.1037 // mid-window, mid-hop
	sp.Play(start, audio.Tone{Frequency: freqs[0], Duration: 0.090,
		Amplitude: acoustic.SPLToAmplitude(60)})

	ctrl := tb.controller(freqs)
	const hop = 0.010 // 441 samples: one fifth of the 50 ms window
	s := ctrl.StartStream(0, hop)
	var onsets []Detection
	s.OnOnset = func(d Detection) { onsets = append(onsets, d) }
	tb.sim.RunUntil(0.4)

	if len(onsets) != 1 {
		t.Fatalf("onsets = %+v, want exactly one", onsets)
	}
	arr, ok := tb.mic.LatestArrivalBefore(freqs[0], ctrl.Detector.ToleranceHz, onsets[0].Time)
	if !ok {
		t.Fatal("no ground-truth arrival for the onset")
	}
	lat := onsets[0].Time - arr
	if lat <= 0 || lat > hop+1e-9 {
		t.Errorf("sound-to-detection latency = %.4fs, want within one hop (%.3fs)", lat, hop)
	}
	// The batch path could not have reported before the close of the
	// window containing the arrival.
	batchClose := math.Ceil(arr/ctrl.Window) * ctrl.Window
	if onsets[0].Time >= batchClose {
		t.Errorf("onset at %.4f not earlier than batch close %.4f", onsets[0].Time, batchClose)
	}
}

// TestStreamOnsetDedupAcrossBoundaryOffsets sweeps a tone's start
// across an analysis-window boundary at 1-sample offsets. Whatever the
// alignment, a tone spanning several hop windows must report exactly
// one onset — the boundary-duplication bug class this PR closes at the
// detection layer.
func TestStreamOnsetDedupAcrossBoundaryOffsets(t *testing.T) {
	const (
		hop      = 0.010
		boundary = 0.150 // both a hop close and a window boundary
		dt       = 1.0 / 44100
	)
	for off := -3; off <= 3; off++ {
		start := boundary + float64(off)*dt
		tb := newTestbed(11)
		freqs := tb.plan.MustAllocate("s1", 1)
		sp := tb.room.AddSpeaker("s1", acoustic.Position{X: 1})
		sp.Play(start, audio.Tone{Frequency: freqs[0], Duration: 0.080,
			Amplitude: acoustic.SPLToAmplitude(60)})
		ctrl := tb.controller(freqs)
		s := ctrl.StartStream(0, hop)
		count := 0
		s.OnOnset = func(Detection) { count++ }
		tb.sim.RunUntil(0.5)
		if count != 1 {
			t.Errorf("tone starting at boundary%+d samples: %d onsets, want 1", off, count)
		}
		if s.Onsets != uint64(count) {
			t.Errorf("offset %+d: Onsets counter %d != callback count %d", off, s.Onsets, count)
		}
	}
}

// TestStreamCompactMidStream compacts the room's emission store past
// the streaming ring's next capture span mid-run: the hop must fail
// with acoustic.ErrCompacted (typed, counted, recorded), the pipeline
// must re-prime at the live edge, and a tone played after the glitch
// must still produce an onset.
func TestStreamCompactMidStream(t *testing.T) {
	tb := newTestbed(13)
	freqs := tb.plan.MustAllocate("s1", 1)
	sp := tb.room.AddSpeaker("s1", acoustic.Position{X: 1})
	ctrl := tb.controller(freqs)
	s := ctrl.StartStream(0, 0.010)
	var onsets []Detection
	s.OnOnset = func(d Detection) { onsets = append(onsets, d) }

	// Compact to a time strictly between hop boundaries, so the next
	// hop's span [0.200, 0.210) starts behind the horizon.
	tb.sim.Schedule(0.2005, func() { tb.room.CompactBefore(0.203) })
	sp.Play(0.300, audio.Tone{Frequency: freqs[0], Duration: 0.080,
		Amplitude: acoustic.SPLToAmplitude(60)})
	tb.sim.RunUntil(0.5)

	if s.CaptureErrors != 1 {
		t.Fatalf("CaptureErrors = %d, want exactly 1 (one hop behind the horizon)", s.CaptureErrors)
	}
	recorded := ctrl.Errors.Errors()
	found := false
	for _, e := range recorded {
		if e.App == "stream" && errors.Is(e.Err, acoustic.ErrCompacted) {
			found = true
		}
	}
	if !found {
		t.Errorf("ErrCompacted not recorded in the error log: %+v", recorded)
	}
	if len(onsets) != 1 || math.Abs(onsets[0].Frequency-freqs[0]) > 1e-9 {
		t.Fatalf("post-glitch onsets = %+v, want one at %g Hz", onsets, freqs[0])
	}
	if onsets[0].Time < 0.300 {
		t.Errorf("onset at %.3f predates the post-glitch tone", onsets[0].Time)
	}

	// Out-of-band reads behind the horizon fail typed too.
	if _, err := ctrl.AnalyseOnce(0.10, 0.15); !errors.Is(err, acoustic.ErrCompacted) {
		t.Errorf("AnalyseOnce behind horizon = %v, want ErrCompacted", err)
	}
}

func TestCheckStreamHop(t *testing.T) {
	const w, r = 0.050, 44100.0
	for _, hop := range []float64{0.010, 0.050, 0.005 * 10.0 / 3.0, 735 / r, 1 / r} {
		if err := CheckStreamHop(w, r, hop); err != nil {
			t.Errorf("CheckStreamHop(%g) = %v, want nil", hop, err)
		}
	}
	for _, hop := range []float64{0, -0.010, 0.012, 0.0125, 0.005, 440 / r, 0.060} {
		if err := CheckStreamHop(w, r, hop); err == nil {
			t.Errorf("CheckStreamHop(%g) accepted a misaligned hop", hop)
		}
	}
}

func TestStartStreamPanicsOnMisalignedHop(t *testing.T) {
	tb := newTestbed(17)
	ctrl := tb.controller([]float64{1000})
	defer func() {
		if recover() == nil {
			t.Error("StartStream with a misaligned hop did not panic")
		}
	}()
	ctrl.StartStream(0, 0.012)
}

func TestStreamStopHalts(t *testing.T) {
	tb := newTestbed(19)
	ctrl := tb.controller([]float64{1000})
	s := ctrl.StartStream(0, 0.010)
	if ctrl.Stream() != s {
		t.Fatal("Stream() does not return the running pipeline")
	}
	tb.sim.RunUntil(0.2)
	hops := s.Hops
	ctrl.Stop()
	if ctrl.Stream() != nil {
		t.Error("Stop left the stream attached")
	}
	tb.sim.RunUntil(0.5)
	if s.Hops != hops {
		t.Errorf("hops grew after Stop: %d -> %d", hops, s.Hops)
	}
}

// TestStreamSteadyStateAllocs drives the full per-hop path — capture,
// SPSC hand-off, sliding transform, filter, dedup, dispatch — and
// requires zero steady-state allocations, the same discipline the batch
// fleet path holds.
func TestStreamSteadyStateAllocs(t *testing.T) {
	tb := newTestbed(23)
	freqs := tb.plan.MustAllocate("s1", 2)
	sp := tb.room.AddSpeaker("s1", acoustic.Position{X: 1})
	sp.Play(0, audio.Tone{Frequency: freqs[0], Duration: 120,
		Amplitude: acoustic.SPLToAmplitude(60)})
	ctrl := tb.controller(freqs)
	ctrl.SubscribeWindows(func(float64, []Detection) {})
	const hop = 0.010
	s := ctrl.StartStream(0, hop)

	next := hop
	step := func() {
		s.step(next-hop, next)
		next += hop
	}
	for i := 0; i < 20; i++ {
		step() // fill the window, warm all scratch
	}
	// AllocsPerRun counts process-wide mallocs under GOMAXPROCS(1);
	// unrelated background work can flakily land inside a trial, so any
	// clean trial proves the path allocation-free.
	allocs := math.Inf(1)
	for trial := 0; trial < 3 && allocs != 0; trial++ {
		if got := testing.AllocsPerRun(100, step); got < allocs {
			allocs = got
		}
	}
	if allocs != 0 {
		t.Errorf("streaming hop allocates %g/op in steady state, want 0", allocs)
	}
}
