package core

import "fmt"

// FSM is a deterministic finite state machine over string symbols —
// the paper's Section 4 observes that sounds "if played in the right
// sequence, can be used ... to implement any finite state machine for
// network state processing". The port-knocking application is one
// instance; the type is exported so users can build others.
type FSM struct {
	// Start is the initial state.
	Start string
	// Accept is the accepting state; reaching it fires OnAccept and
	// resets the machine.
	Accept string
	// OnAccept runs when the machine reaches Accept.
	OnAccept func()
	// OnReset runs whenever an unexpected symbol resets the machine
	// (not on accept).
	OnReset func(state, symbol string)
	// StrictReset controls what a wrong symbol does: if true the
	// machine returns to Start; if false it stays put. Port knocking
	// wants true (a wrong knock restarts authentication).
	StrictReset bool

	transitions map[string]map[string]string
	state       string

	// Accepts counts completed runs.
	Accepts uint64
	// Resets counts wrong-symbol resets.
	Resets uint64
}

// NewFSM creates a machine in the start state.
func NewFSM(start, accept string) *FSM {
	return &FSM{
		Start:       start,
		Accept:      accept,
		StrictReset: true,
		transitions: make(map[string]map[string]string),
		state:       start,
	}
}

// AddTransition wires state --symbol--> next.
func (f *FSM) AddTransition(state, symbol, next string) {
	m := f.transitions[state]
	if m == nil {
		m = make(map[string]string)
		f.transitions[state] = m
	}
	m[symbol] = next
}

// State returns the current state.
func (f *FSM) State() string { return f.state }

// Reset returns the machine to the start state.
func (f *FSM) Reset() { f.state = f.Start }

// Step consumes one symbol and returns the new state.
func (f *FSM) Step(symbol string) string {
	next, ok := f.transitions[f.state][symbol]
	if !ok {
		f.Resets++
		if f.OnReset != nil {
			f.OnReset(f.state, symbol)
		}
		if f.StrictReset {
			f.state = f.Start
			// The wrong symbol may itself be the first symbol of a
			// valid sequence — re-dispatch once from the start state,
			// like real port-knocking daemons do.
			if n2, ok2 := f.transitions[f.state][symbol]; ok2 {
				f.state = n2
			}
		}
		return f.state
	}
	f.state = next
	if f.state == f.Accept {
		f.Accepts++
		if f.OnAccept != nil {
			f.OnAccept()
		}
		f.state = f.Start
	}
	return f.state
}

// SequenceFSM builds the linear machine that accepts exactly the
// given symbol sequence — the shape port knocking needs.
//
// Constructor invariant (documented panic): an empty sequence is a
// configuration bug and panics at construction time.
func SequenceFSM(symbols []string) *FSM {
	if len(symbols) == 0 {
		panic("core: SequenceFSM requires at least one symbol")
	}
	f := NewFSM("q0", fmt.Sprintf("q%d", len(symbols)))
	for i, s := range symbols {
		f.AddTransition(fmt.Sprintf("q%d", i), s, fmt.Sprintf("q%d", i+1))
	}
	return f
}
