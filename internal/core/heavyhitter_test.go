package core

import (
	"testing"

	"mdn/internal/acoustic"
	"mdn/internal/netsim"
)

// hhBed wires a single switch carrying a traffic mix with the
// heavy-hitter telemetry attached.
type hhBed struct {
	*testbed
	h1, h2 *netsim.Host
	sw     *netsim.Switch
	hh     *HeavyHitter
	ctrl   *Controller
}

func newHHBed(t *testing.T, seed int64, buckets int) *hhBed {
	t.Helper()
	tb := newTestbed(seed)
	h1 := netsim.NewHost(tb.sim, "h1", netsim.MustAddr("10.0.0.1"))
	h2 := netsim.NewHost(tb.sim, "h2", netsim.MustAddr("10.0.0.2"))
	sw := netsim.NewSwitch(tb.sim, "s1")
	netsim.Connect(tb.sim, h1, 1, sw, 1, 1e9, 0.0001, 0)
	netsim.Connect(tb.sim, h2, 1, sw, 2, 1e9, 0.0001, 0)
	sw.InstallRule(netsim.Rule{Priority: 1, Match: netsim.Match{Dst: h2.Addr}, Action: netsim.Output(2)})

	voice := tb.voiceAt("s1", acoustic.Position{X: 1.2})
	hh, err := NewHeavyHitter(tb.plan, "s1", voice, buckets)
	if err != nil {
		t.Fatal(err)
	}
	sw.Tap = hh.Tap
	ctrl := tb.controller(hh.Frequencies())
	hh.Start(ctrl, 0)
	ctrl.Start(0)
	return &hhBed{testbed: tb, h1: h1, h2: h2, sw: sw, hh: hh, ctrl: ctrl}
}

func flowTo(h2 *netsim.Host, srcPort uint16) netsim.FiveTuple {
	return netsim.FiveTuple{
		Src: netsim.MustAddr("10.0.0.1"), Dst: h2.Addr,
		SrcPort: srcPort, DstPort: 80, Proto: netsim.ProtoTCP,
	}
}

func TestHeavyHitterFlagsElephantNotMice(t *testing.T) {
	bed := newHHBed(t, 20, 16)
	elephant := flowTo(bed.h2, 5000)
	// Pick mice that do not share the elephant's bucket, as the
	// paper's per-flow frequency assumption requires.
	eBucket := bed.hh.BucketOf(elephant)
	var mice []netsim.FiveTuple
	for p := uint16(6000); len(mice) < 4; p++ {
		f := flowTo(bed.h2, p)
		if bed.hh.BucketOf(f) != eBucket {
			mice = append(mice, f)
		}
	}
	// Elephant: 200 pps. Mice: 1.5 pps each.
	netsim.StartCBR(bed.sim, bed.h1, elephant, 200, 1500, 0.1, 5)
	for i, m := range mice {
		netsim.StartPoisson(bed.sim, bed.h1, m, 1.5, 300, 0.1, 5, int64(100+i))
	}
	bed.sim.RunUntil(5)

	flagged := bed.hh.FlaggedBuckets()
	if len(flagged) == 0 {
		t.Fatalf("no heavy hitter flagged; history %+v", bed.hh.History)
	}
	for _, b := range flagged {
		if b != eBucket {
			t.Errorf("false positive: bucket %d flagged (elephant is %d)", b, eBucket)
		}
	}
	if len(bed.hh.Reports) < 3 {
		t.Errorf("elephant should be flagged in most intervals: %d reports", len(bed.hh.Reports))
	}
}

func TestHeavyHitterQuietWithoutTraffic(t *testing.T) {
	bed := newHHBed(t, 21, 8)
	bed.sim.RunUntil(3)
	if len(bed.hh.Reports) != 0 {
		t.Errorf("idle network flagged %d heavy hitters", len(bed.hh.Reports))
	}
	if len(bed.hh.History) != 3 {
		t.Errorf("history = %d intervals, want 3", len(bed.hh.History))
	}
}

func TestHeavyHitterUnderSongNoise(t *testing.T) {
	// Figure 4b: detection still works while a pop song plays.
	bed := newHHBed(t, 22, 16)
	song := PopSongNoise(44100, 4, 0.02, 7)
	bed.room.AddNoise(song)

	elephant := flowTo(bed.h2, 5000)
	netsim.StartCBR(bed.sim, bed.h1, elephant, 200, 1500, 0.1, 4)
	bed.sim.RunUntil(4)

	eBucket := bed.hh.BucketOf(elephant)
	found := false
	for _, b := range bed.hh.FlaggedBuckets() {
		if b == eBucket {
			found = true
		}
	}
	if !found {
		t.Errorf("elephant lost under song noise; flagged %v, history %+v",
			bed.hh.FlaggedBuckets(), bed.hh.History)
	}
}

func TestHeavyHitterBucketOfStable(t *testing.T) {
	bed := newHHBed(t, 23, 16)
	f := flowTo(bed.h2, 1234)
	b1 := bed.hh.BucketOf(f)
	b2 := bed.hh.BucketOf(f)
	if b1 != b2 {
		t.Error("bucket not stable")
	}
	if b1 < 0 || b1 >= 16 {
		t.Errorf("bucket %d out of range", b1)
	}
}

func TestHeavyHitterHistoryCountsRateLimited(t *testing.T) {
	// Even a very fast flow cannot produce more onsets per second
	// than the voice MinGap allows (~6.7/s at 150 ms).
	bed := newHHBed(t, 24, 8)
	netsim.StartCBR(bed.sim, bed.h1, flowTo(bed.h2, 777), 1000, 1500, 0, 2)
	bed.sim.RunUntil(2)
	for _, s := range bed.hh.History {
		for b, c := range s.Counts {
			if c > 8 {
				t.Errorf("bucket %d counted %d onsets in 1 s, exceeds rate limit", b, c)
			}
		}
	}
}
