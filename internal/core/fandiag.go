package core

import (
	"math"

	"mdn/internal/dsp"
)

// FanState classifies a monitored fan — the paper's Section 7 open
// question (1), "how many distinct server anomalies can we
// recognize?". Beyond on/off, the harmonic ladder's position reveals
// speed anomalies: a slipping or obstructed fan spins slower, moving
// the whole blade-pass ladder down in frequency.
type FanState int

// Recognisable fan states.
const (
	// FanHealthy: fundamental present at the trained frequency.
	FanHealthy FanState = iota
	// FanStopped: no fundamental anywhere near the trained band.
	FanStopped
	// FanSpeedAnomaly: a strong fundamental exists but at a shifted
	// frequency (slipping belt, failing bearing, dust-loaded blades,
	// or a misconfigured fan curve).
	FanSpeedAnomaly
)

// String names the state.
func (s FanState) String() string {
	switch s {
	case FanHealthy:
		return "healthy"
	case FanStopped:
		return "stopped"
	case FanSpeedAnomaly:
		return "speed-anomaly"
	default:
		return "unknown"
	}
}

// FanDiagnosis is the result of classifying a capture window.
type FanDiagnosis struct {
	// State is the classification.
	State FanState
	// FundamentalHz is the strongest blade-pass candidate found (0
	// when stopped).
	FundamentalHz float64
	// FrequencyShift is the relative deviation from the trained
	// fundamental (e.g. -0.17 for a fan running 17% slow).
	FrequencyShift float64
	// Amplitude is the found fundamental's amplitude.
	Amplitude float64
}

// Diagnose classifies the fan over [from, to). It extends Check with
// a fundamental search: the power spectrum is scanned over
// [0.5, 1.2]× the trained blade-pass frequency for the strongest
// peak, which is then compared in frequency and amplitude against the
// baseline. Requires a trained monitor.
func (fm *FanMonitor) Diagnose(from, to float64) (FanDiagnosis, error) {
	if !fm.trained {
		return FanDiagnosis{}, ErrNotTrained
	}
	f0 := fm.Harmonics[0]
	baseAmp := fm.baseline[0]

	buf := fm.mic.Capture(from, to)
	n := buf.Len()
	if n == 0 {
		return FanDiagnosis{State: FanStopped}, nil
	}
	spec, fftSize := dsp.WindowedPowerSpectrum(buf.Samples, dsp.Hann)

	lo := dsp.FrequencyBin(0.5*f0, fftSize, buf.SampleRate)
	hi := dsp.FrequencyBin(1.2*f0, fftSize, buf.SampleRate)
	best := lo
	for k := lo; k <= hi && k < len(spec); k++ {
		if spec[k] > spec[best] {
			best = k
		}
	}
	foundHz := dsp.BinFrequency(best, fftSize, buf.SampleRate)
	// Amplitude estimate from the windowed FFT peak.
	gain := dsp.Hann.Gain(n)
	amp := 2 * math.Sqrt(spec[best]) / (float64(n) * gain)

	d := FanDiagnosis{FundamentalHz: foundHz, Amplitude: amp}
	d.FrequencyShift = (foundHz - f0) / f0
	switch {
	case amp < 0.25*baseAmp:
		d.State = FanStopped
		d.FundamentalHz = 0
		d.FrequencyShift = 0
	case math.Abs(d.FrequencyShift) > 0.05:
		d.State = FanSpeedAnomaly
	default:
		d.State = FanHealthy
	}
	return d, nil
}

// RPMEstimate converts a diagnosed fundamental back to RPM given the
// fan's blade count (fundamental = RPM/60 × blades).
func (d FanDiagnosis) RPMEstimate(blades int) float64 {
	if blades <= 0 || d.FundamentalHz <= 0 {
		return 0
	}
	return d.FundamentalHz * 60 / float64(blades)
}
