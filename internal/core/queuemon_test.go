package core

import (
	"testing"

	"mdn/internal/acoustic"
	"mdn/internal/netsim"
	"mdn/internal/openflow"
)

// qmBed wires the Figure 5c-d single-switch queue monitoring setup:
// h1 -- s1 -- h2 with a slow egress so the queue actually builds.
type qmBed struct {
	*testbed
	h1, h2 *netsim.Host
	sw     *netsim.Switch
	qm     *QueueMonitor
	ctrl   *Controller
}

func newQMBed(t *testing.T, seed int64, egressBps float64, queueCap int) *qmBed {
	t.Helper()
	tb := newTestbed(seed)
	h1 := netsim.NewHost(tb.sim, "h1", netsim.MustAddr("10.0.0.1"))
	h2 := netsim.NewHost(tb.sim, "h2", netsim.MustAddr("10.0.0.2"))
	sw := netsim.NewSwitch(tb.sim, "s1")
	netsim.Connect(tb.sim, h1, 1, sw, 1, 1e9, 0.0001, 0)
	netsim.Connect(tb.sim, sw, 2, h2, 1, egressBps, 0.0001, queueCap)
	sw.InstallRule(netsim.Rule{Priority: 1, Match: netsim.Match{Dst: h2.Addr}, Action: netsim.Output(2)})

	voice := tb.voiceAt("s1", acoustic.Position{X: 1})
	qm := NewQueueMonitorWithTones(sw, 2, voice, DefaultQueueFrequencies)
	ctrl := tb.controller(qm.Frequencies())
	ctrl.SubscribeWindows(qm.HandleWindow)
	qm.StartSwitchSide(tb.sim, 0.05)
	ctrl.Start(0)
	return &qmBed{testbed: tb, h1: h1, h2: h2, sw: sw, qm: qm, ctrl: ctrl}
}

func TestQueueMonitorLevelOf(t *testing.T) {
	tb := newTestbed(40)
	voice := tb.voiceAt("s1", acoustic.Position{X: 1})
	sw := netsim.NewSwitch(tb.sim, "s1")
	qm := NewQueueMonitorWithTones(sw, 1, voice, DefaultQueueFrequencies)
	cases := map[int]int{0: LevelLow, 24: LevelLow, 25: LevelMid, 75: LevelMid, 76: LevelHigh, 500: LevelHigh}
	for qlen, want := range cases {
		if got := qm.LevelOf(qlen); got != want {
			t.Errorf("LevelOf(%d) = %s, want %s", qlen, LevelName(got), LevelName(want))
		}
	}
	if qm.LevelFor(500) != LevelLow || qm.LevelFor(600) != LevelMid || qm.LevelFor(700) != LevelHigh {
		t.Error("LevelFor mapping wrong")
	}
	if qm.LevelFor(999) != -1 {
		t.Error("unknown frequency should map to -1")
	}
}

func TestQueueMonitorLevelOfBoundaries(t *testing.T) {
	// The paper's Section 6 spec: <25 packets plays 500 Hz (low),
	// 25–75 plays 600 Hz (mid), >75 plays 700 Hz (high). Both
	// boundaries are pinned exactly, for the defaults and for custom
	// thresholds.
	tb := newTestbed(46)
	voice := tb.voiceAt("s1", acoustic.Position{X: 1})
	sw := netsim.NewSwitch(tb.sim, "s1")
	cases := []struct {
		name      string
		low, high int // 0,0 = keep defaults (25, 75)
		qlen      int
		want      int
	}{
		{"default below low boundary", 0, 0, 24, LevelLow},
		{"default at low boundary", 0, 0, 25, LevelMid},
		{"default at high boundary", 0, 0, 75, LevelMid},
		{"default above high boundary", 0, 0, 76, LevelHigh},
		{"custom below low boundary", 10, 20, 9, LevelLow},
		{"custom at low boundary", 10, 20, 10, LevelMid},
		{"custom at high boundary", 10, 20, 20, LevelMid},
		{"custom above high boundary", 10, 20, 21, LevelHigh},
	}
	for _, tc := range cases {
		qm := NewQueueMonitorWithTones(sw, 1, voice, DefaultQueueFrequencies)
		if tc.low != 0 {
			qm.LowThreshold = tc.low
			qm.HighThreshold = tc.high
		}
		if got := qm.LevelOf(tc.qlen); got != tc.want {
			t.Errorf("%s: LevelOf(%d) = %s, want %s",
				tc.name, tc.qlen, LevelName(got), LevelName(tc.want))
		}
	}
}

func TestQueueMonitorTracksRampAndDrain(t *testing.T) {
	// Egress 1 Mbps ≈ 83 pps at 1500 B. Offered: ramp 50 -> 300 pps
	// over 4 s, then stop and drain.
	bed := newQMBed(t, 41, 1e6, 200)
	f := netsim.FiveTuple{Src: bed.h1.Addr, Dst: bed.h2.Addr, SrcPort: 1, DstPort: 2, Proto: netsim.ProtoUDP}
	netsim.StartRamp(bed.sim, bed.h1, f, 50, 300, 1500, 0.2, 4)
	bed.sim.RunUntil(8)

	// Ground truth: the queue series must rise past the high
	// threshold then drain to low.
	sawHigh, endedLow := false, false
	for _, s := range bed.qm.QueueSeries {
		if s.Value > 75 {
			sawHigh = true
		}
	}
	last := bed.qm.QueueSeries[len(bed.qm.QueueSeries)-1]
	if last.Value < 25 {
		endedLow = true
	}
	if !sawHigh || !endedLow {
		t.Fatalf("queue series never congested or never drained (high=%v low=%v)", sawHigh, endedLow)
	}

	// The controller must have decoded the full low->mid->high
	// progression and the return to low.
	levels := bed.qm.HeardLevels()
	if len(levels) < 3 {
		t.Fatalf("heard levels = %v", levels)
	}
	if levels[0] != LevelLow {
		t.Errorf("first level = %s, want low", LevelName(levels[0]))
	}
	foundHigh := false
	for _, l := range levels {
		if l == LevelHigh {
			foundHigh = true
		}
	}
	if !foundHigh {
		t.Errorf("high level never heard: %v", levels)
	}
	if levels[len(levels)-1] != LevelLow {
		t.Errorf("final level = %s, want low after drain", LevelName(levels[len(levels)-1]))
	}
}

func TestQueueMonitorToneLogMatchesSeries(t *testing.T) {
	bed := newQMBed(t, 42, 1e6, 200)
	f := netsim.FiveTuple{Src: bed.h1.Addr, Dst: bed.h2.Addr, SrcPort: 1, DstPort: 2, Proto: netsim.ProtoUDP}
	netsim.StartCBR(bed.sim, bed.h1, f, 200, 1500, 0.2, 2)
	bed.sim.RunUntil(3)
	if len(bed.qm.ToneLog) != len(bed.qm.QueueSeries) {
		t.Fatalf("tone log %d entries, series %d", len(bed.qm.ToneLog), len(bed.qm.QueueSeries))
	}
	for i, s := range bed.qm.QueueSeries {
		if bed.qm.ToneLog[i].Level != bed.qm.LevelOf(int(s.Value)) {
			t.Fatalf("tone log %d disagrees with series", i)
		}
	}
}

func TestQueueMonitorPlanAllocation(t *testing.T) {
	tb := newTestbed(43)
	voice := tb.voiceAt("s1", acoustic.Position{X: 1})
	sw := netsim.NewSwitch(tb.sim, "s1")
	qm, err := NewQueueMonitor(tb.plan, sw, 2, voice)
	if err != nil {
		t.Fatal(err)
	}
	freqs := qm.Frequencies()
	if len(freqs) != 3 {
		t.Fatalf("freqs = %v", freqs)
	}
	// Guard-banded: 80 Hz apart.
	if freqs[1]-freqs[0] != 80 || freqs[2]-freqs[1] != 80 {
		t.Errorf("spacing = %v", freqs)
	}
	if dev, _, ok := tb.plan.Identify(freqs[0], 10); !ok || dev != "s1/queuemon" {
		t.Errorf("Identify = %q %v", dev, ok)
	}
}

func TestLoadBalancerSplitsOnCongestionTone(t *testing.T) {
	// Figure 5a-b end to end on the rhombus: ramping source, queue
	// tones, controller hears "high", installs the split Flow-MOD,
	// and the post-split upper-path queue stabilises.
	tb := newTestbed(44)
	// Rhombus with fast host links and 1 Mbps core links, so the
	// ramp congests s1's core-facing queue.
	r := netsim.NewRhombusLinks(tb.sim,
		netsim.LinkSpec{RateBps: 1e7, Latency: 0.0001, QueueCap: 400},
		netsim.LinkSpec{RateBps: 1e6, Latency: 0.0001, QueueCap: 400})
	voice := tb.voiceAt("s1", acoustic.Position{X: 1})
	qm := NewQueueMonitorWithTones(r.S1, 2, voice, DefaultQueueFrequencies)
	ch := openflow.NewChannel(tb.sim, r.S1, 0.005)
	lb := NewLoadBalancer(qm, ch, openflow.FlowMod{
		Command:  openflow.FlowAdd,
		Priority: 10,
		Match:    netsim.Match{Dst: r.H2.Addr},
		Action:   netsim.Split(2, 3),
	})
	ctrl := tb.controller(qm.Frequencies())
	ctrl.SubscribeWindows(qm.HandleWindow)
	ctrl.SubscribeWindows(lb.HandleWindow)
	qm.StartSwitchSide(tb.sim, 0.05)
	ctrl.Start(0)

	f := netsim.FiveTuple{Src: r.H1.Addr, Dst: r.H2.Addr, SrcPort: 1, DstPort: 2, Proto: netsim.ProtoUDP}
	// Offered load ramps to ~1.8x one link's capacity: one path
	// congests, two paths suffice.
	netsim.StartRamp(tb.sim, r.H1, f, 40, 150, 1500, 0.2, 10)
	tb.sim.RunUntil(10)

	if !lb.Triggered {
		t.Fatalf("congestion tone never acted on; heard levels %v", qm.HeardLevels())
	}
	if r.S3.RxPackets == 0 {
		t.Fatal("lower path still unused after split")
	}
	// After the split the upper queue must come back below the high
	// watermark.
	var postSplitMax float64
	for _, s := range qm.QueueSeries {
		if s.Time > lb.TriggeredAt+2 && s.Value > postSplitMax {
			postSplitMax = s.Value
		}
	}
	if postSplitMax > 75 {
		t.Errorf("upper queue still congested after split: max %g", postSplitMax)
	}
	if lb.Triggers != 1 {
		t.Errorf("triggers = %d, want 1 (one-shot)", lb.Triggers)
	}
}

func TestLoadBalancerNonOneShotRetriggers(t *testing.T) {
	tb := newTestbed(45)
	sw := netsim.NewSwitch(tb.sim, "s1")
	voice := tb.voiceAt("s1", acoustic.Position{X: 1})
	qm := NewQueueMonitorWithTones(sw, 2, voice, DefaultQueueFrequencies)
	ch := openflow.NewChannel(tb.sim, sw, 0)
	lb := NewLoadBalancer(qm, ch, openflow.FlowMod{Command: openflow.FlowAdd, Priority: 5, Action: netsim.Drop()})
	lb.OneShot = false
	// Feed synthetic congested detections directly. Two confirmed
	// bursts separated by silence re-trigger a non-one-shot balancer.
	high := Detection{Time: 1, Frequency: 700, Amplitude: 0.01}
	lb.HandleWindow(1, []Detection{high})
	lb.HandleWindow(2, []Detection{high}) // confirmed -> trigger 1
	lb.HandleWindow(3, nil)               // silence re-arms
	lb.HandleWindow(4, []Detection{high})
	lb.HandleWindow(5, []Detection{high}) // confirmed -> trigger 2
	if lb.Triggers != 2 {
		t.Errorf("triggers = %d, want 2", lb.Triggers)
	}
	tb.sim.Run()
	if len(sw.Rules()) != 2 {
		t.Errorf("rules installed = %d", len(sw.Rules()))
	}
}

func TestLevelName(t *testing.T) {
	if LevelName(LevelLow) != "low" || LevelName(LevelMid) != "mid" ||
		LevelName(LevelHigh) != "high" || LevelName(9) != "unknown" {
		t.Error("level names wrong")
	}
}
