// Package core implements the paper's contribution: Music-Defined
// Networking. It provides frequency planning (unique per-device tone
// sets with the paper's ≥20 Hz spacing), tone detection over captured
// audio (Goertzel bank or windowed FFT), the MDN controller event
// loop, and the applications evaluated in the paper — port knocking,
// heavy-hitter detection, port-scan detection, load balancing, queue
// monitoring, and server fan-failure detection.
package core

import (
	"fmt"
	"math"
	"sort"
)

// DefaultSpacing is the paper's empirically determined minimum
// distance between assigned frequencies, in Hz: "a distance of
// approximately 20 Hz between frequencies is needed to accurately
// differentiate them" (Section 3).
const DefaultSpacing = 20.0

// FrequencyPlan hands out non-overlapping frequency sets to devices.
// Each switch in the testbed gets a unique set so the controller can
// identify sounds played by different switches at the same time
// (Figure 2a).
type FrequencyPlan struct {
	// MinHz and MaxHz bound the usable band.
	MinHz, MaxHz float64
	// Spacing is the distance between adjacent slots.
	Spacing float64

	nextSlot int
	sets     map[string][]float64
	order    []string
	owner    map[int]slotOwner
}

type slotOwner struct {
	name  string
	index int
}

// DefaultStride is the recommended slot stride for frequencies that
// can be active in the same detection window. The paper's 20 Hz
// figure holds for tones that fill the analysis window; a tone that
// only partially overlaps a 50 ms window smears across ±2–3 bins, so
// robust applications separate their own tones by 4 slots (80 Hz at
// the default spacing) and let the plan burn the guard slots.
const DefaultStride = 4

// NewFrequencyPlan creates a plan over [minHz, maxHz] with the given
// slot spacing.
//
// Constructor invariant (documented panic): non-physical parameters —
// a non-positive band edge or spacing, or maxHz ≤ minHz — are a
// configuration bug and panic at construction time. No post-
// construction method panics.
func NewFrequencyPlan(minHz, maxHz, spacing float64) *FrequencyPlan {
	if minHz <= 0 || maxHz <= minHz || spacing <= 0 {
		panic("core: invalid frequency plan parameters")
	}
	return &FrequencyPlan{
		MinHz:   minHz,
		MaxHz:   maxHz,
		Spacing: spacing,
		sets:    make(map[string][]float64),
		owner:   make(map[int]slotOwner),
	}
}

// DefaultPlan covers 400 Hz – 8 kHz — comfortably inside cheap
// speaker/microphone response — at the paper's 20 Hz spacing,
// yielding 381 slots.
func DefaultPlan() *FrequencyPlan {
	return NewFrequencyPlan(400, 8000, DefaultSpacing)
}

// Capacity returns the total number of slots in the band. With the
// human-hearable range and 20 Hz spacing this lands near the paper's
// "approximately 1000 unique frequencies" figure.
func (p *FrequencyPlan) Capacity() int {
	return int(math.Floor((p.MaxHz-p.MinHz)/p.Spacing)) + 1
}

// Remaining returns how many unallocated slots are left.
func (p *FrequencyPlan) Remaining() int {
	return p.Capacity() - p.nextSlot
}

// slotFreq returns the frequency of slot i.
func (p *FrequencyPlan) slotFreq(i int) float64 {
	return p.MinHz + float64(i)*p.Spacing
}

// Allocate reserves n consecutive slots for the named device and
// returns their frequencies. Each device may hold only one set;
// re-allocating a name fails. Use AllocateSpaced for tones that can
// sound in the same detection window.
func (p *FrequencyPlan) Allocate(name string, n int) ([]float64, error) {
	return p.AllocateSpaced(name, n, 1)
}

// AllocateSpaced reserves n slots spaced stride slots apart (burning
// the stride-1 guard slots between and after them) and returns the n
// usable frequencies. The guard band keeps simultaneously active
// tones of one application from leaking into each other's detectors.
func (p *FrequencyPlan) AllocateSpaced(name string, n, stride int) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: allocation size %d must be positive", n)
	}
	if stride <= 0 {
		return nil, fmt.Errorf("core: allocation stride %d must be positive", stride)
	}
	if _, dup := p.sets[name]; dup {
		return nil, fmt.Errorf("core: device %q already has a frequency set", name)
	}
	need := n * stride
	if p.nextSlot+need-stride+1 > p.Capacity() {
		return nil, fmt.Errorf("core: plan exhausted: %d slots requested, %d remaining",
			need, p.Remaining())
	}
	out := make([]float64, n)
	for i := range out {
		slot := p.nextSlot + i*stride
		out[i] = p.slotFreq(slot)
		p.owner[slot] = slotOwner{name: name, index: i}
	}
	// Advance past the allocation including its trailing guard slots,
	// but never past the band end: guard slots that would fall beyond
	// the last usable slot don't exist, and counting them would drive
	// Remaining negative (Capacity 10, nextSlot 8, n=1 stride=4 used
	// to leave Remaining at −2).
	if p.nextSlot += need; p.nextSlot > p.Capacity() {
		p.nextSlot = p.Capacity()
	}
	p.sets[name] = out
	p.order = append(p.order, name)
	return out, nil
}

// MustAllocate is Allocate for deployment-setup code where failure is
// a configuration bug.
//
// Constructor invariant (documented panic): it panics when the plan
// rejects the allocation. Runtime code paths must use Allocate (or
// AllocateSpaced) and handle the error.
func (p *FrequencyPlan) MustAllocate(name string, n int) []float64 {
	out, err := p.Allocate(name, n)
	if err != nil {
		panic("core: MustAllocate: " + err.Error())
	}
	return out
}

// Set returns the named device's frequencies (nil if none).
func (p *FrequencyPlan) Set(name string) []float64 {
	return p.sets[name]
}

// Devices returns all device names in allocation order.
func (p *FrequencyPlan) Devices() []string {
	out := make([]string, len(p.order))
	copy(out, p.order)
	return out
}

// AllAssigned returns every allocated frequency in ascending order.
func (p *FrequencyPlan) AllAssigned() []float64 {
	var out []float64
	for _, name := range p.order {
		out = append(out, p.sets[name]...)
	}
	sort.Float64s(out)
	return out
}

// Identify maps an observed frequency back to (device, index within
// the device's set), accepting error up to tol Hz. It reports ok=false
// for frequencies outside every assignment.
func (p *FrequencyPlan) Identify(freq, tol float64) (device string, index int, ok bool) {
	slot := int(math.Round((freq - p.MinHz) / p.Spacing))
	if slot < 0 || slot >= p.nextSlot {
		return "", 0, false
	}
	if math.Abs(freq-p.slotFreq(slot)) > tol {
		return "", 0, false
	}
	o, ok := p.owner[slot]
	if !ok {
		return "", 0, false // guard slot or never allocated
	}
	return o.name, o.index, true
}

// DefaultTolerance is how far an observed peak may sit from its slot
// and still be identified: half the slot spacing.
func (p *FrequencyPlan) DefaultTolerance() float64 { return p.Spacing / 2 }
