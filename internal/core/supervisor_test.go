package core

import (
	"errors"
	"testing"

	"mdn/internal/acoustic"
)

// supervisedController builds a controller with no watched
// frequencies: windows analyse silence, which still dispatches to
// window subscribers — all the supervisor needs.
func supervisedController(seed int64) (*testbed, *Controller) {
	tb := newTestbed(seed)
	return tb, tb.controller(nil)
}

func TestPanicIsolationKeepsOtherSubscribersRunning(t *testing.T) {
	tb, ctrl := supervisedController(1)
	goodWindows := 0
	ctrl.SubscribeWindowsNamed("good", func(float64, []Detection) { goodWindows++ })
	ctrl.SubscribeWindowsNamed("bad", func(float64, []Detection) { panic("boom") })
	ctrl.Start(0)
	tb.sim.RunUntil(0.5) // 10 windows

	if goodWindows != 10 {
		t.Errorf("good subscriber saw %d windows, want 10", goodWindows)
	}
	if ctrl.HandlerPanics == 0 {
		t.Error("no panics recorded")
	}
	if ctrl.Windows != 10 {
		t.Errorf("controller analysed %d windows, want 10", ctrl.Windows)
	}
}

func TestQuarantineAfterConsecutivePanics(t *testing.T) {
	tb, ctrl := supervisedController(2)
	calls := 0
	ctrl.SubscribeWindowsNamed("bad", func(float64, []Detection) {
		calls++
		panic("persistent failure")
	})
	ctrl.Start(0)
	tb.sim.RunUntil(1.0) // 20 windows, far beyond the threshold

	if calls != DefaultQuarantineThreshold {
		t.Errorf("subscriber called %d times, want exactly %d (then quarantined)",
			calls, DefaultQuarantineThreshold)
	}
	if ctrl.HandlerPanics != DefaultQuarantineThreshold {
		t.Errorf("HandlerPanics = %d, want %d", ctrl.HandlerPanics, DefaultQuarantineThreshold)
	}
	q := ctrl.QuarantinedHandlers()
	if len(q) != 1 || q[0] != "bad" {
		t.Errorf("quarantined = %v, want [bad]", q)
	}

	// The error log carries both taxonomy classes.
	var panicsLogged, quarantinesLogged int
	for _, e := range ctrl.Errors.Errors() {
		if errors.Is(e.Err, ErrQuarantined) {
			quarantinesLogged++
		} else if errors.Is(e.Err, ErrHandlerPanic) {
			panicsLogged++
		}
		if e.App != "bad" {
			t.Errorf("error attributed to %q, want bad", e.App)
		}
	}
	if panicsLogged != DefaultQuarantineThreshold || quarantinesLogged != 1 {
		t.Errorf("logged %d panics / %d quarantines, want %d / 1",
			panicsLogged, quarantinesLogged, DefaultQuarantineThreshold)
	}
}

func TestTransientPanicsResetConsecutiveCount(t *testing.T) {
	tb, ctrl := supervisedController(3)
	calls := 0
	// Panic on every third window: never DefaultQuarantineThreshold in
	// a row, so the subscriber must stay live.
	ctrl.SubscribeWindowsNamed("flaky", func(float64, []Detection) {
		calls++
		if calls%3 == 0 {
			panic("transient")
		}
	})
	ctrl.Start(0)
	tb.sim.RunUntil(1.52) // 30 windows (the 30th tick accumulates float error past 1.5)

	if calls != 30 {
		t.Errorf("flaky subscriber called %d times, want 30 (never quarantined)", calls)
	}
	if got := ctrl.QuarantinedHandlers(); len(got) != 0 {
		t.Errorf("quarantined = %v, want none", got)
	}
	if ctrl.HandlerPanics != 10 {
		t.Errorf("HandlerPanics = %d, want 10", ctrl.HandlerPanics)
	}
	for _, s := range ctrl.Subscribers() {
		if s.Name == "flaky" && s.Panics != 10 {
			t.Errorf("per-subscriber panics = %d, want 10", s.Panics)
		}
	}
}

func TestQuarantineThresholdOverride(t *testing.T) {
	tb, ctrl := supervisedController(4)
	ctrl.QuarantineThreshold = 1
	calls := 0
	ctrl.SubscribeWindows(func(float64, []Detection) {
		calls++
		panic("one strike")
	})
	ctrl.Start(0)
	tb.sim.RunUntil(0.5)

	if calls != 1 {
		t.Errorf("subscriber called %d times, want 1 with threshold 1", calls)
	}
}

func TestPanickingDetectionHandlerIsSupervised(t *testing.T) {
	tb := newTestbed(5)
	voice := tb.voiceAt("s1", acoustic.Position{X: 1})
	freq := tb.plan.MustAllocate("s1", 1)[0]
	ctrl := tb.controller([]float64{freq})
	panics := 0
	ctrl.SubscribeNamed("det-bomb", func(Detection) {
		panics++
		panic("detection bomb")
	})
	heard := 0
	ctrl.Subscribe(func(Detection) { heard++ })
	ctrl.Start(0)
	tb.sim.Schedule(0.2, func() { voice.Play(freq) })
	tb.sim.RunUntil(1.0)

	if panics == 0 {
		t.Fatal("detection handler never fired — tone not heard")
	}
	if heard != panics {
		t.Errorf("good detection handler saw %d detections, bomb saw %d; want equal", heard, panics)
	}
}

func TestErrorLogBoundsHistory(t *testing.T) {
	l := &ErrorLog{Max: 4}
	for i := 0; i < 10; i++ {
		l.Record(float64(i), "app", ErrFlowProgram)
	}
	if l.Total() != 10 {
		t.Errorf("Total = %d, want 10", l.Total())
	}
	errs := l.Errors()
	if len(errs) != 4 {
		t.Fatalf("retained %d errors, want 4", len(errs))
	}
	if errs[0].Time != 6 || errs[3].Time != 9 {
		t.Errorf("retained window [%g, %g], want [6, 9]", errs[0].Time, errs[3].Time)
	}
	if got := l.Since(8); got != 2 {
		t.Errorf("Since(8) = %d, want 2", got)
	}
}

func TestNilErrorLogIsSafe(t *testing.T) {
	var l *ErrorLog
	l.Record(1, "app", ErrFlowProgram) // must not panic
	if l.Total() != 0 || l.Since(0) != 0 || l.Errors() != nil {
		t.Error("nil log must be empty")
	}
}
