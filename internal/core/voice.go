package core

import (
	"mdn/internal/mp"
	"mdn/internal/netsim"
	"mdn/internal/telemetry"
)

// Voice is a switch's tone-emitting side: it turns application events
// into Music Protocol messages, rate-limited per frequency so that
// data-plane packet rates never translate into overlapping
// same-frequency tones (which a detector could not count). This is
// the policy knob Section 3 describes: sound length, duration and
// intensity "can be treated as a policy".
type Voice struct {
	// ToneDuration is the emitted tone length in seconds. The
	// paper's shortest usable tone was ~30 ms; the default is 65 ms
	// so a tone always overlaps at least two 50 ms detection windows
	// substantially, which the controller's 2-window onset
	// confirmation requires.
	ToneDuration float64
	// Intensity is the emission loudness in dB SPL at 1 m. The paper
	// played tones of at least 30 dB; the default is 60 dB.
	Intensity float64
	// MinGap is the minimum time between two emissions of the same
	// frequency, in seconds. It must be long enough that at least one
	// full controller window of silence separates consecutive tones
	// (tone duration + propagation + two windows), or the onset
	// filter cannot re-arm and undercounts.
	MinGap float64

	sim     *netsim.Sim
	sounder *mp.Sounder
	last    map[float64]float64
	muted   bool

	// Emitted counts accepted emissions.
	Emitted uint64
	// Suppressed counts emissions dropped by rate limiting.
	Suppressed uint64
}

// NewVoice wires a voice to a switch's Music Protocol sounder.
func NewVoice(sim *netsim.Sim, sounder *mp.Sounder) *Voice {
	return &Voice{
		ToneDuration: 0.065,
		Intensity:    60,
		MinGap:       0.150,
		sim:          sim,
		sounder:      sounder,
		last:         make(map[float64]float64),
	}
}

// Play emits a tone at freq now, unless the same frequency was played
// less than MinGap ago. It reports whether the tone was emitted.
func (v *Voice) Play(freq float64) bool {
	if v.muted {
		v.Suppressed++
		return false
	}
	now := v.sim.Now()
	if t, seen := v.last[freq]; seen && now-t < v.MinGap {
		v.Suppressed++
		return false
	}
	v.last[freq] = now
	v.Emitted++
	v.sounder.Emit(mp.Message{
		Frequency: freq,
		Duration:  v.ToneDuration,
		Intensity: v.Intensity,
	})
	return true
}

// PlayMessage emits an explicit MP message without rate limiting —
// for applications that do their own pacing.
func (v *Voice) PlayMessage(m mp.Message) {
	if v.muted {
		v.Suppressed++
		return
	}
	v.Emitted++
	v.sounder.Emit(m)
}

// SetMuted silences (or un-silences) the voice: while muted, Play and
// PlayMessage drop emissions and count them as suppressed. The
// device-health monitor mutes a voice whose speaker has gone silent
// beyond recovery, so a dead driver stops burning the shared acoustic
// channel. Call from the simulation goroutine (like Play).
func (v *Voice) SetMuted(muted bool) { v.muted = muted }

// Muted reports whether the voice is muted.
func (v *Voice) Muted() bool { return v.muted }

// Sounder returns the underlying switch-side MP sender — the hook for
// fault injection and for registering its counters with the
// controller's Health snapshot.
func (v *Voice) Sounder() *mp.Sounder { return v.sounder }

// Instrument exposes the voice's emission counters under
// switch=switchName.
func (v *Voice) Instrument(reg *telemetry.Registry, switchName string) {
	reg.Func(telemetry.Label(metricVoiceEmitted, "switch", switchName),
		func() float64 { return float64(v.Emitted) })
	reg.Func(telemetry.Label(metricVoiceSuppressed, "switch", switchName),
		func() float64 { return float64(v.Suppressed) })
}
