package core

import (
	"testing"

	"mdn/internal/acoustic"
	"mdn/internal/mp"
)

// relayBed: a quiet switch 10 m from the controller whose tones are
// too faint for the calibrated controller threshold, and a relay
// positioned between them.
type relayBed struct {
	*testbed
	srcVoice *Voice
	relay    *Relay
	ctrl     *Controller
	inFreq   float64
	outFreq  float64
}

func newRelayBed(t *testing.T) *relayBed {
	t.Helper()
	tb := newTestbed(70)
	// Far switch: 10 m from the controller, quiet 40 dB tones.
	srcVoice := tb.voiceAt("far-switch", acoustic.Position{X: 10})
	srcVoice.Intensity = 40      // 3.16e-3 at 1 m => 3.16e-4 at 10 m
	srcVoice.ToneDuration = 0.12 // two fully covered 50 ms windows at the relay

	inFreq := tb.plan.MustAllocate("far-switch", 1)[0]
	outFreq := inFreq + 400 // relay band, well clear of the input

	// Relay 2 m from the switch (8 m from the controller): its mic
	// hears 1.6e-3; it re-emits at 60 dB.
	relayMic := tb.room.AddMicrophone("relay-mic", acoustic.Position{X: 8}, 0.0001)
	relaySp := tb.room.AddSpeaker("relay-spk", acoustic.Position{X: 2})
	relayPi := mp.NewPi(tb.sim, relaySp, 0.002)
	relay, err := NewRelay(tb.sim, relayMic, relayPi, map[float64]float64{inFreq: outFreq})
	if err != nil {
		t.Fatal(err)
	}
	relay.Detector().MinAmplitude = 1e-3 // hears the switch at 2 m only

	// Controller: calibrated threshold 1e-3 — the direct 10 m path
	// (3.2e-4) is below it, the relayed 2 m path (~0.016) far above.
	ctrl := tb.controller([]float64{inFreq, outFreq})
	ctrl.Detector.MinAmplitude = 1e-3
	return &relayBed{
		testbed: tb, srcVoice: srcVoice, relay: relay, ctrl: ctrl,
		inFreq: inFreq, outFreq: outFreq,
	}
}

func TestRelayExtendsReach(t *testing.T) {
	bed := newRelayBed(t)
	var heard []Detection
	onset := NewOnsetFilter()
	bed.ctrl.SubscribeWindows(func(_ float64, dets []Detection) {
		heard = append(heard, onset.Step(dets)...)
	})
	bed.relay.Start(0)
	bed.ctrl.Start(0)
	bed.sim.Schedule(0.5, func() { bed.srcVoice.Play(bed.inFreq) })
	bed.sim.RunUntil(2)

	if bed.relay.Relayed != 1 {
		t.Fatalf("relayed = %d, want 1", bed.relay.Relayed)
	}
	var direct, relayed int
	for _, d := range heard {
		switch d.Frequency {
		case bed.inFreq:
			direct++
		case bed.outFreq:
			relayed++
		}
	}
	if direct != 0 {
		t.Errorf("controller heard the far switch directly %d times; should be out of range", direct)
	}
	if relayed != 1 {
		t.Errorf("relayed tone heard %d times, want 1", relayed)
	}
}

func TestRelayWithoutRelayNothingHeard(t *testing.T) {
	bed := newRelayBed(t)
	var heard int
	bed.ctrl.Subscribe(func(Detection) { heard++ })
	// Relay NOT started.
	bed.ctrl.Start(0)
	bed.sim.Schedule(0.5, func() { bed.srcVoice.Play(bed.inFreq) })
	bed.sim.RunUntil(2)
	if heard != 0 {
		t.Errorf("controller heard %d tones without the relay", heard)
	}
}

func TestRelayIgnoresUnmappedTones(t *testing.T) {
	tb := newTestbed(71)
	mic := tb.room.AddMicrophone("relay-mic", acoustic.Position{X: 1}, 0.0001)
	sp := tb.room.AddSpeaker("relay-spk", acoustic.Position{X: 2})
	relay, err := NewRelay(tb.sim, mic, mp.NewPi(tb.sim, sp, 0.001),
		map[float64]float64{600: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// Feed a confirmed onset of an unmapped frequency directly.
	relay.handleWindow(0, []Detection{{Frequency: 640, Amplitude: 0.01}})
	relay.handleWindow(0.05, []Detection{{Frequency: 640, Amplitude: 0.01}})
	if relay.Relayed != 0 {
		t.Error("unmapped tone relayed")
	}
	// The detector only watches mapped inputs anyway; Ignored counts
	// synthetic feeds like this one.
	if relay.Ignored != 1 {
		t.Errorf("ignored = %d, want 1", relay.Ignored)
	}
}

func TestRelayRejectsBadMappings(t *testing.T) {
	tb := newTestbed(72)
	mic := tb.room.AddMicrophone("m", acoustic.Position{}, 0)
	sp := tb.room.AddSpeaker("s", acoustic.Position{X: 1})
	pi := mp.NewPi(tb.sim, sp, 0)
	if _, err := NewRelay(tb.sim, mic, pi, nil); err == nil {
		t.Error("empty mapping accepted")
	}
	if _, err := NewRelay(tb.sim, mic, pi, map[float64]float64{500: 500}); err == nil {
		t.Error("self-oscillating mapping accepted")
	}
}

func TestChainMapping(t *testing.T) {
	m := ChainMapping([]float64{500, 600}, 1000)
	if m[500] != 1500 || m[600] != 1600 || len(m) != 2 {
		t.Errorf("mapping = %v", m)
	}
}

func TestRelayStopHalts(t *testing.T) {
	bed := newRelayBed(t)
	bed.relay.Start(0)
	bed.sim.RunUntil(0.5)
	bed.relay.Stop()
	bed.sim.Schedule(1.0, func() { bed.srcVoice.Play(bed.inFreq) })
	bed.sim.RunUntil(2)
	if bed.relay.Relayed != 0 {
		t.Error("stopped relay still relaying")
	}
}
