package core

import (
	"errors"
	"testing"

	"mdn/internal/acoustic"
)

// fanBed builds the Section 7 listening scenario: a server fan 0.3 m
// from the microphone, running from t=0 to failAt, inside the given
// ambience ("datacenter", "office", or "quiet").
type fanBed struct {
	*testbed
	fm     *FanMonitor
	failAt float64
}

func newFanBed(t *testing.T, seed int64, ambience string, failAt float64) *fanBed {
	t.Helper()
	tb := newTestbed(seed)
	fanSrc, fan := FanSource(44100, 2.0, 0.3, acoustic.Position{X: 0.3}, seed)
	fanSrc.Until = failAt
	tb.room.AddNoise(fanSrc)
	switch ambience {
	case "datacenter":
		tb.room.AddNoise(DatacenterNoise(44100, 3.0, seed+1))
	case "office":
		tb.room.AddNoise(OfficeNoise(44100, 3.0, seed+1))
	}
	fm := NewFanMonitor(tb.mic, fan.HarmonicFrequencies())
	return &fanBed{testbed: tb, fm: fm, failAt: failAt}
}

func TestFanMonitorRequiresTraining(t *testing.T) {
	bed := newFanBed(t, 50, "quiet", 100)
	if _, err := bed.fm.Score(0, 1); !errors.Is(err, ErrNotTrained) {
		t.Errorf("err = %v, want ErrNotTrained", err)
	}
	if err := bed.fm.Train(0, 0.1); err == nil {
		t.Error("too-short training interval accepted")
	}
	if bed.fm.Baseline() != nil {
		t.Error("baseline should be nil before training")
	}
}

func TestFanMonitorDetectsFailureQuietRoom(t *testing.T) {
	bed := newFanBed(t, 51, "quiet", 10)
	if err := bed.fm.Train(1, 3); err != nil {
		t.Fatal(err)
	}
	// Healthy check.
	failed, score, err := bed.fm.Check(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Errorf("healthy fan flagged, score %g", score)
	}
	// After failure at t=10.
	failed, score, err = bed.fm.Check(11, 13)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Errorf("failed fan missed, score %g", score)
	}
	if score < 0.8 {
		t.Errorf("failure score %g, want near 1 in a quiet room", score)
	}
}

func TestFanMonitorDetectsFailureInDatacenter(t *testing.T) {
	// The paper's headline question: can a single server's fan
	// failure be heard despite ~85 dBA datacenter noise, with a
	// closely placed microphone? Answer: yes.
	bed := newFanBed(t, 52, "datacenter", 10)
	if err := bed.fm.Train(1, 3); err != nil {
		t.Fatal(err)
	}
	failedHealthy, scoreHealthy, err := bed.fm.Check(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	failedDead, scoreDead, err := bed.fm.Check(11, 13)
	if err != nil {
		t.Fatal(err)
	}
	if failedHealthy {
		t.Errorf("healthy fan flagged under datacenter noise (score %g)", scoreHealthy)
	}
	if !failedDead {
		t.Errorf("dead fan missed under datacenter noise (score %g)", scoreDead)
	}
	if scoreDead < 2*scoreHealthy {
		t.Errorf("weak separation: healthy %g vs dead %g", scoreHealthy, scoreDead)
	}
}

func TestFanMonitorDetectsFailureInOffice(t *testing.T) {
	bed := newFanBed(t, 53, "office", 10)
	if err := bed.fm.Train(1, 3); err != nil {
		t.Fatal(err)
	}
	failed, _, err := bed.fm.Check(4, 6)
	if err != nil || failed {
		t.Errorf("healthy office check: failed=%v err=%v", failed, err)
	}
	failed, score, err := bed.fm.Check(11, 13)
	if err != nil || !failed {
		t.Errorf("dead office check: failed=%v score=%g err=%v", failed, score, err)
	}
}

func TestFanMonitorAmplitudeDiffStatistic(t *testing.T) {
	// Figure 7's exact comparison: on-vs-off difference must far
	// exceed on-vs-on.
	bed := newFanBed(t, 54, "datacenter", 10)
	if err := bed.fm.Train(1, 3); err != nil {
		t.Fatal(err)
	}
	onVsOn := bed.fm.AmplitudeDiff(1, 3, 4, 6)
	onVsOff := bed.fm.AmplitudeDiff(1, 3, 11, 13)
	if onVsOff < 3*onVsOn {
		t.Errorf("on-vs-off %g should dominate on-vs-on %g", onVsOff, onVsOn)
	}
}

func TestFanMonitorBaselineCopy(t *testing.T) {
	bed := newFanBed(t, 55, "quiet", 100)
	if err := bed.fm.Train(1, 2); err != nil {
		t.Fatal(err)
	}
	b := bed.fm.Baseline()
	if len(b) != len(bed.fm.Harmonics) {
		t.Fatalf("baseline len = %d", len(b))
	}
	b[0] = -1
	if bed.fm.Baseline()[0] == -1 {
		t.Error("Baseline leaked internal state")
	}
}
