package core

import (
	"fmt"
	"testing"

	"mdn/internal/acoustic"
	"mdn/internal/netsim"
)

type spreadBed struct {
	*testbed
	hosts []*netsim.Host
	sw    *netsim.Switch
	sd    *SpreadDetector
	ctrl  *Controller
}

// newSpreadBed wires n hosts into one switch with flooding disabled;
// the victim/spreader is hosts[0].
func newSpreadBed(t *testing.T, seed int64, mode SpreadMode, nHosts, buckets, k int) *spreadBed {
	t.Helper()
	tb := newTestbed(seed)
	sw := netsim.NewSwitch(tb.sim, "s1")
	var hosts []*netsim.Host
	for i := 0; i < nHosts; i++ {
		h := netsim.NewHost(tb.sim, fmt.Sprintf("h%d", i), netsim.MustAddr(fmt.Sprintf("10.0.0.%d", i+1)))
		netsim.Connect(tb.sim, h, 1, sw, i+1, 1e9, 0.0001, 0)
		hosts = append(hosts, h)
	}
	// Route every address to its port.
	for i, h := range hosts {
		sw.InstallRule(netsim.Rule{Priority: 1, Match: netsim.Match{Dst: h.Addr}, Action: netsim.Output(i + 1)})
	}
	voice := tb.voiceAt("s1", acoustic.Position{X: 1.2})
	sd, err := NewSpreadDetector(tb.plan, "s1", voice, mode, hosts[0].Addr, buckets, k)
	if err != nil {
		t.Fatal(err)
	}
	sw.Tap = sd.Tap
	ctrl := tb.controller(sd.Frequencies())
	sd.Start(ctrl, 0)
	ctrl.Start(0)
	return &spreadBed{testbed: tb, hosts: hosts, sw: sw, sd: sd, ctrl: ctrl}
}

func TestSuperspreaderDetected(t *testing.T) {
	bed := newSpreadBed(t, 60, ModeSuperspreader, 10, 24, 4)
	// hosts[0] contacts all 9 other hosts repeatedly (a scanner /
	// worm pattern).
	spreader := bed.hosts[0]
	bed.sim.Every(0.2, 0.2, func(now float64) {
		if now > 4 {
			return
		}
		for _, dst := range bed.hosts[1:] {
			spreader.Send(netsim.FiveTuple{
				Src: spreader.Addr, Dst: dst.Addr, SrcPort: 1234, DstPort: 80,
				Proto: netsim.ProtoTCP,
			}, 64)
		}
	})
	bed.sim.RunUntil(5)
	if len(bed.sd.Alerts) == 0 {
		t.Fatalf("superspreader missed; history %+v", bed.sd.History)
	}
	if got := bed.sd.Alerts[0].Distinct; got <= bed.sd.K {
		t.Errorf("alert distinct = %d, want > %d", got, bed.sd.K)
	}
}

func TestSuperspreaderIgnoresNormalClient(t *testing.T) {
	bed := newSpreadBed(t, 61, ModeSuperspreader, 10, 24, 4)
	// hosts[0] talks to just two peers — normal behaviour.
	client := bed.hosts[0]
	for i, dst := range bed.hosts[1:3] {
		netsim.StartPoisson(bed.sim, client, netsim.FiveTuple{
			Src: client.Addr, Dst: dst.Addr, SrcPort: 1234, DstPort: 80, Proto: netsim.ProtoTCP,
		}, 5, 200, 0, 4, int64(i))
	}
	bed.sim.RunUntil(5)
	if len(bed.sd.Alerts) != 0 {
		t.Errorf("normal client raised %d alerts", len(bed.sd.Alerts))
	}
}

func TestSuperspreaderIgnoresOtherSources(t *testing.T) {
	bed := newSpreadBed(t, 62, ModeSuperspreader, 10, 24, 4)
	// A different host fans out; the watched host is quiet.
	other := bed.hosts[5]
	bed.sim.Every(0.2, 0.2, func(now float64) {
		if now > 3 {
			return
		}
		for _, dst := range bed.hosts[1:] {
			if dst == other {
				continue
			}
			other.Send(netsim.FiveTuple{
				Src: other.Addr, Dst: dst.Addr, SrcPort: 9, DstPort: 80, Proto: netsim.ProtoTCP,
			}, 64)
		}
	})
	bed.sim.RunUntil(4)
	if len(bed.room.Emissions()) != 0 {
		t.Errorf("unwatched source emitted %d tones", len(bed.room.Emissions()))
	}
}

func TestDDoSVictimDetected(t *testing.T) {
	bed := newSpreadBed(t, 63, ModeDDoSVictim, 12, 24, 5)
	victim := bed.hosts[0]
	// 11 attackers hammer the victim.
	for i, atk := range bed.hosts[1:] {
		netsim.StartPoisson(bed.sim, atk, netsim.FiveTuple{
			Src: atk.Addr, Dst: victim.Addr, SrcPort: 6666, DstPort: 80, Proto: netsim.ProtoUDP,
		}, 8, 100, 0, 4, int64(70+i))
	}
	bed.sim.RunUntil(5)
	if len(bed.sd.Alerts) == 0 {
		t.Fatalf("DDoS missed; history %+v", bed.sd.History)
	}
	if got := bed.sd.Alerts[0].Distinct; got <= 5 {
		t.Errorf("distinct sources = %d, want > 5", got)
	}
}

func TestDDoSVictimQuietUnderSingleClient(t *testing.T) {
	bed := newSpreadBed(t, 64, ModeDDoSVictim, 12, 24, 5)
	victim := bed.hosts[0]
	client := bed.hosts[1]
	netsim.StartCBR(bed.sim, client, netsim.FiveTuple{
		Src: client.Addr, Dst: victim.Addr, SrcPort: 5, DstPort: 80, Proto: netsim.ProtoTCP,
	}, 50, 500, 0, 4)
	bed.sim.RunUntil(5)
	if len(bed.sd.Alerts) != 0 {
		t.Errorf("single busy client raised %d DDoS alerts", len(bed.sd.Alerts))
	}
}

func TestSpreadModeString(t *testing.T) {
	if ModeSuperspreader.String() != "superspreader" ||
		ModeDDoSVictim.String() != "ddos-victim" ||
		SpreadMode(9).String() != "unknown" {
		t.Error("mode names wrong")
	}
}

func TestSpreadBucketStable(t *testing.T) {
	bed := newSpreadBed(t, 65, ModeDDoSVictim, 4, 16, 3)
	a := netsim.MustAddr("10.9.9.9")
	if bed.sd.BucketOf(a) != bed.sd.BucketOf(a) {
		t.Error("bucket not stable")
	}
	if b := bed.sd.BucketOf(a); b < 0 || b >= 16 {
		t.Errorf("bucket %d out of range", b)
	}
}
