package core

import (
	"mdn/internal/netsim"
	"mdn/internal/telemetry"
)

// RateSetter is the control surface the congestion controller drives:
// anything whose send rate can be set in packets/second.
// *netsim.PacedSource implements it.
type RateSetter interface {
	SetRate(pps float64)
	Rate() float64
}

// CongestionController is the Section 6 "switch congestion
// monitoring" idea taken to its conclusion: in-network congestion
// control driven purely by queue tones, "without waiting for source
// reactions, without having to modify the transport protocol, as in
// DCTCP, and without using the less efficient ECN mechanism". It
// applies AIMD to a paced source from the decoded queue levels:
// multiplicative decrease on the congested tone, hold on the mid
// tone, additive increase on the low tone.
type CongestionController struct {
	// Beta is the multiplicative decrease factor applied on a
	// congested (high) tone. DCTCP-like gentle decrease by default.
	Beta float64
	// IncreasePPS is the additive increase applied on a low tone.
	IncreasePPS float64
	// MinPPS floors the rate.
	MinPPS float64

	qm     *QueueMonitor
	source RateSetter
	onset  *OnsetFilter

	// Decreases counts multiplicative decreases applied.
	Decreases uint64
	// Increases counts additive increases applied.
	Increases uint64

	// HistoryMax bounds RateLog to the last N entries (0 means
	// DefaultHistoryMax).
	HistoryMax int
	// HistoryDropped counts entries evicted from RateLog by the bound.
	HistoryDropped uint64
	// RateLog records (time, rate) after each adjustment, last
	// HistoryMax.
	RateLog []netsim.Sample
}

// NewCongestionController wires a paced source to a queue monitor's
// tones.
func NewCongestionController(qm *QueueMonitor, source RateSetter) *CongestionController {
	return &CongestionController{
		Beta:        0.5,
		IncreasePPS: 5,
		MinPPS:      1,
		qm:          qm,
		source:      source,
		onset:       NewOnsetFilter(),
	}
}

// HandleWindow is the controller-side hook (wire via
// Controller.SubscribeWindows).
func (cc *CongestionController) HandleWindow(at float64, dets []Detection) {
	for _, det := range cc.onset.Step(dets) {
		switch cc.qm.LevelFor(det.Frequency) {
		case LevelHigh:
			rate := cc.source.Rate() * cc.Beta
			if rate < cc.MinPPS {
				rate = cc.MinPPS
			}
			cc.source.SetRate(rate)
			cc.Decreases++
			cc.RateLog = appendBounded(cc.RateLog, netsim.Sample{Time: at, Value: rate},
				cc.HistoryMax, &cc.HistoryDropped)
		case LevelLow:
			cc.source.SetRate(cc.source.Rate() + cc.IncreasePPS)
			cc.Increases++
			cc.RateLog = appendBounded(cc.RateLog, netsim.Sample{Time: at, Value: cc.source.Rate()},
				cc.HistoryMax, &cc.HistoryDropped)
		case LevelMid:
			// Hold: the queue is in the operating band.
		}
	}
}

// Instrument exposes the controller's counters under
// app="congestion", switch=switchName. Events are rate adjustments;
// increases and decreases also get dedicated series.
func (cc *CongestionController) Instrument(reg *telemetry.Registry, switchName string) {
	reg.Func(appLabels(metricAppOnsets, "congestion", switchName),
		func() float64 { return float64(cc.onset.Onsets) })
	reg.Func(appLabels(metricAppEvents, "congestion", switchName),
		func() float64 { return float64(cc.Increases + cc.Decreases) })
	reg.Func(appLabels(metricAppHistoryDropped, "congestion", switchName),
		func() float64 { return float64(cc.HistoryDropped) })
	reg.Func(telemetry.Label(metricCongestionIncrease, "switch", switchName),
		func() float64 { return float64(cc.Increases) })
	reg.Func(telemetry.Label(metricCongestionDecrease, "switch", switchName),
		func() float64 { return float64(cc.Decreases) })
}
