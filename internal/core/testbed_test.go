package core

import (
	"mdn/internal/acoustic"
	"mdn/internal/mp"
	"mdn/internal/netsim"
)

// testbed bundles the pieces most application tests need: a
// simulator, a room with one microphone, and a helper to give any
// switch a voice.
type testbed struct {
	sim  *netsim.Sim
	room *acoustic.Room
	mic  *acoustic.Microphone
	plan *FrequencyPlan
}

func newTestbed(seed int64) *testbed {
	sim := netsim.NewSim()
	room := acoustic.NewRoom(44100, seed)
	mic := room.AddMicrophone("controller", acoustic.Position{}, 0.0005)
	return &testbed{sim: sim, room: room, mic: mic, plan: DefaultPlan()}
}

// voiceAt places a speaker+Pi at pos and returns its Voice.
func (tb *testbed) voiceAt(name string, pos acoustic.Position) *Voice {
	sp := tb.room.AddSpeaker(name, pos)
	pi := mp.NewPi(tb.sim, sp, 0.002)
	return NewVoice(tb.sim, mp.NewSounder(pi))
}

// controller builds a controller watching the given frequencies with
// the default method.
func (tb *testbed) controller(watch []float64) *Controller {
	det := NewDetector(MethodGoertzel, watch)
	return NewController(tb.sim, tb.mic, det)
}
