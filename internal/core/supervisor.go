package core

import (
	"fmt"
	"sort"

	"mdn/internal/telemetry"
)

// subscriber is one supervised handler registration. The controller
// runs every handler inside a recover barrier: a panicking subscriber
// is counted and, after QuarantineThreshold consecutive panics,
// quarantined (never called again) — one misbehaving application
// cannot take down port knocking, heavy-hitter detection, and
// heartbeats with it. A window that completes without panicking
// resets the consecutive count, so transient failures do not
// accumulate toward quarantine.
type subscriber struct {
	name  string
	onDet func(Detection)
	onWin func(windowStart float64, dets []Detection)

	consecutive   int
	panics        uint64
	quarantined   bool
	quarantinedAt float64

	// dispatch records per-call handler wall time when the controller
	// is instrumented (nil otherwise — observing a nil histogram is a
	// no-op).
	dispatch *telemetry.Histogram
}

// DefaultQuarantineThreshold is how many consecutive panics disable a
// subscriber.
const DefaultQuarantineThreshold = 3

// SubscriberStatus is one subscriber's supervision state, surfaced
// through Health().
type SubscriberStatus struct {
	// Name identifies the subscriber (explicit via SubscribeNamed, or
	// auto-generated).
	Name string
	// Panics counts recovered panics in this subscriber.
	Panics uint64
	// Quarantined reports whether the circuit breaker disabled it.
	Quarantined bool
	// QuarantinedAt is the virtual time of quarantine (valid when
	// Quarantined).
	QuarantinedAt float64
}

// subCall is one pending subscriber callback, passed by value so the
// dispatch loop builds no closures — the per-window hot path must not
// allocate. win selects the window-batch handler; otherwise the
// per-detection handler runs.
type subCall struct {
	win  bool
	from float64
	dets []Detection
	det  Detection
}

func (call *subCall) run(s *subscriber) {
	if call.win {
		s.onWin(call.from, call.dets)
	} else {
		s.onDet(call.det)
	}
}

// invoke runs one subscriber callback under the supervision barrier.
// It must be called on the simulation goroutine.
func (c *Controller) invoke(s *subscriber, call subCall) {
	if s.quarantined {
		return
	}
	sp := telemetry.StartSpan(s.dispatch, c.tm.wall)
	defer func() {
		sp.End()
		if r := recover(); r != nil {
			c.HandlerPanics++
			c.tm.panics.Inc()
			s.panics++
			s.consecutive++
			now := c.sim.Now()
			c.Errors.Record(now, s.name, fmt.Errorf("%w: %s: %v", ErrHandlerPanic, s.name, r))
			threshold := c.QuarantineThreshold
			if threshold <= 0 {
				threshold = DefaultQuarantineThreshold
			}
			if s.consecutive >= threshold {
				s.quarantined = true
				s.quarantinedAt = now
				c.tm.quarantines.Inc()
				c.Errors.Record(now, s.name, fmt.Errorf(
					"%w: %s disabled after %d consecutive panics", ErrQuarantined, s.name, s.consecutive))
			}
			return
		}
		s.consecutive = 0
	}()
	if c.ProfileSubscribers {
		// The profiling path allocates (one closure per call) — it is
		// an opt-in diagnostic, not a steady-state setting.
		telemetry.Do("mdn_subscriber", s.name, func() { call.run(s) })
	} else {
		call.run(s)
	}
}

// snapshotSubs returns the subscriber list as seen under the
// registration lock. The snapshot is cached and rebuilt only when the
// list has changed since the last call (a generation counter tracks
// registrations), so the per-window dispatch path allocates nothing in
// steady state. Each rebuild allocates a fresh backing array — an
// earlier snapshot may still be mid-iteration on another goroutine, so
// the cache is never rebuilt in place.
func (c *Controller) snapshotSubs() []*subscriber {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.snapGen != c.subsGen {
		snap := make([]*subscriber, len(c.subs))
		copy(snap, c.subs)
		c.snap = snap
		c.snapGen = c.subsGen
	}
	return c.snap
}

func (c *Controller) addSubscriber(s *subscriber) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.subsGen++
	if s.name == "" {
		c.autoName++
		kind := "handler"
		if s.onWin != nil {
			kind = "window-handler"
		}
		s.name = fmt.Sprintf("%s-%d", kind, c.autoName)
	}
	c.instrumentSub(s)
	c.subs = append(c.subs, s)
}

// QuarantinedHandlers returns the names of quarantined subscribers in
// name order. Like Health, call it on the simulation goroutine (or
// when the simulation is idle).
func (c *Controller) QuarantinedHandlers() []string {
	var out []string
	for _, s := range c.snapshotSubs() {
		if s.quarantined {
			out = append(out, s.name)
		}
	}
	sort.Strings(out)
	return out
}

// Subscribers returns every subscriber's supervision status in
// registration order.
func (c *Controller) Subscribers() []SubscriberStatus {
	subs := c.snapshotSubs()
	out := make([]SubscriberStatus, 0, len(subs))
	for _, s := range subs {
		out = append(out, SubscriberStatus{
			Name:          s.name,
			Panics:        s.panics,
			Quarantined:   s.quarantined,
			QuarantinedAt: s.quarantinedAt,
		})
	}
	return out
}
