package core

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"

	"mdn/internal/acoustic"
	"mdn/internal/audio"
	"mdn/internal/mp"
	"mdn/internal/netsim"
	"mdn/internal/telemetry"
)

// deviceRig is the self-healing test bench: a controller with a
// two-microphone fleet, one speaker beating at 700 Hz every 300 ms,
// and a device monitor.
type deviceRig struct {
	sim  *netsim.Sim
	room *acoustic.Room
	mics []*acoustic.Microphone
	sp   *acoustic.Speaker
	ctrl *Controller
	mon  *DeviceMonitor
}

const (
	devBeatFreq   = 700.0
	devBeatPeriod = 0.3
)

// scheduleBeats pre-schedules 700 Hz beats every 300 ms until the
// given horizon. Speaker ramps must be scheduled BEFORE calling this:
// Play evaluates the degradation ramps at each tone's start time.
func (r *deviceRig) scheduleBeats(until float64) {
	for t := 0.1; t < until; t += devBeatPeriod {
		r.sp.Play(t, audio.Tone{
			Frequency: devBeatFreq, Duration: 0.065,
			Amplitude: acoustic.SPLToAmplitude(60),
		})
	}
}

func newDeviceRig(fleetMics int) *deviceRig {
	r := &deviceRig{sim: netsim.NewSim(), room: acoustic.NewRoom(44100, 7)}
	r.sp = r.room.AddSpeaker("s1", acoustic.Position{X: 1})
	for i := 0; i < fleetMics; i++ {
		r.mics = append(r.mics, r.room.AddMicrophone(
			"m"+itoa(i), acoustic.Position{Y: float64(i)}, 0.0005))
	}
	det := NewDetector(MethodGoertzel, []float64{devBeatFreq})
	r.ctrl = NewController(r.sim, r.mics[0], det)
	if fleetMics > 1 {
		f := r.ctrl.EnableFleet(2)
		for _, m := range r.mics[1:] {
			f.AddMicrophone(m)
		}
	}
	r.mon = r.ctrl.EnableDeviceMonitor()
	return r
}

func deviceByName(snap []DeviceHealth, name string) DeviceHealth {
	for _, d := range snap {
		if d.Name == name {
			return d
		}
	}
	return DeviceHealth{}
}

// TestDeviceMonitorQuarantinesAndRejoinsNoisyMic is the drift e2e:
// one fleet microphone's noise floor ramps up mid-run, the monitor
// recalibrates its threshold, quarantines it when it stops hearing
// the beats its peer hears, keeps detecting on the remaining
// microphone, and readmits it after the fault clears.
func TestDeviceMonitorQuarantinesAndRejoinsNoisyMic(t *testing.T) {
	r := newDeviceRig(2)
	// Fault: m1's noise floor climbs to 0.5 RMS (bin level ~0.015,
	// swamping the ~0.022 received beat), then clears.
	r.mics[1].ScheduleNoiseRamp(1.5, 2.0, 0.5)
	r.mics[1].ScheduleNoiseRamp(5.0, 5.5, 0.0005)
	r.scheduleBeats(12)

	var detWindows []float64 // window starts that carried detections
	r.ctrl.SubscribeWindows(func(start float64, dets []Detection) {
		if len(dets) > 0 {
			detWindows = append(detWindows, start)
		}
	})
	r.ctrl.Start(0)

	r.sim.RunUntil(4.5)
	if !r.ctrl.Fleet().IsQuarantined(1) {
		t.Fatalf("m1 not quarantined at t=4.5; devices = %+v", r.mon.Snapshot())
	}
	if n := r.mon.MicsQuarantined(); n != 1 {
		t.Fatalf("MicsQuarantined = %d, want 1", n)
	}
	h := r.ctrl.Health()
	if h.State != Degraded {
		t.Fatalf("health during quarantine = %s (reasons %v), want degraded", h.StateName, h.Reasons)
	}
	found := false
	for _, reason := range h.Reasons {
		if strings.Contains(reason, "microphone") {
			found = true
		}
	}
	if !found {
		t.Errorf("no microphone reason in %v", h.Reasons)
	}
	if d := deviceByName(h.Devices, "m1"); d.State != "deaf" || d.Recalibrations == 0 {
		t.Errorf("m1 mid-fault = %+v, want deaf with recalibrations", d)
	}

	r.sim.RunUntil(12)
	if r.ctrl.Fleet().IsQuarantined(1) {
		t.Fatalf("m1 still quarantined at t=12; devices = %+v", r.mon.Snapshot())
	}
	end := r.ctrl.Health()
	if end.State != Healthy {
		t.Errorf("end health = %s (reasons %v), want healthy", end.StateName, end.Reasons)
	}
	d := deviceByName(end.Devices, "m1")
	if d.Quarantines == 0 || d.Rejoins == 0 || d.Recalibrations < 2 {
		t.Errorf("m1 lifecycle counters = %+v, want quarantine+rejoin+recalibrations", d)
	}
	if d.State != "healthy" {
		t.Errorf("m1 end state = %s, want healthy", d.State)
	}
	// Detection never stopped: the healthy microphone carried the
	// fleet through the whole quarantine.
	during := 0
	for _, w := range detWindows {
		if w >= 3.5 && w <= 5.0 {
			during++
		}
	}
	if during == 0 {
		t.Error("no detections while m1 was quarantined — failover did not hold")
	}
}

// TestDeviceMonitorRekeysDetunedSpeakerAndHeals is the detune e2e: the
// speaker drifts to 1.04× its commanded frequency, the monitor finds
// the shifted tone on the detune grid, re-keys (watches 728 Hz,
// rewrites detections back to 700 Hz), and retires the re-key when the
// speaker comes back in tune.
func TestDeviceMonitorRekeysDetunedSpeakerAndHeals(t *testing.T) {
	r := newDeviceRig(1)
	r.mon.SilentWindows = 10
	r.mon.WatchSpeaker("s1", nil, devBeatFreq)
	// Ramps first (Play evaluates them at each tone's start time).
	r.sp.ScheduleDetune(2.0, 2.5, 1.04)
	r.sp.ScheduleDetune(6.0, 6.5, 1.0)
	r.scheduleBeats(12)

	var rewritten []float64 // times of 700 Hz detections
	r.ctrl.SubscribeWindows(func(start float64, dets []Detection) {
		for _, d := range dets {
			if d.Frequency == devBeatFreq {
				rewritten = append(rewritten, start)
			}
		}
	})
	r.ctrl.Start(0)

	r.sim.RunUntil(5)
	mid := deviceByName(r.mon.Snapshot(), "s1")
	if mid.State != "detuned" || mid.Rekeys != 1 {
		t.Fatalf("s1 mid-fault = %+v, want detuned with 1 rekey", mid)
	}
	if math.Abs(mid.DetuneRatio-1.04) > 1e-9 {
		t.Errorf("detune ratio = %g, want 1.04", mid.DetuneRatio)
	}
	h := r.ctrl.Health()
	if h.State != Degraded {
		t.Errorf("health while detuned = %s (reasons %v), want degraded", h.StateName, h.Reasons)
	}
	// Post-re-key, subscribers still see the COMMANDED frequency.
	post := 0
	for _, w := range rewritten {
		if w >= 3.5 && w <= 5.0 {
			post++
		}
	}
	if post == 0 {
		t.Error("no 700 Hz detections after re-key — rewrite not applied")
	}

	r.sim.RunUntil(12)
	end := deviceByName(r.mon.Snapshot(), "s1")
	if end.State != "healthy" || end.DetuneRatio != 0 {
		t.Errorf("s1 after heal = %+v, want healthy with re-key retired", end)
	}
	if hh := r.ctrl.Health(); hh.State != Healthy {
		t.Errorf("end health = %s (reasons %v), want healthy", hh.StateName, hh.Reasons)
	}
}

// TestDeviceMonitorMutesDeadSpeaker: a speaker that decays to nothing
// is probed, found gone, and its voice muted so it stops burning the
// shared channel.
func TestDeviceMonitorMutesDeadSpeaker(t *testing.T) {
	r := newDeviceRig(1)
	r.mon.SilentWindows = 10
	r.sp.ScheduleAmplitudeDecay(2.0, 2.5, 0)

	voice := NewVoice(r.sim, mp.NewSounder(mp.NewPi(r.sim, r.sp, 0.002)))
	r.mon.WatchSpeaker("s1", voice, devBeatFreq)
	r.sim.Every(0.1, devBeatPeriod, func(now float64) { voice.Play(devBeatFreq) })
	r.ctrl.Start(0)
	r.sim.RunUntil(8)

	d := deviceByName(r.mon.Snapshot(), "s1")
	if d.State != "silent" || !d.Muted {
		t.Fatalf("s1 = %+v, want silent and muted", d)
	}
	if !voice.Muted() || voice.Suppressed == 0 {
		t.Errorf("voice muted=%v suppressed=%d, want muted with suppressed beats",
			voice.Muted(), voice.Suppressed)
	}
	if h := r.ctrl.Health(); h.State != Degraded {
		t.Errorf("health = %s (reasons %v), want degraded", h.StateName, h.Reasons)
	}
}

// TestDeviceMonitorStreamQuarantineAndRejoin runs the same drift fault
// through the streaming pipeline: the quarantined pipe sits hops out,
// onsets keep flowing from the healthy microphone, and the pipe
// re-primes on rejoin.
func TestDeviceMonitorStreamQuarantineAndRejoin(t *testing.T) {
	r := newDeviceRig(2)
	r.mics[1].ScheduleNoiseRamp(1.5, 2.0, 0.5)
	r.mics[1].ScheduleNoiseRamp(5.0, 5.5, 0.0005)
	r.scheduleBeats(12)
	r.ctrl.StartStream(0, r.ctrl.Window)

	r.sim.RunUntil(4.2)
	if r.mon.MicsQuarantined() != 1 {
		t.Fatalf("stream path did not quarantine m1; devices = %+v", r.mon.Snapshot())
	}
	onsetsAt4 := r.ctrl.Stream().Onsets
	r.sim.RunUntil(5.0)
	if got := r.ctrl.Stream().Onsets; got <= onsetsAt4 {
		t.Errorf("onsets stalled during quarantine: %d at t=4, %d at t=5", onsetsAt4, got)
	}
	r.sim.RunUntil(12)
	if r.mon.MicsQuarantined() != 0 {
		t.Fatalf("m1 never rejoined on the stream path; devices = %+v", r.mon.Snapshot())
	}
	if d := deviceByName(r.mon.Snapshot(), "m1"); d.Rejoins == 0 || d.State != "healthy" {
		t.Errorf("m1 = %+v, want healthy with a rejoin", d)
	}
}

// runQuarantinedFleet analyses one window with the given microphones
// quarantined and returns a copy of the merged detections.
func runQuarantinedFleet(n, workers int, quar []int) []Detection {
	_, mics, det := fleetRoom(n)
	f := NewFleet(det, workers)
	defer f.Close()
	for _, m := range mics {
		f.AddMicrophone(m)
	}
	for _, i := range quar {
		f.SetQuarantined(i, true)
	}
	dets := f.Analyse(0, 0.065)
	out := make([]Detection, len(dets))
	copy(out, dets)
	return out
}

// TestFleetQuarantineByteIdenticalAcrossWorkers pins the determinism
// contract under failover: with any subset of microphones quarantined,
// the merged detections are bit-exact at every worker count.
func TestFleetQuarantineByteIdenticalAcrossWorkers(t *testing.T) {
	const n = 8
	full := runQuarantinedFleet(n, 1, nil)
	if len(full) == 0 {
		t.Fatal("fleet heard nothing")
	}
	subsets := [][]int{{0}, {3}, {0, 2}, {1, 2, 3, 4, 5, 6}, {0, 1, 2, 3, 4, 5, 6}}
	for _, quar := range subsets {
		want := runQuarantinedFleet(n, 1, quar)
		if len(want) >= len(full) {
			t.Fatalf("quarantining %v did not shrink the merge (%d vs %d)",
				quar, len(want), len(full))
		}
		for _, workers := range []int{2, 4, 8} {
			got := runQuarantinedFleet(n, workers, quar)
			if len(got) != len(want) {
				t.Fatalf("quar=%v workers=%d: %d detections, want %d",
					quar, workers, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("quar=%v workers=%d: detection %d = %+v, want %+v (bit-exact)",
						quar, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestFleetQuarantineFlipsConcurrentWithAnalyse drives SetQuarantined
// from another goroutine while windows analyse — the -race exercise
// for the quarantine lock.
func TestFleetQuarantineFlipsConcurrentWithAnalyse(t *testing.T) {
	_, mics, det := fleetRoom(6)
	f := NewFleet(det, 4)
	defer f.Close()
	for _, m := range mics {
		f.AddMicrophone(m)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			f.SetQuarantined(1+i%4, i%2 == 0)
			f.IsQuarantined(1 + i%4)
			i++
		}
	}()
	for w := 0; w < 200; w++ {
		from := float64(w) * 0.050
		f.Analyse(from, from+0.050)
	}
	close(stop)
	wg.Wait()
}

// TestDeviceMonitorSteadyStateAllocs pins the drift tracker's hot
// path: a healthy monitored fleet window — capture, calibrated detect,
// ObserveMic, finishWindow fold — allocates nothing.
func TestDeviceMonitorSteadyStateAllocs(t *testing.T) {
	r := newDeviceRig(2)
	r.mon.WatchSpeaker("s1", nil, devBeatFreq)
	r.scheduleBeats(120)
	// Warm up through two full beat cycles: detector clones, result
	// slots, the detected-set map, and speaker fingerprint entries.
	win := 0
	for ; win < 16; win++ {
		from := float64(win) * 0.050
		r.ctrl.analyse(from, from+0.050)
	}
	allocs := testing.AllocsPerRun(100, func() {
		from := float64(win) * 0.050
		r.ctrl.analyse(from, from+0.050)
		win++
	})
	if allocs != 0 {
		t.Errorf("steady-state monitored window allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkDeviceMonitorSteadyState is the CI allocation gate for the
// drift-tracker path (must report 0 allocs/op).
func BenchmarkDeviceMonitorSteadyState(b *testing.B) {
	r := newDeviceRig(2)
	r.mon.WatchSpeaker("s1", nil, devBeatFreq)
	r.scheduleBeats(float64(b.N+32)*0.050 + 1)
	win := 0
	for ; win < 16; win++ {
		from := float64(win) * 0.050
		r.ctrl.analyse(from, from+0.050)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := float64(win) * 0.050
		r.ctrl.analyse(from, from+0.050)
		win++
	}
}

// TestDeviceMonitorTelemetryRendersThroughValidateText: the
// mdn_device_* series render and parse.
func TestDeviceMonitorTelemetryRendersThroughValidateText(t *testing.T) {
	r := newDeviceRig(2)
	reg := telemetry.New()
	r.ctrl.Instrument(reg)
	mon := r.ctrl.DeviceMonitor()
	mon.Instrument(reg)
	mon.WatchSpeaker("s1", nil, devBeatFreq)
	r.scheduleBeats(2)
	r.ctrl.Start(0)
	r.sim.RunUntil(2)

	var buf bytes.Buffer
	if err := reg.Snapshot().WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	text := buf.String()
	if err := telemetry.ValidateText(strings.NewReader(text)); err != nil {
		t.Fatalf("device metrics fail ValidateText: %v\n%s", err, text)
	}
	for _, want := range []string{
		`mdn_device_state{kind="mic",name="m0"}`,
		`mdn_device_state{kind="mic",name="m1"}`,
		`mdn_device_state{kind="speaker",name="s1"}`,
		`mdn_device_noise_floor{mic="m0"}`,
		"mdn_device_transitions_total",
		"mdn_device_recalibrations_total",
		"mdn_device_quarantines_total",
		"mdn_device_rejoins_total",
		"mdn_device_rekeys_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %s in:\n%s", want, text)
		}
	}
}
