package core

import (
	"math"
	"testing"

	"mdn/internal/audio"
)

func toneBuf(freq, dur, amp float64) *audio.Buffer {
	return audio.Tone{Frequency: freq, Duration: dur, Amplitude: amp}.Render(44100)
}

func TestDetectorGoertzelFindsTone(t *testing.T) {
	det := NewDetector(MethodGoertzel, []float64{500, 700, 900})
	buf := toneBuf(700, 0.05, 0.05)
	got := det.Detect(buf, 3.25)
	if len(got) != 1 {
		t.Fatalf("detections = %+v", got)
	}
	d := got[0]
	if d.Frequency != 700 || d.Time != 3.25 {
		t.Errorf("detection = %+v", d)
	}
	// Envelope shaves a little amplitude; expect within 25%.
	if d.Amplitude < 0.035 || d.Amplitude > 0.055 {
		t.Errorf("amplitude = %g, want ~0.05", d.Amplitude)
	}
}

func TestDetectorFFTFindsTone(t *testing.T) {
	det := NewDetector(MethodFFT, []float64{500, 700, 900})
	buf := toneBuf(700, 0.05, 0.05)
	got := det.Detect(buf, 0)
	if len(got) != 1 || got[0].Frequency != 700 {
		t.Fatalf("detections = %+v", got)
	}
	if got[0].Amplitude < 0.02 || got[0].Amplitude > 0.08 {
		t.Errorf("amplitude = %g, want ~0.05", got[0].Amplitude)
	}
}

func TestDetectorBothMethodsAgreeOnMultiTone(t *testing.T) {
	watch := []float64{500, 600, 700, 800}
	mix := audio.Chord(44100,
		audio.Tone{Frequency: 500, Duration: 0.05, Amplitude: 0.03},
		audio.Tone{Frequency: 800, Duration: 0.05, Amplitude: 0.03},
	)
	for _, m := range []Method{MethodGoertzel, MethodFFT} {
		det := NewDetector(m, watch)
		got := det.Detect(mix, 0)
		if len(got) != 2 {
			t.Fatalf("%v: detections = %+v", m, got)
		}
		if got[0].Frequency != 500 || got[1].Frequency != 800 {
			t.Errorf("%v: frequencies = %g %g", m, got[0].Frequency, got[1].Frequency)
		}
	}
}

func TestDetectorRejectsQuietTone(t *testing.T) {
	det := NewDetector(MethodGoertzel, []float64{700})
	buf := toneBuf(700, 0.05, DefaultMinAmplitude/10)
	if got := det.Detect(buf, 0); len(got) != 0 {
		t.Errorf("sub-threshold tone detected: %+v", got)
	}
}

func TestDetectorRejectsNoise(t *testing.T) {
	watch := []float64{500, 600, 700, 800, 900}
	noise := audio.WhiteNoise(44100, 0.05, 0.001, 77) // mic-floor level
	for _, m := range []Method{MethodGoertzel, MethodFFT} {
		det := NewDetector(m, watch)
		if got := det.Detect(noise, 0); len(got) != 0 {
			t.Errorf("%v: noise produced detections: %+v", m, got)
		}
	}
}

func TestDetectorAdjacentFrequencyIsolation(t *testing.T) {
	// A tone at 700 Hz must not trigger the 720 Hz watcher at 20 Hz
	// spacing (the paper's spacing claim) with a 50 ms window ...
	det := NewDetector(MethodGoertzel, []float64{700, 720})
	buf := toneBuf(700, 0.05, 0.03)
	got := det.Detect(buf, 0)
	for _, d := range got {
		if d.Frequency == 700 {
			continue
		}
		// Leakage may appear but must be far weaker than the tone.
		if d.Amplitude > 0.015 {
			t.Errorf("adjacent leak too strong: %+v", d)
		}
	}
}

func TestDetectorEmptyInputs(t *testing.T) {
	det := NewDetector(MethodGoertzel, nil)
	if det.Detect(toneBuf(700, 0.05, 0.1), 0) != nil {
		t.Error("no watch list should give nil")
	}
	det2 := NewDetector(MethodGoertzel, []float64{700})
	if det2.Detect(nil, 0) != nil {
		t.Error("nil buffer should give nil")
	}
	if det2.Detect(audio.NewBuffer(44100, 0), 0) != nil {
		t.Error("empty buffer should give nil")
	}
}

func TestDetectorWatchManagement(t *testing.T) {
	det := NewDetector(MethodFFT, []float64{500})
	det.AddWatch(600, 700)
	w := det.Watch()
	if len(w) != 3 || w[2] != 700 {
		t.Errorf("watch = %v", w)
	}
	// Returned slice is a copy.
	w[0] = 1
	if det.Watch()[0] != 500 {
		t.Error("Watch leaked internal state")
	}
}

func TestDetectorFFTToleranceCatchesOffBinTone(t *testing.T) {
	det := NewDetector(MethodFFT, []float64{707}) // watch off-tone
	det.ToleranceHz = 10
	buf := toneBuf(700, 0.05, 0.05)
	if got := det.Detect(buf, 0); len(got) != 1 {
		t.Errorf("tolerant FFT watcher missed nearby tone: %+v", got)
	}
}

func TestMethodString(t *testing.T) {
	if MethodGoertzel.String() != "goertzel" || MethodFFT.String() != "fft" || Method(9).String() != "unknown" {
		t.Error("method names wrong")
	}
}

func TestOnsetFilterConfirmedEdges(t *testing.T) {
	o := NewOnsetFilter() // 2-window confirmation, 1-window re-arm
	d700 := Detection{Frequency: 700, Amplitude: 0.1}
	// Window 1: tone appears -> unconfirmed, no onset yet.
	if got := o.Step([]Detection{d700}); len(got) != 0 {
		t.Fatalf("w1 = %+v", got)
	}
	// Window 2: still present -> confirmed onset.
	if got := o.Step([]Detection{d700}); len(got) != 1 {
		t.Fatalf("w2 = %+v", got)
	}
	// Window 3: still present -> no re-fire.
	if got := o.Step([]Detection{d700}); len(got) != 0 {
		t.Fatalf("w3 = %+v", got)
	}
	// Window 4: silence -> re-arm.
	if got := o.Step(nil); len(got) != 0 {
		t.Fatalf("w4 = %+v", got)
	}
	// Windows 5-6: tone again -> confirmed onset at window 6.
	if got := o.Step([]Detection{d700}); len(got) != 0 {
		t.Fatalf("w5 = %+v", got)
	}
	if got := o.Step([]Detection{d700}); len(got) != 1 {
		t.Fatalf("w6 = %+v", got)
	}
}

func TestOnsetFilterRejectsOneWindowBlip(t *testing.T) {
	// Tone-onset splatter shows up in exactly one window; a
	// confirmed filter must ignore it.
	o := NewOnsetFilter()
	blip := Detection{Frequency: 480}
	if got := o.Step([]Detection{blip}); len(got) != 0 {
		t.Fatalf("blip fired: %+v", got)
	}
	if got := o.Step(nil); len(got) != 0 {
		t.Fatalf("silence fired: %+v", got)
	}
	// The streak must have reset: another single blip still no fire.
	if got := o.Step([]Detection{blip}); len(got) != 0 {
		t.Fatalf("second blip fired: %+v", got)
	}
}

func TestOnsetFilterHoldWindows(t *testing.T) {
	o := NewOnsetFilter()
	o.ConfirmWindows = 1 // isolate hold behaviour
	o.HoldWindows = 3
	d := Detection{Frequency: 500}
	if got := o.Step([]Detection{d}); len(got) != 1 {
		t.Fatal("first presence should fire with 1-window confirm")
	}
	o.Step(nil) // 1 silent window: not yet re-armed
	o.Step(nil) // 2 silent windows: not yet
	if got := o.Step([]Detection{d}); len(got) != 0 {
		t.Errorf("re-armed too early: %+v", got)
	}
	o.Step(nil)
	o.Step(nil)
	o.Step(nil)
	if got := o.Step([]Detection{d}); len(got) != 1 {
		t.Errorf("should re-arm after 3 silent windows: %+v", got)
	}
}

func TestOnsetFilterIndependentFrequencies(t *testing.T) {
	o := NewOnsetFilter()
	a := Detection{Frequency: 500}
	b := Detection{Frequency: 600}
	o.Step([]Detection{a, b})
	if got := o.Step([]Detection{a, b}); len(got) != 2 {
		t.Fatalf("both should confirm: %+v", got)
	}
	// a continues, b goes silent then returns for two windows: only
	// b re-fires.
	o.Step([]Detection{a})
	o.Step([]Detection{a, b})
	got := o.Step([]Detection{a, b})
	if len(got) != 1 || got[0].Frequency != 600 {
		t.Fatalf("got %+v, want only 600", got)
	}
}

func TestDetectorAmplitudeAccuracy(t *testing.T) {
	// Amplitude estimates should track the true amplitude within
	// ~30% across a range (envelope costs a bit).
	for _, amp := range []float64{0.001, 0.01, 0.1} {
		det := NewDetector(MethodGoertzel, []float64{1000})
		got := det.Detect(toneBuf(1000, 0.1, amp), 0)
		if len(got) != 1 {
			t.Fatalf("amp %g not detected", amp)
		}
		if math.Abs(got[0].Amplitude-amp)/amp > 0.3 {
			t.Errorf("estimated %g for true %g", got[0].Amplitude, amp)
		}
	}
}
