package core

import (
	"math"
	"sync"
	"sync/atomic"

	"mdn/internal/audio"
	"mdn/internal/dsp"
)

// Method selects how the detector inspects a capture window.
type Method int

// Detection methods.
const (
	// MethodGoertzel evaluates one Goertzel filter per watched
	// frequency — cheap when the watch list is small.
	MethodGoertzel Method = iota
	// MethodFFT computes one windowed FFT per capture and reads the
	// watched bins — cheaper when the watch list is large (the
	// paper's Figure 2 uses the FFT).
	MethodFFT
)

// String names the method.
func (m Method) String() string {
	switch m {
	case MethodGoertzel:
		return "goertzel"
	case MethodFFT:
		return "fft"
	default:
		return "unknown"
	}
}

// Detection is one tone observed in a capture window.
type Detection struct {
	// Time is the start of the capture window, in seconds.
	Time float64
	// Frequency is the watched frequency that fired, in Hz.
	Frequency float64
	// Amplitude is the estimated linear tone amplitude at the
	// microphone.
	Amplitude float64
}

// Detector finds watched frequencies in capture windows. The zero
// value is unusable; construct with NewDetector.
type Detector struct {
	// Method selects Goertzel or FFT analysis.
	Method Method
	// MinAmplitude is the detection threshold: estimated tone
	// amplitude at the microphone below this is noise.
	MinAmplitude float64
	// ToleranceHz is how far (in Hz) a spectral peak may sit from a
	// watched frequency and still count (FFT method only; Goertzel
	// evaluates the exact frequency).
	ToleranceHz float64
	// RelativeFloor rejects watched frequencies whose amplitude is
	// below this fraction of the loudest watched frequency in the
	// same window. It suppresses spectral leakage from loud tones
	// (a rectangular window's first sidelobes sit near -13 dB) at
	// the cost of masking tones more than 1/RelativeFloor quieter
	// than a simultaneous loud one.
	RelativeFloor float64

	// mu guards the watch list (and the analysis that reads it), so
	// AddWatch is safe from any goroutine at any time — including
	// mid-window, where it simply waits for the in-flight Detect. The
	// lock is uncontended in steady state: one Lock/Unlock pair per
	// window.
	mu    sync.Mutex
	watch []float64
	// watchRev counts watch-list edits; Fleet snapshots it at fan-out
	// and re-checks it at merge to detect a mid-window edit (see
	// Fleet.Analyse). Atomic so the check never races the edit.
	watchRev atomic.Uint64

	// Reused scratch: the controller calls Detect once per 50 ms
	// window forever, so steady-state detection must not allocate.
	// A Detector is therefore not safe for concurrent use; give
	// each goroutine its own (the FFT plans they share underneath
	// are concurrency-safe).
	gplan *dsp.GoertzelPlan // rebuilt when watch list or rate changes
	amps  []float64
	mags  []float64
	out   []Detection
	// fftScr is detector-owned FFT workspace. The plan's default
	// pooled scratch lives in a sync.Pool the GC may clear between
	// 50 ms windows, which would make "steady state" re-allocate
	// ~100 KB under heap pressure; owning the scratch pins the
	// zero-alloc guarantee.
	fftScr dsp.FFTScratch
}

// DefaultMinAmplitude corresponds to a 30 dB SPL tone — the paper's
// quietest — heard from 2 m, with 6 dB of margin.
const DefaultMinAmplitude = 2.5e-4

// NewDetector builds a detector watching the given frequencies.
func NewDetector(method Method, watch []float64) *Detector {
	w := make([]float64, len(watch))
	copy(w, watch)
	return &Detector{
		Method:        method,
		MinAmplitude:  DefaultMinAmplitude,
		ToleranceHz:   DefaultSpacing / 2,
		RelativeFloor: 0.15,
		watch:         w,
	}
}

// Watch returns the watched frequencies.
func (d *Detector) Watch() []float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]float64, len(d.watch))
	copy(out, d.watch)
	return out
}

// WatchLen returns the number of watched frequencies.
func (d *Detector) WatchLen() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.watch)
}

// WatchRev returns the watch-list revision: it increments on every
// AddWatch. Fleet snapshots it before fanning a window out and
// re-checks it at merge, so an edit landing mid-window is detected
// rather than half-applied.
func (d *Detector) WatchRev() uint64 { return d.watchRev.Load() }

// AddWatch extends the watch list. It is safe from any goroutine at
// any time; an addition landing mid-window takes effect at the next
// window.
func (d *Detector) AddWatch(freqs ...float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.watch = append(d.watch, freqs...)
	d.gplan = nil // coefficients are stale
	d.watchRev.Add(1)
}

// Clone returns an independent detector with the same configuration
// and watch list. Detection scratch is not shared: a Detector is not
// safe for concurrent use, so concurrent analysis (the fleet path)
// gives each worker its own clone. The DSP plans the clones build
// underneath come from the process-wide plan cache, which is
// concurrency-safe — plans are shared, scratch is not.
func (d *Detector) Clone() *Detector {
	d.mu.Lock()
	defer d.mu.Unlock()
	w := make([]float64, len(d.watch))
	copy(w, d.watch)
	c := &Detector{
		Method:        d.Method,
		MinAmplitude:  d.MinAmplitude,
		ToleranceHz:   d.ToleranceHz,
		RelativeFloor: d.RelativeFloor,
		watch:         w,
	}
	c.watchRev.Store(d.watchRev.Load())
	return c
}

// Detect analyses one capture window and returns the watched tones
// present in it, in watch-list order. windowStart stamps the
// detections.
//
// The returned slice is scratch owned by the detector, valid until
// the next Detect call; copy it to retain detections across windows.
func (d *Detector) Detect(buf *audio.Buffer, windowStart float64) []Detection {
	if buf == nil || buf.Len() == 0 {
		return nil
	}
	// Holding the watch lock across the whole analysis makes each
	// window atomic with respect to AddWatch: an edit either precedes
	// the window entirely or waits for the next one.
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.watch) == 0 {
		return nil
	}
	return d.filter(d.amplitudes(buf), windowStart)
}

// DetectCalibrated is Detect with an explicit absolute threshold and
// the raw per-watch amplitude estimates exposed: the device-health
// monitor's entry point. A recalibrated per-microphone floor replaces
// MinAmplitude (pass d.MinAmplitude to reproduce Detect bit-exactly),
// and the amplitudes feed the monitor's fingerprints and noise-floor
// trackers without a second analysis pass.
//
// Both returned slices are detector scratch, valid until the next
// analysis call on this detector.
func (d *Detector) DetectCalibrated(buf *audio.Buffer, windowStart, minAmp float64) ([]Detection, []float64) {
	if buf == nil || buf.Len() == 0 {
		return nil, nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.watch) == 0 {
		return nil, nil
	}
	amps := d.amplitudes(buf)
	d.out = filterDetections(d.out[:0], amps, d.watch, minAmp, d.RelativeFloor, windowStart)
	if len(d.out) == 0 {
		return nil, amps
	}
	return d.out, amps
}

// amplitudes computes the per-watch pre-threshold amplitude estimates
// of one window — the raw material of both the threshold filter and
// the streaming path's edge dedup (which needs sub-threshold values
// for its release hysteresis). The caller holds d.mu; the returned
// slice is detector scratch.
func (d *Detector) amplitudes(buf *audio.Buffer) []float64 {
	switch d.Method {
	case MethodFFT:
		return d.ampsFFT(buf)
	default:
		return d.ampsGoertzel(buf)
	}
}

func (d *Detector) ampsGoertzel(buf *audio.Buffer) []float64 {
	if d.gplan == nil || d.gplan.SampleRate != buf.SampleRate {
		d.gplan = dsp.NewGoertzelPlan(d.watch, buf.SampleRate)
	}
	d.amps = d.gplan.MagnitudesInto(d.amps, buf.Samples)
	// A sinusoid of amplitude A spanning the whole window yields a
	// Goertzel magnitude of A*n/2.
	scale := 2 / float64(buf.Len())
	for i := range d.amps {
		d.amps[i] *= scale
	}
	return d.amps
}

// filter applies the absolute and relative thresholds to per-watch
// amplitude estimates. The caller holds d.mu.
func (d *Detector) filter(amps []float64, windowStart float64) []Detection {
	d.out = filterDetections(d.out[:0], amps, d.watch, d.MinAmplitude, d.RelativeFloor, windowStart)
	if len(d.out) == 0 {
		return nil
	}
	return d.out
}

// filterDetections appends the amplitudes that clear both the absolute
// floor and the relative floor (a fraction of the loudest watched
// frequency in the window) to out as detections. It is shared by the
// batch detector and the streaming per-window filter so the two apply
// identical float operations — the bit-exactness contract at
// hop == window.
func filterDetections(out []Detection, amps, watch []float64, minAmp, relFloor, windowStart float64) []Detection {
	maxAmp := 0.0
	for _, a := range amps {
		if a > maxAmp {
			maxAmp = a
		}
	}
	floor := minAmp
	if rel := relFloor * maxAmp; rel > floor {
		floor = rel
	}
	for i, a := range amps {
		if a >= floor {
			out = append(out, Detection{Time: windowStart, Frequency: watch[i], Amplitude: a})
		}
	}
	return out
}

func (d *Detector) ampsFFT(buf *audio.Buffer) []float64 {
	n := buf.Len()
	fftSize := dsp.NextPowerOfTwo(n)
	plan := dsp.PlanFFT(fftSize)
	d.mags = plan.WindowedSpectrumScratch(d.mags, buf.Samples, dsp.Hann, &d.fftScr)
	d.amps = growFloats(d.amps, len(d.watch))
	fftAmplitudes(d.amps, d.mags, d.watch, n, fftSize, buf.SampleRate, d.ToleranceHz)
	return d.amps
}

// fftAmplitudes converts half-spectrum magnitudes into per-watch
// amplitude estimates: the peak bin within tolHz of each watched
// frequency, rescaled by the window's coherent gain. It is shared by
// the batch FFT path and the streaming overlap-save STFT path, which
// is what makes the two bit-exact over the same spectrum.
func fftAmplitudes(amps, mags, watch []float64, n, fftSize int, sampleRate, tolHz float64) {
	gain := dsp.Hann.Gain(n)
	span := int(math.Ceil(tolHz / dsp.BinResolution(fftSize, sampleRate)))
	for i, f := range watch {
		center := dsp.FrequencyBin(f, fftSize, sampleRate)
		best := 0.0
		for k := center - span; k <= center+span; k++ {
			if k >= 0 && k < len(mags) && mags[k] > best {
				best = mags[k]
			}
		}
		// Amplitude estimate: FFT bin magnitude of a full-window
		// sinusoid is A*n*gain/2 (window coherent gain).
		amps[i] = 2 * best / (float64(n) * gain)
	}
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

// OnsetFilter turns per-window presence into confirmed tone events: a
// frequency must be present for ConfirmWindows consecutive windows to
// fire once, and must then fall silent for HoldWindows windows before
// it may fire again. MDN applications count tones, not windows, so
// nearly every app wraps the controller's detections in one of these.
//
// The confirmation requirement is what rejects tone-onset splatter:
// the first few milliseconds of any tone look impulse-like and excite
// every watched frequency in that boundary window, but only the true
// frequency stays present in the next one.
type OnsetFilter struct {
	// ConfirmWindows is how many consecutive windows a frequency
	// must be present before the onset fires (default 2).
	ConfirmWindows int
	// HoldWindows is how many consecutive silent windows must pass
	// before the same frequency may fire again (default 1).
	HoldWindows int

	// Onsets counts confirmed onsets emitted over the filter's
	// lifetime (telemetry reads it through the owning application's
	// Instrument method).
	Onsets uint64

	states map[float64]*onsetState
}

type onsetState struct {
	streak int  // consecutive windows present
	fired  bool // onset emitted for the current activity burst
	silent int  // consecutive silent windows since last presence
}

// NewOnsetFilter returns a filter with 2-window confirmation that
// re-arms after one silent window.
func NewOnsetFilter() *OnsetFilter {
	return &OnsetFilter{ConfirmWindows: 2, HoldWindows: 1, states: make(map[float64]*onsetState)}
}

// Step consumes the detections of one window and returns the
// confirmed onsets. Call it once per controller window, in order,
// even when detections is empty (silence advances the re-arm
// countdown).
func (o *OnsetFilter) Step(detections []Detection) []Detection {
	present := make(map[float64]bool, len(detections))
	var onsets []Detection
	for _, det := range detections {
		present[det.Frequency] = true
		st := o.states[det.Frequency]
		if st == nil {
			st = &onsetState{}
			o.states[det.Frequency] = st
		}
		st.streak++
		st.silent = 0
		if !st.fired && st.streak >= o.ConfirmWindows {
			st.fired = true
			o.Onsets++
			onsets = append(onsets, det)
		}
	}
	for f, st := range o.states {
		if present[f] {
			continue
		}
		st.streak = 0
		st.silent++
		if st.silent >= o.HoldWindows {
			delete(o.states, f)
		}
	}
	return onsets
}
