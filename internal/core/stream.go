package core

import (
	"fmt"
	"math"

	"mdn/internal/acoustic"
	"mdn/internal/dsp"
	"mdn/internal/netsim"
	"mdn/internal/parallel"
	"mdn/internal/telemetry"
)

// StreamController is the controller's low-latency detection path: an
// incremental pipeline that advances the analysis window by a hop —
// a fraction of the window — instead of a whole window at a time, so
// a watched tone is detected within one hop of its onset rather than
// at the close of the window it lands in. The batch loop's worst case
// is a full window of dead time before analysis even starts; both
// teleorchestra papers (arXiv 1808.09399, 1809.07864) argue SDN+audio
// control loops live or die on exactly this delay.
//
// Per microphone the pipeline is three stages coupled by an SPSC
// queue:
//
//	capture   — acoustic.CaptureRing renders only the new hop span
//	            (the window-minus-hop overlap is saved, not re-mixed)
//	            and publishes the hop frame to the queue;
//	transform — dsp.SlidingGoertzel (staggered resonator banks, no
//	            sample retention) or dsp.OverlapSTFT (overlap-save
//	            ring + cached FFT plan) consumes frames and emits one
//	            full-window magnitude vector per hop;
//	detect    — the shared threshold filter turns magnitudes into
//	            Detections, merged across microphones and fanned out
//	            through the batch controller's own subscriber list.
//
// In the deterministic simulation all three stages run on the sim
// goroutine — each hop pushes one frame and drains it immediately —
// so results are reproducible; the SPSC coupling is what lets a real
// deployment move capture onto its own producer thread without
// restructuring (the queue is lock-free and allocation-free).
//
// Equivalence contract: at hop == window the streaming path is
// bit-exact with the batch path — same capture spans (hence identical
// samples, including the self-noise stream, which is seeded by the
// window start), same per-window transform (the sliding kernels
// reproduce their batch counterparts' float operations exactly), same
// filter, same subscriber dispatch, same health and counter updates.
// At hop < window the per-window spans differ by construction, so
// equivalence is behavioural (same tones detected, sooner), not
// bit-level.
//
// On top of the per-window batches the stream runs an EdgeDedup over
// the pre-threshold amplitudes: a tone straddling any number of hop
// windows is one onset, reported through OnOnset and the
// mdn_stream_detect_latency_seconds histogram (sim-time latency from
// the emission's arrival at the microphone to the firing hop close).
//
// A StreamController snapshots the detector's watch list when
// started; frequencies added later need a restart to be heard.
type StreamController struct {
	// OnOnset, when set, receives each deduplicated tone onset: the
	// first hop window in which the frequency's amplitude reached the
	// detection threshold, after silence. Detection.Time is the hop
	// close (detection time, not window start). It is called on the
	// simulation goroutine, outside the supervision barrier.
	OnOnset func(Detection)

	ctrl    *Controller
	hop     float64 // hop duration, seconds
	window  float64 // analysis window, seconds (ctrl.Window at start)
	hopN    int
	windowN int
	rate    float64
	freqs   []float64 // watch-list snapshot at start
	tol     float64   // ToleranceHz snapshot, for the latency probe

	pipes   []*streamPipe
	merged  []Detection
	sortTmp []Detection
	peak    []float64 // per-frequency max amplitude across pipes, per hop
	dedup   *EdgeDedup
	ticker  *netsim.Ticker

	// Hops counts processed hop steps; Onsets counts deduplicated tone
	// onsets; CaptureErrors counts hops abandoned because the capture
	// span had been compacted away (acoustic.ErrCompacted).
	Hops          uint64
	Onsets        uint64
	CaptureErrors uint64

	tm streamMetrics
}

// streamPipe is one microphone's capture → transform lane. Exactly one
// of sg/stft is set, by detection method.
type streamPipe struct {
	idx  int // microphone index (fleet order; 0 on the single-mic path)
	ring *acoustic.CaptureRing
	q    *parallel.SPSC[hopFrame]
	pool [][]float64 // frame sample buffers, one per queue slot
	seq  int

	// skipped marks a pipe sitting out hops because its microphone is
	// quarantined; on rejoin the pipe resets and re-primes from the
	// live edge.
	skipped bool

	sg    *dsp.SlidingGoertzel
	stft  *dsp.OverlapSTFT
	emit  func(mags []float64) // preallocated SlidingGoertzel callback
	curTo float64              // hop close of the frame being transformed

	amps    []float64 // per-watch amplitude estimates of the last window
	dets    []Detection
	emitted bool // a full window completed this hop
}

// hopFrame is one captured hop span in flight between the capture and
// transform stages. samples points into the pipe's frame pool; the
// slot is safe to reuse once the frame is popped (pool size == queue
// capacity, so the producer cannot lap the consumer).
type hopFrame struct {
	from, to float64
	samples  []float64
}

// streamQueueCap bounds in-flight hop frames per pipe. The synchronous
// sim drains every hop so depth never exceeds one; the headroom is for
// deployments that run capture on its own goroutine.
const streamQueueCap = 4

// StartStream begins streaming analysis at time at with the given hop,
// replacing any running batch poll loop. The hop must subdivide the
// controller's Window into an integer number of integer-sample hops
// (e.g. 10 ms hops of a 50 ms window at 44.1 kHz); StartStream panics
// otherwise, because a misaligned hop is a deployment wiring error.
// hop == Window is valid and reproduces the batch path exactly.
//
// Subscribers registered on the controller receive one batch per hop
// (each covering the trailing full window) once the first window has
// filled; the controller's counters and Health reflect the streamed
// windows. Call Stop on the returned StreamController (or on the
// controller) to halt.
func (c *Controller) StartStream(at, hop float64) *StreamController {
	rate := c.mic.Room().SampleRate
	if err := CheckStreamHop(c.Window, rate, hop); err != nil {
		panic(err.Error())
	}
	windowN := int(math.Round(c.Window * rate))
	hopN := int(math.Round(hop * rate))
	if c.ticker != nil {
		c.ticker.Stop()
		c.ticker = nil
	}
	if c.stream != nil {
		c.stream.Stop()
	}
	s := &StreamController{
		ctrl:    c,
		hop:     hop,
		window:  c.Window,
		hopN:    hopN,
		windowN: windowN,
		rate:    rate,
		freqs:   c.Detector.Watch(),
		tol:     c.Detector.ToleranceHz,
	}
	mics := []*acoustic.Microphone{c.mic}
	if c.fleet != nil {
		// Fleet integration: stream every registered listening point,
		// merging per-window detections in the fleet's order.
		mics = c.fleet.mics
	}
	for i, m := range mics {
		p := s.newPipe(m)
		p.idx = i
		s.pipes = append(s.pipes, p)
	}
	nf := len(s.freqs)
	bound := nf * len(s.pipes)
	s.merged = make([]Detection, 0, bound)
	s.sortTmp = make([]Detection, bound)
	s.peak = make([]float64, nf)
	s.dedup = NewEdgeDedup(nf, c.Detector.MinAmplitude)
	if c.tm.reg != nil {
		s.Instrument(c.tm.reg)
	}
	c.stream = s
	c.started = true
	c.startAt = at
	c.health.lastWindowEnd = at
	s.ticker = c.sim.Every(at+hop, hop, func(now float64) {
		s.step(now-s.hop, now)
	})
	return s
}

// Stream returns the controller's streaming pipeline, or nil when the
// controller is on the batch path.
func (c *Controller) Stream() *StreamController { return c.stream }

// CheckStreamHop reports whether hop is a valid streaming hop for the
// given analysis window and sample rate: positive, a whole number of
// samples, and an exact subdivision of the window. Configuration
// surfaces (scenario files, CLI flags) call it to reject a bad hop up
// front; StartStream enforces the same rule by panicking. At 44.1 kHz
// with the default 50 ms window (2205 samples) the usable hops are the
// divisors of 2205 samples — e.g. 10 ms (441), 1/3 window (735), or
// the window itself.
func CheckStreamHop(window, sampleRate, hop float64) error {
	windowN := int(math.Round(window * sampleRate))
	hopN := int(math.Round(hop * sampleRate))
	if hopN <= 0 || windowN <= 0 || windowN%hopN != 0 ||
		math.Abs(float64(hopN)-hop*sampleRate) > 1e-6 {
		return fmt.Errorf(
			"core: stream hop %g s is not an integer-sample divisor of window %g s at %g Hz",
			hop, window, sampleRate)
	}
	return nil
}

// newPipe builds one microphone's capture → transform lane.
func (s *StreamController) newPipe(m *acoustic.Microphone) *streamPipe {
	p := &streamPipe{
		ring: acoustic.NewCaptureRing(m, s.windowN),
		q:    parallel.NewSPSC[hopFrame](streamQueueCap),
		amps: make([]float64, len(s.freqs)),
		dets: make([]Detection, 0, len(s.freqs)),
	}
	for i := 0; i < p.q.Cap(); i++ {
		p.pool = append(p.pool, make([]float64, s.hopN))
	}
	if s.ctrl.Detector.Method == MethodFFT {
		p.stft = dsp.NewOverlapSTFT(s.windowN)
	} else {
		p.sg = dsp.NewSlidingGoertzel(s.freqs, s.rate, s.windowN, s.hopN)
		// Preallocated emission callback: built once so the per-hop
		// transform stage creates no closures.
		p.emit = func(mags []float64) {
			scale := 2 / float64(s.windowN)
			for i, m := range mags {
				p.amps[i] = m * scale
			}
			p.finishWindow(s)
		}
	}
	return p
}

// step advances every pipe by one hop: capture, transform, merge,
// dedup, dispatch. It runs on the simulation goroutine once per hop.
func (s *StreamController) step(from, to float64) {
	sp := telemetry.StartSpan(s.tm.hopWall, s.tm.wall)
	s.Hops++
	s.tm.hops.Inc()
	for _, p := range s.pipes {
		if s.skipPipe(p) {
			continue
		}
		if err := p.capture(from, to); err != nil {
			s.captureError(to, err)
			sp.End()
			return
		}
	}
	emitted := false
	for i := range s.peak {
		s.peak[i] = 0
	}
	for _, p := range s.pipes {
		if p.skipped {
			continue
		}
		p.drain(s)
		emitted = emitted || p.emitted
	}
	if !emitted {
		// Warm-up: the first window has not filled yet (hop < window
		// only; at hop == window the first hop completes a window).
		sp.End()
		return
	}
	s.merged = s.merged[:0]
	for _, p := range s.pipes {
		s.merged = append(s.merged, p.dets...)
	}
	sortDetections(s.merged, s.sortTmp)
	dets := s.merged
	if len(dets) == 0 {
		dets = nil
	}
	winStart := to - s.window
	// The dedup's attack level carries this window's relative floor —
	// identical leakage rejection to the detection filter, so an onset
	// can only fire for a frequency the filter would also report.
	maxPeak := 0.0
	for _, a := range s.peak {
		if a > maxPeak {
			maxPeak = a
		}
	}
	s.dedup.Step(s.peak, s.ctrl.Detector.RelativeFloor*maxPeak, func(i int) { s.onset(to, i) })
	s.ctrl.noteDetections(winStart, to, dets)
	if r := s.ctrl.Retention; r > 0 {
		s.pipes[0].ring.Mic().Room().CompactBefore(winStart - r)
	}
	sp.End()
}

// skipPipe reports whether pipe p sits this hop out because its
// microphone is quarantined by the device monitor. A rejoining pipe
// resets first so it re-primes from the live edge instead of splicing
// pre-quarantine samples onto the current window.
func (s *StreamController) skipPipe(p *streamPipe) bool {
	mon := s.ctrl.devmon
	if mon != nil && mon.micQuarantined(p.idx) {
		if !p.skipped {
			p.skipped = true
			p.dets = p.dets[:0]
			p.emitted = false
		}
		return true
	}
	if p.skipped {
		p.skipped = false
		p.reset()
	}
	return false
}

// capture renders [from, to) into the pipe's ring and publishes the
// hop frame to the transform queue. Frame samples are copied into a
// pool slot so the queue's contents stay valid if capture runs ahead
// of the transform stage (up to the queue capacity).
func (p *streamPipe) capture(from, to float64) error {
	if err := p.ring.Append(from, to); err != nil {
		return err
	}
	hop := p.ring.LastHop()
	buf := p.pool[p.seq%len(p.pool)]
	p.seq++
	n := copy(buf, hop)
	if !p.q.TryPush(hopFrame{from: from, to: to, samples: buf[:n]}) {
		// Queue full — cannot happen in the synchronous sim (every hop
		// is drained before the next), and a decoupled producer would
		// block or drop by policy here. Fail loudly rather than lose a
		// frame silently.
		panic("core: stream transform stage fell behind capture")
	}
	return nil
}

// drain runs the transform stage: every queued hop frame advances the
// sliding kernel, and each completed window lands in p.dets/p.amps.
func (p *streamPipe) drain(s *StreamController) {
	p.emitted = false
	for {
		fr, ok := p.q.TryPop()
		if !ok {
			return
		}
		p.curTo = fr.to
		if p.sg != nil {
			p.sg.Process(fr.samples, p.emit)
			continue
		}
		p.stft.Append(fr.samples)
		if !p.stft.Full() {
			continue
		}
		mags := p.stft.Spectrum(dsp.Hann)
		fftAmplitudes(p.amps, mags, s.freqs, s.windowN, p.stft.FFTSize(), s.rate, s.tol)
		p.finishWindow(s)
	}
}

// finishWindow filters one completed window's amplitude estimates into
// detections (identical float operations to the batch filter) and
// folds them into the stream's per-frequency amplitude peaks for the
// onset dedup.
func (p *streamPipe) finishWindow(s *StreamController) {
	p.emitted = true
	d := s.ctrl.Detector
	winStart := p.curTo - s.window
	minAmp := d.MinAmplitude
	if mon := s.ctrl.devmon; mon != nil {
		minAmp = mon.floorFor(p.idx, minAmp)
	}
	p.dets = filterDetections(p.dets[:0], p.amps, s.freqs, minAmp, d.RelativeFloor, winStart)
	if mon := s.ctrl.devmon; mon != nil {
		mon.ObserveMic(p.idx, winStart, p.dets, p.amps)
	}
	for i, a := range p.amps {
		if a > s.peak[i] {
			s.peak[i] = a
		}
	}
}

// onset handles one deduplicated rising edge at hop close time at:
// counters, the sim-time sound-to-detection latency histogram (ground
// truth from the emission schedule via LatestArrivalBefore), and the
// OnOnset callback.
func (s *StreamController) onset(at float64, i int) {
	s.Onsets++
	s.tm.onsets.Inc()
	f := s.freqs[i]
	// Latency attribution: the rising edge was produced by the window
	// [at-window, at), so only an emission arriving inside it (plus one
	// hop of slack) can be its cause. An onset with no such arrival —
	// background noise crossing a watched frequency, or an edge
	// re-armed long after the tone began — is counted but contributes
	// no latency observation, because pairing it with a stale emission
	// would poison the percentiles.
	if arr, ok := s.pipes[0].ring.Mic().LatestArrivalBefore(f, s.tol, at); ok && at-arr <= s.window+s.hop {
		s.tm.detectLatency.Observe(at - arr)
	}
	if s.OnOnset != nil {
		s.OnOnset(Detection{Time: at, Frequency: f, Amplitude: s.peak[i]})
	}
}

// captureError handles a hop whose span precedes the compaction
// horizon: the error is counted and recorded, and the pipeline resets
// so the stream re-primes cleanly at the live edge instead of
// analysing a window with a hole in it.
func (s *StreamController) captureError(now float64, err error) {
	s.CaptureErrors++
	s.tm.captureErrs.Inc()
	s.ctrl.Errors.Record(now, "stream", err)
	for _, p := range s.pipes {
		p.reset()
	}
}

// reset clears the pipe's ring, sliding kernel, and in-flight frames so
// it re-primes cleanly — after a capture error, or when a quarantined
// microphone rejoins.
func (p *streamPipe) reset() {
	p.ring.Reset()
	if p.sg != nil {
		p.sg.Reset()
	} else {
		p.stft.Reset()
	}
	for {
		if _, ok := p.q.TryPop(); !ok {
			break
		}
	}
}

// Stop halts the streaming pipeline.
func (s *StreamController) Stop() {
	if s.ticker != nil {
		s.ticker.Stop()
		s.ticker = nil
	}
	if s.ctrl.stream == s {
		s.ctrl.stream = nil
		s.ctrl.started = false
	}
}

// Hop returns the stream's hop in seconds.
func (s *StreamController) Hop() float64 { return s.hop }

// Freqs returns the watch-list snapshot the stream analyses (shared
// slice; read-only).
func (s *StreamController) Freqs() []float64 { return s.freqs }

// streamMetrics is the stream's telemetry handle set; nil (and no-op)
// until Instrument.
type streamMetrics struct {
	wall          telemetry.TimeSource
	hops          *telemetry.Counter
	onsets        *telemetry.Counter
	captureErrs   *telemetry.Counter
	detectLatency *telemetry.Histogram
	hopWall       *telemetry.Histogram
}

// Instrument registers the stream's telemetry with reg: hop/onset/
// capture-error counters, the sim-time sound-to-detection latency
// histogram, and the wall-time per-hop cost histogram. StartStream
// calls it automatically when the controller is instrumented; call it
// directly otherwise.
func (s *StreamController) Instrument(reg *telemetry.Registry) {
	s.tm = streamMetrics{
		wall:          telemetry.Wall(),
		hops:          reg.Counter(metricStreamHops),
		onsets:        reg.Counter(metricStreamOnsets),
		captureErrs:   reg.Counter(metricStreamCaptureErrors),
		detectLatency: reg.Histogram(metricStreamDetectLatency, telemetry.StreamLatencyBuckets),
		hopWall:       reg.Histogram(metricStreamHopWall, telemetry.StreamLatencyBuckets),
	}
}

// DetectLatency returns the sim-time sound-to-detection latency
// histogram (nil when uninstrumented) — the p50/p99 source for the
// latency budget.
func (s *StreamController) DetectLatency() *telemetry.Histogram {
	return s.tm.detectLatency
}
