package core

import (
	"math"
	"testing"

	"mdn/internal/acoustic"
)

// The fleet-level culling contract, CI-gated (see the culling smoke
// step in ci.yml): at the default threshold the culled fleet produces
// the same detections as the naive full mix, allocates nothing at
// steady state, and stays byte-identical across worker counts.

// analyseWindows runs a few windows through a fresh fleet over the
// bench room and returns copies of the merged detections.
func analyseWindows(tb testing.TB, n, workers int, cull bool, windows int) [][]Detection {
	mics, det := benchFleetRoom(n, cull)
	f := NewFleet(det, workers)
	defer f.Close()
	for _, m := range mics {
		f.AddMicrophone(m)
	}
	out := make([][]Detection, windows)
	for w := 0; w < windows; w++ {
		from := float64(w) * 0.050
		out[w] = append([]Detection(nil), f.Analyse(from, from+0.050)...)
	}
	return out
}

// TestFleetCullingDetectionsMatch is the default-threshold identity
// the CI smoke enforces: on the sparse fleet, culling (floor = each
// mic's SelfNoiseRMS) must yield the same detection set as the naive
// mix — same count, exactly equal times and frequencies, amplitudes
// within the cull floor (sub-floor contributions perturb FFT bins by
// at most the culled amplitude sum, far below it in practice).
func TestFleetCullingDetectionsMatch(t *testing.T) {
	const n, workers, windows = 64, 4, 3
	culled := analyseWindows(t, n, workers, true, windows)
	naive := analyseWindows(t, n, workers, false, windows)
	for w := range culled {
		if len(culled[w]) != len(naive[w]) {
			t.Fatalf("window %d: %d detections culled vs %d naive", w, len(culled[w]), len(naive[w]))
		}
		if len(culled[w]) < n {
			t.Errorf("window %d: %d detections, want at least one per voice (%d)", w, len(culled[w]), n)
		}
		for i := range culled[w] {
			c, nv := culled[w][i], naive[w][i]
			if c.Time != nv.Time || c.Frequency != nv.Frequency {
				t.Fatalf("window %d det %d: (t=%v f=%v) culled vs (t=%v f=%v) naive",
					w, i, c.Time, c.Frequency, nv.Time, nv.Frequency)
			}
			if math.Abs(c.Amplitude-nv.Amplitude) > 0.0005 {
				t.Fatalf("window %d det %d: amplitude %v culled vs %v naive exceeds the cull floor",
					w, i, c.Amplitude, nv.Amplitude)
			}
		}
	}
}

// TestFleetCullingBitExactWhenAllAudible uses the dense PR5 placement
// (every voice within centimetres, everything far above any noise
// floor) where culling removes nothing — so the merged detections
// must be exactly identical, field for field.
func TestFleetCullingBitExactWhenAllAudible(t *testing.T) {
	run := func(cull bool) []Detection {
		room, mics, det := fleetRoom(8)
		if cull {
			room.CullThreshold = acoustic.CullAuto
		}
		f := NewFleet(det, 4)
		defer f.Close()
		for _, m := range mics {
			f.AddMicrophone(m)
		}
		return append([]Detection(nil), f.Analyse(0, 0.050)...)
	}
	culled, naive := run(true), run(false)
	if len(culled) == 0 {
		t.Fatal("dense fleet produced no detections")
	}
	if len(culled) != len(naive) {
		t.Fatalf("%d detections culled vs %d naive", len(culled), len(naive))
	}
	for i := range culled {
		if culled[i] != naive[i] {
			t.Fatalf("det %d differs: %+v culled vs %+v naive", i, culled[i], naive[i])
		}
	}
}

// TestFleetCulledByteIdenticalAcrossWorkers extends the PR5 worker
// determinism guarantee to the sharded, culled path.
func TestFleetCulledByteIdenticalAcrossWorkers(t *testing.T) {
	const n, windows = 32, 3
	want := analyseWindows(t, n, 1, true, windows)
	for _, workers := range []int{2, 4, 8, 16} {
		got := analyseWindows(t, n, workers, true, windows)
		for w := range want {
			if len(got[w]) != len(want[w]) {
				t.Fatalf("workers=%d window %d: %d detections vs %d serial", workers, w, len(got[w]), len(want[w]))
			}
			for i := range want[w] {
				if got[w][i] != want[w][i] {
					t.Fatalf("workers=%d window %d det %d differs from serial: %+v vs %+v",
						workers, w, i, got[w][i], want[w][i])
				}
			}
		}
	}
}

// TestFleetCulledSteadyStateAllocs is the zero-alloc bar on the
// culled, sharded path — serial and parallel.
func TestFleetCulledSteadyStateAllocs(t *testing.T) {
	for _, workers := range []int{1, 4} {
		mics, det := benchFleetRoom(64, true)
		f := NewFleet(det, workers)
		for _, m := range mics {
			f.AddMicrophone(m)
		}
		f.Analyse(0, 0.050)
		f.Analyse(0.050, 0.100)
		// Min over a few trials: AllocsPerRun counts process-wide
		// mallocs under GOMAXPROCS(1), so on a loaded machine the
		// parallel path's park/unpark scheduler allocations (sudog
		// refills) can land inside one measured region. Any single
		// clean trial proves the analysis path itself is allocation-
		// free, which is what this gate is for.
		i := 0
		allocs := math.Inf(1)
		for trial := 0; trial < 3 && allocs != 0; trial++ {
			a := testing.AllocsPerRun(10, func() {
				from := float64(2+i) * 0.050
				i++
				f.Analyse(from, from+0.050)
			})
			if a < allocs {
				allocs = a
			}
		}
		f.Close()
		if allocs != 0 {
			t.Errorf("workers=%d: culled fleet allocates %v/op at steady state, want 0", workers, allocs)
		}
	}
}
