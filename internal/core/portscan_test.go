package core

import (
	"testing"

	"mdn/internal/acoustic"
	"mdn/internal/netsim"
)

type scanBed struct {
	*testbed
	h1, h2 *netsim.Host
	sw     *netsim.Switch
	ps     *PortScan
	ctrl   *Controller
}

func newScanBed(t *testing.T, seed int64, firstPort uint16, numPorts int) *scanBed {
	t.Helper()
	tb := newTestbed(seed)
	h1 := netsim.NewHost(tb.sim, "h1", netsim.MustAddr("10.0.0.1"))
	h2 := netsim.NewHost(tb.sim, "h2", netsim.MustAddr("10.0.0.2"))
	sw := netsim.NewSwitch(tb.sim, "s1")
	netsim.Connect(tb.sim, h1, 1, sw, 1, 1e9, 0.0001, 0)
	netsim.Connect(tb.sim, h2, 1, sw, 2, 1e9, 0.0001, 0)
	sw.InstallRule(netsim.Rule{Priority: 1, Match: netsim.Match{Dst: h2.Addr}, Action: netsim.Output(2)})

	voice := tb.voiceAt("s1", acoustic.Position{X: 1.2})
	ps, err := NewPortScan(tb.plan, "s1", voice, firstPort, numPorts)
	if err != nil {
		t.Fatal(err)
	}
	sw.Tap = ps.Tap
	ctrl := tb.controller(ps.Frequencies())
	ps.Start(ctrl, 0)
	ctrl.Start(0)
	return &scanBed{testbed: tb, h1: h1, h2: h2, sw: sw, ps: ps, ctrl: ctrl}
}

func TestPortScanDetectsSequentialScan(t *testing.T) {
	bed := newScanBed(t, 30, 8000, 24)
	base := netsim.FiveTuple{
		Src: bed.h1.Addr, Dst: bed.h2.Addr,
		SrcPort: 44444, Proto: netsim.ProtoTCP,
	}
	// One probe per 200 ms — a naive sequential scan.
	netsim.StartPortScan(bed.sim, bed.h1, base, 8000, 24, 0.2, 0.2)
	bed.sim.RunUntil(6)

	if len(bed.ps.Alerts) == 0 {
		t.Fatalf("scan not detected; sweep had %d onsets", len(bed.ps.Sweep))
	}
	if got := bed.ps.Alerts[0].DistinctPorts; got < bed.ps.Threshold {
		t.Errorf("alert with %d ports, below threshold %d", got, bed.ps.Threshold)
	}
	// The sweep must be (weakly) monotone in frequency — the
	// paper's spectrogram line.
	if !bed.ps.SweepIsMonotone() {
		t.Error("sweep not monotone")
	}
	if len(bed.ps.Sweep) < 20 {
		t.Errorf("sweep captured %d of 24 probes", len(bed.ps.Sweep))
	}
}

func TestPortScanIgnoresNormalTraffic(t *testing.T) {
	bed := newScanBed(t, 31, 8000, 24)
	// Steady traffic to two ports: never enough distinct ports.
	f1 := netsim.FiveTuple{Src: bed.h1.Addr, Dst: bed.h2.Addr, SrcPort: 1, DstPort: 8003, Proto: netsim.ProtoTCP}
	f2 := netsim.FiveTuple{Src: bed.h1.Addr, Dst: bed.h2.Addr, SrcPort: 2, DstPort: 8010, Proto: netsim.ProtoTCP}
	netsim.StartCBR(bed.sim, bed.h1, f1, 20, 500, 0, 4)
	netsim.StartCBR(bed.sim, bed.h1, f2, 20, 500, 0, 4)
	bed.sim.RunUntil(4)
	if len(bed.ps.Alerts) != 0 {
		t.Errorf("normal traffic raised %d scan alerts", len(bed.ps.Alerts))
	}
}

func TestPortScanDetectsUnderSongNoise(t *testing.T) {
	// Figure 4d: the sweep survives the pop song.
	bed := newScanBed(t, 32, 8000, 24)
	bed.room.AddNoise(PopSongNoise(44100, 4, 0.02, 9))
	base := netsim.FiveTuple{Src: bed.h1.Addr, Dst: bed.h2.Addr, SrcPort: 4, Proto: netsim.ProtoTCP}
	netsim.StartPortScan(bed.sim, bed.h1, base, 8000, 24, 0.2, 0.2)
	bed.sim.RunUntil(6)
	if len(bed.ps.Alerts) == 0 {
		t.Fatalf("scan lost under song noise; sweep %d", len(bed.ps.Sweep))
	}
}

// feedPort runs one confirmed onset for freq through the filter: two
// consecutive present windows (ConfirmWindows=2) then one silent
// window so the next port's probe starts clean.
func feedPort(ps *PortScan, at float64, freq float64) float64 {
	det := Detection{Time: at, Frequency: freq, Amplitude: 0.01}
	ps.HandleWindow(at, []Detection{det})
	at += 0.05
	det.Time = at
	ps.HandleWindow(at, []Detection{det}) // confirmed here
	at += 0.05
	ps.HandleWindow(at, nil)
	return at + 0.05
}

// TestPortScanOneAlertPerInterval is the regression test for the
// duplicate-alert bug: within one interval the alert fires exactly
// once, at the moment the distinct-port count crosses Threshold, no
// matter how many more ports the scan touches afterwards. A new
// interval re-arms it.
func TestPortScanOneAlertPerInterval(t *testing.T) {
	bed := newScanBed(t, 36, 8000, 12)
	ps := bed.ps
	ps.Threshold = 3
	freqs := ps.Frequencies()

	// Sweep 8 ports — well past the threshold of 3 — in one interval.
	at := 1.0
	for i := 0; i < 8; i++ {
		at = feedPort(ps, at, freqs[i])
	}
	if len(ps.Alerts) != 1 {
		t.Fatalf("one interval raised %d alerts, want exactly 1", len(ps.Alerts))
	}
	// The alert fires at the crossing: exactly Threshold distinct
	// ports, not the interval's final count.
	if got := ps.Alerts[0].DistinctPorts; got != ps.Threshold {
		t.Errorf("alert at %d distinct ports, want %d (fire at crossing)", got, ps.Threshold)
	}
	// Its timestamp is the third port's confirmation window, long
	// before the eighth probe.
	if ps.Alerts[0].Time >= at-0.1 {
		t.Errorf("alert time %g not at the crossing (sweep ended %g)", ps.Alerts[0].Time, at)
	}

	// Interval closes: the guard re-arms and a fresh sweep raises
	// exactly one more alert.
	ps.closeInterval(at)
	for i := 0; i < 6; i++ {
		at = feedPort(ps, at, freqs[i])
	}
	if len(ps.Alerts) != 2 {
		t.Fatalf("after interval close, %d alerts total, want 2", len(ps.Alerts))
	}
	if ps.events != 2 {
		t.Errorf("events counter = %d, want 2", ps.events)
	}
}

// TestPortScanHistoryBounded pins the keep-last-N bound on Sweep with
// the eviction counter.
func TestPortScanHistoryBounded(t *testing.T) {
	bed := newScanBed(t, 37, 8000, 12)
	ps := bed.ps
	ps.HistoryMax = 4
	ps.Threshold = 100 // never alert; isolate the Sweep bound
	freqs := ps.Frequencies()
	at := 1.0
	for round := 0; round < 2; round++ {
		for i := 0; i < 5; i++ {
			at = feedPort(ps, at, freqs[i])
		}
		ps.closeInterval(at)
	}
	if len(ps.Sweep) != 4 {
		t.Errorf("sweep holds %d entries, want bound of 4", len(ps.Sweep))
	}
	if ps.HistoryDropped != 6 {
		t.Errorf("HistoryDropped = %d, want 6 (10 onsets - 4 kept)", ps.HistoryDropped)
	}
	// The survivors are the most recent onsets.
	for i := 1; i < len(ps.Sweep); i++ {
		if ps.Sweep[i].Time < ps.Sweep[i-1].Time {
			t.Fatal("bounded sweep out of order")
		}
	}
}

func TestPortScanFrequencyMapping(t *testing.T) {
	bed := newScanBed(t, 33, 100, 10)
	if f := bed.ps.FrequencyFor(99); f != 0 {
		t.Errorf("below-range port mapped to %g", f)
	}
	if f := bed.ps.FrequencyFor(110); f != 0 {
		t.Errorf("above-range port mapped to %g", f)
	}
	f := bed.ps.FrequencyFor(105)
	if f == 0 {
		t.Fatal("in-range port unmapped")
	}
	port, ok := bed.ps.PortFor(f)
	if !ok || port != 105 {
		t.Errorf("PortFor(%g) = %d %v", f, port, ok)
	}
	if _, ok := bed.ps.PortFor(12345); ok {
		t.Error("unknown frequency should not map")
	}
}

func TestPortScanOutOfRangePortsPlayNothing(t *testing.T) {
	bed := newScanBed(t, 34, 8000, 8)
	f := netsim.FiveTuple{Src: bed.h1.Addr, Dst: bed.h2.Addr, SrcPort: 1, DstPort: 9999, Proto: netsim.ProtoTCP}
	bed.sim.Schedule(0.1, func() { bed.h1.Send(f, 64) })
	bed.sim.RunUntil(1)
	if len(bed.room.Emissions()) != 0 {
		t.Error("out-of-range port emitted a tone")
	}
}

func TestPortScanSweepIsMonotoneEmptyFalse(t *testing.T) {
	bed := newScanBed(t, 35, 8000, 8)
	if bed.ps.SweepIsMonotone() {
		t.Error("empty sweep should report false")
	}
}
