package core

import (
	"testing"

	"mdn/internal/acoustic"
	"mdn/internal/netsim"
)

type scanBed struct {
	*testbed
	h1, h2 *netsim.Host
	sw     *netsim.Switch
	ps     *PortScan
	ctrl   *Controller
}

func newScanBed(t *testing.T, seed int64, firstPort uint16, numPorts int) *scanBed {
	t.Helper()
	tb := newTestbed(seed)
	h1 := netsim.NewHost(tb.sim, "h1", netsim.MustAddr("10.0.0.1"))
	h2 := netsim.NewHost(tb.sim, "h2", netsim.MustAddr("10.0.0.2"))
	sw := netsim.NewSwitch(tb.sim, "s1")
	netsim.Connect(tb.sim, h1, 1, sw, 1, 1e9, 0.0001, 0)
	netsim.Connect(tb.sim, h2, 1, sw, 2, 1e9, 0.0001, 0)
	sw.InstallRule(netsim.Rule{Priority: 1, Match: netsim.Match{Dst: h2.Addr}, Action: netsim.Output(2)})

	voice := tb.voiceAt("s1", acoustic.Position{X: 1.2})
	ps, err := NewPortScan(tb.plan, "s1", voice, firstPort, numPorts)
	if err != nil {
		t.Fatal(err)
	}
	sw.Tap = ps.Tap
	ctrl := tb.controller(ps.Frequencies())
	ps.Start(ctrl, 0)
	ctrl.Start(0)
	return &scanBed{testbed: tb, h1: h1, h2: h2, sw: sw, ps: ps, ctrl: ctrl}
}

func TestPortScanDetectsSequentialScan(t *testing.T) {
	bed := newScanBed(t, 30, 8000, 24)
	base := netsim.FiveTuple{
		Src: bed.h1.Addr, Dst: bed.h2.Addr,
		SrcPort: 44444, Proto: netsim.ProtoTCP,
	}
	// One probe per 200 ms — a naive sequential scan.
	netsim.StartPortScan(bed.sim, bed.h1, base, 8000, 24, 0.2, 0.2)
	bed.sim.RunUntil(6)

	if len(bed.ps.Alerts) == 0 {
		t.Fatalf("scan not detected; sweep had %d onsets", len(bed.ps.Sweep))
	}
	if got := bed.ps.Alerts[0].DistinctPorts; got < bed.ps.Threshold {
		t.Errorf("alert with %d ports, below threshold %d", got, bed.ps.Threshold)
	}
	// The sweep must be (weakly) monotone in frequency — the
	// paper's spectrogram line.
	if !bed.ps.SweepIsMonotone() {
		t.Error("sweep not monotone")
	}
	if len(bed.ps.Sweep) < 20 {
		t.Errorf("sweep captured %d of 24 probes", len(bed.ps.Sweep))
	}
}

func TestPortScanIgnoresNormalTraffic(t *testing.T) {
	bed := newScanBed(t, 31, 8000, 24)
	// Steady traffic to two ports: never enough distinct ports.
	f1 := netsim.FiveTuple{Src: bed.h1.Addr, Dst: bed.h2.Addr, SrcPort: 1, DstPort: 8003, Proto: netsim.ProtoTCP}
	f2 := netsim.FiveTuple{Src: bed.h1.Addr, Dst: bed.h2.Addr, SrcPort: 2, DstPort: 8010, Proto: netsim.ProtoTCP}
	netsim.StartCBR(bed.sim, bed.h1, f1, 20, 500, 0, 4)
	netsim.StartCBR(bed.sim, bed.h1, f2, 20, 500, 0, 4)
	bed.sim.RunUntil(4)
	if len(bed.ps.Alerts) != 0 {
		t.Errorf("normal traffic raised %d scan alerts", len(bed.ps.Alerts))
	}
}

func TestPortScanDetectsUnderSongNoise(t *testing.T) {
	// Figure 4d: the sweep survives the pop song.
	bed := newScanBed(t, 32, 8000, 24)
	bed.room.AddNoise(PopSongNoise(44100, 4, 0.02, 9))
	base := netsim.FiveTuple{Src: bed.h1.Addr, Dst: bed.h2.Addr, SrcPort: 4, Proto: netsim.ProtoTCP}
	netsim.StartPortScan(bed.sim, bed.h1, base, 8000, 24, 0.2, 0.2)
	bed.sim.RunUntil(6)
	if len(bed.ps.Alerts) == 0 {
		t.Fatalf("scan lost under song noise; sweep %d", len(bed.ps.Sweep))
	}
}

func TestPortScanFrequencyMapping(t *testing.T) {
	bed := newScanBed(t, 33, 100, 10)
	if f := bed.ps.FrequencyFor(99); f != 0 {
		t.Errorf("below-range port mapped to %g", f)
	}
	if f := bed.ps.FrequencyFor(110); f != 0 {
		t.Errorf("above-range port mapped to %g", f)
	}
	f := bed.ps.FrequencyFor(105)
	if f == 0 {
		t.Fatal("in-range port unmapped")
	}
	port, ok := bed.ps.PortFor(f)
	if !ok || port != 105 {
		t.Errorf("PortFor(%g) = %d %v", f, port, ok)
	}
	if _, ok := bed.ps.PortFor(12345); ok {
		t.Error("unknown frequency should not map")
	}
}

func TestPortScanOutOfRangePortsPlayNothing(t *testing.T) {
	bed := newScanBed(t, 34, 8000, 8)
	f := netsim.FiveTuple{Src: bed.h1.Addr, Dst: bed.h2.Addr, SrcPort: 1, DstPort: 9999, Proto: netsim.ProtoTCP}
	bed.sim.Schedule(0.1, func() { bed.h1.Send(f, 64) })
	bed.sim.RunUntil(1)
	if len(bed.room.Emissions()) != 0 {
		t.Error("out-of-range port emitted a tone")
	}
}

func TestPortScanSweepIsMonotoneEmptyFalse(t *testing.T) {
	bed := newScanBed(t, 35, 8000, 8)
	if bed.ps.SweepIsMonotone() {
		t.Error("empty sweep should report false")
	}
}
