package core

import (
	"testing"

	"mdn/internal/acoustic"
	"mdn/internal/netsim"
)

func TestExactFlowCounterBasics(t *testing.T) {
	c := NewExactFlowCounter()
	c.Add(1, 3)
	c.Add(2, 1)
	c.Add(1, 2)
	if got := c.Estimate(1); got != 5 {
		t.Fatalf("Estimate(1) = %d", got)
	}
	if got := c.Estimate(99); got != 0 {
		t.Fatalf("Estimate(99) = %d", got)
	}
	if c.Updates() != 6 || c.Keys() != 2 || c.Bytes() == 0 {
		t.Fatalf("updates=%d keys=%d bytes=%d", c.Updates(), c.Keys(), c.Bytes())
	}
	c.Reset()
	if c.Estimate(1) != 0 || c.Updates() != 0 || c.Bytes() != 0 {
		t.Fatal("reset left state")
	}
}

func TestExactDistinctCounterBasics(t *testing.T) {
	c := NewExactDistinctCounter()
	for i := 0; i < 10; i++ {
		c.Observe(uint64(i % 5))
	}
	if c.Distinct() != 5 || c.Updates() != 10 {
		t.Fatalf("distinct=%d updates=%d", c.Distinct(), c.Updates())
	}
	c.Reset()
	if c.Distinct() != 0 || c.Updates() != 0 {
		t.Fatal("reset left state")
	}
}

// TestSketchCountersHonourKnobs: the sketch-backed implementations
// expose the configured error budgets and reject bad ones.
func TestSketchCountersHonourKnobs(t *testing.T) {
	if _, err := NewSketchFlowCounter(0, 0.01, 1); err == nil {
		t.Fatal("epsilon 0 accepted")
	}
	fc, err := NewSketchFlowCounter(0.01, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	fc.Add(7, 4)
	if got := fc.Estimate(7); got < 4 {
		t.Fatalf("sketch underestimated: %d < 4", got)
	}
	if fc.Bytes() == 0 || fc.Updates() != 4 {
		t.Fatalf("bytes=%d updates=%d", fc.Bytes(), fc.Updates())
	}

	if _, err := NewSketchDistinctCounter(2, 1); err == nil {
		t.Fatal("precision 2 accepted")
	}
	dc, err := NewSketchDistinctCounter(12, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		dc.Observe(uint64(i) * 0x9e3779b97f4a7c15)
	}
	if d := dc.Distinct(); d < 900 || d > 1100 {
		t.Fatalf("distinct = %d, want ~1000", d)
	}
}

// TestFlowCounterInterchangeable: HeavyHitter behaves identically on a
// workload small enough that the sketch is exact too.
func TestFlowCounterInterchangeable(t *testing.T) {
	exact := NewExactFlowCounter()
	sk, _ := NewSketchFlowCounter(0.001, 0.001, 42)
	for _, c := range []FlowCounter{exact, sk} {
		for i := uint64(0); i < 50; i++ {
			c.Add(i, i+1)
		}
		for i := uint64(0); i < 50; i++ {
			if got := c.Estimate(i); got != i+1 {
				t.Fatalf("%T: Estimate(%d) = %d, want %d", c, i, got, i+1)
			}
		}
	}
}

// TestIntervalCloseAllocs is the regression gate for interval
// accounting: closing a quiet interval reuses the counter storage and
// history backing, allocating nothing. (The old implementation built
// two fresh maps per interval per application.)
func TestIntervalCloseAllocs(t *testing.T) {
	tb := newTestbed(1)
	voice := tb.voiceAt("s1", acoustic.Position{X: 1.2})
	hh, err := NewHeavyHitter(tb.plan, "s1", voice, 16)
	if err != nil {
		t.Fatal(err)
	}
	hh.HistoryMax = 8

	voice2 := tb.voiceAt("s2", acoustic.Position{X: 1.4})
	sd, err := NewSpreadDetector(tb.plan, "s2", voice2, ModeSuperspreader,
		netsim.MustAddr("10.0.0.1"), 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	sd.HistoryMax = 8

	voice3 := tb.voiceAt("s3", acoustic.Position{X: 1.6})
	ps, err := NewPortScan(tb.plan, "s3", voice3, 7000, 16)
	if err != nil {
		t.Fatal(err)
	}
	ps.HistoryMax = 8

	// Warm: fill histories to their caps and exercise the counters so
	// map storage exists to be reused.
	for i := 0; i < 16; i++ {
		hh.counter.Add(FreqKey(hh.freqs[i%len(hh.freqs)]), 1)
		hh.closeInterval(float64(i))
		sd.distinct.Observe(FreqKey(sd.freqs[i%len(sd.freqs)]))
		sd.closeInterval(float64(i))
		ps.distinct.Observe(FreqKey(ps.freqs[i%len(ps.freqs)]))
		ps.closeInterval(float64(i))
	}

	if allocs := testing.AllocsPerRun(200, func() { hh.closeInterval(100) }); allocs != 0 {
		t.Fatalf("HeavyHitter quiet closeInterval allocates %.1f/op", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() { sd.closeInterval(100) }); allocs != 0 {
		t.Fatalf("SpreadDetector closeInterval allocates %.1f/op", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() { ps.closeInterval(100) }); allocs != 0 {
		t.Fatalf("PortScan closeInterval allocates %.1f/op", allocs)
	}

	// Busy intervals reuse counter storage too: the only allocation is
	// the retained history sample's map.
	key := FreqKey(hh.freqs[0])
	allocs := testing.AllocsPerRun(200, func() {
		hh.counter.Add(key, 1)
		hh.closeInterval(101)
	})
	if allocs > 3 {
		t.Fatalf("HeavyHitter busy closeInterval allocates %.1f/op", allocs)
	}
}
