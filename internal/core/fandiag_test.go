package core

import (
	"errors"
	"math"
	"testing"

	"mdn/internal/acoustic"
	"mdn/internal/audio"
)

// diagBed: a healthy fan until t=10, then one of several anomalies.
func newDiagBed(t *testing.T, seed int64, after string) *FanMonitor {
	t.Helper()
	tb := newTestbed(seed)
	const changeAt = 10.0
	healthy, fan := FanSource(44100, 2.0, 0.3, acoustic.Position{X: 0.3}, seed)
	healthy.Until = changeAt
	tb.room.AddNoise(healthy)
	switch after {
	case "stopped":
		// nothing after changeAt
	case "slow":
		slowFan := audio.Fan{RPM: 7200, Blades: 7, Level: 0.3, Seed: seed + 5}
		tb.room.AddNoise(&acoustic.NoiseSource{
			Name: "slow-fan", Pos: acoustic.Position{X: 0.3},
			Loop: slowFan.Render(44100, 2.0), From: changeAt,
		})
	case "healthy":
		cont, _ := FanSource(44100, 2.0, 0.3, acoustic.Position{X: 0.3}, seed+9)
		cont.Name = "continued-fan"
		cont.From = changeAt
		tb.room.AddNoise(cont)
	}
	tb.room.AddNoise(OfficeNoise(44100, 3.0, seed+1))
	fm := NewFanMonitor(tb.mic, fan.HarmonicFrequencies())
	if err := fm.Train(1, 3); err != nil {
		t.Fatal(err)
	}
	return fm
}

func TestDiagnoseHealthy(t *testing.T) {
	fm := newDiagBed(t, 200, "healthy")
	d, err := fm.Diagnose(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if d.State != FanHealthy {
		t.Errorf("state = %s, want healthy (%+v)", d.State, d)
	}
	if math.Abs(d.FundamentalHz-1050) > 25 {
		t.Errorf("fundamental = %g, want ~1050", d.FundamentalHz)
	}
	if rpm := d.RPMEstimate(7); math.Abs(rpm-9000) > 250 {
		t.Errorf("RPM estimate = %g, want ~9000", rpm)
	}
}

func TestDiagnoseStopped(t *testing.T) {
	fm := newDiagBed(t, 201, "stopped")
	d, err := fm.Diagnose(11, 13)
	if err != nil {
		t.Fatal(err)
	}
	if d.State != FanStopped {
		t.Errorf("state = %s, want stopped (%+v)", d.State, d)
	}
	if d.RPMEstimate(7) != 0 {
		t.Error("stopped fan should have zero RPM estimate")
	}
}

func TestDiagnoseSpeedAnomaly(t *testing.T) {
	// Fan drops from 9000 to 7200 RPM: blade-pass 1050 -> 840 Hz,
	// a -20% shift.
	fm := newDiagBed(t, 202, "slow")
	d, err := fm.Diagnose(11, 13)
	if err != nil {
		t.Fatal(err)
	}
	if d.State != FanSpeedAnomaly {
		t.Fatalf("state = %s, want speed-anomaly (%+v)", d.State, d)
	}
	if math.Abs(d.FundamentalHz-840) > 30 {
		t.Errorf("shifted fundamental = %g, want ~840", d.FundamentalHz)
	}
	if d.FrequencyShift > -0.15 || d.FrequencyShift < -0.25 {
		t.Errorf("shift = %g, want ~-0.20", d.FrequencyShift)
	}
	if rpm := d.RPMEstimate(7); math.Abs(rpm-7200) > 300 {
		t.Errorf("RPM estimate = %g, want ~7200", rpm)
	}
}

func TestDiagnoseRequiresTraining(t *testing.T) {
	tb := newTestbed(203)
	fm := NewFanMonitor(tb.mic, []float64{1050})
	if _, err := fm.Diagnose(0, 1); !errors.Is(err, ErrNotTrained) {
		t.Errorf("err = %v", err)
	}
}

func TestFanStateString(t *testing.T) {
	if FanHealthy.String() != "healthy" || FanStopped.String() != "stopped" ||
		FanSpeedAnomaly.String() != "speed-anomaly" || FanState(9).String() != "unknown" {
		t.Error("state names wrong")
	}
}
