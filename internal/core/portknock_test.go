package core

import (
	"testing"

	"mdn/internal/acoustic"
	"mdn/internal/netsim"
	"mdn/internal/openflow"
)

// knockBed wires the full Section 4 topology: h1 -- s1 -- h2, with
// the switch voiced and the controller listening.
type knockBed struct {
	*testbed
	h1, h2 *netsim.Host
	sw     *netsim.Switch
	pk     *PortKnock
	ctrl   *Controller
}

func newKnockBed(t *testing.T, sequence []uint16) *knockBed {
	t.Helper()
	tb := newTestbed(10)
	h1 := netsim.NewHost(tb.sim, "h1", netsim.MustAddr("10.0.0.1"))
	h2 := netsim.NewHost(tb.sim, "h2", netsim.MustAddr("10.0.0.2"))
	sw := netsim.NewSwitch(tb.sim, "s1")
	netsim.Connect(tb.sim, h1, 1, sw, 1, 1e9, 0.0001, 0)
	netsim.Connect(tb.sim, h2, 1, sw, 2, 1e9, 0.0001, 0)

	voice := tb.voiceAt("s1", acoustic.Position{X: 1.5})
	ch := openflow.NewChannel(tb.sim, sw, 0.005)
	openRule := openflow.FlowMod{
		Command:  openflow.FlowAdd,
		Priority: 10,
		Match:    netsim.Match{Dst: h2.Addr, DstPort: 8080},
		Action:   netsim.Output(2),
	}
	pk, err := NewPortKnock(tb.plan, "s1", voice, ch, sequence, openRule)
	if err != nil {
		t.Fatal(err)
	}
	sw.Tap = pk.Tap

	ctrl := tb.controller(pk.Frequencies())
	ctrl.SubscribeWindows(pk.HandleWindow)
	ctrl.Start(0)
	return &knockBed{testbed: tb, h1: h1, h2: h2, sw: sw, pk: pk, ctrl: ctrl}
}

func (kb *knockBed) knock(at float64, port uint16) {
	kb.sim.Schedule(at, func() {
		kb.h1.Send(netsim.FiveTuple{
			Src: kb.h1.Addr, Dst: kb.h2.Addr,
			SrcPort: 40000, DstPort: port, Proto: netsim.ProtoTCP,
		}, 64)
	})
}

func (kb *knockBed) sendData(at float64) {
	kb.sim.Schedule(at, func() {
		kb.h1.Send(netsim.FiveTuple{
			Src: kb.h1.Addr, Dst: kb.h2.Addr,
			SrcPort: 40001, DstPort: 8080, Proto: netsim.ProtoTCP,
		}, 1500)
	})
}

func TestPortKnockOpensOnCorrectSequence(t *testing.T) {
	kb := newKnockBed(t, []uint16{1001, 1002, 1003})

	// Data before knocking: dropped (no rule matches port 8080).
	kb.sendData(0.1)
	// The knock, well spaced so each tone is distinct.
	kb.knock(0.5, 1001)
	kb.knock(1.0, 1002)
	kb.knock(1.5, 1003)
	// Data after the knock completes.
	kb.sendData(2.5)
	kb.sendData(2.6)
	kb.sim.RunUntil(3)

	if !kb.pk.Opened {
		t.Fatalf("port not opened; fsm state %s, wrong knocks %d",
			kb.pk.State(), kb.pk.WrongKnocks)
	}
	if kb.pk.OpenedAt < 1.5 || kb.pk.OpenedAt > 2.0 {
		t.Errorf("opened at %g, want shortly after the third knock", kb.pk.OpenedAt)
	}
	if kb.h2.RxPackets != 2 {
		t.Errorf("h2 received %d packets, want exactly the 2 post-knock ones", kb.h2.RxPackets)
	}
}

func TestPortKnockWrongOrderNeverOpens(t *testing.T) {
	kb := newKnockBed(t, []uint16{1001, 1002, 1003})
	kb.knock(0.5, 1002)
	kb.knock(1.0, 1001)
	kb.knock(1.5, 1003)
	kb.sendData(2.5)
	kb.sim.RunUntil(3)

	if kb.pk.Opened {
		t.Fatal("wrong knock order opened the port")
	}
	if kb.pk.WrongKnocks == 0 {
		t.Error("wrong knocks not counted")
	}
	if kb.h2.RxPackets != 0 {
		t.Errorf("h2 received %d packets through a closed port", kb.h2.RxPackets)
	}
}

func TestPortKnockRecoversAfterWrongAttempt(t *testing.T) {
	kb := newKnockBed(t, []uint16{1001, 1002, 1003})
	// Failed attempt, then a clean one.
	kb.knock(0.5, 1001)
	kb.knock(1.0, 1003) // wrong
	kb.knock(2.0, 1001)
	kb.knock(2.5, 1002)
	kb.knock(3.0, 1003)
	kb.sim.RunUntil(4)
	if !kb.pk.Opened {
		t.Fatalf("recovery knock failed; state %s", kb.pk.State())
	}
}

func TestPortKnockUnrelatedTrafficIgnored(t *testing.T) {
	kb := newKnockBed(t, []uint16{1001, 1002})
	// Traffic on ports outside the knock set plays no tones.
	kb.sim.Schedule(0.2, func() {
		kb.h1.Send(netsim.FiveTuple{
			Src: kb.h1.Addr, Dst: kb.h2.Addr,
			SrcPort: 40000, DstPort: 9999, Proto: netsim.ProtoTCP,
		}, 64)
	})
	kb.sim.RunUntil(1)
	if len(kb.room.Emissions()) != 0 {
		t.Errorf("unrelated traffic emitted %d tones", len(kb.room.Emissions()))
	}
	if kb.pk.Opened {
		t.Error("port opened without knocks")
	}
}

func TestPortKnockRepeatedPortInSequence(t *testing.T) {
	kb := newKnockBed(t, []uint16{1001, 1001, 1002})
	kb.knock(0.5, 1001)
	kb.knock(1.0, 1001)
	kb.knock(1.5, 1002)
	kb.sim.RunUntil(2.5)
	if !kb.pk.Opened {
		t.Fatalf("repeated-port sequence failed; state %s", kb.pk.State())
	}
	// Only two frequencies should have been allocated (distinct ports).
	if got := len(kb.pk.Frequencies()); got != 2 {
		t.Errorf("frequencies = %d, want 2", got)
	}
}

func TestPortKnockRejectsEmptySequence(t *testing.T) {
	tb := newTestbed(11)
	voice := tb.voiceAt("s1", acoustic.Position{X: 1})
	if _, err := NewPortKnock(tb.plan, "s1", voice, nil, nil, openflow.FlowMod{}); err == nil {
		t.Fatal("empty sequence accepted")
	}
}

func TestPortKnockAutoClosesOnIdleTimeout(t *testing.T) {
	kb := newKnockBed(t, []uint16{1001, 1002, 1003})
	// Harden the opening rule: the port closes itself again after
	// 2 s without authorised traffic, so the knock must be repeated.
	kb.pk.OpenRule.IdleTimeout = 2.0
	kb.knock(0.5, 1001)
	kb.knock(1.0, 1002)
	kb.knock(1.5, 1003)
	kb.sendData(2.5) // delivered: port open
	// Silence until well past the idle timeout, then try again.
	kb.sendData(6.0) // dropped: rule idled out
	kb.sim.RunUntil(7)
	if !kb.pk.Opened {
		t.Fatal("port never opened")
	}
	if kb.h2.RxPackets != 1 {
		t.Errorf("delivered = %d, want 1 (second packet after auto-close)", kb.h2.RxPackets)
	}
	if len(kb.sw.Rules()) != 0 {
		t.Errorf("opening rule still installed after idle timeout")
	}
}
