package core

import (
	"runtime"
	"testing"

	"mdn/internal/acoustic"
	"mdn/internal/audio"
)

// BenchmarkFleet is the scale suite: one controller window over N
// voices (N switches, each with its own speaker, microphone and
// frequency), serial versus worker-pool fan-out, with audibility
// culling on (the deployment default) versus off (the naive
// every-mic-mixes-every-emission wall PR5 measured). The detector
// uses the FFT method — at fleet watch-list sizes that is the paper's
// own choice (Figure 2 uses the FFT) and the realistic configuration.
//
// Placement is sparse — voice i's speaker at x=10i metres, its
// microphone alongside — so each microphone's audible set is the ~13
// voices within its noise-floor radius (63 m at 60 dB SPL against a
// 0.0005 floor) no matter how large the fleet grows. That is the
// deployment geometry of the paper's "switches in a rack row" story
// and the regime where per-mic cost must track the audible set, not
// the global schedule: culled rows grow linearly with N, nocull rows
// quadratically.
//
// On a multi-core host the parallel rows approach serial/GOMAXPROCS;
// on a single-core host they pin the pool's overhead instead
// (parallel ≈ serial). All rows must report 0 allocs/op at steady
// state — that is the hard acceptance bar.

func benchFleetRoom(n int, cull bool) ([]*acoustic.Microphone, *Detector) {
	room := acoustic.NewRoom(44100, 7)
	if cull {
		room.CullThreshold = acoustic.CullAuto
	}
	mics := make([]*acoustic.Microphone, n)
	freqs := make([]float64, n)
	for i := 0; i < n; i++ {
		name := "s" + itoa(i)
		sp := room.AddSpeaker(name, acoustic.Position{X: 10 * float64(i), Y: 1})
		mics[i] = room.AddMicrophone("mic-"+name,
			acoustic.Position{X: 10 * float64(i)}, 0.0005)
		freqs[i] = 400 + 20*float64(i)
		// One long tone per voice so every benchmark window carries a
		// full fleet of signal.
		sp.Play(0, audio.Tone{Frequency: freqs[i], Duration: 3600,
			Amplitude: acoustic.SPLToAmplitude(60)})
	}
	det := NewDetector(MethodFFT, freqs)
	return mics, det
}

func benchFleet(b *testing.B, n, workers int, cull bool) {
	mics, det := benchFleetRoom(n, cull)
	f := NewFleet(det, workers)
	defer f.Close()
	for _, m := range mics {
		f.AddMicrophone(m)
	}
	// Windows start after every wavefront has arrived everywhere: the
	// farthest speaker-microphone pair in a 1024-voice fleet is
	// ~10.2 km apart, a ~30 s flight at 343 m/s. Benchmarking earlier
	// windows would let the plain time-overlap check discard distant
	// voices for free and hide the quadratic mixing wall the nocull
	// rows exist to measure.
	const settle = 35.0
	// Warm up clones, plans, capture buffers and result slots so the
	// timed region measures the steady state.
	f.Analyse(settle, settle+0.050)
	f.Analyse(settle+0.050, settle+0.100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := settle + float64(2+i%1000)*0.050
		f.Analyse(from, from+0.050)
	}
}

func BenchmarkFleet(b *testing.B) {
	for _, n := range []int{1, 8, 64, 256, 1024} {
		b.Run("voices="+itoa(n)+"/serial", func(b *testing.B) {
			benchFleet(b, n, 1, true)
		})
		b.Run("voices="+itoa(n)+"/parallel", func(b *testing.B) {
			benchFleet(b, n, runtime.GOMAXPROCS(0), true)
		})
		if n <= 256 {
			// The unculled wall for comparison; capped at 256 voices —
			// the quadratic path at 1024 costs tens of seconds per
			// window, which is the point of this PR, not a row worth
			// waiting on.
			b.Run("voices="+itoa(n)+"/nocull", func(b *testing.B) {
				benchFleet(b, n, 1, false)
			})
		}
	}
}

// BenchmarkFleetWorkerSweep holds the fleet at 64 voices and sweeps
// the pool size, exposing pool overhead (1 CPU) or scaling (many).
func BenchmarkFleetWorkerSweep(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run("workers="+itoa(w), func(b *testing.B) {
			benchFleet(b, 64, w, true)
		})
	}
}
