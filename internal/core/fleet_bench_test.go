package core

import (
	"runtime"
	"testing"

	"mdn/internal/acoustic"
	"mdn/internal/audio"
)

// BenchmarkFleet is the PR5 scale suite: one controller window over
// N voices (N switches, each with its own speaker, microphone and
// frequency), serial versus worker-pool fan-out. The detector uses
// the FFT method — at fleet watch-list sizes that is the paper's own
// choice (Figure 2 uses the FFT) and the realistic configuration.
//
// On a multi-core host the parallel rows approach
// serial/GOMAXPROCS; on a single-core host they pin the pool's
// overhead instead (parallel ≈ serial). Both paths must report
// 0 allocs/op at steady state — that is the hard acceptance bar.

func benchFleetRoom(n int) ([]*acoustic.Microphone, *Detector) {
	room := acoustic.NewRoom(44100, 7)
	mics := make([]*acoustic.Microphone, n)
	freqs := make([]float64, n)
	for i := 0; i < n; i++ {
		name := "s" + itoa(i)
		sp := room.AddSpeaker(name, acoustic.Position{X: 1 + 0.01*float64(i)})
		mics[i] = room.AddMicrophone("mic-"+name,
			acoustic.Position{Y: 0.1 * float64(i)}, 0.0005)
		// 256 voices at 20 Hz spacing fit inside the paper's plan band.
		freqs[i] = 400 + 20*float64(i)
		// One long tone per voice so every benchmark window carries a
		// full fleet of signal.
		sp.Play(0, audio.Tone{Frequency: freqs[i], Duration: 3600,
			Amplitude: acoustic.SPLToAmplitude(60)})
	}
	det := NewDetector(MethodFFT, freqs)
	return mics, det
}

func benchFleet(b *testing.B, n, workers int) {
	mics, det := benchFleetRoom(n)
	f := NewFleet(det, workers)
	defer f.Close()
	for _, m := range mics {
		f.AddMicrophone(m)
	}
	// Warm up clones, plans, capture buffers and result slots so the
	// timed region measures the steady state.
	f.Analyse(0, 0.050)
	f.Analyse(0.050, 0.100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := float64(2+i%1000) * 0.050
		f.Analyse(from, from+0.050)
	}
}

func BenchmarkFleet(b *testing.B) {
	for _, n := range []int{1, 8, 64, 256} {
		b.Run("voices="+itoa(n)+"/serial", func(b *testing.B) {
			benchFleet(b, n, 1)
		})
		b.Run("voices="+itoa(n)+"/parallel", func(b *testing.B) {
			benchFleet(b, n, runtime.GOMAXPROCS(0))
		})
	}
}

// BenchmarkFleetWorkerSweep holds the fleet at 64 voices and sweeps
// the pool size, exposing pool overhead (1 CPU) or scaling (many).
func BenchmarkFleetWorkerSweep(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run("workers="+itoa(w), func(b *testing.B) {
			benchFleet(b, 64, w)
		})
	}
}
