package core

import (
	"testing"

	"mdn/internal/acoustic"
	"mdn/internal/audio"
	"mdn/internal/mp"
)

func TestControllerHearsScheduledTones(t *testing.T) {
	tb := newTestbed(1)
	voice := tb.voiceAt("s1", acoustic.Position{X: 1})
	freqs := tb.plan.MustAllocate("s1", 2)
	ctrl := tb.controller(freqs)

	var dets []Detection
	ctrl.Subscribe(func(d Detection) { dets = append(dets, d) })
	ctrl.Start(0)

	tb.sim.Schedule(0.5, func() { voice.Play(freqs[0]) })
	tb.sim.Schedule(1.0, func() { voice.Play(freqs[1]) })
	tb.sim.RunUntil(1.5)

	heard := map[float64]bool{}
	for _, d := range dets {
		heard[d.Frequency] = true
	}
	if !heard[freqs[0]] || !heard[freqs[1]] {
		t.Fatalf("heard = %v, want both of %v", heard, freqs)
	}
	if ctrl.Windows < 25 {
		t.Errorf("windows = %d, want ~30 over 1.5 s", ctrl.Windows)
	}
	if ctrl.Detections == 0 {
		t.Error("no detections counted")
	}
}

func TestControllerWindowBatchesIncludeEmpties(t *testing.T) {
	tb := newTestbed(2)
	freqs := tb.plan.MustAllocate("s1", 1)
	ctrl := tb.controller(freqs)
	batches := 0
	ctrl.SubscribeWindows(func(_ float64, dets []Detection) {
		batches++
		if len(dets) != 0 {
			t.Errorf("silent room produced detections: %+v", dets)
		}
	})
	ctrl.Start(0)
	tb.sim.RunUntil(1)
	if batches < 18 {
		t.Errorf("batches = %d, want ~19", batches)
	}
}

func TestControllerStopHalts(t *testing.T) {
	tb := newTestbed(3)
	ctrl := tb.controller([]float64{500})
	ctrl.Start(0)
	tb.sim.RunUntil(0.5)
	w := ctrl.Windows
	ctrl.Stop()
	tb.sim.RunUntil(2)
	if ctrl.Windows != w {
		t.Errorf("windows grew after Stop: %d -> %d", w, ctrl.Windows)
	}
	// Stop again is harmless.
	ctrl.Stop()
}

func TestControllerRestart(t *testing.T) {
	tb := newTestbed(4)
	ctrl := tb.controller([]float64{500})
	ctrl.Start(0)
	tb.sim.RunUntil(0.3)
	ctrl.Start(0.3) // restart replaces the first poller
	tb.sim.RunUntil(0.6)
	// ~6 windows from the first run plus ~6 from the second; a
	// doubled poller would give ~18.
	if ctrl.Windows > 14 {
		t.Errorf("windows = %d; restart leaked the old poller", ctrl.Windows)
	}
}

func TestControllerAnalyseOnce(t *testing.T) {
	tb := newTestbed(5)
	voice := tb.voiceAt("s1", acoustic.Position{X: 1})
	freqs := tb.plan.MustAllocate("s1", 1)
	ctrl := tb.controller(freqs)
	tb.sim.Schedule(0.2, func() { voice.Play(freqs[0]) })
	tb.sim.RunUntil(1)
	got, err := ctrl.AnalyseOnce(0.2, 0.3)
	if err != nil {
		t.Fatalf("AnalyseOnce: %v", err)
	}
	if len(got) != 1 || got[0].Frequency != freqs[0] {
		t.Errorf("AnalyseOnce = %+v", got)
	}
	quiet, err := ctrl.AnalyseOnce(0.5, 0.6)
	if err != nil {
		t.Fatalf("AnalyseOnce: %v", err)
	}
	if len(quiet) != 0 {
		t.Error("silence misdetected")
	}
}

func TestControllerAccessors(t *testing.T) {
	tb := newTestbed(6)
	ctrl := tb.controller(nil)
	if ctrl.Mic() != tb.mic || ctrl.Sim() != tb.sim {
		t.Error("accessors wrong")
	}
}

func TestControllerMultipleSpeakersSimultaneously(t *testing.T) {
	// Figure 2a in miniature: two switches play at once; both are
	// identified because their sets are disjoint.
	tb := newTestbed(7)
	v1 := tb.voiceAt("s1", acoustic.Position{X: 1})
	v2 := tb.voiceAt("s2", acoustic.Position{X: -1})
	f1 := tb.plan.MustAllocate("s1", 1)
	f2 := tb.plan.MustAllocate("s2", 1)
	ctrl := tb.controller(append(append([]float64{}, f1...), f2...))
	var heard []float64
	ctrl.Subscribe(func(d Detection) { heard = append(heard, d.Frequency) })
	ctrl.Start(0)
	tb.sim.Schedule(0.5, func() {
		v1.Play(f1[0])
		v2.Play(f2[0])
	})
	tb.sim.RunUntil(1)
	got := map[float64]bool{}
	for _, f := range heard {
		got[f] = true
	}
	if !got[f1[0]] || !got[f2[0]] {
		t.Errorf("heard %v, want both %g and %g", heard, f1[0], f2[0])
	}
}

func TestVoiceRateLimiting(t *testing.T) {
	tb := newTestbed(8)
	voice := tb.voiceAt("s1", acoustic.Position{X: 1})
	tb.sim.Schedule(0, func() {
		if !voice.Play(700) {
			t.Error("first play should pass")
		}
		if voice.Play(700) {
			t.Error("immediate replay should be suppressed")
		}
		if !voice.Play(720) {
			t.Error("different frequency should pass")
		}
	})
	tb.sim.Schedule(0.2, func() {
		if !voice.Play(700) {
			t.Error("replay after MinGap should pass")
		}
	})
	tb.sim.Run()
	if voice.Emitted != 3 || voice.Suppressed != 1 {
		t.Errorf("emitted=%d suppressed=%d", voice.Emitted, voice.Suppressed)
	}
}

func TestVoicePlayMessageBypassesRateLimit(t *testing.T) {
	tb := newTestbed(9)
	voice := tb.voiceAt("s1", acoustic.Position{X: 1})
	tb.sim.Schedule(0, func() {
		for i := 0; i < 3; i++ {
			voice.PlayMessage(mp.Message{Frequency: 700, Duration: 0.05, Intensity: 60})
		}
	})
	tb.sim.Run()
	if voice.Emitted != 3 {
		t.Errorf("emitted = %d", voice.Emitted)
	}
	if len(tb.room.Emissions()) != 3 {
		t.Errorf("emissions = %d", len(tb.room.Emissions()))
	}
}

func TestControllerRetentionBoundsEmissions(t *testing.T) {
	// Two controllers over identical schedules: one retaining
	// everything (legacy), one compacting behind the window loop. The
	// compacting controller must hear the same tones while holding the
	// emission store at the audible horizon.
	run := func(retention float64) (*Controller, *acoustic.Room) {
		tb := newTestbed(9)
		freqs := tb.plan.MustAllocate("s1", 1)
		sp := tb.room.AddSpeaker("s1", acoustic.Position{X: 1})
		ctrl := tb.controller(freqs)
		ctrl.Retention = retention
		tb.sim.Every(0.1, 0.1, func(now float64) {
			sp.Play(now, audio.Tone{Frequency: freqs[0], Duration: 0.06, Amplitude: 0.05})
		})
		ctrl.Start(0)
		tb.sim.RunUntil(30)
		return ctrl, tb.room
	}
	legacy, legacyRoom := run(0)
	compacting, room := run(0.5)
	if legacy.Detections == 0 {
		t.Fatal("legacy controller heard nothing; test scenario is broken")
	}
	if compacting.Detections != legacy.Detections {
		t.Errorf("retention changed detections: %d vs legacy %d", compacting.Detections, legacy.Detections)
	}
	if got := legacyRoom.EmissionCount(); got < 290 {
		t.Errorf("legacy room holds %d emissions, want the full ~300 schedule", got)
	}
	// 300 tones scheduled; retention 0.5 s spans ~5 of the 0.1 s
	// schedule slots (plus in-flight margin).
	if got := room.EmissionCount(); got > 20 {
		t.Errorf("compacting room holds %d emissions, want the audible horizon (~6)", got)
	}
}
