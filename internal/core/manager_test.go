package core

import (
	"testing"

	"mdn/internal/acoustic"
	"mdn/internal/netsim"
)

func TestManagerDeploysMultipleApps(t *testing.T) {
	tb := newTestbed(300)
	sw := netsim.NewSwitch(tb.sim, "s1")
	h1 := netsim.NewHost(tb.sim, "h1", netsim.MustAddr("10.0.0.1"))
	h2 := netsim.NewHost(tb.sim, "h2", netsim.MustAddr("10.0.0.2"))
	netsim.Connect(tb.sim, h1, 1, sw, 1, 1e9, 0.0001, 0)
	netsim.Connect(tb.sim, h2, 1, sw, 2, 1e9, 0.0001, 0)
	sw.InstallRule(netsim.Rule{Priority: 1, Match: netsim.Match{Dst: h2.Addr}, Action: netsim.Output(2)})
	voice := tb.voiceAt("s1", acoustic.Position{X: 1.2})

	hh, err := NewHeavyHitter(tb.plan, "s1", voice, 8)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := NewPortScan(tb.plan, "s1", voice, 9000, 8)
	if err != nil {
		t.Fatal(err)
	}
	sw.Tap = func(p *netsim.Packet, in int) {
		hh.Tap(p, in)
		ps.Tap(p, in)
	}

	m := NewManager(tb.sim, tb.mic, tb.plan)
	if err := m.Deploy(hh); err != nil {
		t.Fatal(err)
	}
	if err := m.Deploy(ps); err != nil {
		t.Fatal(err)
	}
	if len(m.Apps()) != 2 {
		t.Fatalf("apps = %d", len(m.Apps()))
	}
	m.Start(0)

	// Heavy flow + scan; both apps must see their events.
	elephant := netsim.FiveTuple{Src: h1.Addr, Dst: h2.Addr, SrcPort: 7, DstPort: 80, Proto: netsim.ProtoTCP}
	netsim.StartCBR(tb.sim, h1, elephant, 200, 1000, 0.2, 4)
	netsim.StartPortScan(tb.sim, h1,
		netsim.FiveTuple{Src: h1.Addr, Dst: h2.Addr, SrcPort: 9, Proto: netsim.ProtoTCP},
		9000, 8, 0.3, 0.3)
	tb.sim.RunUntil(4)

	if len(hh.Reports) == 0 {
		t.Error("heavy hitter saw nothing through the manager")
	}
	if len(ps.Sweep) < 6 {
		t.Errorf("port scan sweep = %d, want most of 8", len(ps.Sweep))
	}
}

func TestManagerRejectsUnplannedFrequencies(t *testing.T) {
	tb := newTestbed(301)
	m := NewManager(tb.sim, tb.mic, tb.plan)
	sw := netsim.NewSwitch(tb.sim, "s1")
	voice := tb.voiceAt("s1", acoustic.Position{X: 1})
	// Explicit tones bypass the plan: the manager must refuse them.
	qm := NewQueueMonitorWithTones(sw, 2, voice, [3]float64{501, 601, 701})
	if err := m.Deploy(qm); err == nil {
		t.Fatal("unplanned frequencies accepted")
	}
	// A planned monitor is fine.
	qm2, err := NewQueueMonitor(tb.plan, sw, 2, voice)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Deploy(qm2); err != nil {
		t.Fatalf("planned monitor rejected: %v", err)
	}
}

func TestManagerDeployAfterStartFails(t *testing.T) {
	tb := newTestbed(302)
	m := NewManager(tb.sim, tb.mic, nil) // nil plan: no validation
	sw := netsim.NewSwitch(tb.sim, "s1")
	voice := tb.voiceAt("s1", acoustic.Position{X: 1})
	qm := NewQueueMonitorWithTones(sw, 2, voice, DefaultQueueFrequencies)
	if err := m.Deploy(qm); err != nil {
		t.Fatal(err)
	}
	m.Start(0)
	m.Start(0) // idempotent
	qm2 := NewQueueMonitorWithTones(sw, 3, voice, [3]float64{800, 900, 1000})
	if err := m.Deploy(qm2); err == nil {
		t.Fatal("deploy after start accepted")
	}
	m.Stop()
}

type emptyApp struct{}

func (emptyApp) Frequencies() []float64            { return nil }
func (emptyApp) HandleWindow(float64, []Detection) {}

func TestManagerRejectsEmptyApp(t *testing.T) {
	tb := newTestbed(303)
	m := NewManager(tb.sim, tb.mic, nil)
	if err := m.Deploy(emptyApp{}); err == nil {
		t.Fatal("app without frequencies accepted")
	}
}
