package core

import (
	"sync"

	"mdn/internal/acoustic"
	"mdn/internal/audio"
	"mdn/internal/netsim"
	"mdn/internal/telemetry"
)

// Controller is the Music-Defined Network controller: it polls its
// microphone in fixed windows, runs the tone detector, and fans
// detections out to subscribed applications. It can coexist with (or
// replace) a conventional SDN controller — applications that need to
// program switches hold openflow channels of their own.
//
// The fan-out is supervised: every subscriber runs inside a recover
// barrier, a subscriber that panics repeatedly is quarantined (see
// QuarantineThreshold), and the controller's liveness, error rates,
// and wire-fault counters roll up into the Health snapshot.
type Controller struct {
	// Window is the capture/analysis window in seconds. The paper
	// processes ~50 ms samples (Figure 2b).
	Window float64
	// Detector analyses each window.
	Detector *Detector
	// QuarantineThreshold is how many consecutive panics disable a
	// subscriber (0 means DefaultQuarantineThreshold). A window that
	// completes without panicking resets the count.
	QuarantineThreshold int
	// Errors collects application and subscriber failures; it feeds
	// the health state machine. Applications deployed by a Manager
	// share it.
	Errors *ErrorLog
	// ProfileSubscribers, when true, runs each subscriber callback
	// under a pprof label ("mdn_subscriber" = name) so CPU profiles
	// attribute samples per application. It allocates per call — an
	// opt-in profiling aid, not a steady-state setting.
	ProfileSubscribers bool
	// Retention, when positive, bounds the acoustic history the window
	// loop keeps: after analysing [from, to) the controller compacts
	// the room's emission store below from−Retention (see
	// acoustic.Room.CompactBefore), so a long-running deployment's
	// memory tracks the audible horizon instead of the whole schedule.
	// 0 (the default) keeps every emission — required when anything
	// re-captures arbitrary past windows out of band (AnalyseOnce
	// consumers, experiment WAV dumps). Out-of-band reads behind the
	// compaction horizon fail with acoustic.ErrCompacted rather than
	// silently analysing silence.
	Retention float64

	sim    *netsim.Sim
	mic    *acoustic.Microphone
	ticker *netsim.Ticker
	fleet  *Fleet
	stream *StreamController
	devmon *DeviceMonitor
	buf    *audio.Buffer // reused capture scratch for the single-mic path

	// mu guards the subscriber list so registration is safe from any
	// goroutine, at any time — including while the poll loop runs.
	// Everything else on the controller belongs to the simulation
	// goroutine.
	mu       sync.Mutex
	subs     []*subscriber
	autoName int
	// subsGen counts registrations; snap/snapGen cache the dispatch
	// snapshot so the hot path re-copies the list only when it changed
	// (see snapshotSubs).
	subsGen uint64
	snapGen uint64
	snap    []*subscriber

	started bool
	startAt float64
	health  healthInputs
	tm      controllerMetrics

	// Windows counts analysed windows.
	Windows uint64
	// Detections counts tones seen (per window, before any onset
	// filtering).
	Detections uint64
	// HandlerPanics counts recovered subscriber panics.
	HandlerPanics uint64
}

// DefaultWindow is the controller's default capture window: 50 ms,
// matching the paper's sample length.
const DefaultWindow = 0.050

// NewController builds a controller polling the given microphone.
func NewController(sim *netsim.Sim, mic *acoustic.Microphone, det *Detector) *Controller {
	return &Controller{
		Window:   DefaultWindow,
		Detector: det,
		Errors:   NewErrorLog(),
		sim:      sim,
		mic:      mic,
	}
}

// Subscribe registers a per-detection handler under an auto-generated
// name. Registration is safe from any goroutine, before or after
// Start; a handler registered mid-run sees windows beginning with the
// next one.
func (c *Controller) Subscribe(fn func(Detection)) {
	c.SubscribeNamed("", fn)
}

// SubscribeNamed registers a per-detection handler under an explicit
// name, which identifies it in Health reports and quarantine lists.
func (c *Controller) SubscribeNamed(name string, fn func(Detection)) {
	c.addSubscriber(&subscriber{name: name, onDet: fn})
}

// SubscribeWindows registers a per-window handler receiving the whole
// detection batch (possibly empty) — what onset filters need. Like
// Subscribe, it is safe from any goroutine at any time.
func (c *Controller) SubscribeWindows(fn func(windowStart float64, dets []Detection)) {
	c.SubscribeWindowsNamed("", fn)
}

// SubscribeWindowsNamed registers a per-window handler under an
// explicit name.
func (c *Controller) SubscribeWindowsNamed(name string, fn func(windowStart float64, dets []Detection)) {
	c.addSubscriber(&subscriber{name: name, onWin: fn})
}

// Start begins polling at time at (the first analysed window is
// [at, at+Window)). Call Stop to halt. Starting twice stops the
// previous poller.
func (c *Controller) Start(at float64) {
	if c.ticker != nil {
		c.ticker.Stop()
	}
	c.started = true
	c.startAt = at
	c.health.lastWindowEnd = at
	// The window ending at tick time t covers [t-Window, t): all
	// emissions overlapping it were scheduled by events at earlier
	// sim times, so capture is complete and causal.
	c.ticker = c.sim.Every(at+c.Window, c.Window, func(now float64) {
		c.analyse(now-c.Window, now)
	})
}

// Stop halts polling — the window loop and, if one is running, the
// streaming pipeline. A stopped controller is idle, not stalled, in
// its Health snapshot.
func (c *Controller) Stop() {
	if c.ticker != nil {
		c.ticker.Stop()
		c.ticker = nil
	}
	if c.stream != nil {
		c.stream.Stop()
	}
	c.started = false
}

func (c *Controller) analyse(from, to float64) {
	// Decode span: the wall-clock cost of capture + detection, the
	// quantity Figure 2b bounds against the 50 ms window budget.
	sp := telemetry.StartSpan(c.tm.decode, c.tm.wall)
	var dets []Detection
	if c.fleet != nil {
		dets = c.fleet.Analyse(from, to)
	} else if c.devmon != nil {
		// Single-microphone path with device monitoring: same capture,
		// same filter, but the threshold is the monitor's recalibrated
		// floor and the amplitude estimates feed its noise tracker.
		c.buf = c.mic.CaptureInto(c.buf, from, to)
		minAmp := c.devmon.floorFor(0, c.Detector.MinAmplitude)
		var amps []float64
		dets, amps = c.Detector.DetectCalibrated(c.buf, from, minAmp)
		c.devmon.ObserveMic(0, from, dets, amps)
	} else {
		c.buf = c.mic.CaptureInto(c.buf, from, to)
		dets = c.Detector.Detect(c.buf, from)
	}
	sp.End()
	c.noteDetections(from, to, dets)
	if c.Retention > 0 {
		c.mic.Room().CompactBefore(from - c.Retention)
	}
}

// noteDetections folds one analysed window into the controller:
// counters, health inputs, and the supervised subscriber fan-out. It
// is the shared back half of the batch window loop and the streaming
// pipeline — both paths feed the same subscribers with the same batch
// shape, so applications run unchanged on either.
func (c *Controller) noteDetections(from, to float64, dets []Detection) {
	if c.devmon != nil {
		// Device-health fold: noise EWMAs, recalibration, quarantine,
		// probes, and the re-key rewrite of shifted detections back to
		// their commanded frequencies — before dispatch, so subscribers
		// see the frequencies applications were told to expect.
		dets = c.devmon.finishWindow(from, to, dets)
	}
	c.Windows++
	c.Detections += uint64(len(dets))
	c.tm.windows.Inc()
	c.tm.detections.Add(uint64(len(dets)))
	c.noteWindow(to, dets)
	subs := c.snapshotSubs()
	for _, s := range subs {
		if s.onWin != nil {
			c.invoke(s, subCall{win: true, from: from, dets: dets})
		}
	}
	for _, det := range dets {
		for _, s := range subs {
			if s.onDet != nil {
				c.invoke(s, subCall{det: det})
			}
		}
	}
}

// AnalyseOnce runs one out-of-band analysis over [from, to) without
// the poll loop — used by passive applications (fan monitoring) and
// tests. Unlike the live window loop it may look arbitrarily far back
// in time, so it captures through the checked path: when the requested
// span precedes the room's compaction horizon (see
// acoustic.Room.CompactBefore and Controller.Retention) it returns an
// error wrapping acoustic.ErrCompacted instead of silently analysing a
// window with the dropped emissions mixed as silence.
func (c *Controller) AnalyseOnce(from, to float64) ([]Detection, error) {
	buf, err := c.mic.CaptureChecked(nil, from, to)
	if err != nil {
		return nil, err
	}
	return c.Detector.Detect(buf, from), nil
}

// EnableFleet switches the controller's window analysis to a
// worker-pool fleet engine cloned from its detector, seeded with the
// controller's own microphone, and returns the fleet so further
// listening points can be added with AddMicrophone. workers <= 0
// means GOMAXPROCS. Detections from all microphones are merged by
// (time, frequency) before dispatch, so subscriber semantics are
// unchanged — handlers still see one ordered batch per window.
func (c *Controller) EnableFleet(workers int) *Fleet {
	f := NewFleet(c.Detector, workers)
	f.AddMicrophone(c.mic)
	c.fleet = f
	return f
}

// Fleet returns the controller's fleet engine, or nil when the
// controller is on the single-microphone path.
func (c *Controller) Fleet() *Fleet { return c.fleet }

// Mic returns the controller's microphone.
func (c *Controller) Mic() *acoustic.Microphone { return c.mic }

// Sim returns the controller's clock.
func (c *Controller) Sim() *netsim.Sim { return c.sim }
