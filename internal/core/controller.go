package core

import (
	"mdn/internal/acoustic"
	"mdn/internal/netsim"
)

// Controller is the Music-Defined Network controller: it polls its
// microphone in fixed windows, runs the tone detector, and fans
// detections out to subscribed applications. It can coexist with (or
// replace) a conventional SDN controller — applications that need to
// program switches hold openflow channels of their own.
type Controller struct {
	// Window is the capture/analysis window in seconds. The paper
	// processes ~50 ms samples (Figure 2b).
	Window float64
	// Detector analyses each window.
	Detector *Detector

	sim    *netsim.Sim
	mic    *acoustic.Microphone
	ticker *netsim.Ticker

	handlers      []func(Detection)
	batchHandlers []func(window float64, dets []Detection)

	// Windows counts analysed windows.
	Windows uint64
	// Detections counts tones seen (per window, before any onset
	// filtering).
	Detections uint64
}

// DefaultWindow is the controller's default capture window: 50 ms,
// matching the paper's sample length.
const DefaultWindow = 0.050

// NewController builds a controller polling the given microphone.
func NewController(sim *netsim.Sim, mic *acoustic.Microphone, det *Detector) *Controller {
	return &Controller{
		Window:   DefaultWindow,
		Detector: det,
		sim:      sim,
		mic:      mic,
	}
}

// Subscribe registers a per-detection handler.
func (c *Controller) Subscribe(fn func(Detection)) {
	c.handlers = append(c.handlers, fn)
}

// SubscribeWindows registers a per-window handler receiving the whole
// detection batch (possibly empty) — what onset filters need.
func (c *Controller) SubscribeWindows(fn func(windowStart float64, dets []Detection)) {
	c.batchHandlers = append(c.batchHandlers, fn)
}

// Start begins polling at time at (the first analysed window is
// [at, at+Window)). Call Stop to halt. Starting twice stops the
// previous poller.
func (c *Controller) Start(at float64) {
	if c.ticker != nil {
		c.ticker.Stop()
	}
	// The window ending at tick time t covers [t-Window, t): all
	// emissions overlapping it were scheduled by events at earlier
	// sim times, so capture is complete and causal.
	c.ticker = c.sim.Every(at+c.Window, c.Window, func(now float64) {
		c.analyse(now-c.Window, now)
	})
}

// Stop halts polling.
func (c *Controller) Stop() {
	if c.ticker != nil {
		c.ticker.Stop()
		c.ticker = nil
	}
}

func (c *Controller) analyse(from, to float64) {
	buf := c.mic.Capture(from, to)
	dets := c.Detector.Detect(buf, from)
	c.Windows++
	c.Detections += uint64(len(dets))
	for _, h := range c.batchHandlers {
		h(from, dets)
	}
	for _, det := range dets {
		for _, h := range c.handlers {
			h(det)
		}
	}
}

// AnalyseOnce runs one out-of-band analysis over [from, to) without
// the poll loop — used by passive applications (fan monitoring) and
// tests.
func (c *Controller) AnalyseOnce(from, to float64) []Detection {
	buf := c.mic.Capture(from, to)
	return c.Detector.Detect(buf, from)
}

// Mic returns the controller's microphone.
func (c *Controller) Mic() *acoustic.Microphone { return c.mic }

// Sim returns the controller's clock.
func (c *Controller) Sim() *netsim.Sim { return c.sim }
