package core

import (
	"sync"

	"mdn/internal/acoustic"
	"mdn/internal/audio"
	"mdn/internal/parallel"
	"mdn/internal/telemetry"
)

// Fleet is the controller's many-switch listening engine: one
// analysis window fanned out over N microphones on a fixed pool of
// workers, each worker running its own Detector clone. The paper's
// deployments are fleets — many switches emitting tones toward one
// listening controller — and a single Detector cannot serve them
// concurrently because its per-window scratch is reused (the DSP
// plans underneath are shared and concurrency-safe; the scratch is
// not). Cloning the detector per worker shares the plans and
// duplicates only the scratch.
//
// Determinism contract: Analyse returns the same detection slice for
// the same room state regardless of worker count or scheduling order.
// Workers write into per-microphone result slots, and the merge step
// runs after the barrier, ordering detections by (time, frequency)
// with microphone registration order breaking exact ties — so
// subscriber semantics are identical to a serial multi-microphone
// loop.
//
// A Fleet is driven from one goroutine (the simulation loop):
// AddMicrophone and Analyse must not race each other. The concurrency
// is inside Analyse, between its workers.
type Fleet struct {
	template *Detector
	workers  int

	mics    []*acoustic.Microphone
	dets    []*Detector     // one clone per worker
	bufs    []*audio.Buffer // one capture buffer per worker
	out     [][]Detection   // per-microphone results, reused
	merged  []Detection
	sortTmp []Detection // merge-sort scratch, reserved with merged

	// mon, when set, receives each microphone's per-window amplitude
	// estimates and supplies per-microphone detection floors (see
	// Controller.EnableDeviceMonitor).
	mon *DeviceMonitor

	// Quarantine state: quarMu guards the flags so SetQuarantined is
	// safe from any goroutine; Analyse snapshots the active index list
	// under the lock at fan-out, so mid-window flips land on the next
	// window. Shard boundaries are a pure function of the ACTIVE
	// microphone count, so the merge stays byte-identical at any worker
	// count for a given quarantine set.
	quarMu      sync.Mutex
	quarantined []bool
	active      []int
	activeDirty bool

	// Window bounds for the in-flight fan-out; written before tasks
	// are sent, read by workers after receiving one (the channel send
	// is the happens-before edge).
	from, to float64

	tasks   chan micShard
	wg      sync.WaitGroup
	started bool
	closed  bool

	// cloneRev is the template watch-list revision the worker clones
	// were built from. Analyse snapshots the revision at fan-out and
	// re-checks it at merge: if another goroutine added a watch
	// frequency mid-window, the clones analysed a stale list, so the
	// window is re-run (bounded by staleRetries) rather than silently
	// published with the old watch set.
	cloneRev uint64

	// StaleWindows counts window analyses discarded and retried because
	// the watch list changed between fan-out and merge.
	StaleWindows uint64

	busy   *telemetry.Gauge
	window *telemetry.Histogram
	stale  *telemetry.Counter
	wall   telemetry.TimeSource
}

// staleRetries bounds how many times one window re-runs after a
// mid-window watch-list edit. Edits are rare (human or control-plane
// scale, versus the 20 Hz window loop), so in practice one retry
// settles it; the bound only prevents a pathological editor looping
// the analysis forever.
const staleRetries = 3

// NewFleet builds a fleet cloning template for each of workers pool
// slots (workers <= 0 means GOMAXPROCS). The template stays live:
// watch-list additions and threshold changes made to it (for example
// through Controller.Detector) are picked up at the next Analyse.
func NewFleet(template *Detector, workers int) *Fleet {
	if template == nil {
		panic("core: NewFleet requires a detector template")
	}
	return &Fleet{template: template, workers: parallel.Workers(workers)}
}

// Workers returns the pool size.
func (f *Fleet) Workers() int { return f.workers }

// AddMicrophone registers one listening point. Call from the driving
// goroutine only, not concurrently with Analyse.
func (f *Fleet) AddMicrophone(m *acoustic.Microphone) {
	if m == nil {
		panic("core: Fleet.AddMicrophone requires a microphone")
	}
	f.mics = append(f.mics, m)
	f.out = append(f.out, nil)
	f.quarMu.Lock()
	f.quarantined = append(f.quarantined, false)
	f.activeDirty = true
	f.quarMu.Unlock()
}

// SetQuarantined drops microphone i from (or readmits it to) the
// fan-out. Safe from any goroutine; a flip during an in-flight window
// takes effect at the next Analyse. Quarantined microphones are not
// captured by the fleet, so an out-of-band prober may capture them
// without violating the single-capturer contract.
func (f *Fleet) SetQuarantined(i int, q bool) {
	f.quarMu.Lock()
	defer f.quarMu.Unlock()
	if i < 0 || i >= len(f.quarantined) {
		panic("core: Fleet.SetQuarantined index out of range")
	}
	if f.quarantined[i] != q {
		f.quarantined[i] = q
		f.activeDirty = true
	}
}

// IsQuarantined reports whether microphone i is out of the fan-out.
func (f *Fleet) IsQuarantined(i int) bool {
	f.quarMu.Lock()
	defer f.quarMu.Unlock()
	return i >= 0 && i < len(f.quarantined) && f.quarantined[i]
}

// syncActive rebuilds the active-microphone index snapshot when the
// quarantine set moved. Called at fan-out, before workers read it.
func (f *Fleet) syncActive() {
	f.quarMu.Lock()
	defer f.quarMu.Unlock()
	if !f.activeDirty && f.active != nil {
		return
	}
	f.active = f.active[:0]
	for i, q := range f.quarantined {
		if !q {
			f.active = append(f.active, i)
		}
	}
	f.activeDirty = false
}

// Microphones returns the number of registered listening points.
func (f *Fleet) Microphones() int { return len(f.mics) }

// Instrument registers the fleet's telemetry: a gauge of workers
// currently busy and a histogram of per-window fan-out wall time
// (capture + detect across all microphones, barrier included).
func (f *Fleet) Instrument(reg *telemetry.Registry) {
	f.busy = reg.Gauge(metricFleetBusy)
	f.window = reg.Histogram(metricFleetWindow, telemetry.DefaultLatencyBuckets)
	f.stale = reg.Counter(metricFleetStale)
	f.wall = telemetry.Wall()
}

// Analyse captures and analyses [from, to) on every microphone,
// fanning the work across the pool, and returns the merged detections
// ordered by (time, frequency). The returned slice is scratch owned
// by the fleet, valid until the next Analyse call — the same contract
// as Detector.Detect. Steady-state calls allocate nothing.
func (f *Fleet) Analyse(from, to float64) []Detection {
	if len(f.mics) == 0 {
		return nil
	}
	f.syncActive()
	if len(f.active) == 0 {
		return nil
	}
	sp := telemetry.StartSpan(f.window, f.wall)
	for attempt := 0; ; attempt++ {
		// Snapshot the watch revision the whole window will run under.
		// Watch edits are serialized through the template's mutex, so a
		// stable revision across fan-out and merge proves every clone
		// analysed the same list the merge publishes.
		rev := f.template.WatchRev()
		f.syncClones(rev)
		f.reserve()
		f.from, f.to = from, to
		if f.workers == 1 || len(f.active) == 1 {
			// Serial reference path: same per-microphone work, same merge.
			for _, i := range f.active {
				f.analyseMic(0, i)
			}
		} else {
			f.start()
			shards := f.shards()
			f.wg.Add(shards)
			m := len(f.active)
			base, ext := m/shards, m%shards
			lo := 0
			for s := 0; s < shards; s++ {
				hi := lo + base
				if s < ext {
					hi++
				}
				f.tasks <- micShard{lo, hi}
				lo = hi
			}
			f.wg.Wait()
		}
		if f.template.WatchRev() == rev || attempt >= staleRetries {
			break
		}
		// The watch list moved under the window: per-microphone slots
		// may mix old- and new-list results. Count it and re-run.
		f.StaleWindows++
		f.stale.Inc()
	}
	f.merged = f.merged[:0]
	for _, i := range f.active {
		f.merged = append(f.merged, f.out[i]...)
	}
	sortDetections(f.merged, f.sortTmp)
	sp.End()
	if len(f.merged) == 0 {
		return nil
	}
	return f.merged
}

// Close stops the worker goroutines. The fleet stays usable on the
// serial path after Close; call it when tearing a fleet down so pools
// built per benchmark iteration or per test do not leak goroutines.
func (f *Fleet) Close() {
	if f.started && !f.closed {
		close(f.tasks)
		f.closed = true
		f.started = false
	}
}

// syncClones brings the per-worker detectors in line with the live
// template: scalar thresholds are copied every window (they are four
// assignments), the watch list only when its revision moved. rev is
// the template revision snapshot the caller runs the window under.
func (f *Fleet) syncClones(rev uint64) {
	stale := len(f.dets) != f.workers || f.cloneRev != rev
	if stale {
		f.cloneRev = rev
		f.dets = f.dets[:0]
		for w := 0; w < f.workers; w++ {
			f.dets = append(f.dets, f.template.Clone())
		}
		for len(f.bufs) < f.workers {
			f.bufs = append(f.bufs, nil)
		}
	}
	for _, d := range f.dets {
		d.Method = f.template.Method
		d.MinAmplitude = f.template.MinAmplitude
		d.ToleranceHz = f.template.ToleranceHz
		d.RelativeFloor = f.template.RelativeFloor
	}
}

// reserve grows the merge-path slices to their hard bound: a detector
// yields at most one detection per watched frequency, so one window
// produces at most mics × watch detections. Reserving that up front
// (re-checked per window, so watch-list growth is covered) means
// per-window detection-count wobble — self-noise flips borderline
// amplitudes across the threshold — never triggers a mid-flight
// growslice, keeping the steady state allocation-free.
func (f *Fleet) reserve() {
	per := f.template.WatchLen()
	bound := per * len(f.mics)
	if cap(f.merged) < bound {
		f.merged = make([]Detection, 0, bound)
	}
	if cap(f.sortTmp) < bound {
		f.sortTmp = make([]Detection, bound)
	}
	for i := range f.out {
		if cap(f.out[i]) < per {
			f.out[i] = make([]Detection, 0, per)
		}
	}
}

// start launches the worker pool on first parallel use.
func (f *Fleet) start() {
	if f.started {
		return
	}
	if f.closed {
		panic("core: Analyse on a closed Fleet with multiple workers")
	}
	f.tasks = make(chan micShard)
	for w := 0; w < f.workers; w++ {
		go f.worker(w)
	}
	f.started = true
}

// micShard is one contiguous run [lo, hi) of ACTIVE-list positions —
// the unit of parallel fan-out. Sharding microphones instead of
// sending them one at a time amortises channel traffic at fleet scale:
// a 1024-microphone window is ~4×workers sends rather than 1024, while
// each worker still iterates only the audible sets of its shard's
// microphones (the per-microphone culled capture).
type micShard struct{ lo, hi int }

// shards returns the fan-out granularity: several contiguous shards
// per worker so an unlucky shard of loud microphones cannot straggle
// the window, capped at one shard per active microphone. Shard
// boundaries are a pure function of the active count, never the pool
// size's scheduling luck; workers write per-microphone result slots,
// so the merged output is identical at any worker count.
func (f *Fleet) shards() int {
	n := 4 * f.workers
	if n > len(f.active) {
		n = len(f.active)
	}
	return n
}

// worker processes microphone shards until the task channel closes.
// Worker w owns dets[w] and bufs[w]; distinct shards cover disjoint
// out[i] slots, so the only synchronisation needed is the WaitGroup.
func (f *Fleet) worker(w int) {
	for sh := range f.tasks {
		f.busy.Add(1)
		for k := sh.lo; k < sh.hi; k++ {
			f.analyseMic(w, f.active[k])
		}
		f.busy.Add(-1)
		f.wg.Done()
	}
}

// analyseMic captures one microphone's window with worker w's scratch
// and stores the detections in the microphone's result slot. With a
// device monitor attached, the detection threshold is the monitor's
// recalibrated per-microphone floor and the amplitude estimates feed
// its noise tracker (stored per microphone, folded after the barrier).
func (f *Fleet) analyseMic(w, i int) {
	f.bufs[w] = f.mics[i].CaptureInto(f.bufs[w], f.from, f.to)
	if f.mon != nil {
		minAmp := f.mon.floorFor(i, f.dets[w].MinAmplitude)
		dets, amps := f.dets[w].DetectCalibrated(f.bufs[w], f.from, minAmp)
		f.mon.ObserveMic(i, f.from, dets, amps)
		f.out[i] = append(f.out[i][:0], dets...)
		return
	}
	dets := f.dets[w].Detect(f.bufs[w], f.from)
	f.out[i] = append(f.out[i][:0], dets...)
}

// sortDetections orders detections by (Time, Frequency), stable: exact
// ties keep their arrival order, which Analyse arranges to be
// microphone registration order. It is a bottom-up merge sort over
// caller-provided scratch (len(tmp) >= len(s)) — allocation-free, and
// O(n log n) where the previous insertion sort went quadratic once
// every microphone heard every voice (a 256-voice fleet merges ~65k
// detections per window).
func sortDetections(s, tmp []Detection) {
	n := len(s)
	const run = 32
	for lo := 0; lo < n; lo += run {
		hi := lo + run
		if hi > n {
			hi = n
		}
		insertionSortDetections(s[lo:hi])
	}
	tmp = tmp[:len(s)]
	for width := run; width < n; width *= 2 {
		for lo := 0; lo < n-width; lo += 2 * width {
			mid := lo + width
			hi := mid + width
			if hi > n {
				hi = n
			}
			mergeDetections(tmp[lo:hi], s[lo:mid], s[mid:hi])
			copy(s[lo:hi], tmp[lo:hi])
		}
	}
}

func insertionSortDetections(s []Detection) {
	for i := 1; i < len(s); i++ {
		d := s[i]
		j := i - 1
		for j >= 0 && detLess(d, s[j]) {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = d
	}
}

// mergeDetections merges two sorted runs into dst, taking from a on
// ties — the stability guarantee.
func mergeDetections(dst, a, b []Detection) {
	i, j := 0, 0
	for k := range dst {
		if i < len(a) && (j >= len(b) || !detLess(b[j], a[i])) {
			dst[k] = a[i]
			i++
		} else {
			dst[k] = b[j]
			j++
		}
	}
}

func detLess(a, b Detection) bool {
	return a.Time < b.Time || (a.Time == b.Time && a.Frequency < b.Frequency)
}
