package core

import (
	"mdn/internal/acoustic"
	"mdn/internal/netsim"
)

// MicArray is the Section 8 research direction "coordinate an array
// of microphones listening to different groups of switches": several
// microphones analysed per window, each detection attributed to the
// microphone that heard it loudest. Because amplitude falls as 1/r,
// the loudest microphone is the nearest one, which localises the
// emitter to that microphone's zone — and lets two zones reuse the
// same frequencies.
type MicArray struct {
	// Window is the analysis window in seconds.
	Window float64
	// Detector analyses every microphone's capture.
	Detector *Detector

	sim    *netsim.Sim
	mics   []*acoustic.Microphone
	ticker *netsim.Ticker

	handlers []func(ArrayDetection)

	// Windows counts analysed windows.
	Windows uint64
}

// ArrayDetection is a detection attributed to a zone.
type ArrayDetection struct {
	Detection
	// Mic is the name of the loudest (attributed) microphone.
	Mic string
	// Amplitudes holds the per-microphone amplitude estimates, by
	// microphone name, for detections of this frequency.
	Amplitudes map[string]float64
}

// NewMicArray builds an array over the given microphones.
//
// Constructor invariant (documented panic): an array needs at least
// one microphone; zero is a configuration bug and panics at
// construction time.
func NewMicArray(sim *netsim.Sim, det *Detector, mics ...*acoustic.Microphone) *MicArray {
	if len(mics) == 0 {
		panic("core: MicArray requires at least one microphone")
	}
	return &MicArray{
		Window:   DefaultWindow,
		Detector: det,
		sim:      sim,
		mics:     mics,
	}
}

// Subscribe registers a handler for attributed detections.
func (a *MicArray) Subscribe(fn func(ArrayDetection)) {
	a.handlers = append(a.handlers, fn)
}

// Start begins polling at time at.
func (a *MicArray) Start(at float64) {
	if a.ticker != nil {
		a.ticker.Stop()
	}
	a.ticker = a.sim.Every(at+a.Window, a.Window, func(now float64) {
		a.analyse(now-a.Window, now)
	})
}

// Stop halts polling.
func (a *MicArray) Stop() {
	if a.ticker != nil {
		a.ticker.Stop()
		a.ticker = nil
	}
}

func (a *MicArray) analyse(from, to float64) {
	a.Windows++
	// Per frequency: amplitude at each microphone.
	perFreq := make(map[float64]map[string]float64)
	var order []float64
	for _, mic := range a.mics {
		buf := mic.Capture(from, to)
		for _, det := range a.Detector.Detect(buf, from) {
			m := perFreq[det.Frequency]
			if m == nil {
				m = make(map[string]float64)
				perFreq[det.Frequency] = m
				order = append(order, det.Frequency)
			}
			m[mic.Name] = det.Amplitude
		}
	}
	for _, f := range order {
		amps := perFreq[f]
		bestMic := ""
		bestAmp := 0.0
		for name, amp := range amps {
			if amp > bestAmp {
				bestAmp = amp
				bestMic = name
			}
		}
		ad := ArrayDetection{
			Detection:  Detection{Time: from, Frequency: f, Amplitude: bestAmp},
			Mic:        bestMic,
			Amplitudes: amps,
		}
		for _, h := range a.handlers {
			h(ad)
		}
	}
}

// AnalyseOnce runs one out-of-band analysis over [from, to),
// returning attributed detections.
func (a *MicArray) AnalyseOnce(from, to float64) []ArrayDetection {
	var out []ArrayDetection
	saved := a.handlers
	a.handlers = []func(ArrayDetection){func(ad ArrayDetection) { out = append(out, ad) }}
	a.analyse(from, to)
	a.handlers = saved
	return out
}
