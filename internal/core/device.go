package core

import (
	"math"

	"mdn/internal/acoustic"
	"mdn/internal/audio"
	"mdn/internal/dsp"
	"mdn/internal/telemetry"
)

// This file is the device-health layer: the fan-fail ladder of
// fandiag.go generalised to MDN's own hardware. A DeviceMonitor rides
// the controller's window loop, fingerprints every microphone and
// speaker from the emissions it already analyses, classifies each
// device healthy / drifting / deaf / detuned / silent, and heals what
// it can:
//
//   - drift      — a microphone's bin-level noise floor is tracked with
//                  an EWMA; when it climbs, the microphone's detection
//                  threshold is recalibrated above it (with hysteresis)
//                  instead of letting noise masquerade as tones. The
//                  acoustic plane's CullAuto floor recalibrates on its
//                  own (it reads the effective self-noise, see
//                  acoustic.Room.cullFloorAt).
//   - deafness   — a microphone that keeps missing tones its fleet
//                  peers hear is quarantined: dropped from the fleet
//                  fan-out (batch and streaming) so it cannot dilute
//                  merges, then probed on the side until it hears
//                  again, at which point it rejoins (hysteresis on
//                  both edges).
//   - detuning   — a speaker whose trained frequencies fall silent is
//                  probed across a detune grid; when its tone is found
//                  shifted, the controller re-keys: the shifted
//                  frequency is watched and detections on it are
//                  rewritten back to the commanded frequency before
//                  dispatch, so applications keep working unmodified.
//                  When the original frequency returns, the rewrite is
//                  retired.
//   - silence    — a speaker probe that finds nothing mutes the
//                  registered Voice: a dead driver stops burning the
//                  shared acoustic channel.
//
// Everything the monitor consumes is produced by the window loop it
// already rides — per-microphone amplitude estimates and the merged
// detections — so the steady-state path allocates nothing; probes and
// re-keys are event-driven and may allocate.

// DeviceState classifies one monitored device.
type DeviceState int

// Device states. Microphones move between Healthy, Drifting (noise
// floor recalibrated) and Deaf (quarantined); speakers between
// Healthy, Detuned (re-keyed) and Silent (muted).
const (
	DeviceHealthy DeviceState = iota
	DeviceDrifting
	DeviceDeaf
	DeviceDetuned
	DeviceSilent
)

// String names the state.
func (s DeviceState) String() string {
	switch s {
	case DeviceHealthy:
		return "healthy"
	case DeviceDrifting:
		return "drifting"
	case DeviceDeaf:
		return "deaf"
	case DeviceDetuned:
		return "detuned"
	case DeviceSilent:
		return "silent"
	default:
		return "unknown"
	}
}

// DeviceHealth is one device's row in a health snapshot or chaos
// report. Fields are deterministic functions of the simulated run, so
// reports embedding them keep their byte-identity contracts.
type DeviceHealth struct {
	// Name identifies the device; Kind is "mic" or "speaker".
	Name string `json:"name"`
	Kind string `json:"kind"`
	// State is the current classification.
	State string `json:"state"`
	// NoiseFloor is the microphone's EWMA bin-noise estimate (linear
	// amplitude); Floor is its recalibrated detection threshold (0 =
	// the detector default applies).
	NoiseFloor float64 `json:"noise_floor,omitempty"`
	Floor      float64 `json:"floor,omitempty"`
	// Quarantined reports a microphone currently out of the fan-out.
	Quarantined bool `json:"quarantined,omitempty"`
	// DetuneRatio is the active re-key ratio of a detuned speaker
	// (emitted/commanded frequency); Muted reports a silenced voice.
	DetuneRatio float64 `json:"detune_ratio,omitempty"`
	Muted       bool    `json:"muted,omitempty"`
	// Lifetime event counts: state transitions, threshold
	// recalibrations, quarantine entries and rejoins, re-keys.
	Transitions    uint64 `json:"transitions,omitempty"`
	Recalibrations uint64 `json:"recalibrations,omitempty"`
	Quarantines    uint64 `json:"quarantines,omitempty"`
	Rejoins        uint64 `json:"rejoins,omitempty"`
	Rekeys         uint64 `json:"rekeys,omitempty"`
}

// micTracker is one microphone's drift/deafness state. The per-window
// observation fields (obs*) are written by whichever goroutine
// analysed the microphone this window — workers own disjoint
// microphones within a window, and the fleet barrier orders their
// writes before the driver's fold — everything else belongs to the
// driver goroutine.
type micTracker struct {
	name string
	mic  *acoustic.Microphone

	obsMin      float64 // min per-watch amplitude this window (bin noise proxy)
	obsDetected bool
	observed    bool

	// noiseRing holds the last few windows' obsMin; the noise estimate
	// folds the ring MEDIAN, not the raw observation. With a short
	// watch list a window carrying a tone has no quiet bin to read, so
	// its obsMin is the tone's amplitude — but beats occupy a minority
	// of any span of a few windows, and the median reads the noise
	// level from the inter-beat silences. (The minimum would be robust
	// to tones too, but the min of several Rayleigh-distributed bin
	// readings sits far below the mean, so a margin over it lands
	// inside the noise distribution and the floor never separates.)
	noiseRing [noiseRingWindows]float64
	ringN     int

	ewma       float64 // EWMA of the ring median: the bin-level noise estimate
	seeded     bool
	floor      float64 // recalibrated absolute threshold; 0 = detector default
	missStreak int     // consecutive windows peers heard tones and this mic did not
	probeHits  int     // consecutive successful quarantine probes

	state       DeviceState
	quarantined bool

	transitions    uint64
	recalibrations uint64
	quarantines    uint64
	rejoins        uint64
}

// speakerTracker is one registered speaker's fingerprint state.
type speakerTracker struct {
	name    string
	voice   *Voice
	freqs   []float64           // commanded frequencies
	shifted []float64           // active re-key frequencies, paired with freqs; nil in tune
	level   map[float64]float64 // EWMA detected level per commanded frequency

	trainCount   int
	silentStreak int
	probeMisses  int
	healStreak   int
	ratio        float64 // active detune ratio; 1 when in tune

	state       DeviceState
	transitions uint64
	rekeys      uint64
}

// DeviceMonitor watches the controller's microphones and registered
// speakers for degradation and heals what it can. Build one with
// Controller.EnableDeviceMonitor after the fleet's microphones are
// registered; drive is automatic (the controller folds every analysed
// window into it). All exported knobs must be set before the first
// window.
type DeviceMonitor struct {
	// NoiseAlpha is the EWMA smoothing factor of the per-microphone
	// bin-noise estimate (default 0.3).
	NoiseAlpha float64
	// NoiseMargin sets the recalibrated threshold to margin × the
	// noise estimate (default 4 — tones must clear the noise floor by
	// 12 dB).
	NoiseMargin float64
	// RecalBand is the hysteresis band: an established floor moves
	// only when the candidate differs by more than this fraction
	// (default 0.25). Every move is one recalibration event.
	RecalBand float64
	// DeafWindows quarantines a microphone after this many consecutive
	// windows in which the fleet heard tones and it heard nothing
	// (default 8). Keep it above the fleet's longest inter-beat gap in
	// windows: while a drifting microphone's noise still reads as
	// detections (the transient before its floor recalibrates), every
	// window looks like a tone window, and healthy microphones accrue
	// misses across the real silences.
	DeafWindows int
	// ProbeEvery probes each quarantined microphone every N windows
	// (default 2).
	ProbeEvery int
	// RejoinHits rejoins a quarantined microphone after this many
	// consecutive successful probes, and retires a speaker re-key
	// after this many windows with the commanded frequency back
	// (default 3).
	RejoinHits int
	// SilentWindows triggers a speaker probe after this many
	// consecutive windows without any of its trained frequencies
	// (default 20).
	SilentWindows int
	// MaxDetuneRatio bounds the detune search to commanded × (1 ±
	// ratio) (default 0.06); DetuneStep is the grid step (default
	// 0.005).
	MaxDetuneRatio float64
	DetuneStep     float64
	// MinLevelRatio is the fingerprint match floor: a detection of a
	// speaker's commanded frequency counts as sound from that speaker
	// only at or above this fraction of its trained level (default
	// 0.35). Below it is noise or leakage remnants.
	MinLevelRatio float64
	// StrongLevelRatio splits the audible band in two: at or above
	// this fraction of the trained level (default 0.7) a hit is STRONG
	// — the speaker is verifiably in tune at its fingerprinted volume,
	// and the level EWMA trains. Between MinLevelRatio and this, a hit
	// is WEAK: a partial-window beat, a quieter driver, or spectral
	// leakage of a detuned tone into the commanded bin — which at low
	// frequencies runs ~40% of the tone (400 Hz detuned 4% sits only
	// 0.8 window-cycles off its bin), far above any absolute floor.
	// Weak hits never train: training on leakage walks the fingerprint
	// down onto it and blinds the detune detector.
	StrongLevelRatio float64
	// TuneFactor is the probe's dominance test: a shifted grid peak
	// re-keys the speaker only when it exceeds TuneFactor × the
	// commanded bins' own amplitude (default 1.5). An in-tune tone
	// leaks nearly full-strength onto adjacent grid ratios, so
	// absolute level alone cannot distinguish "detuned" from "merely
	// quieter" — dominance can.
	TuneFactor float64

	ctrl     *Controller
	mics     []*micTracker
	speakers []*speakerTracker
	rewrite  map[float64]float64 // shifted → commanded frequency
	detected map[float64]float64 // this window's detected freq → max amplitude
	windows  uint64

	probeDet  *Detector // quarantine-probe detector clone
	probeRev  uint64
	probeBuf  *audio.Buffer
	probeAmps []float64 // probe per-frequency commanded-bin scratch
	sortTmp   []Detection

	transitions    uint64
	recalibrations uint64
	quarantines    uint64
	rejoins        uint64
	rekeys         uint64

	reg *telemetry.Registry
}

// EnableDeviceMonitor attaches a device-health monitor to the
// controller: every microphone known at call time (the fleet's list,
// or the controller's own on the single-microphone path) is tracked
// for noise drift and deafness, and speakers registered afterwards
// with WatchSpeaker are tracked for detuning and silence. Call after
// EnableFleet and after all microphones are registered; returns the
// monitor for knob tuning and speaker registration.
func (c *Controller) EnableDeviceMonitor() *DeviceMonitor {
	m := &DeviceMonitor{
		NoiseAlpha:       0.3,
		NoiseMargin:      4,
		RecalBand:        0.25,
		DeafWindows:      8,
		ProbeEvery:       2,
		RejoinHits:       3,
		SilentWindows:    20,
		MaxDetuneRatio:   0.06,
		DetuneStep:       0.005,
		MinLevelRatio:    0.35,
		StrongLevelRatio: 0.7,
		TuneFactor:       1.5,
		ctrl:             c,
		rewrite:          make(map[float64]float64),
		detected:         make(map[float64]float64),
	}
	if c.fleet != nil {
		for _, mic := range c.fleet.mics {
			m.mics = append(m.mics, &micTracker{name: mic.Name, mic: mic})
		}
		c.fleet.mon = m
	} else {
		m.mics = append(m.mics, &micTracker{name: c.mic.Name, mic: c.mic})
	}
	c.devmon = m
	if c.tm.reg != nil {
		m.Instrument(c.tm.reg)
	}
	return m
}

// DeviceMonitor returns the controller's device-health monitor, or nil
// when none is enabled.
func (c *Controller) DeviceMonitor() *DeviceMonitor { return c.devmon }

// WatchSpeaker registers one speaker (by switch name) for fingerprint
// tracking: freqs are the frequencies it is commanded to emit. voice,
// when non-nil, is muted if the speaker goes silent beyond recovery.
func (m *DeviceMonitor) WatchSpeaker(name string, voice *Voice, freqs ...float64) {
	fs := make([]float64, len(freqs))
	copy(fs, freqs)
	t := &speakerTracker{
		name: name, voice: voice, freqs: fs,
		level: make(map[float64]float64), ratio: 1,
	}
	m.speakers = append(m.speakers, t)
	m.instrumentSpeaker(t)
}

// ObserveMic records one microphone's per-window analysis product: the
// minimum per-watch amplitude (the quietest watched bin is a bin-level
// noise estimate — tones occupy at most a few bins) and whether
// anything was detected. Called by whichever goroutine analysed the
// microphone; the fold into the EWMA happens on the driver in
// finishWindow, so a window re-run (stale watch retry) just overwrites
// the observation.
func (m *DeviceMonitor) ObserveMic(i int, windowStart float64, dets []Detection, amps []float64) {
	if i >= len(m.mics) || len(amps) == 0 {
		return
	}
	min := amps[0]
	for _, a := range amps[1:] {
		if a < min {
			min = a
		}
	}
	t := m.mics[i]
	t.obsMin = min
	t.obsDetected = len(dets) > 0
	t.observed = true
}

// floorFor returns the effective absolute detection threshold for
// microphone i: the recalibrated per-microphone floor when it exceeds
// the detector default def. Read by analysis goroutines mid-window;
// written only by the driver between windows.
func (m *DeviceMonitor) floorFor(i int, def float64) float64 {
	if i < len(m.mics) && m.mics[i].floor > def {
		return m.mics[i].floor
	}
	return def
}

// micQuarantined reports whether microphone i is quarantined (the
// streaming path's skip test).
func (m *DeviceMonitor) micQuarantined(i int) bool {
	return i < len(m.mics) && m.mics[i].quarantined
}

// activeMics counts microphones currently in the fan-out.
func (m *DeviceMonitor) activeMics() int {
	n := 0
	for _, t := range m.mics {
		if !t.quarantined {
			n++
		}
	}
	return n
}

// MicsQuarantined counts microphones currently out of the fan-out.
func (m *DeviceMonitor) MicsQuarantined() int {
	return len(m.mics) - m.activeMics()
}

// finishWindow folds one analysed window into the monitor on the
// driver goroutine: noise EWMAs and threshold recalibration, the
// deafness ladder and quarantine probes, speaker fingerprints with
// detune probes, and finally the re-key rewrite of the detections
// about to be dispatched. It returns the (possibly rewritten and
// re-sorted) detections. Steady state allocates nothing; probes and
// re-keys are event-driven.
func (m *DeviceMonitor) finishWindow(from, to float64, dets []Detection) []Detection {
	m.windows++

	// This window's detected frequencies (pre-rewrite: a re-keyed
	// speaker shows up at its shifted frequency here).
	for k := range m.detected {
		delete(m.detected, k)
	}
	for _, d := range dets {
		if d.Amplitude > m.detected[d.Frequency] {
			m.detected[d.Frequency] = d.Amplitude
		}
	}
	anyDetected := len(dets) > 0

	for i, t := range m.mics {
		if t.quarantined {
			m.probeQuarantined(i, t, from, to, anyDetected)
			continue
		}
		if !t.observed {
			continue
		}
		t.observed = false
		m.foldNoise(t, t.obsMin)
		m.recalibrate(t)
		if t.obsDetected {
			t.missStreak = 0
		} else if anyDetected {
			t.missStreak++
		}
		if t.missStreak >= m.DeafWindows && m.activeMics() > 1 {
			m.quarantine(i, t)
		}
		m.classifyMic(t)
	}

	for _, t := range m.speakers {
		m.observeSpeaker(t, from, to)
	}

	if len(m.rewrite) > 0 && len(dets) > 0 {
		changed := false
		for i := range dets {
			if orig, ok := m.rewrite[dets[i].Frequency]; ok {
				dets[i].Frequency = orig
				changed = true
			}
		}
		if changed {
			// Rewriting can break the (time, frequency) dispatch order;
			// restore it so subscribers keep the ordered-batch contract.
			if cap(m.sortTmp) < len(dets) {
				m.sortTmp = make([]Detection, len(dets))
			}
			sortDetections(dets, m.sortTmp[:len(dets)])
		}
	}
	return dets
}

// noiseRingWindows spans the median filter that separates tones from
// noise in the per-window observations: 8 windows (400 ms at the
// default 50 ms window) holds a majority of inter-beat silences for
// heartbeat-style traffic (a 65 ms tone every 300 ms covers 2 windows
// in 6). A voice sounding in EVERY window would defeat the filter —
// the assumption is MDN's own pacing, where Voice.MinGap forces
// silence between same-frequency tones.
const noiseRingWindows = 8

// foldNoise advances one microphone's EWMA bin-noise estimate from the
// (lower) median of its recent per-window observations.
func (m *DeviceMonitor) foldNoise(t *micTracker, v float64) {
	t.noiseRing[t.ringN%noiseRingWindows] = v
	t.ringN++
	n := t.ringN
	if n > noiseRingWindows {
		n = noiseRingWindows
	}
	var s [noiseRingWindows]float64
	copy(s[:], t.noiseRing[:n])
	for i := 1; i < n; i++ {
		x := s[i]
		j := i - 1
		for j >= 0 && s[j] > x {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = x
	}
	med := s[(n-1)/2]
	if !t.seeded {
		t.ewma = med
		t.seeded = true
		return
	}
	t.ewma += m.NoiseAlpha * (med - t.ewma)
}

// recalibrate moves one microphone's absolute detection threshold to
// NoiseMargin × its noise estimate when that exceeds the detector
// default, with a hysteresis band so a floor in steady state never
// churns. Each move is one recalibration event.
func (m *DeviceMonitor) recalibrate(t *micTracker) {
	base := m.ctrl.Detector.MinAmplitude
	cand := m.NoiseMargin * t.ewma
	if cand <= base {
		if t.floor != 0 {
			t.floor = 0
			t.recalibrations++
			m.recalibrations++
		}
		return
	}
	if t.floor == 0 || math.Abs(cand-t.floor) > m.RecalBand*t.floor {
		t.floor = cand
		t.recalibrations++
		m.recalibrations++
	}
}

// quarantine drops microphone i from the fan-out.
func (m *DeviceMonitor) quarantine(i int, t *micTracker) {
	t.quarantined = true
	t.missStreak = 0
	t.probeHits = 0
	if f := m.ctrl.fleet; f != nil {
		f.SetQuarantined(i, true)
	}
	t.quarantines++
	m.quarantines++
	m.classifyMic(t)
}

// probeQuarantined captures the quarantined microphone on the side
// every ProbeEvery windows: its noise estimate keeps tracking (so the
// floor recalibrates down once a noise fault clears), and a probe that
// hears a frequency the active fleet also heard counts toward rejoin.
func (m *DeviceMonitor) probeQuarantined(i int, t *micTracker, from, to float64, anyDetected bool) {
	t.observed = false
	if m.ProbeEvery > 1 && m.windows%uint64(m.ProbeEvery) != 0 {
		return
	}
	// The microphone is out of the fan-out, so the driver is its only
	// capturer — the single-capturer contract holds.
	m.probeBuf = t.mic.CaptureInto(m.probeBuf, from, to)
	pd := m.probeDetector()
	minAmp := pd.MinAmplitude
	if t.floor > minAmp {
		minAmp = t.floor
	}
	pdets, pamps := pd.DetectCalibrated(m.probeBuf, from, minAmp)
	if len(pamps) == 0 {
		return
	}
	min := pamps[0]
	for _, a := range pamps[1:] {
		if a < min {
			min = a
		}
	}
	m.foldNoise(t, min)
	m.recalibrate(t)
	hit := false
	for _, d := range pdets {
		if _, ok := m.detected[d.Frequency]; ok {
			hit = true
			break
		}
	}
	if hit {
		t.probeHits++
	} else if anyDetected {
		// There were tones to hear and the probe missed them all.
		t.probeHits = 0
	}
	if t.probeHits >= m.RejoinHits {
		t.quarantined = false
		t.missStreak = 0
		t.probeHits = 0
		if f := m.ctrl.fleet; f != nil {
			f.SetQuarantined(i, false)
		}
		t.rejoins++
		m.rejoins++
		m.classifyMic(t)
	}
}

// probeDetector returns the monitor's private detector clone, rebuilt
// when the controller's watch list moves.
func (m *DeviceMonitor) probeDetector() *Detector {
	d := m.ctrl.Detector
	if m.probeDet == nil || m.probeRev != d.WatchRev() {
		m.probeDet = d.Clone()
		m.probeRev = d.WatchRev()
	}
	return m.probeDet
}

// classifyMic rolls a microphone's flags into its state, counting
// transitions.
func (m *DeviceMonitor) classifyMic(t *micTracker) {
	var s DeviceState
	switch {
	case t.quarantined:
		s = DeviceDeaf
	case t.floor > 0:
		s = DeviceDrifting
	default:
		s = DeviceHealthy
	}
	if s != t.state {
		t.state = s
		t.transitions++
		m.transitions++
	}
}

// observeSpeaker advances one speaker's fingerprint: train levels from
// STRONG detections of its commanded frequencies, count suspect
// windows (silent or weak) once trained, probe for detune when the
// streak trips, and heal the re-key when the commanded frequency
// returns at full strength.
func (m *DeviceMonitor) observeSpeaker(t *speakerTracker, from, to float64) {
	// Classify this window's sound at the commanded frequencies.
	// Strong hits (>= StrongLevelRatio × trained level) prove the
	// speaker in tune and train the EWMA; weak hits — a partial-window
	// beat, a quieter driver, or a detuned tone's leakage back into
	// the commanded bin — count as sound but never train, so leakage
	// cannot walk the fingerprint down onto itself.
	strongOrig, weakOrig := false, false
	for _, f := range t.freqs {
		a, ok := m.detected[f]
		if !ok {
			continue
		}
		lv, seen := t.level[f]
		if !seen {
			t.level[f] = a
			t.trainCount++
			strongOrig = true
			continue
		}
		if a < m.MinLevelRatio*lv {
			continue // noise or leakage remnants: not this speaker
		}
		if a >= m.StrongLevelRatio*lv {
			t.level[f] = lv + m.NoiseAlpha*(a-lv)
			t.trainCount++
			strongOrig = true
		} else {
			weakOrig = true
		}
	}
	heardShift, shiftAmp := false, 0.0
	for _, sh := range t.shifted {
		if a, ok := m.detected[sh]; ok {
			heardShift = true
			if a > shiftAmp {
				shiftAmp = a
			}
		}
	}

	switch t.state {
	case DeviceDetuned:
		// A tone leaks across the ~4% split both ways: while the fault
		// persists the shifted bin dominates and its leakage lights the
		// commanded bin; once the speaker is back in tune the commanded
		// bin dominates and lights the shifted one. Dominance, not
		// presence, decides which story this window tells.
		origAmp := 0.0
		for _, f := range t.freqs {
			if a := m.detected[f]; a > origAmp {
				origAmp = a
			}
		}
		switch {
		case strongOrig && origAmp > shiftAmp:
			t.healStreak++
			t.silentStreak = 0
		case heardShift && shiftAmp > origAmp:
			// The shifted bin dominates: still detuned.
			t.healStreak = 0
			t.silentStreak = 0
		case weakOrig || heardShift:
			// Ambiguous partial window (a tone tail leaks into both
			// bins): evidence of life, not of tuning either way.
			t.silentStreak = 0
		default:
			t.silentStreak++
		}
		if t.healStreak >= m.RejoinHits {
			m.healSpeaker(t)
			return
		}
		if t.silentStreak >= m.SilentWindows {
			// The shifted tone vanished too: the speaker died after the
			// re-key. Retire the rewrite and mute.
			for _, sh := range t.shifted {
				delete(m.rewrite, sh)
			}
			t.shifted = t.shifted[:0]
			t.ratio = 1
			t.silentStreak = 0
			if t.voice != nil {
				t.voice.SetMuted(true)
			}
			m.setSpeakerState(t, DeviceSilent)
		}
	case DeviceSilent:
		if strongOrig || weakOrig {
			if t.voice != nil {
				t.voice.SetMuted(false)
			}
			m.setSpeakerState(t, DeviceHealthy)
		}
	default:
		if strongOrig {
			t.silentStreak = 0
			t.probeMisses = 0
		} else if t.trainCount >= 3 {
			// Weak windows count toward the streak: persistent sound at
			// the commanded bin that never matches the fingerprint is
			// exactly what a detuned speaker's leakage looks like.
			t.silentStreak++
		}
		if t.silentStreak < m.SilentWindows {
			return
		}
		// Suspicion tripped: probe every window until a verdict lands —
		// the speaker beats only a fraction of the time, so a single
		// probe in a between-beat gap must not condemn it.
		switch m.probeSpeaker(t, from, to) {
		case probeRekeyed, probeInTune:
			t.silentStreak = 0
			t.probeMisses = 0
		case probeNothing:
			t.probeMisses++
			if t.probeMisses >= m.SilentWindows {
				t.silentStreak = 0
				t.probeMisses = 0
				if t.voice != nil {
					t.voice.SetMuted(true)
				}
				m.setSpeakerState(t, DeviceSilent)
			}
		}
	}
}

// probeVerdict is one probe capture's outcome.
type probeVerdict int

const (
	// probeNothing: no audible energy at the commanded frequencies or
	// anywhere on the detune grid — a between-beat gap, or a dead
	// driver.
	probeNothing probeVerdict = iota
	// probeInTune: the commanded bins dominate — the speaker is in
	// tune, possibly quieter than its fingerprint.
	probeInTune
	// probeRekeyed: a shifted grid peak dominated the commanded bins
	// and the speaker was re-keyed.
	probeRekeyed
)

// probeSpeaker searches a reference capture for the suspect speaker's
// tones across the detune grid. A shifted peak that dominates the
// commanded bins by TuneFactor re-keys the speaker; audible energy
// that stays at the commanded frequencies retrains the fingerprint
// level instead (an aging driver playing quieter is not a fault).
func (m *DeviceMonitor) probeSpeaker(t *speakerTracker, from, to float64) probeVerdict {
	var ref *micTracker
	for _, mt := range m.mics {
		if !mt.quarantined {
			ref = mt
			break
		}
	}
	if ref == nil {
		return probeNothing
	}
	m.probeBuf = ref.mic.CaptureInto(m.probeBuf, from, to)
	buf := m.probeBuf
	n := buf.Len()
	if n == 0 {
		return probeNothing
	}
	minAmp := m.floorFor(micIndex(m.mics, ref), m.ctrl.Detector.MinAmplitude)
	scale := 2 / float64(n)

	// The commanded bins are the baseline the grid must beat: an
	// in-tune tone leaks near full strength onto the adjacent grid
	// ratios, so absolute level alone cannot tell "detuned" from
	// "quieter" — dominance can.
	if cap(m.probeAmps) < len(t.freqs) {
		m.probeAmps = make([]float64, len(t.freqs))
	}
	probeAmps := m.probeAmps[:len(t.freqs)]
	commanded := 0.0
	for i, f := range t.freqs {
		probeAmps[i] = dsp.Goertzel(buf.Samples, f, buf.SampleRate) * scale
		commanded += probeAmps[i]
	}

	steps := int(math.Round(m.MaxDetuneRatio / m.DetuneStep))
	bestAmp, bestRatio := 0.0, 1.0
	for k := -steps; k <= steps; k++ {
		if k == 0 {
			continue // the in-tune baseline is measured above
		}
		r := 1 + float64(k)*m.DetuneStep
		sum := 0.0
		for _, f := range t.freqs {
			sum += dsp.Goertzel(buf.Samples, f*r, buf.SampleRate) * scale
		}
		if sum > bestAmp {
			bestAmp, bestRatio = sum, r
		}
	}
	if bestAmp >= minAmp && bestAmp > m.TuneFactor*commanded {
		m.rekeySpeaker(t, bestRatio, to)
		return probeRekeyed
	}
	if commanded >= minAmp {
		// In tune but below the fingerprint: accept the new normal so
		// the speaker's beats classify strong again instead of probing
		// forever (or, worse, muting a merely quieter driver).
		for i, f := range t.freqs {
			if lv, seen := t.level[f]; seen && probeAmps[i] >= minAmp {
				t.level[f] = lv + m.NoiseAlpha*(probeAmps[i]-lv)
			}
		}
		return probeInTune
	}
	return probeNothing
}

// rekeySpeaker installs a re-key: the controller watches each
// commanded frequency shifted by ratio, detections there are rewritten
// back before dispatch, and a running stream is restarted so its
// watch-list snapshot includes the shifted frequencies.
func (m *DeviceMonitor) rekeySpeaker(t *speakerTracker, ratio, now float64) {
	t.shifted = t.shifted[:0]
	for _, f := range t.freqs {
		sh := f * ratio
		t.shifted = append(t.shifted, sh)
		m.rewrite[sh] = f
	}
	m.ctrl.Detector.AddWatch(t.shifted...)
	t.ratio = ratio
	t.healStreak = 0
	t.rekeys++
	m.rekeys++
	m.setSpeakerState(t, DeviceDetuned)
	m.restartStream(now)
}

// healSpeaker retires an active re-key: the commanded frequency is
// back, so the rewrite entries go and the speaker is healthy again.
// The shifted frequencies stay on the watch list (watches are
// append-only) but are no longer rewritten.
func (m *DeviceMonitor) healSpeaker(t *speakerTracker) {
	for _, sh := range t.shifted {
		delete(m.rewrite, sh)
	}
	t.shifted = t.shifted[:0]
	t.ratio = 1
	t.healStreak = 0
	m.setSpeakerState(t, DeviceHealthy)
}

func (m *DeviceMonitor) setSpeakerState(t *speakerTracker, s DeviceState) {
	if s != t.state {
		t.state = s
		t.transitions++
		m.transitions++
	}
}

// restartStream restarts a running streaming pipeline at time now so
// its start-time watch snapshot picks up a re-key. The restarted
// stream re-primes over one window (a warm-up the batch path does not
// pay — the cost of the stream's snapshot design).
func (m *DeviceMonitor) restartStream(now float64) {
	st := m.ctrl.stream
	if st == nil {
		return
	}
	hop := st.Hop()
	st.Stop()
	m.ctrl.StartStream(now, hop)
}

func micIndex(mics []*micTracker, t *micTracker) int {
	for i, mt := range mics {
		if mt == t {
			return i
		}
	}
	return 0
}

// Snapshot returns every tracked device's health row, microphones in
// fleet registration order first, then speakers in registration order
// — a deterministic serialisation for reports.
func (m *DeviceMonitor) Snapshot() []DeviceHealth {
	out := make([]DeviceHealth, 0, len(m.mics)+len(m.speakers))
	for _, t := range m.mics {
		out = append(out, DeviceHealth{
			Name: t.name, Kind: "mic", State: t.state.String(),
			NoiseFloor: t.ewma, Floor: t.floor, Quarantined: t.quarantined,
			Transitions: t.transitions, Recalibrations: t.recalibrations,
			Quarantines: t.quarantines, Rejoins: t.rejoins,
		})
	}
	for _, t := range m.speakers {
		h := DeviceHealth{
			Name: t.name, Kind: "speaker", State: t.state.String(),
			Transitions: t.transitions, Rekeys: t.rekeys,
		}
		if t.state == DeviceDetuned {
			h.DetuneRatio = t.ratio
		}
		if t.voice != nil {
			h.Muted = t.voice.Muted()
		}
		out = append(out, h)
	}
	return out
}

// Instrument exposes the monitor's devices and event counters under
// the mdn_device_* names: a per-device state gauge, per-microphone
// noise-floor gauges, and the aggregate transition / recalibration /
// quarantine / rejoin / re-key counters. All are func-backed reads of
// driver-owned state, so the hot path carries no extra updates.
// EnableDeviceMonitor calls it automatically on an instrumented
// controller; speakers registered later are instrumented as they
// arrive.
func (m *DeviceMonitor) Instrument(reg *telemetry.Registry) {
	m.reg = reg
	for _, t := range m.mics {
		t := t
		reg.Func(telemetry.Label(metricDeviceState, "kind", "mic", "name", t.name),
			func() float64 { return float64(t.state) })
		reg.Func(telemetry.Label(metricDeviceNoiseFloor, "mic", t.name),
			func() float64 { return t.ewma })
	}
	for _, t := range m.speakers {
		m.instrumentSpeaker(t)
	}
	reg.Func(metricDeviceTransitions, func() float64 { return float64(m.transitions) })
	reg.Func(metricDeviceRecalibrations, func() float64 { return float64(m.recalibrations) })
	reg.Func(metricDeviceQuarantines, func() float64 { return float64(m.quarantines) })
	reg.Func(metricDeviceRejoins, func() float64 { return float64(m.rejoins) })
	reg.Func(metricDeviceRekeys, func() float64 { return float64(m.rekeys) })
}

func (m *DeviceMonitor) instrumentSpeaker(t *speakerTracker) {
	if m.reg == nil {
		return
	}
	t2 := t
	m.reg.Func(telemetry.Label(metricDeviceState, "kind", "speaker", "name", t.name),
		func() float64 { return float64(t2.state) })
}
