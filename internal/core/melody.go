package core

import (
	"errors"
	"fmt"
)

// MelodyCodec encodes arbitrary bytes as a tone sequence (a melody)
// and decodes confirmed onsets back into bytes. Section 4 observes
// that sounds in sequence can implement "any finite state machine";
// this codec is the constructive version: 16 frequencies carry one
// nibble each, a 17th start-of-message marker frames transmissions.
// It is what turns the port-knocking trick into general out-of-band
// signalling (e.g. transmitting an authentication nonce).
type MelodyCodec struct {
	start   float64
	nibbles [16]float64

	state   int // -1 idle, otherwise nibble count within message
	current []byte
	half    byte
	haveHi  bool
	onset   *OnsetFilter

	// Messages holds completed decoded messages, bounded like every
	// other application log: at most MessagesMax entries are kept
	// (0 means DefaultHistoryMax), oldest evicted first and counted
	// in MessagesDropped.
	Messages [][]byte
	// MessagesMax overrides the Messages bound (0 = DefaultHistoryMax).
	MessagesMax int
	// MessagesDropped counts messages evicted by the bound.
	MessagesDropped uint64
	// Overflows counts in-progress decodes abandoned because the
	// channel fed more than MaxMelodyBytes of nibbles without a
	// terminating start marker (see consume).
	Overflows uint64
}

// NewMelodyCodec allocates 17 guard-banded frequencies (start marker
// + 16 nibble tones) under the given name.
func NewMelodyCodec(plan *FrequencyPlan, name string) (*MelodyCodec, error) {
	freqs, err := plan.AllocateSpaced(name+"/melody", 17, DefaultStride)
	if err != nil {
		return nil, err
	}
	mc := &MelodyCodec{start: freqs[0], state: -1}
	copy(mc.nibbles[:], freqs[1:])
	return mc, nil
}

// Frequencies returns the codec's 17 tones (start marker first).
func (mc *MelodyCodec) Frequencies() []float64 {
	out := make([]float64, 0, 17)
	out = append(out, mc.start)
	out = append(out, mc.nibbles[:]...)
	return out
}

// MaxMelodyBytes bounds message size on both sides of the channel:
// long melodies monopolise the sound channel, and the decoder must
// not grow without limit on a noisy channel that never terminates a
// message.
const MaxMelodyBytes = 64

// ErrMelodyTooLong bounds message size: long melodies monopolise the
// sound channel.
var ErrMelodyTooLong = errors.New("core: melody message exceeds 64 bytes")

// ErrMelodyEmpty rejects zero-length messages at encode time. An
// empty message's frame (start,start) is indistinguishable on the air
// from the terminator of the previous message followed by the opener
// of the next, so the decoder cannot round-trip it; encoding refuses
// it rather than silently dropping it on decode.
var ErrMelodyEmpty = errors.New("core: melody message is empty")

// Encode returns the tone sequence for msg: the start marker, then
// two tones per byte (high nibble first).
func (mc *MelodyCodec) Encode(msg []byte) ([]float64, error) {
	if len(msg) == 0 {
		return nil, ErrMelodyEmpty
	}
	if len(msg) > MaxMelodyBytes {
		return nil, ErrMelodyTooLong
	}
	out := make([]float64, 0, 1+2*len(msg))
	out = append(out, mc.start)
	for _, b := range msg {
		out = append(out, mc.nibbles[b>>4], mc.nibbles[b&0x0F])
	}
	// A trailing start marker terminates the message (and is ready
	// to start the next one).
	out = append(out, mc.start)
	return out, nil
}

// Transmit plays an encoded message through a voice, one tone per
// slot slightly wider than the voice's MinGap (so repeated nibbles
// are never rate-limited away), starting at time at on the voice's
// simulator clock. It returns the time the last tone starts.
func (mc *MelodyCodec) Transmit(voice *Voice, at float64, msg []byte) (float64, error) {
	tones, err := mc.Encode(msg)
	if err != nil {
		return 0, err
	}
	slot := voice.MinGap + 0.01
	for i, f := range tones {
		f := f
		voice.sim.Schedule(at+float64(i)*slot, func() { voice.Play(f) })
	}
	return at + float64(len(tones)-1)*slot, nil
}

// nibbleOf maps a frequency to its nibble value (-1 if not a nibble
// tone).
func (mc *MelodyCodec) nibbleOf(freq float64) int {
	for i, f := range mc.nibbles {
		if f == freq {
			return i
		}
	}
	return -1
}

// HandleWindow consumes controller windows (wire via
// Controller.SubscribeWindows through an OnsetFilter-free path — the
// codec runs its own onset confirmation).
func (mc *MelodyCodec) HandleWindow(_ float64, dets []Detection) {
	if mc.onset == nil {
		mc.onset = NewOnsetFilter()
	}
	for _, det := range mc.onset.Step(dets) {
		mc.consume(det.Frequency)
	}
}

func (mc *MelodyCodec) consume(freq float64) {
	if freq == mc.start {
		if mc.state >= 0 && len(mc.current) > 0 && !mc.haveHi {
			// Complete message terminated by the marker.
			msg := make([]byte, len(mc.current))
			copy(msg, mc.current)
			mc.Messages = appendBounded(mc.Messages, msg, mc.MessagesMax, &mc.MessagesDropped)
		}
		mc.state = 0
		mc.current = mc.current[:0]
		mc.haveHi = false
		return
	}
	if mc.state < 0 {
		return // tones before any start marker are ignored
	}
	n := mc.nibbleOf(freq)
	if n < 0 {
		return
	}
	if len(mc.current) >= MaxMelodyBytes {
		// Decode-side mirror of ErrMelodyTooLong: no conforming sender
		// produces this, so the start marker must have been lost to
		// noise and we are concatenating two (or more) messages.
		// Abandon the hopeless partial instead of growing forever and
		// wait for the next start marker to re-frame.
		mc.Overflows++
		mc.state = -1
		mc.current = mc.current[:0]
		mc.haveHi = false
		return
	}
	if !mc.haveHi {
		mc.half = byte(n) << 4
		mc.haveHi = true
	} else {
		mc.current = append(mc.current, mc.half|byte(n))
		mc.haveHi = false
	}
	mc.state++
}

// String describes the codec's band.
func (mc *MelodyCodec) String() string {
	return fmt.Sprintf("MelodyCodec(start=%.0fHz nibbles=%.0f..%.0fHz)",
		mc.start, mc.nibbles[0], mc.nibbles[15])
}
