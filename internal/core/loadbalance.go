package core

import (
	"mdn/internal/openflow"
)

// LoadBalancer is the Section 6 traffic-engineering application: it
// listens for a queue monitor's "congested" tone and, on first
// hearing it, sends the Flow-MOD that splits traffic across two
// ports (Figure 5a-b). The entire control loop is out-of-band: the
// only signal from switch to controller is sound.
type LoadBalancer struct {
	// SplitRule is the Flow-MOD installed on congestion.
	SplitRule openflow.FlowMod
	// OneShot keeps the balancer from re-sending the rule on every
	// subsequent congested tone (the paper's experiment splits
	// once).
	OneShot bool

	qm      *QueueMonitor
	channel *openflow.Channel
	onset   *OnsetFilter

	// Triggered reports whether the split rule was sent.
	Triggered bool
	// TriggeredAt is the virtual time of the trigger.
	TriggeredAt float64
	// Triggers counts congestion tones acted upon.
	Triggers uint64
}

// NewLoadBalancer listens to the queue monitor's tones and programs
// the switch behind ch when congestion is heard.
func NewLoadBalancer(qm *QueueMonitor, ch *openflow.Channel, splitRule openflow.FlowMod) *LoadBalancer {
	return &LoadBalancer{
		SplitRule: splitRule,
		OneShot:   true,
		qm:        qm,
		channel:   ch,
		onset:     NewOnsetFilter(),
	}
}

// HandleWindow is the controller-side hook (wire via
// Controller.SubscribeWindows, after the queue monitor's own
// HandleWindow so Heard stays consistent).
func (lb *LoadBalancer) HandleWindow(_ float64, dets []Detection) {
	// Confirmed onsets only: tone-boundary splatter from the low and
	// mid tones must not masquerade as congestion.
	for _, det := range lb.onset.Step(dets) {
		if lb.qm.LevelFor(det.Frequency) != LevelHigh {
			continue
		}
		if lb.OneShot && lb.Triggered {
			return
		}
		lb.Triggers++
		lb.Triggered = true
		lb.TriggeredAt = det.Time
		if err := lb.channel.SendFlowMod(lb.SplitRule); err != nil {
			panic(err)
		}
		return
	}
}
