package core

import (
	"fmt"

	"mdn/internal/openflow"
)

// LoadBalancer is the Section 6 traffic-engineering application: it
// listens for a queue monitor's "congested" tone and, on first
// hearing it, sends the Flow-MOD that splits traffic across two
// ports (Figure 5a-b). The entire control loop is out-of-band: the
// only signal from switch to controller is sound.
//
// Flow programming goes through a retrying openflow.Programmer, so a
// lossy control channel costs latency, not correctness; terminal
// failures are recorded (never panicked) and surface through the
// error log and the controller's Health snapshot.
type LoadBalancer struct {
	// SplitRule is the Flow-MOD installed on congestion.
	SplitRule openflow.FlowMod
	// OneShot keeps the balancer from re-sending the rule on every
	// subsequent congested tone (the paper's experiment splits
	// once).
	OneShot bool

	qm    *QueueMonitor
	prog  *openflow.Programmer
	onset *OnsetFilter
	errs  *ErrorLog

	// Triggered reports whether the split rule was sent.
	Triggered bool
	// TriggeredAt is the virtual time of the trigger.
	TriggeredAt float64
	// Triggers counts congestion tones acted upon.
	Triggers uint64
	// Installed reports the split rule confirmed through the channel
	// (possibly after retries); InstalledAt is when.
	Installed   bool
	InstalledAt float64
	// ProgramFailures counts terminal flow-programming failures.
	ProgramFailures uint64
	// LastErr is the most recent programming failure (nil when none).
	LastErr error
}

// NewLoadBalancer listens to the queue monitor's tones and programs
// the switch behind ch when congestion is heard.
func NewLoadBalancer(qm *QueueMonitor, ch *openflow.Channel, splitRule openflow.FlowMod) *LoadBalancer {
	lb := &LoadBalancer{
		SplitRule: splitRule,
		OneShot:   true,
		qm:        qm,
		prog:      openflow.NewProgrammer(ch, 1),
		onset:     NewOnsetFilter(),
	}
	lb.prog.OnResult = func(m openflow.FlowMod, err error) {
		if err != nil {
			lb.recordFailure(err)
			return
		}
		lb.Installed = true
		lb.InstalledAt = ch.Sim().Now()
	}
	return lb
}

// Programmer exposes the retrying flow programmer (to tune backoff or
// read its counters).
func (lb *LoadBalancer) Programmer() *openflow.Programmer { return lb.prog }

// SetErrorLog routes programming failures into a shared log —
// typically the controller's, so they feed its health state.
func (lb *LoadBalancer) SetErrorLog(l *ErrorLog) { lb.errs = l }

func (lb *LoadBalancer) recordFailure(err error) {
	lb.ProgramFailures++
	lb.LastErr = err
	lb.errs.Record(lb.prog.Channel().Sim().Now(), "loadbalance",
		fmt.Errorf("%w: split rule: %v", ErrFlowProgram, err))
}

// HandleWindow is the controller-side hook (wire via
// Controller.SubscribeWindows, after the queue monitor's own
// HandleWindow so Heard stays consistent).
func (lb *LoadBalancer) HandleWindow(_ float64, dets []Detection) {
	// Confirmed onsets only: tone-boundary splatter from the low and
	// mid tones must not masquerade as congestion.
	for _, det := range lb.onset.Step(dets) {
		if lb.qm.LevelFor(det.Frequency) != LevelHigh {
			continue
		}
		if lb.OneShot && lb.Triggered {
			return
		}
		lb.Triggers++
		lb.Triggered = true
		lb.TriggeredAt = det.Time
		if !lb.OneShot {
			// A re-trigger is fresh intent, not a retry: clear the
			// idempotency key so the rule really is sent again.
			lb.prog.Forget(lb.SplitRule)
		}
		if err := lb.prog.Install(lb.SplitRule); err != nil {
			lb.recordFailure(err)
		}
		return
	}
}
