package core

import (
	"testing"

	"mdn/internal/acoustic"
	"mdn/internal/netsim"
)

func TestHeartbeatDetectsDeath(t *testing.T) {
	tb := newTestbed(400)
	v1 := tb.voiceAt("s1", acoustic.Position{X: 1})
	v2 := tb.voiceAt("s2", acoustic.Position{X: -1})

	hb := NewHeartbeat()
	f1, err := hb.Register(tb.plan, "s1", v1)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := hb.Register(tb.plan, "s2", v2)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := tb.controller(hb.Frequencies())
	hb.Start(ctrl, 0)
	ctrl.Start(0)

	t1, err := hb.StartDevice(tb.sim, f1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hb.StartDevice(tb.sim, f2, 0.7); err != nil {
		t.Fatal(err)
	}
	// s1 dies at t=5.
	tb.sim.After(5, t1.Stop)
	tb.sim.RunUntil(12)

	if len(hb.Alerts) != 1 {
		t.Fatalf("alerts = %+v, want exactly one", hb.Alerts)
	}
	a := hb.Alerts[0]
	if a.Device != "s1" {
		t.Errorf("alerted device = %s", a.Device)
	}
	if a.Time < 5+float64(hb.MissThreshold)*hb.Period-1 || a.Time > 5+float64(hb.MissThreshold+2)*hb.Period {
		t.Errorf("alert at %g, want ~%g", a.Time, 5+float64(hb.MissThreshold)*hb.Period)
	}
	if hb.BeatsOf("s1") < 3 || hb.BeatsOf("s2") < 9 {
		t.Errorf("beats: s1=%d s2=%d", hb.BeatsOf("s1"), hb.BeatsOf("s2"))
	}
}

func TestHeartbeatNoFalseAlerts(t *testing.T) {
	tb := newTestbed(401)
	v := tb.voiceAt("s1", acoustic.Position{X: 1})
	hb := NewHeartbeat()
	f, err := hb.Register(tb.plan, "s1", v)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := tb.controller(hb.Frequencies())
	hb.Start(ctrl, 0)
	ctrl.Start(0)
	if _, err := hb.StartDevice(tb.sim, f, 0.2); err != nil {
		t.Fatal(err)
	}
	tb.sim.RunUntil(15)
	if len(hb.Alerts) != 0 {
		t.Errorf("healthy device raised %d alerts", len(hb.Alerts))
	}
}

func TestHeartbeatAlertOnceUntilRecovery(t *testing.T) {
	tb := newTestbed(402)
	v := tb.voiceAt("s1", acoustic.Position{X: 1})
	hb := NewHeartbeat()
	f, err := hb.Register(tb.plan, "s1", v)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := tb.controller(hb.Frequencies())
	hb.Start(ctrl, 0)
	ctrl.Start(0)
	tick, err := hb.StartDevice(tb.sim, f, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// Die at 3s, recover at 10s (new ticker), die again at 15s.
	tb.sim.After(3, tick.Stop)
	tb.sim.After(10, func() {
		if _, err := hb.StartDevice(tb.sim, f, tb.sim.Now()+0.1); err != nil {
			t.Error(err)
		}
	})
	var tick2 *netsim.Ticker
	tb.sim.After(10.5, func() { tick2 = hb.devices[f].ticker })
	tb.sim.After(15, func() {
		if tick2 != nil {
			tick2.Stop()
		}
	})
	tb.sim.RunUntil(25)
	if len(hb.Alerts) != 2 {
		t.Fatalf("alerts = %+v, want 2 (one per death)", hb.Alerts)
	}
}

func TestHeartbeatUnknownFrequency(t *testing.T) {
	tb := newTestbed(403)
	hb := NewHeartbeat()
	if _, err := hb.StartDevice(tb.sim, 999, 0); err == nil {
		t.Fatal("unknown frequency accepted")
	}
	if hb.BeatsOf("ghost") != 0 {
		t.Error("unknown device should have zero beats")
	}
}
