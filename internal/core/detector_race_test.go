package core

import (
	"sync"
	"testing"

	"mdn/internal/audio"
)

// TestDetectorConcurrentSharedPlan hammers the detector from many
// goroutines at once (run under -race in CI). Individual Detectors
// hold per-instance scratch and are not shareable, but all of them
// lean on the same globally cached FFT plan, window-coefficient
// tables, and gain cache — this test drives both detection methods
// through those shared structures simultaneously and checks every
// goroutine decodes the same tones.
func TestDetectorConcurrentSharedPlan(t *testing.T) {
	const goroutines = 8
	buf := audio.Chord(44100,
		audio.Tone{Frequency: 520, Duration: 0.05, Amplitude: 0.02},
		audio.Tone{Frequency: 840, Duration: 0.05, Amplitude: 0.02},
	)
	watch := []float64{520, 700, 840}

	var wg sync.WaitGroup
	results := make([][]float64, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			method := MethodGoertzel
			if g%2 == 1 {
				method = MethodFFT
			}
			det := NewDetector(method, watch)
			var freqs []float64
			for i := 0; i < 50; i++ {
				freqs = freqs[:0]
				for _, d := range det.Detect(buf, 0) {
					freqs = append(freqs, d.Frequency)
				}
			}
			results[g] = freqs
		}(g)
	}
	wg.Wait()

	for g, freqs := range results {
		if len(freqs) != 2 || freqs[0] != 520 || freqs[1] != 840 {
			t.Errorf("goroutine %d decoded %v, want [520 840]", g, freqs)
		}
	}
}
