package core

import (
	"math/rand"
	"testing"

	"mdn/internal/audio"
)

// TestDetectorFuzzRandomToneSets is a statistical robustness test:
// across many random trials, a random subset of guard-banded watched
// frequencies plays (full-window tones, moderate white noise) and the
// detector must recover exactly that subset.
func TestDetectorFuzzRandomToneSets(t *testing.T) {
	const (
		sampleRate = 44100.0
		trials     = 60
		nWatch     = 10
		windowDur  = 0.100
	)
	rng := rand.New(rand.NewSource(777))
	failures := 0
	for trial := 0; trial < trials; trial++ {
		base := 500 + rng.Float64()*1500
		watch := make([]float64, nWatch)
		for i := range watch {
			watch[i] = base + 80*float64(i)
		}
		// Random non-empty subset plays.
		var playing []int
		for i := range watch {
			if rng.Float64() < 0.4 {
				playing = append(playing, i)
			}
		}
		if len(playing) == 0 {
			playing = []int{rng.Intn(nWatch)}
		}
		buf := audio.NewBuffer(sampleRate, windowDur)
		for _, i := range playing {
			tone := audio.Tone{
				Frequency: watch[i], Duration: windowDur,
				Amplitude: 0.01 + rng.Float64()*0.03,
				Phase:     rng.Float64() * 6.28,
			}
			buf.MixAt(tone.Render(sampleRate), 0, 1)
		}
		buf.MixAt(audio.WhiteNoise(sampleRate, windowDur, 0.001, int64(trial)), 0, 1)

		for _, method := range []Method{MethodGoertzel, MethodFFT} {
			det := NewDetector(method, watch)
			// Equal-ish amplitudes: relax the relative floor so a
			// 4x amplitude spread cannot mask quiet tones.
			det.RelativeFloor = 0.1
			got := det.Detect(buf, 0)
			gotSet := map[float64]bool{}
			for _, d := range got {
				gotSet[d.Frequency] = true
			}
			ok := len(got) == len(playing)
			for _, i := range playing {
				if !gotSet[watch[i]] {
					ok = false
				}
			}
			if !ok {
				failures++
				t.Logf("trial %d method %v: played %v, detected %d tones",
					trial, method, playing, len(got))
			}
		}
	}
	// Allow a small statistical failure budget (quiet tone next to a
	// loud one can dip under the relative floor).
	if failures > trials/10 {
		t.Errorf("fuzz failures = %d of %d trials x 2 methods", failures, trials)
	}
}
