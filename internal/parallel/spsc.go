package parallel

import "sync/atomic"

// SPSC is a bounded lock-free single-producer single-consumer queue:
// one goroutine may call TryPush, one (possibly different) goroutine
// may call TryPop, with no locks and no allocation after construction.
// It is the stage coupling of the streaming detection pipeline —
// capture pushes hop frames, the transform stage pops them — sized so
// the stages can also run on one goroutine (push then immediately
// pop), which is how the deterministic simulation drives them.
//
// The implementation is the classic ring with monotonically increasing
// head (pop) and tail (push) cursors. The producer owns tail and reads
// head with acquire semantics; the consumer owns head and reads tail.
// Slots are published by the tail store, which happens after the
// element write — atomic.Uint64 store/load give the needed
// release/acquire ordering under the Go memory model.
type SPSC[T any] struct {
	buf  []T
	mask uint64
	// head and tail are free-running; index = cursor & mask.
	head atomic.Uint64 // next slot to pop (owned by consumer)
	tail atomic.Uint64 // next slot to push (owned by producer)
}

// NewSPSC builds a queue holding up to capacity elements. Capacity is
// rounded up to a power of two; it must be positive.
func NewSPSC[T any](capacity int) *SPSC[T] {
	if capacity <= 0 {
		panic("parallel: SPSC capacity must be positive")
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &SPSC[T]{buf: make([]T, n), mask: uint64(n - 1)}
}

// Cap returns the queue capacity.
func (q *SPSC[T]) Cap() int { return len(q.buf) }

// Len returns the number of queued elements. It is exact when called
// from either the producer or the consumer goroutine, and a point-in-
// time estimate from anywhere else.
func (q *SPSC[T]) Len() int {
	return int(q.tail.Load() - q.head.Load())
}

// TryPush enqueues v and reports success; it fails (without blocking)
// when the queue is full. Producer goroutine only.
func (q *SPSC[T]) TryPush(v T) bool {
	tail := q.tail.Load()
	if tail-q.head.Load() == uint64(len(q.buf)) {
		return false
	}
	q.buf[tail&q.mask] = v
	q.tail.Store(tail + 1) // publishes the element write
	return true
}

// TryPop dequeues the oldest element and reports success; it fails
// (without blocking) when the queue is empty. Consumer goroutine only.
func (q *SPSC[T]) TryPop() (T, bool) {
	var zero T
	head := q.head.Load()
	if head == q.tail.Load() {
		return zero, false
	}
	v := q.buf[head&q.mask]
	// Clear the slot so queued pointers do not pin their referents
	// past their dequeue.
	q.buf[head&q.mask] = zero
	q.head.Store(head + 1)
	return v, true
}

// Drain pops every queued element into fn, in order, and returns how
// many were consumed. Consumer goroutine only.
func (q *SPSC[T]) Drain(fn func(T)) int {
	n := 0
	for {
		v, ok := q.TryPop()
		if !ok {
			return n
		}
		fn(v)
		n++
	}
}
