package parallel

import (
	"runtime"
	"sync"
	"testing"
)

func TestSPSCCapacityRoundsToPowerOfTwo(t *testing.T) {
	for _, c := range []struct{ ask, want int }{
		{1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {100, 128},
	} {
		if got := NewSPSC[int](c.ask).Cap(); got != c.want {
			t.Errorf("NewSPSC(%d).Cap() = %d, want %d", c.ask, got, c.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("non-positive capacity did not panic")
		}
	}()
	NewSPSC[int](0)
}

func TestSPSCOrderFullEmpty(t *testing.T) {
	q := NewSPSC[int](4)
	if _, ok := q.TryPop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
	for i := 0; i < 4; i++ {
		if !q.TryPush(i) {
			t.Fatalf("push %d failed below capacity", i)
		}
	}
	if q.TryPush(99) {
		t.Fatal("push into full queue succeeded")
	}
	if q.Len() != 4 {
		t.Fatalf("Len = %d, want 4", q.Len())
	}
	for i := 0; i < 4; i++ {
		v, ok := q.TryPop()
		if !ok || v != i {
			t.Fatalf("pop = %d,%v, want %d,true (FIFO)", v, ok, i)
		}
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("pop from drained queue succeeded")
	}
}

func TestSPSCDrain(t *testing.T) {
	q := NewSPSC[int](8)
	for i := 0; i < 5; i++ {
		q.TryPush(i)
	}
	var got []int
	if n := q.Drain(func(v int) { got = append(got, v) }); n != 5 {
		t.Fatalf("Drain = %d, want 5", n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("drained[%d] = %d, want %d", i, v, i)
		}
	}
	if q.Len() != 0 {
		t.Fatal("Drain left elements queued")
	}
}

// TestSPSCRaceProducerConsumer exercises the queue's cross-goroutine
// publication contract under -race: the producer's element write must
// happen-before the consumer's read of the same slot. Values are
// pointers so the race detector sees the payload access, not just the
// cursors, and the consumer asserts FIFO order end to end.
func TestSPSCRaceProducerConsumer(t *testing.T) {
	const n = 20000
	q := NewSPSC[*int](8)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			v := new(int)
			*v = i
			for !q.TryPush(v) {
				runtime.Gosched()
			}
		}
	}()
	for i := 0; i < n; {
		v, ok := q.TryPop()
		if !ok {
			runtime.Gosched()
			continue
		}
		if *v != i {
			t.Fatalf("popped %d, want %d (order broken)", *v, i)
		}
		i++
	}
	wg.Wait()
	if q.Len() != 0 {
		t.Fatalf("queue not empty after drain: %d", q.Len())
	}
}

func TestSPSCPushPopAllocs(t *testing.T) {
	q := NewSPSC[[2]float64](4)
	if got := testing.AllocsPerRun(1000, func() {
		q.TryPush([2]float64{1, 2})
		q.TryPop()
	}); got != 0 {
		t.Errorf("push+pop allocates %g/op, want 0", got)
	}
}
