package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersDefaultsToGOMAXPROCS(t *testing.T) {
	if got, want := Workers(0), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("Workers(0) = %d, want %d", got, want)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		const n = 257
		visits := make([]int32, n)
		ForEach(n, workers, func(i int) {
			atomic.AddInt32(&visits[i], 1)
		})
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, v)
			}
		}
	}
}

func TestForEachResultsReadableWithoutSynchronisation(t *testing.T) {
	// The documented contract: work completed inside fn happens-before
	// ForEach returns, so plain writes to results[i] are safe to read.
	const n = 100
	results := make([]int, n)
	ForEach(n, 8, func(i int) { results[i] = i * i })
	for i, v := range results {
		if v != i*i {
			t.Fatalf("results[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestForEachSerialPathRunsOnCallerGoroutine(t *testing.T) {
	// workers=1 must be a plain loop: strictly ordered, no goroutines.
	var order []int
	ForEach(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order %v", order)
		}
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	calls := 0
	ForEach(0, 4, func(int) { calls++ })
	ForEach(-5, 4, func(int) { calls++ })
	if calls != 0 {
		t.Errorf("fn called %d times for empty index spaces", calls)
	}
}

func TestForEachMoreWorkersThanTasks(t *testing.T) {
	var calls atomic.Int64
	ForEach(3, 64, func(int) { calls.Add(1) })
	if calls.Load() != 3 {
		t.Errorf("calls = %d, want 3", calls.Load())
	}
}

// TestForEachOverlapsLatency pins that the pool actually runs tasks
// concurrently: 8 sleeping tasks on 8 workers must take far less than
// the serial sum even on a single-core machine (sleeping is not
// CPU-bound). This is the pool's liveness proof in environments where
// a CPU-bound speedup is not measurable.
func TestForEachOverlapsLatency(t *testing.T) {
	const d = 20 * time.Millisecond
	start := time.Now()
	ForEach(8, 8, func(int) { time.Sleep(d) })
	if took := time.Since(start); took > 6*d {
		t.Errorf("8 concurrent %v sleeps took %v — pool is not overlapping work", d, took)
	}
}
