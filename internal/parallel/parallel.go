// Package parallel is the repo's minimal fan-out primitive: a
// bounded worker pool over an index space. It exists so the sweep and
// fleet layers share one carefully-reviewed concurrency shape instead
// of re-growing ad-hoc goroutine plumbing per call site.
//
// The contract is deliberately narrow: ForEach guarantees every index
// is visited exactly once and that all work has completed (with a
// happens-before edge) when it returns. It says nothing about order —
// callers that need deterministic output write results[i] and keep
// ordering decisions out of the concurrent section entirely. That is
// what lets the chaos sweep produce byte-identical reports at any
// worker count.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested pool size: values <= 0 mean
// runtime.GOMAXPROCS(0), anything else is returned unchanged.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach calls fn(i) exactly once for every i in [0, n), fanning the
// calls across min(Workers(workers), n) goroutines. With an effective
// pool size of one it degenerates to a plain loop on the caller's
// goroutine — the serial reference path. ForEach returns only after
// every call has finished; completed work happens-before the return,
// so the caller may read results written by fn without further
// synchronisation.
//
// fn must be safe to call concurrently from multiple goroutines for
// distinct indices. A panic in fn crashes the process, as it would in
// the serial loop.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// Work stealing via one atomic cursor: cheaper than a channel and
	// naturally balances uneven point costs (a 0%-drop chaos point is
	// much faster than a 50% one).
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
